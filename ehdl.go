// Package ehdl is a Go reproduction of "Enabling Fast Deep Learning on
// Tiny Energy-Harvesting IoT Devices" (Islam et al., DATE 2022): a
// framework for training compressed DNNs (RAD), executing them with
// vector-accelerator-aware fixed-point runtimes on a simulated
// MSP430-class device (ACE), and keeping inference correct across the
// power failures of batteryless energy harvesting (FLEX).
//
// The public API is a thin facade over internal/core:
//
//	set := ehdl.MNIST(1200, 240, 1)
//	model, _ := ehdl.Train(ehdl.MNISTArch(), set, ehdl.DefaultTrainOptions())
//	rep, _ := ehdl.Infer(ehdl.ACEFLEX, model, set.Test[0].Input)
//	irep, _ := ehdl.InferHarvested(ehdl.ACEFLEX, model, set.Test[0].Input, ehdl.PaperHarvest())
//
// See the examples/ directory for runnable walk-throughs and
// cmd/paperbench for the full evaluation reproduction.
package ehdl

import (
	"ehdl/internal/cli"
	"ehdl/internal/core"
	"ehdl/internal/dataset"
	"ehdl/internal/exec"
	"ehdl/internal/fixed"
	"ehdl/internal/fleet"
	"ehdl/internal/nn"
	"ehdl/internal/quant"
	"ehdl/internal/rad"
)

// Engine selects one of the paper's runtimes.
type Engine = core.EngineKind

// The five runtimes of the evaluation.
const (
	Base    = core.EngineBase
	SONIC   = core.EngineSONIC
	TAILS   = core.EngineTAILS
	ACE     = core.EngineACE
	ACEFLEX = core.EngineACEFLEX
)

// Engines lists every runtime in presentation order.
func Engines() []Engine { return core.AllEngines() }

// Set is a synthetic dataset (see internal/dataset for the three
// workload generators).
type Set = dataset.Set

// MNIST generates the image-classification workload.
func MNIST(nTrain, nTest int, seed int64) *Set { return dataset.MNIST(nTrain, nTest, seed) }

// HAR generates the human-activity-recognition workload.
func HAR(nTrain, nTest int, seed int64) *Set { return dataset.HAR(nTrain, nTest, seed) }

// OKG generates the keyword-recognition workload.
func OKG(nTrain, nTest int, seed int64) *Set { return dataset.OKG(nTrain, nTest, seed) }

// Arch describes a model architecture.
type Arch = nn.Arch

// MNISTArch returns Table II's MNIST model (BCM block 128, 2x pruned
// conv2).
func MNISTArch() *Arch { return nn.MNISTArch(128, true) }

// HARArch returns Table II's HAR model.
func HARArch() *Arch { return nn.HARArch(128, 64) }

// OKGArch returns Table II's OKG model.
func OKGArch() *Arch { return nn.OKGArch(256, 128, 64) }

// Model is a quantized, deployable model artifact.
type Model = quant.Model

// LoadModel reads a model artifact from a file, verifying the
// container (magic, format version, checksum) and the model's
// structural consistency.
func LoadModel(path string) (*Model, error) { return cli.LoadModel(path) }

// SaveModel atomically writes a model artifact (checksummed,
// versioned container; see internal/artifact).
func SaveModel(path string, m *Model) error { return cli.SaveModel(path, m) }

// TrainOptions configures the RAD pipeline.
type TrainOptions = rad.PipelineConfig

// DefaultTrainOptions returns the Table II training settings.
func DefaultTrainOptions() TrainOptions { return rad.DefaultPipelineConfig() }

// TrainResult is the full RAD artifact (float net, quantized model,
// accuracies, pruning report).
type TrainResult = rad.Result

// Train runs the RAD pipeline: train, ADMM-prune where the
// architecture asks for it, calibrate, quantize.
func Train(arch *Arch, set *Set, opts TrainOptions) (*TrainResult, error) {
	return rad.Train(arch, set, opts)
}

// Report is a measured inference.
type Report = exec.Report

// Infer runs one measured inference on bench (continuous) power.
func Infer(engine Engine, m *Model, input []float64) (Report, error) {
	return core.InferContinuous(engine, m, fixed.FromFloats(input))
}

// Harvest describes an energy-harvesting experiment setup.
type Harvest = core.HarvestSetup

// PaperHarvest returns the paper's setup: 100 µF capacitor, 5 mW
// square-wave source.
func PaperHarvest() Harvest { return core.PaperHarvestSetup() }

// InferHarvested runs one inference under intermittent harvested
// power; the report carries boots, wall time, and completion status.
func InferHarvested(engine Engine, m *Model, input []float64, h Harvest) (Report, error) {
	return core.InferIntermittent(engine, m, fixed.FromFloats(input), h)
}

// FleetScenario is one device of a simulated deployment: a model
// inference under one harvesting setup on one runtime.
type FleetScenario = fleet.Scenario

// FleetReport aggregates a fleet run: ordered per-device results plus
// completion rate, boots, and simulated wall-time percentiles.
type FleetReport = fleet.Report

// RunFleet sweeps the scenarios concurrently over at most workers
// goroutines (<= 0: GOMAXPROCS); results are deterministic and in
// scenario order regardless of scheduling.
func RunFleet(scenarios []FleetScenario, workers int) FleetReport {
	return fleet.Run(scenarios, workers)
}

// RenderFleetReport formats a fleet report for terminals.
func RenderFleetReport(r FleetReport) string { return fleet.RenderReport(r) }
