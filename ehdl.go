// Package ehdl is a Go reproduction of "Enabling Fast Deep Learning on
// Tiny Energy-Harvesting IoT Devices" (Islam et al., DATE 2022): a
// framework for training compressed DNNs (RAD), executing them with
// vector-accelerator-aware fixed-point runtimes on a simulated
// MSP430-class device (ACE), and keeping inference correct across the
// power failures of batteryless energy harvesting (FLEX).
//
// The public API is a thin facade over internal/core:
//
//	set := ehdl.MNIST(1200, 240, 1)
//	model, _ := ehdl.Train(ehdl.MNISTArch(), set, ehdl.DefaultTrainOptions())
//	rep, _ := ehdl.Infer(ehdl.ACEFLEX, model, set.Test[0].Input)
//	irep, _ := ehdl.InferHarvested(ehdl.ACEFLEX, model, set.Test[0].Input, ehdl.PaperHarvest())
//
// See the examples/ directory for runnable walk-throughs and
// cmd/paperbench for the full evaluation reproduction.
package ehdl

import (
	"io"

	"ehdl/internal/cli"
	"ehdl/internal/core"
	"ehdl/internal/dataset"
	"ehdl/internal/exec"
	"ehdl/internal/fixed"
	"ehdl/internal/fleet"
	"ehdl/internal/fleet/memo"
	"ehdl/internal/intermittent"
	"ehdl/internal/nn"
	"ehdl/internal/quant"
	"ehdl/internal/rad"
)

// Engine selects one of the paper's runtimes.
type Engine = core.EngineKind

// The five runtimes of the evaluation.
const (
	Base    = core.EngineBase
	SONIC   = core.EngineSONIC
	TAILS   = core.EngineTAILS
	ACE     = core.EngineACE
	ACEFLEX = core.EngineACEFLEX
)

// Engines lists every runtime in presentation order.
func Engines() []Engine { return core.AllEngines() }

// Set is a synthetic dataset (see internal/dataset for the three
// workload generators).
type Set = dataset.Set

// MNIST generates the image-classification workload.
func MNIST(nTrain, nTest int, seed int64) *Set { return dataset.MNIST(nTrain, nTest, seed) }

// HAR generates the human-activity-recognition workload.
func HAR(nTrain, nTest int, seed int64) *Set { return dataset.HAR(nTrain, nTest, seed) }

// OKG generates the keyword-recognition workload.
func OKG(nTrain, nTest int, seed int64) *Set { return dataset.OKG(nTrain, nTest, seed) }

// Arch describes a model architecture.
type Arch = nn.Arch

// MNISTArch returns Table II's MNIST model (BCM block 128, 2x pruned
// conv2).
func MNISTArch() *Arch { return nn.MNISTArch(128, true) }

// HARArch returns Table II's HAR model.
func HARArch() *Arch { return nn.HARArch(128, 64) }

// OKGArch returns Table II's OKG model.
func OKGArch() *Arch { return nn.OKGArch(256, 128, 64) }

// Model is a quantized, deployable model artifact.
type Model = quant.Model

// LoadModel reads a model artifact from a file, verifying the
// container (magic, format version, checksum) and the model's
// structural consistency.
func LoadModel(path string) (*Model, error) { return cli.LoadModel(path) }

// SaveModel atomically writes a model artifact (checksummed,
// versioned container; see internal/artifact).
func SaveModel(path string, m *Model) error { return cli.SaveModel(path, m) }

// TrainOptions configures the RAD pipeline.
type TrainOptions = rad.PipelineConfig

// DefaultTrainOptions returns the Table II training settings.
func DefaultTrainOptions() TrainOptions { return rad.DefaultPipelineConfig() }

// TrainResult is the full RAD artifact (float net, quantized model,
// accuracies, pruning report).
type TrainResult = rad.Result

// Train runs the RAD pipeline: train, ADMM-prune where the
// architecture asks for it, calibrate, quantize.
func Train(arch *Arch, set *Set, opts TrainOptions) (*TrainResult, error) {
	return rad.Train(arch, set, opts)
}

// Report is a measured inference. For intermittent runs,
// Report.Intermittent carries the runner's typed BootDiagnosis and the
// per-boot BootRecord ledger alongside completion and boot counts.
type Report = exec.Report

// BootDiagnosis explains why an intermittent run completed or DNF'd:
// the verdict kind (frozen progress, no persistent writes, boot
// limit, ...), the evidence window behind it, and how many boots the
// analytic fast-forward skipped.
type BootDiagnosis = intermittent.Diagnosis

// BootRecord is one entry of the intermittent runner's per-boot
// ledger: cycles, energy, persistent-write signature, progress delta
// and recharge time of a single boot.
type BootRecord = intermittent.BootRecord

// Infer runs one measured inference on bench (continuous) power.
func Infer(engine Engine, m *Model, input []float64) (Report, error) {
	return core.InferContinuous(engine, m, fixed.FromFloats(input))
}

// Harvest describes an energy-harvesting experiment setup.
type Harvest = core.HarvestSetup

// PaperHarvest returns the paper's setup: 100 µF capacitor, 5 mW
// square-wave source.
func PaperHarvest() Harvest { return core.PaperHarvestSetup() }

// InferHarvested runs one inference under intermittent harvested
// power; the report carries boots, wall time, and completion status.
func InferHarvested(engine Engine, m *Model, input []float64, h Harvest) (Report, error) {
	return core.InferIntermittent(engine, m, fixed.FromFloats(input), h)
}

// FleetScenario is one device of a simulated deployment: a model
// inference under one harvesting setup on one runtime.
type FleetScenario = fleet.Scenario

// FleetReport aggregates a fleet run: completion rate, boots,
// per-engine/per-profile breakdowns, simulated wall-time percentiles,
// and (for materializing runs) ordered per-device results.
type FleetReport = fleet.Report

// NewFleetScenario builds one fleet device from a float input vector
// (converted to the device's Q1.15 format).
func NewFleetScenario(name string, engine Engine, m *Model, input []float64, h Harvest) FleetScenario {
	return fleet.Scenario{
		Name:   name,
		Engine: engine,
		Model:  m,
		Input:  fixed.FromFloats(input),
		Setup:  h,
	}
}

// RunFleet sweeps the scenarios concurrently over at most workers
// goroutines (<= 0: GOMAXPROCS); results are deterministic and in
// scenario order regardless of scheduling. It materializes one result
// row per scenario — use StreamFleet for fleets too large to hold.
func RunFleet(scenarios []FleetScenario, workers int) FleetReport {
	return fleet.Run(scenarios, workers)
}

// RenderFleetReport formats a fleet report for terminals.
func RenderFleetReport(r FleetReport) string { return fleet.RenderReport(r) }

// FleetSource lazily yields a fleet's scenarios (see FleetSourceFunc).
type FleetSource = fleet.Source

// FleetSink consumes per-device rows in scenario order as a fleet
// streams (see FleetNDJSONSink).
type FleetSink = fleet.Sink

// FleetStreamOptions configures StreamFleet: worker pool size, the
// exact-percentile threshold, an ordered row sink, and a progress
// callback.
type FleetStreamOptions = fleet.StreamOptions

// FleetSourceFunc adapts a generator to a FleetSource: n devices,
// scenario i built on demand by fn, which must be safe for concurrent
// calls.
func FleetSourceFunc(n int, fn func(i int) (FleetScenario, error)) FleetSource {
	return fleet.FuncSource(n, fn)
}

// FleetNDJSONSink streams one JSON row per device to w, in scenario
// order (wrap files in a bufio.Writer and flush after StreamFleet).
func FleetNDJSONSink(w io.Writer) FleetSink { return fleet.NewNDJSONSink(w) }

// StreamFleet simulates a fleet without materializing it: scenarios
// are generated on demand, rows stream through the optional sink in
// scenario order, and the report is aggregated online in constant
// memory — wall-time percentiles are exact up to the threshold in
// FleetStreamOptions and fixed-bin histogram estimates (±~1%) above
// it. The report is bit-identical to RunFleet for fleets within the
// threshold.
func StreamFleet(src FleetSource, opts FleetStreamOptions) (FleetReport, error) {
	return fleet.RunStream(src, opts)
}

// FleetMemo is the content-addressed inference memo: set it on
// FleetStreamOptions.Memo to dedup identical device runs. Tier 1
// replays whole outcomes keyed on (engine, model digest, input
// digest, harvest fingerprint); Tier 2 replays the compute side of
// voltage-oblivious engines when the inference provably fits one
// capacitor charge. Rows and report stay bit-identical to an
// unmemoized run; counters land in FleetReport.Memo.
type FleetMemo = memo.Memo

// FleetMemoStats is the memo's counter snapshot (hits by tier,
// misses, fills, LRU occupancy and evictions).
type FleetMemoStats = memo.Stats

// NewFleetMemo returns a fleet inference memo bounded to capacity
// entries (<= 0 selects the package default, 65536). The same memo
// may be shared across StreamFleet calls to carry warm state between
// sweeps.
func NewFleetMemo(capacity int) *FleetMemo { return memo.New(capacity) }
