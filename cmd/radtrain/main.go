// Command radtrain runs the RAD pipeline (train → prune → quantize)
// for one of the paper's tasks and writes the deployable fixed-point
// model artifact.
//
// The artifact is written atomically inside a checksummed, versioned
// container (see internal/artifact), so a crash mid-write never
// leaves a corrupt file and downstream tools detect truncation or
// stale formats with typed errors.
//
// Usage:
//
//	radtrain -task mnist|har|okg [-o model.gob] [-samples N] [-epochs N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"

	"ehdl/internal/cli"
	"ehdl/internal/dataset"
	"ehdl/internal/experiments"
	"ehdl/internal/nn"
	"ehdl/internal/rad"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("radtrain: ")

	task := flag.String("task", "mnist", "task: mnist, har, or okg")
	out := flag.String("o", "", "output model path (default <task>.gob)")
	samples := flag.Int("samples", experiments.FullOptions().TrainSamples, "training samples")
	epochs := flag.Int("epochs", experiments.FullOptions().Epochs, "training epochs")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	var (
		set  *dataset.Set
		arch *nn.Arch
	)
	switch *task {
	case "mnist":
		set = dataset.MNIST(*samples, *samples/5, *seed)
		arch = nn.MNISTArch(128, true)
	case "har":
		set = dataset.HAR(*samples, *samples/5, *seed)
		arch = nn.HARArch(128, 64)
	case "okg":
		set = dataset.OKG(*samples, *samples/5, *seed)
		arch = nn.OKGArch(256, 128, 64)
	default:
		log.Fatalf("unknown task %q", *task)
	}

	cfg := rad.DefaultPipelineConfig()
	cfg.Train.Epochs = *epochs
	cfg.Train.Seed = *seed
	cfg.Seed = *seed + 1

	res, err := rad.Train(arch, set, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("float accuracy:     %.1f%%\n", 100*res.FloatAccuracy)
	fmt.Printf("quantized accuracy: %.1f%%\n", 100*res.QuantAccuracy)
	fmt.Printf("model weights:      %d bytes (FRAM)\n", res.Model.WeightBytes())
	for _, p := range res.Prune {
		fmt.Printf("pruned conv layer:  %d/%d kernel positions kept (%.1fx)\n",
			p.KeptPositions, p.TotalPosition, p.Compression)
	}

	path := *out
	if path == "" {
		path = *task + ".gob"
	}
	if err := cli.SaveModel(path, res.Model); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model written to %s\n", path)
}
