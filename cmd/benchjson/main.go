// Command benchjson converts `go test -bench` text output on stdin
// into a JSON array on stdout, one object per benchmark line with its
// iteration count and every reported metric keyed by unit. CI uses it
// to emit the BENCH_PR*.json artifacts of the performance trajectory:
//
//	go test -bench . -benchtime 1x | go run ./cmd/benchjson > BENCH_PR1.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name    string             `json:"name"`
	N       int64              `json:"n"`
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	results := []result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, N, then value/unit pairs (ns/op, MB/s, custom metrics).
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := result{Name: fields[0], N: n, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			r.Metrics[fields[i+1]] = v
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
