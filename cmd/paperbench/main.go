// Command paperbench regenerates every table and figure of the
// paper's evaluation section and prints them as text tables. With no
// flags it runs everything at full scale (a few minutes, dominated by
// training the three models).
//
// Trained models are reused across invocations through the
// content-addressed model cache (-cache): retraining only happens when
// the architecture, dataset parameters or training options change.
//
// Usage:
//
//	paperbench [-quick] [-cache auto|off|DIR]
//	           [-table1] [-table2] [-fig7a] [-fig7b] [-fig7c] [-fig8] [-ckpt]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ehdl/internal/artifact/cache"
	"ehdl/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperbench: ")

	quick := flag.Bool("quick", false, "use reduced training budgets (for smoke runs)")
	cacheDir := flag.String("cache", "auto",
		"trained-model cache: auto (default location, $EHDL_MODEL_CACHE), off, or a directory")
	t1 := flag.Bool("table1", false, "Table I only")
	t2 := flag.Bool("table2", false, "Table II only")
	f7a := flag.Bool("fig7a", false, "Fig 7(a) only")
	f7b := flag.Bool("fig7b", false, "Fig 7(b) only")
	f7c := flag.Bool("fig7c", false, "Fig 7(c) only")
	f8 := flag.Bool("fig8", false, "Fig 8 only")
	ck := flag.Bool("ckpt", false, "checkpoint overhead only")
	flag.Parse()

	all := !(*t1 || *t2 || *f7a || *f7b || *f7c || *f8 || *ck)

	if all || *t1 {
		fmt.Println(experiments.RenderTable1(experiments.Table1()))
	}
	if all || *f8 {
		rows, err := experiments.Fig8(7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.RenderFig8(rows))
	}

	needTraining := all || *t2 || *f7a || *f7b || *f7c || *ck
	if !needTraining {
		return
	}

	opts := experiments.FullOptions()
	if *quick {
		opts = experiments.QuickOptions()
	}
	switch *cacheDir {
	case "off", "":
	case "auto":
		// Best-effort: a missing home dir or unwritable default cache
		// must not block the reproduction, just disable reuse.
		if dir, err := cache.DefaultDir(); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: model cache disabled: %v\n", err)
		} else if _, err := cache.Open(dir); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: model cache disabled: %v\n", err)
		} else {
			opts.CacheDir = dir
		}
	default:
		opts.CacheDir = *cacheDir
	}
	fmt.Fprintln(os.Stderr, "training the three models (cached models are reused)...")
	tasks, err := experiments.PrepareTasks(opts)
	if err != nil {
		log.Fatal(err)
	}
	for _, task := range tasks {
		if task.FromCache {
			fmt.Fprintf(os.Stderr, "%s: reused cached model\n", task.Name)
		}
	}

	if all || *t2 {
		fmt.Println(experiments.RenderTable2(experiments.Table2(tasks)))
	}
	if all || *f7a || *f7b || *f7c || *ck {
		rows, err := experiments.Fig7(tasks)
		if err != nil {
			log.Fatal(err)
		}
		if all || *f7a {
			fmt.Println(experiments.RenderFig7a(rows))
		}
		if all || *f7b {
			fmt.Println(experiments.RenderFig7b(rows))
		}
		if all || *f7c {
			fmt.Println(experiments.RenderFig7c(rows))
		}
		if all || *ck {
			fmt.Println(experiments.RenderCheckpointOverhead(experiments.CheckpointOverhead(rows)))
		}
	}
}
