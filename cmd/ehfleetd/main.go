// Command ehfleetd serves fleet sweeps over HTTP: the long-running
// counterpart to the one-shot ehfleet CLI. Clients POST a scenario
// document (the same strict JSON schema as `ehfleet -scenarios`) and
// stream back progress events and per-device NDJSON rows that are
// byte-identical to the CLI run's.
//
// Usage:
//
//	ehfleetd -data DIR [-addr :8080] [-base DIR] [-pool 0]
//	         [-max-active 4] [-max-body 8388608] [-memo-cap 0]
//	         [-artifact-cap 0] [-checkpoint-every 0]
//
// Endpoints (see the README's "Fleet service" section for schemas):
//
//	POST   /v1/jobs             submit a job ({"scenario": ..., "seed": ...})
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        job status
//	DELETE /v1/jobs/{id}        cancel (stops at the commit frontier)
//	GET    /v1/jobs/{id}/rows   stream NDJSON rows (follows a live job)
//	GET    /v1/jobs/{id}/events stream state/progress events (NDJSON)
//	GET    /v1/jobs/{id}/report rendered aggregate report (done jobs)
//	POST   /v1/merge            merge completed partitioned jobs
//	GET    /v1/metrics          jobs, queue, pool, memo and cache stats
//	GET    /healthz             liveness ("ok" | "draining")
//
// All jobs share one bounded simulation worker pool (-pool slots),
// one content-addressed run memo and one model-artifact cache, so
// concurrent identical work dedups. Every job checkpoints its commit
// frontier under -data; on SIGTERM/SIGINT the daemon drains — running
// jobs stop at their frontiers and persist as queued — and the next
// ehfleetd over the same -data resumes them to byte-identical output.
// Relative model/trace paths in submitted scenarios resolve against
// -base.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ehdl/internal/fleetd"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ehfleetd: ")

	addr := flag.String("addr", ":8080", "listen address")
	dataDir := flag.String("data", "", "data directory for job state, rows and checkpoints (required)")
	baseDir := flag.String("base", "", "base directory for relative model/trace paths in scenarios (default: the data dir)")
	pool := flag.Int("pool", 0, "simulation worker slots shared by all jobs (0 = GOMAXPROCS)")
	maxActive := flag.Int("max-active", fleetd.DefaultMaxActive, "jobs running at once (more queue FIFO)")
	maxBody := flag.Int64("max-body", fleetd.DefaultMaxBody, "request body cap in bytes")
	memoCap := flag.Int("memo-cap", 0, "shared run-memo capacity in entries (0 = default)")
	artifactCap := flag.Int("artifact-cap", 0, "shared model-artifact cache capacity (0 = default)")
	checkpointEvery := flag.Int("checkpoint-every", 0, "default devices between checkpoint writes (0 = fleet default)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for in-flight requests")
	flag.Parse()

	if *dataDir == "" {
		log.Fatal("-data DIR is required")
	}
	srv, err := fleetd.New(fleetd.Config{
		Dir:             *dataDir,
		BaseDir:         *baseDir,
		Pool:            *pool,
		MaxActive:       *maxActive,
		MaxBody:         *maxBody,
		MemoCap:         *memoCap,
		ArtifactCap:     *artifactCap,
		CheckpointEvery: *checkpointEvery,
	})
	if err != nil {
		log.Fatal(err)
	}

	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// Slow-client bounds. WriteTimeout stays 0: the rows/events
		// endpoints legitimately stream for a job's whole lifetime.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("serving on %s (data: %s)", *addr, *dataDir)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("%v: draining (running jobs checkpoint and re-queue)", sig)
	case err := <-errCh:
		log.Fatal(err)
	}

	// Stop the sweeps first — each cancelled job lands a checkpoint at
	// its commit frontier and persists as queued — then close the
	// listener and let streaming clients finish reading what exists.
	srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	log.Print("drained")
}
