// Command ehfleet simulates a deployment of energy-harvesting
// devices: N independent nodes, each with its own capacitor, runtime
// and (jittered) ambient profile, swept concurrently and folded into
// one aggregate report — completion rate, boots, and simulated wall
// time percentiles across the fleet.
//
// Usage:
//
//	ehfleet -model mnist.gob [-n 16] [-engine ace+flex] [-jitter 0.2]
//	        [-profile square|sine|const|trace] [-power 5e-3]
//	        [-period 0.1] [-duty 0.5] [-trace solar.csv] [-trace-repeat]
//	        [-cap 100e-6] [-leak 0] [-workers 0] [-seed 1]
//	ehfleet -scenarios fleet.json [-workers 0] [-seed 1]
//
// The first form builds a homogeneous fleet from flags: -engine
// accepts one runtime, a comma-separated list cycled across the
// fleet, or "all"; -jitter spreads each device's peak power uniformly
// in [power·(1−j), power·(1+j)], deterministically from -seed.
//
// The second form expands a declarative scenario file: a JSON
// document of heterogeneous (engine × capacitance × profile/trace ×
// model) device specs — see internal/cli.ScenarioFile for the schema
// and examples/scenarios/ for a runnable example. Expansion is
// deterministic for a given (file, seed) pair.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strings"

	"ehdl/internal/cli"
	"ehdl/internal/core"
	"ehdl/internal/fixed"
	"ehdl/internal/fleet"
	"ehdl/internal/harvest"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ehfleet: ")

	modelPath := flag.String("model", "", "model artifact from radtrain (flag mode)")
	scenarios := flag.String("scenarios", "", "declarative scenario file (JSON); replaces the fleet-shape flags")
	n := flag.Int("n", 16, "number of devices in the fleet")
	engines := flag.String("engine", "ace+flex", "runtime, comma-separated list, or \"all\"")
	profile := flag.String("profile", "square", "harvest profile: square, sine, const, trace")
	power := flag.Float64("power", 5e-3, "nominal peak harvested power in watts")
	period := flag.Float64("period", 0.1, "profile period in seconds")
	duty := flag.Float64("duty", 0.5, "square-wave duty cycle in (0, 1]")
	tracePath := flag.String("trace", "", "harvesting trace CSV (with -profile trace)")
	traceRepeat := flag.Bool("trace-repeat", false, "repeat the trace instead of holding its last value")
	jitter := flag.Float64("jitter", 0.2, "per-device power spread fraction in [0, 1)")
	capF := flag.Float64("cap", 100e-6, "capacitance in farads")
	leak := flag.Float64("leak", 0, "parasitic leakage in watts")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 1, "dataset and jitter seed")
	flag.Parse()

	if *scenarios != "" {
		// The fleet shape comes entirely from the file; an explicitly
		// set shape flag would be silently ignored, so reject it.
		shapeFlags := map[string]bool{
			"model": true, "n": true, "engine": true, "profile": true,
			"power": true, "period": true, "duty": true, "trace": true,
			"trace-repeat": true, "jitter": true, "cap": true, "leak": true,
		}
		flag.Visit(func(f *flag.Flag) {
			if shapeFlags[f.Name] {
				log.Fatalf("-%s has no effect with -scenarios (the scenario file declares the fleet shape)", f.Name)
			}
		})
		fleetScenarios, err := cli.LoadScenarios(*scenarios, *seed)
		if err != nil {
			log.Fatal(err)
		}
		rep := fleet.Run(fleetScenarios, *workers)
		fmt.Printf("scenario file: %s   devices: %d\n", *scenarios, len(fleetScenarios))
		fmt.Print(fleet.RenderReport(rep))
		return
	}

	if *modelPath == "" {
		log.Fatal("-model or -scenarios is required")
	}
	if *jitter < 0 || *jitter >= 1 {
		log.Fatalf("-jitter must be in [0, 1), got %g", *jitter)
	}
	m, err := cli.LoadModel(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	set, err := cli.DatasetFor(m, *seed)
	if err != nil {
		log.Fatal(err)
	}

	kinds, err := parseEngines(*engines)
	if err != nil {
		log.Fatal(err)
	}
	var baseTrace *harvest.TraceProfile
	if *profile == "trace" {
		if *tracePath == "" {
			log.Fatal("-profile trace requires -trace FILE")
		}
		baseTrace, err = harvest.LoadTraceFile(*tracePath, *traceRepeat)
		if err != nil {
			log.Fatal(err)
		}
	}

	cfg := harvest.PaperConfig()
	cfg.CapacitanceF = *capF
	cfg.LeakageW = *leak

	rng := rand.New(rand.NewSource(*seed))
	fleetScenarios := make([]fleet.Scenario, *n)
	for i := range fleetScenarios {
		scale := 1 + *jitter*(2*rng.Float64()-1)
		prof, err := cli.BuildProfile(*profile, *power, *period, *duty, baseTrace, scale)
		if err != nil {
			log.Fatal(err)
		}
		s, err := cli.Sample(set, i%len(set.Test))
		if err != nil {
			log.Fatal(err)
		}
		fleetScenarios[i] = fleet.Scenario{
			Name:   fmt.Sprintf("dev%02d", i),
			Engine: kinds[i%len(kinds)],
			Model:  m,
			Input:  fixed.FromFloats(s.Input),
			Setup:  core.HarvestSetup{Config: cfg, Profile: prof},
		}
	}

	rep := fleet.Run(fleetScenarios, *workers)
	fmt.Printf("model: %s   profile: %s %.1f mW ±%.0f%%   cap: %.0f uF\n",
		m.Name, *profile, *power*1e3, *jitter*100, *capF*1e6)
	fmt.Print(fleet.RenderReport(rep))
}

// parseEngines expands the -engine flag into a runtime cycle.
func parseEngines(s string) ([]core.EngineKind, error) {
	if s == "all" {
		return core.AllEngines(), nil
	}
	var kinds []core.EngineKind
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, err := cli.ParseEngine(part)
		if err != nil {
			return nil, err
		}
		kinds = append(kinds, kind)
	}
	if len(kinds) == 0 {
		return nil, fmt.Errorf("no engines in %q", s)
	}
	return kinds, nil
}
