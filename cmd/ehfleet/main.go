// Command ehfleet simulates a deployment of energy-harvesting
// devices: N independent nodes, each with its own capacitor, runtime
// and (jittered) ambient profile, streamed concurrently through the
// fleet layer and folded into one aggregate report — completion rate,
// boots, per-engine/per-profile breakdowns, and simulated wall time
// percentiles across the fleet.
//
// Usage:
//
//	ehfleet -model mnist.gob [-n 16] [-engine ace+flex] [-jitter 0.2]
//	        [-jitter-steps 0] [-profile square|sine|const|trace]
//	        [-power 5e-3] [-period 0.1] [-duty 0.5] [-trace solar.csv]
//	        [-trace-repeat] [-cap 100e-6] [-leak 0] [-workers 0]
//	        [-seed 1] [-out rows.ndjson] [-progress]
//	        [-memo] [-memo-cap 65536] [-memo-tag]
//	ehfleet -scenarios fleet.json [-n 0] [-workers 0] [-seed 1]
//	        [-out rows.ndjson] [-progress] [-memo] [-memo-cap 65536]
//	        [-memo-tag]
//	ehfleet ... -checkpoint ck.ehdl [-checkpoint-every 100000] [-resume]
//	ehfleet ... -shard 2/8 -out shard2/ [-resume]
//	ehfleet -merge out/ shard0/ shard1/ shard2/ ...
//
// The first form builds a homogeneous fleet from flags: -engine
// accepts one runtime, a comma-separated list cycled across the
// fleet, or "all"; -jitter spreads each device's peak power uniformly
// in [power·(1−j), power·(1+j)], deterministically from -seed.
//
// The second form expands a declarative scenario file: a JSON
// document of heterogeneous (engine × capacitance × profile/trace ×
// model) device specs — see examples/scenarios/README.md for the
// schema reference. Expansion is deterministic for a given (file,
// seed) pair. With -scenarios, -n overrides the fleet size: the
// declared devices are truncated or cycled to exactly N.
//
// Scenarios are generated lazily and aggregated online, so -n scales
// to millions of devices in constant memory; -out streams one NDJSON
// row per device, in scenario order, and -progress reports
// throughput and ETA on stderr while the fleet runs.
//
// -checkpoint makes the run resumable: the commit frontier
// (aggregator snapshot + delivered NDJSON row index) is written
// atomically to the file every -checkpoint-every devices, and
// -resume continues an interrupted run from it — the resumed output
// is byte-identical to an uninterrupted run's. -shard i/N restricts
// the run to its device range and turns -out into a shard artifact
// directory (rows.ndjson + shard.ehdl, checkpointed and resumable
// the same way); -merge folds completed shard directories back into
// the single-process report and NDJSON, byte-identically. Mismatched
// checkpoints and shards (different scenario file, seed, size or
// shard split) are rejected.
//
// -memo turns on fleet-wide inference memoization (see the README's
// "Fleet memoization" section): devices whose content-addressed run —
// engine, model, input, harvest fingerprint — was already simulated
// replay the cached outcome. Output is bit-identical with or without
// it. A scenario file's "memo" block sets the default; explicit -memo
// / -memo-cap flags win. -memo-tag adds each row's hit/miss tag to
// the NDJSON output (off by default because the tag varies with
// worker scheduling). -jitter-steps quantizes the flag-mode jitter
// draw so jittered devices dedup (scenario files: "jitter_steps").
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"ehdl/internal/cli"
	"ehdl/internal/core"
	"ehdl/internal/fixed"
	"ehdl/internal/fleet"
	"ehdl/internal/fleet/memo"
	"ehdl/internal/harvest"
)

// rowTableLimit is the largest fleet whose per-device rows are still
// printed to the terminal; larger fleets get the aggregate report
// only (use -out for the rows).
const rowTableLimit = 64

func main() {
	log.SetFlags(0)
	log.SetPrefix("ehfleet: ")

	modelPath := flag.String("model", "", "model artifact from radtrain (flag mode)")
	scenarios := flag.String("scenarios", "", "declarative scenario file (JSON); replaces the fleet-shape flags")
	n := flag.Int("n", 16, "number of devices in the fleet (with -scenarios: override the declared size; 0 keeps it)")
	engines := flag.String("engine", "ace+flex", "runtime, comma-separated list, or \"all\"")
	profile := flag.String("profile", "square", "harvest profile: square, sine, const, trace")
	power := flag.Float64("power", 5e-3, "nominal peak harvested power in watts")
	period := flag.Float64("period", 0.1, "profile period in seconds")
	duty := flag.Float64("duty", 0.5, "square-wave duty cycle in (0, 1]")
	tracePath := flag.String("trace", "", "harvesting trace CSV (with -profile trace)")
	traceRepeat := flag.Bool("trace-repeat", false, "repeat the trace instead of holding its last value")
	jitter := flag.Float64("jitter", 0.2, "per-device power spread fraction in [0, 1)")
	jitterSteps := flag.Int("jitter-steps", 0, "quantize the jitter draw to this many bins (0 = continuous); quantized fleets dedup under -memo")
	capF := flag.Float64("cap", 100e-6, "capacitance in farads")
	leak := flag.Float64("leak", 0, "parasitic leakage in watts")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 1, "dataset and jitter seed")
	out := flag.String("out", "", "stream per-device rows to this NDJSON file (with -shard: the shard artifact directory)")
	progress := flag.Bool("progress", false, "report streaming progress on stderr")
	memoOn := flag.Bool("memo", false, "memoize identical device runs (bit-identical output, less host time)")
	memoCap := flag.Int("memo-cap", 0, "memo LRU capacity in entries (0 = default)")
	memoTag := flag.Bool("memo-tag", false, "add each row's memo hit/miss tag to the NDJSON output")
	checkpoint := flag.String("checkpoint", "", "checkpoint the run to this file so it can -resume")
	checkpointEvery := flag.Int("checkpoint-every", 0, "devices between checkpoint writes (0 = default)")
	resume := flag.Bool("resume", false, "resume from the checkpoint instead of starting over")
	shardSpec := flag.String("shard", "", "simulate one device range of the fleet: \"i/N\" (shard i of N); -out becomes a shard directory")
	mergeOut := flag.String("merge", "", "merge completed shard directories (positional args) into this output directory")
	flag.Parse()

	if *mergeOut != "" {
		if flag.NArg() == 0 {
			log.Fatal("-merge needs the shard directories as arguments: ehfleet -merge out/ shard0/ shard1/ ...")
		}
		if err := runMerge(*mergeOut, flag.Args()); err != nil {
			log.Fatal(err)
		}
		return
	}
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments %q (only -merge takes positional arguments)", flag.Args())
	}

	var part fleet.Partition
	if *shardSpec != "" {
		var err error
		if part, err = parseShard(*shardSpec); err != nil {
			log.Fatal(err)
		}
	}
	ckptPath, rowsPath := *checkpoint, *out
	sharding := *shardSpec != ""
	if sharding {
		if *out == "" {
			log.Fatal("-shard needs -out DIR (the shard artifact directory)")
		}
		if ckptPath != "" {
			log.Fatal("-checkpoint has no effect with -shard (the shard directory holds its own meta)")
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatal(err)
		}
		rowsPath = filepath.Join(*out, fleet.ShardRowsFile)
		ckptPath = filepath.Join(*out, fleet.ShardMetaFile)
	}
	if *resume && ckptPath == "" {
		log.Fatal("-resume needs -checkpoint FILE or -shard i/N")
	}

	var src fleet.Source
	var header, fingerprint string
	if *scenarios != "" {
		// The fleet shape comes entirely from the file (-n resizes
		// it); an explicitly set shape flag would be silently
		// ignored, so reject it.
		shapeFlags := map[string]bool{
			"model": true, "engine": true, "profile": true,
			"power": true, "period": true, "duty": true, "trace": true,
			"trace-repeat": true, "jitter": true, "jitter-steps": true,
			"cap": true, "leak": true,
		}
		flag.Visit(func(f *flag.Flag) {
			if shapeFlags[f.Name] {
				log.Fatalf("-%s has no effect with -scenarios (the scenario file declares the fleet shape)", f.Name)
			}
		})
		fileSrc, err := cli.LoadFleetSource(*scenarios, *seed)
		if err != nil {
			log.Fatal(err)
		}
		nSet := false
		flag.Visit(func(f *flag.Flag) { nSet = nSet || f.Name == "n" })
		if nSet {
			switch {
			case *n < 0:
				log.Fatalf("-n must be >= 0, got %d", *n)
			case *n > 0:
				fileSrc = fileSrc.Resize(*n)
			}
			// -n 0 keeps the declared size, as the flag help says.
		}
		// The file's "memo" block supplies defaults; explicit -memo /
		// -memo-cap flags win.
		memoSet, memoCapSet := false, false
		flag.Visit(func(f *flag.Flag) {
			memoSet = memoSet || f.Name == "memo"
			memoCapSet = memoCapSet || f.Name == "memo-cap"
		})
		if ms := fileSrc.Memo(); ms != nil {
			if !memoSet {
				*memoOn = ms.Enabled
			}
			if !memoCapSet && ms.Capacity != 0 {
				*memoCap = ms.Capacity
			}
		}
		src = fileSrc
		header = fmt.Sprintf("scenario file: %s   devices: %d", *scenarios, src.Len())
		if ckptPath != "" {
			if fingerprint, err = cli.ScenarioFingerprint(*scenarios, *seed, src.Len()); err != nil {
				log.Fatal(err)
			}
		}
	} else {
		var err error
		if src, fingerprint, err = flagSource(flagFleet{
			model:       *modelPath,
			engines:     *engines,
			profile:     *profile,
			power:       *power,
			period:      *period,
			duty:        *duty,
			trace:       *tracePath,
			traceRepeat: *traceRepeat,
			jitter:      *jitter,
			jitterSteps: *jitterSteps,
			capF:        *capF,
			leak:        *leak,
			n:           *n,
			seed:        *seed,
		}); err != nil {
			log.Fatal(err)
		}
		header = fmt.Sprintf("model: %s   profile: %s %.1f mW ±%.0f%%   cap: %.0f uF   devices: %d",
			*modelPath, *profile, *power*1e3, *jitter*100, *capF*1e6, src.Len())
	}
	pstart, pend := part.Range(src.Len())
	if sharding {
		header += fmt.Sprintf("   shard: %d/%d [%d, %d)", part.Index, part.Of, pstart, pend)
	}

	opts := fleet.StreamOptions{Workers: *workers, Partition: part}
	if *memoOn {
		opts.Memo = memo.New(*memoCap)
	}
	if ckptPath != "" {
		opts.Checkpoint = &fleet.CheckpointSpec{
			Path:        ckptPath,
			Every:       *checkpointEvery,
			Fingerprint: fingerprint,
		}
	}
	var st *fleet.CheckpointState
	if *resume {
		var err error
		st, err = fleet.LoadCheckpoint(ckptPath)
		switch {
		case errors.Is(err, fs.ErrNotExist):
			fmt.Fprintf(os.Stderr, "ehfleet: no checkpoint at %s yet, starting fresh\n", ckptPath)
			st = nil
		case err != nil:
			log.Fatal(err)
		}
		opts.Resume = st
	}

	var sinks []fleet.Sink
	var rowsSink *fleet.NDJSONFile
	if rowsPath != "" {
		var err error
		if st != nil {
			rowsSink, err = fleet.ResumeNDJSONFile(rowsPath, st.Rows-st.Start, st.Rows)
		} else {
			rowsSink, err = fleet.NewNDJSONFile(rowsPath, pstart)
		}
		if err != nil {
			log.Fatal(err)
		}
		rowsSink.TagMemo = *memoTag
		sinks = append(sinks, rowsSink)
	}
	var collect *fleet.Collector
	if src.Len() <= rowTableLimit && !sharding && st == nil {
		// The terminal row table only makes sense for a whole fleet
		// streamed from row 0; sharded and resumed runs skip it.
		collect = &fleet.Collector{}
		sinks = append(sinks, collect)
	}
	if len(sinks) > 0 {
		opts.Sink = fleet.MultiSink(sinks...)
	}

	if *progress {
		resumed := 0
		if st != nil {
			resumed = st.Rows - st.Start
		}
		opts.Progress = cli.ProgressPrinter(os.Stderr, fleet.SystemClock, resumed)
	}

	rep, err := fleet.RunStream(src, opts)
	if err != nil {
		log.Fatal(err)
	}
	if rowsSink != nil {
		if err := rowsSink.Close(); err != nil {
			log.Fatalf("writing %s: %v", rowsPath, err)
		}
	}
	if collect != nil {
		rep.Results = collect.Rows
	}
	fmt.Println(header)
	fmt.Print(fleet.RenderReport(rep))
}

// runMerge folds completed shard directories into outDir: the
// whole-fleet NDJSON row file plus the aggregate report on stdout,
// byte-identical to a single-process run over the same fleet.
func runMerge(outDir string, dirs []string) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	rowsPath := filepath.Join(outDir, fleet.ShardRowsFile)
	f, err := os.Create(rowsPath)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	rep, err := fleet.MergeShards(w, dirs)
	if err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", rowsPath, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("writing %s: %w", rowsPath, err)
	}
	fmt.Printf("merged: %d shards   devices: %d   rows: %s\n", len(dirs), rep.Devices, rowsPath)
	fmt.Print(fleet.RenderReport(rep))
	return nil
}

// parseShard parses "i/N" into a partition.
func parseShard(s string) (fleet.Partition, error) {
	var p fleet.Partition
	a, b, ok := strings.Cut(s, "/")
	if ok {
		var err1, err2 error
		p.Index, err1 = strconv.Atoi(a)
		p.Of, err2 = strconv.Atoi(b)
		ok = err1 == nil && err2 == nil
	}
	if !ok {
		return p, fmt.Errorf("-shard must be i/N (e.g. 2/8), got %q", s)
	}
	if p.Of < 1 || p.Index < 0 || p.Index >= p.Of {
		return p, fmt.Errorf("-shard %s out of range (want 0 <= i < N)", s)
	}
	return p, nil
}

// flagFleet is the parsed flag-mode fleet shape.
type flagFleet struct {
	model       string
	engines     string
	profile     string
	trace       string
	traceRepeat bool
	power       float64
	period      float64
	duty        float64
	jitter      float64
	jitterSteps int
	capF        float64
	leak        float64
	n           int
	seed        int64
}

// flagSource builds the homogeneous flag-mode fleet as a lazy source:
// the model, dataset and converted inputs are shared, and each
// device's profile is built on demand from its index alone. The
// returned fingerprint is the run identity (model content + every
// shape flag) for checkpoints and shard artifacts.
func flagSource(f flagFleet) (fleet.Source, string, error) {
	if f.model == "" {
		return nil, "", fmt.Errorf("-model or -scenarios is required")
	}
	if f.jitter < 0 || f.jitter >= 1 {
		return nil, "", fmt.Errorf("-jitter must be in [0, 1), got %g", f.jitter)
	}
	if f.jitterSteps < 0 {
		return nil, "", fmt.Errorf("-jitter-steps must be >= 0, got %d", f.jitterSteps)
	}
	if f.n < 1 {
		return nil, "", fmt.Errorf("-n must be >= 1, got %d", f.n)
	}
	m, err := cli.LoadModel(f.model)
	if err != nil {
		return nil, "", err
	}
	set, err := cli.DatasetFor(m, f.seed)
	if err != nil {
		return nil, "", err
	}
	inputs := make([][]fixed.Q15, len(set.Test))
	for i := range set.Test {
		inputs[i] = fixed.FromFloats(set.Test[i].Input)
	}

	kinds, err := parseEngines(f.engines)
	if err != nil {
		return nil, "", err
	}
	var baseTrace *harvest.TraceProfile
	if f.profile == "trace" {
		if f.trace == "" {
			return nil, "", fmt.Errorf("-profile trace requires -trace FILE")
		}
		if baseTrace, err = harvest.LoadTraceFile(f.trace, f.traceRepeat); err != nil {
			return nil, "", err
		}
	}
	// Validate the waveform once at the unjittered scale, so a bad
	// flag fails before the fleet starts.
	if _, err := cli.BuildProfile(f.profile, f.power, f.period, f.duty, baseTrace, 1); err != nil {
		return nil, "", err
	}

	cfg := harvest.PaperConfig()
	cfg.CapacitanceF = f.capF
	cfg.LeakageW = f.leak

	digest := m.ContentDigest()
	fingerprint := cli.FleetFingerprint(
		"flags",
		fmt.Sprintf("%x", digest),
		f.engines, f.profile, f.trace,
		fmt.Sprintf("trace-repeat=%t", f.traceRepeat),
		fmt.Sprintf("power=%g period=%g duty=%g", f.power, f.period, f.duty),
		fmt.Sprintf("jitter=%g steps=%d", f.jitter, f.jitterSteps),
		fmt.Sprintf("cap=%g leak=%g", f.capF, f.leak),
		fmt.Sprintf("n=%d seed=%d", f.n, f.seed),
	)

	return fleet.FuncSource(f.n, func(i int) (fleet.Scenario, error) {
		prof, err := cli.BuildProfile(f.profile, f.power, f.period, f.duty, baseTrace,
			cli.QuantizedJitterScale(f.seed, i, f.jitter, f.jitterSteps))
		if err != nil {
			return fleet.Scenario{}, err
		}
		return fleet.Scenario{
			Name:   fmt.Sprintf("dev%02d", i),
			Engine: kinds[i%len(kinds)],
			Model:  m,
			Input:  inputs[i%len(inputs)],
			Setup:  core.HarvestSetup{Config: cfg, Profile: prof},
		}, nil
	}), fingerprint, nil
}

// parseEngines expands the -engine flag into a runtime cycle.
func parseEngines(s string) ([]core.EngineKind, error) {
	if s == "all" {
		return core.AllEngines(), nil
	}
	var kinds []core.EngineKind
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, err := cli.ParseEngine(part)
		if err != nil {
			return nil, err
		}
		kinds = append(kinds, kind)
	}
	if len(kinds) == 0 {
		return nil, fmt.Errorf("no engines in %q", s)
	}
	return kinds, nil
}
