// Command ehfleet simulates a deployment of energy-harvesting
// devices: N independent nodes, each with its own capacitor, runtime
// and (jittered) ambient profile, swept concurrently and folded into
// one aggregate report — completion rate, boots, and simulated wall
// time percentiles across the fleet.
//
// Usage:
//
//	ehfleet -model mnist.gob [-n 16] [-engine ace+flex] [-jitter 0.2]
//	        [-profile square|sine|const|trace] [-power 5e-3]
//	        [-period 0.1] [-duty 0.5] [-trace solar.csv] [-trace-repeat]
//	        [-cap 100e-6] [-leak 0] [-workers 0] [-seed 1]
//
// -engine accepts one runtime, a comma-separated list cycled across
// the fleet, or "all". -jitter spreads each device's peak power
// uniformly in [power·(1−j), power·(1+j)], deterministically from
// -seed.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strings"

	"ehdl/internal/core"
	"ehdl/internal/dataset"
	"ehdl/internal/fixed"
	"ehdl/internal/fleet"
	"ehdl/internal/harvest"
	"ehdl/internal/quant"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ehfleet: ")

	modelPath := flag.String("model", "", "model artifact from radtrain (required)")
	n := flag.Int("n", 16, "number of devices in the fleet")
	engines := flag.String("engine", "ace+flex", "runtime, comma-separated list, or \"all\"")
	profile := flag.String("profile", "square", "harvest profile: square, sine, const, trace")
	power := flag.Float64("power", 5e-3, "nominal peak harvested power in watts")
	period := flag.Float64("period", 0.1, "profile period in seconds")
	duty := flag.Float64("duty", 0.5, "square-wave duty cycle in (0, 1]")
	tracePath := flag.String("trace", "", "harvesting trace CSV (with -profile trace)")
	traceRepeat := flag.Bool("trace-repeat", false, "repeat the trace instead of holding its last value")
	jitter := flag.Float64("jitter", 0.2, "per-device power spread fraction in [0, 1)")
	capF := flag.Float64("cap", 100e-6, "capacitance in farads")
	leak := flag.Float64("leak", 0, "parasitic leakage in watts")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 1, "dataset and jitter seed")
	flag.Parse()

	if *modelPath == "" {
		log.Fatal("-model is required")
	}
	if *jitter < 0 || *jitter >= 1 {
		log.Fatalf("-jitter must be in [0, 1), got %g", *jitter)
	}
	m, err := quant.LoadFile(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	set := datasetFor(m.Name, *seed)

	kinds, err := parseEngines(*engines)
	if err != nil {
		log.Fatal(err)
	}
	var baseTrace *harvest.TraceProfile
	if *profile == "trace" {
		if *tracePath == "" {
			log.Fatal("-profile trace requires -trace FILE")
		}
		baseTrace, err = harvest.LoadTraceFile(*tracePath, *traceRepeat)
		if err != nil {
			log.Fatal(err)
		}
	}

	cfg := harvest.PaperConfig()
	cfg.CapacitanceF = *capF
	cfg.LeakageW = *leak

	rng := rand.New(rand.NewSource(*seed))
	scenarios := make([]fleet.Scenario, *n)
	for i := range scenarios {
		scale := 1 + *jitter*(2*rng.Float64()-1)
		var prof harvest.Profile
		switch *profile {
		case "square":
			prof, err = harvest.NewSquareProfile(*power*scale, *period, *duty)
		case "sine":
			prof, err = harvest.NewSineProfile(*power*scale, *period)
		case "const":
			prof, err = harvest.NewConstantProfile(*power * scale)
		case "trace":
			prof, err = baseTrace.Scale(scale)
		default:
			log.Fatalf("unknown profile %q", *profile)
		}
		if err != nil {
			log.Fatal(err)
		}
		s := set.Test[i%len(set.Test)]
		scenarios[i] = fleet.Scenario{
			Name:   fmt.Sprintf("dev%02d", i),
			Engine: kinds[i%len(kinds)],
			Model:  m,
			Input:  fixed.FromFloats(s.Input),
			Setup:  core.HarvestSetup{Config: cfg, Profile: prof},
		}
	}

	rep := fleet.Run(scenarios, *workers)
	fmt.Printf("model: %s   profile: %s %.1f mW ±%.0f%%   cap: %.0f uF\n",
		m.Name, *profile, *power*1e3, *jitter*100, *capF*1e6)
	fmt.Print(fleet.RenderReport(rep))
}

// parseEngines expands the -engine flag into a runtime cycle.
func parseEngines(s string) ([]core.EngineKind, error) {
	if s == "all" {
		return core.AllEngines(), nil
	}
	var kinds []core.EngineKind
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind := core.EngineKind(part)
		known := false
		for _, k := range core.AllEngines() {
			if k == kind {
				known = true
			}
		}
		if !known {
			return nil, fmt.Errorf("unknown engine %q", part)
		}
		kinds = append(kinds, kind)
	}
	if len(kinds) == 0 {
		return nil, fmt.Errorf("no engines in %q", s)
	}
	return kinds, nil
}

func datasetFor(name string, seed int64) *dataset.Set {
	switch name {
	case "mnist", "mnist-dense":
		return dataset.MNIST(1, 64, seed)
	case "har", "har-dense":
		return dataset.HAR(1, 64, seed)
	case "okg", "okg-dense":
		return dataset.OKG(1, 64, seed)
	}
	log.Fatalf("model %q has no matching dataset", name)
	return nil
}
