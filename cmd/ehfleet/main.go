// Command ehfleet simulates a deployment of energy-harvesting
// devices: N independent nodes, each with its own capacitor, runtime
// and (jittered) ambient profile, streamed concurrently through the
// fleet layer and folded into one aggregate report — completion rate,
// boots, per-engine/per-profile breakdowns, and simulated wall time
// percentiles across the fleet.
//
// Usage:
//
//	ehfleet -model mnist.gob [-n 16] [-engine ace+flex] [-jitter 0.2]
//	        [-jitter-steps 0] [-profile square|sine|const|trace]
//	        [-power 5e-3] [-period 0.1] [-duty 0.5] [-trace solar.csv]
//	        [-trace-repeat] [-cap 100e-6] [-leak 0] [-workers 0]
//	        [-seed 1] [-out rows.ndjson] [-progress]
//	        [-memo] [-memo-cap 65536] [-memo-tag]
//	ehfleet -scenarios fleet.json [-n 0] [-workers 0] [-seed 1]
//	        [-out rows.ndjson] [-progress] [-memo] [-memo-cap 65536]
//	        [-memo-tag]
//
// The first form builds a homogeneous fleet from flags: -engine
// accepts one runtime, a comma-separated list cycled across the
// fleet, or "all"; -jitter spreads each device's peak power uniformly
// in [power·(1−j), power·(1+j)], deterministically from -seed.
//
// The second form expands a declarative scenario file: a JSON
// document of heterogeneous (engine × capacitance × profile/trace ×
// model) device specs — see examples/scenarios/README.md for the
// schema reference. Expansion is deterministic for a given (file,
// seed) pair. With -scenarios, -n overrides the fleet size: the
// declared devices are truncated or cycled to exactly N.
//
// Scenarios are generated lazily and aggregated online, so -n scales
// to millions of devices in constant memory; -out streams one NDJSON
// row per device, in scenario order, and -progress reports throughput
// on stderr while the fleet runs.
//
// -memo turns on fleet-wide inference memoization (see the README's
// "Fleet memoization" section): devices whose content-addressed run —
// engine, model, input, harvest fingerprint — was already simulated
// replay the cached outcome. Output is bit-identical with or without
// it. A scenario file's "memo" block sets the default; explicit -memo
// / -memo-cap flags win. -memo-tag adds each row's hit/miss tag to
// the NDJSON output (off by default because the tag varies with
// worker scheduling). -jitter-steps quantizes the flag-mode jitter
// draw so jittered devices dedup (scenario files: "jitter_steps").
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"ehdl/internal/cli"
	"ehdl/internal/core"
	"ehdl/internal/fixed"
	"ehdl/internal/fleet"
	"ehdl/internal/fleet/memo"
	"ehdl/internal/harvest"
)

// rowTableLimit is the largest fleet whose per-device rows are still
// printed to the terminal; larger fleets get the aggregate report
// only (use -out for the rows).
const rowTableLimit = 64

func main() {
	log.SetFlags(0)
	log.SetPrefix("ehfleet: ")

	modelPath := flag.String("model", "", "model artifact from radtrain (flag mode)")
	scenarios := flag.String("scenarios", "", "declarative scenario file (JSON); replaces the fleet-shape flags")
	n := flag.Int("n", 16, "number of devices in the fleet (with -scenarios: override the declared size; 0 keeps it)")
	engines := flag.String("engine", "ace+flex", "runtime, comma-separated list, or \"all\"")
	profile := flag.String("profile", "square", "harvest profile: square, sine, const, trace")
	power := flag.Float64("power", 5e-3, "nominal peak harvested power in watts")
	period := flag.Float64("period", 0.1, "profile period in seconds")
	duty := flag.Float64("duty", 0.5, "square-wave duty cycle in (0, 1]")
	tracePath := flag.String("trace", "", "harvesting trace CSV (with -profile trace)")
	traceRepeat := flag.Bool("trace-repeat", false, "repeat the trace instead of holding its last value")
	jitter := flag.Float64("jitter", 0.2, "per-device power spread fraction in [0, 1)")
	jitterSteps := flag.Int("jitter-steps", 0, "quantize the jitter draw to this many bins (0 = continuous); quantized fleets dedup under -memo")
	capF := flag.Float64("cap", 100e-6, "capacitance in farads")
	leak := flag.Float64("leak", 0, "parasitic leakage in watts")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 1, "dataset and jitter seed")
	out := flag.String("out", "", "stream per-device rows to this NDJSON file")
	progress := flag.Bool("progress", false, "report streaming progress on stderr")
	memoOn := flag.Bool("memo", false, "memoize identical device runs (bit-identical output, less host time)")
	memoCap := flag.Int("memo-cap", 0, "memo LRU capacity in entries (0 = default)")
	memoTag := flag.Bool("memo-tag", false, "add each row's memo hit/miss tag to the NDJSON output")
	flag.Parse()

	var src fleet.Source
	var header string
	if *scenarios != "" {
		// The fleet shape comes entirely from the file (-n resizes
		// it); an explicitly set shape flag would be silently
		// ignored, so reject it.
		shapeFlags := map[string]bool{
			"model": true, "engine": true, "profile": true,
			"power": true, "period": true, "duty": true, "trace": true,
			"trace-repeat": true, "jitter": true, "jitter-steps": true,
			"cap": true, "leak": true,
		}
		flag.Visit(func(f *flag.Flag) {
			if shapeFlags[f.Name] {
				log.Fatalf("-%s has no effect with -scenarios (the scenario file declares the fleet shape)", f.Name)
			}
		})
		fileSrc, err := cli.LoadFleetSource(*scenarios, *seed)
		if err != nil {
			log.Fatal(err)
		}
		nSet := false
		flag.Visit(func(f *flag.Flag) { nSet = nSet || f.Name == "n" })
		if nSet {
			switch {
			case *n < 0:
				log.Fatalf("-n must be >= 0, got %d", *n)
			case *n > 0:
				fileSrc = fileSrc.Resize(*n)
			}
			// -n 0 keeps the declared size, as the flag help says.
		}
		// The file's "memo" block supplies defaults; explicit -memo /
		// -memo-cap flags win.
		memoSet, memoCapSet := false, false
		flag.Visit(func(f *flag.Flag) {
			memoSet = memoSet || f.Name == "memo"
			memoCapSet = memoCapSet || f.Name == "memo-cap"
		})
		if ms := fileSrc.Memo(); ms != nil {
			if !memoSet {
				*memoOn = ms.Enabled
			}
			if !memoCapSet && ms.Capacity != 0 {
				*memoCap = ms.Capacity
			}
		}
		src = fileSrc
		header = fmt.Sprintf("scenario file: %s   devices: %d", *scenarios, src.Len())
	} else {
		var err error
		if src, err = flagSource(flagFleet{
			model:       *modelPath,
			engines:     *engines,
			profile:     *profile,
			power:       *power,
			period:      *period,
			duty:        *duty,
			trace:       *tracePath,
			traceRepeat: *traceRepeat,
			jitter:      *jitter,
			jitterSteps: *jitterSteps,
			capF:        *capF,
			leak:        *leak,
			n:           *n,
			seed:        *seed,
		}); err != nil {
			log.Fatal(err)
		}
		header = fmt.Sprintf("model: %s   profile: %s %.1f mW ±%.0f%%   cap: %.0f uF   devices: %d",
			*modelPath, *profile, *power*1e3, *jitter*100, *capF*1e6, src.Len())
	}

	opts := fleet.StreamOptions{Workers: *workers}
	if *memoOn {
		opts.Memo = memo.New(*memoCap)
	}

	var sinks []fleet.Sink
	var flush func() error
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		w := bufio.NewWriterSize(f, 1<<20)
		sink := fleet.NewNDJSONSink(w)
		sink.TagMemo = *memoTag
		sinks = append(sinks, sink)
		flush = func() error {
			if err := w.Flush(); err != nil {
				return err
			}
			return f.Close()
		}
	}
	var collect *fleet.Collector
	if src.Len() <= rowTableLimit {
		collect = &fleet.Collector{}
		sinks = append(sinks, collect)
	}
	if len(sinks) > 0 {
		opts.Sink = fleet.MultiSink(sinks...)
	}

	if *progress {
		start := time.Now()
		opts.Progress = func(done, total int) {
			elapsed := time.Since(start).Seconds()
			rate := float64(done) / elapsed
			fmt.Fprintf(os.Stderr, "ehfleet: %d/%d devices (%.0f/s, %.0fs elapsed)\n",
				done, total, rate, elapsed)
		}
	}

	rep, err := fleet.RunStream(src, opts)
	if err != nil {
		log.Fatal(err)
	}
	if flush != nil {
		if err := flush(); err != nil {
			log.Fatalf("writing %s: %v", *out, err)
		}
	}
	if collect != nil {
		rep.Results = collect.Rows
	}
	fmt.Println(header)
	fmt.Print(fleet.RenderReport(rep))
}

// flagFleet is the parsed flag-mode fleet shape.
type flagFleet struct {
	model       string
	engines     string
	profile     string
	trace       string
	traceRepeat bool
	power       float64
	period      float64
	duty        float64
	jitter      float64
	jitterSteps int
	capF        float64
	leak        float64
	n           int
	seed        int64
}

// flagSource builds the homogeneous flag-mode fleet as a lazy source:
// the model, dataset and converted inputs are shared, and each
// device's profile is built on demand from its index alone.
func flagSource(f flagFleet) (fleet.Source, error) {
	if f.model == "" {
		return nil, fmt.Errorf("-model or -scenarios is required")
	}
	if f.jitter < 0 || f.jitter >= 1 {
		return nil, fmt.Errorf("-jitter must be in [0, 1), got %g", f.jitter)
	}
	if f.jitterSteps < 0 {
		return nil, fmt.Errorf("-jitter-steps must be >= 0, got %d", f.jitterSteps)
	}
	if f.n < 1 {
		return nil, fmt.Errorf("-n must be >= 1, got %d", f.n)
	}
	m, err := cli.LoadModel(f.model)
	if err != nil {
		return nil, err
	}
	set, err := cli.DatasetFor(m, f.seed)
	if err != nil {
		return nil, err
	}
	inputs := make([][]fixed.Q15, len(set.Test))
	for i := range set.Test {
		inputs[i] = fixed.FromFloats(set.Test[i].Input)
	}

	kinds, err := parseEngines(f.engines)
	if err != nil {
		return nil, err
	}
	var baseTrace *harvest.TraceProfile
	if f.profile == "trace" {
		if f.trace == "" {
			return nil, fmt.Errorf("-profile trace requires -trace FILE")
		}
		if baseTrace, err = harvest.LoadTraceFile(f.trace, f.traceRepeat); err != nil {
			return nil, err
		}
	}
	// Validate the waveform once at the unjittered scale, so a bad
	// flag fails before the fleet starts.
	if _, err := cli.BuildProfile(f.profile, f.power, f.period, f.duty, baseTrace, 1); err != nil {
		return nil, err
	}

	cfg := harvest.PaperConfig()
	cfg.CapacitanceF = f.capF
	cfg.LeakageW = f.leak

	return fleet.FuncSource(f.n, func(i int) (fleet.Scenario, error) {
		prof, err := cli.BuildProfile(f.profile, f.power, f.period, f.duty, baseTrace,
			cli.QuantizedJitterScale(f.seed, i, f.jitter, f.jitterSteps))
		if err != nil {
			return fleet.Scenario{}, err
		}
		return fleet.Scenario{
			Name:   fmt.Sprintf("dev%02d", i),
			Engine: kinds[i%len(kinds)],
			Model:  m,
			Input:  inputs[i%len(inputs)],
			Setup:  core.HarvestSetup{Config: cfg, Profile: prof},
		}, nil
	}), nil
}

// parseEngines expands the -engine flag into a runtime cycle.
func parseEngines(s string) ([]core.EngineKind, error) {
	if s == "all" {
		return core.AllEngines(), nil
	}
	var kinds []core.EngineKind
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, err := cli.ParseEngine(part)
		if err != nil {
			return nil, err
		}
		kinds = append(kinds, kind)
	}
	if len(kinds) == 0 {
		return nil, fmt.Errorf("no engines in %q", s)
	}
	return kinds, nil
}
