// Command aceinfer loads a model artifact produced by radtrain and
// runs one measured inference on the simulated device under continuous
// (bench) power, printing the prediction and the cost report.
//
// Usage:
//
//	aceinfer -model mnist.gob [-engine ace+flex] [-sample N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"

	"ehdl/internal/cli"
	"ehdl/internal/core"
	"ehdl/internal/device"
	"ehdl/internal/fixed"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("aceinfer: ")

	modelPath := flag.String("model", "", "model artifact from radtrain (required)")
	engine := flag.String("engine", "ace+flex", "runtime: base, sonic, tails, ace, ace+flex")
	sample := flag.Int("sample", 0, "test-set sample index")
	seed := flag.Int64("seed", 1, "dataset seed (must match radtrain for meaningful labels)")
	flag.Parse()

	if *modelPath == "" {
		log.Fatal("-model is required")
	}
	m, err := cli.LoadModel(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	kind, err := cli.ParseEngine(*engine)
	if err != nil {
		log.Fatal(err)
	}
	set, err := cli.DatasetFor(m, *seed)
	if err != nil {
		log.Fatal(err)
	}
	s, err := cli.Sample(set, *sample)
	if err != nil {
		log.Fatal(err)
	}

	rep, err := core.InferContinuous(kind, m, fixed.FromFloats(s.Input))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("model:     %s (%d classes)\n", m.Name, m.NumClasses)
	fmt.Printf("engine:    %s\n", rep.Engine)
	fmt.Printf("predicted: %d (%s)   true: %d (%s)\n",
		rep.Predicted, set.ClassNames[rep.Predicted], s.Label, set.ClassNames[s.Label])
	fmt.Printf("latency:   %.2f ms\n", rep.Stats.ActiveSeconds*1e3)
	fmt.Printf("energy:    %.3f mJ\n", rep.Stats.EnergymJ())
	for c := device.Category(0); c < device.NumCategories; c++ {
		if rep.Stats.Energy[c] > 0 {
			fmt.Printf("  %-11s %10.1f uJ\n", c, rep.Stats.Energy[c]*1e-3)
		}
	}
}
