// Command aceinfer loads a model artifact produced by radtrain and
// runs one measured inference on the simulated device under continuous
// (bench) power, printing the prediction and the cost report.
//
// Usage:
//
//	aceinfer -model mnist.gob [-engine ace+flex] [-sample N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"

	"ehdl/internal/core"
	"ehdl/internal/dataset"
	"ehdl/internal/device"
	"ehdl/internal/fixed"
	"ehdl/internal/quant"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("aceinfer: ")

	modelPath := flag.String("model", "", "model artifact from radtrain (required)")
	engine := flag.String("engine", "ace+flex", "runtime: base, sonic, tails, ace, ace+flex")
	sample := flag.Int("sample", 0, "test-set sample index")
	seed := flag.Int64("seed", 1, "dataset seed (must match radtrain for meaningful labels)")
	flag.Parse()

	if *modelPath == "" {
		log.Fatal("-model is required")
	}
	m, err := quant.LoadFile(*modelPath)
	if err != nil {
		log.Fatal(err)
	}

	set := datasetFor(m.Name, *seed)
	if *sample >= len(set.Test) {
		log.Fatalf("sample %d out of range (%d test samples)", *sample, len(set.Test))
	}
	s := set.Test[*sample]

	rep, err := core.InferContinuous(core.EngineKind(*engine), m, fixed.FromFloats(s.Input))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("model:     %s (%d classes)\n", m.Name, m.NumClasses)
	fmt.Printf("engine:    %s\n", rep.Engine)
	fmt.Printf("predicted: %d (%s)   true: %d (%s)\n",
		rep.Predicted, set.ClassNames[rep.Predicted], s.Label, set.ClassNames[s.Label])
	fmt.Printf("latency:   %.2f ms\n", rep.Stats.ActiveSeconds*1e3)
	fmt.Printf("energy:    %.3f mJ\n", rep.Stats.EnergymJ())
	for c := device.Category(0); c < device.NumCategories; c++ {
		if rep.Stats.Energy[c] > 0 {
			fmt.Printf("  %-11s %10.1f uJ\n", c, rep.Stats.Energy[c]*1e-3)
		}
	}
}

func datasetFor(name string, seed int64) *dataset.Set {
	switch name {
	case "mnist", "mnist-dense":
		return dataset.MNIST(1, 64, seed)
	case "har", "har-dense":
		return dataset.HAR(1, 64, seed)
	case "okg", "okg-dense":
		return dataset.OKG(1, 64, seed)
	}
	log.Fatalf("model %q has no matching dataset", name)
	return nil
}
