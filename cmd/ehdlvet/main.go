// Command ehdlvet is the repo's domain-specific static-analysis
// gate: it runs the internal/analysis passes (detmap, noclock,
// hotalloc, errwrap) over the module and exits nonzero on any
// finding. CI runs it as a required step; run it locally with
//
//	go run ./cmd/ehdlvet ./...
//
// Flags: -json emits machine-readable diagnostics; -<analyzer>=false
// disables one pass. See docs/ANALYZERS.md for what each pass
// enforces and how to suppress a finding with an //ehdl: directive.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"ehdl/internal/analysis"
	"ehdl/internal/analysis/detmap"
	"ehdl/internal/analysis/errwrap"
	"ehdl/internal/analysis/hotalloc"
	"ehdl/internal/analysis/load"
	"ehdl/internal/analysis/noclock"
)

var analyzers = []*analysis.Analyzer{
	detmap.Analyzer,
	noclock.Analyzer,
	hotalloc.Analyzer,
	errwrap.Analyzer,
}

// finding is one diagnostic, resolved to a position.
type finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	enabled := map[string]*bool{}
	for _, a := range analyzers {
		enabled[a.Name] = flag.Bool(a.Name, true, "enable the "+a.Name+" pass: "+a.Doc)
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Targets(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ehdlvet:", err)
		os.Exit(2)
	}

	var findings []finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if !*enabled[a.Name] || !a.AppliesTo(pkg.ImportPath) {
				continue
			}
			a := a
			pass := analysis.NewPass(a, pkg.Fset, pkg.Files, pkg.Pkg, pkg.Info, func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				findings = append(findings, finding{
					Analyzer: a.Name,
					File:     pos.Filename,
					Line:     pos.Line,
					Column:   pos.Column,
					Message:  d.Message,
				})
			})
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "ehdlvet: %s on %s: %v\n", a.Name, pkg.ImportPath, err)
				os.Exit(2)
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Analyzer < b.Analyzer
	})

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "ehdlvet:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Column, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "ehdlvet: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}
