// Command ehsim runs one inference under simulated energy harvesting:
// a capacitor charged by a configurable ambient profile, with power
// failures wherever the budget runs out.
//
// Usage:
//
//	ehsim -model mnist.gob [-engine ace+flex] [-cap 100e-6]
//	      [-profile square|sine|const|trace] [-power 5e-3] [-period 0.1]
//	      [-duty 0.5] [-trace solar.csv] [-trace-repeat] [-leak 0]
//	      [-sample 0] [-seed 1] [-trace-boots]
//
// -sample selects the test-set input to run (the deterministic
// datasets have 64 test samples; out-of-range indices are rejected
// with the valid range). -seed drives the dataset generator and must
// match the radtrain seed for the labels to be meaningful.
//
// Every run prints the intermittent runner's diagnosis — why the
// inference completed or DNF'd (frozen progress, no persistent
// writes, boot limit, ...). -trace-boots additionally dumps the boot
// ledger: per-boot cycles, energy, persistent writes, progress delta
// and recharge time for the last boots of the run.
package main

import (
	"flag"
	"fmt"
	"log"

	"ehdl/internal/cli"
	"ehdl/internal/core"
	"ehdl/internal/device"
	"ehdl/internal/exec"
	"ehdl/internal/fixed"
	"ehdl/internal/harvest"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ehsim: ")

	modelPath := flag.String("model", "", "model artifact from radtrain (required)")
	engine := flag.String("engine", "ace+flex", "runtime: base, sonic, tails, ace, ace+flex")
	capF := flag.Float64("cap", 100e-6, "capacitance in farads")
	profile := flag.String("profile", "square", "harvest profile: square, sine, const, trace")
	power := flag.Float64("power", 5e-3, "peak harvested power in watts")
	period := flag.Float64("period", 0.1, "profile period in seconds")
	duty := flag.Float64("duty", 0.5, "square-wave duty cycle in (0, 1]")
	tracePath := flag.String("trace", "", "harvesting trace CSV (with -profile trace)")
	traceRepeat := flag.Bool("trace-repeat", false, "repeat the trace instead of holding its last value")
	leak := flag.Float64("leak", 0, "parasitic leakage in watts")
	sample := flag.Int("sample", 0, "test-set sample index")
	seed := flag.Int64("seed", 1, "dataset seed")
	traceBoots := flag.Bool("trace-boots", false, "dump the runner's per-boot ledger")
	flag.Parse()

	if *modelPath == "" {
		log.Fatal("-model is required")
	}
	m, err := cli.LoadModel(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	kind, err := cli.ParseEngine(*engine)
	if err != nil {
		log.Fatal(err)
	}
	set, err := cli.DatasetFor(m, *seed)
	if err != nil {
		log.Fatal(err)
	}
	s, err := cli.Sample(set, *sample)
	if err != nil {
		log.Fatal(err)
	}

	var baseTrace *harvest.TraceProfile
	if *profile == "trace" {
		if *tracePath == "" {
			log.Fatal("-profile trace requires -trace FILE")
		}
		if baseTrace, err = harvest.LoadTraceFile(*tracePath, *traceRepeat); err != nil {
			log.Fatal(err)
		}
	}
	prof, err := cli.BuildProfile(*profile, *power, *period, *duty, baseTrace, 1)
	if err != nil {
		log.Fatal(err)
	}
	cfg := harvest.PaperConfig()
	cfg.CapacitanceF = *capF
	cfg.LeakageW = *leak

	setup := core.HarvestSetup{Config: cfg, Profile: prof}
	rep, err := core.InferIntermittent(kind, m, fixed.FromFloats(s.Input), setup)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("model:   %s   engine: %s\n", m.Name, rep.Engine)
	fmt.Printf("supply:  %.0f uF, %s profile, %.1f mW peak\n", *capF*1e6, *profile, *power*1e3)
	if rep.Intermittent.Completed {
		fmt.Printf("result:  completed, predicted %d (%s), true %d (%s)\n",
			rep.Predicted, set.ClassNames[rep.Predicted], s.Label, set.ClassNames[s.Label])
	} else {
		fmt.Printf("result:  DID NOT FINISH (%v)\n", rep.Intermittent.Err)
	}
	fmt.Printf("boots:   %d power failures\n", rep.Intermittent.Boots)
	fmt.Printf("diag:    %s\n", rep.Intermittent.Diagnosis)
	fmt.Printf("active:  %.1f ms compute\n", rep.Stats.ActiveSeconds*1e3)
	fmt.Printf("wall:    %.1f ms including recharge\n", rep.Stats.WallSeconds*1e3)
	fmt.Printf("energy:  %.3f mJ total\n", rep.Stats.EnergymJ())
	fmt.Printf("  checkpoint %.1f uJ, restore %.1f uJ, monitor %.1f uJ\n",
		rep.Stats.Energy[device.CatCheckpoint]*1e-3,
		rep.Stats.Energy[device.CatRestore]*1e-3,
		rep.Stats.Energy[device.CatMonitor]*1e-3)
	if *traceBoots {
		printBootLedger(rep, cfg, prof)
	}
}

// printBootLedger dumps the runner's per-boot ledger plus the harvest
// engine's closed-form boots estimate for the measured energy.
func printBootLedger(rep exec.Report, cfg harvest.Config, prof harvest.Profile) {
	fmt.Printf("boot ledger (last %d boots):\n", len(rep.Intermittent.Ledger))
	fmt.Printf("  %6s %-7s %12s %12s %9s %10s %10s %10s\n",
		"boot", "end", "cycles", "energy(uJ)", "nv-words", "fram-w", "prog-d", "off(ms)")
	for _, rec := range rep.Intermittent.Ledger {
		end := "ok"
		if rec.Failed {
			end = "fail"
		}
		fmt.Printf("  %6d %-7s %12d %12.2f %9d %10d %10d %10.2f\n",
			rec.Boot, end, rec.Cycles, rec.TotalnJ()*1e-3,
			rec.NVWrites, rec.FRAMWriteWords, rec.Delta, rec.OffSec*1e3)
	}
	if c, err := harvest.NewCapacitor(cfg, prof); err == nil {
		fmt.Printf("closed form: %.1f uJ usable per charge -> >= %d boots for this inference's %.3f mJ\n",
			c.UsableEnergyJ()*1e6, c.BootsToComplete(rep.Stats.TotalEnergynJ*1e-9),
			rep.Stats.EnergymJ())
		if off, ok := c.SteadyOffSeconds(); ok {
			fmt.Printf("             mean recharge %.1f ms per boot at the profile's mean power\n", off*1e3)
		}
	}
}
