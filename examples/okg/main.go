// OKG walk-through: keyword recognition, the paper's most FC-heavy
// model and therefore where BCM compression matters most. The example
// prints the storage accounting per layer and then compares ACE
// against the TAILS baseline on the same compressed weights.
package main

import (
	"fmt"
	"log"

	"ehdl"
)

func main() {
	set := ehdl.OKG(1200, 240, 1)

	res, err := ehdl.Train(ehdl.OKGArch(), set, ehdl.DefaultTrainOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OKG: float %.1f%%, quantized %.1f%%\n",
		100*res.FloatAccuracy, 100*res.QuantAccuracy)

	fmt.Println("\nlayer storage (16-bit weights):")
	dense, bcm := 0, 0
	for _, l := range res.Model.Layers {
		switch l.Spec.Kind {
		case "bcm":
			orig := 2 * l.Spec.In * l.Spec.Out
			comp := 2 * len(l.W)
			dense += orig
			bcm += comp
			fmt.Printf("  FC %4dx%-4d  BCM k=%-3d  %8d -> %6d bytes (%.0fx)\n",
				l.Spec.In, l.Spec.Out, l.Spec.K, orig, comp, float64(orig)/float64(comp))
		case "dense":
			n := 2 * len(l.W)
			dense += n
			bcm += n
			fmt.Printf("  FC %4dx%-4d  dense      %8d bytes\n", l.Spec.In, l.Spec.Out, n)
		}
	}
	fmt.Printf("  FC total: %d -> %d bytes — the uncompressed model would not fit 256 KB FRAM\n",
		dense, bcm)

	x := set.Test[0]
	for _, eng := range []ehdl.Engine{ehdl.TAILS, ehdl.ACEFLEX} {
		rep, err := ehdl.Infer(eng, res.Model, x.Input)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%-9s %7.1f ms  %6.3f mJ  predicted %q",
			eng, rep.Stats.ActiveSeconds*1e3, rep.Stats.EnergymJ(), set.ClassNames[rep.Predicted])
	}
	fmt.Println()
}
