// Quickstart: train a small model with RAD, deploy it to the
// simulated device, and run one inference on bench power and one under
// energy harvesting.
package main

import (
	"fmt"
	"log"

	"ehdl"
)

func main() {
	// 1. A synthetic workload (MNIST-shaped digits).
	set := ehdl.MNIST(600, 120, 1)

	// 2. RAD: train, compress (BCM + pruning), quantize to 16-bit
	//    fixed point. Reduced budget so the quickstart finishes fast.
	opts := ehdl.DefaultTrainOptions()
	opts.Train.Epochs = 3
	res, err := ehdl.Train(ehdl.MNISTArch(), set, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained: float %.1f%%, quantized %.1f%%, %d weight bytes\n",
		100*res.FloatAccuracy, 100*res.QuantAccuracy, res.Model.WeightBytes())

	// 3. ACE+FLEX on bench power.
	x := set.Test[0]
	rep, err := ehdl.Infer(ehdl.ACEFLEX, res.Model, x.Input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("continuous: predicted %d (true %d) in %.1f ms, %.3f mJ\n",
		rep.Predicted, x.Label, rep.Stats.ActiveSeconds*1e3, rep.Stats.EnergymJ())

	// 4. The same inference on a 100 µF capacitor fed by a 5 mW
	//    square-wave harvester: power failures included.
	irep, err := ehdl.InferHarvested(ehdl.ACEFLEX, res.Model, x.Input, ehdl.PaperHarvest())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("harvested:  predicted %d across %d power failures (%.0f ms wall)\n",
		irep.Predicted, irep.Intermittent.Boots, irep.Stats.WallSeconds*1e3)
}
