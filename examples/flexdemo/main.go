// FLEX demo: what happens at a power failure. The same compressed
// model runs under an aggressive harvesting profile on every runtime;
// the demo shows BASE and plain ACE never finishing, SONIC/TAILS
// paying their always-on commit taxes, and ACE+FLEX sailing through
// with on-demand checkpoints — Fig. 7(b) in miniature, plus the
// checkpoint accounting of §IV-A.5.
package main

import (
	"fmt"
	"log"

	"ehdl"
	"ehdl/internal/device"
)

func main() {
	set := ehdl.MNIST(600, 60, 1)
	opts := ehdl.DefaultTrainOptions()
	opts.Train.Epochs = 3
	res, err := ehdl.Train(ehdl.MNISTArch(), set, opts)
	if err != nil {
		log.Fatal(err)
	}

	x := set.Test[0]
	h := ehdl.PaperHarvest()

	fmt.Printf("%-10s %8s %7s %12s %12s %14s\n",
		"engine", "status", "boots", "active(ms)", "wall(ms)", "ckpt+restore")
	for _, eng := range ehdl.Engines() {
		rep, err := ehdl.InferHarvested(eng, res.Model, x.Input, h)
		if err != nil {
			log.Fatal(err)
		}
		status := "DNF"
		if rep.Intermittent.Completed {
			status = "ok"
		}
		overhead := rep.Stats.Energy[device.CatCheckpoint] + rep.Stats.Energy[device.CatRestore]
		fmt.Printf("%-10s %8s %7d %12.1f %12.1f %11.1f uJ\n",
			eng, status, rep.Intermittent.Boots,
			rep.Stats.ActiveSeconds*1e3, rep.Stats.WallSeconds*1e3, overhead*1e-3)
	}

	fmt.Println("\nBASE and plain ACE restart from scratch at every failure: one")
	fmt.Println("inference needs more energy than the capacitor holds, so they")
	fmt.Println("never finish. FLEX checkpoints on demand — only when the voltage")
	fmt.Println("monitor predicts a failure — so its overhead stays ~1-2%.")
}
