// HAR walk-through: the wearable workload. Human-activity windows are
// classified on the simulated device while it runs from a small solar
// panel (modelled as a rectified-sine harvest profile) — a batch of
// inferences survives dozens of power failures.
package main

import (
	"fmt"
	"log"

	"ehdl"
	"ehdl/internal/harvest"
)

func main() {
	set := ehdl.HAR(800, 160, 1)

	opts := ehdl.DefaultTrainOptions()
	res, err := ehdl.Train(ehdl.HARArch(), set, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HAR: float %.1f%%, quantized %.1f%%\n",
		100*res.FloatAccuracy, 100*res.QuantAccuracy)

	// An outdoor wearable: 100 µF buffer, ~4 mW rectified-sine input.
	h := ehdl.PaperHarvest()
	h.Profile = harvest.SineProfile{PeakWatts: 4e-3, Period: 0.2}

	correct, boots := 0, uint64(0)
	n := 10
	for i := 0; i < n; i++ {
		s := set.Test[i]
		rep, err := ehdl.InferHarvested(ehdl.ACEFLEX, res.Model, s.Input, h)
		if err != nil {
			log.Fatal(err)
		}
		if !rep.Intermittent.Completed {
			log.Fatalf("inference %d did not complete: %v", i, rep.Intermittent.Err)
		}
		if rep.Predicted == s.Label {
			correct++
		}
		boots += rep.Intermittent.Boots
		fmt.Printf("window %2d: predicted %-10s true %-10s (%d power failures)\n",
			i, set.ClassNames[rep.Predicted], set.ClassNames[s.Label], rep.Intermittent.Boots)
	}
	fmt.Printf("\n%d/%d correct across %d power failures\n", correct, n, boots)
}
