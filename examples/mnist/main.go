// MNIST walk-through: the paper's image-classification pipeline end to
// end — RAD training with ADMM structured pruning, then a comparison
// of all four runtimes on the same compressed model, reproducing the
// MNIST columns of Fig. 7(a).
package main

import (
	"fmt"
	"log"

	"ehdl"
)

func main() {
	set := ehdl.MNIST(1000, 200, 1)

	res, err := ehdl.Train(ehdl.MNISTArch(), set, ehdl.DefaultTrainOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MNIST: float %.1f%%, quantized %.1f%%\n",
		100*res.FloatAccuracy, 100*res.QuantAccuracy)
	for _, p := range res.Prune {
		fmt.Printf("conv2 structured pruning: kept %d/%d kernel positions (%.1fx)\n",
			p.KeptPositions, p.TotalPosition, p.Compression)
	}

	x := set.Test[3]
	fmt.Printf("\n%-10s %12s %12s %10s\n", "engine", "latency(ms)", "energy(mJ)", "predicted")
	for _, eng := range ehdl.Engines() {
		rep, err := ehdl.Infer(eng, res.Model, x.Input)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12.1f %12.3f %10d\n",
			eng, rep.Stats.ActiveSeconds*1e3, rep.Stats.EnergymJ(), rep.Predicted)
	}
	fmt.Printf("(true label: %d)\n", x.Label)
}
