// Package artifact is the hardened container for everything the host
// trains once and the device (or a later run) consumes many times —
// the paper's "train on the host, deploy to the harvester-powered
// node" split made safe against the file system.
//
// A bare encoding/gob blob fails in the worst possible ways: a
// truncated download decodes into a cryptic "gob: unexpected EOF", a
// stale artifact from before a struct refactor decodes *successfully*
// into silently zeroed fields, and a crash mid-write leaves a corrupt
// file under the real name. The container closes all three holes:
//
//	[8]  magic "EHDLART\x01"
//	[4]  format version (big endian)
//	[2]  kind length, then the kind string (e.g. "quant.Model")
//	[8]  payload length (big endian)
//	[n]  gob payload
//	[32] SHA-256 over everything above
//
// Readers verify magic, version, kind and checksum before a single
// gob byte is decoded, and report typed errors (ErrBadMagic,
// ErrVersion, ErrChecksum, ErrTruncated, ErrKind) that name the file
// and the failure. Writers go through a temp file in the target
// directory and an atomic rename, so a crash never leaves a partial
// artifact under the final name.
package artifact

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// magic identifies an ehdl artifact file. The trailing byte is a
// format-era marker separate from FormatVersion: it only changes if
// the envelope layout itself (not the payload schema) is redesigned.
var magic = [8]byte{'E', 'H', 'D', 'L', 'A', 'R', 'T', 1}

// FormatVersion is the current payload schema version. Bump it when a
// gob-encoded payload type changes incompatibly; old files then fail
// with ErrVersion instead of decoding into silently zeroed fields.
const FormatVersion uint32 = 1

// KindModel is the artifact kind of a quantized deployable model
// (*quant.Model).
const KindModel = "quant.Model"

// KindTrainedCache is the artifact kind of a cached RAD training
// result (see the cache subpackage).
const KindTrainedCache = "rad.TrainedResult"

// maxKindLen bounds the kind string so a corrupt length field cannot
// drive a huge allocation.
const maxKindLen = 255

// Typed failure modes. Errors returned by Decode/ReadFile wrap
// exactly one of these (or an underlying I/O error) plus the file
// path and a human-readable diagnosis.
var (
	// ErrBadMagic: the file does not start with the artifact magic —
	// it is not an ehdl artifact at all, or predates the container
	// format (a raw gob blob from an old release).
	ErrBadMagic = errors.New("not an ehdl artifact (bad magic; raw-gob files from old releases must be regenerated)")
	// ErrVersion: the artifact was written with an incompatible
	// format version.
	ErrVersion = errors.New("incompatible artifact format version")
	// ErrChecksum: the payload bytes do not match the stored SHA-256 —
	// the file was corrupted after it was written.
	ErrChecksum = errors.New("artifact checksum mismatch (file corrupt)")
	// ErrTruncated: the file ends before the declared payload and
	// checksum — an interrupted copy or download.
	ErrTruncated = errors.New("artifact truncated")
	// ErrKind: the artifact holds a different payload type than the
	// reader asked for.
	ErrKind = errors.New("artifact kind mismatch")
)

// Encode writes v as a checksummed container of the given kind to w.
func Encode(w io.Writer, kind string, v any) error {
	if len(kind) == 0 || len(kind) > maxKindLen {
		return fmt.Errorf("artifact: kind must be 1..%d bytes, got %d", maxKindLen, len(kind))
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(v); err != nil {
		return fmt.Errorf("artifact: encode %s payload: %w", kind, err)
	}

	var head bytes.Buffer
	head.Write(magic[:])
	binary.Write(&head, binary.BigEndian, FormatVersion)
	binary.Write(&head, binary.BigEndian, uint16(len(kind)))
	head.WriteString(kind)
	binary.Write(&head, binary.BigEndian, uint64(payload.Len()))

	sum := sha256.New()
	sum.Write(head.Bytes())
	sum.Write(payload.Bytes())

	if _, err := w.Write(head.Bytes()); err != nil {
		return fmt.Errorf("artifact: write header: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("artifact: write payload: %w", err)
	}
	if _, err := w.Write(sum.Sum(nil)); err != nil {
		return fmt.Errorf("artifact: write checksum: %w", err)
	}
	return nil
}

// Decode reads a container of the given kind from r and gob-decodes
// its payload into v (a pointer). The header and checksum are fully
// verified before any payload byte reaches the gob decoder.
func Decode(r io.Reader, kind string, v any) error {
	var gotMagic [8]byte
	if err := readFull(r, gotMagic[:], "magic"); err != nil {
		return err
	}
	if gotMagic != magic {
		return ErrBadMagic
	}

	var fixed [4 + 2]byte
	if err := readFull(r, fixed[:], "header"); err != nil {
		return err
	}
	version := binary.BigEndian.Uint32(fixed[0:4])
	if version != FormatVersion {
		return fmt.Errorf("%w: file has v%d, this build reads v%d", ErrVersion, version, FormatVersion)
	}
	kindLen := int(binary.BigEndian.Uint16(fixed[4:6]))
	if kindLen == 0 || kindLen > maxKindLen {
		return fmt.Errorf("%w: kind length %d out of range", ErrChecksum, kindLen)
	}
	kindBuf := make([]byte, kindLen)
	if err := readFull(r, kindBuf, "kind"); err != nil {
		return err
	}
	if string(kindBuf) != kind {
		return fmt.Errorf("%w: file holds %q, want %q", ErrKind, kindBuf, kind)
	}
	var lenBuf [8]byte
	if err := readFull(r, lenBuf[:], "payload length"); err != nil {
		return err
	}
	payloadLen := binary.BigEndian.Uint64(lenBuf[:])
	const maxPayload = 1 << 30 // far above any model; guards corrupt lengths
	if payloadLen > maxPayload {
		return fmt.Errorf("%w: declared payload %d bytes", ErrChecksum, payloadLen)
	}
	payload, err := readPayload(r, payloadLen)
	if err != nil {
		return err
	}
	var gotSum [sha256.Size]byte
	if err := readFull(r, gotSum[:], "checksum"); err != nil {
		return err
	}

	sum := sha256.New()
	sum.Write(magic[:])
	sum.Write(fixed[:])
	sum.Write(kindBuf)
	sum.Write(lenBuf[:])
	sum.Write(payload)
	if !bytes.Equal(sum.Sum(nil), gotSum[:]) {
		return ErrChecksum
	}

	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		// The checksum matched, so the bytes are exactly what the
		// writer produced: this is a schema drift the version field
		// did not catch (same FormatVersion, changed type).
		return fmt.Errorf("%w: payload verifies but does not decode as %s: %v", ErrVersion, kind, err)
	}
	return nil
}

// readPayload reads the declared payload without trusting the length
// for one up-front allocation: a corrupt header can declare anything
// up to maxPayload, so the buffer grows only as real bytes arrive and
// a truncated file fails after reading what actually exists.
func readPayload(r io.Reader, n uint64) ([]byte, error) {
	var buf bytes.Buffer
	buf.Grow(int(min(n, 1<<20)))
	if _, err := io.CopyN(&buf, r, int64(n)); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: file ends inside payload", ErrTruncated)
		}
		return nil, fmt.Errorf("artifact: read payload: %w", err)
	}
	return buf.Bytes(), nil
}

// readFull wraps io.ReadFull, converting short reads into ErrTruncated
// with the section that was cut off.
func readFull(r io.Reader, buf []byte, section string) error {
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("%w: file ends inside %s", ErrTruncated, section)
		}
		return fmt.Errorf("artifact: read %s: %w", section, err)
	}
	return nil
}

// WriteFile atomically writes v as a container of the given kind to
// path: the bytes go to a temp file in the same directory, are synced,
// and are renamed over path only on success. A crash mid-write leaves
// at worst a stray temp file, never a corrupt artifact under path.
func WriteFile(path, kind string, v any) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ehdl-artifact-*")
	if err != nil {
		return fmt.Errorf("artifact: %s: %w", path, err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = Encode(tmp, kind, v); err != nil {
		return fmt.Errorf("artifact: %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("artifact: %s: sync: %w", path, err)
	}
	// CreateTemp opens at 0600; artifacts are shareable data files, so
	// restore the conventional os.Create permissions before publishing.
	if err = tmp.Chmod(0o644); err != nil {
		return fmt.Errorf("artifact: %s: chmod: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("artifact: %s: close: %w", path, err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("artifact: %s: %w", path, err)
	}
	return nil
}

// ReadFile reads and fully verifies the container at path, decoding
// its payload into v. Errors name the file and wrap the typed
// sentinels above.
func ReadFile(path, kind string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("artifact: %w", err)
	}
	defer f.Close()
	if err := Decode(f, kind, v); err != nil {
		return fmt.Errorf("artifact: %s: %w", path, err)
	}
	return nil
}
