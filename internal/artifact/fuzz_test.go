package artifact

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// fuzzPayload is a small but structurally interesting gob value.
type fuzzPayload struct {
	Name    string
	Weights []float64
	Tags    map[string]int
}

const fuzzKind = "test.FuzzPayload"

// FuzzLoadArtifact throws arbitrary bytes at the container parser.
// The contract under fuzz: Decode never panics, and every failure is
// one of the typed sentinels — no raw gob/binary errors escape to a
// caller (the CLI smoke tests grep user-facing output for "gob:").
func FuzzLoadArtifact(f *testing.F) {
	valid := encodeValid(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("EHDLMODL"))                 // magic only
	f.Add(valid[:len(valid)-7])               // truncated checksum
	f.Add(append([]byte(nil), valid[:20]...)) // truncated header
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)/2] ^= 0x40 // flip a payload bit: checksum must catch it
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		var v fuzzPayload
		err := Decode(bytes.NewReader(data), fuzzKind, &v)
		if err == nil {
			return
		}
		if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrVersion) &&
			!errors.Is(err, ErrChecksum) && !errors.Is(err, ErrTruncated) &&
			!errors.Is(err, ErrKind) {
			t.Fatalf("untyped decode error for %d bytes: %v", len(data), err)
		}
		// Raw decoder text may appear only inside the ErrVersion
		// schema-drift diagnosis, where the container itself verified.
		if strings.Contains(err.Error(), "gob:") && !errors.Is(err, ErrVersion) {
			t.Fatalf("raw gob error leaked: %v", err)
		}
	})
}

func encodeValid(f *testing.F) []byte {
	f.Helper()
	var buf bytes.Buffer
	err := Encode(&buf, fuzzKind, fuzzPayload{
		Name:    "fuzz",
		Weights: []float64{1, 2.5, -3},
		Tags:    map[string]int{"a": 1},
	})
	if err != nil {
		f.Fatalf("Encode: %v", err)
	}
	return buf.Bytes()
}
