package artifact

import (
	"bytes"
	"encoding/gob"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type payload struct {
	Name string
	Vals []int16
}

// rawGob mimics a pre-container artifact: a bare gob stream.
func rawGob(t *testing.T, v any) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := gob.NewEncoder(&b).Encode(v); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func encodeBytes(t *testing.T, kind string, v any) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := Encode(&b, kind, v); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func TestRoundTrip(t *testing.T) {
	want := payload{Name: "m", Vals: []int16{1, -2, 3, 32767, -32768}}
	raw := encodeBytes(t, "test.payload", &want)

	var got payload
	if err := Decode(bytes.NewReader(raw), "test.payload", &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != want.Name || len(got.Vals) != len(want.Vals) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, want)
	}
	for i := range want.Vals {
		if got.Vals[i] != want.Vals[i] {
			t.Fatalf("val %d = %d, want %d", i, got.Vals[i], want.Vals[i])
		}
	}

	// Save → load → save must be bit-identical: the container adds no
	// nondeterminism (no timestamps, no randomness).
	again := encodeBytes(t, "test.payload", &got)
	if !bytes.Equal(raw, again) {
		t.Fatal("re-encoding a decoded payload changed the bytes")
	}
}

// TestCorruptedStreams drives the reader over every malformation the
// container must catch, asserting the typed sentinel for each.
func TestCorruptedStreams(t *testing.T) {
	good := encodeBytes(t, "test.payload", &payload{Name: "x", Vals: []int16{9, 8, 7}})

	mut := func(f func(b []byte) []byte) []byte {
		c := append([]byte(nil), good...)
		return f(c)
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty file", nil, ErrTruncated},
		{"truncated inside magic", good[:4], ErrTruncated},
		{"truncated inside header", good[:10], ErrTruncated},
		{"truncated inside payload", good[:len(good)-40], ErrTruncated},
		{"truncated inside checksum", good[:len(good)-5], ErrTruncated},
		{"bad magic", mut(func(b []byte) []byte { b[0] = 'X'; return b }), ErrBadMagic},
		{"raw gob blob (old format)", rawGob(t, &payload{Name: "legacy", Vals: []int16{1, 2}}), ErrBadMagic},
		{"future version", mut(func(b []byte) []byte { b[8+3] = 99; return b }), ErrVersion},
		{"flipped payload byte", mut(func(b []byte) []byte { b[len(b)-40] ^= 0x40; return b }), ErrChecksum},
		{"flipped checksum byte", mut(func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }), ErrChecksum},
		{"flipped length byte", mut(func(b []byte) []byte {
			// Shrinking the declared payload length keeps the read in
			// bounds but desynchronizes the checksum.
			b[8+4+2+len("test.payload")+7]--
			return b
		}), ErrChecksum},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var v payload
			err := Decode(bytes.NewReader(tc.data), "test.payload", &v)
			if err == nil {
				t.Fatal("decode accepted corrupt stream")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestKindMismatch(t *testing.T) {
	raw := encodeBytes(t, "test.payload", &payload{Name: "x"})
	var v payload
	err := Decode(bytes.NewReader(raw), "other.kind", &v)
	if !errors.Is(err, ErrKind) {
		t.Fatalf("err = %v, want ErrKind", err)
	}
}

func TestSchemaDriftSameVersion(t *testing.T) {
	// A checksum-valid payload that is not gob for the target type:
	// must surface as a version problem, never silent zero fields.
	raw := encodeBytes(t, "test.payload", &struct{ Completely string }{"different"})
	var v struct{ N []float64 }
	err := Decode(bytes.NewReader(raw), "test.payload", &v)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.gob")

	if err := WriteFile(path, "test.payload", &payload{Name: "v1", Vals: []int16{1}}); err != nil {
		t.Fatal(err)
	}
	var v1 payload
	if err := ReadFile(path, "test.payload", &v1); err != nil {
		t.Fatal(err)
	}

	// A failing write (unencodable payload: gob rejects funcs) must
	// leave the existing artifact untouched and no temp litter.
	type bad struct{ F func() }
	if err := WriteFile(path, "test.payload", &bad{}); err == nil {
		t.Fatal("WriteFile accepted an unencodable payload")
	}
	var again payload
	if err := ReadFile(path, "test.payload", &again); err != nil {
		t.Fatalf("original artifact damaged by failed write: %v", err)
	}
	if again.Name != "v1" {
		t.Fatalf("original artifact content changed: %+v", again)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".ehdl-artifact-") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("unexpected files in dir: %v", entries)
	}
}

func TestWriteFilePermissions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.gob")
	if err := WriteFile(path, "test.payload", &payload{Name: "p"}); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// CreateTemp opens at 0600; published artifacts must be world
	// readable like os.Create's.
	if perm := info.Mode().Perm(); perm != 0o644 {
		t.Fatalf("artifact mode %o, want 644", perm)
	}
}

func TestReadFileMissing(t *testing.T) {
	err := ReadFile(filepath.Join(t.TempDir(), "nope.gob"), "test.payload", &payload{})
	if err == nil {
		t.Fatal("ReadFile succeeded on a missing file")
	}
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v, want wrapped os.ErrNotExist", err)
	}
}
