// Package cache is a content-addressed store of trained-model
// artifacts. The paper's workflow trains once on the host and deploys
// many times; before this cache, every paperbench/test invocation
// retrained the three task models from scratch. An entry is keyed by
// the SHA-256 of everything that determines the training outcome —
// the architecture spec, the dataset parameters, and the full RAD
// pipeline configuration — so a hit is guaranteed to be bit-identical
// to retraining (training is deterministic), and any change to those
// inputs naturally misses.
//
// Entries are stored through internal/artifact's checksummed
// container; a corrupt or version-skewed entry is treated as a miss
// (and removed), never as data. Invalidation is therefore automatic
// for input changes and manual for code changes: delete the cache
// directory (or bump artifact.FormatVersion) after modifying the
// training pipeline itself.
package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"ehdl/internal/artifact"
	"ehdl/internal/nn"
	"ehdl/internal/quant"
	"ehdl/internal/rad"
	"ehdl/internal/train"
)

// EnvDir is the environment variable overriding the default cache
// location.
const EnvDir = "EHDL_MODEL_CACHE"

// Spec names everything that determines a training run's outcome.
type Spec struct {
	// Dataset is the generator name ("MNIST", "HAR", "OKG").
	Dataset string
	// TrainSamples/TestSamples/Seed parameterize the generator.
	TrainSamples int
	TestSamples  int
	Seed         int64
	// Arch is the candidate architecture (name + full layer specs).
	Arch *nn.Arch
	// Config is the complete RAD pipeline configuration.
	Config rad.PipelineConfig
}

// Key returns the content address of the spec: a SHA-256 over its
// canonical JSON encoding plus the artifact format version (so a
// payload-schema bump invalidates every old entry at once).
func (s Spec) Key() string {
	blob, err := json.Marshal(struct {
		Format uint32
		Spec   Spec
	}{artifact.FormatVersion, s})
	if err != nil {
		// Spec is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("cache: marshal spec: %v", err))
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// Entry is the cached outcome of one training run — the deployable
// model plus the scalar results experiments and CLIs report. The
// float network is deliberately not cached: nothing downstream of
// training consumes it, and it triples the entry size.
type Entry struct {
	TaskName      string
	Model         *quant.Model
	FloatAccuracy float64
	QuantAccuracy float64
	Prune         []train.PruneResult
	EstCycles     uint64
}

// Cache is a directory of keyed entries.
type Cache struct {
	dir string
}

// DefaultDir resolves the cache location: $EHDL_MODEL_CACHE if set,
// else <user cache dir>/ehdl/models.
func DefaultDir() (string, error) {
	if dir := os.Getenv(EnvDir); dir != "" {
		return dir, nil
	}
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("cache: no user cache dir (set %s): %w", EnvDir, err)
	}
	return filepath.Join(base, "ehdl", "models"), nil
}

// Open returns a cache rooted at dir, creating it if needed. An empty
// dir selects DefaultDir.
func Open(dir string) (*Cache, error) {
	if dir == "" {
		var err error
		if dir, err = DefaultDir(); err != nil {
			return nil, err
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".ehdl")
}

// Load returns the entry for key, or (nil, nil) on a miss. A file
// that exists but fails container verification or model validation is
// removed and reported as a miss: the caller retrains and overwrites,
// so the cache self-heals.
func (c *Cache) Load(key string) (*Entry, error) {
	path := c.path(key)
	if _, err := os.Stat(path); err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("cache: %w", err)
	}
	var e Entry
	if err := artifact.ReadFile(path, artifact.KindTrainedCache, &e); err != nil {
		os.Remove(path)
		return nil, nil
	}
	if e.Model == nil || e.Model.Validate() != nil {
		os.Remove(path)
		return nil, nil
	}
	return &e, nil
}

// Store writes the entry under key (atomically, via the artifact
// container).
func (c *Cache) Store(key string, e *Entry) error {
	if e == nil || e.Model == nil {
		return fmt.Errorf("cache: refusing to store an empty entry")
	}
	if err := e.Model.Validate(); err != nil {
		return fmt.Errorf("cache: refusing to store an invalid model: %w", err)
	}
	return artifact.WriteFile(c.path(key), artifact.KindTrainedCache, e)
}
