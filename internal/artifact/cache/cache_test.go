package cache

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ehdl/internal/nn"
	"ehdl/internal/quant"
	"ehdl/internal/rad"
)

func testModel(t *testing.T, seed int64) *quant.Model {
	t.Helper()
	arch := &nn.Arch{
		Name: "t", InShape: [3]int{1, 1, 16}, NumClasses: 4,
		Specs: []nn.LayerSpec{
			{Kind: "dense", In: 16, Out: 8},
			{Kind: "relu", N: 8},
			{Kind: "dense", In: 8, Out: 4},
		},
	}
	rng := rand.New(rand.NewSource(seed))
	net := arch.Build(rng)
	calib := make([][]float64, 3)
	for i := range calib {
		x := make([]float64, 16)
		for j := range x {
			x[j] = rng.Float64()*2 - 1
		}
		calib[i] = x
	}
	m, err := quant.Quantize(net, arch, calib)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func testSpec() Spec {
	return Spec{
		Dataset:      "MNIST",
		TrainSamples: 300,
		TestSamples:  60,
		Seed:         1,
		Arch:         nn.MNISTArch(128, true),
		Config:       rad.DefaultPipelineConfig(),
	}
}

func TestKeyDeterministicAndSensitive(t *testing.T) {
	base := testSpec()
	if base.Key() != testSpec().Key() {
		t.Fatal("identical specs hash differently")
	}
	perturb := []func(*Spec){
		func(s *Spec) { s.Dataset = "HAR" },
		func(s *Spec) { s.TrainSamples++ },
		func(s *Spec) { s.TestSamples++ },
		func(s *Spec) { s.Seed++ },
		func(s *Spec) { s.Arch = nn.MNISTArch(64, true) },
		func(s *Spec) { s.Arch = nn.MNISTArch(128, false) },
		func(s *Spec) { s.Config.Train.Epochs++ },
		func(s *Spec) { s.Config.ADMM.Rounds++ },
		func(s *Spec) { s.Config.Seed++ },
		func(s *Spec) { s.Config.CalibSamples++ },
	}
	seen := map[string]bool{base.Key(): true}
	for i, f := range perturb {
		s := testSpec()
		f(&s)
		k := s.Key()
		if seen[k] {
			t.Fatalf("perturbation %d did not change the key", i)
		}
		seen[k] = true
	}
}

func TestStoreLoadRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testSpec().Key()

	if e, err := c.Load(key); err != nil || e != nil {
		t.Fatalf("cold cache: entry=%v err=%v, want nil/nil", e, err)
	}

	want := &Entry{
		TaskName:      "MNIST",
		Model:         testModel(t, 2),
		FloatAccuracy: 0.91,
		QuantAccuracy: 0.89,
		EstCycles:     12345,
	}
	if err := c.Store(key, want); err != nil {
		t.Fatal(err)
	}
	got, err := c.Load(key)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("warm cache missed")
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("cached entry differs from stored entry")
	}
}

func TestCorruptEntryIsAMissAndSelfHeals(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testSpec().Key()
	if err := c.Store(key, &Entry{TaskName: "x", Model: testModel(t, 3)}); err != nil {
		t.Fatal(err)
	}
	path := c.path(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-50] ^= 0x20
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if e, err := c.Load(key); err != nil || e != nil {
		t.Fatalf("corrupt entry: entry=%v err=%v, want miss", e, err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt entry not removed")
	}
}

func TestStoreRejectsInvalid(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store("k", nil); err == nil {
		t.Fatal("stored nil entry")
	}
	m := testModel(t, 4)
	m.Name = ""
	if err := c.Store("k", &Entry{Model: m}); err == nil {
		t.Fatal("stored invalid model")
	}
}

func TestDefaultDirEnvOverride(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "override")
	t.Setenv(EnvDir, dir)
	got, err := DefaultDir()
	if err != nil {
		t.Fatal(err)
	}
	if got != dir {
		t.Fatalf("DefaultDir = %q, want %q", got, dir)
	}
}
