package harvest

import (
	"math"
	"strings"
	"testing"
)

// mustTrace builds the test trace: ramp up over 1 s, plateau for 2 s,
// ramp down over 1 s (mean 3 mW when repeating).
func mustTrace(t *testing.T, repeat bool) *TraceProfile {
	t.Helper()
	p, err := NewTraceProfile([]float64{0, 1, 3, 4}, []float64{0, 4e-3, 4e-3, 0}, repeat)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// analyticProfiles enumerates every built-in profile as (name,
// profile) pairs for table tests.
func analyticProfiles(t *testing.T) map[string]Analytic {
	t.Helper()
	return map[string]Analytic{
		"const":        ConstantProfile{Watts: 5e-3},
		"square":       SquareProfile{PeakWatts: 5e-3, Period: 0.1, Duty: 0.5},
		"square-slow":  SquareProfile{PeakWatts: 2e-3, Period: 1, Duty: 0.01},
		"sine":         SineProfile{PeakWatts: 5e-3, Period: 0.1},
		"trace-repeat": mustTrace(t, true),
		"trace-hold":   mustTrace(t, false),
	}
}

// numEnergy is the brute-force Riemann reference for EnergyBetween.
func numEnergy(p Profile, t0, t1 float64, n int) float64 {
	h := (t1 - t0) / float64(n)
	var sum float64
	for i := 0; i < n; i++ {
		sum += p.PowerAt(t0+(float64(i)+0.5)*h) * h
	}
	return sum
}

func TestEnergyBetweenMatchesNumericIntegral(t *testing.T) {
	for name, p := range analyticProfiles(t) {
		for _, iv := range [][2]float64{{0, 0.23}, {0.017, 1.9}, {3.3, 9.71}, {0.05, 0.05}} {
			got := p.EnergyBetween(iv[0], iv[1])
			n := 400000
			want := numEnergy(p, iv[0], iv[1], n)
			// Midpoint sampling mislocates discontinuities by up to
			// one sub-step each.
			tol := 5e-3 * (iv[1] - iv[0]) / float64(n) * 8
			if tol < 1e-15 {
				tol = 1e-15
			}
			if math.Abs(got-want) > tol {
				t.Errorf("%s: EnergyBetween(%g,%g) = %v, numeric %v", name, iv[0], iv[1], got, want)
			}
		}
	}
}

func TestNextChangeAdvancesAndPowerMonotone(t *testing.T) {
	for name, p := range analyticProfiles(t) {
		tt := 0.013
		for i := 0; i < 60; i++ {
			u := p.NextChange(tt)
			if math.IsInf(u, 1) {
				if _, periodic := p.(Periodic); periodic && p.(Periodic).ProfilePeriod() > 0 {
					t.Errorf("%s: periodic profile returned +Inf NextChange", name)
				}
				break
			}
			if u <= tt {
				t.Fatalf("%s: NextChange(%v) = %v did not advance", name, tt, u)
			}
			// Power must be monotone on [tt, u).
			span := u - tt
			prev := p.PowerAt(tt)
			dir := 0.0
			for k := 1; k <= 16; k++ {
				cur := p.PowerAt(tt + span*float64(k)/16.0*(1-1e-12))
				d := cur - prev
				if d*dir < 0 && math.Abs(d) > 1e-15 {
					t.Fatalf("%s: power not monotone on [%v,%v)", name, tt, u)
				}
				if math.Abs(d) > 1e-15 {
					dir = d
				}
				prev = cur
			}
			tt = u
		}
	}
}

func TestMeanPower(t *testing.T) {
	cases := []struct {
		p    Analytic
		want float64
	}{
		{ConstantProfile{Watts: 2e-3}, 2e-3},
		{SquareProfile{PeakWatts: 4e-3, Period: 1, Duty: 0.25}, 1e-3},
		{SineProfile{PeakWatts: 3e-3, Period: 0.5}, 2 * 3e-3 / math.Pi},
		{mustTrace(t, true), 3e-3},
		{mustTrace(t, false), 0},
	}
	for i, c := range cases {
		if got := c.p.MeanPower(); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: MeanPower = %v, want %v", i, got, c.want)
		}
	}
}

// drainAt advances the capacitor to absolute time at and browns it
// out, leaving the store at the VOff floor.
func drainAt(t *testing.T, c *Capacitor, at float64) {
	t.Helper()
	if at > c.Now() {
		c.Draw(0, at-c.Now())
	}
	if c.Draw(c.energyAt(c.cfg.VMax)*1e9*2, 1e-3) {
		t.Fatal("overdraw did not brown out")
	}
}

// TestAnalyticRechargeMatchesEulerOracle is the tentpole's validation:
// the closed-form off-times must agree with the retained fixed-step
// integrator within 0.1% for every profile, from several brown-out
// phases.
func TestAnalyticRechargeMatchesEulerOracle(t *testing.T) {
	for name, p := range analyticProfiles(t) {
		for _, at := range []float64{0.004, 0.071, 1.33, 2.6} {
			ca := mustCap(t, PaperConfig(), p)
			ce := mustCap(t, PaperConfig(), p)
			drainAt(t, ca, at)
			drainAt(t, ce, at)

			offA, okA := ca.Recharge()
			if !okA {
				t.Fatalf("%s@%g: analytic recharge reported dead", name, at)
			}
			step := offA / 5e4
			offE, okE := ce.RechargeEuler(step, offA*2+10)
			if !okE {
				t.Fatalf("%s@%g: euler oracle hit horizon", name, at)
			}
			if rel := math.Abs(offA-offE) / offE; rel > 1e-3 {
				t.Errorf("%s@%g: analytic off %v vs euler %v (rel %v)", name, at, offA, offE, rel)
			}
			if v := ca.Voltage(); math.Abs(v-3.3) > 1e-9 {
				t.Errorf("%s@%g: post-recharge voltage %v", name, at, v)
			}
		}
	}
}

// TestAnalyticRechargeWithLeakageMatchesEuler repeats the oracle
// comparison with a parasitic drain, exercising the net-power
// sign-change and zero-floor paths.
func TestAnalyticRechargeWithLeakageMatchesEuler(t *testing.T) {
	cfg := PaperConfig()
	cfg.LeakageW = 0.4e-3
	profiles := map[string]Analytic{
		"const":  ConstantProfile{Watts: 5e-3},
		"square": SquareProfile{PeakWatts: 5e-3, Period: 0.1, Duty: 0.5},
		// Long dark phase: the store floors at zero before recovering.
		"square-floor": SquareProfile{PeakWatts: 2e-3, Period: 10, Duty: 0.5},
		"sine":         SineProfile{PeakWatts: 5e-3, Period: 0.1},
		"trace":        mustTrace(t, true),
	}
	for name, p := range profiles {
		ca := mustCap(t, cfg, p)
		ce := mustCap(t, cfg, p)
		drainAt(t, ca, 0.02)
		drainAt(t, ce, 0.02)
		offA, okA := ca.Recharge()
		if !okA {
			t.Fatalf("%s: analytic recharge reported dead", name)
		}
		offE, okE := ce.RechargeEuler(offA/2e5, offA*2+10)
		if !okE {
			t.Fatalf("%s: euler oracle hit horizon", name)
		}
		if rel := math.Abs(offA-offE) / offE; rel > 1e-3 {
			t.Errorf("%s: leaky analytic off %v vs euler %v (rel %v)", name, offA, offE, rel)
		}
	}
}

// TestSlowSquareRechargeIsNotDead is the horizon-bug regression test:
// a 2-hour-period square wave browned out early in its off-phase needs
// ~88 minutes of waiting — the seed's 3600 s horizon misreported that
// as a dead source; the analytic engine must wait it out.
func TestSlowSquareRechargeIsNotDead(t *testing.T) {
	p := SquareProfile{PeakWatts: 5e-3, Period: 7200, Duty: 0.25}
	c := mustCap(t, PaperConfig(), p)
	drainAt(t, c, 1900) // off-phase starts at t=1800, next on-phase at t=7200
	wait := 7200 - c.Now()
	if wait <= 3600 {
		t.Fatalf("test setup: wait %v does not exceed the old horizon", wait)
	}
	want := wait + c.UsableEnergyJ()/5e-3
	off, ok := c.Recharge()
	if !ok {
		t.Fatal("slow-but-charging source misreported as dead")
	}
	if math.Abs(off-want)/want > 1e-9 {
		t.Errorf("off = %v, want %v", off, want)
	}
	if v := c.Voltage(); math.Abs(v-3.3) > 1e-9 {
		t.Errorf("post-recharge voltage %v", v)
	}
}

// TestEulerOracleStillHasHorizonBug documents the seed behaviour the
// analytic engine replaces: the same slow square wave hits the oracle's
// horizon and is misclassified.
func TestEulerOracleStillHasHorizonBug(t *testing.T) {
	p := SquareProfile{PeakWatts: 5e-3, Period: 7200, Duty: 0.25}
	c := mustCap(t, PaperConfig(), p)
	drainAt(t, c, 1900)
	if _, ok := c.RechargeEuler(1e-4, 3600); ok {
		t.Fatal("euler oracle unexpectedly survived its horizon")
	}
}

// TestDeadSourceVerdicts exercises the analytic exhaustion decision.
func TestDeadSourceVerdicts(t *testing.T) {
	t.Run("zero-constant", func(t *testing.T) {
		c := mustCap(t, PaperConfig(), ConstantProfile{})
		drainAt(t, c, 0.001)
		if _, ok := c.Recharge(); ok {
			t.Fatal("zero source recharged")
		}
	})
	t.Run("leakage-beats-mean", func(t *testing.T) {
		cfg := PaperConfig()
		cfg.LeakageW = 2.6e-3 // square mean is 2.5 mW
		c := mustCap(t, cfg, SquareProfile{PeakWatts: 5e-3, Period: 0.1, Duty: 0.5})
		drainAt(t, c, 0.001)
		if _, ok := c.Recharge(); ok {
			t.Fatal("source below leakage recharged")
		}
	})
	t.Run("intra-period-crossing-beats-negative-mean", func(t *testing.T) {
		// Net energy per period is negative, but the on-phase excursion
		// alone covers the small VOff→VOn deficit: must NOT be dead.
		cfg := Config{CapacitanceF: 100e-6, VOn: 1.9, VOff: 1.8, VMax: 3.6, LeakageW: 2.6e-3}
		c, err := NewCapacitor(cfg, SquareProfile{PeakWatts: 5e-3, Period: 0.1, Duty: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		c.Draw(c.energyAt(cfg.VMax)*1e9*2, 1e-3) // brown out
		if _, ok := c.Recharge(); !ok {
			t.Fatal("intra-period crossing misreported as dead")
		}
		if v := c.Voltage(); math.Abs(v-1.9) > 1e-9 {
			t.Errorf("voltage %v, want 1.9", v)
		}
	})
	t.Run("trace-gone-dark", func(t *testing.T) {
		// A hold-last trace that decays to zero: alive while the trace
		// still has light, dead once past it — a verdict mean power
		// alone cannot make.
		p, err := NewTraceProfile([]float64{0, 1, 2}, []float64{5e-3, 5e-3, 0}, false)
		if err != nil {
			t.Fatal(err)
		}
		bright := mustCap(t, PaperConfig(), p)
		drainAt(t, bright, 0.1)
		if _, ok := bright.Recharge(); !ok {
			t.Fatal("recharge inside the bright region reported dead")
		}
		dark := mustCap(t, PaperConfig(), p)
		drainAt(t, dark, 5)
		if _, ok := dark.Recharge(); ok {
			t.Fatal("recharge after the trace went dark succeeded")
		}
	})
}

// TestEnergyConservation is the tentpole's property test: across any
// Draw/Recharge sequence, harvested − consumed = Δstored (leak-free
// config, draws sized to stay clear of the VMax clamp; brown-out
// clamping is accounted explicitly).
func TestEnergyConservation(t *testing.T) {
	for name, p := range analyticProfiles(t) {
		c := mustCap(t, PaperConfig(), p)
		floor := c.energyAt(1.8)
		// Invariant: EnergyJ == base + HarvestedJ − consumed.
		base := c.EnergyJ()
		var consumed float64
		for i := 0; i < 4000; i++ {
			// Draws outweigh the worst-case per-step harvest (6.5 µJ)
			// so the store never climbs toward the VMax clamp.
			drawNJ := 8000 + float64(i%7)*950 // 8–13.7 µJ
			dt := 1e-4 + float64(i%5)*3e-4
			if c.EnergyJ()-floor > drawNJ*1e-9*2 {
				if !c.Draw(drawNJ, dt) {
					t.Fatalf("%s: draw with headroom failed at step %d", name, i)
				}
				consumed += drawNJ * 1e-9
			} else {
				// Brown out: the failing draw clamps the store at the
				// VOff floor; whatever it held beyond that (plus the
				// in-window harvest) was consumed by the aborted op.
				eBefore := c.EnergyJ()
				hBefore := c.HarvestedJ()
				if c.Draw(1e12, 1e-4) {
					t.Fatalf("%s: 1 kJ draw succeeded", name)
				}
				consumed += eBefore + (c.HarvestedJ() - hBefore) - c.EnergyJ()
				if _, ok := c.Recharge(); !ok {
					if name == "trace-hold" {
						break // the trace legitimately went dark
					}
					t.Fatalf("%s: recharge reported dead at step %d", name, i)
				}
			}
			got := c.EnergyJ()
			want := base + c.HarvestedJ() - consumed
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("%s: conservation broken at step %d: stored %v, want %v (drift %v)",
					name, i, got, want, got-want)
			}
		}
	}
}

func TestProfileValidation(t *testing.T) {
	bad := []Validator{
		SquareProfile{PeakWatts: 1e-3, Period: 0.1, Duty: 0},
		SquareProfile{PeakWatts: 1e-3, Period: 0.1, Duty: 1.5},
		SquareProfile{PeakWatts: 1e-3, Period: 0, Duty: 0.5},
		SquareProfile{PeakWatts: -1, Period: 0.1, Duty: 0.5},
		SineProfile{PeakWatts: 1e-3, Period: 0},
		SineProfile{PeakWatts: math.NaN(), Period: 1},
		ConstantProfile{Watts: -2},
		ConstantProfile{Watts: math.Inf(1)},
	}
	for i, v := range bad {
		if err := v.Validate(); err == nil {
			t.Errorf("case %d (%+v): invalid profile accepted", i, v)
		}
		if _, err := NewCapacitor(PaperConfig(), v.(Profile)); err == nil {
			t.Errorf("case %d: NewCapacitor accepted invalid profile", i)
		}
	}
	if _, err := NewSquareProfile(5e-3, 0.1, 0.5); err != nil {
		t.Errorf("valid square rejected: %v", err)
	}
	if _, err := NewSineProfile(5e-3, 0.1); err != nil {
		t.Errorf("valid sine rejected: %v", err)
	}
	if _, err := NewConstantProfile(5e-3); err != nil {
		t.Errorf("valid constant rejected: %v", err)
	}
	if _, err := NewCapacitor(PaperConfig(), nil); err == nil {
		t.Error("nil profile accepted")
	}
	cfg := PaperConfig()
	cfg.LeakageW = -1
	if _, err := NewCapacitor(cfg, ConstantProfile{1e-3}); err == nil {
		t.Error("negative leakage accepted")
	}
}

func TestTraceProfileShape(t *testing.T) {
	rep := mustTrace(t, true)
	hold := mustTrace(t, false)
	cases := []struct {
		p    Profile
		t    float64
		want float64
	}{
		{rep, 0, 0}, {rep, 0.5, 2e-3}, {rep, 1, 4e-3}, {rep, 2, 4e-3},
		{rep, 3.5, 2e-3}, {rep, 4.5, 2e-3}, {rep, 9, 4e-3},
		{hold, 3.5, 2e-3}, {hold, 4, 0}, {hold, 100, 0},
	}
	for i, c := range cases {
		if got := c.p.PowerAt(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: PowerAt(%g) = %v, want %v", i, c.t, got, c.want)
		}
	}
	if got := rep.NextChange(0.2); got != 1 {
		t.Errorf("NextChange(0.2) = %v, want 1", got)
	}
	if got := rep.NextChange(1); got != 3 {
		t.Errorf("NextChange(1) = %v, want 3", got)
	}
	if got := rep.NextChange(4.2); got != 5 {
		t.Errorf("NextChange(4.2) = %v, want 5", got)
	}
	if got := hold.NextChange(4.2); !math.IsInf(got, 1) {
		t.Errorf("hold NextChange(4.2) = %v, want +Inf", got)
	}
	if got := rep.Duration(); got != 4 {
		t.Errorf("Duration = %v", got)
	}
}

func TestLoadTraceCSV(t *testing.T) {
	src := `
# solar morning, 1-second resolution
0, 0
1, 4e-3

3,4e-3
4, 0
`
	p, err := LoadTraceCSV(strings.NewReader(src), true)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.PowerAt(2); math.Abs(got-4e-3) > 1e-12 {
		t.Errorf("PowerAt(2) = %v", got)
	}
	if got := p.MeanPower(); math.Abs(got-3e-3) > 1e-12 {
		t.Errorf("MeanPower = %v", got)
	}
	bad := []string{
		"0,1e-3",                     // single point
		"0,1e-3\n0.5,2e-3\n0.5,3e-3", // non-increasing
		"1,1e-3\n2,2e-3",             // does not start at 0
		"0,-1\n1,0",                  // negative power
		"0,1e-3\n1",                  // malformed line
		"0,abc\n1,0",                 // bad number
	}
	for i, s := range bad {
		if _, err := LoadTraceCSV(strings.NewReader(s), false); err == nil {
			t.Errorf("bad trace %d accepted", i)
		}
	}
}

// TestRechargeHarvestAccounting: a recharge must add exactly the
// VOff→VOn deficit to the store, and the harvest meter must grow by at
// least that much (gross ≥ net).
func TestRechargeHarvestAccounting(t *testing.T) {
	for name, p := range analyticProfiles(t) {
		c := mustCap(t, PaperConfig(), p)
		drainAt(t, c, 0.02)
		h0 := c.HarvestedJ()
		e0 := c.EnergyJ()
		if _, ok := c.Recharge(); !ok {
			t.Fatalf("%s: recharge dead", name)
		}
		deficit := c.EnergyJ() - e0
		want := c.UsableEnergyJ()
		if math.Abs(deficit-want)/want > 1e-9 {
			t.Errorf("%s: recharge added %v J, want %v J", name, deficit, want)
		}
		if harvested := c.HarvestedJ() - h0; harvested < deficit*(1-1e-9) {
			t.Errorf("%s: harvested %v J < stored %v J", name, harvested, deficit)
		}
	}
}
