// The event-driven energy engine: charge and discharge are solved in
// closed form per profile segment, so a recharge that spans hours of
// simulated off-time costs O(profile segments) — in practice O(1) —
// instead of O(time / 100 µs) Euler steps, and exhaustion ("the source
// is dead") is an analytic property of the profile instead of a search
// horizon.

package harvest

import "math"

// Analytic is implemented by profiles whose energy integral has a
// closed form. The engine's contract:
//
//   - EnergyBetween must be the exact integral of PowerAt, not a
//     numerical approximation.
//   - Power must be monotone on every segment [t, NextChange(t)), so a
//     first-crossing search inside a segment is well posed.
//   - NextChange must return a time strictly greater than its argument,
//     and a profile must either eventually return +Inf (a final
//     constant-power tail) or implement Periodic.
type Analytic interface {
	Profile
	// EnergyBetween returns ∫ PowerAt(s) ds over [t0, t1] in joules,
	// t1 >= t0. It may span any number of segment boundaries.
	EnergyBetween(t0, t1 float64) float64
	// NextChange returns the earliest time u > t at which the profile
	// switches analytic segment (square edge, sine quarter-period,
	// trace breakpoint), or +Inf when power is constant forever after.
	NextChange(t float64) float64
	// MeanPower returns the long-run average harvested power.
	MeanPower() float64
}

// Periodic is implemented by Analytic profiles that repeat exactly
// with a fixed period, letting the engine skip whole periods at once
// and decide exhaustion from a single period's energy budget.
type Periodic interface {
	// ProfilePeriod returns the exact repetition period in seconds, or
	// 0 when the profile is not periodic.
	ProfilePeriod() float64
}

// maxRechargeSegments bounds the engine's segment walk. The walk
// normally terminates in a handful of segments (period skipping covers
// long recharges); the bound only guards against malformed Analytic
// implementations, and tripping it falls back to the Euler integrator.
const maxRechargeSegments = 1 << 20

// Fallback integration parameters for profiles that implement only
// Profile (the seed's values).
const (
	eulerStep    = 1e-4
	eulerHorizon = 3600.0
)

// ---------------------------------------------------------------------
// Analytic implementations for the built-in profiles.

// EnergyBetween implements Analytic.
func (p ConstantProfile) EnergyBetween(t0, t1 float64) float64 { return p.Watts * (t1 - t0) }

// NextChange implements Analytic: constant forever.
func (p ConstantProfile) NextChange(float64) float64 { return math.Inf(1) }

// MeanPower implements Analytic.
func (p ConstantProfile) MeanPower() float64 { return p.Watts }

// ProfilePeriod implements Periodic (aperiodic).
func (p ConstantProfile) ProfilePeriod() float64 { return 0 }

// cumEnergy returns ∫ PowerAt over [0, t].
func (p SquareProfile) cumEnergy(t float64) float64 {
	if p.Period <= 0 {
		return p.PeakWatts * t
	}
	d := p.duty()
	n := math.Floor(t / p.Period)
	r := t - n*p.Period
	return p.PeakWatts * (n*d*p.Period + math.Min(r, d*p.Period))
}

// EnergyBetween implements Analytic.
func (p SquareProfile) EnergyBetween(t0, t1 float64) float64 {
	return p.cumEnergy(t1) - p.cumEnergy(t0)
}

// NextChange implements Analytic: the next on→off or off→on edge.
func (p SquareProfile) NextChange(t float64) float64 {
	if p.Period <= 0 {
		return math.Inf(1)
	}
	d := p.duty()
	n := math.Floor(t / p.Period)
	for k := 0.0; k < 3; k++ {
		base := (n + k) * p.Period
		if c := base + d*p.Period; c > t {
			return c
		}
		if c := base + p.Period; c > t {
			return c
		}
	}
	return t + p.Period
}

// MeanPower implements Analytic.
func (p SquareProfile) MeanPower() float64 {
	if p.Period <= 0 {
		return p.PeakWatts
	}
	return p.PeakWatts * p.duty()
}

// ProfilePeriod implements Periodic.
func (p SquareProfile) ProfilePeriod() float64 {
	if p.Period <= 0 {
		return 0
	}
	return p.Period
}

// cumEnergy returns ∫ PowerAt over [0, t]: the rectified sine has
// half-period H = Period/2, each contributing 2·Pk·H/π.
func (p SineProfile) cumEnergy(t float64) float64 {
	if p.Period <= 0 {
		return p.PeakWatts * t
	}
	h := p.Period / 2
	n := math.Floor(t / h)
	r := t - n*h
	return p.PeakWatts * h / math.Pi * (2*n + 1 - math.Cos(math.Pi*r/h))
}

// EnergyBetween implements Analytic.
func (p SineProfile) EnergyBetween(t0, t1 float64) float64 {
	return p.cumEnergy(t1) - p.cumEnergy(t0)
}

// NextChange implements Analytic: quarter-period boundaries (the
// rectified sine is monotone between consecutive peaks and zeros).
func (p SineProfile) NextChange(t float64) float64 {
	if p.Period <= 0 {
		return math.Inf(1)
	}
	q := p.Period / 4
	k := math.Floor(t / q)
	if c := (k + 1) * q; c > t {
		return c
	}
	return (k + 2) * q
}

// MeanPower implements Analytic: 2·Pk/π.
func (p SineProfile) MeanPower() float64 {
	if p.Period <= 0 {
		return p.PeakWatts
	}
	return 2 * p.PeakWatts / math.Pi
}

// ProfilePeriod implements Periodic: |sin| repeats every half period.
func (p SineProfile) ProfilePeriod() float64 {
	if p.Period <= 0 {
		return 0
	}
	return p.Period / 2
}

// ---------------------------------------------------------------------
// The engine.

// rechargeAnchor returns the time basis the analytic engine solves
// on: the phase accumulator for periodic profiles, zero for constant
// ones, absolute time otherwise (see integrationMode).
func (c *Capacitor) rechargeAnchor() float64 {
	switch c.mode {
	case modePeriodic:
		return c.phase
	case modeConstant:
		return 0
	default:
		return c.nowSec
	}
}

// finishCycle commits a successful recharge that ended at anchor time
// t after harvesting gross joules during the off-time: the store is
// full, the clock advances by the off-time, the phase wraps, and the
// boot cycle's harvest (discharge plus recharge) folds into the
// lifetime meter as one per-cycle delta.
func (c *Capacitor) finishCycle(off, t, gross, target float64) {
	c.nowSec += off
	if c.mode == modePeriodic {
		c.phase = math.Mod(t, c.period)
	}
	c.energyJ = target
	cycle := c.cycleHarvestJ + gross
	c.harvestedJ += cycle
	c.lastCycleJ = cycle
	c.cycleHarvestJ = 0
}

// rechargeAnalytic advances off-time until the store reaches VOn,
// walking profile segments and solving each in closed form. On a dead
// source it returns false WITHOUT mutating the capacitor: exhaustion
// is a verdict about the profile, not a span of simulated time.
func (c *Capacitor) rechargeAnalytic(ap Analytic) (float64, bool) {
	target := c.energyAt(c.cfg.VOn)
	leak := c.cfg.LeakageW
	if c.energyJ >= target {
		c.finishCycle(0, c.rechargeAnchor(), 0, c.energyJ)
		return 0, true
	}
	t0 := c.rechargeAnchor()
	t, e := t0, c.energyJ
	var harvested float64

	var period float64
	if pp, ok := ap.(Periodic); ok {
		period = pp.ProfilePeriod()
	}
	var netPerPeriod, grossPerPeriod float64
	if period > 0 {
		grossPerPeriod = ap.EnergyBetween(t, t+period)
		netPerPeriod = grossPerPeriod - leak*period
	}
	// canCharge: a periodic source whose net energy per period is
	// positive always reaches VOn eventually. Otherwise the store can
	// only cross VOn on an intra-period excursion; the anchor check
	// below detects when excursions have stopped growing — the
	// analytic replacement for the seed's 3600 s horizon.
	canCharge := period <= 0 || netPerPeriod > 0
	anchorNext := t0 + period
	anchorE := e

	for iter := 0; iter < maxRechargeSegments; iter++ {
		// Skip whole periods when no target crossing or zero-floor
		// contact can occur inside them: the per-period energy is a
		// closed form, so a recharge spanning thousands of power
		// cycles costs the same as one spanning two.
		if canCharge && period > 0 && e >= leak*period {
			if k := math.Floor((target - e - grossPerPeriod) / netPerPeriod); k >= 1 {
				e += k * netPerPeriod
				harvested += k * grossPerPeriod
				t += k * period
			}
		}
		u := ap.NextChange(t)
		if math.IsInf(u, 1) {
			// Final constant-power tail: dead or a one-step solve.
			net := ap.PowerAt(t) - leak
			if net <= 0 {
				return t - t0, false
			}
			dt := (target - e) / net
			harvested += ap.PowerAt(t) * dt
			t += dt
			c.finishCycle(t-t0, t, harvested, target)
			return t - t0, true
		}
		if u <= t {
			// Malformed profile: NextChange failed to advance.
			return c.rechargeEulerResync()
		}
		segEnd := u
		if !canCharge && anchorNext > t && anchorNext < segEnd {
			segEnd = anchorNext // sample e exactly at period anchors
		}
		dt, eEnd, gross, crossed := rechargeSegment(ap, t, segEnd, e, target, leak)
		harvested += gross
		t += dt
		e = eEnd
		if crossed {
			c.finishCycle(t-t0, t, harvested, target)
			return t - t0, true
		}
		if !canCharge && t >= anchorNext {
			if e <= anchorE {
				// One full period brought no net gain at this energy
				// level, and per-period dynamics are monotone in the
				// starting energy: the store can never reach VOn.
				return t - t0, false
			}
			anchorE = e
			anchorNext += period
		}
	}
	// Unreachable for well-formed profiles; integrate as a last resort.
	return c.rechargeEulerResync()
}

// rechargeEulerResync is the malformed-profile fallback: integrate on
// absolute time and drag the phase accumulator along so a periodic
// capacitor stays self-consistent.
func (c *Capacitor) rechargeEulerResync() (float64, bool) {
	off, ok := c.RechargeEuler(eulerStep, eulerHorizon)
	if c.mode == modePeriodic {
		c.phase = math.Mod(c.phase+off, c.period)
	}
	return off, ok
}

// rechargeSegment advances the store across the segment [t, u), on
// which profile power is monotone, with net power p(s)−leak and a
// floor at zero stored energy. It returns the time advanced, the end
// energy, the gross harvested energy, and whether the target was
// reached (in which case the time advanced stops at the crossing).
func rechargeSegment(ap Analytic, t, u, e, target, leak float64) (float64, float64, float64, bool) {
	dur := u - t
	if dur <= 0 {
		return 0, e, 0, false
	}
	if leak == 0 {
		// Net power is the profile power: non-negative, cumulative
		// energy monotone, no floor contact.
		gross := ap.EnergyBetween(t, u)
		if e+gross < target {
			return dur, e + gross, gross, false
		}
		dt := solveCrossing(ap, t, dur, e, target, 0)
		return dt, target, ap.EnergyBetween(t, t+dt), true
	}
	// With leakage the net power can change sign once on a
	// monotone-power segment; split there so each piece has a
	// monotone cumulative.
	bounds := [3]float64{t, u, u}
	pieces := 1
	n0 := ap.PowerAt(t) - leak
	n1 := ap.PowerAt(u-dur*1e-9) - leak
	if (n0 < 0) != (n1 < 0) {
		bounds[1] = powerCrossing(ap, t, u, leak)
		pieces = 2
	}
	var gross float64
	cur := e
	for i := 0; i < pieces; i++ {
		a, b := bounds[i], bounds[i+1]
		if b <= a {
			continue
		}
		pg := ap.EnergyBetween(a, b)
		netE := pg - leak*(b-a)
		if mid := ap.PowerAt(a+(b-a)/2) - leak; mid >= 0 {
			// Rising cumulative: the target can be crossed here.
			if cur+netE >= target {
				dt := solveCrossing(ap, a, b-a, cur, target, leak)
				gross += ap.EnergyBetween(a, a+dt)
				return a + dt - t, target, gross, true
			}
			cur += netE
		} else {
			// Falling cumulative: floor at zero, no crossing.
			cur = math.Max(0, cur+netE)
		}
		gross += pg
	}
	return dur, cur, gross, false
}

// solveCrossing returns the smallest dt in (0, hi] at which
// e + ∫[t,t+dt] p − leak·dt reaches target, by bisection; the
// expression must be monotone non-decreasing on the interval and reach
// target within it.
func solveCrossing(ap Analytic, t, hi, e, target, leak float64) float64 {
	lo := 0.0
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if mid <= lo || mid >= hi {
			break
		}
		if e+ap.EnergyBetween(t, t+mid)-leak*mid >= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// powerCrossing returns the time in [t, u] at which the monotone
// profile power crosses the leakage level, by bisection.
func powerCrossing(ap Analytic, t, u, leak float64) float64 {
	rising := ap.PowerAt(t) < leak
	lo, hi := t, u
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if mid <= lo || mid >= hi {
			break
		}
		above := ap.PowerAt(mid) >= leak
		if above == rising {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}
