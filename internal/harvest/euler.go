package harvest

// RechargeEuler is the seed's fixed-timestep off-time integrator,
// retained as the oracle the analytic engine is validated against (and
// as the fallback for profiles that implement only Profile).
//
// step is the integration step in seconds (the seed used 100 µs);
// horizon is the give-up bound in accumulated off-seconds (the seed
// used 3600 s). The horizon is exactly the misfeature the analytic
// engine removes: a source that is net-charging but needs longer than
// the horizon — e.g. a square wave with a multi-hour period — is
// reported here as dead. Like Recharge, a successful integration
// advances the capacitor's clock, stored energy and harvest meter;
// hitting the horizon leaves whatever partial progress was integrated.
func (c *Capacitor) RechargeEuler(step, horizon float64) (float64, bool) {
	target := c.energyAt(c.cfg.VOn)
	leak := c.cfg.LeakageW
	var off float64
	for c.energyJ < target {
		p := c.profile.PowerAt(c.nowSec)
		c.energyJ += (p - leak) * step
		if c.energyJ < 0 {
			c.energyJ = 0
		}
		if vmax := c.energyAt(c.cfg.VMax); c.energyJ > vmax {
			c.energyJ = vmax
		}
		c.cycleHarvestJ += p * step
		c.nowSec += step
		off += step
		if off > horizon {
			return off, false
		}
	}
	// Fold the finished cycle's harvest (discharge plus recharge) into
	// the lifetime meter, mirroring the analytic path.
	c.lastCycleJ = c.cycleHarvestJ
	c.harvestedJ += c.cycleHarvestJ
	c.cycleHarvestJ = 0
	return off, true
}
