package harvest

import (
	"bytes"
	"math"
	"testing"
)

// FuzzTraceCSV throws arbitrary bytes at the harvest trace loader.
// Contract: never panic; on success the profile is usable — positive
// duration, finite power and energy at any queried time, and a
// stable nonzero fingerprint.
func FuzzTraceCSV(f *testing.F) {
	f.Add([]byte("0,0\n1,0.005\n2,0\n"), false)
	f.Add([]byte("# solar day\n0, 0.001\n43200, 0.012\n86400, 0.001\n"), true)
	f.Add([]byte(""), false)
	f.Add([]byte("0,0\n0.5\n"), false)
	f.Add([]byte("1,nan\n"), true)
	f.Add([]byte("0,1\n0,2\n"), false)

	f.Fuzz(func(t *testing.T, data []byte, repeat bool) {
		p, err := LoadTraceCSV(bytes.NewReader(data), repeat)
		if err != nil {
			return
		}
		d := p.Duration()
		if !(d > 0) || math.IsInf(d, 0) {
			t.Fatalf("accepted trace with duration %v", d)
		}
		if p.Fingerprint() == 0 || p.Fingerprint() != p.Fingerprint() {
			t.Fatalf("unstable or zero fingerprint")
		}
		for _, at := range []float64{0, d / 3, d, 2 * d, 1e6} {
			w := p.PowerAt(at)
			if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
				t.Fatalf("PowerAt(%g) = %v", at, w)
			}
		}
		e := p.EnergyBetween(0, d)
		if math.IsNaN(e) || math.IsInf(e, 0) || e < 0 {
			t.Fatalf("EnergyBetween(0, %g) = %v", d, e)
		}
	})
}
