// Package harvest models the energy-harvesting front end of the
// paper's testbed: an ambient source (emulated there by a SIGLENT
// SDG1032X function generator) charging a 100 µF capacitor that powers
// the MCU between the turn-on and brown-out voltage thresholds.
//
// The capacitor stores E = ½CV². The device boots when V reaches VOn
// and browns out when V falls below VOff, so the usable energy per
// charge cycle is ½C(VOn²−VOff²) — about 0.38 mJ for the paper's
// 100 µF, 3.3 V / 1.8 V configuration. Any inference needing more than
// that must either checkpoint or never complete: Fig. 7(b)'s "X"
// columns fall directly out of this arithmetic.
//
// Off-time (recharge) simulation is event-driven: every built-in
// profile implements Analytic, so charge and discharge are solved in
// closed form per profile segment instead of being integrated with a
// fixed timestep, and "the source is dead" is an analytic property of
// the profile (net energy per period at or below the leakage budget)
// rather than a wall-clock search horizon. The seed's fixed-step Euler
// integrator is retained as RechargeEuler, the oracle the analytic
// engine is validated against.
package harvest

import (
	"fmt"
	"math"
)

// Profile supplies the harvested power (in watts) as a function of
// absolute time. Implementations must be deterministic. Profiles that
// also implement Analytic get the event-driven engine in Draw and
// Recharge; plain Profiles fall back to fixed-step integration.
type Profile interface {
	// PowerAt returns the instantaneous harvested power at time t
	// seconds.
	PowerAt(t float64) float64
}

// Validator is implemented by profiles that can check their own
// parameters. NewCapacitor rejects profiles whose Validate fails, so a
// malformed profile (zero duty cycle, negative power, zero period) is
// an immediate construction error instead of a simulation that spins
// forever waiting for energy that never comes.
type Validator interface {
	Validate() error
}

// ConstantProfile harvests a fixed power, the simplest bench setting.
type ConstantProfile struct {
	Watts float64
}

// NewConstantProfile returns a validated constant profile.
func NewConstantProfile(watts float64) (ConstantProfile, error) {
	p := ConstantProfile{Watts: watts}
	return p, p.Validate()
}

// Validate implements Validator.
func (p ConstantProfile) Validate() error {
	if math.IsNaN(p.Watts) || math.IsInf(p.Watts, 0) || p.Watts < 0 {
		return fmt.Errorf("harvest: constant profile needs finite Watts >= 0, got %g", p.Watts)
	}
	return nil
}

// PowerAt returns the constant power.
func (p ConstantProfile) PowerAt(float64) float64 { return p.Watts }

// SquareProfile alternates between PeakWatts and zero with the given
// period and duty cycle — the function-generator waveform the paper's
// experiments use.
type SquareProfile struct {
	PeakWatts float64
	Period    float64 // seconds
	Duty      float64 // fraction of the period with power, in (0, 1]
}

// NewSquareProfile returns a validated square-wave profile.
func NewSquareProfile(peakWatts, period, duty float64) (SquareProfile, error) {
	p := SquareProfile{PeakWatts: peakWatts, Period: period, Duty: duty}
	return p, p.Validate()
}

// Validate implements Validator: Duty ∈ (0, 1], Period > 0 and
// non-negative peak power.
func (p SquareProfile) Validate() error {
	if math.IsNaN(p.PeakWatts) || math.IsInf(p.PeakWatts, 0) || p.PeakWatts < 0 {
		return fmt.Errorf("harvest: square profile needs finite PeakWatts >= 0, got %g", p.PeakWatts)
	}
	if !(p.Period > 0) || math.IsInf(p.Period, 0) {
		return fmt.Errorf("harvest: square profile needs finite Period > 0, got %g", p.Period)
	}
	if !(p.Duty > 0 && p.Duty <= 1) {
		return fmt.Errorf("harvest: square profile needs Duty in (0, 1], got %g", p.Duty)
	}
	return nil
}

// duty returns the duty cycle clamped to [0, 1] (unvalidated literals
// may carry anything).
func (p SquareProfile) duty() float64 {
	return math.Min(1, math.Max(0, p.Duty))
}

// PowerAt returns PeakWatts during the on-phase of each period.
func (p SquareProfile) PowerAt(t float64) float64 {
	if p.Period <= 0 {
		return p.PeakWatts
	}
	phase := math.Mod(t, p.Period) / p.Period
	if phase < p.Duty {
		return p.PeakWatts
	}
	return 0
}

// SineProfile is a rectified sinusoid, approximating RF or vibration
// harvesting.
type SineProfile struct {
	PeakWatts float64
	Period    float64
}

// NewSineProfile returns a validated rectified-sine profile.
func NewSineProfile(peakWatts, period float64) (SineProfile, error) {
	p := SineProfile{PeakWatts: peakWatts, Period: period}
	return p, p.Validate()
}

// Validate implements Validator.
func (p SineProfile) Validate() error {
	if math.IsNaN(p.PeakWatts) || math.IsInf(p.PeakWatts, 0) || p.PeakWatts < 0 {
		return fmt.Errorf("harvest: sine profile needs finite PeakWatts >= 0, got %g", p.PeakWatts)
	}
	if !(p.Period > 0) || math.IsInf(p.Period, 0) {
		return fmt.Errorf("harvest: sine profile needs finite Period > 0, got %g", p.Period)
	}
	return nil
}

// PowerAt returns the rectified sine power at t.
func (p SineProfile) PowerAt(t float64) float64 {
	if p.Period <= 0 {
		return p.PeakWatts
	}
	return p.PeakWatts * math.Abs(math.Sin(2*math.Pi*t/p.Period))
}

// Config describes the storage front end.
type Config struct {
	CapacitanceF float64 // e.g. 100e-6 for the paper's 100 µF
	VOn          float64 // boot threshold, e.g. 3.3
	VOff         float64 // brown-out threshold, e.g. 1.8
	VMax         float64 // clamp (harvester regulator), e.g. 3.6
	// LeakageW is a constant parasitic drain (capacitor self-discharge
	// plus sleep current), subtracted from the harvested power at all
	// times. Zero — the paper's idealisation — by default. A source
	// whose average power cannot beat the leakage can never recharge.
	LeakageW float64
}

// PaperConfig returns the paper's experimental configuration: 100 µF,
// 3.3 V turn-on, 1.8 V brown-out, 3.6 V clamp, no leakage.
func PaperConfig() Config {
	return Config{CapacitanceF: 100e-6, VOn: 3.3, VOff: 1.8, VMax: 3.6}
}

// integrationMode selects the time basis the capacitor integrates the
// profile on. Periodic analytic profiles are integrated on a phase
// accumulator in [0, period) and constant profiles on a zero anchor,
// so the energy arithmetic of a boot cycle is independent of how much
// absolute time precedes it — steady cycles are bit-repeatable at any
// simulated age, which is what the intermittent runner's analytic
// fast-forward proves its fixed points on (and what keeps million-
// second horizons from losing float resolution). Profiles without a
// closed form, and aperiodic non-constant ones (a hold-last trace),
// integrate on absolute time as before.
type integrationMode int

const (
	modeAbsolute integrationMode = iota
	modeConstant
	modePeriodic
)

// Capacitor is the energy store. It implements device.Supply.
// Starting full (at VOn) is the conventional t=0 state: the device
// boots the moment the experiment begins.
type Capacitor struct {
	cfg     Config
	profile Profile

	mode   integrationMode
	period float64 // profile period (modePeriodic only)
	phase  float64 // profile phase in [0, period) (modePeriodic only)

	energyJ float64 // current stored energy
	nowSec  float64 // absolute simulation time (active + off)

	harvestedJ    float64 // harvested energy folded at each recharge
	cycleHarvestJ float64 // harvested energy of the cycle in progress
	lastCycleJ    float64 // harvested energy of the last full cycle
}

// NewCapacitor returns a capacitor charged to VOn at t=0 under the
// given profile. Profiles implementing Validator are validated here.
func NewCapacitor(cfg Config, profile Profile) (*Capacitor, error) {
	if cfg.CapacitanceF <= 0 {
		return nil, fmt.Errorf("harvest: capacitance must be positive, got %g", cfg.CapacitanceF)
	}
	if !(cfg.VMax >= cfg.VOn && cfg.VOn > cfg.VOff && cfg.VOff > 0) {
		return nil, fmt.Errorf("harvest: need VMax >= VOn > VOff > 0, got %+v", cfg)
	}
	if cfg.LeakageW < 0 || math.IsNaN(cfg.LeakageW) || math.IsInf(cfg.LeakageW, 0) {
		return nil, fmt.Errorf("harvest: leakage must be finite and >= 0, got %g", cfg.LeakageW)
	}
	if profile == nil {
		return nil, fmt.Errorf("harvest: profile must not be nil")
	}
	if v, ok := profile.(Validator); ok {
		if err := v.Validate(); err != nil {
			return nil, err
		}
	}
	c := &Capacitor{
		cfg:     cfg,
		profile: profile,
		energyJ: 0.5 * cfg.CapacitanceF * cfg.VOn * cfg.VOn,
	}
	if ap, ok := profile.(Analytic); ok {
		switch pp, periodic := ap.(Periodic); {
		case periodic && pp.ProfilePeriod() > 0:
			c.mode = modePeriodic
			c.period = pp.ProfilePeriod()
		case math.IsInf(ap.NextChange(0), 1):
			c.mode = modeConstant
		}
	}
	return c, nil
}

func (c *Capacitor) energyAt(v float64) float64 {
	return 0.5 * c.cfg.CapacitanceF * v * v
}

// Voltage returns the current capacitor voltage.
func (c *Capacitor) Voltage() float64 {
	return math.Sqrt(2 * c.energyJ / c.cfg.CapacitanceF)
}

// Now returns the absolute simulation time in seconds. After
// SkipSteadyCycles it is advanced by the caller-supplied per-cycle
// wall time, so it stays a diagnostic clock, not a bit-exact one.
func (c *Capacitor) Now() float64 { return c.nowSec }

// HarvestedJ returns the lifetime harvested energy in joules (gross:
// energy wasted to the VMax clamp or lost to leakage is included).
func (c *Capacitor) HarvestedJ() float64 { return c.harvestedJ + c.cycleHarvestJ }

// CycleHarvestJ returns the gross energy harvested over the most
// recent full boot cycle (discharge plus the recharge that ended it) —
// the per-cycle delta SkipSteadyCycles replays.
func (c *Capacitor) CycleHarvestJ() float64 { return c.lastCycleJ }

// CycleToken captures the supply state that determines how a boot
// cycle evolves: the stored-energy bits and the profile-phase bits.
// Two boots starting from equal tokens under a phase-anchored profile
// see bit-identical supply dynamics, so a repeated token plus a
// repeated boot ledger record is an exact periodicity proof. ok is
// false for absolute-time profiles (no phase anchor, no proof).
type CycleToken struct {
	EnergyBits uint64
	PhaseBits  uint64
}

// CycleToken returns the current supply token; see the type comment.
func (c *Capacitor) CycleToken() (CycleToken, bool) {
	if c.mode == modeAbsolute {
		return CycleToken{}, false
	}
	return CycleToken{
		EnergyBits: math.Float64bits(c.energyJ),
		PhaseBits:  math.Float64bits(c.phase),
	}, true
}

// SkipSteadyCycles fast-forwards the supply across k boot cycles that
// each repeat the last observed cycle exactly: stored energy and phase
// are already at their cycle fixed point (a steady cycle starts and
// ends full at the same phase), the harvest meter replays the
// per-cycle delta cycleJ fold by fold (bit-identical to k real
// cycles), and the diagnostic clock advances by k·wallSec.
func (c *Capacitor) SkipSteadyCycles(k uint64, wallSec, cycleJ float64) {
	for i := uint64(0); i < k; i++ {
		c.harvestedJ += cycleJ
	}
	c.nowSec += float64(k) * wallSec
}

// EnergyJ returns the currently stored energy in joules.
func (c *Capacitor) EnergyJ() float64 { return c.energyJ }

// Draw implements device.Supply: consume nJ nanojoules over dt seconds
// while harvesting in parallel. Returns false when the voltage falls
// below VOff, leaving the store at the brown-out level (the charge
// below VOff is unusable but still present).
func (c *Capacitor) Draw(nJ float64, dt float64) bool {
	c.integrateHarvest(dt)
	c.nowSec += dt
	need := nJ * 1e-9
	floor := c.energyAt(c.cfg.VOff)
	if c.energyJ-need < floor {
		// Operation could not complete: clamp at the floor; the
		// device browns out.
		c.energyJ = floor
		return false
	}
	c.energyJ -= need
	return true
}

// Recharge implements device.Supply: advance off-time until the
// capacitor reaches VOn again. For Analytic profiles (all built-ins)
// the off-time is solved in closed form per profile segment and the
// return of false is an analytic verdict — the profile's net power can
// never lift the store to VOn — with no search horizon. Plain Profiles
// fall back to the fixed-step integrator with the seed's 3600 s
// horizon, which can misreport a slow-but-charging custom source as
// dead; implement Analytic to avoid that.
func (c *Capacitor) Recharge() (float64, bool) {
	if ap, ok := c.profile.(Analytic); ok {
		return c.rechargeAnalytic(ap)
	}
	return c.RechargeEuler(eulerStep, eulerHorizon)
}

// integrateHarvest accrues harvested energy over dt seconds of device
// activity: exactly (closed form) for Analytic profiles — anchored on
// the phase accumulator for periodic profiles and on zero for constant
// ones, so the arithmetic does not depend on absolute simulated age —
// in a single power-at-window-start step otherwise.
func (c *Capacitor) integrateHarvest(dt float64) {
	if dt <= 0 {
		return
	}
	var gross float64
	switch c.mode {
	case modePeriodic:
		ap := c.profile.(Analytic)
		gross = ap.EnergyBetween(c.phase, c.phase+dt)
		c.phase = math.Mod(c.phase+dt, c.period)
	case modeConstant:
		gross = c.profile.(Analytic).EnergyBetween(0, dt)
	default:
		if ap, ok := c.profile.(Analytic); ok {
			gross = ap.EnergyBetween(c.nowSec, c.nowSec+dt)
		} else {
			gross = c.profile.PowerAt(c.nowSec) * dt
		}
	}
	c.energyJ += gross - c.cfg.LeakageW*dt
	if c.energyJ < 0 {
		c.energyJ = 0
	}
	if vmax := c.energyAt(c.cfg.VMax); c.energyJ > vmax {
		c.energyJ = vmax
	}
	c.cycleHarvestJ += gross
}

// UsableEnergyJ returns the energy budget of one full charge cycle,
// ½C(VOn²−VOff²).
func (c *Capacitor) UsableEnergyJ() float64 {
	return c.energyAt(c.cfg.VOn) - c.energyAt(c.cfg.VOff)
}

// BootsToComplete is the Fig. 7(b) arithmetic in closed form: the
// number of power-failure restarts a workload needing totalJ joules
// takes when every failed boot delivers the full usable budget usableJ
// (⌈total/usable⌉ charges, minus the first). It returns 0 when the
// work fits one charge and is meaningful only for checkpointing
// programs whose progress survives outages.
func BootsToComplete(totalJ, usableJ float64) uint64 {
	if usableJ <= 0 || totalJ <= usableJ {
		return 0
	}
	return uint64(math.Ceil(totalJ/usableJ)) - 1
}

// BootsToComplete applies the closed form to this capacitor's usable
// budget.
func (c *Capacitor) BootsToComplete(totalJ float64) uint64 {
	return BootsToComplete(totalJ, c.UsableEnergyJ())
}

// SteadyOffSeconds returns the closed-form mean recharge time of one
// full VOff→VOn cycle — usable budget over the profile's long-run net
// power — and false when the mean power cannot beat the leakage (the
// store never recharges) or the profile has no analytic mean.
func (c *Capacitor) SteadyOffSeconds() (float64, bool) {
	ap, ok := c.profile.(Analytic)
	if !ok {
		return 0, false
	}
	net := ap.MeanPower() - c.cfg.LeakageW
	if net <= 0 {
		return 0, false
	}
	return c.UsableEnergyJ() / net, true
}
