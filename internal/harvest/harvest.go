// Package harvest models the energy-harvesting front end of the
// paper's testbed: an ambient source (emulated there by a SIGLENT
// SDG1032X function generator) charging a 100 µF capacitor that powers
// the MCU between the turn-on and brown-out voltage thresholds.
//
// The capacitor stores E = ½CV². The device boots when V reaches VOn
// and browns out when V falls below VOff, so the usable energy per
// charge cycle is ½C(VOn²−VOff²) — about 0.38 mJ for the paper's
// 100 µF, 3.3 V / 1.8 V configuration. Any inference needing more than
// that must either checkpoint or never complete: Fig. 7(b)'s "X"
// columns fall directly out of this arithmetic.
package harvest

import (
	"fmt"
	"math"
)

// Profile supplies the harvested power (in watts) as a function of
// absolute time. Implementations must be deterministic.
type Profile interface {
	// PowerAt returns the instantaneous harvested power at time t
	// seconds.
	PowerAt(t float64) float64
}

// ConstantProfile harvests a fixed power, the simplest bench setting.
type ConstantProfile struct {
	Watts float64
}

// PowerAt returns the constant power.
func (p ConstantProfile) PowerAt(float64) float64 { return p.Watts }

// SquareProfile alternates between PeakWatts and zero with the given
// period and duty cycle — the function-generator waveform the paper's
// experiments use.
type SquareProfile struct {
	PeakWatts float64
	Period    float64 // seconds
	Duty      float64 // fraction of the period with power, in (0, 1]
}

// PowerAt returns PeakWatts during the on-phase of each period.
func (p SquareProfile) PowerAt(t float64) float64 {
	if p.Period <= 0 {
		return p.PeakWatts
	}
	phase := math.Mod(t, p.Period) / p.Period
	if phase < p.Duty {
		return p.PeakWatts
	}
	return 0
}

// SineProfile is a rectified sinusoid, approximating RF or vibration
// harvesting.
type SineProfile struct {
	PeakWatts float64
	Period    float64
}

// PowerAt returns the rectified sine power at t.
func (p SineProfile) PowerAt(t float64) float64 {
	if p.Period <= 0 {
		return p.PeakWatts
	}
	return p.PeakWatts * math.Abs(math.Sin(2*math.Pi*t/p.Period))
}

// Config describes the storage front end.
type Config struct {
	CapacitanceF float64 // e.g. 100e-6 for the paper's 100 µF
	VOn          float64 // boot threshold, e.g. 3.3
	VOff         float64 // brown-out threshold, e.g. 1.8
	VMax         float64 // clamp (harvester regulator), e.g. 3.6
}

// PaperConfig returns the paper's experimental configuration: 100 µF,
// 3.3 V turn-on, 1.8 V brown-out, 3.6 V clamp.
func PaperConfig() Config {
	return Config{CapacitanceF: 100e-6, VOn: 3.3, VOff: 1.8, VMax: 3.6}
}

// Capacitor is the energy store. It implements device.Supply.
// Starting full (at VOn) is the conventional t=0 state: the device
// boots the moment the experiment begins.
type Capacitor struct {
	cfg     Config
	profile Profile

	energyJ float64 // current stored energy
	nowSec  float64 // absolute simulation time (active + off)

	harvestedJ float64 // lifetime harvested energy (diagnostics)
}

// NewCapacitor returns a capacitor charged to VOn at t=0 under the
// given profile.
func NewCapacitor(cfg Config, profile Profile) (*Capacitor, error) {
	if cfg.CapacitanceF <= 0 {
		return nil, fmt.Errorf("harvest: capacitance must be positive, got %g", cfg.CapacitanceF)
	}
	if !(cfg.VMax >= cfg.VOn && cfg.VOn > cfg.VOff && cfg.VOff > 0) {
		return nil, fmt.Errorf("harvest: need VMax >= VOn > VOff > 0, got %+v", cfg)
	}
	return &Capacitor{
		cfg:     cfg,
		profile: profile,
		energyJ: 0.5 * cfg.CapacitanceF * cfg.VOn * cfg.VOn,
	}, nil
}

func (c *Capacitor) energyAt(v float64) float64 {
	return 0.5 * c.cfg.CapacitanceF * v * v
}

// Voltage returns the current capacitor voltage.
func (c *Capacitor) Voltage() float64 {
	return math.Sqrt(2 * c.energyJ / c.cfg.CapacitanceF)
}

// Now returns the absolute simulation time in seconds.
func (c *Capacitor) Now() float64 { return c.nowSec }

// HarvestedJ returns the lifetime harvested energy in joules.
func (c *Capacitor) HarvestedJ() float64 { return c.harvestedJ }

// Draw implements device.Supply: consume nJ nanojoules over dt seconds
// while harvesting in parallel. Returns false when the voltage falls
// below VOff, leaving the store at the brown-out level (the charge
// below VOff is unusable but still present).
func (c *Capacitor) Draw(nJ float64, dt float64) bool {
	c.integrateHarvest(dt)
	c.nowSec += dt
	need := nJ * 1e-9
	floor := c.energyAt(c.cfg.VOff)
	if c.energyJ-need < floor {
		// Operation could not complete: clamp at the floor; the
		// device browns out.
		c.energyJ = floor
		return false
	}
	c.energyJ -= need
	return true
}

// Recharge implements device.Supply: advance off-time until the
// capacitor reaches VOn again. Returns false if the profile cannot
// deliver (zero power for an entire period, forever): detected by a
// bounded search horizon.
func (c *Capacitor) Recharge() (float64, bool) {
	target := c.energyAt(c.cfg.VOn)
	const step = 1e-4 // 100 µs integration step while off
	const horizon = 3600.0
	var off float64
	for c.energyJ < target {
		p := c.profile.PowerAt(c.nowSec)
		c.energyJ += p * step
		if vmax := c.energyAt(c.cfg.VMax); c.energyJ > vmax {
			c.energyJ = vmax
		}
		c.harvestedJ += p * step
		c.nowSec += step
		off += step
		if off > horizon {
			return off, false
		}
	}
	return off, true
}

func (c *Capacitor) integrateHarvest(dt float64) {
	if dt <= 0 {
		return
	}
	// During short active draws the profile is effectively constant;
	// integrate in a single step but clamp at VMax.
	p := c.profile.PowerAt(c.nowSec)
	c.energyJ += p * dt
	if vmax := c.energyAt(c.cfg.VMax); c.energyJ > vmax {
		c.energyJ = vmax
	}
	c.harvestedJ += p * dt
}

// UsableEnergyJ returns the energy budget of one full charge cycle,
// ½C(VOn²−VOff²).
func (c *Capacitor) UsableEnergyJ() float64 {
	return c.energyAt(c.cfg.VOn) - c.energyAt(c.cfg.VOff)
}
