package harvest

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// TraceProfile replays a measured ambient-energy trace — solar,
// RF, vibration — as a piecewise-linear power curve, the scenario
// realism that synthetic waveforms lack. Between breakpoints the power
// is interpolated linearly; past the last breakpoint the trace either
// repeats from the start (a diurnal cycle) or holds its final value.
//
// The trace file format accepted by LoadTraceCSV is one
// "seconds,watts" pair per line, seconds strictly increasing from 0,
// watts non-negative; blank lines and lines starting with '#' are
// ignored:
//
//	# time_s,power_w
//	0,0
//	2.5,4e-3
//	10,1e-3
type TraceProfile struct {
	times  []float64 // strictly increasing, times[0] == 0
	watts  []float64
	cum    []float64 // cum[i] = ∫ power over [0, times[i]]
	repeat bool

	// fp caches Fingerprint (0 = not yet computed; a computed value
	// of 0 is remapped to 1). The breakpoints are immutable after
	// construction, so racing computations store the same value.
	fp atomic.Uint64
}

// NewTraceProfile builds a validated trace profile from breakpoint
// times (seconds, strictly increasing, starting at 0) and powers
// (watts, non-negative). repeat selects wrap-around replay; otherwise
// the final power holds forever.
func NewTraceProfile(times, watts []float64, repeat bool) (*TraceProfile, error) {
	if len(times) != len(watts) {
		return nil, fmt.Errorf("harvest: trace needs matching times/watts, got %d/%d", len(times), len(watts))
	}
	if len(times) < 2 {
		return nil, fmt.Errorf("harvest: trace needs at least 2 points, got %d", len(times))
	}
	if times[0] != 0 {
		return nil, fmt.Errorf("harvest: trace must start at t=0, got %g", times[0])
	}
	for i := range times {
		if math.IsNaN(times[i]) || math.IsInf(times[i], 0) || math.IsNaN(watts[i]) || math.IsInf(watts[i], 0) {
			return nil, fmt.Errorf("harvest: trace point %d not finite: (%g, %g)", i, times[i], watts[i])
		}
		if watts[i] < 0 {
			return nil, fmt.Errorf("harvest: trace power must be >= 0, got %g at point %d", watts[i], i)
		}
		if i > 0 && times[i] <= times[i-1] {
			return nil, fmt.Errorf("harvest: trace times must increase strictly: %g after %g", times[i], times[i-1])
		}
	}
	p := &TraceProfile{
		times:  append([]float64(nil), times...),
		watts:  append([]float64(nil), watts...),
		cum:    make([]float64, len(times)),
		repeat: repeat,
	}
	for i := 1; i < len(times); i++ {
		p.cum[i] = p.cum[i-1] + 0.5*(watts[i-1]+watts[i])*(times[i]-times[i-1])
	}
	// Every point is finite, but the trapezoid integral can still
	// overflow for pathological magnitudes; such a trace would poison
	// every downstream energy computation with +Inf.
	if math.IsInf(p.cum[len(p.cum)-1], 0) {
		return nil, fmt.Errorf("harvest: trace energy integral overflows float64")
	}
	return p, nil
}

// LoadTraceCSV parses the "seconds,watts" trace format described on
// TraceProfile from r.
func LoadTraceCSV(r io.Reader, repeat bool) (*TraceProfile, error) {
	var times, watts []float64
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		f := strings.Split(s, ",")
		if len(f) != 2 {
			return nil, fmt.Errorf("harvest: trace line %d: want \"seconds,watts\", got %q", line, s)
		}
		t, err := strconv.ParseFloat(strings.TrimSpace(f[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("harvest: trace line %d: bad time: %w", line, err)
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(f[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("harvest: trace line %d: bad power: %w", line, err)
		}
		times = append(times, t)
		watts = append(watts, w)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("harvest: reading trace: %w", err)
	}
	return NewTraceProfile(times, watts, repeat)
}

// LoadTraceFile reads a trace CSV from disk.
func LoadTraceFile(path string, repeat bool) (*TraceProfile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := LoadTraceCSV(f, repeat)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

// Scale returns a copy of the trace with every power multiplied by f
// (f >= 0) — per-device irradiance spread in fleet simulations.
func (p *TraceProfile) Scale(f float64) (*TraceProfile, error) {
	if f < 0 || math.IsNaN(f) || math.IsInf(f, 0) {
		return nil, fmt.Errorf("harvest: trace scale must be finite and >= 0, got %g", f)
	}
	watts := make([]float64, len(p.watts))
	for i, w := range p.watts {
		watts[i] = w * f
	}
	return NewTraceProfile(p.times, watts, p.repeat)
}

// Fingerprint returns a 64-bit FNV-1a content hash of the trace —
// every breakpoint time and power plus the repeat flag — computed
// once and cached. Fleet memoization uses it to content-address
// devices sharing a waveform: two traces with equal fingerprints
// drive bit-identical supply arithmetic (hash collisions across
// distinct real-world traces in one fleet are vanishingly unlikely
// and cost at most one reused row, the same exposure the 64-bit
// fingerprint has for synthetic profiles).
func (p *TraceProfile) Fingerprint() uint64 {
	if fp := p.fp.Load(); fp != 0 {
		return fp
	}
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(len(p.times)))
	for i := range p.times {
		put(math.Float64bits(p.times[i]))
		put(math.Float64bits(p.watts[i]))
	}
	if p.repeat {
		put(1)
	}
	fp := h.Sum64()
	if fp == 0 {
		fp = 1 // keep 0 as the not-yet-computed sentinel
	}
	p.fp.Store(fp)
	return fp
}

// Duration returns the trace length in seconds (one cycle when
// repeating).
func (p *TraceProfile) Duration() float64 { return p.times[len(p.times)-1] }

// Repeats reports whether the trace wraps around.
func (p *TraceProfile) Repeats() bool { return p.repeat }

// local maps absolute time to a position within [0, Duration] plus the
// number of completed cycles (0 when holding).
func (p *TraceProfile) local(t float64) (r float64, cycles float64) {
	if t <= 0 {
		return 0, 0
	}
	d := p.Duration()
	if !p.repeat {
		return math.Min(t, d), 0
	}
	cycles = math.Floor(t / d)
	r = t - cycles*d
	// t/d can overflow to +Inf (or t-cycles*d to NaN) for extreme
	// query times; clamp to a defined in-cycle position instead of
	// handing NaN to the binary search below.
	if math.IsNaN(r) || r < 0 {
		r = 0
	}
	if r > d {
		r = d
	}
	return r, cycles
}

// localPower interpolates the trace at r in [0, Duration].
func (p *TraceProfile) localPower(r float64) float64 {
	i := sort.SearchFloat64s(p.times, r)
	if i < len(p.times) && p.times[i] == r {
		return p.watts[i]
	}
	i-- // r strictly inside segment (i, i+1); i >= 0 since times[0]=0
	f := (r - p.times[i]) / (p.times[i+1] - p.times[i])
	return p.watts[i] + (p.watts[i+1]-p.watts[i])*f
}

// localCum returns ∫ power over [0, r] for r in [0, Duration].
func (p *TraceProfile) localCum(r float64) float64 {
	i := sort.SearchFloat64s(p.times, r)
	if i < len(p.times) && p.times[i] == r {
		return p.cum[i]
	}
	i--
	dt := r - p.times[i]
	return p.cum[i] + 0.5*(p.watts[i]+p.localPower(r))*dt
}

// PowerAt implements Profile.
func (p *TraceProfile) PowerAt(t float64) float64 {
	if !p.repeat && t >= p.Duration() {
		return p.watts[len(p.watts)-1]
	}
	r, _ := p.local(t)
	return p.localPower(r)
}

// cumEnergy returns ∫ PowerAt over [0, t].
func (p *TraceProfile) cumEnergy(t float64) float64 {
	if t <= 0 {
		return 0
	}
	d := p.Duration()
	total := p.cum[len(p.cum)-1]
	if !p.repeat && t >= d {
		return total + p.watts[len(p.watts)-1]*(t-d)
	}
	r, cycles := p.local(t)
	return cycles*total + p.localCum(r)
}

// EnergyBetween implements Analytic: trapezoid closed form per
// breakpoint segment.
func (p *TraceProfile) EnergyBetween(t0, t1 float64) float64 {
	return p.cumEnergy(t1) - p.cumEnergy(t0)
}

// NextChange implements Analytic: the next breakpoint.
func (p *TraceProfile) NextChange(t float64) float64 {
	d := p.Duration()
	if !p.repeat && t >= d {
		return math.Inf(1)
	}
	r, cycles := p.local(t)
	base := cycles * d
	i := sort.SearchFloat64s(p.times, r)
	for ; i < len(p.times); i++ {
		if c := base + p.times[i]; c > t {
			return c
		}
	}
	return base + d + p.times[1] // wrapped past the cycle's last point
}

// MeanPower implements Analytic.
func (p *TraceProfile) MeanPower() float64 {
	if p.repeat {
		return p.cum[len(p.cum)-1] / p.Duration()
	}
	return p.watts[len(p.watts)-1]
}

// ProfilePeriod implements Periodic.
func (p *TraceProfile) ProfilePeriod() float64 {
	if p.repeat {
		return p.Duration()
	}
	return 0
}
