package harvest

import (
	"math"
	"testing"
)

func mustCap(t *testing.T, cfg Config, p Profile) *Capacitor {
	t.Helper()
	c, err := NewCapacitor(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCapacitorValidation(t *testing.T) {
	bad := []Config{
		{CapacitanceF: 0, VOn: 3.3, VOff: 1.8, VMax: 3.6},
		{CapacitanceF: 1e-4, VOn: 1.0, VOff: 1.8, VMax: 3.6}, // VOn < VOff
		{CapacitanceF: 1e-4, VOn: 3.3, VOff: 0, VMax: 3.6},
		{CapacitanceF: 1e-4, VOn: 3.7, VOff: 1.8, VMax: 3.6}, // VOn > VMax
	}
	for _, cfg := range bad {
		if _, err := NewCapacitor(cfg, ConstantProfile{1e-3}); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestStartsAtVOn(t *testing.T) {
	c := mustCap(t, PaperConfig(), ConstantProfile{0})
	if v := c.Voltage(); math.Abs(v-3.3) > 1e-9 {
		t.Errorf("initial voltage = %v, want 3.3", v)
	}
}

func TestUsableEnergyMatchesFormula(t *testing.T) {
	c := mustCap(t, PaperConfig(), ConstantProfile{0})
	want := 0.5 * 100e-6 * (3.3*3.3 - 1.8*1.8)
	if got := c.UsableEnergyJ(); math.Abs(got-want) > 1e-12 {
		t.Errorf("usable = %v J, want %v J", got, want)
	}
	// Sanity: the paper's budget is ~0.38 mJ.
	if want < 0.3e-3 || want > 0.5e-3 {
		t.Errorf("paper budget out of expected band: %v", want)
	}
}

func TestDrawDepletesAndBrownsOut(t *testing.T) {
	c := mustCap(t, PaperConfig(), ConstantProfile{0})
	usable := c.UsableEnergyJ() * 1e9 // nJ
	if !c.Draw(usable/2, 1e-3) {
		t.Fatal("half the budget should succeed")
	}
	if c.Draw(usable, 1e-3) {
		t.Fatal("overdraw should brown out")
	}
	// After brownout the voltage sits at VOff.
	if v := c.Voltage(); math.Abs(v-1.8) > 1e-6 {
		t.Errorf("post-brownout voltage = %v, want 1.8", v)
	}
}

func TestVoltageNeverBelowVOffAfterBrownout(t *testing.T) {
	c := mustCap(t, PaperConfig(), ConstantProfile{0})
	for i := 0; i < 100; i++ {
		c.Draw(1e6, 1e-5) // keep overdrawing
	}
	if v := c.Voltage(); v < 1.8-1e-9 {
		t.Errorf("voltage %v fell below VOff", v)
	}
}

func TestRechargeReachesVOn(t *testing.T) {
	c := mustCap(t, PaperConfig(), ConstantProfile{5e-3}) // 5 mW
	c.Draw(c.UsableEnergyJ()*1e9*2, 1e-3)                 // force brownout
	off, ok := c.Recharge()
	if !ok {
		t.Fatal("recharge failed with 5 mW source")
	}
	if off <= 0 {
		t.Error("recharge took no time")
	}
	if v := c.Voltage(); v < 3.3-1e-3 {
		t.Errorf("post-recharge voltage = %v", v)
	}
	// Expected time ~ usable/power = 0.3825 mJ / 5 mW = 76.5 ms.
	want := c.UsableEnergyJ() / 5e-3
	if off < want*0.9 || off > want*1.3 {
		t.Errorf("recharge time %v s, expected about %v s", off, want)
	}
}

func TestRechargeFailsWithDeadSource(t *testing.T) {
	c := mustCap(t, PaperConfig(), ConstantProfile{0})
	c.Draw(c.UsableEnergyJ()*1e9*2, 1e-3)
	if _, ok := c.Recharge(); ok {
		t.Error("recharge succeeded with zero-power source")
	}
}

func TestHarvestDuringDraw(t *testing.T) {
	// With harvesting power exceeding the draw rate, voltage holds.
	c := mustCap(t, PaperConfig(), ConstantProfile{10e-3})
	v0 := c.Voltage()
	// Draw 1 µJ over 1 ms while harvesting 10 µJ in that window.
	if !c.Draw(1e3, 1e-3) {
		t.Fatal("draw failed")
	}
	if c.Voltage() < v0-1e-3 {
		t.Errorf("voltage dropped despite net-positive harvest: %v -> %v", v0, c.Voltage())
	}
}

func TestVMaxClamp(t *testing.T) {
	c := mustCap(t, PaperConfig(), ConstantProfile{1.0}) // huge source
	c.Draw(0, 10)                                        // 10 J harvested, must clamp
	if v := c.Voltage(); v > 3.6+1e-9 {
		t.Errorf("voltage %v exceeded VMax", v)
	}
}

func TestSquareProfile(t *testing.T) {
	p := SquareProfile{PeakWatts: 2e-3, Period: 1.0, Duty: 0.25}
	if got := p.PowerAt(0.1); got != 2e-3 {
		t.Errorf("on-phase power = %v", got)
	}
	if got := p.PowerAt(0.5); got != 0 {
		t.Errorf("off-phase power = %v", got)
	}
	if got := p.PowerAt(1.1); got != 2e-3 {
		t.Errorf("second period on-phase power = %v", got)
	}
	// Degenerate period behaves as constant.
	if got := (SquareProfile{PeakWatts: 1e-3}).PowerAt(5); got != 1e-3 {
		t.Errorf("zero-period square = %v", got)
	}
}

func TestSineProfile(t *testing.T) {
	p := SineProfile{PeakWatts: 1e-3, Period: 1.0}
	if got := p.PowerAt(0.25); math.Abs(got-1e-3) > 1e-12 {
		t.Errorf("peak = %v", got)
	}
	if got := p.PowerAt(0.5); math.Abs(got) > 1e-10 {
		t.Errorf("zero crossing = %v", got)
	}
	if got := p.PowerAt(0.75); got < 0 {
		t.Errorf("rectified sine went negative: %v", got)
	}
}

func TestHarvestedAccounting(t *testing.T) {
	c := mustCap(t, PaperConfig(), ConstantProfile{1e-3})
	c.Draw(100, 1e-3)
	want := 1e-3 * 1e-3
	if got := c.HarvestedJ(); math.Abs(got-want) > 1e-12 {
		t.Errorf("harvested = %v, want %v", got, want)
	}
}

func TestTimeAdvances(t *testing.T) {
	c := mustCap(t, PaperConfig(), ConstantProfile{1e-3})
	c.Draw(10, 2e-3)
	if got := c.Now(); math.Abs(got-2e-3) > 1e-12 {
		t.Errorf("Now = %v, want 2e-3", got)
	}
	c.Draw(c.UsableEnergyJ()*1e9*2, 1e-3) // brownout
	before := c.Now()
	c.Recharge()
	if c.Now() <= before {
		t.Error("Recharge did not advance time")
	}
}
