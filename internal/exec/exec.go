// Package exec holds the pieces shared by the four on-device
// inference engines (BASE, SONIC, TAILS, ACE/FLEX): the FRAM-resident
// model image, input/output plumbing, and the Engine contract.
//
// Engine discipline for intermittent correctness: Boot is the reset
// vector. An engine may keep, across Boot calls, only (a) static
// configuration, (b) device-allocated SRAM arenas (wiped by the
// runner on reboot) and (c) nonvolatile state in device NV types.
// Per-inference progress must never live in plain Go struct fields —
// that would be RAM that magically survives a power failure.
package exec

import (
	"fmt"

	"ehdl/internal/device"
	"ehdl/internal/fixed"
	"ehdl/internal/intermittent"
	"ehdl/internal/quant"
)

// Engine is one runtime implementation executing one inference.
type Engine interface {
	intermittent.Program
	// EngineName identifies the runtime ("base", "sonic", ...).
	EngineName() string
	// Output returns the logits after a completed run (uncharged
	// host-side read; the logits live in FRAM).
	Output() []fixed.Q15
}

// ModelStore is the FRAM image of a quantized model: weights and
// biases per layer, flashed before deployment (uncharged — firmware
// programming happens off-device).
//
// For shape-pruned conv layers the store keeps only the kept positions
// per filter (compact layout [oc][kept]), which is what gives pruning
// its storage and bandwidth win.
type ModelStore struct {
	Model *quant.Model
	W     []*device.NVQ15 // indexed by layer; nil for stateless layers
	B     []*device.NVQ15
}

// NewModelStore reserves FRAM for the model and flashes the weights.
func NewModelStore(d *device.Device, m *quant.Model) (*ModelStore, error) {
	s := &ModelStore{
		Model: m,
		W:     make([]*device.NVQ15, len(m.Layers)),
		B:     make([]*device.NVQ15, len(m.Layers)),
	}
	for li := range m.Layers {
		l := &m.Layers[li]
		switch l.Spec.Kind {
		case "conv":
			w := l.W
			if l.Kept != nil {
				w = compactConvWeights(l)
			}
			nv, err := device.NewNVQ15(d, len(w))
			if err != nil {
				return nil, fmt.Errorf("exec: layer %d weights: %w", li, err)
			}
			copy(nv.Raw(), w)
			s.W[li] = nv
		case "dense", "bcm":
			nv, err := device.NewNVQ15(d, len(l.W))
			if err != nil {
				return nil, fmt.Errorf("exec: layer %d weights: %w", li, err)
			}
			copy(nv.Raw(), l.W)
			s.W[li] = nv
		default:
			continue
		}
		bv, err := device.NewNVQ15(d, len(l.B))
		if err != nil {
			return nil, fmt.Errorf("exec: layer %d bias: %w", li, err)
		}
		copy(bv.Raw(), l.B)
		s.B[li] = bv
	}
	return s, nil
}

// compactConvWeights packs a pruned conv layer's weights down to the
// kept positions: [oc][keptIdx].
func compactConvWeights(l *quant.QLayer) []fixed.Q15 {
	s := l.Spec
	positions := s.InC * s.KH * s.KW
	out := make([]fixed.Q15, s.OutC*len(l.Kept))
	for oc := 0; oc < s.OutC; oc++ {
		for ki, p := range l.Kept {
			out[oc*len(l.Kept)+ki] = l.W[oc*positions+p]
		}
	}
	return out
}

// KernelLen returns the MAC length of one conv output element for
// layer l (kept positions when pruned, the full window otherwise).
func KernelLen(l *quant.QLayer) int {
	if l.Kept != nil {
		return len(l.Kept)
	}
	return l.Spec.InC * l.Spec.KH * l.Spec.KW
}

// WindowOffsets returns, for conv layer l, the input-buffer offset of
// every MAC operand relative to the window origin (ic·H·W + ky·W +
// kx), in exactly the order the reference executor accumulates. The
// offsets are static per layer, so engines compute them once.
func WindowOffsets(l *quant.QLayer) []int {
	s := l.Spec
	if l.Kept != nil {
		offs := make([]int, len(l.Kept))
		for i, p := range l.Kept {
			ic := p / (s.KH * s.KW)
			rem := p % (s.KH * s.KW)
			ky := rem / s.KW
			kx := rem % s.KW
			offs[i] = ic*s.InH*s.InW + ky*s.InW + kx
		}
		return offs
	}
	offs := make([]int, 0, s.InC*s.KH*s.KW)
	for ic := 0; ic < s.InC; ic++ {
		for ky := 0; ky < s.KH; ky++ {
			for kx := 0; kx < s.KW; kx++ {
				offs = append(offs, ic*s.InH*s.InW+ky*s.InW+kx)
			}
		}
	}
	return offs
}

// Report is the outcome of one measured inference.
type Report struct {
	Engine    string
	Logits    []fixed.Q15
	Predicted int
	Stats     device.Stats
	// Intermittent is non-nil when the run went through the
	// power-failure runner.
	Intermittent *intermittent.Result
}

// Argmax returns the predicted class of quantized logits.
func Argmax(logits []fixed.Q15) int {
	if len(logits) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(logits); i++ {
		if logits[i] > logits[best] {
			best = i
		}
	}
	return best
}

// RunContinuous executes one inference on bench power and collects a
// report.
func RunContinuous(d *device.Device, e Engine) (Report, error) {
	if err := e.Boot(d); err != nil {
		return Report{}, fmt.Errorf("exec: %s: %w", e.EngineName(), err)
	}
	logits := e.Output()
	return Report{
		Engine:    e.EngineName(),
		Logits:    logits,
		Predicted: Argmax(logits),
		Stats:     d.Stats(),
	}, nil
}

// RunIntermittent executes one inference across power failures.
func RunIntermittent(d *device.Device, e Engine, r *intermittent.Runner) Report {
	res := r.Run(d, e)
	rep := Report{
		Engine:       e.EngineName(),
		Stats:        d.Stats(),
		Intermittent: &res,
		Predicted:    -1,
	}
	if res.Completed {
		rep.Logits = e.Output()
		rep.Predicted = Argmax(rep.Logits)
	}
	return rep
}
