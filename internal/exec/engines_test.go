package exec_test

import (
	"errors"
	"math/rand"
	"testing"

	"ehdl/internal/ace"
	"ehdl/internal/baseline"
	"ehdl/internal/device"
	"ehdl/internal/exec"
	"ehdl/internal/fixed"
	"ehdl/internal/flex"
	"ehdl/internal/harvest"
	"ehdl/internal/intermittent"
	"ehdl/internal/nn"
	"ehdl/internal/quant"
	"ehdl/internal/sonic"
	"ehdl/internal/tails"
)

// testModel quantizes a randomly initialized model (no training —
// bit-exactness does not care about accuracy).
func testModel(t *testing.T, arch *nn.Arch, seed int64) *quant.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net := arch.Build(rng)
	calib := make([][]float64, 6)
	for i := range calib {
		x := make([]float64, arch.InLen())
		for j := range x {
			x[j] = rng.Float64()*2 - 1
		}
		calib[i] = x
	}
	m, err := quant.Quantize(net, arch, calib)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// denseArch exercises conv/pool/relu/flatten/dense for the
// uncompressed-model engines.
func denseArch() *nn.Arch {
	return &nn.Arch{
		Name: "test-dense", InShape: [3]int{1, 8, 8}, NumClasses: 4,
		Specs: []nn.LayerSpec{
			{Kind: "conv", InC: 1, InH: 8, InW: 8, OutC: 4, KH: 3, KW: 3},
			{Kind: "pool", InC: 4, InH: 6, InW: 6, PoolSize: 2},
			{Kind: "relu", N: 4 * 3 * 3},
			{Kind: "flatten", N: 36},
			{Kind: "dense", In: 36, Out: 16},
			{Kind: "relu", N: 16},
			{Kind: "dense", In: 16, Out: 4},
		},
	}
}

// bcmArch adds a padded BCM layer for the ACE engine.
func bcmArch() *nn.Arch {
	return &nn.Arch{
		Name: "test-bcm", InShape: [3]int{1, 8, 8}, NumClasses: 4,
		Specs: []nn.LayerSpec{
			{Kind: "conv", InC: 1, InH: 8, InW: 8, OutC: 4, KH: 3, KW: 3},
			{Kind: "pool", InC: 4, InH: 6, InW: 6, PoolSize: 2},
			{Kind: "relu", N: 4 * 3 * 3},
			{Kind: "flatten", N: 36},
			// WeightNorm exercises the cosine-normalization path in
			// every engine; q=5 pads 36→40.
			{Kind: "bcm", In: 36, Out: 16, K: 8, WeightNorm: true},
			{Kind: "relu", N: 16},
			{Kind: "dense", In: 16, Out: 4},
		},
	}
}

func randInput(n int, seed int64) []fixed.Q15 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]fixed.Q15, n)
	for i := range x {
		x[i] = fixed.FromFloat(rng.Float64()*2 - 1)
	}
	return x
}

type engineFactory struct {
	name string
	// bcm selects the engine's BCM discipline: true = FFT (Algorithm 1,
	// the ACE engines), false = time domain (the baselines).
	bcm  bool
	make func(d *device.Device, s *exec.ModelStore, in []fixed.Q15) (exec.Engine, error)
}

func factories(t *testing.T) []engineFactory {
	return []engineFactory{
		{"base", false, func(d *device.Device, s *exec.ModelStore, in []fixed.Q15) (exec.Engine, error) {
			return baseline.New(d, s, in)
		}},
		{"sonic", false, func(d *device.Device, s *exec.ModelStore, in []fixed.Q15) (exec.Engine, error) {
			return sonic.New(d, s, in)
		}},
		{"tails", false, func(d *device.Device, s *exec.ModelStore, in []fixed.Q15) (exec.Engine, error) {
			return tails.New(d, s, in)
		}},
		{"ace", true, func(d *device.Device, s *exec.ModelStore, in []fixed.Q15) (exec.Engine, error) {
			return ace.New(d, s, in, nil)
		}},
		{"ace+flex", true, func(d *device.Device, s *exec.ModelStore, in []fixed.Q15) (exec.Engine, error) {
			// The crash tests use microfarad-scale capacitors, whose
			// warn-to-brownout window is far smaller than the paper's
			// 100 µF setup; warn earlier and sample more often so the
			// window still covers one checkpoint (the default config is
			// matched to the paper capacitor).
			fx, err := flex.NewController(d, 8, flex.Config{VWarn: 3.0, SampleStride: 2})
			if err != nil {
				return nil, err
			}
			return ace.New(d, s, in, fx)
		}},
	}
}

func modelFor(t *testing.T, bcm bool) *quant.Model {
	// Every engine runs the same compressed model; bcm only selects
	// the reference discipline. The dense arch is exercised separately.
	_ = bcm
	return testModel(t, bcmArch(), 11)
}

func refFor(f engineFactory, m *quant.Model) *quant.Executor {
	if f.bcm {
		return quant.NewExecutor(m)
	}
	return quant.NewTimeExecutor(m)
}

// TestEnginesMatchReferenceExecutor is the core fidelity invariant:
// every engine, on bench power, produces logits bit-identical to the
// host reference executor for its BCM discipline.
func TestEnginesMatchReferenceExecutor(t *testing.T) {
	for _, f := range factories(t) {
		m := modelFor(t, f.bcm)
		ref := refFor(f, m)
		for trial := int64(0); trial < 5; trial++ {
			in := randInput(64, 100+trial)
			want := ref.Forward(in)

			d := device.New(device.DefaultCosts(), device.Continuous{})
			store, err := exec.NewModelStore(d, m)
			if err != nil {
				t.Fatal(err)
			}
			eng, err := f.make(d, store, in)
			if err != nil {
				t.Fatalf("%s: %v", f.name, err)
			}
			rep, err := exec.RunContinuous(d, eng)
			if err != nil {
				t.Fatalf("%s: %v", f.name, err)
			}
			if len(rep.Logits) != len(want) {
				t.Fatalf("%s: %d logits, want %d", f.name, len(rep.Logits), len(want))
			}
			for i := range want {
				if rep.Logits[i] != want[i] {
					t.Fatalf("%s trial %d: logit %d = %d, reference %d",
						f.name, trial, i, rep.Logits[i], want[i])
				}
			}
		}
	}
}

// TestCrashConsistency runs each checkpointing engine under a tiny
// capacitor that forces many outages at many different cut points; the
// final logits must be bit-identical to the continuous run.
func TestCrashConsistency(t *testing.T) {
	// Several capacitances move the outage points across the whole
	// execution, exercising resume at conv pixels, pool/relu strides,
	// dense rows, and every BCM stage. Harvest power is kept low so
	// the device cannot ride through on inflow alone.
	caps := []float64{0.68e-6, 0.82e-6, 1.0e-6, 1.3e-6, 1.8e-6, 2.2e-6, 3.3e-6}
	for _, f := range factories(t) {
		if f.name == "base" || f.name == "ace" {
			continue // no intermittent support: covered by the DNF test
		}
		m := modelFor(t, f.bcm)
		in := randInput(64, 7)
		want := refFor(f, m).Forward(in)

		totalBoots := uint64(0)
		for _, c := range caps {
			cfg := harvest.PaperConfig()
			cfg.CapacitanceF = c
			supply, err := harvest.NewCapacitor(cfg, harvest.ConstantProfile{Watts: 4e-4})
			if err != nil {
				t.Fatal(err)
			}
			d := device.New(device.DefaultCosts(), supply)
			store, err := exec.NewModelStore(d, m)
			if err != nil {
				t.Fatal(err)
			}
			eng, err := f.make(d, store, in)
			if err != nil {
				t.Fatal(err)
			}
			rep := exec.RunIntermittent(d, eng, &intermittent.Runner{})
			if !rep.Intermittent.Completed {
				t.Fatalf("%s cap=%v: did not complete: %+v", f.name, c, rep.Intermittent)
			}
			totalBoots += rep.Intermittent.Boots
			for i := range want {
				if rep.Logits[i] != want[i] {
					t.Fatalf("%s cap=%v (boots=%d): logit %d = %d, continuous %d",
						f.name, c, rep.Intermittent.Boots, i, rep.Logits[i], want[i])
				}
			}
		}
		// Efficient engines ride out the larger capacitors in a single
		// charge; the sweep as a whole must still have injected plenty
		// of outages for this engine.
		if totalBoots < 5 {
			t.Fatalf("%s: only %d outages across the sweep — not exercising failures",
				f.name, totalBoots)
		}
	}
}

// TestNonPersistentEnginesNeverFinish reproduces Fig. 7(b)'s "X": BASE
// and plain ACE stagnate when one inference exceeds one charge.
func TestNonPersistentEnginesNeverFinish(t *testing.T) {
	for _, f := range factories(t) {
		if f.name != "base" && f.name != "ace" {
			continue
		}
		m := modelFor(t, f.bcm)
		in := randInput(64, 8)
		cfg := harvest.PaperConfig()
		cfg.CapacitanceF = 1.0e-6 // far too small for a full inference
		supply, err := harvest.NewCapacitor(cfg, harvest.ConstantProfile{Watts: 4e-4})
		if err != nil {
			t.Fatal(err)
		}
		d := device.New(device.DefaultCosts(), supply)
		store, err := exec.NewModelStore(d, m)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := f.make(d, store, in)
		if err != nil {
			t.Fatal(err)
		}
		rep := exec.RunIntermittent(d, eng, &intermittent.Runner{})
		if rep.Intermittent.Completed {
			t.Fatalf("%s: completed despite no persistence", f.name)
		}
		if !errors.Is(rep.Intermittent.Err, intermittent.ErrStagnant) {
			t.Fatalf("%s: err = %v, want stagnation", f.name, rep.Intermittent.Err)
		}
	}
}

// TestProgressMonotonic verifies the runner's progress invariant holds
// for every checkpointing engine across many outages.
func TestProgressMonotonic(t *testing.T) {
	// The runner itself panics if progress regresses; completing the
	// crash-consistency run above implies monotonicity. Here we
	// additionally check progress lands at a positive value.
	f := factories(t)[4] // ace+flex
	m := modelFor(t, true)
	in := randInput(64, 9)
	cfg := harvest.PaperConfig()
	cfg.CapacitanceF = 2.2e-6
	supply, err := harvest.NewCapacitor(cfg, harvest.ConstantProfile{Watts: 4e-4})
	if err != nil {
		t.Fatal(err)
	}
	d := device.New(device.DefaultCosts(), supply)
	store, err := exec.NewModelStore(d, m)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := f.make(d, store, in)
	if err != nil {
		t.Fatal(err)
	}
	rep := exec.RunIntermittent(d, eng, &intermittent.Runner{})
	if !rep.Intermittent.Completed {
		t.Fatalf("did not complete: %+v", rep.Intermittent)
	}
	pr, ok := eng.(intermittent.ProgressReporter)
	if !ok {
		t.Fatal("ace+flex must report progress")
	}
	if pr.Progress() == 0 && rep.Intermittent.Boots > 0 {
		t.Error("progress still zero after completing across outages")
	}
}

// TestCheckpointCostsOnlyUnderFailures: under continuous power FLEX
// must cost (almost) nothing — no checkpoint energy at all, and total
// energy within 2% of plain ACE (the paper's 1–2% claim is for the
// intermittent case; continuous should be even tighter).
func TestCheckpointCostsOnlyUnderFailures(t *testing.T) {
	m := modelFor(t, true)
	in := randInput(64, 10)

	run := func(withFlex bool) device.Stats {
		d := device.New(device.DefaultCosts(), device.Continuous{})
		store, err := exec.NewModelStore(d, m)
		if err != nil {
			t.Fatal(err)
		}
		var fx *flex.Controller
		if withFlex {
			if fx, err = flex.NewController(d, 8, flex.DefaultConfig()); err != nil {
				t.Fatal(err)
			}
		}
		eng, err := ace.New(d, store, in, fx)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := exec.RunContinuous(d, eng); err != nil {
			t.Fatal(err)
		}
		return d.Stats()
	}

	plain := run(false)
	flexed := run(true)
	if flexed.Energy[device.CatCheckpoint] != 0 {
		t.Errorf("checkpoint energy %v nJ under continuous power",
			flexed.Energy[device.CatCheckpoint])
	}
	// On this toy model the fixed per-boundary bookkeeping is a larger
	// fraction than at paper scale (the experiment harness checks the
	// 1–2% figure on the real models); 5% bounds it here.
	if flexed.TotalEnergynJ > plain.TotalEnergynJ*1.05 {
		t.Errorf("FLEX continuous overhead: %v vs %v nJ",
			flexed.TotalEnergynJ, plain.TotalEnergynJ)
	}
}

// TestSRAMCeiling: the ACE engine on the largest paper model must fit
// the 8 KB SRAM (the whole point of circular buffering + staging).
func TestSRAMCeiling(t *testing.T) {
	m := testModel(t, nn.OKGArch(256, 128, 64), 21)
	d := device.New(device.DefaultCosts(), device.Continuous{})
	store, err := exec.NewModelStore(d, m)
	if err != nil {
		t.Fatal(err)
	}
	fx, err := flex.NewController(d, 256, flex.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ace.New(d, store, randInput(784, 3), fx); err != nil {
		t.Fatalf("OKG model does not fit: %v (SRAM used %d)", err, d.SRAMUsed())
	}
	if d.SRAMUsed() > d.Costs.SRAMBytes {
		t.Errorf("SRAM used %d exceeds %d", d.SRAMUsed(), d.Costs.SRAMBytes)
	}
	t.Logf("OKG ACE SRAM footprint: %d bytes", d.SRAMUsed())
}

// TestEnginesMatchReferenceOnDenseModel repeats the fidelity check on
// the all-dense architecture (no BCM layers: the two disciplines
// coincide).
func TestEnginesMatchReferenceOnDenseModel(t *testing.T) {
	m := testModel(t, denseArch(), 31)
	ref := quant.NewExecutor(m)
	in := randInput(64, 55)
	want := ref.Forward(in)
	for _, f := range factories(t) {
		d := device.New(device.DefaultCosts(), device.Continuous{})
		store, err := exec.NewModelStore(d, m)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := f.make(d, store, in)
		if err != nil {
			t.Fatalf("%s: %v", f.name, err)
		}
		rep, err := exec.RunContinuous(d, eng)
		if err != nil {
			t.Fatalf("%s: %v", f.name, err)
		}
		for i := range want {
			if rep.Logits[i] != want[i] {
				t.Fatalf("%s: dense-model logit %d = %d, want %d", f.name, i, rep.Logits[i], want[i])
			}
		}
	}
}

// TestBCMDisciplinesAgree: the FFT and time-domain reference paths
// must agree within fixed-point tolerance (they compute the same real
// values with different rounding).
func TestBCMDisciplinesAgree(t *testing.T) {
	m := testModel(t, bcmArch(), 41)
	fft := quant.NewExecutor(m)
	tim := quant.NewTimeExecutor(m)
	for trial := int64(0); trial < 5; trial++ {
		in := randInput(64, 200+trial)
		a := fft.Forward(in)
		b := tim.Forward(in)
		for i := range a {
			diff := int(a[i]) - int(b[i])
			if diff < 0 {
				diff = -diff
			}
			// Logits at Q15; allow ~2% of full scale for the FFT
			// path's extra rounding stages.
			if diff > 700 {
				t.Fatalf("trial %d logit %d: fft %d vs time %d", trial, i, a[i], b[i])
			}
		}
	}
}

// TestInputLengthValidation: every engine rejects a wrong-size input.
func TestInputLengthValidation(t *testing.T) {
	for _, f := range factories(t) {
		m := modelFor(t, f.bcm)
		d := device.New(device.DefaultCosts(), device.Continuous{})
		store, err := exec.NewModelStore(d, m)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.make(d, store, randInput(7, 1)); err == nil {
			t.Errorf("%s accepted a bad input length", f.name)
		}
	}
}

func TestArgmax(t *testing.T) {
	if got := exec.Argmax([]fixed.Q15{3, 9, 2}); got != 1 {
		t.Errorf("Argmax = %d", got)
	}
	if got := exec.Argmax(nil); got != -1 {
		t.Errorf("Argmax(nil) = %d", got)
	}
	if got := exec.Argmax([]fixed.Q15{5, 5}); got != 0 {
		t.Errorf("Argmax tie = %d, want first", got)
	}
}
