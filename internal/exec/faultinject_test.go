package exec_test

import (
	"testing"

	"ehdl/internal/device"
	"ehdl/internal/exec"
	"ehdl/internal/fixed"
	"ehdl/internal/intermittent"
	"ehdl/internal/nn"
	"ehdl/internal/quant"
)

// faultSupply browns out at an exact charged-operation index and
// recharges instantly — single-fault injection at every possible cut
// point. The rail voltage sags below typical VWarn settings for
// warnWindow draws before the failure, so on-demand checkpointing
// engines commit exactly as they would on a draining capacitor; the
// failure can then land INSIDE a checkpoint, which is precisely the
// torn-commit scenario that once produced a double-accumulation bug
// in FLEX (old control word + new accumulator).
type faultSupply struct {
	n          int
	failAt     int
	warnWindow int
}

func (s *faultSupply) Draw(nJ, dt float64) bool {
	s.n++
	return s.n != s.failAt
}

func (s *faultSupply) Voltage() float64 {
	if s.failAt > s.n && s.failAt-s.n <= s.warnWindow {
		return 2.0
	}
	return 3.3
}

func (s *faultSupply) Recharge() (float64, bool) { return 1e-3, true }

func bcmOnlyArch() *nn.Arch {
	return &nn.Arch{
		Name: "bcm-only", InShape: [3]int{1, 1, 36}, NumClasses: 4,
		Specs: []nn.LayerSpec{
			{Kind: "bcm", In: 36, Out: 16, K: 8},
		},
	}
}

// runFaultSweep executes one engine under a single injected fault at
// every possible draw index and checks bit-exactness against want.
func runFaultSweep(t *testing.T, f engineFactory, m *quant.Model, in, want []fixed.Q15) {
	t.Helper()
	// Count the clean run's draws.
	probe := &faultSupply{failAt: -1, warnWindow: 40}
	d := device.New(device.DefaultCosts(), probe)
	store, err := exec.NewModelStore(d, m)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := f.make(d, store, in)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Boot(d); err != nil {
		t.Fatal(err)
	}
	total := probe.n

	for fail := 1; fail <= total; fail++ {
		supply := &faultSupply{failAt: fail, warnWindow: 40}
		d := device.New(device.DefaultCosts(), supply)
		store, err := exec.NewModelStore(d, m)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := f.make(d, store, in)
		if err != nil {
			t.Fatal(err)
		}
		rep := exec.RunIntermittent(d, eng, &intermittent.Runner{})
		if !rep.Intermittent.Completed {
			t.Fatalf("%s failAt=%d: did not complete: %+v", f.name, fail, rep.Intermittent)
		}
		for i := range want {
			if rep.Logits[i] != want[i] {
				t.Fatalf("%s failAt=%d: logit %d = %d, want %d",
					f.name, fail, i, rep.Logits[i], want[i])
			}
		}
	}
}

// TestExhaustiveFaultInjectionBCMOnly sweeps a fault across every
// charged operation of a pure BCM layer — the FLEX stage machine's
// home turf.
func TestExhaustiveFaultInjectionBCMOnly(t *testing.T) {
	m := testModel(t, bcmOnlyArch(), 11)
	in := randInput(36, 7)
	for _, f := range factories(t) {
		if f.name == "base" || f.name == "ace" {
			continue // no intermittent support
		}
		want := refFor(f, m).Forward(in)
		runFaultSweep(t, f, m, in, want)
	}
}

// TestExhaustiveFaultInjectionFullModel sweeps a fault across every
// charged operation of the full conv/pool/relu/bcm/dense stack for
// every checkpointing engine. This is the strongest statement of the
// crash-consistency invariant: no cut point anywhere — including
// inside a checkpoint commit — changes a single output bit.
func TestExhaustiveFaultInjectionFullModel(t *testing.T) {
	if testing.Short() {
		t.Skip("fault sweep is thorough but slow")
	}
	m := testModel(t, bcmArch(), 11)
	in := randInput(64, 7)
	for _, f := range factories(t) {
		if f.name == "base" || f.name == "ace" {
			continue
		}
		want := refFor(f, m).Forward(in)
		runFaultSweep(t, f, m, in, want)
	}
}
