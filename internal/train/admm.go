package train

import (
	"math"
	"math/rand"
	"sort"

	"ehdl/internal/dataset"
	"ehdl/internal/nn"
)

// ADMM-regularized structured pruning (§III-A, following ADMM-NN).
//
// The pruning constraint used here is shape-wise structured sparsity:
// the same (input-channel, ky, kx) kernel positions are removed from
// every filter of a conv layer, so the pruned weight tensor keeps a
// regular dense sub-shape — the property that makes structured pruning
// "hardware friendly" (no index arrays, vector ops stay contiguous)
// while leaving the layer's output geometry unchanged.
//
// The optimization alternates:
//
//	W-step: SGD on loss + (ρ/2)·‖W − Z + U‖²
//	Z-step: Z = Π(W + U)  (projection: keep the top-(1−r) kernel
//	        positions by L2 norm across filters)
//	U-step: U += W − Z
//
// followed by hard masking and a retraining pass with the mask
// enforced.

// ADMMConfig controls the pruning run.
type ADMMConfig struct {
	// Rho is the augmented-Lagrangian penalty weight.
	Rho float64
	// Rounds is the number of Z/U updates.
	Rounds int
	// EpochsPerRound is SGD epochs between dual updates.
	EpochsPerRound int
	// RetrainEpochs is the masked fine-tuning length after hard
	// pruning.
	RetrainEpochs int
	// Train carries the SGD hyperparameters.
	Train Config
}

// DefaultADMMConfig returns the schedule used for the paper's models.
func DefaultADMMConfig() ADMMConfig {
	return ADMMConfig{
		Rho:            1e-2,
		Rounds:         3,
		EpochsPerRound: 1,
		RetrainEpochs:  2,
		Train:          DefaultConfig(),
	}
}

// PruneResult reports what pruning did to one conv layer.
type PruneResult struct {
	LayerIndex    int
	KeptPositions int
	TotalPosition int
	// Compression is total/kept (the paper's "2x").
	Compression  float64
	TestAccuracy float64
}

// ShapeMask builds a 0/1 mask for a conv weight tensor keeping the
// keep highest-L2 kernel positions (aggregated across output filters).
// Layout matches nn.Conv2D: [oc][ic][ky][kx].
func ShapeMask(w []float64, outC, inC, kh, kw, keep int) []float64 {
	positions := inC * kh * kw
	norms := make([]float64, positions)
	for oc := 0; oc < outC; oc++ {
		base := oc * positions
		for p := 0; p < positions; p++ {
			v := w[base+p]
			norms[p] += v * v
		}
	}
	idx := make([]int, positions)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return norms[idx[a]] > norms[idx[b]] })
	mask := make([]float64, len(w))
	for _, p := range idx[:keep] {
		for oc := 0; oc < outC; oc++ {
			mask[oc*positions+p] = 1
		}
	}
	return mask
}

// projectShape returns the projection of w onto the shape-sparsity
// constraint set (keep positions with the largest aggregate norm, zero
// the rest).
func projectShape(w []float64, outC, inC, kh, kw, keep int) []float64 {
	mask := ShapeMask(w, outC, inC, kh, kw, keep)
	z := make([]float64, len(w))
	for i := range w {
		z[i] = w[i] * mask[i]
	}
	return z
}

// PruneConvADMM prunes every conv layer of net whose Arch spec asks
// for pruning (PruneRatio > 0), using the ADMM schedule, then hard
// masks and retrains. It returns one result per pruned layer.
func PruneConvADMM(net *nn.Network, arch *nn.Arch, set *dataset.Set, cfg ADMMConfig) []PruneResult {
	type target struct {
		layer *nn.Conv2D
		spec  nn.LayerSpec
		keep  int
		z, u  []float64
	}
	var targets []target
	li := 0
	for _, spec := range arch.Specs {
		l := net.Layers[li]
		li++
		if spec.Kind != "conv" || spec.PruneRatio <= 0 {
			continue
		}
		conv := l.(*nn.Conv2D)
		positions := spec.InC * spec.KH * spec.KW
		keep := int(math.Round(float64(positions) * (1 - spec.PruneRatio)))
		if keep < 1 {
			keep = 1
		}
		targets = append(targets, target{
			layer: conv, spec: spec, keep: keep,
			z: projectShape(conv.W.Data, spec.OutC, spec.InC, spec.KH, spec.KW, keep),
			u: make([]float64, len(conv.W.Data)),
		})
	}
	if len(targets) == 0 {
		return nil
	}

	rng := rand.New(rand.NewSource(cfg.Train.Seed + 17))
	opt := NewSGD(cfg.Train.LR, cfg.Train.Momentum, cfg.Train.WeightDecay)
	opt.ClipNorm = cfg.Train.ClipNorm
	params := net.Params()

	for round := 0; round < cfg.Rounds; round++ {
		for e := 0; e < cfg.EpochsPerRound; e++ {
			order := rng.Perm(len(set.Train))
			if cfg.Train.MaxSamplesPerEpoch > 0 && len(order) > cfg.Train.MaxSamplesPerEpoch {
				order = order[:cfg.Train.MaxSamplesPerEpoch]
			}
			for _, idx := range order {
				s := set.Train[idx]
				logits := net.Forward(s.Input)
				_, grad := CrossEntropy(logits, s.Label)
				net.Backward(grad)
				// Augmented-Lagrangian term: ρ(W − Z + U).
				for _, tg := range targets {
					for i := range tg.layer.W.Data {
						tg.layer.W.Grad[i] += cfg.Rho * (tg.layer.W.Data[i] - tg.z[i] + tg.u[i])
					}
				}
				opt.Step(params)
			}
		}
		// Z and U updates.
		for ti := range targets {
			tg := &targets[ti]
			wu := make([]float64, len(tg.layer.W.Data))
			for i := range wu {
				wu[i] = tg.layer.W.Data[i] + tg.u[i]
			}
			tg.z = projectShape(wu, tg.spec.OutC, tg.spec.InC, tg.spec.KH, tg.spec.KW, tg.keep)
			for i := range tg.u {
				tg.u[i] += tg.layer.W.Data[i] - tg.z[i]
			}
		}
	}

	// Hard prune: install the mask implied by the final Z support.
	for _, tg := range targets {
		mask := make([]float64, len(tg.z))
		for i, v := range tg.z {
			if v != 0 {
				mask[i] = 1
			}
		}
		tg.layer.ApplyMask(mask)
	}

	// Masked retraining.
	retrain := cfg.Train
	retrain.Epochs = cfg.RetrainEpochs
	retrain.Seed = cfg.Train.Seed + 29
	res := Run(net, set, retrain)

	out := make([]PruneResult, 0, len(targets))
	for ti, tg := range targets {
		positions := tg.spec.InC * tg.spec.KH * tg.spec.KW
		out = append(out, PruneResult{
			LayerIndex:    ti,
			KeptPositions: tg.keep,
			TotalPosition: positions,
			Compression:   float64(positions) / float64(tg.keep),
			TestAccuracy:  res.TestAccuracy,
		})
	}
	return out
}
