package train

import (
	"math"
	"math/rand"
	"testing"

	"ehdl/internal/dataset"
	"ehdl/internal/nn"
)

func TestCrossEntropyLossAndGrad(t *testing.T) {
	logits := []float64{2, 1, 0}
	loss, grad := CrossEntropy(logits, 0)
	if loss <= 0 {
		t.Errorf("loss = %v, want > 0", loss)
	}
	// Gradient sums to zero (softmax minus one-hot).
	var sum float64
	for _, g := range grad {
		sum += g
	}
	if math.Abs(sum) > 1e-9 {
		t.Errorf("grad sum = %v", sum)
	}
	if grad[0] >= 0 {
		t.Errorf("true-class grad = %v, want negative", grad[0])
	}
	// Perfect prediction gives near-zero loss.
	loss2, _ := CrossEntropy([]float64{100, 0, 0}, 0)
	if loss2 > 1e-6 {
		t.Errorf("confident correct loss = %v", loss2)
	}
}

func TestCrossEntropyNumericalGradient(t *testing.T) {
	logits := []float64{0.3, -0.8, 1.2, 0.1}
	label := 2
	_, grad := CrossEntropy(logits, label)
	const h = 1e-6
	for i := range logits {
		lp := append([]float64(nil), logits...)
		lp[i] += h
		lm := append([]float64(nil), logits...)
		lm[i] -= h
		fp, _ := CrossEntropy(lp, label)
		fm, _ := CrossEntropy(lm, label)
		num := (fp - fm) / (2 * h)
		if math.Abs(num-grad[i]) > 1e-6 {
			t.Errorf("grad[%d]: analytic %v, numeric %v", i, grad[i], num)
		}
	}
}

func TestSGDStepZeroesGrads(t *testing.T) {
	p := nn.NewTensor("w", 3)
	p.Data[0] = 1
	p.Grad[0] = 0.5
	opt := NewSGD(0.1, 0, 0)
	opt.Step([]*nn.Tensor{p})
	if math.Abs(p.Data[0]-0.95) > 1e-12 {
		t.Errorf("data = %v, want 0.95", p.Data[0])
	}
	if p.Grad[0] != 0 {
		t.Error("grad not zeroed")
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	p := nn.NewTensor("w", 1)
	opt := NewSGD(0.1, 0.9, 0)
	for i := 0; i < 3; i++ {
		p.Grad[0] = 1
		opt.Step([]*nn.Tensor{p})
	}
	// Velocity: -0.1, -0.19, -0.271; cumulative -0.561.
	if math.Abs(p.Data[0]-(-0.561)) > 1e-9 {
		t.Errorf("data = %v, want -0.561", p.Data[0])
	}
}

func TestSGDWeightDecayShrinks(t *testing.T) {
	p := nn.NewTensor("w", 1)
	p.Data[0] = 1
	opt := NewSGD(0.1, 0, 0.5)
	opt.Step([]*nn.Tensor{p}) // grad 0, decay pulls toward 0
	if p.Data[0] >= 1 {
		t.Errorf("weight decay had no effect: %v", p.Data[0])
	}
}

// tinyTask builds a linearly separable 2-class task.
func tinyTask(n int, seed int64) *dataset.Set {
	rng := rand.New(rand.NewSource(seed))
	gen := func(label int) dataset.Sample {
		x := make([]float64, 8)
		for i := range x {
			x[i] = rng.NormFloat64() * 0.2
		}
		if label == 0 {
			x[0] += 0.8
		} else {
			x[1] += 0.8
		}
		return dataset.Sample{Input: x, Label: label}
	}
	s := &dataset.Set{Name: "tiny", InputShape: [3]int{1, 1, 8}, NumClasses: 2}
	for i := 0; i < n; i++ {
		s.Train = append(s.Train, gen(i%2))
		s.Test = append(s.Test, gen((i+1)%2))
	}
	return s
}

func TestRunLearnsSeparableTask(t *testing.T) {
	set := tinyTask(200, 1)
	rng := rand.New(rand.NewSource(2))
	net := nn.NewNetwork("probe", 8, nn.NewDense(8, 2, false, rng))
	res := Run(net, set, Config{Epochs: 3, LR: 0.1, Momentum: 0.9, LRDecay: 1, Seed: 3})
	if res.TestAccuracy < 0.95 {
		t.Errorf("test accuracy = %v, want >= 0.95", res.TestAccuracy)
	}
	if res.FinalLoss > 0.5 {
		t.Errorf("final loss = %v", res.FinalLoss)
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := Config{Epochs: 2, LR: 0.05, Momentum: 0.9, LRDecay: 1, Seed: 7}
	accs := [2]float64{}
	for trial := 0; trial < 2; trial++ {
		set := tinyTask(100, 1)
		net := nn.NewNetwork("p", 8, nn.NewDense(8, 2, false, rand.New(rand.NewSource(9))))
		accs[trial] = Run(net, set, cfg).TestAccuracy
	}
	if accs[0] != accs[1] {
		t.Errorf("training not deterministic: %v vs %v", accs[0], accs[1])
	}
}

func TestMaxSamplesPerEpochCaps(t *testing.T) {
	set := tinyTask(1000, 1)
	rng := rand.New(rand.NewSource(2))
	net := nn.NewNetwork("p", 8, nn.NewDense(8, 2, false, rng))
	// Just ensure it runs quickly and still learns something.
	res := Run(net, set, Config{Epochs: 2, LR: 0.1, Momentum: 0.9, LRDecay: 1, Seed: 3, MaxSamplesPerEpoch: 50})
	if res.TestAccuracy < 0.8 {
		t.Errorf("capped training accuracy = %v", res.TestAccuracy)
	}
}

func TestShapeMaskKeepsTopPositions(t *testing.T) {
	// 2 filters, 1 input channel, 2x2 kernel: 4 positions.
	// Position norms: p0: 1²+1²=2, p1: 3²+3²=18, p2: 0, p3: 2²+2²=8.
	w := []float64{
		1, 3, 0, 2, // filter 0
		1, 3, 0, 2, // filter 1
	}
	mask := ShapeMask(w, 2, 1, 2, 2, 2)
	want := []float64{0, 1, 0, 1, 0, 1, 0, 1} // keep p1 and p3
	for i := range want {
		if mask[i] != want[i] {
			t.Fatalf("mask[%d] = %v, want %v (mask=%v)", i, mask[i], want[i], mask)
		}
	}
}

func TestShapeMaskUniformAcrossFilters(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	outC, inC, kh, kw := 4, 3, 3, 3
	w := make([]float64, outC*inC*kh*kw)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	keep := 13
	mask := ShapeMask(w, outC, inC, kh, kw, keep)
	positions := inC * kh * kw
	// Same pattern repeated for every filter.
	for oc := 1; oc < outC; oc++ {
		for p := 0; p < positions; p++ {
			if mask[oc*positions+p] != mask[p] {
				t.Fatalf("mask not shape-uniform at filter %d position %d", oc, p)
			}
		}
	}
	kept := 0
	for p := 0; p < positions; p++ {
		if mask[p] == 1 {
			kept++
		}
	}
	if kept != keep {
		t.Errorf("kept %d positions, want %d", kept, keep)
	}
}

// convTask is a small conv-friendly 3-class task on 8x8 images.
func convTask(n int, seed int64) *dataset.Set {
	rng := rand.New(rand.NewSource(seed))
	gen := func(label int) dataset.Sample {
		img := make([]float64, 64)
		for i := range img {
			img[i] = rng.NormFloat64() * 0.1
		}
		switch label {
		case 0: // horizontal bar
			for x := 1; x < 7; x++ {
				img[3*8+x] = 0.9
			}
		case 1: // vertical bar
			for y := 1; y < 7; y++ {
				img[y*8+4] = 0.9
			}
		case 2: // corner blob
			for y := 1; y < 4; y++ {
				for x := 1; x < 4; x++ {
					img[y*8+x] = 0.9
				}
			}
		}
		return dataset.Sample{Input: img, Label: label}
	}
	s := &dataset.Set{Name: "conv3", InputShape: [3]int{1, 8, 8}, NumClasses: 3}
	for i := 0; i < n; i++ {
		s.Train = append(s.Train, gen(i%3))
		s.Test = append(s.Test, gen((i+1)%3))
	}
	return s
}

func TestPruneConvADMMProducesStructuredSparsity(t *testing.T) {
	set := convTask(120, 5)
	arch := &nn.Arch{
		Name: "prunable", InShape: [3]int{1, 8, 8}, NumClasses: 3,
		Specs: []nn.LayerSpec{
			{Kind: "conv", InC: 1, InH: 8, InW: 8, OutC: 4, KH: 3, KW: 3, PruneRatio: 0.5},
			{Kind: "relu", N: 4 * 6 * 6},
			{Kind: "flatten", N: 144},
			{Kind: "dense", In: 144, Out: 3},
		},
	}
	rng := rand.New(rand.NewSource(6))
	net := arch.Build(rng)
	pre := Run(net, set, Config{Epochs: 3, LR: 0.05, Momentum: 0.9, LRDecay: 1, Seed: 7})
	if pre.TestAccuracy < 0.9 {
		t.Fatalf("pretraining accuracy too low: %v", pre.TestAccuracy)
	}

	cfg := DefaultADMMConfig()
	cfg.Train = Config{Epochs: 1, LR: 0.02, Momentum: 0.9, LRDecay: 1, Seed: 8}
	cfg.RetrainEpochs = 2
	results := PruneConvADMM(net, arch, set, cfg)
	if len(results) != 1 {
		t.Fatalf("pruned %d layers, want 1", len(results))
	}
	r := results[0]
	if math.Abs(r.Compression-2.0) > 0.3 {
		t.Errorf("compression = %v, want ~2x", r.Compression)
	}
	if r.TestAccuracy < 0.85 {
		t.Errorf("post-prune accuracy = %v", r.TestAccuracy)
	}

	// Verify the installed mask is genuinely shape-structured: the
	// zero pattern repeats across filters, and ~half the positions are
	// zero.
	conv := net.Layers[0].(*nn.Conv2D)
	if conv.Mask == nil {
		t.Fatal("no mask installed")
	}
	positions := 9
	zeros := 0
	for p := 0; p < positions; p++ {
		for oc := 1; oc < 4; oc++ {
			if conv.Mask[oc*positions+p] != conv.Mask[p] {
				t.Fatal("mask not uniform across filters")
			}
		}
		if conv.Mask[p] == 0 {
			zeros++
		}
	}
	if zeros < 4 || zeros > 5 {
		t.Errorf("zeroed positions = %d, want 4-5 of 9", zeros)
	}
}

func TestPruneConvADMMNoTargets(t *testing.T) {
	set := tinyTask(10, 1)
	arch := &nn.Arch{
		Name: "dense-only", InShape: [3]int{1, 1, 8}, NumClasses: 2,
		Specs: []nn.LayerSpec{{Kind: "dense", In: 8, Out: 2}},
	}
	net := arch.Build(rand.New(rand.NewSource(1)))
	if got := PruneConvADMM(net, arch, set, DefaultADMMConfig()); got != nil {
		t.Errorf("expected nil results, got %v", got)
	}
}
