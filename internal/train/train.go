// Package train implements RAD's offline training stage: SGD with
// momentum over softmax cross-entropy, plus the ADMM-regularized
// structured pruning of §III-A (following ADMM-NN's alternating
// schedule, shrunk to laptop scale).
package train

import (
	"math"
	"math/rand"

	"ehdl/internal/dataset"
	"ehdl/internal/mat"
	"ehdl/internal/nn"
)

// Config controls one training run.
type Config struct {
	Epochs   int
	LR       float64
	Momentum float64
	// LRDecay multiplies the learning rate after each epoch (1 = none).
	LRDecay float64
	// WeightDecay is L2 regularization strength (0 = none).
	WeightDecay float64
	// Seed drives shuffling; training is fully deterministic.
	Seed int64
	// MaxSamplesPerEpoch caps the samples visited per epoch (0 = all);
	// used to keep tests fast.
	MaxSamplesPerEpoch int
	// ClipNorm clips the global gradient norm before each step
	// (0 = no clipping). Per-sample SGD on small models benefits from
	// a modest ceiling.
	ClipNorm float64
}

// DefaultConfig returns a configuration that trains the paper's
// models to their Table II accuracies on the synthetic tasks.
func DefaultConfig() Config {
	return Config{
		Epochs:      4,
		LR:          0.002,
		Momentum:    0.9,
		LRDecay:     0.75,
		ClipNorm:    4,
		WeightDecay: 1e-3,
		Seed:        1,
	}
}

// CrossEntropy returns the softmax cross-entropy loss and the gradient
// with respect to the logits.
func CrossEntropy(logits []float64, label int) (float64, []float64) {
	p := mat.Softmax(logits)
	grad := make([]float64, len(p))
	copy(grad, p)
	grad[label] -= 1
	loss := -math.Log(math.Max(p[label], 1e-12))
	return loss, grad
}

// SGD is a momentum optimizer over a fixed parameter set.
type SGD struct {
	LR, Momentum, WeightDecay float64
	// ClipNorm bounds the global gradient norm (0 = off).
	ClipNorm float64

	vel map[*nn.Tensor][]float64
}

// NewSGD builds an optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay,
		vel: make(map[*nn.Tensor][]float64)}
}

// Step applies one update to every tensor and zeroes the gradients.
func (o *SGD) Step(params []*nn.Tensor) {
	scale := 1.0
	if o.ClipNorm > 0 {
		var sq float64
		for _, p := range params {
			for _, g := range p.Grad {
				sq += g * g
			}
		}
		if n := math.Sqrt(sq); n > o.ClipNorm {
			scale = o.ClipNorm / n
		}
	}
	for _, p := range params {
		v := o.vel[p]
		if v == nil {
			v = make([]float64, len(p.Data))
			o.vel[p] = v
		}
		for i := range p.Data {
			g := scale*p.Grad[i] + o.WeightDecay*p.Data[i]
			v[i] = o.Momentum*v[i] - o.LR*g
			p.Data[i] += v[i]
			p.Grad[i] = 0
		}
	}
}

// Result summarizes a training run.
type Result struct {
	FinalLoss     float64
	TrainAccuracy float64
	TestAccuracy  float64
	Epochs        int
}

// Run trains net on set according to cfg and returns the final
// metrics.
func Run(net *nn.Network, set *dataset.Set, cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	opt := NewSGD(cfg.LR, cfg.Momentum, cfg.WeightDecay)
	opt.ClipNorm = cfg.ClipNorm
	params := net.Params()

	var lastLoss float64
	for e := 0; e < cfg.Epochs; e++ {
		order := rng.Perm(len(set.Train))
		if cfg.MaxSamplesPerEpoch > 0 && len(order) > cfg.MaxSamplesPerEpoch {
			order = order[:cfg.MaxSamplesPerEpoch]
		}
		var epochLoss float64
		for _, idx := range order {
			s := set.Train[idx]
			logits := net.Forward(s.Input)
			loss, grad := CrossEntropy(logits, s.Label)
			epochLoss += loss
			net.Backward(grad)
			opt.Step(params)
		}
		lastLoss = epochLoss / float64(len(order))
		opt.LR *= cfg.LRDecay
	}

	return Result{
		FinalLoss:     lastLoss,
		TrainAccuracy: accuracyOn(net, set.Train),
		TestAccuracy:  accuracyOn(net, set.Test),
		Epochs:        cfg.Epochs,
	}
}

func accuracyOn(net *nn.Network, samples []dataset.Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	correct := 0
	for _, s := range samples {
		if net.Predict(s.Input) == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}
