package device

// Charge helpers: one call per architectural operation. Each helper
// computes cycles and energy from the cost table and routes them to
// the right meter category. Callers perform the actual arithmetic in
// Go immediately after the helper returns.

// CPUOps charges n generic single-cycle ALU operations.
func (d *Device) CPUOps(n int) {
	c := uint64(n) * d.Costs.CPUOpCycles
	d.Consume(CatCPU, c, float64(c)*d.Costs.CPUCyclenJ)
}

// CPUMACs charges an n-element software multiply-accumulate loop (the
// BASE/SONIC inner loop, using the memory-mapped hardware multiplier).
func (d *Device) CPUMACs(n int) {
	c := uint64(n) * d.Costs.CPUMACCycles
	d.Consume(CatCPU, c, float64(c)*d.Costs.CPUCyclenJ)
}

// SRAMAccess charges n CPU-driven word accesses to SRAM.
func (d *Device) SRAMAccess(words int) {
	c := uint64(words) * d.Costs.SRAMWordCycles
	d.Consume(CatSRAM, c, float64(c)*d.Costs.CPUCyclenJ+float64(words)*d.Costs.SRAMWordnJ)
}

// FRAMRead charges n CPU-driven word reads from FRAM to the given
// category (CatFRAMRead normally, CatRestore during post-outage
// reloads).
func (d *Device) FRAMRead(words int, cat Category) {
	c := uint64(words) * d.Costs.FRAMReadWordCycles
	d.Consume(cat, c, float64(c)*d.Costs.CPUCyclenJ+float64(words)*d.Costs.FRAMReadWordnJ)
}

// FRAMWrite charges n CPU-driven word writes to FRAM to the given
// category (CatFRAMWrite normally, CatCheckpoint for progress
// commits).
func (d *Device) FRAMWrite(words int, cat Category) {
	c := uint64(words) * d.Costs.FRAMWriteWordCycles
	d.Consume(cat, c, float64(c)*d.Costs.CPUCyclenJ+float64(words)*d.Costs.FRAMWriteWordnJ)
	d.bootFRAMWrites += uint64(words)
}

// DMA charges a words-long DMA transfer; the CPU sleeps in LPM0 while
// the engine moves data (ACE's bulk movement, Fig. 3).
func (d *Device) DMA(words int) {
	c := d.Costs.DMASetupCycles + uint64(words)*d.Costs.DMAWordCycles
	nJ := float64(d.Costs.DMASetupCycles)*d.Costs.CPUCyclenJ +
		float64(uint64(words)*d.Costs.DMAWordCycles)*d.Costs.LPMCyclenJ +
		float64(words)*d.Costs.DMAWordnJ
	d.Consume(CatDMA, c, nJ)
}

// leaCharge charges an LEA operation of the given core-cycle count:
// LEA core energy plus the sleeping CPU in parallel.
func (d *Device) leaCharge(cycles uint64) {
	nJ := float64(cycles) * (d.Costs.LEACyclenJ + d.Costs.LPMCyclenJ)
	d.Consume(CatLEA, cycles, nJ)
}

// LEAMAC charges an n-element vector multiply-accumulate on the LEA.
func (d *Device) LEAMAC(n int) {
	d.leaCharge(d.Costs.LEASetupCycles + uint64(n)*d.Costs.LEAMACCyclesPerElem)
}

// LEAAdd charges an n-element vector add on the LEA.
func (d *Device) LEAAdd(n int) {
	d.leaCharge(d.Costs.LEASetupCycles + uint64(n)*d.Costs.LEAAddCyclesPerElem)
}

// LEACMul charges an n-element element-wise complex multiply (the MPY
// stage of Algorithm 1).
func (d *Device) LEACMul(n int) {
	d.leaCharge(d.Costs.LEASetupCycles + uint64(n)*d.Costs.LEACMulCyclesPerElem)
}

// LEAFFT charges an n-point complex FFT or IFFT on the LEA
// (n/2·log2(n) radix-2 butterflies).
func (d *Device) LEAFFT(n int) {
	butterflies := uint64(0)
	if n > 1 {
		log2 := uint64(0)
		for v := n; v > 1; v >>= 1 {
			log2++
		}
		butterflies = uint64(n/2) * log2
	}
	d.leaCharge(d.Costs.LEASetupCycles + butterflies*d.Costs.LEAFFTButterflyCycles)
}

// DMAToFRAM charges a words-long DMA transfer whose destination is
// FRAM: DMA movement plus the FRAM write premium per word.
func (d *Device) DMAToFRAM(words int, cat Category) {
	c := d.Costs.DMASetupCycles + uint64(words)*d.Costs.DMAWordCycles
	nJ := float64(d.Costs.DMASetupCycles)*d.Costs.CPUCyclenJ +
		float64(uint64(words)*d.Costs.DMAWordCycles)*d.Costs.LPMCyclenJ +
		float64(words)*(d.Costs.DMAWordnJ+d.Costs.FRAMWriteWordnJ)
	d.Consume(cat, c, nJ)
	d.bootFRAMWrites += uint64(words)
}

// DMAFromFRAM charges a words-long DMA transfer whose source is FRAM:
// DMA movement plus the FRAM read premium per word.
func (d *Device) DMAFromFRAM(words int, cat Category) {
	c := d.Costs.DMASetupCycles + uint64(words)*d.Costs.DMAWordCycles
	nJ := float64(d.Costs.DMASetupCycles)*d.Costs.CPUCyclenJ +
		float64(uint64(words)*d.Costs.DMAWordCycles)*d.Costs.LPMCyclenJ +
		float64(words)*(d.Costs.DMAWordnJ+d.Costs.FRAMReadWordnJ)
	d.Consume(cat, c, nJ)
}

// MonitorSample charges one voltage-monitor ADC sample and returns the
// rail voltage (FLEX's on-demand checkpoint trigger).
func (d *Device) MonitorSample() float64 {
	d.Consume(CatMonitor, d.Costs.ADCSampleCycles, d.Costs.ADCSamplenJ)
	return d.supply.Voltage()
}
