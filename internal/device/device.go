// Package device simulates the target microcontroller: an
// MSP430FR5994-class machine with a 16 MHz CPU, an 8 KB volatile SRAM,
// a 256 KB nonvolatile FRAM, a DMA engine and TI's Low-Energy
// Accelerator. Computation is performed natively in Go; the simulator
// accounts the *cost* of each operation in cycles and nanojoules, and
// mediates every joule through a power supply so that energy-harvesting
// brownouts interrupt execution exactly where the budget runs out.
//
// The charging discipline is: a runtime calls a charge method (CPUOp,
// LEAFFT, FRAMWrite, ...) immediately BEFORE applying the state change
// the charge pays for. If the supply cannot deliver, the charge call
// panics with PowerFailure before the mutation happens, so each charged
// chunk is atomic with respect to power loss — the granularity at which
// intermittent-computing systems reason about forward progress.
package device

import (
	"fmt"
)

// PowerFailure is the panic value raised when the supply browns out
// mid-operation. The intermittent runner recovers it; nothing else
// should.
type PowerFailure struct{}

func (PowerFailure) String() string { return "power failure" }

// Supply mediates energy delivery. Implementations: harvest.Capacitor
// (intermittent) and Continuous (bench supply).
type Supply interface {
	// Draw removes nJ nanojoules over dt seconds of device activity,
	// harvesting in parallel if applicable. It reports false when the
	// stored energy fell below the brownout threshold, in which case
	// the draw did not complete.
	Draw(nJ float64, dt float64) bool
	// Voltage returns the current supply voltage, for FLEX's monitor.
	Voltage() float64
	// Recharge simulates device-off time until the supply can power a
	// boot again. It returns the off-time in seconds and false if the
	// supply can never recover (e.g. harvesting stopped). A false
	// return must be a verdict about the source, not a search-budget
	// artifact: harvest.Capacitor decides it analytically from the
	// profile's per-period energy versus its leakage.
	Recharge() (offTime float64, ok bool)
}

// Continuous is a bench power supply: infinite energy at a fixed
// voltage. The zero value is ready to use.
type Continuous struct{}

// Draw always succeeds.
func (Continuous) Draw(nJ, dt float64) bool { return true }

// Voltage reports a full rail.
func (Continuous) Voltage() float64 { return 3.3 }

// Recharge is instantaneous (and never needed).
func (Continuous) Recharge() (float64, bool) { return 0, true }

// Device is the simulated MCU. Not safe for concurrent use: the target
// is a single-core microcontroller and the simulation is synchronous.
type Device struct {
	Costs  Costs
	supply Supply

	cycles     uint64  // active cycles since construction
	offSeconds float64 // accumulated recharge time
	boots      uint64  // number of reboots after power failures

	energy [NumCategories]float64 // nJ per category

	sramUsed  int
	sramZones []func() // wipers for volatile allocations
	framUsed  int
}

// New returns a Device with the given cost table powered by supply.
func New(costs Costs, supply Supply) *Device {
	return &Device{Costs: costs, supply: supply}
}

// Consume charges cycles and nJ to category cat, drawing from the
// supply. It panics with PowerFailure when the supply browns out.
// Runtimes normally use the higher-level charge helpers in charges.go.
func (d *Device) Consume(cat Category, cycles uint64, nJ float64) {
	dt := float64(cycles) / d.Costs.ClockHz
	if !d.supply.Draw(nJ, dt) {
		panic(PowerFailure{})
	}
	d.cycles += cycles
	d.energy[cat] += nJ
}

// Voltage samples the supply rail WITHOUT charging the ADC cost; use
// MonitorSample for a charged sample.
func (d *Device) Voltage() float64 { return d.supply.Voltage() }

// Reboot simulates a power-failure restart: recharge the supply, wipe
// every SRAM allocation, and count the boot. It returns false when the
// supply can never recover.
func (d *Device) Reboot() bool {
	off, ok := d.supply.Recharge()
	if !ok {
		return false
	}
	d.offSeconds += off
	d.boots++
	for _, wipe := range d.sramZones {
		wipe()
	}
	return true
}

// AllocSRAM registers a volatile allocation of n elements of wordBytes
// bytes each, returning an error when the 8 KB SRAM would overflow.
// The returned register function is called by the allocator below.
func (d *Device) reserveSRAM(bytes int, wipe func()) error {
	if d.sramUsed+bytes > d.Costs.SRAMBytes {
		return fmt.Errorf("device: SRAM overflow: %d B used, %d B requested, %d B capacity",
			d.sramUsed, bytes, d.Costs.SRAMBytes)
	}
	d.sramUsed += bytes
	d.sramZones = append(d.sramZones, wipe)
	return nil
}

// ReserveFRAM accounts a persistent allocation of the given size
// (model weights, checkpoint areas). It returns an error when the
// 256 KB FRAM would overflow — RAD's architecture search uses this as
// its hard constraint.
func (d *Device) ReserveFRAM(bytes int) error {
	if d.framUsed+bytes > d.Costs.FRAMBytes {
		return fmt.Errorf("device: FRAM overflow: %d B used, %d B requested, %d B capacity",
			d.framUsed, bytes, d.Costs.FRAMBytes)
	}
	d.framUsed += bytes
	return nil
}

// SRAMUsed returns the bytes of SRAM currently reserved.
func (d *Device) SRAMUsed() int { return d.sramUsed }

// FRAMUsed returns the bytes of FRAM currently reserved.
func (d *Device) FRAMUsed() int { return d.framUsed }

// Stats is a snapshot of the device's accounting.
type Stats struct {
	ActiveCycles  uint64
	ActiveSeconds float64
	OffSeconds    float64
	WallSeconds   float64
	Boots         uint64
	Energy        [NumCategories]float64 // nJ
	TotalEnergynJ float64
}

// Stats returns the current accounting snapshot.
func (d *Device) Stats() Stats {
	s := Stats{
		ActiveCycles:  d.cycles,
		ActiveSeconds: float64(d.cycles) / d.Costs.ClockHz,
		OffSeconds:    d.offSeconds,
		Boots:         d.boots,
		Energy:        d.energy,
	}
	s.WallSeconds = s.ActiveSeconds + s.OffSeconds
	for _, e := range d.energy {
		s.TotalEnergynJ += e
	}
	return s
}

// EnergymJ returns the total consumed energy in millijoules.
func (s Stats) EnergymJ() float64 { return s.TotalEnergynJ * 1e-6 }
