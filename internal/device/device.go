// Package device simulates the target microcontroller: an
// MSP430FR5994-class machine with a 16 MHz CPU, an 8 KB volatile SRAM,
// a 256 KB nonvolatile FRAM, a DMA engine and TI's Low-Energy
// Accelerator. Computation is performed natively in Go; the simulator
// accounts the *cost* of each operation in cycles and nanojoules, and
// mediates every joule through a power supply so that energy-harvesting
// brownouts interrupt execution exactly where the budget runs out.
//
// The charging discipline is: a runtime calls a charge method (CPUOp,
// LEAFFT, FRAMWrite, ...) immediately BEFORE applying the state change
// the charge pays for. If the supply cannot deliver, the charge call
// panics with PowerFailure before the mutation happens, so each charged
// chunk is atomic with respect to power loss — the granularity at which
// intermittent-computing systems reason about forward progress.
package device

import (
	"fmt"

	"ehdl/internal/fixed"
)

// PowerFailure is the panic value raised when the supply browns out
// mid-operation. The intermittent runner recovers it; nothing else
// should.
type PowerFailure struct{}

func (PowerFailure) String() string { return "power failure" }

// Supply mediates energy delivery. Implementations: harvest.Capacitor
// (intermittent) and Continuous (bench supply).
type Supply interface {
	// Draw removes nJ nanojoules over dt seconds of device activity,
	// harvesting in parallel if applicable. It reports false when the
	// stored energy fell below the brownout threshold, in which case
	// the draw did not complete.
	Draw(nJ float64, dt float64) bool
	// Voltage returns the current supply voltage, for FLEX's monitor.
	Voltage() float64
	// Recharge simulates device-off time until the supply can power a
	// boot again. It returns the off-time in seconds and false if the
	// supply can never recover (e.g. harvesting stopped). A false
	// return must be a verdict about the source, not a search-budget
	// artifact: harvest.Capacitor decides it analytically from the
	// profile's per-period energy versus its leakage.
	Recharge() (offTime float64, ok bool)
}

// Continuous is a bench power supply: infinite energy at a fixed
// voltage. The zero value is ready to use.
type Continuous struct{}

// Draw always succeeds.
func (Continuous) Draw(nJ, dt float64) bool { return true }

// Voltage reports a full rail.
func (Continuous) Voltage() float64 { return 3.3 }

// Recharge is instantaneous (and never needed).
func (Continuous) Recharge() (float64, bool) { return 0, true }

// Device is the simulated MCU. Not safe for concurrent use: the target
// is a single-core microcontroller and the simulation is synchronous.
//
// Accounting is grouped by boot: charges accumulate in per-boot
// counters that fold into the lifetime totals at each Reboot (and are
// summed on the fly by Stats). The grouping is what makes the
// intermittent runner's boot ledger exact — two boots executing the
// same op sequence produce bit-identical per-boot deltas regardless of
// how much history precedes them — and what lets ReplayBoots jump the
// stats across thousands of identical boots with results bit-identical
// to simulating each one.
type Device struct {
	Costs  Costs
	supply Supply

	// Lifetime totals of sealed (completed) boots; the in-progress
	// boot lives in the boot* accumulators below until Reboot folds it.
	cycles   uint64
	energy   [NumCategories]float64 // nJ per category
	nvWrites uint64

	// Current-boot accumulators, reset at every Reboot.
	bootCycles     uint64
	bootEnergy     [NumCategories]float64
	bootNVWrites   uint64
	bootNVHash     uint64
	bootFRAMWrites uint64

	// Previous boot's write-log length, and the current boot's running
	// hash sampled at exactly that length — the prefix mark that lets
	// the runner tell re-execution (same positions and values, longer
	// or shorter truncation) from fresh persistent state. The previous
	// boot's final hash lives in the runner's own BootRecord ring.
	prevNVWrites uint64
	markNVHash   uint64

	offSeconds     float64 // accumulated recharge time
	lastOffSeconds float64 // off-time of the most recent Reboot
	boots          uint64  // number of reboots after power failures

	sramUsed  int
	sramZones []func() // wipers for volatile allocations
	framUsed  int
}

// New returns a Device with the given cost table powered by supply.
func New(costs Costs, supply Supply) *Device {
	return &Device{Costs: costs, supply: supply, bootNVHash: fnvOffset64, markNVHash: fnvOffset64}
}

// Consume charges cycles and nJ to category cat, drawing from the
// supply. It panics with PowerFailure when the supply browns out.
// Runtimes normally use the higher-level charge helpers in charges.go.
func (d *Device) Consume(cat Category, cycles uint64, nJ float64) {
	dt := float64(cycles) / d.Costs.ClockHz
	if !d.supply.Draw(nJ, dt) {
		panic(PowerFailure{})
	}
	d.bootCycles += cycles
	d.bootEnergy[cat] += nJ
}

// Supply returns the power supply the device draws from — the
// intermittent runner uses it to interrogate harvest.Capacitor for
// steady-cycle fixed points.
func (d *Device) Supply() Supply { return d.supply }

// FNV-1a parameters for the persistent-write ledger hash.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// noteNVWord folds one committed 64-bit nonvolatile write into the
// current boot's write-log signature. The NV types in nv.go call it
// (and noteNVWords) after the charge succeeded and the mutation
// applied, so the signature covers exactly the writes that survived.
// NVWord control words carry no stable address, so only the value is
// hashed; buffer writes go through noteNVWords, which also folds the
// target position.
func (d *Device) noteNVWord(v uint64) {
	h := d.bootNVHash
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	d.bootNVHash = h
	d.bootNVWrites++
	if d.bootNVWrites == d.prevNVWrites {
		d.markNVHash = h
	}
}

// noteNVWords folds a committed chunk of Q15 nonvolatile buffer writes
// into the current boot's write-log signature: each word contributes
// its buffer position AND its value, so positional progress (a
// constant sentinel committed to an advancing slot) changes the
// signature just like a changing value does.
func (d *Device) noteNVWords(offset int, vals []fixed.Q15) {
	h := d.bootNVHash
	n := d.bootNVWrites
	for i, q := range vals {
		p := uint64(uint32(offset + i))
		for b := 0; b < 4; b++ {
			h ^= p & 0xff
			h *= fnvPrime64
			p >>= 8
		}
		v := uint64(uint16(q))
		h ^= v & 0xff
		h *= fnvPrime64
		h ^= v >> 8
		h *= fnvPrime64
		n++
		if n == d.prevNVWrites {
			d.markNVHash = h
		}
	}
	d.bootNVHash = h
	d.bootNVWrites = n
}

// BootStats is the accounting of the current boot alone: active
// cycles, per-category energy, and the persistent-write ledger (count
// and FNV-1a signature of every committed NV write, in program order).
// Per-boot deltas are accumulated from zero each boot, so two boots
// executing the same charged op sequence report bit-identical
// BootStats — the exactness the intermittent runner's DNF verdicts
// and analytic fast-forward are built on.
type BootStats struct {
	Cycles   uint64
	Energy   [NumCategories]float64 // nJ
	NVWrites uint64
	NVHash   uint64
	// FRAMWriteWords counts every word charged to an FRAM write (CPU or
	// DMA driven) this boot — a superset of NVWrites that also covers
	// runtimes charging writes directly against Raw buffers, so "zero
	// persistent writes" is exact for every charge path.
	FRAMWriteWords uint64
	// NVHashAtPrevLen is this boot's running write-log hash sampled at
	// exactly the previous boot's write count. When this boot wrote at
	// least as many words, comparing it against the previous boot's
	// final NVHash tells re-execution of the same values (equal) from
	// fresh persistent state (different), independent of where either
	// boot's budget truncated the log.
	NVHashAtPrevLen uint64
}

// BootStats returns the in-progress boot's accounting. The
// intermittent runner snapshots it after each boot, before Reboot
// resets the accumulators.
func (d *Device) BootStats() BootStats {
	return BootStats{
		Cycles:          d.bootCycles,
		Energy:          d.bootEnergy,
		NVWrites:        d.bootNVWrites,
		NVHash:          d.bootNVHash,
		FRAMWriteWords:  d.bootFRAMWrites,
		NVHashAtPrevLen: d.markNVHash,
	}
}

// sealBoot folds the current boot's accumulators into the lifetime
// totals and resets them for the next boot.
func (d *Device) sealBoot() {
	d.cycles += d.bootCycles
	for c := range d.energy {
		d.energy[c] += d.bootEnergy[c]
	}
	d.nvWrites += d.bootNVWrites
	d.prevNVWrites = d.bootNVWrites
	d.markNVHash = fnvOffset64 // hash at length 0; crossings overwrite
	d.bootCycles = 0
	d.bootEnergy = [NumCategories]float64{}
	d.bootNVWrites = 0
	d.bootNVHash = fnvOffset64
	d.bootFRAMWrites = 0
}

// LastOffSeconds returns the recharge time of the most recent Reboot —
// the per-cycle off-time the intermittent runner records in its boot
// ledger.
func (d *Device) LastOffSeconds() float64 { return d.lastOffSeconds }

// ReplayBoots advances the accounting by k boot cycles that each
// repeat exactly the per-boot deltas bs followed by a recharge of
// offSec — the stat jump behind the intermittent runner's analytic
// fast-forward. It must be called at a boot boundary (right after a
// Reboot, before the next boot charges anything); the folds are
// applied one boot at a time, so the resulting totals are bit-identical
// to simulating k boots that each produce bs and offSec.
func (d *Device) ReplayBoots(k uint64, bs BootStats, offSec float64) {
	for i := uint64(0); i < k; i++ {
		d.cycles += bs.Cycles
		for c := range d.energy {
			d.energy[c] += bs.Energy[c]
		}
		d.nvWrites += bs.NVWrites
		d.offSeconds += offSec
		d.boots++
	}
}

// Voltage samples the supply rail WITHOUT charging the ADC cost; use
// MonitorSample for a charged sample.
func (d *Device) Voltage() float64 { return d.supply.Voltage() }

// Reboot simulates a power-failure restart: recharge the supply, seal
// the finished boot's accounting, wipe every SRAM allocation, and
// count the boot. It returns false when the supply can never recover.
func (d *Device) Reboot() bool {
	off, ok := d.supply.Recharge()
	if !ok {
		return false
	}
	d.sealBoot()
	d.offSeconds += off
	d.lastOffSeconds = off
	d.boots++
	for _, wipe := range d.sramZones {
		wipe()
	}
	return true
}

// AllocSRAM registers a volatile allocation of n elements of wordBytes
// bytes each, returning an error when the 8 KB SRAM would overflow.
// The returned register function is called by the allocator below.
func (d *Device) reserveSRAM(bytes int, wipe func()) error {
	if d.sramUsed+bytes > d.Costs.SRAMBytes {
		return fmt.Errorf("device: SRAM overflow: %d B used, %d B requested, %d B capacity",
			d.sramUsed, bytes, d.Costs.SRAMBytes)
	}
	d.sramUsed += bytes
	d.sramZones = append(d.sramZones, wipe)
	return nil
}

// ReserveFRAM accounts a persistent allocation of the given size
// (model weights, checkpoint areas). It returns an error when the
// 256 KB FRAM would overflow — RAD's architecture search uses this as
// its hard constraint.
func (d *Device) ReserveFRAM(bytes int) error {
	if d.framUsed+bytes > d.Costs.FRAMBytes {
		return fmt.Errorf("device: FRAM overflow: %d B used, %d B requested, %d B capacity",
			d.framUsed, bytes, d.Costs.FRAMBytes)
	}
	d.framUsed += bytes
	return nil
}

// SRAMUsed returns the bytes of SRAM currently reserved.
func (d *Device) SRAMUsed() int { return d.sramUsed }

// FRAMUsed returns the bytes of FRAM currently reserved.
func (d *Device) FRAMUsed() int { return d.framUsed }

// Stats is a snapshot of the device's accounting.
type Stats struct {
	ActiveCycles  uint64
	ActiveSeconds float64
	OffSeconds    float64
	WallSeconds   float64
	Boots         uint64
	Energy        [NumCategories]float64 // nJ
	TotalEnergynJ float64
	// NVWrites counts every committed nonvolatile word write (the
	// persistent-write ledger the intermittent runner's DNF verdicts
	// read per boot).
	NVWrites uint64
}

// Stats returns the current accounting snapshot: sealed boots plus the
// in-progress boot's accumulators.
func (d *Device) Stats() Stats {
	s := Stats{
		ActiveCycles: d.cycles + d.bootCycles,
		OffSeconds:   d.offSeconds,
		Boots:        d.boots,
		NVWrites:     d.nvWrites + d.bootNVWrites,
	}
	s.ActiveSeconds = float64(s.ActiveCycles) / d.Costs.ClockHz
	for c := range s.Energy {
		s.Energy[c] = d.energy[c] + d.bootEnergy[c]
	}
	s.WallSeconds = s.ActiveSeconds + s.OffSeconds
	for _, e := range s.Energy {
		s.TotalEnergynJ += e
	}
	return s
}

// EnergymJ returns the total consumed energy in millijoules.
func (s Stats) EnergymJ() float64 { return s.TotalEnergynJ * 1e-6 }
