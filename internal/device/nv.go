package device

import "ehdl/internal/fixed"

// Nonvolatile (FRAM-resident) state. Values held in these types
// survive Reboot; every access is charged. Word writes are atomic with
// respect to power failure (FRAM writes whole words on real hardware);
// multi-word stores are chunked, so an outage can leave a plain NVQ15
// partially updated — exactly the hazard FLEX's double-buffered commit
// exists to avoid.

// commitChunkWords is the number of 16-bit words charged (and then
// copied) per atomic chunk of a bulk NV store or load.
const commitChunkWords = 32

// NVWord is a single nonvolatile control word (loop index, state bits,
// selector). Reads and writes are atomic.
type NVWord struct {
	v uint64
}

// Read charges one FRAM word read and returns the stored value.
func (w *NVWord) Read(d *Device, cat Category) uint64 {
	d.FRAMRead(1, cat)
	return w.v
}

// Write charges one FRAM word write and stores v atomically.
func (w *NVWord) Write(d *Device, cat Category, v uint64) {
	d.FRAMWrite(1, cat)
	w.v = v
	d.noteNVWord(v)
}

// Peek returns the value without charging — for assertions in tests
// and post-run report generation only.
func (w *NVWord) Peek() uint64 { return w.v }

// Poke sets the value without charging or logging — for host-side
// setup and intermittent.Skippable SkipBoots appliers, whose charges
// the runner replays on the boot ledger instead.
func (w *NVWord) Poke(v uint64) { w.v = v }

// NVQ15 is a persistent Q15 buffer (weights, staged activations).
type NVQ15 struct {
	data []fixed.Q15
}

// NewNVQ15 reserves a persistent buffer of n Q15 words, failing when
// the FRAM is exhausted.
func NewNVQ15(d *Device, n int) (*NVQ15, error) {
	if err := d.ReserveFRAM(2 * n); err != nil {
		return nil, err
	}
	return &NVQ15{data: make([]fixed.Q15, n)}, nil
}

// Len returns the buffer length in Q15 words.
func (b *NVQ15) Len() int { return len(b.data) }

// Store copies src into the buffer at offset, charging CPU-driven FRAM
// writes chunk by chunk. An outage mid-store leaves earlier chunks
// written and later ones not.
func (b *NVQ15) Store(d *Device, cat Category, offset int, src []fixed.Q15) {
	for start := 0; start < len(src); start += commitChunkWords {
		end := min(start+commitChunkWords, len(src))
		d.FRAMWrite(end-start, cat)
		copy(b.data[offset+start:offset+end], src[start:end])
		d.noteNVWords(offset+start, src[start:end])
	}
}

// StoreDMA is Store using the DMA engine for bulk movement (cheaper
// per word; the CPU sleeps).
func (b *NVQ15) StoreDMA(d *Device, cat Category, offset int, src []fixed.Q15) {
	for start := 0; start < len(src); start += commitChunkWords {
		end := min(start+commitChunkWords, len(src))
		d.DMAToFRAM(end-start, cat)
		copy(b.data[offset+start:offset+end], src[start:end])
		d.noteNVWords(offset+start, src[start:end])
	}
}

// Load copies the buffer range [offset, offset+len(dst)) into dst,
// charging CPU-driven FRAM reads.
func (b *NVQ15) Load(d *Device, cat Category, offset int, dst []fixed.Q15) {
	for start := 0; start < len(dst); start += commitChunkWords {
		end := min(start+commitChunkWords, len(dst))
		d.FRAMRead(end-start, cat)
		copy(dst[start:end], b.data[offset+start:offset+end])
	}
}

// LoadDMA is Load using the DMA engine.
func (b *NVQ15) LoadDMA(d *Device, cat Category, offset int, dst []fixed.Q15) {
	for start := 0; start < len(dst); start += commitChunkWords {
		end := min(start+commitChunkWords, len(dst))
		d.DMAFromFRAM(end-start, cat)
		copy(dst[start:end], b.data[offset+start:offset+end])
	}
}

// StoreOne writes a single element (SONIC-style per-element output
// commit).
func (b *NVQ15) StoreOne(d *Device, cat Category, i int, v fixed.Q15) {
	d.FRAMWrite(1, cat)
	b.data[i] = v
	d.noteNVWords(i, []fixed.Q15{v})
}

// LoadOne reads a single element.
func (b *NVQ15) LoadOne(d *Device, cat Category, i int) fixed.Q15 {
	d.FRAMRead(1, cat)
	return b.data[i]
}

// Raw exposes the underlying storage without charging. It exists for
// test assertions and for host-side setup (loading a model image into
// "flash" before the experiment starts); runtimes must not use it.
func (b *NVQ15) Raw() []fixed.Q15 { return b.data }

// NVDoubleQ15 is a double-buffered persistent Q15 buffer with atomic
// commit: writers fill the inactive bank, then flip a selector word.
// A power failure at any point leaves the previously committed bank
// intact — FLEX's mechanism for checkpointing intermediate results
// without torn states.
type NVDoubleQ15 struct {
	bank [2]*NVQ15
	// sel holds the active bank index in bit 0 and a monotonically
	// increasing commit sequence number in the remaining bits.
	sel NVWord
}

// NewNVDoubleQ15 reserves a double buffer of n Q15 words per bank.
func NewNVDoubleQ15(d *Device, n int) (*NVDoubleQ15, error) {
	a, err := NewNVQ15(d, n)
	if err != nil {
		return nil, err
	}
	b, err := NewNVQ15(d, n)
	if err != nil {
		return nil, err
	}
	if err := d.ReserveFRAM(8); err != nil { // selector word
		return nil, err
	}
	return &NVDoubleQ15{bank: [2]*NVQ15{a, b}}, nil
}

// Len returns the per-bank length in Q15 words.
func (b *NVDoubleQ15) Len() int { return b.bank[0].Len() }

// Commit atomically replaces the committed contents with src using DMA
// bulk movement: fill the inactive bank chunk by chunk, then flip the
// selector in a single word write. src may be shorter than the bank
// (a prefix commit): only len(src) words are charged and written, and
// the reader is expected to know — from data inside the prefix — how
// much of the bank is meaningful.
func (b *NVDoubleQ15) Commit(d *Device, cat Category, src []fixed.Q15) {
	cur := b.sel.Read(d, cat)
	inactive := (cur & 1) ^ 1
	b.bank[inactive].StoreDMA(d, cat, 0, src)
	seq := (cur >> 1) + 1
	b.sel.Write(d, cat, seq<<1|inactive)
}

// Load copies the first len(dst) words of the committed bank into dst.
func (b *NVDoubleQ15) Load(d *Device, cat Category, dst []fixed.Q15) {
	b.LoadAt(d, cat, 0, dst)
}

// LoadAt copies len(dst) words of the committed bank starting at
// offset into dst.
func (b *NVDoubleQ15) LoadAt(d *Device, cat Category, offset int, dst []fixed.Q15) {
	cur := b.sel.Read(d, cat)
	b.bank[cur&1].LoadDMA(d, cat, offset, dst)
}

// Seq returns the commit sequence number, charging one word read.
// Monotonicity of this value across reboots is FLEX's progress
// invariant.
func (b *NVDoubleQ15) Seq(d *Device, cat Category) uint64 {
	return b.sel.Read(d, cat) >> 1
}

// PeekSeq returns the commit sequence without charging (tests only).
func (b *NVDoubleQ15) PeekSeq() uint64 { return b.sel.Peek() >> 1 }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
