package device

// Costs is the latency/energy table of the simulated MCU. The default
// values approximate TI's MSP430FR5994 (16 MHz, 3.0 V) from its
// datasheet and the LEA application report (TI SLAA720); they are
// deliberately simple per-unit constants. The paper's claims are
// ratios between runtimes sharing one cost table, so what matters is
// that the *relative* prices (CPU vs LEA vs DMA vs FRAM) are faithful,
// not the absolute nanojoule values.
type Costs struct {
	// ClockHz is the CPU/LEA clock frequency.
	ClockHz float64

	// CPUCyclenJ is the energy of one active-mode CPU cycle
	// (~120 µA/MHz at 3.0 V ≈ 0.36 nJ/cycle at 16 MHz).
	CPUCyclenJ float64
	// LPMCyclenJ is the energy of one cycle spent in LPM0 while a
	// peripheral (LEA or DMA) works autonomously.
	LPMCyclenJ float64
	// LEACyclenJ is the energy of one LEA core cycle, excluding the
	// sleeping CPU (which is billed at LPMCyclenJ in parallel).
	LEACyclenJ float64

	// FRAMReadWordnJ / FRAMWriteWordnJ are the per-16-bit-word energy
	// premiums of FRAM accesses over register operations. Writes are
	// several times costlier than reads on FRAM.
	FRAMReadWordnJ  float64
	FRAMWriteWordnJ float64
	// SRAMWordnJ is the per-word premium of an SRAM access (small:
	// zero-wait-state memory).
	SRAMWordnJ float64
	// DMAWordnJ is the total per-word energy of a DMA transfer; the
	// DMA engine moves words without CPU fetch/decode overhead, which
	// is why it is cheaper than CPUCyclenJ-driven copies.
	DMAWordnJ float64

	// FRAMReadWordCycles / FRAMWriteWordCycles are CPU cycles per word
	// for CPU-driven FRAM access (wait states at 16 MHz).
	FRAMReadWordCycles  uint64
	FRAMWriteWordCycles uint64
	// SRAMWordCycles is CPU cycles per word for CPU-driven SRAM moves.
	SRAMWordCycles uint64
	// DMASetupCycles is the fixed cost of programming a DMA channel;
	// DMAWordCycles the per-word transfer cost.
	DMASetupCycles uint64
	DMAWordCycles  uint64

	// LEASetupCycles is the fixed cost of writing an LEA command block
	// and waking the accelerator.
	LEASetupCycles uint64
	// LEAMACCyclesPerElem is LEA cycles per element of a vector MAC.
	LEAMACCyclesPerElem uint64
	// LEACMulCyclesPerElem is LEA cycles per element of a complex
	// element-wise multiply.
	LEACMulCyclesPerElem uint64
	// LEAAddCyclesPerElem is LEA cycles per element of a vector add.
	LEAAddCyclesPerElem uint64
	// LEAFFTButterflyCycles is LEA cycles per radix-2 butterfly; an
	// N-point FFT costs LEASetup + (N/2)·log2(N)·this.
	LEAFFTButterflyCycles uint64

	// CPUMACCycles is the software multiply-accumulate cost per
	// element (hardware multiplier via memory-mapped registers, load,
	// add, index update).
	CPUMACCycles uint64
	// CPUOpCycles is a generic single ALU operation (compare, add,
	// branch) used for control overhead.
	CPUOpCycles uint64

	// ADCSampleCycles / ADCSamplenJ price one voltage-monitor sample
	// (FLEX's on-demand trigger: a comparator-based supervisor read,
	// far cheaper than a full ADC conversion).
	ADCSampleCycles uint64
	ADCSamplenJ     float64

	// SRAMBytes and FRAMBytes are the memory capacities.
	SRAMBytes int
	FRAMBytes int
}

// DefaultCosts returns the MSP430FR5994 approximation described above.
// The energy constants are system-level (what EnergyTrace sees: core +
// FRAM controller + board regulator), roughly 5× the bare-core
// datasheet numbers — calibrated so that one paper-model inference
// costs low single-digit millijoules, as the paper's Fig. 7(c)
// reports, and therefore exceeds the ~0.38 mJ a 100 µF capacitor
// charge can deliver (the premise of Fig. 7(b)'s DNF entries).
func DefaultCosts() Costs {
	return Costs{
		ClockHz: 16e6,

		CPUCyclenJ: 1.8,
		LPMCyclenJ: 0.22,
		LEACyclenJ: 0.55,

		FRAMReadWordnJ:  4.5,
		FRAMWriteWordnJ: 13,
		SRAMWordnJ:      0.4,
		DMAWordnJ:       1.75,

		FRAMReadWordCycles:  2,
		FRAMWriteWordCycles: 4,
		SRAMWordCycles:      2,
		DMASetupCycles:      28,
		DMAWordCycles:       2,

		LEASetupCycles:        44,
		LEAMACCyclesPerElem:   1,
		LEACMulCyclesPerElem:  2,
		LEAAddCyclesPerElem:   1,
		LEAFFTButterflyCycles: 4,

		CPUMACCycles: 9,
		CPUOpCycles:  1,

		ADCSampleCycles: 30,
		ADCSamplenJ:     40,

		SRAMBytes: 8 * 1024,
		FRAMBytes: 256 * 1024,
	}
}

// Category identifies the consumer of a charged operation for the
// EnergyTrace-style breakdown (Fig. 7(c)).
type Category int

// Energy meter categories.
const (
	CatCPU Category = iota
	CatLEA
	CatDMA
	CatFRAMRead
	CatFRAMWrite
	CatSRAM
	CatCheckpoint // FLEX/SONIC/TAILS progress commits
	CatRestore    // post-outage state reloads
	CatMonitor    // voltage-monitor samples
	NumCategories
)

// String returns the category name used in reports.
func (c Category) String() string {
	switch c {
	case CatCPU:
		return "cpu"
	case CatLEA:
		return "lea"
	case CatDMA:
		return "dma"
	case CatFRAMRead:
		return "fram-read"
	case CatFRAMWrite:
		return "fram-write"
	case CatSRAM:
		return "sram"
	case CatCheckpoint:
		return "checkpoint"
	case CatRestore:
		return "restore"
	case CatMonitor:
		return "monitor"
	}
	return "unknown"
}
