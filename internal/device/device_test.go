package device

import (
	"math"
	"testing"

	"ehdl/internal/fixed"
)

// budgetSupply delivers a fixed energy budget and then browns out; it
// lets tests inject power failures at exact energy offsets.
type budgetSupply struct {
	remaining float64 // nJ
}

func (s *budgetSupply) Draw(nJ, dt float64) bool {
	if s.remaining < nJ {
		s.remaining = 0
		return false
	}
	s.remaining -= nJ
	return true
}
func (s *budgetSupply) Voltage() float64          { return 3.0 }
func (s *budgetSupply) Recharge() (float64, bool) { return 1e-3, true }

func newTestDevice() *Device {
	return New(DefaultCosts(), Continuous{})
}

func TestConsumeAccountsCyclesAndEnergy(t *testing.T) {
	d := newTestDevice()
	d.Consume(CatCPU, 100, 36)
	s := d.Stats()
	if s.ActiveCycles != 100 {
		t.Errorf("cycles = %d, want 100", s.ActiveCycles)
	}
	if math.Abs(s.Energy[CatCPU]-36) > 1e-12 {
		t.Errorf("CPU energy = %v, want 36", s.Energy[CatCPU])
	}
	wantSec := 100.0 / d.Costs.ClockHz
	if math.Abs(s.ActiveSeconds-wantSec) > 1e-15 {
		t.Errorf("seconds = %v, want %v", s.ActiveSeconds, wantSec)
	}
}

func TestEnergyConservation(t *testing.T) {
	// Sum of category meters must equal the total the supply delivered.
	supply := &budgetSupply{remaining: 1e9}
	d := New(DefaultCosts(), supply)
	d.CPUOps(100)
	d.CPUMACs(50)
	d.LEAFFT(64)
	d.DMA(128)
	d.FRAMWrite(32, CatCheckpoint)
	d.FRAMRead(32, CatRestore)
	d.SRAMAccess(16)
	d.MonitorSample()
	s := d.Stats()
	delivered := 1e9 - supply.remaining
	if math.Abs(s.TotalEnergynJ-delivered) > 1e-6 {
		t.Errorf("meter total %v nJ, supply delivered %v nJ", s.TotalEnergynJ, delivered)
	}
}

func TestPowerFailurePanics(t *testing.T) {
	d := New(DefaultCosts(), &budgetSupply{remaining: 10})
	defer func() {
		r := recover()
		if _, ok := r.(PowerFailure); !ok {
			t.Errorf("expected PowerFailure panic, got %v", r)
		}
	}()
	d.CPUOps(1000) // far beyond 10 nJ
}

func TestRebootWipesSRAMOnly(t *testing.T) {
	d := newTestDevice()
	vol := MustAllocQ15(d, 4)
	nv, err := NewNVQ15(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	vol[0] = 7
	nv.Store(d, CatFRAMWrite, 0, []fixed.Q15{1, 2, 3, 4})
	if !d.Reboot() {
		t.Fatal("reboot failed under continuous supply")
	}
	if vol[0] != 0 {
		t.Error("SRAM survived reboot")
	}
	dst := make([]fixed.Q15, 4)
	nv.Load(d, CatFRAMRead, 0, dst)
	if dst[2] != 3 {
		t.Error("FRAM lost data across reboot")
	}
	if d.Stats().Boots != 1 {
		t.Errorf("boots = %d, want 1", d.Stats().Boots)
	}
}

func TestSRAMCapacityEnforced(t *testing.T) {
	d := newTestDevice()
	if _, err := AllocQ15(d, 3000); err != nil { // 6000 B fits in 8 KB
		t.Fatalf("first alloc should fit: %v", err)
	}
	if _, err := AllocQ15(d, 2000); err == nil { // 4000 B more does not
		t.Fatal("expected SRAM overflow error")
	}
	if got := d.SRAMUsed(); got != 6000 {
		t.Errorf("SRAMUsed = %d, want 6000", got)
	}
}

func TestFRAMCapacityEnforced(t *testing.T) {
	d := newTestDevice()
	if err := d.ReserveFRAM(200 * 1024); err != nil {
		t.Fatalf("200 KB should fit: %v", err)
	}
	if err := d.ReserveFRAM(100 * 1024); err == nil {
		t.Fatal("expected FRAM overflow error")
	}
}

func TestAllocComplexAndQ31Sizes(t *testing.T) {
	d := newTestDevice()
	if _, err := AllocComplex(d, 10); err != nil {
		t.Fatal(err)
	}
	if d.SRAMUsed() != 40 {
		t.Errorf("complex alloc used %d B, want 40", d.SRAMUsed())
	}
	if _, err := AllocQ31(d, 10); err != nil {
		t.Fatal(err)
	}
	if d.SRAMUsed() != 80 {
		t.Errorf("after Q31 alloc used %d B, want 80", d.SRAMUsed())
	}
}

func TestNVWordAtomicAcrossFailure(t *testing.T) {
	// A write that cannot be paid must not change the word.
	d := New(DefaultCosts(), &budgetSupply{remaining: 0.5})
	var w NVWord
	func() {
		defer func() { recover() }()
		w.Write(d, CatCheckpoint, 42)
	}()
	if w.Peek() != 0 {
		t.Errorf("unpaid write mutated the word: %d", w.Peek())
	}
}

func TestNVQ15StoreLoadRoundTrip(t *testing.T) {
	d := newTestDevice()
	b, err := NewNVQ15(d, 100)
	if err != nil {
		t.Fatal(err)
	}
	src := make([]fixed.Q15, 100)
	for i := range src {
		src[i] = fixed.Q15(i)
	}
	b.Store(d, CatFRAMWrite, 0, src)
	dst := make([]fixed.Q15, 100)
	b.Load(d, CatFRAMRead, 0, dst)
	for i := range dst {
		if dst[i] != src[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestNVQ15PartialStoreOnFailure(t *testing.T) {
	// With only enough energy for the first chunk, a bulk store must
	// leave a prefix written and the rest untouched — the torn-write
	// hazard double buffering guards against.
	costs := DefaultCosts()
	chunkEnergy := float64(commitChunkWords)*costs.FRAMWriteWordnJ +
		float64(uint64(commitChunkWords)*costs.FRAMWriteWordCycles)*costs.CPUCyclenJ
	d := New(costs, &budgetSupply{remaining: chunkEnergy * 1.5})
	b, err := NewNVQ15(d, 2*commitChunkWords)
	if err != nil {
		t.Fatal(err)
	}
	src := make([]fixed.Q15, 2*commitChunkWords)
	for i := range src {
		src[i] = 9
	}
	func() {
		defer func() {
			if _, ok := recover().(PowerFailure); !ok {
				t.Error("expected PowerFailure")
			}
		}()
		b.Store(d, CatFRAMWrite, 0, src)
	}()
	if b.Raw()[0] != 9 {
		t.Error("first chunk should have been written")
	}
	if b.Raw()[commitChunkWords] != 0 {
		t.Error("second chunk should NOT have been written")
	}
}

func TestNVDoubleBufferAtomicCommit(t *testing.T) {
	d := newTestDevice()
	db, err := NewNVDoubleQ15(d, 8)
	if err != nil {
		t.Fatal(err)
	}
	v1 := make([]fixed.Q15, 8)
	for i := range v1 {
		v1[i] = 1
	}
	db.Commit(d, CatCheckpoint, v1)
	if db.PeekSeq() != 1 {
		t.Errorf("seq = %d, want 1", db.PeekSeq())
	}
	got := make([]fixed.Q15, 8)
	db.Load(d, CatRestore, got)
	if got[3] != 1 {
		t.Error("committed data not loaded")
	}
}

func TestNVDoubleBufferFailureKeepsOldData(t *testing.T) {
	// Inject failures at every possible energy budget within a commit;
	// the loaded data must always be the old committed value or the
	// new one — never a mixture.
	costs := DefaultCosts()
	old := make([]fixed.Q15, 64)
	next := make([]fixed.Q15, 64)
	for i := range old {
		old[i] = 1
		next[i] = 2
	}
	// Measure the full commit cost first.
	probe := New(costs, Continuous{})
	db0, err := NewNVDoubleQ15(probe, 64)
	if err != nil {
		t.Fatal(err)
	}
	before := probe.Stats().TotalEnergynJ
	db0.Commit(probe, CatCheckpoint, old)
	commitCost := probe.Stats().TotalEnergynJ - before

	steps := 24
	for i := 0; i <= steps; i++ {
		budget := commitCost * float64(i) / float64(steps) * 0.999
		d := New(costs, Continuous{})
		db, err := NewNVDoubleQ15(d, 64)
		if err != nil {
			t.Fatal(err)
		}
		db.Commit(d, CatCheckpoint, old) // seed with old data, full power
		// Switch to a constrained supply for the second commit.
		d2 := New(costs, &budgetSupply{remaining: budget})
		interrupted := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(PowerFailure); !ok {
						panic(r)
					}
					interrupted = true
				}
			}()
			db.Commit(d2, CatCheckpoint, next)
		}()
		got := make([]fixed.Q15, 64)
		db.Load(d, CatRestore, got)
		want := fixed.Q15(2)
		if interrupted {
			want = 1 // must still read the old committed bank
		}
		for j := range got {
			if got[j] != want {
				t.Fatalf("budget %.0f nJ (interrupted=%v): element %d = %d, want %d — torn commit",
					budget, interrupted, j, got[j], want)
			}
		}
	}
}

func TestChargeHelpersMeterCategories(t *testing.T) {
	d := newTestDevice()
	d.LEAMAC(100)
	d.LEAAdd(100)
	d.LEACMul(100)
	if d.Stats().Energy[CatLEA] == 0 {
		t.Error("LEA meter empty after LEA ops")
	}
	d.DMAToFRAM(10, CatCheckpoint)
	if d.Stats().Energy[CatCheckpoint] == 0 {
		t.Error("checkpoint meter empty after DMAToFRAM")
	}
	d.DMAFromFRAM(10, CatRestore)
	if d.Stats().Energy[CatRestore] == 0 {
		t.Error("restore meter empty after DMAFromFRAM")
	}
}

func TestLEAFFTCostGrowsLogLinearly(t *testing.T) {
	costFor := func(n int) float64 {
		d := newTestDevice()
		d.LEAFFT(n)
		return d.Stats().TotalEnergynJ
	}
	c64, c128, c256 := costFor(64), costFor(128), costFor(256)
	if !(c64 < c128 && c128 < c256) {
		t.Errorf("FFT cost not monotonic: %v %v %v", c64, c128, c256)
	}
	// N log N scaling: 128-point should cost less than 2.5x 64-point.
	if c128 > 2.5*c64 {
		t.Errorf("FFT cost scaling looks wrong: c64=%v c128=%v", c64, c128)
	}
}

func TestCPUvsLEAMACEnergy(t *testing.T) {
	// The whole premise of ACE: a vector MAC on the LEA must cost
	// meaningfully less than the same MACs on the CPU.
	n := 1024
	dc := newTestDevice()
	dc.CPUMACs(n)
	cpu := dc.Stats().TotalEnergynJ
	dl := newTestDevice()
	dl.LEAMAC(n)
	lea := dl.Stats().TotalEnergynJ
	if lea*5 > cpu {
		t.Errorf("LEA MAC (%v nJ) not at least 5x cheaper than CPU (%v nJ)", lea, cpu)
	}
}

func TestDMACheaperThanCPUCopyForBulk(t *testing.T) {
	n := 256
	dc := newTestDevice()
	dc.FRAMRead(n, CatFRAMRead) // CPU-driven read of n words
	cpu := dc.Stats().TotalEnergynJ
	dd := newTestDevice()
	dd.DMAFromFRAM(n, CatFRAMRead)
	dma := dd.Stats().TotalEnergynJ
	if dma >= cpu {
		t.Errorf("bulk DMA (%v nJ) should beat CPU copies (%v nJ)", dma, cpu)
	}
}

func TestMonitorSampleReturnsVoltage(t *testing.T) {
	d := newTestDevice()
	if v := d.MonitorSample(); v != 3.3 {
		t.Errorf("MonitorSample = %v, want 3.3 (continuous)", v)
	}
	if d.Stats().Energy[CatMonitor] == 0 {
		t.Error("monitor sample not charged")
	}
}

func TestStatsWallTime(t *testing.T) {
	d := New(DefaultCosts(), &budgetSupply{remaining: 1e9})
	d.CPUOps(16000) // 1 ms at 16 MHz
	d.Reboot()      // budgetSupply reports 1 ms off-time
	s := d.Stats()
	if math.Abs(s.WallSeconds-(s.ActiveSeconds+s.OffSeconds)) > 1e-15 {
		t.Error("wall != active + off")
	}
	if math.Abs(s.OffSeconds-1e-3) > 1e-12 {
		t.Errorf("off seconds = %v, want 1e-3", s.OffSeconds)
	}
}

func TestCategoryString(t *testing.T) {
	names := map[Category]string{
		CatCPU: "cpu", CatLEA: "lea", CatDMA: "dma",
		CatFRAMRead: "fram-read", CatFRAMWrite: "fram-write",
		CatSRAM: "sram", CatCheckpoint: "checkpoint",
		CatRestore: "restore", CatMonitor: "monitor",
		Category(99): "unknown",
	}
	for c, want := range names {
		if got := c.String(); got != want {
			t.Errorf("Category(%d).String() = %q, want %q", c, got, want)
		}
	}
}
