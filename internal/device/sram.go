package device

import (
	"ehdl/internal/fftfixed"
	"ehdl/internal/fixed"
)

// SRAM allocators. Buffers returned here model the 8 KB on-chip SRAM:
// they are zeroed on every reboot, so any value a runtime wants to
// survive a power failure must be committed to FRAM through the NV
// types instead. Allocation is permanent for the device's lifetime
// (embedded firmware allocates statically).

// AllocQ15 reserves a volatile Q15 vector of length n.
func AllocQ15(d *Device, n int) ([]fixed.Q15, error) {
	buf := make([]fixed.Q15, n)
	err := d.reserveSRAM(2*n, func() {
		for i := range buf {
			buf[i] = 0
		}
	})
	if err != nil {
		return nil, err
	}
	return buf, nil
}

// AllocComplex reserves a volatile complex Q15 vector of length n
// (4 bytes per element: interleaved re/im).
func AllocComplex(d *Device, n int) ([]fftfixed.Complex, error) {
	buf := make([]fftfixed.Complex, n)
	err := d.reserveSRAM(4*n, func() {
		for i := range buf {
			buf[i] = fftfixed.Complex{}
		}
	})
	if err != nil {
		return nil, err
	}
	return buf, nil
}

// AllocQ31 reserves a volatile Q31 accumulator vector of length n.
func AllocQ31(d *Device, n int) ([]fixed.Q31, error) {
	buf := make([]fixed.Q31, n)
	err := d.reserveSRAM(4*n, func() {
		for i := range buf {
			buf[i] = 0
		}
	})
	if err != nil {
		return nil, err
	}
	return buf, nil
}

// MustAllocQ15 is AllocQ15 that panics on SRAM exhaustion, for
// construction paths where the capacity was already planned.
func MustAllocQ15(d *Device, n int) []fixed.Q15 {
	buf, err := AllocQ15(d, n)
	if err != nil {
		panic(err)
	}
	return buf
}

// MustAllocComplex is AllocComplex that panics on SRAM exhaustion.
func MustAllocComplex(d *Device, n int) []fftfixed.Complex {
	buf, err := AllocComplex(d, n)
	if err != nil {
		panic(err)
	}
	return buf
}

// MustAllocQ31 is AllocQ31 that panics on SRAM exhaustion.
func MustAllocQ31(d *Device, n int) []fixed.Q31 {
	buf, err := AllocQ31(d, n)
	if err != nil {
		panic(err)
	}
	return buf
}
