// Package ace implements ACE, the paper's accelerator-enabled
// embedded inference runtime (§III-B): DMA bulk movement stages
// operands into SRAM, the LEA executes the vector work (MAC for
// convolutions and dense rows, FFT/MPY/IFFT for BCM layers per
// Algorithm 1), activations ping-pong between exactly two FRAM buffers
// (circular buffer convolution, Fig. 5), and all arithmetic is
// overflow-aware 16-bit fixed point.
//
// ACE optionally carries a FLEX controller; without one it has no
// intermittent support at all (the plain-ACE "X" column of Fig. 7(b)),
// with one it resumes mid-BCM-block from the committed stage (Fig. 6).
package ace

import (
	"fmt"

	"ehdl/internal/device"
	"ehdl/internal/exec"
	"ehdl/internal/fftfixed"
	"ehdl/internal/fixed"
	"ehdl/internal/flex"
	"ehdl/internal/quant"
)

// elemStride is the element batch between FLEX boundaries for cheap
// element-wise layers (pool/relu).
const elemStride = 32

// convWBudgetWords caps the SRAM set aside for staged conv weights;
// layers whose filters exceed it are processed in filter chunks, each
// chunk making its own pass over the output pixels (more window
// gathers, the price of a small SRAM).
const convWBudgetWords = 1600

// Engine is the ACE runtime for one inference.
type Engine struct {
	d     *device.Device
	store *exec.ModelStore

	in *device.NVQ15
	// actA/actB are the two circular activation buffers in FRAM.
	act [2]*device.NVQ15
	// bufIn[li] selects which of act holds layer li's input; flatten
	// layers do not flip.
	bufIn, bufOut []int

	// SRAM workspaces, sized at construction across all layers.
	winBuf  []fixed.Q15 // conv im2col window
	wSRAM   []fixed.Q15 // staged conv weights (whole layer)
	biasBuf []fixed.Q15 // staged biases
	outVec  []fixed.Q15 // per-pixel filter outputs
	xStage  []fixed.Q15 // dense-layer input / BCM x block
	wStage  []fixed.Q15 // dense row / BCM w block
	accVec  []fixed.Q15 // BCM row accumulator
	convVec []fixed.Q15 // BCM per-block convolution result
	cw, cx  []fftfixed.Complex
	cy      []fftfixed.Complex

	fx *flex.Controller // nil = plain ACE

	windowOffs map[int][]int
	// filtersPerChunk[li] is the conv weight-staging chunk size.
	filtersPerChunk map[int]int
	// posBase[li] is the linear FLEX-progress base of layer li.
	posBase []uint64
}

// New builds an ACE engine. fx may be nil for plain ACE (no
// intermittent support).
func New(d *device.Device, store *exec.ModelStore, input []fixed.Q15, fx *flex.Controller) (*Engine, error) {
	m := store.Model
	if got, want := len(input), m.InShape[0]*m.InShape[1]*m.InShape[2]; got != want {
		return nil, fmt.Errorf("ace: input length %d, want %d", got, want)
	}
	e := &Engine{d: d, store: store, fx: fx,
		windowOffs:      map[int][]int{},
		filtersPerChunk: map[int]int{},
	}

	in, err := device.NewNVQ15(d, len(input))
	if err != nil {
		return nil, err
	}
	copy(in.Raw(), input)
	e.in = in

	// Size the two circular buffers: the largest activation, padded up
	// to the BCM block grid where needed.
	bufLen := m.MaxActivationLen()
	maxWin, maxConvW, maxBias, maxOutC := 0, 0, 0, 0
	maxK, maxDenseIn := 0, 0
	pos := uint64(0)
	cur := 0
	for li := range m.Layers {
		l := &m.Layers[li]
		e.posBase = append(e.posBase, pos)
		e.bufIn = append(e.bufIn, cur)
		switch l.Spec.Kind {
		case "conv":
			e.windowOffs[li] = exec.WindowOffsets(l)
			win := exec.KernelLen(l)
			if win > maxWin {
				maxWin = win
			}
			fpc := l.Spec.OutC
			if fpc*win > convWBudgetWords {
				fpc = convWBudgetWords / win
				if fpc < 1 {
					return nil, fmt.Errorf("ace: conv kernel of %d words exceeds the weight-staging budget", win)
				}
			}
			e.filtersPerChunk[li] = fpc
			if w := fpc * win; w > maxConvW {
				maxConvW = w
			}
			if fpc > maxOutC {
				maxOutC = fpc
			}
			chunks := (l.Spec.OutC + fpc - 1) / fpc
			oh := l.Spec.InH - l.Spec.KH + 1
			ow := l.Spec.InW - l.Spec.KW + 1
			pos += uint64(chunks * oh * ow)
			cur ^= 1
		case "pool", "relu":
			pos += uint64(quant.LayerOutLen(l.Spec))
			cur ^= 1
		case "flatten":
			// No movement, no progress units, no buffer flip.
		case "dense":
			if l.Spec.In > maxDenseIn {
				maxDenseIn = l.Spec.In
			}
			pos += uint64(l.Spec.Out)
			cur ^= 1
		case "bcm":
			k := l.Spec.K
			if k > maxK {
				maxK = k
			}
			p := (l.Spec.Out + k - 1) / k
			q := (l.Spec.In + k - 1) / k
			if padded := q * k; padded > bufLen {
				bufLen = padded
			}
			pos += uint64(p*q) * 3
			cur ^= 1
		default:
			return nil, fmt.Errorf("ace: unsupported layer kind %q", l.Spec.Kind)
		}
		if n := len(l.B); n > maxBias {
			maxBias = n
		}
		e.bufOut = append(e.bufOut, cur)
	}
	e.posBase = append(e.posBase, pos)

	for i := range e.act {
		if e.act[i], err = device.NewNVQ15(d, bufLen); err != nil {
			return nil, err
		}
	}

	alloc := func(n int) ([]fixed.Q15, error) {
		if n == 0 {
			return nil, nil
		}
		return device.AllocQ15(d, n)
	}
	if e.winBuf, err = alloc(maxWin); err != nil {
		return nil, err
	}
	if e.wSRAM, err = alloc(maxConvW); err != nil {
		return nil, err
	}
	if e.biasBuf, err = alloc(maxBias); err != nil {
		return nil, err
	}
	if e.outVec, err = alloc(maxOutC); err != nil {
		return nil, err
	}
	stage := maxK
	if maxDenseIn > stage {
		stage = maxDenseIn
	}
	if e.xStage, err = alloc(stage); err != nil {
		return nil, err
	}
	if e.wStage, err = alloc(stage); err != nil {
		return nil, err
	}
	if maxK > 0 {
		if e.accVec, err = alloc(maxK); err != nil {
			return nil, err
		}
		if e.convVec, err = alloc(maxK); err != nil {
			return nil, err
		}
		if e.cw, err = device.AllocComplex(d, maxK); err != nil {
			return nil, err
		}
		if e.cx, err = device.AllocComplex(d, maxK); err != nil {
			return nil, err
		}
		if e.cy, err = device.AllocComplex(d, maxK); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// EngineName implements exec.Engine.
func (e *Engine) EngineName() string {
	if e.fx != nil {
		return "ace+flex"
	}
	return "ace"
}

// Output implements exec.Engine: the logits live in the output buffer
// of the last layer.
func (e *Engine) Output() []fixed.Q15 {
	last := len(e.store.Model.Layers) - 1
	n := quant.LayerOutLen(e.store.Model.Layers[last].Spec)
	buf := e.act[e.bufOut[last]]
	return append([]fixed.Q15(nil), buf.Raw()[:n]...)
}

// Progress implements intermittent.ProgressReporter: plain ACE makes
// no persistent progress; ACE+FLEX reports the committed position.
func (e *Engine) Progress() uint64 {
	if e.fx == nil {
		return 0
	}
	return e.fx.Position()
}

// snapPos maps a restored FLEX snapshot to its linear position.
func (e *Engine) snapPos(s flex.Snapshot) uint64 {
	if s.Layer >= len(e.store.Model.Layers) {
		return e.posBase[len(e.posBase)-1]
	}
	l := &e.store.Model.Layers[s.Layer]
	base := e.posBase[s.Layer]
	if s.State == flex.StateElement {
		return base + uint64(s.Elem)
	}
	q := (l.Spec.In + l.Spec.K - 1) / l.Spec.K
	rank := uint64(0)
	switch s.State {
	case flex.StatePostMPY:
		rank = 1
	case flex.StatePostIFFT:
		rank = 2
	}
	return base + uint64(s.I*q+s.J)*3 + rank
}

// Boot implements intermittent.Program.
func (e *Engine) Boot(d *device.Device) error {
	m := e.store.Model

	startLayer := 0
	var resume *flex.Snapshot
	if e.fx != nil {
		if s, ok := e.fx.Restore(d, e.snapPos); ok {
			startLayer = s.Layer
			resume = &s
		}
	}

	for li := startLayer; li < len(m.Layers); li++ {
		l := &m.Layers[li]
		in := e.layerIn(li)
		out := e.act[e.bufOut[li]]
		var rs *flex.Snapshot
		if resume != nil && li == startLayer {
			rs = resume
		}
		switch l.Spec.Kind {
		case "conv":
			e.convLayer(d, li, l, in, out, rs)
		case "pool":
			e.poolLayer(d, li, l, in, out, rs)
		case "relu":
			e.reluLayer(d, li, l, in, out, rs)
		case "flatten":
			// Pure reshape: no data movement at all.
		case "dense":
			e.denseLayer(d, li, l, in, out, rs)
		case "bcm":
			e.bcmLayer(d, li, l, in, out, rs)
		default:
			return fmt.Errorf("ace: unsupported layer kind %q", l.Spec.Kind)
		}
	}
	return nil
}

// layerIn returns the buffer holding layer li's input: the sensor's
// input area for the first layer, a circular buffer afterwards.
func (e *Engine) layerIn(li int) *device.NVQ15 {
	if li == 0 {
		return e.in
	}
	return e.act[e.bufIn[li]]
}

// boundary reports a FLEX-resumable position.
func (e *Engine) boundary(d *device.Device, pos uint64, snap func() flex.Snapshot) {
	if e.fx != nil {
		e.fx.Boundary(d, pos, snap)
	}
}

// stageBias DMAs a layer's biases into SRAM.
func (e *Engine) stageBias(d *device.Device, li int) []fixed.Q15 {
	b := e.store.B[li]
	if b == nil {
		return nil
	}
	n := b.Len()
	d.DMAFromFRAM(n, device.CatDMA)
	copy(e.biasBuf[:n], b.Raw())
	return e.biasBuf[:n]
}

// convLayer: the layer's filters are staged into SRAM (in chunks when
// they exceed the staging budget); per output pixel the im2col window
// is gathered once and shared across the staged filters, one LEA MAC
// each.
func (e *Engine) convLayer(d *device.Device, li int, l *quant.QLayer, in, out *device.NVQ15, rs *flex.Snapshot) {
	s := l.Spec
	oh := s.InH - s.KH + 1
	ow := s.InW - s.KW + 1
	pixels := oh * ow
	offs := e.windowOffs[li]
	win := len(offs)
	shift := l.AccShift()
	fpc := e.filtersPerChunk[li]
	chunks := (s.OutC + fpc - 1) / fpc

	bias := e.stageBias(d, li)

	// The FLEX element cursor is chunk-major: elem = chunk·pixels + px.
	startElem := 0
	if rs != nil && rs.State == flex.StateElement {
		startElem = rs.Elem
	}
	xRaw := in.Raw()
	outRaw := out.Raw()
	for chunk := startElem / pixels; chunk < chunks; chunk++ {
		oc0 := chunk * fpc
		oc1 := oc0 + fpc
		if oc1 > s.OutC {
			oc1 = s.OutC
		}
		// Stage this chunk's filters (DMA bulk movement).
		wWords := (oc1 - oc0) * win
		d.DMAFromFRAM(wWords, device.CatDMA)
		copy(e.wSRAM[:wWords], e.store.W[li].Raw()[oc0*win:oc1*win])

		px0 := 0
		if chunk == startElem/pixels {
			px0 = startElem % pixels
		}
		for px := px0; px < pixels; px++ {
			oy := px / ow
			ox := px % ow
			elem := chunk*pixels + px
			e.boundary(d, e.posBase[li]+uint64(elem), func() flex.Snapshot {
				return flex.Snapshot{Layer: li, State: flex.StateElement, Elem: elem,
					Pos: e.posBase[li] + uint64(elem)}
			})
			// Gather the window: one DMA per contiguous row segment.
			origin := oy*s.InW + ox
			i := 0
			for i < win {
				j := i + 1
				for j < win && offs[j] == offs[j-1]+1 {
					j++
				}
				d.DMAFromFRAM(j-i, device.CatDMA)
				for k := i; k < j; k++ {
					e.winBuf[k] = xRaw[origin+offs[k]]
				}
				i = j
			}
			// One LEA MAC per staged filter over the shared window.
			for oc := oc0; oc < oc1; oc++ {
				d.LEAMAC(win)
				acc := fixed.Dot(e.wSRAM[(oc-oc0)*win:(oc-oc0+1)*win], e.winBuf[:win])
				d.CPUOps(2)
				e.outVec[oc-oc0] = fixed.SatAdd(fixed.NarrowQ31(acc, shift), bias[oc])
			}
			// Strided per-pixel store across filters (CPU-driven).
			d.FRAMWrite(oc1-oc0, device.CatFRAMWrite)
			for oc := oc0; oc < oc1; oc++ {
				outRaw[(oc*oh+oy)*ow+ox] = e.outVec[oc-oc0]
			}
		}
	}
}

func (e *Engine) poolLayer(d *device.Device, li int, l *quant.QLayer, in, out *device.NVQ15, rs *flex.Snapshot) {
	s := l.Spec
	oh := s.InH / s.PoolSize
	ow := s.InW / s.PoolSize
	n := s.InC * oh * ow
	start := 0
	if rs != nil {
		start = rs.Elem
	}
	xRaw := in.Raw()
	for elem := start; elem < n; elem++ {
		if elem%elemStride == 0 {
			el := elem
			e.boundary(d, e.posBase[li]+uint64(elem), func() flex.Snapshot {
				return flex.Snapshot{Layer: li, State: flex.StateElement, Elem: el,
					Pos: e.posBase[li] + uint64(el)}
			})
		}
		c := elem / (oh * ow)
		rem := elem % (oh * ow)
		oy := rem / ow
		ox := rem % ow
		ps := s.PoolSize
		d.FRAMRead(ps*ps, device.CatFRAMRead)
		d.CPUOps(ps * ps)
		best := fixed.MinusOne
		for dy := 0; dy < ps; dy++ {
			for dx := 0; dx < ps; dx++ {
				v := xRaw[c*s.InH*s.InW+(oy*ps+dy)*s.InW+ox*ps+dx]
				if v > best {
					best = v
				}
			}
		}
		out.StoreOne(d, device.CatFRAMWrite, elem, best)
	}
}

func (e *Engine) reluLayer(d *device.Device, li int, l *quant.QLayer, in, out *device.NVQ15, rs *flex.Snapshot) {
	start := 0
	if rs != nil {
		start = rs.Elem
	}
	xRaw := in.Raw()
	for elem := start; elem < l.Spec.N; elem++ {
		if elem%elemStride == 0 {
			el := elem
			e.boundary(d, e.posBase[li]+uint64(elem), func() flex.Snapshot {
				return flex.Snapshot{Layer: li, State: flex.StateElement, Elem: el,
					Pos: e.posBase[li] + uint64(el)}
			})
		}
		d.FRAMRead(1, device.CatFRAMRead)
		d.CPUOps(2)
		v := xRaw[elem]
		if v < 0 {
			v = 0
		}
		out.StoreOne(d, device.CatFRAMWrite, elem, v)
	}
}

// denseLayer: the input vector is staged once in SRAM, then each
// output row is one DMA (weights) plus one LEA MAC.
func (e *Engine) denseLayer(d *device.Device, li int, l *quant.QLayer, in, out *device.NVQ15, rs *flex.Snapshot) {
	s := l.Spec
	shift := l.AccShift()
	d.DMAFromFRAM(s.In, device.CatDMA)
	copy(e.xStage[:s.In], in.Raw()[:s.In])
	bias := e.stageBias(d, li)
	wRaw := e.store.W[li].Raw()

	start := 0
	if rs != nil {
		start = rs.Elem
	}
	for r := start; r < s.Out; r++ {
		row := r
		e.boundary(d, e.posBase[li]+uint64(r), func() flex.Snapshot {
			return flex.Snapshot{Layer: li, State: flex.StateElement, Elem: row,
				Pos: e.posBase[li] + uint64(row)}
		})
		d.DMAFromFRAM(s.In, device.CatDMA)
		copy(e.wStage[:s.In], wRaw[r*s.In:(r+1)*s.In])
		d.LEAMAC(s.In)
		acc := fixed.Dot(e.wStage[:s.In], e.xStage[:s.In])
		d.CPUOps(2)
		v := fixed.SatAdd(fixed.NarrowQ31(acc, shift), bias[r])
		out.StoreOne(d, device.CatFRAMWrite, r, v)
	}
}
