package ace

import (
	"ehdl/internal/device"
	"ehdl/internal/fftfixed"
	"ehdl/internal/fixed"
	"ehdl/internal/flex"
	"ehdl/internal/quant"
)

// bcmLayer executes a block-circulant FC layer following Algorithm 1,
// with FLEX stage boundaries (Fig. 6) between the pipeline steps:
//
//	for each block row i:
//	  acc ← 0
//	  for each block column j:
//	    [StateBlockStart] DMA x_j, w_ij → SRAM
//	    LEA FFT(x), FFT(w); LEA MPY → y′
//	    [StatePostMPY]    LEA IFFT(y′) → y
//	    [StatePostIFFT]   LEA ADD: acc += y
//	  scale, bias, DMA row to FRAM
//
// A FLEX commit at StatePostMPY saves the product spectrum, so a
// reboot re-enters at the IFFT — the continuation loop-index schemes
// cannot perform because their only persistent state is an index.
func (e *Engine) bcmLayer(d *device.Device, li int, l *quant.QLayer, in, out *device.NVQ15, rs *flex.Snapshot) {
	s := l.Spec
	k := s.K
	p := (s.Out + k - 1) / k
	q := (s.In + k - 1) / k
	shift := l.BCMShift()

	bias := e.stageBias(d, li)
	wRaw := e.store.W[li].Raw()
	xRaw := in.Raw()

	// Cosine normalization: one wide MAC over the input for ‖x‖², a
	// CPU square root, then each staged block is scaled by 1/max(‖x‖,1)
	// right after its DMA.
	scale := fixed.One
	if l.CosNorm {
		d.LEAMAC(s.In)
		d.CPUOps(60)
		scale = quant.InputScale(xRaw[:s.In], l.SIn)
	}

	acc := e.accVec[:k]
	conv := e.convVec[:k]
	cw, cx, cy := e.cw[:k], e.cx[:k], e.cy[:k]

	startI, startJ := 0, 0
	resumeState := flex.StateElement // sentinel: no mid-block resume
	if rs != nil && rs.State != flex.StateElement {
		startI, startJ = rs.I, rs.J
		resumeState = rs.State
		// The committed accumulator holds blocks [0, startJ) of row
		// startI (or [0, startJ] for the post stages, where the block
		// itself is in the intermediate).
		d.CPUOps(4)
		e.fx.LoadAcc(d, acc)
	}

	for i := startI; i < p; i++ {
		if i != startI || resumeState == flex.StateElement {
			// Fresh row: zero the accumulator in SRAM.
			d.SRAMAccess(k)
			for t := range acc {
				acc[t] = 0
			}
		}
		j0 := 0
		if i == startI {
			j0 = startJ
		}
		for j := j0; j < q; j++ {
			blockPos := e.posBase[li] + uint64(i*q+j)*3
			midState := flex.StateElement // sentinel: run block from the top
			if i == startI && j == startJ {
				midState = resumeState
			}

			switch midState {
			case flex.StateElement, flex.StateBlockStart:
				e.boundary(d, blockPos, func() flex.Snapshot {
					return flex.Snapshot{Layer: li, State: flex.StateBlockStart,
						I: i, J: j, Pos: blockPos, Acc: acc}
				})
				// DMA x_j into SRAM, zero-padding the tail block past
				// the layer's logical input length (the circular FRAM
				// buffer may hold stale bytes from an earlier layer
				// there).
				valid := s.In - j*k
				if valid > k {
					valid = k
				}
				d.DMAFromFRAM(valid, device.CatDMA)
				copy(e.xStage[:valid], xRaw[j*k:j*k+valid])
				if l.CosNorm {
					d.LEAMAC(valid)
					fixed.ScaleVec(e.xStage[:valid], e.xStage[:valid], scale)
				}
				if valid < k {
					d.CPUOps(k - valid)
					for t := valid; t < k; t++ {
						e.xStage[t] = 0
					}
				}
				// DMA w_ij (stored fully padded in FRAM).
				d.DMAFromFRAM(k, device.CatDMA)
				copy(e.wStage[:k], wRaw[(i*q+j)*k:(i*q+j+1)*k])

				// COMPLEX packing then the two forward transforms.
				d.CPUOps(2 * k)
				fftfixed.ToComplex(cx, e.xStage[:k])
				fftfixed.ToComplex(cw, e.wStage[:k])
				d.LEAFFT(k)
				fftfixed.FFT(cx)
				d.LEAFFT(k)
				fftfixed.FFT(cw)

				// Element-wise multiply on the LEA, then the calibrated
				// block-domain scale-up (keeps the IFFT in the high bits).
				d.LEACMul(k)
				fftfixed.MulComplexVec(cy, cw, cx)
				if l.BShift > 0 {
					d.LEAAdd(k)
					fftfixed.ShlVec(cy, uint(l.BShift))
				}
			case flex.StatePostMPY:
				// Resume at the IFFT: reload the product spectrum.
				d.CPUOps(4)
				e.fx.LoadInter(d, cy)
			}

			if midState != flex.StatePostIFFT {
				e.boundary(d, blockPos+1, func() flex.Snapshot {
					return flex.Snapshot{Layer: li, State: flex.StatePostMPY,
						I: i, J: j, Pos: blockPos + 1, Acc: acc, Inter: cy}
				})
				// Inverse transform and REAL extraction.
				d.LEAFFT(k)
				fftfixed.IFFT(cy)
				d.CPUOps(k)
				fftfixed.Real(conv, cy)
			} else {
				// Resume after the IFFT: the real vector was committed
				// in the intermediate's Re lanes.
				d.CPUOps(4)
				e.fx.LoadInter(d, cy)
				fftfixed.Real(conv, cy)
			}

			e.boundary(d, blockPos+2, func() flex.Snapshot {
				inter := make([]fftfixed.Complex, k)
				fftfixed.ToComplex(inter, conv)
				return flex.Snapshot{Layer: li, State: flex.StatePostIFFT,
					I: i, J: j, Pos: blockPos + 2, Acc: acc, Inter: inter}
			})
			// Accumulate on the LEA.
			d.LEAAdd(k)
			fixed.AddVec(acc, acc, conv)
		}
		// Row epilogue: combined scale-up, bias, and DMA to FRAM.
		rowLen := k
		if r := s.Out - i*k; r < rowLen {
			rowLen = r
		}
		d.CPUOps(2 * rowLen)
		for t := 0; t < rowLen; t++ {
			conv[t] = fixed.SatAdd(fixed.ShiftQ15(acc[t], shift), bias[i*k+t])
		}
		out.StoreDMA(d, device.CatFRAMWrite, i*k, conv[:rowLen])
	}
}
