// Package baseline implements BASE, the paper's non-intermittent
// reference runtime: LEA/DMA-accelerated inference like TAILS, but
// with no checkpointing of any kind — all progress lives in volatile
// registers and SRAM. Under continuous power BASE is the fastest
// baseline (it pays no commit tax, which is why the paper's Fig. 7(a)
// shows BASE below TAILS); under intermittent power it restarts from
// scratch every boot and, whenever one inference needs more energy
// than one capacitor charge, never completes (the "X" of Fig. 7(b)).
//
// BASE predates RAD's accelerator-aware training, so its BCM layers
// use the time-domain FIR discipline, not Algorithm 1.
package baseline

import (
	"fmt"

	"ehdl/internal/device"
	"ehdl/internal/exec"
	"ehdl/internal/fixed"
	"ehdl/internal/quant"
)

// maxVec is the largest vector staged for the LEA at once.
const maxVec = 1024

// controlOpsPerElement is the per-element loop/control overhead.
const controlOpsPerElement = 8

// Engine is the BASE runtime for one inference.
type Engine struct {
	d     *device.Device
	store *exec.ModelStore

	in   *device.NVQ15
	acts []*device.NVQ15 // one FRAM buffer per layer output (Fig. 5's naive layout)

	xBuf   []fixed.Q15
	wBuf   []fixed.Q15
	accBuf []fixed.Q31

	windowOffs map[int][]int
}

// New builds a BASE engine over an already-flashed model store and an
// input vector (written to FRAM as the sensor would have left it).
func New(d *device.Device, store *exec.ModelStore, input []fixed.Q15) (*Engine, error) {
	m := store.Model
	if got, want := len(input), m.InShape[0]*m.InShape[1]*m.InShape[2]; got != want {
		return nil, fmt.Errorf("baseline: input length %d, want %d", got, want)
	}
	e := &Engine{d: d, store: store, windowOffs: map[int][]int{}}
	in, err := device.NewNVQ15(d, len(input))
	if err != nil {
		return nil, err
	}
	copy(in.Raw(), input)
	e.in = in

	vecLen, maxK := 0, 0
	for li := range m.Layers {
		l := &m.Layers[li]
		buf, err := device.NewNVQ15(d, quant.LayerOutLen(l.Spec))
		if err != nil {
			return nil, err
		}
		e.acts = append(e.acts, buf)
		switch l.Spec.Kind {
		case "conv":
			e.windowOffs[li] = exec.WindowOffsets(l)
			if n := exec.KernelLen(l); n > vecLen {
				vecLen = n
			}
		case "dense":
			n := l.Spec.In
			if n > maxVec {
				n = maxVec
			}
			if n > vecLen {
				vecLen = n
			}
		case "bcm":
			if l.Spec.K > vecLen {
				vecLen = l.Spec.K
			}
			if l.Spec.K > maxK {
				maxK = l.Spec.K
			}
		}
	}
	if e.xBuf, err = device.AllocQ15(d, vecLen); err != nil {
		return nil, err
	}
	if e.wBuf, err = device.AllocQ15(d, vecLen); err != nil {
		return nil, err
	}
	if maxK > 0 {
		if e.accBuf, err = device.AllocQ31(d, maxK); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// EngineName implements exec.Engine.
func (e *Engine) EngineName() string { return "base" }

// Progress implements intermittent.ProgressReporter: BASE never makes
// persistent progress, so the runner's stagnation detector can call
// the DNF quickly.
func (e *Engine) Progress() uint64 { return 0 }

// Output implements exec.Engine.
func (e *Engine) Output() []fixed.Q15 {
	last := e.acts[len(e.acts)-1]
	return append([]fixed.Q15(nil), last.Raw()...)
}

// Boot implements intermittent.Program: one full inference from
// scratch. BASE holds no persistent progress, so a power failure
// throws everything away.
func (e *Engine) Boot(d *device.Device) error {
	m := e.store.Model
	in := e.in
	for li := range m.Layers {
		l := &m.Layers[li]
		out := e.acts[li]
		switch l.Spec.Kind {
		case "conv":
			e.conv(d, li, l, in, out)
		case "pool":
			e.pool(d, l, in, out)
		case "relu":
			e.relu(d, l, in, out)
		case "flatten":
			e.copyThrough(d, in, out)
		case "dense":
			e.dense(d, li, l, in, out)
		case "bcm":
			e.bcmFIR(d, li, l, in, out)
		default:
			return fmt.Errorf("baseline: unsupported layer kind %q", l.Spec.Kind)
		}
		in = out
	}
	return nil
}

// conv stages window and weights per output element and runs one LEA
// MAC (no cross-filter sharing: that is ACE's dataflow contribution).
func (e *Engine) conv(d *device.Device, li int, l *quant.QLayer, in, out *device.NVQ15) {
	s := l.Spec
	oh := s.InH - s.KH + 1
	ow := s.InW - s.KW + 1
	offs := e.windowOffs[li]
	win := len(offs)
	shift := l.AccShift()
	wRaw := e.store.W[li].Raw()
	bRaw := e.store.B[li].Raw()
	xRaw := in.Raw()
	for oc := 0; oc < s.OutC; oc++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				d.CPUOps(controlOpsPerElement)
				origin := oy*s.InW + ox
				i := 0
				for i < win {
					j := i + 1
					for j < win && offs[j] == offs[j-1]+1 {
						j++
					}
					d.DMAFromFRAM(j-i, device.CatDMA)
					for k := i; k < j; k++ {
						e.xBuf[k] = xRaw[origin+offs[k]]
					}
					i = j
				}
				d.DMAFromFRAM(win, device.CatDMA)
				copy(e.wBuf[:win], wRaw[oc*win:(oc+1)*win])
				d.LEAMAC(win)
				acc := fixed.Dot(e.wBuf[:win], e.xBuf[:win])
				d.FRAMRead(1, device.CatFRAMRead)
				v := fixed.SatAdd(fixed.NarrowQ31(acc, shift), bRaw[oc])
				out.StoreOne(d, device.CatFRAMWrite, (oc*oh+oy)*ow+ox, v)
			}
		}
	}
}

func (e *Engine) pool(d *device.Device, l *quant.QLayer, in, out *device.NVQ15) {
	s := l.Spec
	oh := s.InH / s.PoolSize
	ow := s.InW / s.PoolSize
	xRaw := in.Raw()
	for c := 0; c < s.InC; c++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				n := s.PoolSize * s.PoolSize
				d.FRAMRead(n, device.CatFRAMRead)
				d.CPUOps(n + controlOpsPerElement)
				best := fixed.MinusOne
				for dy := 0; dy < s.PoolSize; dy++ {
					for dx := 0; dx < s.PoolSize; dx++ {
						v := xRaw[c*s.InH*s.InW+(oy*s.PoolSize+dy)*s.InW+ox*s.PoolSize+dx]
						if v > best {
							best = v
						}
					}
				}
				out.StoreOne(d, device.CatFRAMWrite, (c*oh+oy)*ow+ox, best)
			}
		}
	}
}

func (e *Engine) relu(d *device.Device, l *quant.QLayer, in, out *device.NVQ15) {
	xRaw := in.Raw()
	for i := 0; i < l.Spec.N; i++ {
		d.FRAMRead(1, device.CatFRAMRead)
		d.CPUOps(2)
		v := xRaw[i]
		if v < 0 {
			v = 0
		}
		out.StoreOne(d, device.CatFRAMWrite, i, v)
	}
}

func (e *Engine) copyThrough(d *device.Device, in, out *device.NVQ15) {
	n := in.Len()
	for start := 0; start < n; start += maxVec {
		end := start + maxVec
		if end > n {
			end = n
		}
		d.DMAFromFRAM(end-start, device.CatDMA)
		d.DMAToFRAM(end-start, device.CatDMA)
		copy(out.Raw()[start:end], in.Raw()[start:end])
	}
}

func (e *Engine) dense(d *device.Device, li int, l *quant.QLayer, in, out *device.NVQ15) {
	s := l.Spec
	shift := l.AccShift()
	wRaw := e.store.W[li].Raw()
	bRaw := e.store.B[li].Raw()
	xRaw := in.Raw()
	for r := 0; r < s.Out; r++ {
		d.CPUOps(controlOpsPerElement)
		var acc fixed.Q31
		for start := 0; start < s.In; start += maxVec {
			end := start + maxVec
			if end > s.In {
				end = s.In
			}
			n := end - start
			d.DMAFromFRAM(n, device.CatDMA)
			copy(e.xBuf[:n], xRaw[start:end])
			d.DMAFromFRAM(n, device.CatDMA)
			copy(e.wBuf[:n], wRaw[r*s.In+start:r*s.In+end])
			d.LEAMAC(n)
			for k := 0; k < n; k++ {
				acc = fixed.MAC(acc, e.wBuf[k], e.xBuf[k])
			}
		}
		d.FRAMRead(1, device.CatFRAMRead)
		v := fixed.SatAdd(fixed.NarrowQ31(acc, shift), bRaw[r])
		out.StoreOne(d, device.CatFRAMWrite, r, v)
	}
}

// bcmFIR computes a BCM layer block row by block row with the LEA's
// FIR command and circular addressing — identical arithmetic to the
// TAILS path, minus any checkpoint traffic.
func (e *Engine) bcmFIR(d *device.Device, li int, l *quant.QLayer, in, out *device.NVQ15) {
	s := l.Spec
	k := s.K
	p := (s.Out + k - 1) / k
	q := (s.In + k - 1) / k
	wRaw := e.store.W[li].Raw()
	bRaw := e.store.B[li].Raw()
	xRaw := in.Raw()
	scale := fixed.One
	if l.CosNorm {
		d.LEAMAC(s.In)
		d.CPUOps(60)
		scale = quant.InputScale(xRaw[:s.In], l.SIn)
	}
	for i := 0; i < p; i++ {
		d.CPUOps(controlOpsPerElement)
		acc := e.accBuf[:k]
		for t := range acc {
			acc[t] = 0
		}
		d.SRAMAccess(k)
		for j := 0; j < q; j++ {
			w := wRaw[(i*q+j)*k : (i*q+j+1)*k]
			lim := s.In - j*k
			if lim > k {
				lim = k
			}
			d.DMAFromFRAM(k, device.CatDMA)
			copy(e.wBuf[:k], w)
			d.DMAFromFRAM(lim, device.CatDMA)
			copy(e.xBuf[:lim], xRaw[j*k:j*k+lim])
			if l.CosNorm {
				d.LEAMAC(lim)
				fixed.ScaleVec(e.xBuf[:lim], e.xBuf[:lim], scale)
			}
			d.LEAMAC(k * lim)
			for r := 0; r < k; r++ {
				a := acc[r]
				for c := 0; c < lim; c++ {
					a = fixed.MAC(a, e.wBuf[(r-c+k)%k], e.xBuf[c])
				}
				acc[r] = a
			}
		}
		rowLen := k
		if rem := s.Out - i*k; rem < rowLen {
			rowLen = rem
		}
		d.FRAMRead(rowLen, device.CatFRAMRead)
		d.CPUOps(2 * rowLen)
		for r := 0; r < rowLen; r++ {
			e.wBuf[r] = fixed.SatAdd(fixed.NarrowQ31(acc[r], l.AccShift()), bRaw[i*k+r])
		}
		out.StoreDMA(d, device.CatFRAMWrite, i*k, e.wBuf[:rowLen])
	}
}
