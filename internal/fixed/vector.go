package fixed

// This file provides the slice-level helpers shared by the LEA model
// and the software kernels: bulk conversion, dot products, and the
// overflow bookkeeping that ACE's overflow-aware computation needs.

// FromFloats converts a float64 slice to a freshly allocated Q15 slice.
func FromFloats(fs []float64) []Q15 {
	qs := make([]Q15, len(fs))
	for i, f := range fs {
		qs[i] = FromFloat(f)
	}
	return qs
}

// FromFloatsInto converts fs into the preallocated Q15 slice dst —
// the allocation-free form of FromFloats used by reusable-buffer hot
// paths. The lengths must match.
func FromFloatsInto(dst []Q15, fs []float64) {
	if len(dst) != len(fs) {
		panic("fixed: FromFloatsInto length mismatch")
	}
	for i, f := range fs {
		dst[i] = FromFloat(f)
	}
}

// Floats converts a Q15 slice to a freshly allocated float64 slice.
func Floats(qs []Q15) []float64 {
	fs := make([]float64, len(qs))
	for i, q := range qs {
		fs[i] = q.Float()
	}
	return fs
}

// Dot computes the saturating Q31 dot product of a and b. It panics if
// the lengths differ, because a silent short dot product is always a
// caller bug.
func Dot(a, b []Q15) Q31 {
	if len(a) != len(b) {
		panic("fixed: Dot length mismatch")
	}
	var acc Q31
	for i := range a {
		acc = MAC(acc, a[i], b[i])
	}
	return acc
}

// AddVec stores a[i]+b[i] into dst with saturation. The three slices
// must have equal length; dst may alias a or b.
func AddVec(dst, a, b []Q15) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("fixed: AddVec length mismatch")
	}
	for i := range a {
		dst[i] = SatAdd(a[i], b[i])
	}
}

// MulVec stores a[i]*b[i] into dst with rounding and saturation.
func MulVec(dst, a, b []Q15) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("fixed: MulVec length mismatch")
	}
	for i := range a {
		dst[i] = Mul(a[i], b[i])
	}
}

// ScaleVec stores a[i]*c into dst with rounding and saturation.
func ScaleVec(dst, a []Q15, c Q15) {
	if len(dst) != len(a) {
		panic("fixed: ScaleVec length mismatch")
	}
	for i := range a {
		dst[i] = Mul(a[i], c)
	}
}

// ShrVec stores a[i]>>n into dst with rounding. This is the SCALE-DOWN
// procedure of Algorithm 1 when the scale factor is a power of two.
func ShrVec(dst, a []Q15, n uint) {
	if len(dst) != len(a) {
		panic("fixed: ShrVec length mismatch")
	}
	for i := range a {
		dst[i] = Shr(a[i], n)
	}
}

// ShlVec stores a[i]<<n into dst with saturation. This is the SCALE-UP
// procedure of Algorithm 1 when the scale factor is a power of two.
func ShlVec(dst, a []Q15, n uint) {
	if len(dst) != len(a) {
		panic("fixed: ShlVec length mismatch")
	}
	for i := range a {
		dst[i] = Shl(a[i], n)
	}
}

// MaxAbs returns the largest |a[i]| as a non-negative int32 in Q15
// units (so MinusOne reports 32768). It is the measurement ACE's
// calibration uses to pick scale factors.
func MaxAbs(a []Q15) int32 {
	var m int32
	for _, q := range a {
		v := int32(q)
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// WouldOverflowSum reports whether summing the absolute values of a
// could exceed the Q15 range — the exact condition §III-B gives for FFT
// input scaling ("the FFT will produce wrong results if the addition of
// the input array elements exceeds the capacity of the quantized bit").
func WouldOverflowSum(a []Q15) bool {
	var sum int64
	for _, q := range a {
		v := int64(q)
		if v < 0 {
			v = -v
		}
		sum += v
	}
	return sum > int64(One)
}

// Log2Ceil returns ceil(log2(n)) for n >= 1. It is used to size FFT
// stages and power-of-two scale factors.
func Log2Ceil(n int) uint {
	if n <= 1 {
		return 0
	}
	k := uint(0)
	for v := n - 1; v > 0; v >>= 1 {
		k++
	}
	return k
}
