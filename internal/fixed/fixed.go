// Package fixed implements Q1.15 ("Q15") fixed-point arithmetic, the
// native numeric format of the MSP430 Low-Energy Accelerator and the
// format RAD quantizes models into.
//
// A Q15 value is a signed 16-bit integer interpreted as value/2^15, so
// the representable range is [-1, 1-2^-15]. All operations saturate
// rather than wrap: on a tiny MCU a wrapped accumulator silently
// corrupts an inference, whereas saturation merely clips, which is the
// behaviour the LEA hardware provides and the paper's overflow-aware
// computation (§III-B) relies on.
package fixed

import "math"

// FracBits is the number of fractional bits in a Q15 value.
const FracBits = 15

// One is the Q15 value closest to +1.0 (1 - 2^-15).
const One = Q15(math.MaxInt16)

// MinusOne is the Q15 value -1.0 exactly.
const MinusOne = Q15(math.MinInt16)

// scale is the implicit denominator of a Q15 value.
const scale = 1 << FracBits

// Q15 is a signed fixed-point number with 1 sign bit and 15 fractional
// bits. The zero value represents 0.0 and is ready to use.
type Q15 int16

// Q31 is a signed fixed-point accumulator with 1 sign bit, 1 integer
// bit and 30 fractional bits: the product of two Q15 values is exactly
// representable in Q31, which is why the LEA's MAC unit accumulates in
// 32 bits.
type Q31 int32

// FromFloat converts a float64 to Q15, rounding to nearest and
// saturating to the representable range.
func FromFloat(f float64) Q15 {
	r := math.RoundToEven(f * scale)
	switch {
	case r >= math.MaxInt16:
		return One
	case r <= math.MinInt16:
		return MinusOne
	}
	return Q15(r)
}

// Float converts q back to float64.
func (q Q15) Float() float64 { return float64(q) / scale }

// Float converts the Q31 accumulator back to float64.
func (a Q31) Float() float64 { return float64(a) / (1 << 30) }

// SatAdd returns a+b with saturation.
func SatAdd(a, b Q15) Q15 {
	s := int32(a) + int32(b)
	return sat16(s)
}

// SatSub returns a-b with saturation.
func SatSub(a, b Q15) Q15 {
	s := int32(a) - int32(b)
	return sat16(s)
}

// Mul returns the Q15 product a*b, rounded to nearest with the
// conventional 0.5 ulp rounding bias addition used by DSP hardware.
func Mul(a, b Q15) Q15 {
	p := int32(a) * int32(b) // Q30
	p += 1 << (FracBits - 1) // round half up
	return sat16(p >> FracBits)
}

// MulQ31 returns the exact Q30-scaled product of a and b widened into a
// Q31 accumulator (no rounding, no saturation: the product of two int16
// always fits in int32 except for MinusOne*MinusOne, which saturates).
func MulQ31(a, b Q15) Q31 {
	p := int64(a) * int64(b)
	if p > math.MaxInt32 {
		return math.MaxInt32
	}
	return Q31(p)
}

// MAC performs acc + a*b in the Q31 accumulator domain with saturation,
// mirroring the LEA's multiply-accumulate primitive.
func MAC(acc Q31, a, b Q15) Q31 {
	s := int64(acc) + int64(a)*int64(b)
	return sat32(s)
}

// SatAddQ31 returns a+b in the accumulator domain with saturation.
func SatAddQ31(a, b Q31) Q31 {
	return sat32(int64(a) + int64(b))
}

// ToQ15 narrows a Q31 accumulator (Q2.30) back to Q15 with rounding and
// saturation. This is the "store accumulator" step of a MAC loop.
func (a Q31) ToQ15() Q15 {
	s := int64(a) + 1<<(FracBits-1)
	return sat16n(s >> FracBits)
}

// NarrowQ31 converts a Q31 accumulator to Q15 after dividing the real
// value by 2^rshift (rshift may be negative: multiply). Rounds to
// nearest, saturates. This is the "store accumulator with output
// scaling" step every quantized layer ends with.
func NarrowQ31(a Q31, rshift int) Q15 {
	shift := FracBits + rshift // Q30 -> Q15 base shift plus scaling
	v := int64(a)
	switch {
	case shift > 0:
		if shift > 62 {
			return 0
		}
		v += 1 << (shift - 1)
		v >>= uint(shift)
	case shift < 0:
		if -shift > 30 {
			// Saturate any nonzero value.
			if v > 0 {
				return One
			}
			if v < 0 {
				return MinusOne
			}
			return 0
		}
		v <<= uint(-shift)
	}
	return sat16n(v)
}

// ShiftQ15 returns q scaled by 2^-n with a signed shift count
// (negative n scales up), rounding and saturating.
func ShiftQ15(q Q15, n int) Q15 {
	if n >= 0 {
		return Shr(q, uint(n))
	}
	return Shl(q, uint(-n))
}

// Shr returns q >> n with rounding toward nearest. Shifting is how the
// fixed-point FFT applies its per-stage scale-down.
func Shr(q Q15, n uint) Q15 {
	if n == 0 {
		return q
	}
	if n > 15 {
		return 0
	}
	v := int32(q) + 1<<(n-1)
	return sat16(v >> n)
}

// Shl returns q << n with saturation.
func Shl(q Q15, n uint) Q15 {
	if n > 15 {
		if q > 0 {
			return One
		}
		if q < 0 {
			return MinusOne
		}
		return 0
	}
	return sat16(int32(q) << n)
}

// Abs returns |q| with saturation (|MinusOne| clips to One).
func Abs(q Q15) Q15 {
	if q >= 0 {
		return q
	}
	if q == MinusOne {
		return One
	}
	return -q
}

// Neg returns -q with saturation (-MinusOne clips to One).
func Neg(q Q15) Q15 {
	if q == MinusOne {
		return One
	}
	return -q
}

func sat16(v int32) Q15 {
	switch {
	case v > math.MaxInt16:
		return One
	case v < math.MinInt16:
		return MinusOne
	}
	return Q15(v)
}

func sat16n(v int64) Q15 {
	switch {
	case v > math.MaxInt16:
		return One
	case v < math.MinInt16:
		return MinusOne
	}
	return Q15(v)
}

func sat32(v int64) Q31 {
	switch {
	case v > math.MaxInt32:
		return math.MaxInt32
	case v < math.MinInt32:
		return math.MinInt32
	}
	return Q31(v)
}
