package fixed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromFloatExactValues(t *testing.T) {
	cases := []struct {
		f    float64
		want Q15
	}{
		{0, 0},
		{0.5, 1 << 14},
		{-0.5, -(1 << 14)},
		{-1, MinusOne},
		{1, One},       // +1 saturates to 1-2^-15
		{2, One},       // out of range high
		{-2, MinusOne}, // out of range low
		{1.0 / 32768, 1},
		{-1.0 / 32768, -1},
	}
	for _, c := range cases {
		if got := FromFloat(c.f); got != c.want {
			t.Errorf("FromFloat(%v) = %d, want %d", c.f, got, c.want)
		}
	}
}

func TestFloatRoundTrip(t *testing.T) {
	for i := math.MinInt16; i <= math.MaxInt16; i += 37 {
		q := Q15(i)
		if got := FromFloat(q.Float()); got != q {
			t.Fatalf("round trip failed for %d: got %d", q, got)
		}
	}
}

func TestSatAddSaturates(t *testing.T) {
	if got := SatAdd(One, One); got != One {
		t.Errorf("One+One = %d, want saturation to One", got)
	}
	if got := SatAdd(MinusOne, MinusOne); got != MinusOne {
		t.Errorf("MinusOne+MinusOne = %d, want saturation to MinusOne", got)
	}
	if got := SatAdd(Q15(100), Q15(-100)); got != 0 {
		t.Errorf("100 + -100 = %d, want 0", got)
	}
}

func TestSatSubSaturates(t *testing.T) {
	if got := SatSub(One, MinusOne); got != One {
		t.Errorf("One-MinusOne = %d, want One", got)
	}
	if got := SatSub(MinusOne, One); got != MinusOne {
		t.Errorf("MinusOne-One = %d, want MinusOne", got)
	}
}

func TestMulBasic(t *testing.T) {
	half := FromFloat(0.5)
	quarter := FromFloat(0.25)
	if got := Mul(half, half); got != quarter {
		t.Errorf("0.5*0.5 = %v, want %v", got.Float(), quarter.Float())
	}
	if got := Mul(MinusOne, MinusOne); got != One {
		// (-1)*(-1) = +1 which saturates to One.
		t.Errorf("(-1)*(-1) = %d, want One", got)
	}
	if got := Mul(0, One); got != 0 {
		t.Errorf("0*One = %d, want 0", got)
	}
}

func TestMulMatchesFloatWithinULP(t *testing.T) {
	err := quick.Check(func(a, b int16) bool {
		qa, qb := Q15(a), Q15(b)
		got := Mul(qa, qb).Float()
		want := qa.Float() * qb.Float()
		return math.Abs(got-want) <= 1.0/scale
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestSatAddMatchesClampedFloat(t *testing.T) {
	err := quick.Check(func(a, b int16) bool {
		qa, qb := Q15(a), Q15(b)
		got := SatAdd(qa, qb).Float()
		want := qa.Float() + qb.Float()
		if want > One.Float() {
			want = One.Float()
		}
		if want < -1 {
			want = -1
		}
		return math.Abs(got-want) <= 1.0/scale
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestSatAddCommutative(t *testing.T) {
	err := quick.Check(func(a, b int16) bool {
		return SatAdd(Q15(a), Q15(b)) == SatAdd(Q15(b), Q15(a))
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestMulCommutative(t *testing.T) {
	err := quick.Check(func(a, b int16) bool {
		return Mul(Q15(a), Q15(b)) == Mul(Q15(b), Q15(a))
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestMACAccumulates(t *testing.T) {
	var acc Q31
	half := FromFloat(0.5)
	for i := 0; i < 4; i++ {
		acc = MAC(acc, half, half)
	}
	if got := acc.Float(); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("4 * 0.25 accumulated = %v, want 1.0", got)
	}
}

func TestMACSaturatesAtInt32(t *testing.T) {
	acc := Q31(math.MaxInt32)
	if got := MAC(acc, One, One); got != math.MaxInt32 {
		t.Errorf("saturated MAC = %d, want MaxInt32", got)
	}
	acc = Q31(math.MinInt32)
	if got := MAC(acc, MinusOne, One); got != math.MinInt32 {
		t.Errorf("saturated MAC = %d, want MinInt32", got)
	}
}

func TestToQ15Rounds(t *testing.T) {
	// 0.5 in the Q30 accumulator domain.
	acc := Q31(1 << 29)
	if got := acc.ToQ15(); got != FromFloat(0.5) {
		t.Errorf("ToQ15(0.5) = %v", got.Float())
	}
	// A huge accumulator saturates.
	if got := Q31(math.MaxInt32).ToQ15(); got != One {
		t.Errorf("ToQ15(max) = %d, want One", got)
	}
	if got := Q31(math.MinInt32).ToQ15(); got != MinusOne {
		t.Errorf("ToQ15(min) = %d, want MinusOne", got)
	}
}

func TestShrShl(t *testing.T) {
	q := FromFloat(0.5)
	if got := Shr(q, 1); got != FromFloat(0.25) {
		t.Errorf("Shr(0.5,1) = %v", got.Float())
	}
	if got := Shl(FromFloat(0.25), 1); got != FromFloat(0.5) {
		t.Errorf("Shl(0.25,1) = %v", got.Float())
	}
	if got := Shl(FromFloat(0.75), 2); got != One {
		t.Errorf("Shl overflow = %d, want One", got)
	}
	if got := Shr(q, 20); got != 0 {
		t.Errorf("Shr(q,20) = %d, want 0", got)
	}
	if got := Shl(q, 20); got != One {
		t.Errorf("Shl(q,20) = %d, want One", got)
	}
	if got := Shl(Neg(q), 20); got != MinusOne {
		t.Errorf("Shl(-q,20) = %d, want MinusOne", got)
	}
	if got := Shl(0, 20); got != 0 {
		t.Errorf("Shl(0,20) = %d, want 0", got)
	}
}

func TestShrRoundTripUpToPrecision(t *testing.T) {
	err := quick.Check(func(a int16) bool {
		q := Q15(a)
		// Shifting down then up loses at most 2^n-1 plus rounding.
		down := Shr(q, 3)
		up := Shl(down, 3)
		return math.Abs(up.Float()-q.Float()) <= 8.0/scale
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestAbsNeg(t *testing.T) {
	if got := Abs(MinusOne); got != One {
		t.Errorf("Abs(MinusOne) = %d, want One", got)
	}
	if got := Abs(Q15(-5)); got != 5 {
		t.Errorf("Abs(-5) = %d", got)
	}
	if got := Neg(MinusOne); got != One {
		t.Errorf("Neg(MinusOne) = %d, want One", got)
	}
	if got := Neg(Q15(7)); got != -7 {
		t.Errorf("Neg(7) = %d", got)
	}
}

func TestDotMatchesFloat(t *testing.T) {
	a := FromFloats([]float64{0.5, -0.25, 0.125, 0.75})
	b := FromFloats([]float64{0.5, 0.5, -0.5, 0.25})
	want := 0.5*0.5 + -0.25*0.5 + 0.125*-0.5 + 0.75*0.25
	got := Dot(a, b).Float()
	if math.Abs(got-want) > 1e-3 {
		t.Errorf("Dot = %v, want %v", got, want)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	Dot(make([]Q15, 3), make([]Q15, 4))
}

func TestVectorOps(t *testing.T) {
	a := FromFloats([]float64{0.5, -0.5, 0.25})
	b := FromFloats([]float64{0.25, 0.25, 0.25})
	dst := make([]Q15, 3)

	AddVec(dst, a, b)
	wantAdd := []float64{0.75, -0.25, 0.5}
	for i := range dst {
		if math.Abs(dst[i].Float()-wantAdd[i]) > 1e-3 {
			t.Errorf("AddVec[%d] = %v, want %v", i, dst[i].Float(), wantAdd[i])
		}
	}

	MulVec(dst, a, b)
	wantMul := []float64{0.125, -0.125, 0.0625}
	for i := range dst {
		if math.Abs(dst[i].Float()-wantMul[i]) > 1e-3 {
			t.Errorf("MulVec[%d] = %v, want %v", i, dst[i].Float(), wantMul[i])
		}
	}

	ScaleVec(dst, a, FromFloat(0.5))
	wantScale := []float64{0.25, -0.25, 0.125}
	for i := range dst {
		if math.Abs(dst[i].Float()-wantScale[i]) > 1e-3 {
			t.Errorf("ScaleVec[%d] = %v, want %v", i, dst[i].Float(), wantScale[i])
		}
	}
}

func TestVecOpsAliasSafe(t *testing.T) {
	a := FromFloats([]float64{0.5, -0.5, 0.25})
	b := FromFloats([]float64{0.25, 0.25, 0.25})
	AddVec(a, a, b) // dst aliases a
	want := []float64{0.75, -0.25, 0.5}
	for i := range a {
		if math.Abs(a[i].Float()-want[i]) > 1e-3 {
			t.Errorf("aliased AddVec[%d] = %v, want %v", i, a[i].Float(), want[i])
		}
	}
}

func TestShrShlVec(t *testing.T) {
	a := FromFloats([]float64{0.5, -0.5})
	dst := make([]Q15, 2)
	ShrVec(dst, a, 1)
	if math.Abs(dst[0].Float()-0.25) > 1e-3 || math.Abs(dst[1].Float()+0.25) > 1e-3 {
		t.Errorf("ShrVec = %v", Floats(dst))
	}
	ShlVec(dst, dst, 1)
	if math.Abs(dst[0].Float()-0.5) > 1e-3 || math.Abs(dst[1].Float()+0.5) > 1e-3 {
		t.Errorf("ShlVec = %v", Floats(dst))
	}
}

func TestMaxAbs(t *testing.T) {
	a := []Q15{5, -7, 3}
	if got := MaxAbs(a); got != 7 {
		t.Errorf("MaxAbs = %d, want 7", got)
	}
	if got := MaxAbs([]Q15{MinusOne}); got != 32768 {
		t.Errorf("MaxAbs(MinusOne) = %d, want 32768", got)
	}
	if got := MaxAbs(nil); got != 0 {
		t.Errorf("MaxAbs(nil) = %d, want 0", got)
	}
}

func TestWouldOverflowSum(t *testing.T) {
	small := FromFloats([]float64{0.1, 0.2, 0.3})
	if WouldOverflowSum(small) {
		t.Error("sum 0.6 flagged as overflow")
	}
	big := FromFloats([]float64{0.9, 0.9})
	if !WouldOverflowSum(big) {
		t.Error("sum 1.8 not flagged as overflow")
	}
	neg := FromFloats([]float64{-0.9, -0.9})
	if !WouldOverflowSum(neg) {
		t.Error("absolute sum must flag negative-heavy vectors too")
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]uint{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := Log2Ceil(n); got != want {
			t.Errorf("Log2Ceil(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestFromFloatsFloats(t *testing.T) {
	fs := []float64{0.5, -0.25, 0}
	qs := FromFloats(fs)
	back := Floats(qs)
	for i := range fs {
		if math.Abs(back[i]-fs[i]) > 1.0/scale {
			t.Errorf("round trip [%d]: %v vs %v", i, back[i], fs[i])
		}
	}
}
