package fleetd

// Shared fixtures for the fleetd suites: a scenario bundle (model
// artifact + harvest trace + document), a frozen clock so reports and
// progress events carry no wall-clock bytes, an httptest harness over
// Server.Handler, and a reference runner that drives the exact
// library path cmd/ehfleet uses — the daemon's output must match it
// byte for byte.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ehdl/internal/cli"
	"ehdl/internal/fleet"
	"ehdl/internal/fleet/memo"
	"ehdl/internal/nn"
	"ehdl/internal/quant"
)

// frozenClock never advances: host-seconds render as 0.00 on every
// side of a comparison, so reports can be compared byte for byte.
type frozenClock struct{}

func (frozenClock) Now() time.Time { return time.Unix(1_700_000_000, 0) }

// testModel quantizes a randomly initialized model with the MNIST
// input geometry and name, so cli.DatasetFor resolves it.
func testModel(t *testing.T, seed int64) *quant.Model {
	t.Helper()
	arch := &nn.Arch{
		Name: "mnist", InShape: [3]int{1, 28, 28}, NumClasses: 10,
		Specs: []nn.LayerSpec{
			{Kind: "conv", InC: 1, InH: 28, InW: 28, OutC: 2, KH: 5, KW: 5},
			{Kind: "pool", InC: 2, InH: 24, InW: 24, PoolSize: 2},
			{Kind: "relu", N: 2 * 12 * 12},
			{Kind: "flatten", N: 288},
			{Kind: "bcm", In: 288, Out: 32, K: 16, WeightNorm: true},
			{Kind: "relu", N: 32},
			{Kind: "dense", In: 32, Out: 10},
		},
	}
	rng := rand.New(rand.NewSource(seed))
	net := arch.Build(rng)
	calib := make([][]float64, 4)
	for i := range calib {
		x := make([]float64, arch.InLen())
		for j := range x {
			x[j] = rng.Float64()*2 - 1
		}
		calib[i] = x
	}
	m, err := quant.Quantize(net, arch, calib)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// scenarioDoc is the heterogeneous test scenario; relative paths
// resolve against the fixture dir the server gets as BaseDir.
const scenarioDoc = `{
  "defaults": { "model": "mnist.gob", "engine": "ace+flex" },
  "devices": [
    { "name": "bench", "count": 2, "jitter": 0.3 },
    { "name": "window", "engine": "tails", "cap_f": 220e-6,
      "profile": { "kind": "sine", "power_w": 6e-3, "period_s": 0.2 } },
    { "name": "solar", "cap_f": 150e-6, "sample": 5,
      "profile": { "kind": "trace", "trace": "solar.csv", "repeat": true } }
  ]
}`

// writeFixtures lays out the model artifact and trace the scenario
// references, returning the directory (the server's BaseDir).
func writeFixtures(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if err := cli.SaveModel(filepath.Join(dir, "mnist.gob"), testModel(t, 9)); err != nil {
		t.Fatal(err)
	}
	trace := "0,0.004\n0.05,0.006\n0.1,0.005\n"
	if err := os.WriteFile(filepath.Join(dir, "solar.csv"), []byte(trace), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// startServer builds a Server over dir and serves its Handler. The
// clock defaults to frozen so nothing in the output bytes depends on
// the host. Cleanup closes the listener, then drains.
func startServer(t *testing.T, dir string, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Dir = dir
	if cfg.Clock == nil {
		cfg.Clock = frozenClock{}
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Drain)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// jobBody builds a POST /v1/jobs envelope around a scenario document.
func jobBody(t *testing.T, scenario string, fields map[string]any) []byte {
	t.Helper()
	m := map[string]any{"scenario": json.RawMessage(scenario)}
	for k, v := range fields {
		m[k] = v
	}
	body, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// apiCall performs one request and returns (status, body).
func apiCall(t *testing.T, ts *httptest.Server, method, path string, body []byte) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// postJob submits a job and decodes the accepted status.
func postJob(t *testing.T, ts *httptest.Server, body []byte) JobStatus {
	t.Helper()
	status, data := apiCall(t, ts, http.MethodPost, "/v1/jobs", body)
	if status != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: %d %s", status, data)
	}
	var js JobStatus
	if err := json.Unmarshal(data, &js); err != nil {
		t.Fatalf("job status: %v in %s", err, data)
	}
	return js
}

// getStatus fetches a job's status.
func getStatus(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	status, data := apiCall(t, ts, http.MethodGet, "/v1/jobs/"+id, nil)
	if status != http.StatusOK {
		t.Fatalf("GET /v1/jobs/%s: %d %s", id, status, data)
	}
	var js JobStatus
	if err := json.Unmarshal(data, &js); err != nil {
		t.Fatalf("job status: %v in %s", err, data)
	}
	return js
}

// waitTerminal follows a job's event stream to its end and returns
// the final state, verifying every event decodes.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) State {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET events: %d", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	last := State("")
	for {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			if err != io.EOF {
				t.Fatalf("event stream: %v", err)
			}
			break
		}
		switch ev.Type {
		case "state":
			last = ev.State
		case "progress":
			if ev.Progress == nil || ev.Progress.Total <= 0 {
				t.Fatalf("malformed progress event: %+v", ev)
			}
		default:
			t.Fatalf("unknown event type %q", ev.Type)
		}
	}
	if !last.Terminal() {
		t.Fatalf("event stream ended before a terminal state (last %q)", last)
	}
	return last
}

// getRows streams a job's row endpoint to its end (the request stays
// open while the job runs) and returns every byte received.
func getRows(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	status, data := apiCall(t, ts, http.MethodGet, "/v1/jobs/"+id+"/rows", nil)
	if status != http.StatusOK {
		t.Fatalf("GET rows: %d %s", status, data)
	}
	return data
}

// getReport fetches a done job's rendered report.
func getReport(t *testing.T, ts *httptest.Server, id string) string {
	t.Helper()
	status, data := apiCall(t, ts, http.MethodGet, "/v1/jobs/"+id+"/report", nil)
	if status != http.StatusOK {
		t.Fatalf("GET report: %d %s", status, data)
	}
	return string(data)
}

// refOptions shapes a reference run.
type refOptions struct {
	seed      int64
	devices   int // resize (0: declared size)
	workers   int
	chunkSize int
	partition fleet.Partition
	memo      bool
}

// referenceRun drives the scenario through the same library path the
// ehfleet CLI uses — CompileFleetSource + RunStream into an
// NDJSONFile — and returns the row bytes and rendered report the
// daemon must reproduce exactly.
func referenceRun(t *testing.T, baseDir, scenario string, o refOptions) ([]byte, string) {
	t.Helper()
	sf, err := cli.DecodeScenarioFile(bytes.NewReader([]byte(scenario)))
	if err != nil {
		t.Fatal(err)
	}
	src, err := cli.CompileFleetSource(sf, baseDir, o.seed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.devices > 0 {
		src = src.Resize(o.devices)
	}
	pstart, _ := o.partition.Range(src.Len())
	rowsPath := filepath.Join(t.TempDir(), "rows.ndjson")
	sink, err := fleet.NewNDJSONFile(rowsPath, pstart)
	if err != nil {
		t.Fatal(err)
	}
	opts := fleet.StreamOptions{
		Workers:   o.workers,
		ChunkSize: o.chunkSize,
		Partition: o.partition,
		Clock:     frozenClock{},
		Sink:      sink,
	}
	if o.memo {
		opts.Memo = memo.New(0)
	}
	rep, err := fleet.RunStream(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	rows, err := os.ReadFile(rowsPath)
	if err != nil {
		t.Fatal(err)
	}
	return rows, fleet.RenderReport(rep)
}

// waitRows polls a job's status until rows_delivered reaches want,
// failing if the job goes terminal or the deadline passes first.
func waitRows(t *testing.T, ts *httptest.Server, id string, want int) {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	for {
		js := getStatus(t, ts, id)
		if js.RowsDelivered >= want {
			return
		}
		if js.State.Terminal() {
			t.Fatalf("job %s reached %s with %d rows, wanted to observe %d mid-run (grow the fleet)",
				id, js.State, js.RowsDelivered, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck at %d rows, want %d", id, js.RowsDelivered, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// jsonBody is a shorthand for error-payload decoding.
type errBody struct {
	Code  string `json:"code"`
	Error string `json:"error"`
}

func decodeErr(t *testing.T, data []byte) errBody {
	t.Helper()
	var eb errBody
	if err := json.Unmarshal(data, &eb); err != nil {
		t.Fatalf("error body: %v in %s", err, data)
	}
	return eb
}

// fmtJob builds a tiny valid envelope for tests that only need any
// acceptable job.
func fmtJob(t *testing.T, extra string) []byte {
	t.Helper()
	if extra != "" {
		extra = "," + extra
	}
	return []byte(fmt.Sprintf(`{"scenario":%s%s}`, scenarioDoc, extra))
}
