package fleetd

// End-to-end bit-identity: everything the daemon streams back — the
// NDJSON rows and the rendered report — must be byte-identical to the
// one-shot CLI library path over the same scenario and seed, with the
// memo on or off, across a shard split and merge, and across a
// daemon kill mid-job (drain + restart + checkpoint resume).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"testing"

	"ehdl/internal/fleet"
)

func TestJobMatchesCLIRunByteForByte(t *testing.T) {
	for _, memoOn := range []bool{false, true} {
		t.Run(fmt.Sprintf("memo=%t", memoOn), func(t *testing.T) {
			base := writeFixtures(t)
			// workers=1 when memoized: the report's memo counters are
			// scheduling-dependent under concurrency; rows never are.
			workers := 2
			if memoOn {
				workers = 1
			}
			_, ts := startServer(t, t.TempDir(), Config{BaseDir: base, Pool: 2})
			js := postJob(t, ts, jobBody(t, scenarioDoc, map[string]any{
				"seed": 3, "devices": 12, "workers": workers, "memo": memoOn,
			}))

			// Stream rows while the job runs; the request follows the run
			// and ends at its terminal state.
			rows := getRows(t, ts, js.ID)
			if st := waitTerminal(t, ts, js.ID); st != StateDone {
				t.Fatalf("job finished %s, want done", st)
			}
			report := getReport(t, ts, js.ID)

			refRows, refReport := referenceRun(t, base, scenarioDoc, refOptions{
				seed: 3, devices: 12, workers: workers, memo: memoOn,
			})
			if !bytes.Equal(rows, refRows) {
				t.Errorf("daemon rows diverge from the CLI run:\ndaemon %d bytes\nref    %d bytes", len(rows), len(refRows))
			}
			if report != refReport {
				t.Errorf("daemon report diverges from the CLI run:\n--- daemon\n%s--- ref\n%s", report, refReport)
			}

			final := getStatus(t, ts, js.ID)
			if final.Rows != 12 || final.RowsDelivered != 12 || final.Fleet != 12 {
				t.Errorf("final status rows=%d delivered=%d fleet=%d, want 12/12/12",
					final.Rows, final.RowsDelivered, final.Fleet)
			}
			if final.Fingerprint == "" {
				t.Error("done job has no fingerprint")
			}
		})
	}
}

// TestShardJobsMergeToWholeFleetBytes: three partitioned jobs tile
// the fleet; the merge endpoint folds their shard artifacts into the
// whole-fleet rows and report, byte-identical to one unsharded run.
func TestShardJobsMergeToWholeFleetBytes(t *testing.T) {
	base := writeFixtures(t)
	_, ts := startServer(t, t.TempDir(), Config{BaseDir: base, Pool: 2})

	const shards = 3
	ids := make([]string, shards)
	for i := 0; i < shards; i++ {
		js := postJob(t, ts, jobBody(t, scenarioDoc, map[string]any{
			"seed": 5, "devices": 9, "partition": fmt.Sprintf("%d/%d", i, shards),
		}))
		ids[i] = js.ID
	}
	for i, id := range ids {
		if st := waitTerminal(t, ts, id); st != StateDone {
			t.Fatalf("shard %d finished %s, want done", i, st)
		}
	}

	status, data := apiCall(t, ts, http.MethodPost, "/v1/merge",
		[]byte(fmt.Sprintf(`{"jobs":["%s","%s","%s"]}`, ids[0], ids[1], ids[2])))
	if status != http.StatusOK {
		t.Fatalf("POST /v1/merge: %d %s", status, data)
	}
	var merged JobStatus
	if err := json.Unmarshal(data, &merged); err != nil {
		t.Fatalf("merge status: %v in %s", err, data)
	}
	if merged.Kind != "merge" || merged.State != StateDone || merged.Rows != 9 {
		t.Fatalf("merge job = %+v, want done merge of 9 rows", merged)
	}

	rows := getRows(t, ts, merged.ID)
	report := getReport(t, ts, merged.ID)
	refRows, refReport := referenceRun(t, base, scenarioDoc, refOptions{seed: 5, devices: 9, workers: 2})
	if !bytes.Equal(rows, refRows) {
		t.Error("merged shard rows diverge from the single-process run")
	}
	if report != refReport {
		t.Errorf("merged report diverges:\n--- merged\n%s--- ref\n%s", report, refReport)
	}
}

// TestRestartResumesInFlightJobToIdenticalBytes: kill the daemon
// mid-job (drain persists the running job as queued at its checkpoint
// frontier), start a new daemon over the same data dir, and the
// resumed job's final rows and report are byte-identical to an
// uninterrupted run.
func TestRestartResumesInFlightJobToIdenticalBytes(t *testing.T) {
	base := writeFixtures(t)
	dir := t.TempDir()
	cfg := Config{BaseDir: base, Pool: 1}

	srv1, ts1 := startServer(t, dir, cfg)
	const devices = 4000
	js := postJob(t, ts1, jobBody(t, scenarioDoc, map[string]any{
		"seed": 2, "devices": devices, "workers": 1, "chunk_size": 32, "checkpoint_every": 64,
	}))

	// Let it get well into the fleet, then kill the daemon.
	waitRows(t, ts1, js.ID, 256)
	srv1.Drain()
	ts1.Close()

	jobDir := filepath.Join(dir, "jobs", js.ID)
	meta, err := readJobMeta(jobDir)
	if err != nil {
		t.Fatal(err)
	}
	if meta.State != StateQueued {
		t.Fatalf("drained mid-job state = %s, want queued (the job outran the drain; grow the fleet)", meta.State)
	}
	ck, err := fleet.LoadCheckpoint(filepath.Join(jobDir, fleet.ShardMetaFile))
	if err != nil {
		t.Fatalf("no checkpoint after drain: %v", err)
	}
	if ck.Rows <= 0 || ck.Rows >= devices {
		t.Fatalf("checkpoint frontier %d not strictly mid-run", ck.Rows)
	}

	// A restarted daemon recovers the job as queued and resumes it
	// from the frontier without being asked.
	_, ts2 := startServer(t, dir, cfg)
	if st := waitTerminal(t, ts2, js.ID); st != StateDone {
		t.Fatalf("resumed job finished %s, want done", st)
	}

	rows := getRows(t, ts2, js.ID)
	report := getReport(t, ts2, js.ID)
	refRows, refReport := referenceRun(t, base, scenarioDoc, refOptions{
		seed: 2, devices: devices, workers: 1, chunkSize: 32,
	})
	if !bytes.Equal(rows, refRows) {
		t.Errorf("resumed rows diverge from an uninterrupted run (%d vs %d bytes)", len(rows), len(refRows))
	}
	if report != refReport {
		t.Errorf("resumed report diverges:\n--- resumed\n%s--- ref\n%s", report, refReport)
	}

	// The resumed process restored the drained frontier from the
	// checkpoint instead of re-simulating it.
	final := getStatus(t, ts2, js.ID)
	if final.Resumed != ck.Rows {
		t.Errorf("restart restored %d rows, want the checkpoint frontier %d", final.Resumed, ck.Rows)
	}
	if final.Rows != devices || final.RowsDelivered != devices {
		t.Errorf("final rows %d delivered %d, want %d", final.Rows, final.RowsDelivered, devices)
	}
}
