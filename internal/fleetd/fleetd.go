// Package fleetd is the fleet-sweep service behind cmd/ehfleetd: a
// long-running daemon that accepts scenario documents over HTTP (the
// same strict schema as `ehfleet -scenarios`, via the shared
// internal/cli load path), runs each job through fleet.RunStream, and
// streams progress events and NDJSON rows back.
//
// Every job the daemon runs is exactly the sweep the one-shot CLI
// would have produced — byte for byte. What the service adds is
// multiplexing and survival: all jobs draw simulation slots from one
// bounded fleet.WorkerPool, share one content-addressed run memo and
// one model-artifact cache, checkpoint their commit frontiers so a
// restarted daemon resumes in-flight jobs, and cancel cleanly (a
// DELETE aborts the run at its frontier; a graceful drain re-queues
// running jobs for the next process). Partitioned jobs write shard
// artifacts, and the merge endpoint folds completed shard jobs back
// into the whole-fleet rows and report with fleet.MergeShards.
//
// Determinism discipline matches the rest of the repo: the only host
// clock is the injectable fleet.Clock (wall time never influences
// simulated results), job IDs are sequential, and every map iteration
// that could reorder output is collect-then-sorted.
package fleetd

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"ehdl/internal/cli"
	"ehdl/internal/fleet"
	"ehdl/internal/fleet/memo"
)

// DefaultMaxActive is the default number of jobs simulating at once.
// More jobs than this queue FIFO; the worker pool additionally bounds
// their combined simulation concurrency.
const DefaultMaxActive = 4

// DefaultMaxBody caps POSTed request bodies (scenario documents are
// small; model artifacts live on the server's disk).
const DefaultMaxBody = 8 << 20

// Config configures a Server.
type Config struct {
	// Dir is the data directory; each job persists under Dir/jobs/<id>.
	Dir string
	// BaseDir resolves relative model/trace paths in submitted
	// scenarios (empty: Dir).
	BaseDir string
	// Pool is the shared simulation slot count (<= 0: GOMAXPROCS).
	Pool int
	// MaxActive bounds concurrently running jobs (<= 0: DefaultMaxActive).
	MaxActive int
	// MaxBody caps request bodies in bytes (<= 0: DefaultMaxBody).
	MaxBody int64
	// MemoCap sizes the shared run memo (<= 0: the memo default).
	MemoCap int
	// ArtifactCap sizes the shared model-artifact cache (<= 0: the cli
	// default).
	ArtifactCap int
	// CheckpointEvery is the default rows-between-checkpoints for jobs
	// that do not set their own (<= 0: fleet.DefaultCheckpointEvery).
	CheckpointEvery int
	// Clock supplies host time for progress events and report host
	// seconds (nil: fleet.SystemClock). Nothing simulated reads it.
	Clock fleet.Clock
	// ProgressEvery is the progress-event tick (<= 0: RunStream's 2s).
	ProgressEvery time.Duration
}

// Server is the fleet service: job store, scheduler and shared caches.
// Create one with New, serve its Handler, and Drain it on shutdown.
type Server struct {
	dir             string
	baseDir         string
	maxActive       int
	maxBody         int64
	checkpointEvery int
	progressEvery   time.Duration
	clock           fleet.Clock
	start           time.Time

	pool      *fleet.WorkerPool
	memo      *memo.Memo
	artifacts *cli.ArtifactCache

	mu       sync.Mutex
	jobs     map[string]*Job
	nextID   int
	queue    []string // queued job IDs, FIFO
	active   int
	draining bool
	wg       sync.WaitGroup // running jobs
}

// New builds a Server over cfg.Dir, recovering every persisted job:
// terminal jobs load as history, and jobs a previous process left
// queued or running re-queue and resume from their checkpoints.
func New(cfg Config) (*Server, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("fleetd: Config.Dir is required")
	}
	clock := cfg.Clock
	if clock == nil {
		clock = fleet.SystemClock
	}
	s := &Server{
		dir:             cfg.Dir,
		baseDir:         cfg.BaseDir,
		maxActive:       cfg.MaxActive,
		maxBody:         cfg.MaxBody,
		checkpointEvery: cfg.CheckpointEvery,
		progressEvery:   cfg.ProgressEvery,
		clock:           clock,
		start:           clock.Now(),
		pool:            fleet.NewWorkerPool(cfg.Pool),
		memo:            memo.New(cfg.MemoCap),
		artifacts:       cli.NewArtifactCache(cfg.ArtifactCap),
		jobs:            map[string]*Job{},
	}
	if s.baseDir == "" {
		s.baseDir = cfg.Dir
	}
	if s.maxActive <= 0 {
		s.maxActive = DefaultMaxActive
	}
	if s.maxBody <= 0 {
		s.maxBody = DefaultMaxBody
	}
	if err := os.MkdirAll(s.jobsDir(), 0o755); err != nil {
		return nil, fmt.Errorf("fleetd: %w", err)
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Server) jobsDir() string { return filepath.Join(s.dir, "jobs") }

// recover loads persisted jobs from the data dir. Interrupted jobs
// (queued, running, or cancelling at the time the last process died)
// become queued or cancelled; their checkpoints make re-running them
// a resume, not a restart.
func (s *Server) recover() error {
	entries, err := os.ReadDir(s.jobsDir())
	if err != nil {
		return fmt.Errorf("fleetd: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		dir := filepath.Join(s.jobsDir(), name)
		meta, err := readJobMeta(dir)
		if errors.Is(err, fs.ErrNotExist) {
			continue // a submit died between mkdir and its first meta write
		}
		if err != nil {
			return err
		}
		switch {
		case meta.Kind == kindMerge && !meta.State.Terminal():
			// Merges are synchronous; an unfinished one died with its
			// request and cannot resume.
			meta.State = StateFailed
			meta.Error = "merge interrupted by daemon shutdown"
			if err := writeJobMeta(dir, meta); err != nil {
				return err
			}
		case meta.State == StateQueued, meta.State == StateRunning:
			// Interrupted mid-flight (crash or drain): resume.
			meta.State = StateQueued
			if err := writeJobMeta(dir, meta); err != nil {
				return err
			}
		case meta.State == StateCancelling:
			// The user's cancel landed but the ack didn't: honor it.
			meta.State = StateCancelled
			if err := writeJobMeta(dir, meta); err != nil {
				return err
			}
		}
		j := newJob(meta.ID, dir, meta)
		s.jobs[meta.ID] = j
		if meta.State == StateQueued {
			s.queue = append(s.queue, meta.ID)
		}
		var n int
		if _, err := fmt.Sscanf(name, "j%06d", &n); err == nil && n >= s.nextID {
			s.nextID = n
		}
	}
	s.schedule()
	return nil
}

// newJobDir allocates the next sequential job ID and its directory.
// Callers hold s.mu.
func (s *Server) newJobDir() (string, string, error) {
	s.nextID++
	id := fmt.Sprintf("j%06d", s.nextID)
	dir := filepath.Join(s.jobsDir(), id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", "", fmt.Errorf("fleetd: %w", err)
	}
	return id, dir, nil
}

// submit persists a validated request as a queued job and schedules.
// scenario is the submitted document, byte for byte.
func (s *Server) submit(req JobRequest, scenario []byte) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, errDraining
	}
	id, dir, err := s.newJobDir()
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, scenarioFile), scenario, 0o644); err != nil {
		return nil, fmt.Errorf("fleetd: %w", err)
	}
	meta := jobMeta{
		ID:              id,
		Kind:            kindSweep,
		State:           StateQueued,
		Seed:            req.seed(),
		Devices:         req.Devices,
		Workers:         req.Workers,
		ChunkSize:       req.ChunkSize,
		Partition:       req.Partition,
		Memo:            req.Memo,
		CheckpointEvery: req.CheckpointEvery,
	}
	if err := writeJobMeta(dir, meta); err != nil {
		return nil, err
	}
	j := newJob(id, dir, meta)
	s.jobs[id] = j
	s.queue = append(s.queue, id)
	s.schedule()
	return j, nil
}

// schedule starts queued jobs while run slots remain. Callers hold
// s.mu.
func (s *Server) schedule() {
	for !s.draining && s.active < s.maxActive && len(s.queue) > 0 {
		id := s.queue[0]
		s.queue = s.queue[1:]
		j := s.jobs[id]
		ctx, cancel := context.WithCancel(context.Background())
		j.mu.Lock()
		j.cancel = cancel
		j.mu.Unlock()
		s.active++
		s.wg.Add(1)
		go s.runJob(j, ctx)
	}
}

// jobDone releases the job's run slot and schedules the next job.
func (s *Server) jobDone() {
	s.mu.Lock()
	s.active--
	s.schedule()
	s.mu.Unlock()
	s.wg.Done()
}

// runJob drives one job start (or resume) to a terminal state — or
// back to queued, when a drain interrupted it.
func (s *Server) runJob(j *Job, ctx context.Context) {
	defer s.jobDone()
	err := s.executeJob(j, ctx)
	if err == nil {
		return // executeJob persisted StateDone
	}
	if errors.Is(err, context.Canceled) {
		j.mu.Lock()
		user := j.userCancel
		j.mu.Unlock()
		if user {
			_ = j.setState(StateCancelled, nil)
		} else {
			// Drain: the run checkpointed its frontier; persist queued so
			// the next process resumes it.
			_ = j.setState(StateQueued, nil)
		}
		return
	}
	_ = j.setState(StateFailed, func(m *jobMeta) { m.Error = err.Error() })
}

// executeJob compiles the job's scenario against the shared caches
// and streams it through fleet.RunStream on the shared pool.
func (s *Server) executeJob(j *Job, ctx context.Context) error {
	meta, _ := j.snapshot()

	scenario, err := os.ReadFile(j.scenarioPath())
	if err != nil {
		return fmt.Errorf("fleetd: %w", err)
	}
	sf, err := cli.DecodeScenarioFile(bytes.NewReader(scenario))
	if err != nil {
		return fmt.Errorf("fleetd: scenario: %w", err)
	}
	src, err := cli.CompileFleetSource(sf, s.baseDir, meta.Seed, s.artifacts)
	if err != nil {
		return fmt.Errorf("fleetd: scenario: %w", err)
	}
	if meta.Devices > 0 {
		src = src.Resize(meta.Devices)
	}
	n := src.Len()

	part, err := ParsePartition(meta.Partition)
	if err != nil {
		return err
	}
	pstart, pend := part.Range(n)
	fingerprint := cli.ScenarioBytesFingerprint(scenario, meta.Seed, n)

	memoOn := false
	if ms := src.Memo(); ms != nil {
		memoOn = ms.Enabled
	}
	if meta.Memo != nil {
		memoOn = *meta.Memo
	}

	var resume *fleet.CheckpointState
	st, err := fleet.LoadCheckpoint(j.ckptPath())
	switch {
	case errors.Is(err, fs.ErrNotExist):
	case err != nil:
		return err
	default:
		resume = st
	}

	var sink *fleet.NDJSONFile
	if resume != nil {
		sink, err = fleet.ResumeNDJSONFile(j.rowsPath(), resume.Rows-resume.Start, resume.Rows)
	} else {
		sink, err = fleet.NewNDJSONFile(j.rowsPath(), pstart)
	}
	if err != nil {
		return err
	}

	resumed := 0
	if resume != nil {
		resumed = resume.Rows - resume.Start
	}
	if err := j.setState(StateRunning, func(m *jobMeta) {
		m.Fleet = n
		m.Start = pstart
		m.End = pend
		m.Resumed = resumed
		m.Fingerprint = fingerprint
	}); err != nil {
		sink.Close()
		return err
	}
	j.mu.Lock()
	j.sink = sink
	j.rows = resumed
	j.mu.Unlock()

	track := cli.ProgressTracker(s.clock, resumed)
	opts := fleet.StreamOptions{
		Workers:       meta.Workers,
		ChunkSize:     meta.ChunkSize,
		Partition:     part,
		Pool:          s.pool,
		Context:       ctx,
		Clock:         s.clock,
		ProgressEvery: s.progressEvery,
		Sink: fleet.MultiSink(sink, fleet.SinkFunc(func(i int, r fleet.Result) error {
			j.mu.Lock()
			j.rows++
			j.bump()
			j.mu.Unlock()
			return nil
		})),
		Progress: func(done, total int) {
			ev := track(done, total)
			j.addEvent(Event{Type: "progress", Progress: &ev})
		},
		Checkpoint: &fleet.CheckpointSpec{
			Path:        j.ckptPath(),
			Every:       orInt(meta.CheckpointEvery, s.checkpointEvery),
			Fingerprint: fingerprint,
		},
		Resume: resume,
	}
	if memoOn {
		opts.Memo = s.memo
	}

	rep, runErr := fleet.RunStream(src, opts)
	closeErr := sink.Close()
	j.mu.Lock()
	j.sink = nil
	j.mu.Unlock()
	if runErr != nil {
		return runErr
	}
	if closeErr != nil {
		return fmt.Errorf("fleetd: close rows: %w", closeErr)
	}
	return j.setState(StateDone, func(m *jobMeta) {
		m.Report = fleet.RenderReport(rep)
		m.Rows = pend - pstart
	})
}

// cancelErrs classify cancelJob failures for the HTTP layer.
var (
	errNotFound      = errors.New("no such job")
	errJobFinished   = errors.New("job already finished")
	errCancelPending = errors.New("cancel already pending")
	errNotDone       = errors.New("job has not finished")
	errDraining      = errors.New("server is draining")
)

// cancelJob cancels a queued or running job: queued jobs terminate
// immediately; running jobs transition to cancelling and reach
// cancelled when the run stops at its commit frontier.
func (s *Server) cancelJob(id string) (*Job, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return nil, errNotFound
	}
	j.mu.Lock()
	st := j.meta.State
	switch {
	case st.Terminal():
		j.mu.Unlock()
		s.mu.Unlock()
		return nil, errJobFinished
	case st == StateCancelling:
		j.mu.Unlock()
		s.mu.Unlock()
		return nil, errCancelPending
	case st == StateQueued:
		for i, qid := range s.queue {
			if qid == id {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		j.mu.Unlock()
		s.mu.Unlock()
		return j, j.setState(StateCancelled, nil)
	default: // running
		j.userCancel = true
		cancel := j.cancel
		j.mu.Unlock()
		s.mu.Unlock()
		if err := j.setState(StateCancelling, nil); err != nil {
			return nil, err
		}
		cancel()
		return j, nil
	}
}

// job looks up a job by ID.
func (s *Server) job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// snapshotJobs returns every job sorted by ID.
func (s *Server) snapshotJobs() []*Job {
	s.mu.Lock()
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	sort.Strings(ids)
	out := make([]*Job, len(ids))
	for i, id := range ids {
		out[i], _ = s.job(id)
	}
	return out
}

// merge folds the named completed jobs' shard artifacts into a new,
// immediately-terminal merge job whose row file is the whole-fleet
// NDJSON stream (fleet.MergeShards rejects mismatched or incomplete
// shard sets before a byte is written).
func (s *Server) merge(ids []string) (*Job, error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, errDraining
	}
	dirs := make([]string, 0, len(ids))
	for _, id := range ids {
		src, ok := s.jobs[id]
		if !ok {
			s.mu.Unlock()
			return nil, fmt.Errorf("%w: %s", errNotFound, id)
		}
		srcMeta, _ := src.snapshot()
		if srcMeta.State != StateDone || srcMeta.Kind != kindSweep {
			s.mu.Unlock()
			return nil, fmt.Errorf("%w: %s is %s", errNotDone, id, srcMeta.State)
		}
		dirs = append(dirs, src.dir)
	}
	id, dir, err := s.newJobDir()
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	meta := jobMeta{ID: id, Kind: kindMerge, State: StateRunning, Merged: append([]string(nil), ids...)}
	if err := writeJobMeta(dir, meta); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	j := newJob(id, dir, meta)
	s.jobs[id] = j
	s.mu.Unlock()

	rep, rows, err := mergeInto(dir, dirs, s.clock)
	if err != nil {
		if serr := j.setState(StateFailed, func(m *jobMeta) { m.Error = err.Error() }); serr != nil {
			return nil, serr
		}
		return j, nil
	}
	return j, j.setState(StateDone, func(m *jobMeta) {
		m.Report = fleet.RenderReport(rep)
		m.Rows = rows
	})
}

// mergeInto runs MergeShards over the shard dirs, writing the merged
// row file into dir.
func mergeInto(dir string, shardDirs []string, clock fleet.Clock) (fleet.Report, int, error) {
	f, err := os.Create(filepath.Join(dir, fleet.ShardRowsFile))
	if err != nil {
		return fleet.Report{}, 0, fmt.Errorf("fleetd: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	rep, err := fleet.MergeShardsWith(w, shardDirs, fleet.MergeOptions{Clock: clock})
	if err != nil {
		f.Close()
		return fleet.Report{}, 0, err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fleet.Report{}, 0, fmt.Errorf("fleetd: merged rows: %w", err)
	}
	if err := f.Close(); err != nil {
		return fleet.Report{}, 0, fmt.Errorf("fleetd: merged rows: %w", err)
	}
	return rep, rep.Devices, nil
}

// Drain stops scheduling and cancels running jobs — each checkpoints
// its commit frontier and persists as queued, so the next process
// resumes it — then waits for them to stop. Queued jobs are already
// persisted as queued and need nothing. Call once, before exit.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].id < jobs[b].id })
	for _, j := range jobs {
		j.mu.Lock()
		if j.meta.State == StateRunning && j.cancel != nil {
			j.cancel()
		}
		j.mu.Unlock()
	}
	s.wg.Wait()
}

// Draining reports whether Drain has started.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// orInt returns a if positive, else b.
func orInt(a, b int) int {
	if a > 0 {
		return a
	}
	return b
}
