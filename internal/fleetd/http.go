package fleetd

// HTTP surface. Every error response carries a machine-readable code
// next to the human message ({"code": ..., "error": ...}) so clients
// and the error-contract tests can dispatch without parsing prose.
// The rows and events endpoints stream NDJSON and hold the request
// open while the job runs: rows come straight off the job's durable
// row file (complete lines only — the tail of a partially-flushed
// line waits for its newline), events replay the bounded history and
// then follow live.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"os"
	"strconv"
	"strings"

	"ehdl/internal/cli"
	"ehdl/internal/fleet"
	"ehdl/internal/fleet/memo"
)

// DefaultSeed matches the CLI's -seed default for requests that omit
// the field.
const DefaultSeed = 1

// JobRequest is the POST /v1/jobs body: the scenario document (same
// strict schema as `ehfleet -scenarios`) plus the run knobs the CLI
// exposes as flags. Unknown fields anywhere are rejected.
type JobRequest struct {
	// Scenario is the scenario document, verbatim. The daemon persists
	// and fingerprints exactly these bytes.
	Scenario json.RawMessage `json:"scenario"`
	// Seed is the dataset/jitter seed (absent: DefaultSeed).
	Seed *int64 `json:"seed"`
	// Devices resizes the declared fleet (0: keep the declared size).
	Devices int `json:"devices"`
	// Workers caps this job's goroutines (0: the pool size). The
	// shared pool still bounds actual simulation concurrency.
	Workers int `json:"workers"`
	// ChunkSize overrides the dispatch granularity (0: default).
	ChunkSize int `json:"chunk_size"`
	// Partition restricts the job to shard "i/N" of the fleet; its
	// directory then doubles as a shard artifact for /v1/merge.
	Partition string `json:"partition"`
	// Memo overrides the scenario's memo block (absent: the block
	// decides; false with no block). Memoized jobs share the daemon's
	// process-wide run memo.
	Memo *bool `json:"memo"`
	// CheckpointEvery is the rows between checkpoint writes (0: the
	// server default).
	CheckpointEvery int `json:"checkpoint_every"`
}

// seed resolves the request's seed.
func (r *JobRequest) seed() int64 {
	if r.Seed != nil {
		return *r.Seed
	}
	return DefaultSeed
}

// MergeRequest is the POST /v1/merge body: completed partitioned jobs
// whose shard artifacts tile one fleet.
type MergeRequest struct {
	Jobs []string `json:"jobs"`
}

// JobStatus is the job representation every job endpoint returns.
type JobStatus struct {
	ID            string   `json:"id"`
	Kind          string   `json:"kind"`
	State         State    `json:"state"`
	Seed          int64    `json:"seed"`
	Devices       int      `json:"devices,omitempty"` // requested resize
	Partition     string   `json:"partition,omitempty"`
	Fleet         int      `json:"fleet,omitempty"` // resolved fleet size
	Start         int      `json:"start,omitempty"`
	End           int      `json:"end,omitempty"`
	Resumed       int      `json:"resumed,omitempty"` // checkpoint rows restored at the last (re)start
	Fingerprint   string   `json:"fingerprint,omitempty"`
	RowsDelivered int      `json:"rows_delivered"`
	Rows          int      `json:"rows,omitempty"` // row-file rows at completion
	Error         string   `json:"error,omitempty"`
	Merged        []string `json:"merged,omitempty"`
}

func statusOf(j *Job) JobStatus {
	meta, rows := j.snapshot()
	return JobStatus{
		ID:            meta.ID,
		Kind:          meta.Kind,
		State:         meta.State,
		Seed:          meta.Seed,
		Devices:       meta.Devices,
		Partition:     meta.Partition,
		Fleet:         meta.Fleet,
		Start:         meta.Start,
		End:           meta.End,
		Resumed:       meta.Resumed,
		Fingerprint:   meta.Fingerprint,
		RowsDelivered: rows,
		Rows:          meta.Rows,
		Error:         meta.Error,
		Merged:        meta.Merged,
	}
}

// Metrics is the GET /v1/metrics payload.
type Metrics struct {
	UptimeSeconds    float64        `json:"uptime_seconds"`
	Draining         bool           `json:"draining"`
	Jobs             map[string]int `json:"jobs"` // count per state
	QueueDepth       int            `json:"queue_depth"`
	Active           int            `json:"active"`
	PoolSize         int            `json:"pool_size"`
	PoolInUse        int            `json:"pool_in_use"`
	RowsDelivered    int            `json:"rows_delivered"`
	DevicesPerSecond float64        `json:"devices_per_second"`
	Memo             memo.Stats     `json:"memo"`
	ArtifactsCached  int            `json:"artifacts_cached"`
	ArtifactEvicts   uint64         `json:"artifact_evictions"`
}

// API error codes (the "code" field of error responses).
const (
	CodeBadJSON        = "bad_json"
	CodeUnknownField   = "unknown_field"
	CodeBadRequest     = "bad_request"
	CodeBadScenario    = "bad_scenario"
	CodeBadPartition   = "bad_partition"
	CodeBodyTooLarge   = "body_too_large"
	CodeJobNotFound    = "job_not_found"
	CodeJobFinished    = "job_finished"
	CodeCancelPending  = "cancel_pending"
	CodeJobNotFinished = "job_not_finished"
	CodeDraining       = "draining"
	CodeInternal       = "internal"
)

// apiErr is a typed handler failure: HTTP status + error code + text.
type apiErr struct {
	status int
	code   string
	msg    string
}

func (e *apiErr) Error() string { return e.msg }

func apiError(status int, code, format string, args ...any) *apiErr {
	return &apiErr{status: status, code: code, msg: fmt.Sprintf(format, args...)}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, e *apiErr) {
	writeJSON(w, e.status, struct {
		Code  string `json:"code"`
		Error string `json:"error"`
	}{Code: e.code, Error: e.msg})
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/rows", s.handleRows)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	mux.HandleFunc("POST /v1/merge", s.handleMerge)
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{Status: status})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := Metrics{
		UptimeSeconds:   s.clock.Now().Sub(s.start).Seconds(),
		Draining:        s.Draining(),
		Jobs:            map[string]int{},
		PoolSize:        s.pool.Size(),
		PoolInUse:       s.pool.InUse(),
		Memo:            s.memo.Stats(),
		ArtifactsCached: s.artifacts.Len(),
		ArtifactEvicts:  s.artifacts.Evictions(),
	}
	for _, j := range s.snapshotJobs() {
		meta, rows := j.snapshot()
		m.Jobs[string(meta.State)]++
		m.RowsDelivered += rows
	}
	s.mu.Lock()
	m.QueueDepth = len(s.queue)
	m.Active = s.active
	s.mu.Unlock()
	if m.UptimeSeconds > 0 {
		m.DevicesPerSecond = float64(m.RowsDelivered) / m.UptimeSeconds
	}
	writeJSON(w, http.StatusOK, m)
}

// readBody reads a bounded request body, mapping the size cap to its
// typed error.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, *apiErr) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, apiError(http.StatusRequestEntityTooLarge, CodeBodyTooLarge,
				"request body exceeds %d bytes", mbe.Limit)
		}
		return nil, apiError(http.StatusBadRequest, CodeBadRequest, "reading body: %v", err)
	}
	return data, nil
}

// decodeStrict decodes JSON into v, rejecting unknown fields and
// trailing data, and classifies the failure.
func decodeStrict(data []byte, v any) *apiErr {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if strings.Contains(err.Error(), "unknown field") {
			return apiError(http.StatusBadRequest, CodeUnknownField, "%v", err)
		}
		return apiError(http.StatusBadRequest, CodeBadJSON, "%v", err)
	}
	if dec.More() {
		return apiError(http.StatusBadRequest, CodeBadJSON, "trailing data after the document")
	}
	return nil
}

// decodeJobRequest validates a POST /v1/jobs body end to end: strict
// envelope, strict scenario schema, well-formed knobs.
func decodeJobRequest(data []byte) (JobRequest, *apiErr) {
	var req JobRequest
	if e := decodeStrict(data, &req); e != nil {
		return req, e
	}
	if len(req.Scenario) == 0 {
		return req, apiError(http.StatusBadRequest, CodeBadRequest, `"scenario" is required`)
	}
	if _, err := cli.DecodeScenarioFile(bytes.NewReader(req.Scenario)); err != nil {
		return req, apiError(http.StatusBadRequest, CodeBadScenario, "scenario: %v", err)
	}
	if _, err := ParsePartition(req.Partition); err != nil {
		return req, apiError(http.StatusBadRequest, CodeBadPartition, "%v", err)
	}
	if req.Devices < 0 || req.Workers < 0 || req.ChunkSize < 0 || req.CheckpointEvery < 0 {
		return req, apiError(http.StatusBadRequest, CodeBadRequest,
			"devices, workers, chunk_size and checkpoint_every must be >= 0")
	}
	return req, nil
}

// ParsePartition parses a "i/N" shard spec ("" is the whole fleet).
func ParsePartition(s string) (fleet.Partition, error) {
	var p fleet.Partition
	if s == "" {
		return p, nil
	}
	a, b, ok := strings.Cut(s, "/")
	if ok {
		var err1, err2 error
		p.Index, err1 = strconv.Atoi(a)
		p.Of, err2 = strconv.Atoi(b)
		ok = err1 == nil && err2 == nil
	}
	if !ok {
		return p, fmt.Errorf("partition must be i/N (e.g. 2/8), got %q", s)
	}
	if p.Of < 1 || p.Index < 0 || p.Index >= p.Of {
		return p, fmt.Errorf("partition %s out of range (want 0 <= i < N)", s)
	}
	return p, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	data, e := s.readBody(w, r)
	if e != nil {
		writeErr(w, e)
		return
	}
	req, e := decodeJobRequest(data)
	if e != nil {
		writeErr(w, e)
		return
	}
	j, err := s.submit(req, req.Scenario)
	switch {
	case errors.Is(err, errDraining):
		writeErr(w, apiError(http.StatusServiceUnavailable, CodeDraining, "server is draining"))
	case err != nil:
		writeErr(w, apiError(http.StatusInternalServerError, CodeInternal, "%v", err))
	default:
		writeJSON(w, http.StatusAccepted, statusOf(j))
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.snapshotJobs()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = statusOf(j)
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobStatus `json:"jobs"`
	}{Jobs: out})
}

// lookupJob resolves the {id} path value.
func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.job(id)
	if !ok {
		writeErr(w, apiError(http.StatusNotFound, CodeJobNotFound, "no job %q", id))
		return nil, false
	}
	return j, true
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.lookupJob(w, r); ok {
		writeJSON(w, http.StatusOK, statusOf(j))
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, err := s.cancelJob(id)
	switch {
	case errors.Is(err, errNotFound):
		writeErr(w, apiError(http.StatusNotFound, CodeJobNotFound, "no job %q", id))
	case errors.Is(err, errJobFinished):
		writeErr(w, apiError(http.StatusConflict, CodeJobFinished, "job %s already finished", id))
	case errors.Is(err, errCancelPending):
		writeErr(w, apiError(http.StatusConflict, CodeCancelPending, "job %s cancel already pending", id))
	case err != nil:
		writeErr(w, apiError(http.StatusInternalServerError, CodeInternal, "%v", err))
	default:
		writeJSON(w, http.StatusOK, statusOf(j))
	}
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	meta, _ := j.snapshot()
	if meta.State != StateDone {
		writeErr(w, apiError(http.StatusConflict, CodeJobNotFinished,
			"job %s is %s; the report exists once it is done", meta.ID, meta.State))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, meta.Report)
}

func (s *Server) handleMerge(w http.ResponseWriter, r *http.Request) {
	data, e := s.readBody(w, r)
	if e != nil {
		writeErr(w, e)
		return
	}
	var req MergeRequest
	if e := decodeStrict(data, &req); e != nil {
		writeErr(w, e)
		return
	}
	if len(req.Jobs) == 0 {
		writeErr(w, apiError(http.StatusBadRequest, CodeBadRequest, `"jobs" must name at least one completed job`))
		return
	}
	j, err := s.merge(req.Jobs)
	switch {
	case errors.Is(err, errDraining):
		writeErr(w, apiError(http.StatusServiceUnavailable, CodeDraining, "server is draining"))
	case errors.Is(err, errNotFound):
		writeErr(w, apiError(http.StatusNotFound, CodeJobNotFound, "%v", err))
	case errors.Is(err, errNotDone):
		writeErr(w, apiError(http.StatusConflict, CodeJobNotFinished, "%v", err))
	case err != nil:
		writeErr(w, apiError(http.StatusInternalServerError, CodeInternal, "%v", err))
	default:
		writeJSON(w, http.StatusOK, statusOf(j))
	}
}

func (s *Server) handleRows(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	var off int64
	for {
		ch := j.changed()
		meta, _ := j.snapshot()
		if err := j.flushRows(); err != nil {
			return // the run itself is failing; its state event reports why
		}
		n, err := copyNewRows(w, j.rowsPath(), &off)
		if err != nil {
			return
		}
		if n > 0 && flusher != nil {
			flusher.Flush()
		}
		if meta.State.Terminal() {
			return
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		}
	}
}

// copyNewRows streams complete NDJSON lines appearing after *off into
// w, advancing *off past what it wrote. A trailing partial line (the
// row file's writer buffers through bufio, which can flush mid-line)
// stays unread until its newline lands.
func copyNewRows(w io.Writer, path string, off *int64) (written int64, err error) {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil // the run has not opened its row file yet
	}
	if err != nil {
		return 0, fmt.Errorf("fleetd: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, fmt.Errorf("fleetd: %w", err)
	}
	size := fi.Size()
	buf := make([]byte, 1<<20)
	for *off < size {
		n := size - *off
		if n > int64(len(buf)) {
			n = int64(len(buf))
		}
		if _, err := io.ReadFull(io.NewSectionReader(f, *off, n), buf[:n]); err != nil {
			return written, fmt.Errorf("fleetd: reading rows: %w", err)
		}
		cut := bytes.LastIndexByte(buf[:n], '\n')
		if cut < 0 {
			break // partial line: wait for the rest
		}
		m, err := w.Write(buf[:cut+1])
		written += int64(m)
		*off += int64(cut + 1)
		if err != nil {
			return written, err
		}
		if int64(cut+1) < n {
			break // stopped at a partial tail
		}
	}
	return written, nil
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	cursor := 0
	for {
		ch := j.changed()
		evs, next, terminal := j.eventsSince(cursor)
		cursor = next
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
		if len(evs) > 0 {
			if flusher != nil {
				flusher.Flush()
			}
			continue // re-check before sleeping: more may have landed
		}
		if terminal {
			return
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		}
	}
}
