package fleetd

// Job model and persistence. Every job owns one directory under the
// server's data dir holding the submitted scenario document byte for
// byte, a small atomically-rewritten metadata file, and the run's
// durable output — the NDJSON row file and the checkpoint. The output
// files deliberately use the fleet package's shard names
// (fleet.ShardRowsFile / fleet.ShardMetaFile): a completed
// partitioned job's directory IS a valid shard artifact, so the merge
// endpoint feeds job directories straight into fleet.MergeShards.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"ehdl/internal/cli"
	"ehdl/internal/fleet"
)

// State is a job's lifecycle state.
type State string

const (
	// StateQueued: accepted, waiting for a run slot (also the state a
	// drained or crashed daemon persists for in-flight jobs, so the
	// next process resumes them from their checkpoints).
	StateQueued State = "queued"
	// StateRunning: simulating on the shared worker pool.
	StateRunning State = "running"
	// StateCancelling: cancel requested, waiting for the run to stop
	// at its commit frontier.
	StateCancelling State = "cancelling"
	// StateDone, StateFailed, StateCancelled: terminal.
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Job kinds.
const (
	kindSweep = "sweep" // a submitted scenario run
	kindMerge = "merge" // a server-side shard merge
)

// Job directory files (rows and checkpoint use the fleet shard names).
const (
	scenarioFile = "scenario.json"
	metaFile     = "job.json"
)

// jobMeta is the persisted job record (everything a restarted daemon
// needs to resume or report the job).
type jobMeta struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	State State  `json:"state"`

	// Request knobs, as submitted.
	Seed            int64  `json:"seed"`
	Devices         int    `json:"devices,omitempty"` // requested resize (0: declared size)
	Workers         int    `json:"workers,omitempty"`
	ChunkSize       int    `json:"chunk_size,omitempty"`
	Partition       string `json:"partition,omitempty"`
	Memo            *bool  `json:"memo,omitempty"`
	CheckpointEvery int    `json:"checkpoint_every,omitempty"`

	// Resolved at run time.
	Fleet       int    `json:"fleet,omitempty"` // full fleet size across shards
	Start       int    `json:"start,omitempty"` // partition range [Start, End)
	End         int    `json:"end,omitempty"`
	Resumed     int    `json:"resumed,omitempty"` // rows restored from the checkpoint at the last (re)start
	Fingerprint string `json:"fingerprint,omitempty"`

	// Terminal results.
	Error  string   `json:"error,omitempty"`
	Report string   `json:"report,omitempty"` // rendered aggregate report
	Rows   int      `json:"rows,omitempty"`   // rows in the row file on completion
	Merged []string `json:"merged,omitempty"` // source job IDs (merge jobs)
}

// Event is one entry on a job's event stream: a state transition or a
// progress tick, serialized as NDJSON by GET /v1/jobs/{id}/events.
type Event struct {
	Type     string             `json:"type"` // "state" | "progress"
	State    State              `json:"state,omitempty"`
	Error    string             `json:"error,omitempty"`
	Progress *cli.ProgressEvent `json:"progress,omitempty"`
}

// eventCap bounds a job's retained event history; older progress
// ticks fall off the front (subscribers that far behind resync from
// the trimmed history — state transitions still reach them because
// terminal states persist in the job meta).
const eventCap = 1024

// Job is one tracked job: the persisted meta plus the live run state.
type Job struct {
	id  string
	dir string

	mu         sync.Mutex
	meta       jobMeta
	events     []Event
	eventBase  int           // absolute index of events[0]
	notify     chan struct{} // closed+replaced on every change (broadcast)
	rows       int           // rows delivered this process (live metric)
	sink       *fleet.NDJSONFile
	cancel     context.CancelFunc
	userCancel bool
}

func newJob(id, dir string, meta jobMeta) *Job {
	return &Job{id: id, dir: dir, meta: meta, notify: make(chan struct{})}
}

func (j *Job) rowsPath() string     { return filepath.Join(j.dir, fleet.ShardRowsFile) }
func (j *Job) ckptPath() string     { return filepath.Join(j.dir, fleet.ShardMetaFile) }
func (j *Job) scenarioPath() string { return filepath.Join(j.dir, scenarioFile) }

// bump wakes every waiter. Callers hold j.mu.
func (j *Job) bump() {
	close(j.notify)
	j.notify = make(chan struct{})
}

// changed returns a channel closed at the next state/event/row change.
func (j *Job) changed() <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.notify
}

// addEvent appends to the bounded event history and wakes waiters.
func (j *Job) addEvent(ev Event) {
	j.mu.Lock()
	j.appendEventLocked(ev)
	j.mu.Unlock()
}

// appendEventLocked is addEvent under an already-held j.mu.
func (j *Job) appendEventLocked(ev Event) {
	j.events = append(j.events, ev)
	if over := len(j.events) - eventCap; over > 0 {
		j.events = j.events[over:]
		j.eventBase += over
	}
	j.bump()
}

// eventsSince copies history from absolute index cursor on, returning
// the batch, the next cursor, and whether the job is terminal.
func (j *Job) eventsSince(cursor int) ([]Event, int, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if cursor < j.eventBase {
		cursor = j.eventBase
	}
	batch := append([]Event(nil), j.events[cursor-j.eventBase:]...)
	return batch, cursor + len(batch), j.meta.State.Terminal()
}

// setState transitions the job, emits a state event, and persists the
// meta — all under the job lock, so concurrent transitions (a cancel
// racing the run's own completion) serialize and the metadata file is
// never rewritten by two goroutines at once. mutate, when non-nil,
// edits the meta first.
func (j *Job) setState(st State, mutate func(*jobMeta)) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if mutate != nil {
		mutate(&j.meta)
	}
	j.meta.State = st
	j.appendEventLocked(Event{Type: "state", State: st, Error: j.meta.Error})
	return writeJobMeta(j.dir, j.meta)
}

// snapshot returns a copy of the persisted meta plus the live
// delivered-row count.
func (j *Job) snapshot() (jobMeta, int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.meta, j.rows
}

// flushRows forces delivered rows to the row file so a streaming
// reader sees them; a job with no live sink has nothing buffered.
func (j *Job) flushRows() error {
	j.mu.Lock()
	sink := j.sink
	j.mu.Unlock()
	if sink == nil {
		return nil
	}
	return sink.Flush()
}

// writeJobMeta atomically rewrites the job's metadata file.
func writeJobMeta(dir string, meta jobMeta) error {
	data, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return fmt.Errorf("fleetd: encode job meta: %w", err)
	}
	data = append(data, '\n')
	tmp := filepath.Join(dir, metaFile+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("fleetd: write job meta: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, metaFile)); err != nil {
		return fmt.Errorf("fleetd: write job meta: %w", err)
	}
	return nil
}

// readJobMeta loads a job directory's metadata file.
func readJobMeta(dir string) (jobMeta, error) {
	var meta jobMeta
	data, err := os.ReadFile(filepath.Join(dir, metaFile))
	if err != nil {
		return meta, fmt.Errorf("fleetd: read job meta: %w", err)
	}
	if err := json.Unmarshal(data, &meta); err != nil {
		return meta, fmt.Errorf("fleetd: decode job meta in %s: %w", dir, err)
	}
	return meta, nil
}
