package fleetd

// API error contract: every failure carries a machine-readable code,
// table-tested here, plus the job-lifecycle conflicts (cancel after
// done, double cancel), the draining responses, and a fuzz target
// over the POST /v1/jobs envelope seeded from the scenario-schema
// fuzz corpus.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"ehdl/internal/cli"
)

func TestAPIErrorContract(t *testing.T) {
	base := writeFixtures(t)
	_, ts := startServer(t, t.TempDir(), Config{BaseDir: base, MaxBody: 64 << 10})

	oversized := fmt.Sprintf(`{"scenario":{"devices":[{"count":1}]},"partition":"%s"}`,
		strings.Repeat("x", 96<<10))
	cases := []struct {
		name   string
		method string
		path   string
		body   string
		status int
		code   string
	}{
		{"bad json", "POST", "/v1/jobs", `{`, 400, CodeBadJSON},
		{"empty body", "POST", "/v1/jobs", ``, 400, CodeBadJSON},
		{"non-object body", "POST", "/v1/jobs", `[1,2,3]`, 400, CodeBadJSON},
		{"trailing data", "POST", "/v1/jobs", `{"scenario":{"devices":[{"count":1}]}} extra`, 400, CodeBadJSON},
		{"unknown envelope field", "POST", "/v1/jobs", `{"scenario":{"devices":[{"count":1}]},"bogus":1}`, 400, CodeUnknownField},
		{"missing scenario", "POST", "/v1/jobs", `{"seed":1}`, 400, CodeBadRequest},
		{"empty device list", "POST", "/v1/jobs", `{"scenario":{"devices":[]}}`, 400, CodeBadScenario},
		{"unknown scenario field", "POST", "/v1/jobs", `{"scenario":{"devices":[{"count":1}],"unknown_field":1}}`, 400, CodeBadScenario},
		{"malformed partition", "POST", "/v1/jobs", `{"scenario":{"devices":[{"count":1}]},"partition":"2-8"}`, 400, CodeBadPartition},
		{"partition out of range", "POST", "/v1/jobs", `{"scenario":{"devices":[{"count":1}]},"partition":"3/2"}`, 400, CodeBadPartition},
		{"negative workers", "POST", "/v1/jobs", `{"scenario":{"devices":[{"count":1}]},"workers":-1}`, 400, CodeBadRequest},
		{"negative devices", "POST", "/v1/jobs", `{"scenario":{"devices":[{"count":1}]},"devices":-4}`, 400, CodeBadRequest},
		{"oversized body", "POST", "/v1/jobs", oversized, 413, CodeBodyTooLarge},
		{"unknown job status", "GET", "/v1/jobs/j999999", ``, 404, CodeJobNotFound},
		{"unknown job cancel", "DELETE", "/v1/jobs/j999999", ``, 404, CodeJobNotFound},
		{"unknown job rows", "GET", "/v1/jobs/j999999/rows", ``, 404, CodeJobNotFound},
		{"unknown job events", "GET", "/v1/jobs/j999999/events", ``, 404, CodeJobNotFound},
		{"unknown job report", "GET", "/v1/jobs/j999999/report", ``, 404, CodeJobNotFound},
		{"merge bad json", "POST", "/v1/merge", `[`, 400, CodeBadJSON},
		{"merge unknown field", "POST", "/v1/merge", `{"jobs":[],"bogus":1}`, 400, CodeUnknownField},
		{"merge empty set", "POST", "/v1/merge", `{"jobs":[]}`, 400, CodeBadRequest},
		{"merge unknown job", "POST", "/v1/merge", `{"jobs":["j999999"]}`, 404, CodeJobNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body []byte
			if tc.body != "" {
				body = []byte(tc.body)
			}
			status, data := apiCall(t, ts, tc.method, tc.path, body)
			if status != tc.status {
				t.Fatalf("status %d, want %d (body %s)", status, tc.status, data)
			}
			eb := decodeErr(t, data)
			if eb.Code != tc.code {
				t.Errorf("code %q, want %q (%s)", eb.Code, tc.code, eb.Error)
			}
			if eb.Error == "" {
				t.Error("error response has no message")
			}
		})
	}
}

// TestCancelLifecycleConflicts: cancelling a finished job, cancelling
// twice, merging an unfinished job, and reading an absent report each
// return their typed conflict.
func TestCancelLifecycleConflicts(t *testing.T) {
	base := writeFixtures(t)
	srv, ts := startServer(t, t.TempDir(), Config{BaseDir: base, Pool: 1})

	// A small job runs to done; cancelling it then is a conflict.
	done := postJob(t, ts, jobBody(t, scenarioDoc, map[string]any{"seed": 1, "devices": 3}))
	if st := waitTerminal(t, ts, done.ID); st != StateDone {
		t.Fatalf("small job finished %s, want done", st)
	}
	status, data := apiCall(t, ts, http.MethodDelete, "/v1/jobs/"+done.ID, nil)
	if eb := decodeErr(t, data); status != http.StatusConflict || eb.Code != CodeJobFinished {
		t.Fatalf("cancel after done: %d %q, want 409 %q", status, eb.Code, CodeJobFinished)
	}

	// A long single-worker job exercises the real cancel path: DELETE
	// while it runs, then watch it reach cancelled at its frontier.
	long := postJob(t, ts, jobBody(t, scenarioDoc, map[string]any{
		"seed": 2, "devices": 3000, "workers": 1, "chunk_size": 64,
	}))
	waitRows(t, ts, long.ID, 64)

	// No report exists before the job is done.
	status, data = apiCall(t, ts, http.MethodGet, "/v1/jobs/"+long.ID+"/report", nil)
	if eb := decodeErr(t, data); status != http.StatusConflict || eb.Code != CodeJobNotFinished {
		t.Fatalf("report of a running job: %d %q, want 409 %q", status, eb.Code, CodeJobNotFinished)
	}

	status, data = apiCall(t, ts, http.MethodDelete, "/v1/jobs/"+long.ID, nil)
	if status != http.StatusOK {
		t.Fatalf("cancel running job: %d %s", status, data)
	}
	if st := waitTerminal(t, ts, long.ID); st != StateCancelled {
		t.Fatalf("cancelled job finished %s, want cancelled", st)
	}
	status, data = apiCall(t, ts, http.MethodDelete, "/v1/jobs/"+long.ID, nil)
	if eb := decodeErr(t, data); status != http.StatusConflict || eb.Code != CodeJobFinished {
		t.Fatalf("cancel after cancelled: %d %q, want 409 %q", status, eb.Code, CodeJobFinished)
	}

	// Double cancel: a real run unwinds to cancelled in milliseconds,
	// so the cancelling window is staged — a running job whose cancel
	// hook never finishes — making the second DELETE deterministic.
	stuck := newJob("j900001", t.TempDir(), jobMeta{ID: "j900001", Kind: kindSweep, State: StateRunning})
	stuck.cancel = func() {}
	srv.mu.Lock()
	srv.jobs[stuck.id] = stuck
	srv.mu.Unlock()
	status, data = apiCall(t, ts, http.MethodDelete, "/v1/jobs/"+stuck.id, nil)
	if status != http.StatusOK {
		t.Fatalf("cancel staged running job: %d %s", status, data)
	}
	var js JobStatus
	if err := json.Unmarshal(data, &js); err != nil || js.State != StateCancelling {
		t.Fatalf("first cancel left state %q (%v), want cancelling", js.State, err)
	}
	status, data = apiCall(t, ts, http.MethodDelete, "/v1/jobs/"+stuck.id, nil)
	if eb := decodeErr(t, data); status != http.StatusConflict || eb.Code != CodeCancelPending {
		t.Fatalf("double cancel: %d %q, want 409 %q", status, eb.Code, CodeCancelPending)
	}

	// A cancelled job is not mergeable.
	status, data = apiCall(t, ts, http.MethodPost, "/v1/merge",
		[]byte(fmt.Sprintf(`{"jobs":["%s"]}`, long.ID)))
	if eb := decodeErr(t, data); status != http.StatusConflict || eb.Code != CodeJobNotFinished {
		t.Fatalf("merge of a cancelled job: %d %q, want 409 %q", status, eb.Code, CodeJobNotFinished)
	}
}

// TestDrainingResponses: a draining daemon refuses new work with the
// typed code and reports it on /healthz, while reads keep working.
func TestDrainingResponses(t *testing.T) {
	base := writeFixtures(t)
	srv, ts := startServer(t, t.TempDir(), Config{BaseDir: base})
	srv.Drain()

	status, data := apiCall(t, ts, http.MethodPost, "/v1/jobs", fmtJob(t, `"seed":1`))
	if eb := decodeErr(t, data); status != http.StatusServiceUnavailable || eb.Code != CodeDraining {
		t.Fatalf("submit while draining: %d %q, want 503 %q", status, eb.Code, CodeDraining)
	}
	status, data = apiCall(t, ts, http.MethodPost, "/v1/merge", []byte(`{"jobs":["j000001"]}`))
	if eb := decodeErr(t, data); status != http.StatusServiceUnavailable || eb.Code != CodeDraining {
		t.Fatalf("merge while draining: %d %q, want 503 %q", status, eb.Code, CodeDraining)
	}
	status, data = apiCall(t, ts, http.MethodGet, "/healthz", nil)
	if status != http.StatusOK || !strings.Contains(string(data), "draining") {
		t.Fatalf("healthz while draining: %d %s", status, data)
	}
	if status, _ = apiCall(t, ts, http.MethodGet, "/v1/jobs", nil); status != http.StatusOK {
		t.Fatalf("job list while draining: %d", status)
	}
}

// FuzzJobRequest fuzzes the full POST /v1/jobs validation path,
// seeded from the scenario-schema fuzz corpus wrapped in envelopes.
// decodeJobRequest must never panic, must classify every rejection
// with a 4xx status and a non-internal code, and must only accept
// envelopes whose scenario and knobs independently re-validate.
func FuzzJobRequest(f *testing.F) {
	scenarios := []string{
		`{"devices":[{"count":2,"engine":"sonic"}]}`,
		`{"seed":7,"devices":[{"count":1,"engine":"ace","cap_uF":100,
		"profile":{"kind":"sine","power_W":0.005,"period_s":0.1}}]}`,
		`{"devices":[]}`,
		`{"unknown_field":1}`,
		`{"devices":[{"count":2}]} trailing`,
		`[1,2,3]`,
		`{`,
		``,
	}
	for _, doc := range scenarios {
		f.Add(fmt.Sprintf(`{"scenario":%s}`, doc))
		f.Add(fmt.Sprintf(`{"scenario":%s,"seed":7,"partition":"0/2","workers":4}`, doc))
	}
	f.Add(`{"scenario":{"devices":[{"count":1}]},"bogus":true}`)
	f.Add(`{"scenario":{"devices":[{"count":1}]},"partition":"9/2"}`)
	f.Add(`{"scenario":{"devices":[{"count":1}]},"chunk_size":-1}`)
	f.Add(`{"seed":1}`)
	f.Add(`null`)

	f.Fuzz(func(t *testing.T, body string) {
		req, e := decodeJobRequest([]byte(body))
		if e != nil {
			if e.status < 400 || e.status > 499 {
				t.Fatalf("rejection status %d for %q, want 4xx", e.status, body)
			}
			switch e.code {
			case CodeBadJSON, CodeUnknownField, CodeBadRequest, CodeBadScenario, CodeBadPartition:
			default:
				t.Fatalf("rejection code %q for %q is not a validation code", e.code, body)
			}
			if e.msg == "" {
				t.Fatalf("empty rejection message for %q", body)
			}
			return
		}
		// Accepted: everything the daemon later relies on must hold.
		if _, err := cli.DecodeScenarioFile(bytes.NewReader(req.Scenario)); err != nil {
			t.Fatalf("accepted envelope with unloadable scenario: %v (%q)", err, body)
		}
		if _, err := ParsePartition(req.Partition); err != nil {
			t.Fatalf("accepted envelope with bad partition: %v (%q)", err, body)
		}
		if req.Devices < 0 || req.Workers < 0 || req.ChunkSize < 0 || req.CheckpointEvery < 0 {
			t.Fatalf("accepted envelope with negative knobs: %+v (%q)", req, body)
		}
	})
}
