package fleetd

// Concurrent-session suite: several jobs submitted simultaneously to
// one daemon, drawing from one shared worker pool, one shared run
// memo and one shared artifact cache, at worker counts 1/4/16. Run
// under `go test -race`. Each job's rows must equal its own solo
// reference run (per-job ordering and seed isolation hold no matter
// how the shared pool interleaves them), and at least three jobs must
// actually overlap on the pool.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"
)

func TestConcurrentJobsSharedPoolDeterministic(t *testing.T) {
	base := writeFixtures(t)
	srv, ts := startServer(t, t.TempDir(), Config{BaseDir: base, Pool: 4, MaxActive: 4})

	// Two memo-off jobs with distinct seeds (seed isolation), plus two
	// identical memoized jobs that exercise the shared process-wide
	// memo across concurrent sessions.
	specs := []struct {
		seed    int64
		workers int
		devices int
		memo    bool
	}{
		{seed: 1, workers: 1, devices: 400, memo: false},
		{seed: 2, workers: 4, devices: 400, memo: false},
		{seed: 3, workers: 16, devices: 400, memo: true},
		{seed: 3, workers: 16, devices: 400, memo: true},
	}

	ids := make([]string, len(specs))
	var wg sync.WaitGroup
	for i, sp := range specs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			js := postJob(t, ts, jobBody(t, scenarioDoc, map[string]any{
				"seed": sp.seed, "devices": sp.devices, "workers": sp.workers, "memo": sp.memo,
			}))
			ids[i] = js.ID
		}()
	}
	wg.Wait()

	// Watch the scheduler while the jobs run: with MaxActive 4 and
	// four long jobs, at least three must be active at once.
	maxActive := 0
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		for {
			var m Metrics
			status, data := apiCall(t, ts, http.MethodGet, "/v1/metrics", nil)
			if status != http.StatusOK || json.Unmarshal(data, &m) != nil {
				return
			}
			if m.Active > maxActive {
				maxActive = m.Active
			}
			done := 0
			for _, id := range ids {
				if getStatus(t, ts, id).State.Terminal() {
					done++
				}
			}
			if done == len(ids) {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	for i, id := range ids {
		if st := waitTerminal(t, ts, id); st != StateDone {
			t.Fatalf("job %d (%s) finished %s, want done", i, id, st)
		}
	}
	<-watchDone
	if maxActive < 3 {
		t.Errorf("observed at most %d simultaneously active jobs, want >= 3 on the shared pool", maxActive)
	}

	// Every job's rows match its solo reference (memo never changes
	// row bytes, so all references run memo-off); memo-off reports
	// match too (memoized reports carry shared-memo counters, which
	// are daemon-wide by design).
	rows := make([][]byte, len(specs))
	for i, sp := range specs {
		rows[i] = getRows(t, ts, ids[i])
		refRows, refReport := referenceRun(t, base, scenarioDoc, refOptions{
			seed: sp.seed, devices: sp.devices, workers: sp.workers,
		})
		if !bytes.Equal(rows[i], refRows) {
			t.Errorf("job %d rows diverge from its solo run (%d vs %d bytes)", i, len(rows[i]), len(refRows))
		}
		if !sp.memo {
			if report := getReport(t, ts, ids[i]); report != refReport {
				t.Errorf("job %d report diverges:\n--- daemon\n%s--- ref\n%s", i, report, refReport)
			}
		}
	}

	// Seed isolation: same scenario, different seeds, different rows.
	if bytes.Equal(rows[0], rows[1]) {
		t.Error("jobs with different seeds produced identical rows")
	}
	// The two identical memoized jobs are bit-identical to each other.
	if !bytes.Equal(rows[2], rows[3]) {
		t.Error("identical memoized jobs diverged")
	}

	// Shared-cache bookkeeping: the identical jobs must have hit the
	// process-wide memo, every job the shared artifact cache, and the
	// drained pool must have released every slot.
	var m Metrics
	status, data := apiCall(t, ts, http.MethodGet, "/v1/metrics", nil)
	if status != http.StatusOK {
		t.Fatalf("GET /v1/metrics: %d %s", status, data)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if hits := m.Memo.FullHits + m.Memo.ComputeHits; hits == 0 {
		t.Error("identical concurrent memoized jobs produced zero shared-memo hits")
	}
	if m.ArtifactsCached == 0 {
		t.Error("no model artifacts cached after four jobs over one bundle")
	}
	if m.PoolSize != 4 {
		t.Errorf("pool size %d, want 4", m.PoolSize)
	}
	if m.PoolInUse != 0 {
		t.Errorf("%d pool slots still held after all jobs finished", m.PoolInUse)
	}
	if m.Jobs[string(StateDone)] != len(specs) {
		t.Errorf("metrics count %d done jobs, want %d", m.Jobs[string(StateDone)], len(specs))
	}
	if srv.Draining() {
		t.Error("server reports draining before Drain")
	}
}
