// Package experiments regenerates every table and figure of the
// paper's evaluation (§IV): Table I (BCM storage), Table II (model
// structure and accuracy), Fig. 7(a)–(c) (latency and energy under
// continuous and intermittent power across the four runtimes), Fig. 8
// (the first FC layer of MNIST at several BCM block sizes), and the
// checkpointing-overhead numbers of §IV-A.5.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"ehdl/internal/artifact/cache"
	"ehdl/internal/circulant"
	"ehdl/internal/core"
	"ehdl/internal/dataset"
	"ehdl/internal/device"
	"ehdl/internal/fixed"
	"ehdl/internal/fleet"
	"ehdl/internal/nn"
	"ehdl/internal/quant"
	"ehdl/internal/rad"
)

// Options scales the experiments: full size for cmd/paperbench,
// reduced for tests and quick benchmarks.
type Options struct {
	TrainSamples int
	TestSamples  int
	Epochs       int
	ADMMRounds   int
	Seed         int64

	// CacheDir enables the content-addressed trained-model cache:
	// PrepareTasks loads models whose (arch, dataset, options) key is
	// already cached instead of retraining, and stores fresh training
	// results for the next run. Empty disables caching. Cached results
	// are bit-identical to retraining (training is deterministic); see
	// internal/artifact/cache for the invalidation rules.
	CacheDir string
}

// FullOptions reproduces the paper-scale runs (minutes of training).
func FullOptions() Options {
	return Options{TrainSamples: 1200, TestSamples: 240, Epochs: 4, ADMMRounds: 3, Seed: 1}
}

// QuickOptions is sized for tests: small but still learns.
func QuickOptions() Options {
	return Options{TrainSamples: 300, TestSamples: 60, Epochs: 2, ADMMRounds: 1, Seed: 1}
}

// Task bundles one trained workload.
type Task struct {
	Name   string
	Set    *dataset.Set
	Arch   *nn.Arch
	Result *rad.Result
	// FromCache is true when the result was served by the trained-model
	// cache instead of a fresh training run. Cached results omit the
	// float network (Result.Net is nil); everything the experiments
	// consume — model, accuracies, prune report — is present.
	FromCache bool
}

// PrepareTasks trains the paper's three models through the full RAD
// pipeline. The tasks are fully independent — each owns its dataset,
// rngs (all seeded locally) and network — so they train concurrently;
// the returned order matches the spec order regardless of which
// finishes first, and the per-task results are bit-identical to a
// serial run. With Options.CacheDir set, tasks whose content key is
// already cached skip training entirely (Task.FromCache).
func PrepareTasks(opts Options) ([]*Task, error) {
	cfg := rad.DefaultPipelineConfig()
	cfg.Train.Epochs = opts.Epochs
	cfg.Train.Seed = opts.Seed
	cfg.ADMM.Rounds = opts.ADMMRounds
	cfg.ADMM.Train.Epochs = 1
	cfg.ADMM.Train.Seed = opts.Seed
	cfg.Seed = opts.Seed + 1

	specs := []struct {
		name string
		set  *dataset.Set
		arch *nn.Arch
	}{
		{"MNIST", dataset.MNIST(opts.TrainSamples, opts.TestSamples, opts.Seed), nn.MNISTArch(128, true)},
		{"HAR", dataset.HAR(opts.TrainSamples, opts.TestSamples, opts.Seed+1), nn.HARArch(128, 64)},
		{"OKG", dataset.OKG(opts.TrainSamples, opts.TestSamples, opts.Seed+2), nn.OKGArch(256, 128, 64)},
	}

	var store *cache.Cache
	if opts.CacheDir != "" {
		var err error
		if store, err = cache.Open(opts.CacheDir); err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
	}

	tasks := make([]*Task, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := specs[i]
			var key string
			if store != nil {
				key = cache.Spec{
					Dataset:      s.name,
					TrainSamples: opts.TrainSamples,
					TestSamples:  opts.TestSamples,
					Seed:         opts.Seed + int64(i),
					Arch:         s.arch,
					Config:       cfg,
				}.Key()
				// A cache read failure is a miss, never an abort: the
				// cache only saves time, so training proceeds and the
				// fresh result overwrites whatever was unreadable.
				if e, err := store.Load(key); err == nil && e != nil {
					tasks[i] = &Task{
						Name: s.name, Set: s.set, Arch: s.arch, FromCache: true,
						Result: &rad.Result{
							Arch:          s.arch,
							Model:         e.Model,
							FloatAccuracy: e.FloatAccuracy,
							QuantAccuracy: e.QuantAccuracy,
							Prune:         e.Prune,
							EstCycles:     e.EstCycles,
						},
					}
					return
				}
			}
			res, err := rad.Train(s.arch, s.set, cfg)
			if err != nil {
				errs[i] = fmt.Errorf("experiments: train %s: %w", s.name, err)
				return
			}
			if store != nil {
				// Likewise a store failure (full disk, read-only dir)
				// must not discard a completed training run; the entry
				// simply is not cached and the next run retrains.
				_ = store.Store(key, &cache.Entry{
					TaskName:      s.name,
					Model:         res.Model,
					FloatAccuracy: res.FloatAccuracy,
					QuantAccuracy: res.QuantAccuracy,
					Prune:         res.Prune,
					EstCycles:     res.EstCycles,
				})
			}
			tasks[i] = &Task{Name: s.name, Set: s.set, Arch: s.arch, Result: res}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return tasks, nil
}

// ---------------------------------------------------------------- Table I

// Table1Row is one block size of Table I.
type Table1Row struct {
	KernelBytes     int
	BlockSize       int
	CompressedBytes int
	ReductionPct    float64
}

// Table1 computes BCM compression for the paper's 512×512 FC layer.
func Table1() []Table1Row {
	var rows []Table1Row
	for _, k := range []int{16, 32, 64, 128, 256} {
		s := circulant.CompressionStats(512, 512, k)
		rows = append(rows, Table1Row{
			KernelBytes:     s.OriginalBytes,
			BlockSize:       k,
			CompressedBytes: s.CompressedByte,
			ReductionPct:    s.ReductionPct,
		})
	}
	return rows
}

// RenderTable1 formats Table I like the paper.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: BCM compression for 512x512 fully connected layer\n")
	fmt.Fprintf(&b, "%-14s %-10s %-18s %s\n", "Kernel Size", "Block", "Compressed", "Storage reduction")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14d %-10d %-18d %.2f%%\n",
			r.KernelBytes, r.BlockSize, r.CompressedBytes, r.ReductionPct)
	}
	return b.String()
}

// ---------------------------------------------------------------- Table II

// Table2Row describes one layer of one task.
type Table2Row struct {
	Task        string
	Layer       string
	Method      string
	Compression string
}

// Table2Result carries the rows plus the measured accuracies.
type Table2Result struct {
	Rows []Table2Row
	// Accuracy maps task name to {float, quantized} test accuracy.
	Accuracy map[string][2]float64
}

// Table2 reproduces Table II: the model structures and their measured
// accuracies on the synthetic tasks.
func Table2(tasks []*Task) Table2Result {
	out := Table2Result{Accuracy: map[string][2]float64{}}
	for _, t := range tasks {
		out.Accuracy[t.Name] = [2]float64{t.Result.FloatAccuracy, t.Result.QuantAccuracy}
		for _, s := range t.Arch.Specs {
			switch s.Kind {
			case "conv":
				method, comp := "—", "—"
				if s.PruneRatio > 0 {
					method = "Structured Pruning"
					comp = fmt.Sprintf("%.0fx", 1/(1-s.PruneRatio))
				}
				out.Rows = append(out.Rows, Table2Row{
					Task:        t.Name,
					Layer:       fmt.Sprintf("Conv %dx%dx%dx%d", s.OutC, s.InC, s.KH, s.KW),
					Method:      method,
					Compression: comp,
				})
			case "dense":
				out.Rows = append(out.Rows, Table2Row{
					Task:        t.Name,
					Layer:       fmt.Sprintf("FC %dx%d", s.In, s.Out),
					Method:      "—",
					Compression: "—",
				})
			case "bcm":
				out.Rows = append(out.Rows, Table2Row{
					Task:        t.Name,
					Layer:       fmt.Sprintf("FC %dx%d", s.In, s.Out),
					Method:      "BCM",
					Compression: fmt.Sprintf("%dx", s.K),
				})
			}
		}
	}
	return out
}

// RenderTable2 formats Table II.
func RenderTable2(r Table2Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II: Structure and Accuracy of DNN\n")
	fmt.Fprintf(&b, "%-7s %-22s %-20s %-12s %s\n", "Task", "Layer", "Compress Method", "Compression", "Accuracy (float/quant)")
	last := ""
	for _, row := range r.Rows {
		acc := ""
		if row.Task != last {
			a := r.Accuracy[row.Task]
			acc = fmt.Sprintf("%.0f%% / %.0f%%", 100*a[0], 100*a[1])
			last = row.Task
		}
		fmt.Fprintf(&b, "%-7s %-22s %-20s %-12s %s\n", row.Task, row.Layer, row.Method, row.Compression, acc)
	}
	return b.String()
}

// ---------------------------------------------------------------- Fig. 7

// Fig7Row is one (task, engine) measurement.
type Fig7Row struct {
	Task   string
	Engine core.EngineKind

	ContinuousMS float64
	ContinuousMJ float64

	Completed bool
	Boots     uint64
	// Diagnosis is the intermittent runner's verdict kind — the typed
	// reason behind each ok/X cell of the completion matrix.
	Diagnosis      string
	IntermittentMS float64 // active compute time
	WallMS         float64 // including recharge
	IntermittentMJ float64
	CheckpointMJ   float64
	RestoreMJ      float64

	Energy [device.NumCategories]float64 // continuous breakdown (nJ)
}

// Fig7 measures every engine on every task under both supplies. Every
// (task, engine) cell simulates its own independent device, so the
// sweep rides the fleet layer's bounded worker pool (fleet.ForEach);
// the row order (tasks outer, engines inner) and every device number
// are identical to a serial sweep.
func Fig7(tasks []*Task) ([]Fig7Row, error) {
	kinds := core.AllEngines()
	rows := make([]Fig7Row, len(tasks)*len(kinds))
	errs := make([]error, len(rows))
	fleet.ForEach(len(rows), 0, func(idx int) {
		errs[idx] = fig7Cell(&rows[idx], tasks[idx/len(kinds)], kinds[idx%len(kinds)])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// fig7Cell fills one (task, engine) measurement.
func fig7Cell(row *Fig7Row, t *Task, kind core.EngineKind) error {
	input := fixed.FromFloats(t.Set.Test[0].Input)
	*row = Fig7Row{Task: t.Name, Engine: kind}
	rep, err := core.InferContinuous(kind, t.Result.Model, input)
	if err != nil {
		return fmt.Errorf("experiments: %s/%s continuous: %w", t.Name, kind, err)
	}
	row.ContinuousMS = rep.Stats.ActiveSeconds * 1e3
	row.ContinuousMJ = rep.Stats.EnergymJ()
	row.Energy = rep.Stats.Energy

	irep, err := core.InferIntermittent(kind, t.Result.Model, input, core.PaperHarvestSetup())
	if err != nil {
		return fmt.Errorf("experiments: %s/%s intermittent: %w", t.Name, kind, err)
	}
	row.Completed = irep.Intermittent.Completed
	row.Boots = irep.Intermittent.Boots
	row.Diagnosis = string(irep.Intermittent.Diagnosis.Kind)
	row.IntermittentMS = irep.Stats.ActiveSeconds * 1e3
	row.WallMS = irep.Stats.WallSeconds * 1e3
	row.IntermittentMJ = irep.Stats.EnergymJ()
	row.CheckpointMJ = irep.Stats.Energy[device.CatCheckpoint] * 1e-6
	row.RestoreMJ = irep.Stats.Energy[device.CatRestore] * 1e-6
	return nil
}

// fig7Find returns the row for (task, engine).
func fig7Find(rows []Fig7Row, task string, kind core.EngineKind) *Fig7Row {
	for i := range rows {
		if rows[i].Task == task && rows[i].Engine == kind {
			return &rows[i]
		}
	}
	return nil
}

// RenderFig7a formats the continuous-power latency comparison.
func RenderFig7a(rows []Fig7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 7(a): Inference time on continuous power\n")
	fmt.Fprintf(&b, "%-7s %-10s %12s %14s\n", "Task", "Engine", "Latency(ms)", "vs ACE+FLEX")
	for _, task := range taskNames(rows) {
		ref := fig7Find(rows, task, core.EngineACEFLEX)
		for _, kind := range core.AllEngines() {
			r := fig7Find(rows, task, kind)
			fmt.Fprintf(&b, "%-7s %-10s %12.1f %13.2fx\n",
				task, kind, r.ContinuousMS, r.ContinuousMS/ref.ContinuousMS)
		}
	}
	return b.String()
}

// RenderFig7b formats the intermittent-power comparison.
func RenderFig7b(rows []Fig7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 7(b): Inference time on intermittent power (100uF)\n")
	fmt.Fprintf(&b, "%-7s %-10s %8s %12s %12s %7s %14s\n",
		"Task", "Engine", "Status", "Active(ms)", "Wall(ms)", "Boots", "vs ACE+FLEX")
	for _, task := range taskNames(rows) {
		ref := fig7Find(rows, task, core.EngineACEFLEX)
		for _, kind := range core.AllEngines() {
			r := fig7Find(rows, task, kind)
			status := "X"
			speed := "-"
			if r.Completed {
				status = "ok"
				speed = fmt.Sprintf("%.2fx", r.IntermittentMS/ref.IntermittentMS)
			}
			fmt.Fprintf(&b, "%-7s %-10s %8s %12.1f %12.1f %7d %14s\n",
				task, kind, status, r.IntermittentMS, r.WallMS, r.Boots, speed)
		}
	}
	return b.String()
}

// RenderFig7c formats the energy comparison with the per-category
// breakdown.
func RenderFig7c(rows []Fig7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 7(c): Energy and breakdown (continuous power)\n")
	fmt.Fprintf(&b, "%-7s %-10s %12s %12s   %s\n", "Task", "Engine", "Energy(mJ)", "vs ACE+FLEX", "breakdown")
	for _, task := range taskNames(rows) {
		ref := fig7Find(rows, task, core.EngineACEFLEX)
		for _, kind := range core.AllEngines() {
			r := fig7Find(rows, task, kind)
			var parts []string
			for c := device.Category(0); c < device.NumCategories; c++ {
				if r.Energy[c] > 0.005*r.ContinuousMJ*1e6 {
					parts = append(parts, fmt.Sprintf("%s %.0f%%", c, 100*r.Energy[c]*1e-6/r.ContinuousMJ))
				}
			}
			fmt.Fprintf(&b, "%-7s %-10s %12.3f %11.2fx   %s\n",
				task, kind, r.ContinuousMJ, r.ContinuousMJ/ref.ContinuousMJ, strings.Join(parts, ", "))
		}
	}
	return b.String()
}

func taskNames(rows []Fig7Row) []string {
	var names []string
	seen := map[string]bool{}
	for _, r := range rows {
		if !seen[r.Task] {
			seen[r.Task] = true
			names = append(names, r.Task)
		}
	}
	return names
}

// ---------------------------------------------------------------- Fig. 8

// Fig8Row is one variant of the first-FC-of-MNIST microbenchmark.
type Fig8Row struct {
	Variant   string
	LatencyMS float64
	EnergyMJ  float64
}

// Fig8 measures the 256×256 first FC layer of the MNIST model as a
// dense layer (plain ACE, no BCM) and with BCM blocks 32/64/128, all
// on the ACE runtime — the paper's isolation of the BCM win.
func Fig8(seed int64) ([]Fig8Row, error) {
	rng := rand.New(rand.NewSource(seed))
	input := make([]fixed.Q15, 256)
	for i := range input {
		input[i] = fixed.FromFloat(rng.Float64()*2 - 1)
	}
	variants := []struct {
		name string
		spec nn.LayerSpec
	}{
		{"ACE (dense)", nn.LayerSpec{Kind: "dense", In: 256, Out: 256}},
		{"BCM block 32", nn.LayerSpec{Kind: "bcm", In: 256, Out: 256, K: 32}},
		{"BCM block 64", nn.LayerSpec{Kind: "bcm", In: 256, Out: 256, K: 64}},
		{"BCM block 128", nn.LayerSpec{Kind: "bcm", In: 256, Out: 256, K: 128}},
	}
	var rows []Fig8Row
	for _, v := range variants {
		arch := &nn.Arch{Name: "fc1", InShape: [3]int{1, 1, 256}, NumClasses: 256,
			Specs: []nn.LayerSpec{v.spec}}
		net := arch.Build(rng)
		calib := [][]float64{fixed.Floats(input)}
		m, err := quant.Quantize(net, arch, calib)
		if err != nil {
			return nil, err
		}
		rep, err := core.InferContinuous(core.EngineACE, m, input)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig8Row{
			Variant:   v.name,
			LatencyMS: rep.Stats.ActiveSeconds * 1e3,
			EnergyMJ:  rep.Stats.EnergymJ(),
		})
	}
	return rows, nil
}

// RenderFig8 formats the microbenchmark.
func RenderFig8(rows []Fig8Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 8: First FC layer of MNIST (256x256) on ACE\n")
	fmt.Fprintf(&b, "%-15s %12s %12s\n", "Variant", "Latency(ms)", "Energy(mJ)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-15s %12.3f %12.4f\n", r.Variant, r.LatencyMS, r.EnergyMJ)
	}
	return b.String()
}

// ------------------------------------------------------- checkpoint cost

// CkptRow is the §IV-A.5 checkpointing-overhead accounting for one
// task.
type CkptRow struct {
	Task string
	// OverheadPct is (checkpoint+restore energy)/(total energy) of the
	// intermittent ACE+FLEX run.
	OverheadPct float64
	// ActiveVsContinuousPct is the active-latency increase of the
	// intermittent run over the continuous one.
	ActiveVsContinuousPct float64
}

// CheckpointOverhead extracts §IV-A.5's numbers from Fig. 7 rows.
func CheckpointOverhead(rows []Fig7Row) []CkptRow {
	var out []CkptRow
	for _, task := range taskNames(rows) {
		r := fig7Find(rows, task, core.EngineACEFLEX)
		if r == nil || !r.Completed {
			continue
		}
		out = append(out, CkptRow{
			Task:                  task,
			OverheadPct:           100 * (r.CheckpointMJ + r.RestoreMJ) / r.IntermittentMJ,
			ActiveVsContinuousPct: 100 * (r.IntermittentMS - r.ContinuousMS) / r.ContinuousMS,
		})
	}
	return out
}

// RenderCheckpointOverhead formats §IV-A.5.
func RenderCheckpointOverhead(rows []CkptRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Checkpointing overhead (ACE+FLEX, intermittent)\n")
	fmt.Fprintf(&b, "%-7s %22s %26s\n", "Task", "ckpt+restore energy", "active latency vs contin.")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-7s %21.2f%% %25.1f%%\n", r.Task, r.OverheadPct, r.ActiveVsContinuousPct)
	}
	return b.String()
}
