package experiments

import (
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"ehdl/internal/core"
	"ehdl/internal/fixed"
	"ehdl/internal/nn"
	"ehdl/internal/quant"
)

// TestParallelHarnessRace is the -race smoke test for the concurrent
// evaluation paths without paying for training: many goroutines share
// the fftfixed twiddle caches through private executors and
// independent device simulations, and every goroutine must see
// bit-identical logits and device numbers.
func TestParallelHarnessRace(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	arch := &nn.Arch{
		Name: "race", InShape: [3]int{1, 6, 6}, NumClasses: 4,
		Specs: []nn.LayerSpec{
			{Kind: "conv", InC: 1, InH: 6, InW: 6, OutC: 2, KH: 3, KW: 3},
			{Kind: "relu", N: 2 * 4 * 4},
			{Kind: "flatten", N: 32},
			{Kind: "bcm", In: 32, Out: 16, K: 8, WeightNorm: true},
			{Kind: "dense", In: 16, Out: 4},
		},
	}
	net := arch.Build(rng)
	calib := make([][]float64, 4)
	for i := range calib {
		x := make([]float64, arch.InLen())
		for j := range x {
			x[j] = rng.Float64()*2 - 1
		}
		calib[i] = x
	}
	m, err := quant.Quantize(net, arch, calib)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]fixed.Q15, arch.InLen())
	for i := range in {
		in[i] = fixed.FromFloat(rng.Float64()*2 - 1)
	}

	wantLogits := quant.NewExecutor(m).Forward(in)
	wantRep, err := core.InferContinuous(core.EngineACE, m, in)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			exe := quant.NewExecutor(m)
			for trial := 0; trial < 3; trial++ {
				got := exe.Forward(in)
				for i := range wantLogits {
					if got[i] != wantLogits[i] {
						t.Errorf("concurrent executor logit %d = %d, want %d", i, got[i], wantLogits[i])
						return
					}
				}
				rep, err := core.InferContinuous(core.EngineACE, m, in)
				if err != nil {
					t.Error(err)
					return
				}
				if rep.Stats.TotalEnergynJ != wantRep.Stats.TotalEnergynJ ||
					rep.Stats.ActiveSeconds != wantRep.Stats.ActiveSeconds {
					t.Errorf("concurrent device sim diverged: %v nJ vs %v nJ",
						rep.Stats.TotalEnergynJ, wantRep.Stats.TotalEnergynJ)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestTable1MatchesPaperExactly(t *testing.T) {
	rows := Table1()
	want := []struct {
		k, bytes int
		reduce   float64
	}{
		{16, 65536, 93.75}, {32, 32768, 96.88}, {64, 16384, 98.44},
		{128, 8192, 99.22}, {256, 4096, 99.61},
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, w := range want {
		r := rows[i]
		if r.BlockSize != w.k || r.CompressedBytes != w.bytes || r.KernelBytes != 1048576 {
			t.Errorf("row %d = %+v", i, r)
		}
		if d := r.ReductionPct - w.reduce; d > 0.01 || d < -0.01 {
			t.Errorf("row %d reduction %.2f, want %.2f", i, r.ReductionPct, w.reduce)
		}
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "99.61%") || !strings.Contains(out, "1048576") {
		t.Errorf("render missing values:\n%s", out)
	}
}

func TestFig8MonotonicInBlockSize(t *testing.T) {
	rows, err := Fig8(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("variants = %d", len(rows))
	}
	// Dense slowest; larger blocks strictly faster and cheaper.
	for i := 1; i < len(rows); i++ {
		if rows[i].LatencyMS >= rows[i-1].LatencyMS {
			t.Errorf("latency not monotonic: %s %.3f !< %s %.3f",
				rows[i].Variant, rows[i].LatencyMS, rows[i-1].Variant, rows[i-1].LatencyMS)
		}
		if rows[i].EnergyMJ >= rows[i-1].EnergyMJ {
			t.Errorf("energy not monotonic: %s vs %s", rows[i].Variant, rows[i-1].Variant)
		}
	}
	// The paper's FC-layer claim: block 128 beats dense by "tens of
	// times" on energy — require at least 10x.
	if rows[0].EnergyMJ < 10*rows[3].EnergyMJ {
		t.Errorf("BCM-128 energy win only %.1fx", rows[0].EnergyMJ/rows[3].EnergyMJ)
	}
	if !strings.Contains(RenderFig8(rows), "BCM block 128") {
		t.Error("render missing variant")
	}
}

// TestPrepareTasksWarmCacheSkipsTraining: the second PrepareTasks run
// with the same options and a shared cache dir must serve every task
// from the cache (Task.FromCache) with results identical to the cold
// run, and a changed option must miss again.
func TestPrepareTasksWarmCacheSkipsTraining(t *testing.T) {
	if testing.Short() {
		t.Skip("trains three (tiny) models")
	}
	opts := Options{
		TrainSamples: 60, TestSamples: 12, Epochs: 1, ADMMRounds: 1, Seed: 1,
		CacheDir: t.TempDir(),
	}
	cold, err := PrepareTasks(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range cold {
		if task.FromCache {
			t.Fatalf("%s served from a cold cache", task.Name)
		}
	}
	warm, err := PrepareTasks(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, task := range warm {
		if !task.FromCache {
			t.Fatalf("%s retrained despite a warm cache", task.Name)
		}
		want := cold[i].Result
		if !reflect.DeepEqual(want.Model, task.Result.Model) {
			t.Fatalf("%s: cached model differs from trained model", task.Name)
		}
		if task.Result.FloatAccuracy != want.FloatAccuracy ||
			task.Result.QuantAccuracy != want.QuantAccuracy ||
			task.Result.EstCycles != want.EstCycles ||
			!reflect.DeepEqual(task.Result.Prune, want.Prune) {
			t.Fatalf("%s: cached scalars differ", task.Name)
		}
	}

	// Any option that changes the training outcome must miss.
	opts.Seed = 2
	miss, err := PrepareTasks(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range miss {
		if task.FromCache {
			t.Fatalf("%s hit the cache across a seed change", task.Name)
		}
	}
}

func TestFullEvaluationPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("trains three models")
	}
	tasks, err := PrepareTasks(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 3 {
		t.Fatalf("tasks = %d", len(tasks))
	}

	t2 := Table2(tasks)
	if len(t2.Rows) != 12 { // 4 + 4 + 5 layers with parameters... count below
		// MNIST: conv,conv,bcm,dense = 4; HAR: conv,bcm,bcm,dense = 4;
		// OKG: conv,bcm,bcm,bcm,dense = 5 → 13.
		if len(t2.Rows) != 13 {
			t.Errorf("table2 rows = %d, want 13", len(t2.Rows))
		}
	}
	if !strings.Contains(RenderTable2(t2), "BCM") {
		t.Error("table2 render missing BCM")
	}

	rows, err := Fig7(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("fig7 rows = %d, want 15", len(rows))
	}
	// The Fig. 7(b) completion matrix, pinned to the seed: the
	// checkpointing runtimes complete, BASE and plain ACE DNF — and the
	// ledger-based runner must attribute every DNF to frozen progress
	// (their counters never move; their writes are pure re-execution),
	// never to a boot-limit timeout or a write-log misdetection.
	for _, r := range rows {
		switch r.Engine {
		case "base", "ace":
			if r.Completed {
				t.Errorf("%s/%s completed under intermittent power", r.Task, r.Engine)
			}
			if r.Diagnosis != "frozen-progress" {
				t.Errorf("%s/%s diagnosis = %q, want frozen-progress", r.Task, r.Engine, r.Diagnosis)
			}
			if r.Boots > 10 {
				t.Errorf("%s/%s burned %d boots before the DNF verdict", r.Task, r.Engine, r.Boots)
			}
		default:
			if !r.Completed {
				t.Errorf("%s/%s did not complete", r.Task, r.Engine)
			}
			if r.Diagnosis != "completed" {
				t.Errorf("%s/%s diagnosis = %q, want completed", r.Task, r.Engine, r.Diagnosis)
			}
		}
	}
	// Orderings of Fig 7(a): ace+flex fastest, sonic slowest.
	for _, task := range []string{"MNIST", "HAR", "OKG"} {
		ref := fig7Find(rows, task, "ace+flex")
		sonic := fig7Find(rows, task, "sonic")
		base := fig7Find(rows, task, "base")
		tails := fig7Find(rows, task, "tails")
		if !(ref.ContinuousMS < base.ContinuousMS && base.ContinuousMS <= tails.ContinuousMS &&
			tails.ContinuousMS < sonic.ContinuousMS) {
			t.Errorf("%s: ordering broken: flex %.1f base %.1f tails %.1f sonic %.1f",
				task, ref.ContinuousMS, base.ContinuousMS, tails.ContinuousMS, sonic.ContinuousMS)
		}
	}

	ck := CheckpointOverhead(rows)
	if len(ck) != 3 {
		t.Fatalf("checkpoint rows = %d", len(ck))
	}
	for _, r := range ck {
		if r.OverheadPct > 10 {
			t.Errorf("%s checkpoint overhead %.1f%% too high", r.Task, r.OverheadPct)
		}
		if r.ActiveVsContinuousPct > 10 {
			t.Errorf("%s intermittent latency overhead %.1f%%", r.Task, r.ActiveVsContinuousPct)
		}
	}
	for _, render := range []string{
		RenderFig7a(rows), RenderFig7b(rows), RenderFig7c(rows),
		RenderCheckpointOverhead(ck),
	} {
		if len(render) == 0 {
			t.Error("empty render")
		}
	}
}
