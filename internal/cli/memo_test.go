package cli

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ehdl/internal/fleet"
	"ehdl/internal/fleet/memo"
)

// TestQuantizedJitterScale: the quantized draw stays inside the
// jitter band, collapses to at most `steps` harvest classes, and
// lands exactly on bin midpoints — the property Tier-1 memoization
// keys on.
func TestQuantizedJitterScale(t *testing.T) {
	const jitter, steps = 0.3, 8
	seen := map[float64]int{}
	for i := 0; i < 2000; i++ {
		s := QuantizedJitterScale(7, i, jitter, steps)
		if s < 1-jitter || s >= 1+jitter {
			t.Fatalf("device %d: scale %v outside [%v, %v)", i, s, 1-jitter, 1+jitter)
		}
		seen[s]++
	}
	if len(seen) != steps {
		t.Fatalf("2000 draws over %d bins produced %d classes", steps, len(seen))
	}
	for s := range seen {
		// Midpoint form: s = 1 + jitter*(2*(k+0.5)/steps - 1) for integer k.
		k := ((s-1)/jitter + 1) / 2 * steps
		if diff := k - (float64(int(k)) + 0.5); diff > 1e-9 || diff < -1e-9 {
			t.Errorf("scale %v is not a bin midpoint (k=%v)", s, k)
		}
	}
	// steps <= 0 must be the continuous draw, bit-for-bit.
	for i := 0; i < 50; i++ {
		if QuantizedJitterScale(7, i, jitter, 0) != JitterScale(7, i, jitter) {
			t.Fatal("steps=0 diverges from the continuous JitterScale")
		}
	}
	if QuantizedJitterScale(7, 3, 0, steps) != 1 {
		t.Fatal("zero jitter must scale by exactly 1")
	}
}

// TestScenarioJitterSteps: a jitter_steps spec collapses the expanded
// fleet's profiles into at most that many equivalence classes while a
// continuous spec of the same size does not.
func TestScenarioJitterSteps(t *testing.T) {
	dir := t.TempDir()
	if err := SaveModel(filepath.Join(dir, "m.gob"), testMNISTModel(t, 9)); err != nil {
		t.Fatal(err)
	}
	write := func(name, stepsField string) string {
		doc := fmt.Sprintf(`{
  "defaults": { "model": "m.gob", "engine": "sonic" },
  "devices": [ { "name": "d", "count": 64, "jitter": 0.3%s } ]
}`, stepsField)
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	classes := func(path string) int {
		scenarios, err := LoadScenarios(path, 1)
		if err != nil {
			t.Fatal(err)
		}
		distinct := map[interface{}]bool{}
		for _, s := range scenarios {
			distinct[s.Setup.Profile] = true
		}
		return len(distinct)
	}
	if n := classes(write("quant.json", `, "jitter_steps": 4`)); n != 4 {
		t.Errorf("jitter_steps 4 over 64 devices: %d classes, want 4", n)
	}
	if n := classes(write("cont.json", "")); n < 32 {
		t.Errorf("continuous jitter over 64 devices: only %d classes", n)
	}

	_, err := LoadFleetSource(write("bad.json", `, "jitter_steps": -1`), 1)
	if err == nil || !strings.Contains(err.Error(), "jitter_steps") {
		t.Errorf("negative jitter_steps not rejected: %v", err)
	}
}

// TestScenarioMemoBlock: the file-level memo block parses, surfaces
// through FleetSource.Memo(), and rejects typos like everything else
// in the schema.
func TestScenarioMemoBlock(t *testing.T) {
	dir := t.TempDir()
	if err := SaveModel(filepath.Join(dir, "m.gob"), testMNISTModel(t, 9)); err != nil {
		t.Fatal(err)
	}
	doc := `{
  "memo": { "enabled": true, "capacity": 128 },
  "defaults": { "model": "m.gob", "engine": "sonic" },
  "devices": [ { "name": "d", "count": 2 } ]
}`
	path := filepath.Join(dir, "fleet.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := LoadFleetSource(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	ms := src.Memo()
	if ms == nil || !ms.Enabled || ms.Capacity != 128 {
		t.Fatalf("memo spec %+v, want enabled with capacity 128", ms)
	}

	bad := strings.Replace(doc, `"capacity"`, `"capactiy"`, 1)
	if _, err := DecodeScenarioFile(strings.NewReader(bad)); err == nil {
		t.Fatal("memo-block typo accepted")
	}

	// No memo block: the accessor reports nil so flags decide.
	plain, err := LoadFleetSource(writeScenarioBundle(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Memo() != nil {
		t.Fatal("absent memo block did not surface as nil")
	}
}

// TestArtifactStoreEviction: with the artifact LRU shrunk to one
// bundle, a fleet alternating between two model files thrashes the
// store — yet expansion stays deterministic and reloaded models are
// content-identical (same digest), so memo entries keyed on the
// digest survive eviction.
func TestArtifactStoreEviction(t *testing.T) {
	old := artifactCacheCap
	artifactCacheCap = 1
	defer func() { artifactCacheCap = old }()

	dir := t.TempDir()
	for _, name := range []string{"a.gob", "b.gob"} {
		if err := SaveModel(filepath.Join(dir, name), testMNISTModel(t, 9)); err != nil {
			t.Fatal(err)
		}
	}
	doc := `{
  "defaults": { "engine": "sonic" },
  "devices": [
    { "name": "a", "model": "a.gob" },
    { "name": "b", "model": "b.gob" },
    { "name": "a2", "model": "a.gob" }
  ]
}`
	path := filepath.Join(dir, "fleet.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := LoadFleetSource(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	a0, err := src.At(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.At(1); err != nil { // evicts a.gob
		t.Fatal(err)
	}
	again, err := src.At(0) // reloads a.gob
	if err != nil {
		t.Fatal(err)
	}
	if a0.Model == again.Model {
		t.Fatal("cap-1 store never evicted (pointers still shared)")
	}
	if a0.Model.ContentDigest() != again.Model.ContentDigest() {
		t.Fatal("reloaded artifact digests differently")
	}
	if !reflect.DeepEqual(a0.Input, again.Input) {
		t.Fatal("reloaded dataset produced different inputs")
	}

	// The thrashing source still streams to the same report as an
	// unbounded one.
	bounded, err := fleet.RunStream(src, fleet.StreamOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	artifactCacheCap = old
	fresh, err := LoadFleetSource(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	unbounded, err := fleet.RunStream(fresh, fleet.StreamOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	bounded.HostSeconds, unbounded.HostSeconds = 0, 0
	if !reflect.DeepEqual(bounded, unbounded) {
		t.Fatalf("bounded store changed the report:\n%+v\nvs\n%+v", bounded, unbounded)
	}
}

// TestScenarioMemoizedStreamMatches: the full CLI path — scenario
// file through LoadFleetSource into a memoized stream — reproduces
// the unmemoized report and rows bit-for-bit.
func TestScenarioMemoizedStreamMatches(t *testing.T) {
	path := writeScenarioBundle(t)
	run := func(m *memo.Memo) fleet.Report {
		src, err := LoadFleetSource(path, 1)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := fleet.RunStream(src, fleet.StreamOptions{Workers: 4, Memo: m})
		if err != nil {
			t.Fatal(err)
		}
		rep.HostSeconds = 0
		rep.Memo = nil
		return rep
	}
	plain := run(nil)
	memoized := run(memo.New(0))
	if !reflect.DeepEqual(plain, memoized) {
		t.Fatalf("memoized scenario stream diverges:\n%+v\nvs\n%+v", plain, memoized)
	}
}
