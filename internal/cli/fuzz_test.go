package cli

import (
	"strings"
	"testing"
)

// FuzzScenarioJSON throws arbitrary documents at the strict scenario
// decoder. Contract: never panic; on success the schema invariants
// hold (a non-empty device list with positive counts).
func FuzzScenarioJSON(f *testing.F) {
	f.Add(`{"devices":[{"count":2,"engine":"sonic"}]}`)
	f.Add(`{"seed":7,"devices":[{"count":1,"engine":"ace","cap_uF":100,
		"profile":{"kind":"sine","power_W":0.005,"period_s":0.1}}]}`)
	f.Add(`{"devices":[]}`)
	f.Add(`{"unknown_field":1}`)
	f.Add(`{"devices":[{"count":2}]} trailing`)
	f.Add(`[1,2,3]`)
	f.Add(`{`)
	f.Add(``)

	f.Fuzz(func(t *testing.T, doc string) {
		sf, err := DecodeScenarioFile(strings.NewReader(doc))
		if err != nil {
			return
		}
		if len(sf.Devices) == 0 {
			t.Fatalf("accepted a scenario with no devices: %q", doc)
		}
	})
}
