package cli

import (
	"strings"
	"testing"
	"time"
)

// fakeClock advances a fixed step on every read, making rate and ETA
// arithmetic exact.
type fakeClock struct {
	now  time.Time
	step time.Duration
}

func (c *fakeClock) Now() time.Time {
	c.now = c.now.Add(c.step)
	return c.now
}

func TestProgressPrinterRateAndETA(t *testing.T) {
	var buf strings.Builder
	clock := &fakeClock{now: time.Unix(1000, 0), step: 2 * time.Second}
	p := ProgressPrinter(&buf, clock, 0)

	// First tick: 2s elapsed, 100 done -> 50/s, 900 left -> ETA 18s.
	p(100, 1000)
	want := "ehfleet: 100/1000 devices (50/s, ETA 18s, 2s elapsed)\n"
	if buf.String() != want {
		t.Fatalf("tick 1:\n got %q\nwant %q", buf.String(), want)
	}

	// Completion tick reports ETA 0s regardless of rate.
	buf.Reset()
	p(1000, 1000)
	if !strings.Contains(buf.String(), "ETA 0s") {
		t.Fatalf("completion tick = %q, want ETA 0s", buf.String())
	}
}

func TestProgressPrinterResumedBaseline(t *testing.T) {
	var buf strings.Builder
	clock := &fakeClock{now: time.Unix(0, 0), step: time.Second}
	p := ProgressPrinter(&buf, clock, 400)

	// 1s elapsed, 500 done of which 400 were restored: rate counts
	// only the 100 simulated rows.
	p(500, 1000)
	if !strings.Contains(buf.String(), "(100/s,") {
		t.Fatalf("resumed tick = %q, want rate 100/s", buf.String())
	}
}

func TestProgressPrinterNilClockDefaults(t *testing.T) {
	var buf strings.Builder
	p := ProgressPrinter(&buf, nil, 0)
	p(1, 2) // must not panic; content depends on real elapsed time
	if !strings.Contains(buf.String(), "ehfleet: 1/2 devices") {
		t.Fatalf("output = %q", buf.String())
	}
}
