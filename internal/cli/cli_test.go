package cli

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ehdl/internal/artifact"
	"ehdl/internal/dataset"
	"ehdl/internal/nn"
	"ehdl/internal/quant"
)

// testMNISTModel quantizes a randomly initialized model with the
// MNIST input geometry and name, so DatasetFor resolves it (no
// training: CLI plumbing does not care about accuracy).
func testMNISTModel(t *testing.T, seed int64) *quant.Model {
	t.Helper()
	arch := &nn.Arch{
		Name: "mnist", InShape: [3]int{1, 28, 28}, NumClasses: 10,
		Specs: []nn.LayerSpec{
			{Kind: "conv", InC: 1, InH: 28, InW: 28, OutC: 2, KH: 5, KW: 5},
			{Kind: "pool", InC: 2, InH: 24, InW: 24, PoolSize: 2},
			{Kind: "relu", N: 2 * 12 * 12},
			{Kind: "flatten", N: 288},
			{Kind: "bcm", In: 288, Out: 32, K: 16, WeightNorm: true},
			{Kind: "relu", N: 32},
			{Kind: "dense", In: 32, Out: 10},
		},
	}
	rng := rand.New(rand.NewSource(seed))
	net := arch.Build(rng)
	calib := make([][]float64, 4)
	for i := range calib {
		x := make([]float64, arch.InLen())
		for j := range x {
			x[j] = rng.Float64()*2 - 1
		}
		calib[i] = x
	}
	m, err := quant.Quantize(net, arch, calib)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSaveLoadModel(t *testing.T) {
	m := testMNISTModel(t, 1)
	path := filepath.Join(t.TempDir(), "m.gob")
	if err := SaveModel(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "mnist" || len(got.Layers) != len(m.Layers) {
		t.Fatalf("loaded model mangled: %q, %d layers", got.Name, len(got.Layers))
	}
}

func TestSaveModelRejectsInvalid(t *testing.T) {
	m := testMNISTModel(t, 1)
	m.Layers[0].W = nil
	if err := SaveModel(filepath.Join(t.TempDir(), "m.gob"), m); err == nil {
		t.Fatal("saved a structurally invalid model")
	}
}

// TestLoadModelTypedErrors: the CLI-facing load path surfaces the
// artifact sentinels and names the offending file.
func TestLoadModelTypedErrors(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.gob")
	if err := SaveModel(good, testMNISTModel(t, 2)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), raw...)
	corrupt[len(corrupt)-200] ^= 0x08

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"not-an-artifact.bin", []byte("PK\x03\x04 definitely a zip"), artifact.ErrBadMagic},
		{"truncated.bin", raw[:200], artifact.ErrTruncated},
		{"corrupt.bin", corrupt, artifact.ErrChecksum},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.name)
			if err := os.WriteFile(path, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := LoadModel(path)
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
			if !strings.Contains(err.Error(), tc.name) {
				t.Fatalf("error does not name the file: %v", err)
			}
			// The raw decoder error ("gob: unexpected EOF" and kin)
			// must never reach the user.
			if strings.Contains(err.Error(), "gob:") {
				t.Fatalf("raw gob error leaked to the user: %v", err)
			}
		})
	}
}

func TestDatasetFor(t *testing.T) {
	m := testMNISTModel(t, 3)
	set, err := DatasetFor(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if set.InputLen() != 784 || len(set.Test) == 0 {
		t.Fatalf("unexpected dataset: len=%d test=%d", set.InputLen(), len(set.Test))
	}
	m.Name = "cifar"
	if _, err := DatasetFor(m, 1); err == nil {
		t.Fatal("resolved a dataset for an unknown model name")
	}
}

func TestSampleRange(t *testing.T) {
	set := dataset.MNIST(1, 8, 1)
	if _, err := Sample(set, 7); err != nil {
		t.Fatalf("valid index rejected: %v", err)
	}
	for _, idx := range []int{-1, 8, 1000} {
		_, err := Sample(set, idx)
		if err == nil {
			t.Fatalf("index %d accepted (test set has 8 samples)", idx)
		}
		if !strings.Contains(err.Error(), "0..7") {
			t.Fatalf("error does not name the valid range: %v", err)
		}
	}
	if _, err := Sample(&dataset.Set{Name: "empty"}, 0); err == nil {
		t.Fatal("empty test set accepted")
	}
}

func TestParseEngine(t *testing.T) {
	for _, good := range []string{"base", "sonic", "tails", "ace", "ace+flex"} {
		if _, err := ParseEngine(good); err != nil {
			t.Errorf("%s rejected: %v", good, err)
		}
	}
	if _, err := ParseEngine("warp"); err == nil {
		t.Error("unknown engine accepted")
	}
}
