package cli

import (
	"reflect"
	"testing"

	"ehdl/internal/fleet"
)

// TestFleetSourceLazyMatchesMaterialized: At(i) must build exactly
// the scenario LoadScenarios materializes at index i — the lazy and
// eager paths are the same fleet.
func TestFleetSourceLazyMatchesMaterialized(t *testing.T) {
	path := writeScenarioBundle(t)
	src, err := LoadFleetSource(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	eager, err := LoadScenarios(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if src.Len() != len(eager) {
		t.Fatalf("source has %d devices, materialized %d", src.Len(), len(eager))
	}
	// Out-of-order and repeated access must not matter.
	for _, i := range []int{4, 0, 2, 0, 3, 1, 4} {
		got, err := src.At(i)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, eager[i]) {
			t.Fatalf("At(%d) diverges from materialized:\n%+v\nvs\n%+v", i, got, eager[i])
		}
	}
	if _, err := src.At(src.Len()); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := src.At(-1); err == nil {
		t.Fatal("negative index accepted")
	}
}

// TestFleetSourceSharesLoadedModels: every device must point at the
// same loaded artifact and share the converted input slices — the
// memory contract that makes million-device fleets possible.
func TestFleetSourceSharesLoadedModels(t *testing.T) {
	path := writeScenarioBundle(t)
	src, err := LoadFleetSource(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := src.At(0)
	b, _ := src.At(src.Len() - 1)
	if a.Model != b.Model {
		t.Error("same model artifact loaded more than once")
	}
	big := src.Resize(1000)
	c, err := big.At(999)
	if err != nil {
		t.Fatal(err)
	}
	if c.Model != a.Model {
		t.Error("resized source re-loaded the model")
	}
}

// TestFleetSourceResize: cycling, naming and determinism of resized
// fleets.
func TestFleetSourceResize(t *testing.T) {
	path := writeScenarioBundle(t)
	src, err := LoadFleetSource(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	natural := src.Len() // 5: bench×2, window, solar, starved

	big := src.Resize(12)
	if big.Len() != 12 || src.Len() != natural {
		t.Fatalf("resize mutated the source: %d, %d", big.Len(), src.Len())
	}
	names := map[string]bool{}
	for i := 0; i < big.Len(); i++ {
		s, err := big.At(i)
		if err != nil {
			t.Fatal(err)
		}
		if names[s.Name] {
			t.Fatalf("duplicate device name %q in resized fleet", s.Name)
		}
		names[s.Name] = true
		// Device i cycles the declared fleet: same spec as i mod natural.
		base, _ := src.At(i % natural)
		if s.Engine != base.Engine {
			t.Fatalf("device %d engine %q, want %q (cycling broken)", i, s.Engine, base.Engine)
		}
	}
	// Clones of one spec are distinct devices: the jitter draw is
	// keyed by the global index.
	a, _ := big.At(0)
	b, _ := big.At(5)
	if reflect.DeepEqual(a.Setup.Profile, b.Setup.Profile) {
		t.Error("cycled clones received identical jittered profiles")
	}

	small := src.Resize(2)
	if small.Len() != 2 {
		t.Fatalf("truncated fleet has %d devices", small.Len())
	}
	if restored := small.Resize(0); restored.Len() != natural {
		t.Fatalf("Resize(0) = %d devices, want natural %d", restored.Len(), natural)
	}
}

// TestFleetSourceConcurrentAt: the source must be safe under the
// streaming pool (run with -race).
func TestFleetSourceConcurrentAt(t *testing.T) {
	path := writeScenarioBundle(t)
	src, err := LoadFleetSource(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	big := src.Resize(64)
	errs := make([]error, big.Len())
	fleet.ForEach(big.Len(), 8, func(i int) {
		_, errs[i] = big.At(i)
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("At(%d): %v", i, err)
		}
	}
}

// TestJitterScale: deterministic, within [1-j, 1+j], spread across
// indices, moved by the seed.
func TestJitterScale(t *testing.T) {
	seen := map[float64]bool{}
	for i := 0; i < 1000; i++ {
		s := JitterScale(1, i, 0.3)
		if s < 0.7 || s >= 1.3 {
			t.Fatalf("JitterScale(1, %d, 0.3) = %v outside [0.7, 1.3)", i, s)
		}
		if s != JitterScale(1, i, 0.3) {
			t.Fatal("jitter draw not deterministic")
		}
		seen[s] = true
	}
	if len(seen) < 990 {
		t.Fatalf("only %d distinct draws in 1000", len(seen))
	}
	if JitterScale(1, 7, 0.3) == JitterScale(2, 7, 0.3) {
		t.Error("seed ignored")
	}
	if JitterScale(1, 7, 0) != 1 {
		t.Error("zero jitter must not scale")
	}
}

// TestScenarioStreamedMatchesRun: the end-to-end regression — a
// scenario file streamed through RunStream aggregates bit-identically
// to fleet.Run over the materialized expansion, same seed.
func TestScenarioStreamedMatchesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a small fleet")
	}
	path := writeScenarioBundle(t)
	scenarios, err := LoadScenarios(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	ran := fleet.Run(scenarios, 4)

	src, err := LoadFleetSource(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := fleet.RunStream(src, fleet.StreamOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ran.Results, ran.HostSeconds = nil, 0
	streamed.HostSeconds = 0
	if !reflect.DeepEqual(ran, streamed) {
		t.Fatalf("streamed scenario aggregates diverge from Run:\n%+v\nvs\n%+v", ran, streamed)
	}
}

// TestResizedNamesCarryGlobalIndex pins the resized naming scheme the
// NDJSON rows expose.
func TestResizedNamesCarryGlobalIndex(t *testing.T) {
	path := writeScenarioBundle(t)
	src, err := LoadFleetSource(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	big := src.Resize(7)
	for _, tc := range []struct {
		i    int
		want string
	}{{0, "bench/0"}, {2, "window/2"}, {5, "bench/5"}, {6, "bench/6"}} {
		s, err := big.At(tc.i)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name != tc.want {
			t.Fatalf("device %d named %q, want %q", tc.i, s.Name, tc.want)
		}
	}
}
