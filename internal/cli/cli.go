// Package cli holds the model-artifact plumbing shared by every
// command-line tool (radtrain, ehsim, ehfleet, aceinfer): one load
// path that fully verifies the artifact container and the decoded
// model, one save path that writes atomically, the model-name →
// dataset mapping, and the input-validation helpers each CLI used to
// reimplement (differently, and sometimes not at all).
package cli

import (
	"fmt"

	"ehdl/internal/artifact"
	"ehdl/internal/core"
	"ehdl/internal/dataset"
	"ehdl/internal/quant"
)

// SaveModel atomically writes a model artifact (checksummed container,
// temp file + rename).
func SaveModel(path string, m *quant.Model) error {
	if err := m.Validate(); err != nil {
		return fmt.Errorf("refusing to save: %w", err)
	}
	return artifact.WriteFile(path, artifact.KindModel, m)
}

// LoadModel reads a model artifact, verifying the container (magic,
// format version, SHA-256) and the decoded model's structural
// consistency. Failures carry the file name and one of the artifact
// package's typed sentinels — never a raw "gob: ..." message.
func LoadModel(path string) (*quant.Model, error) {
	var m quant.Model
	if err := artifact.ReadFile(path, artifact.KindModel, &m); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("model %s: %w", path, err)
	}
	return &m, nil
}

// DatasetFor maps a deployed model to the dataset it was trained on,
// using the deterministic generators (the synthetic sets are fully
// reproducible from the seed, so "the test set" is well-defined on any
// host).
func DatasetFor(m *quant.Model, seed int64) (*dataset.Set, error) {
	switch m.Name {
	case "mnist", "mnist-dense":
		return dataset.MNIST(1, 64, seed), nil
	case "har", "har-dense":
		return dataset.HAR(1, 64, seed), nil
	case "okg", "okg-dense":
		return dataset.OKG(1, 64, seed), nil
	}
	return nil, fmt.Errorf("model %q has no matching dataset (want mnist/har/okg)", m.Name)
}

// Sample returns test sample idx of the set, or a friendly error
// naming the valid range (instead of the index-out-of-range panic a
// bare set.Test[idx] produces).
func Sample(set *dataset.Set, idx int) (*dataset.Sample, error) {
	if len(set.Test) == 0 {
		return nil, fmt.Errorf("dataset %s has no test samples", set.Name)
	}
	if idx < 0 || idx >= len(set.Test) {
		return nil, fmt.Errorf("sample %d out of range: %s has %d test samples (valid 0..%d)",
			idx, set.Name, len(set.Test), len(set.Test)-1)
	}
	return &set.Test[idx], nil
}

// ParseEngine validates a runtime name against the known engines.
func ParseEngine(s string) (core.EngineKind, error) {
	kind := core.EngineKind(s)
	for _, k := range core.AllEngines() {
		if k == kind {
			return kind, nil
		}
	}
	return "", fmt.Errorf("unknown engine %q (want one of %v)", s, core.AllEngines())
}
