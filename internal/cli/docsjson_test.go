package cli

// Pins every JSON artifact the documentation ships. The checked-in
// scenario files under examples/scenarios/ must compile end to end
// (models, traces and all), and every ```json fenced block in the
// repository's markdown must be valid JSON — scenario-shaped snippets
// are additionally held to the strict schema, and ```ndjson blocks
// are validated line by line. A doc edit that breaks a copy-pasteable
// example fails go test ./... (and therefore CI).

import (
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// repoRoot walks up from the package directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}

// TestCheckedInScenarioFilesCompile: every scenario document shipped
// under examples/scenarios/ must not just parse but fully compile —
// traces load, profiles validate, every device builds. Model
// artifacts are generated, never committed (*.gob is gitignored), so
// each document is compiled from a temp bundle holding the real
// document and traces plus a freshly quantized mnist.gob standing in
// for the one `radtrain` writes.
func TestCheckedInScenarioFilesCompile(t *testing.T) {
	root := repoRoot(t)
	dir := filepath.Join(root, "examples", "scenarios")
	matches, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no scenario files under examples/scenarios/ — the glob or the examples moved")
	}

	bundle := t.TempDir()
	traces, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	for _, trace := range traces {
		raw, err := os.ReadFile(trace)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(bundle, filepath.Base(trace)), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := SaveModel(filepath.Join(bundle, "mnist.gob"), testMNISTModel(t, 21)); err != nil {
		t.Fatal(err)
	}

	for _, path := range matches {
		t.Run(filepath.Base(path), func(t *testing.T) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			staged := filepath.Join(bundle, filepath.Base(path))
			if err := os.WriteFile(staged, raw, 0o644); err != nil {
				t.Fatal(err)
			}
			src, err := LoadFleetSource(staged, 1)
			if err != nil {
				t.Fatal(err)
			}
			if src.Len() < 1 {
				t.Fatal("compiled to an empty fleet")
			}
			// Every declared spec must actually build a device.
			for i := 0; i < src.Len(); i += 1 + (src.Len()-1)/16 {
				if _, err := src.At(i); err != nil {
					t.Fatalf("device %d: %v", i, err)
				}
			}
			if _, err := src.At(src.Len() - 1); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// markdownFiles returns every .md file in the repo (skipping VCS and
// build dirs).
func markdownFiles(t *testing.T, root string) []string {
	t.Helper()
	var files []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "bin", "testdata":
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".md") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// fencedBlocks extracts ```<lang> code fences from markdown.
func fencedBlocks(text, lang string) []string {
	var blocks []string
	lines := strings.Split(text, "\n")
	for i := 0; i < len(lines); i++ {
		if strings.TrimSpace(lines[i]) != "```"+lang {
			continue
		}
		var body []string
		for i++; i < len(lines) && strings.TrimSpace(lines[i]) != "```"; i++ {
			body = append(body, lines[i])
		}
		blocks = append(blocks, strings.Join(body, "\n"))
	}
	return blocks
}

// TestDocJSONSnippetsParse: every ```json block in the docs is valid
// JSON; blocks that look like scenario documents must survive the
// strict schema decode (unknown fields rejected), so the docs cannot
// drift from the loader. ```ndjson blocks are valid JSON per line.
func TestDocJSONSnippetsParse(t *testing.T) {
	root := repoRoot(t)
	jsonBlocks, ndjsonBlocks := 0, 0
	for _, path := range markdownFiles(t, root) {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		rel, _ := filepath.Rel(root, path)
		for bi, block := range fencedBlocks(string(raw), "json") {
			jsonBlocks++
			name := fmt.Sprintf("%s block %d", rel, bi)
			var doc any
			if err := json.Unmarshal([]byte(block), &doc); err != nil {
				t.Errorf("%s: invalid JSON: %v\n%s", name, err, block)
				continue
			}
			if obj, ok := doc.(map[string]any); ok {
				if _, isScenario := obj["devices"]; isScenario {
					if _, err := DecodeScenarioFile(strings.NewReader(block)); err != nil {
						t.Errorf("%s: scenario snippet fails the strict schema: %v", name, err)
					}
				}
			}
		}
		for bi, block := range fencedBlocks(string(raw), "ndjson") {
			ndjsonBlocks++
			for li, line := range strings.Split(block, "\n") {
				line = strings.TrimSpace(line)
				if line == "" {
					continue
				}
				if !json.Valid([]byte(line)) {
					t.Errorf("%s ndjson block %d line %d: invalid JSON: %s", rel, bi, li, line)
				}
			}
		}
	}
	// The README ships at least one scenario snippet and one NDJSON
	// sample; zero found means the fence scanner (or the docs) broke.
	if jsonBlocks == 0 {
		t.Error("no ```json blocks found in any markdown file")
	}
	if ndjsonBlocks == 0 {
		t.Error("no ```ndjson blocks found in any markdown file")
	}
}
