package cli

// Run fingerprints: the scenario/config identity embedded in fleet
// checkpoints and shard artifacts. Resuming a checkpoint or merging
// shards is only sound against the exact same run — same scenario
// file bytes (or flag shape and model content), same expansion seed,
// same resolved fleet size — so the CLIs hash that identity here and
// internal/fleet rejects any state whose fingerprint differs
// (fleet.ErrCheckpointMismatch, fleet.ErrShardMismatch).

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
)

// FleetFingerprint hashes an ordered list of identity parts into a
// run fingerprint (hex SHA-256). Parts are length-prefixed, so two
// distinct part lists never collide by concatenation.
func FleetFingerprint(parts ...string) string {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ScenarioFingerprint is the run identity of a scenario-file fleet:
// the file's exact bytes, the expansion seed, and the resolved fleet
// size (after any -n resize). A checkpoint or shard taken under a
// different file revision, seed or size is rejected at resume/merge
// time instead of silently producing mixed output.
func ScenarioFingerprint(path string, seed int64, n int) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("fingerprinting %s: %w", path, err)
	}
	return ScenarioBytesFingerprint(data, seed, n), nil
}

// ScenarioBytesFingerprint is ScenarioFingerprint over an in-memory
// scenario document — the fleet service fingerprints the POSTed body
// bytes it persisted, so a daemon restart resumes against exactly the
// submitted document, byte for byte.
func ScenarioBytesFingerprint(data []byte, seed int64, n int) string {
	sum := sha256.Sum256(data)
	return FleetFingerprint(
		"scenario",
		hex.EncodeToString(sum[:]),
		fmt.Sprintf("seed=%d", seed),
		fmt.Sprintf("n=%d", n),
	)
}
