package cli

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ehdl/internal/fleet"
)

// writeScenarioBundle lays out a self-contained scenario directory: a
// model artifact, a harvest trace, and a scenario document with >= 3
// heterogeneous (engine × capacitance × profile × count) device specs.
func writeScenarioBundle(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if err := SaveModel(filepath.Join(dir, "mnist.gob"), testMNISTModel(t, 9)); err != nil {
		t.Fatal(err)
	}
	trace := "0,0.004\n0.05,0.006\n0.1,0.005\n"
	if err := os.WriteFile(filepath.Join(dir, "solar.csv"), []byte(trace), 0o644); err != nil {
		t.Fatal(err)
	}
	doc := `{
  "defaults": { "model": "mnist.gob", "engine": "ace+flex" },
  "devices": [
    { "name": "bench", "count": 2, "jitter": 0.3 },
    { "name": "window", "engine": "tails", "cap_f": 220e-6,
      "profile": { "kind": "sine", "power_w": 6e-3, "period_s": 0.2 } },
    { "name": "solar", "cap_f": 150e-6, "sample": 5,
      "profile": { "kind": "trace", "trace": "solar.csv", "repeat": true } },
    { "name": "starved", "engine": "ace", "cap_f": 2e-6,
      "profile": { "kind": "const", "power_w": 4e-4 } }
  ]
}`
	if err := os.WriteFile(filepath.Join(dir, "fleet.json"), []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, "fleet.json")
}

// TestScenarioExpansion: heterogeneous specs expand deterministically
// and the fleet runs them to a deterministic report.
func TestScenarioExpansion(t *testing.T) {
	path := writeScenarioBundle(t)
	scenarios, err := LoadScenarios(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 5 { // bench ×2 + window + solar + starved
		t.Fatalf("expanded %d scenarios, want 5", len(scenarios))
	}
	names := []string{"bench/0", "bench/1", "window", "solar", "starved"}
	engines := []string{"ace+flex", "ace+flex", "tails", "ace+flex", "ace"}
	for i, s := range scenarios {
		if s.Name != names[i] {
			t.Errorf("scenario %d named %q, want %q", i, s.Name, names[i])
		}
		if string(s.Engine) != engines[i] {
			t.Errorf("scenario %d engine %q, want %q", i, s.Engine, engines[i])
		}
		if s.Model == nil || len(s.Input) != 784 {
			t.Errorf("scenario %d missing model or input", i)
		}
	}
	// The two bench devices share everything except the jitter draw.
	if scenarios[0].Setup.Profile == scenarios[1].Setup.Profile {
		t.Error("jittered devices received identical profiles")
	}
	// All models point at the same loaded artifact (loaded once).
	if scenarios[0].Model != scenarios[2].Model {
		t.Error("same model path loaded more than once")
	}

	// Same (file, seed) → identical expansion.
	again, err := LoadScenarios(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scenarios, again) {
		t.Fatal("expansion is not deterministic")
	}
	// A different seed must move the jittered profiles.
	other, err := LoadScenarios(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(scenarios[0].Setup.Profile, other[0].Setup.Profile) {
		t.Fatal("jitter ignored the seed")
	}
}

func TestScenarioFleetRunDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a small fleet")
	}
	path := writeScenarioBundle(t)
	run := func() []fleet.Result {
		scenarios, err := LoadScenarios(path, 1)
		if err != nil {
			t.Fatal(err)
		}
		rep := fleet.Run(scenarios, 0)
		for i := range rep.Results {
			rep.Results[i].Err = nil // errors carry no comparable state
		}
		return rep.Results
	}
	a := run()
	b := run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fleet runs diverged:\n%+v\nvs\n%+v", a, b)
	}
	// The starved 2 µF device can never finish; the healthy ones must.
	for _, r := range a {
		if r.Name == "starved" {
			if r.Completed {
				t.Error("starved device completed on a 2 uF capacitor")
			}
		} else if !r.Completed {
			t.Errorf("device %s (%s) did not complete", r.Name, r.Engine)
		}
	}
}

// TestScenarioUnnamedSpecsGetDistinctNames: report rows from two
// anonymous device specs must be distinguishable.
func TestScenarioUnnamedSpecsGetDistinctNames(t *testing.T) {
	dir := t.TempDir()
	if err := SaveModel(filepath.Join(dir, "mnist.gob"), testMNISTModel(t, 12)); err != nil {
		t.Fatal(err)
	}
	doc := `{"defaults": {"model": "mnist.gob"},
		"devices": [{}, {"engine": "tails"}]}`
	path := filepath.Join(dir, "anon.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	scenarios, err := LoadScenarios(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 2 || scenarios[0].Name == scenarios[1].Name {
		t.Fatalf("anonymous specs collided: %+v", scenarios)
	}
}

// TestScenarioExplicitZeroPower: an explicit 0 must reach the profile
// (a dead source is a legitimate DNF scenario), not be silently
// replaced by the 5 mW paper default.
func TestScenarioExplicitZeroPower(t *testing.T) {
	dir := t.TempDir()
	if err := SaveModel(filepath.Join(dir, "mnist.gob"), testMNISTModel(t, 11)); err != nil {
		t.Fatal(err)
	}
	doc := `{"devices": [{"model": "mnist.gob",
		"profile": {"kind": "const", "power_w": 0}}]}`
	path := filepath.Join(dir, "dead.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	scenarios, err := LoadScenarios(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	prof := scenarios[0].Setup.Profile
	if got := prof.PowerAt(0); got != 0 {
		t.Fatalf("explicit power_w 0 became %g W", got)
	}
	// An explicit degenerate duty must fail validation, not default.
	doc = `{"devices": [{"model": "mnist.gob",
		"profile": {"kind": "square", "power_w": 1e-3, "duty": 0}}]}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadScenarios(path, 1); err == nil {
		t.Fatal("duty 0 silently replaced by the default")
	}
}

// TestScenarioErrors drives the loader over malformed documents; every
// failure must name the problem (and the device where it applies).
func TestScenarioErrors(t *testing.T) {
	dir := t.TempDir()
	if err := SaveModel(filepath.Join(dir, "mnist.gob"), testMNISTModel(t, 10)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad.gob"), []byte("not an artifact"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name, doc, wantSub string
	}{
		{"empty devices", `{"devices": []}`, "no devices"},
		{"unknown field (typo)", `{"devices": [{"modle": "mnist.gob"}]}`, "unknown field"},
		{"no model anywhere", `{"devices": [{"name": "a"}]}`, "no model path"},
		{"unknown engine", `{"devices": [{"model": "mnist.gob", "engine": "warp"}]}`, "unknown engine"},
		{"bad count", `{"devices": [{"model": "mnist.gob", "count": 0}]}`, "count"},
		{"bad jitter", `{"devices": [{"model": "mnist.gob", "jitter": 1.5}]}`, "jitter"},
		{"sample out of range", `{"devices": [{"model": "mnist.gob", "sample": 640}]}`, "out of range"},
		{"unknown profile kind", `{"devices": [{"model": "mnist.gob", "profile": {"kind": "laser"}}]}`, "profile kind"},
		{"trace without path", `{"devices": [{"model": "mnist.gob", "profile": {"kind": "trace"}}]}`, "trace"},
		{"bad duty", `{"devices": [{"model": "mnist.gob", "profile": {"kind": "square", "power_w": 1e-3, "duty": 2}}]}`, "Duty"},
		{"corrupt model artifact", `{"devices": [{"model": "bad.gob"}]}`, "artifact"},
		{"missing model file", `{"devices": [{"model": "nope.gob"}]}`, "nope.gob"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, "case.json")
			if err := os.WriteFile(path, []byte(tc.doc), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := LoadScenarios(path, 1)
			if err == nil {
				t.Fatal("malformed scenario accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestScenarioRelativePaths: model and trace paths resolve against
// the scenario file's directory, not the process working directory.
func TestScenarioRelativePaths(t *testing.T) {
	path := writeScenarioBundle(t)
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	other := t.TempDir()
	if err := os.Chdir(other); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)
	if _, err := LoadScenarios(path, 1); err != nil {
		t.Fatalf("relative paths broke away from the scenario dir: %v", err)
	}
}

// TestScenarioRunnerOverrides: max_boots / stagnation_limit compile
// into a per-spec intermittent.Runner, with defaults inherited and
// degenerate values rejected.
func TestScenarioRunnerOverrides(t *testing.T) {
	dir := t.TempDir()
	if err := SaveModel(filepath.Join(dir, "mnist.gob"), testMNISTModel(t, 13)); err != nil {
		t.Fatal(err)
	}
	// Degenerate values must be rejected by the semantic guards in
	// compile() (plain JSON integers, so decoding succeeds), with the
	// offending field named.
	path := filepath.Join(dir, "runner.json")
	for _, bad := range []struct{ doc, field string }{
		{`{"devices": [{"model": "mnist.gob", "max_boots": 0}]}`, "max_boots"},
		{`{"devices": [{"model": "mnist.gob", "stagnation_limit": 0}]}`, "stagnation_limit"},
		{`{"devices": [{"model": "mnist.gob", "stagnation_limit": -3}]}`, "stagnation_limit"},
	} {
		if err := os.WriteFile(path, []byte(bad.doc), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadFleetSource(path, 1); err == nil || !strings.Contains(err.Error(), bad.field) {
			t.Fatalf("degenerate %s accepted: %v", bad.field, err)
		}
	}

	doc := `{
		"defaults": {"model": "mnist.gob", "max_boots": 50000},
		"devices": [
			{"name": "weak", "stagnation_limit": 32},
			{"name": "plain"}
	]}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := LoadFleetSource(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	weak, err := src.At(0)
	if err != nil {
		t.Fatal(err)
	}
	if weak.Setup.Runner == nil || weak.Setup.Runner.MaxBoots != 50000 ||
		weak.Setup.Runner.StagnationLimit != 32 {
		t.Fatalf("weak runner = %+v, want MaxBoots 50000 / StagnationLimit 32", weak.Setup.Runner)
	}
	plain, err := src.At(1)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Setup.Runner == nil || plain.Setup.Runner.MaxBoots != 50000 ||
		plain.Setup.Runner.StagnationLimit != 0 {
		t.Fatalf("plain runner = %+v, want inherited MaxBoots 50000 with default stagnation", plain.Setup.Runner)
	}
}
