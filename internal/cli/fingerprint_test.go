package cli

import (
	"os"
	"path/filepath"
	"testing"
)

// TestFleetFingerprint: deterministic, and the length prefixing means
// no two distinct part lists collide by concatenation.
func TestFleetFingerprint(t *testing.T) {
	if FleetFingerprint("a", "b") != FleetFingerprint("a", "b") {
		t.Fatal("fingerprint is not deterministic")
	}
	if FleetFingerprint("ab", "c") == FleetFingerprint("a", "bc") {
		t.Fatal("part boundaries do not affect the fingerprint")
	}
	if FleetFingerprint("a") == FleetFingerprint("a", "") {
		t.Fatal("trailing empty part does not affect the fingerprint")
	}
	if FleetFingerprint("x") == FleetFingerprint("y") {
		t.Fatal("distinct parts collide")
	}
}

// TestScenarioFingerprint: identity covers the file bytes, the seed
// and the resolved fleet size — change any one and resume/merge must
// see a different run.
func TestScenarioFingerprint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.json")
	if err := os.WriteFile(path, []byte(`{"devices":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := ScenarioFingerprint(path, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	same, err := ScenarioFingerprint(path, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if base != same {
		t.Fatal("same (file, seed, n) produced different fingerprints")
	}
	if fp, _ := ScenarioFingerprint(path, 2, 100); fp == base {
		t.Fatal("seed not covered")
	}
	if fp, _ := ScenarioFingerprint(path, 1, 101); fp == base {
		t.Fatal("fleet size not covered")
	}
	if err := os.WriteFile(path, []byte(`{"devices":[] }`), 0o644); err != nil {
		t.Fatal(err)
	}
	if fp, _ := ScenarioFingerprint(path, 1, 100); fp == base {
		t.Fatal("file bytes not covered")
	}
	if _, err := ScenarioFingerprint(filepath.Join(dir, "missing.json"), 1, 100); err == nil {
		t.Fatal("missing file accepted")
	}
}
