package cli

// This file compiles a scenario file into a lazy fleet.Source: every
// cross-device resource — model artifacts, datasets, converted test
// inputs, harvest traces — is loaded and validated once up front and
// then served from a bounded LRU, and individual fleet.Scenarios are
// built on demand. A million-device fleet costs O(cache capacity)
// memory to hold, not O(devices) and not O(distinct artifacts):
// cmd/ehfleet streams scenarios straight from the source into
// fleet.RunStream. Per-device randomness (the jitter draw) is keyed
// by (seed, global device index), so expansion is deterministic and
// order-free — device i is the same scenario whether the fleet is
// materialized, streamed, or resized.

import (
	"fmt"
	"math"
	"path/filepath"
	"sort"
	"sync"

	"ehdl/internal/core"
	"ehdl/internal/dataset"
	"ehdl/internal/fixed"
	"ehdl/internal/fleet"
	"ehdl/internal/fleet/memo"
	"ehdl/internal/harvest"
	"ehdl/internal/intermittent"
	"ehdl/internal/quant"
)

// compiledSpec is one fully-resolved device spec: everything shared
// by its expanded devices. The model artifact is referenced by
// resolved path and fetched through the source's bounded store, so a
// fleet mixing hundreds of artifacts does not pin them all.
type compiledSpec struct {
	name        string
	count       int
	engine      core.EngineKind
	cfg         harvest.Config
	jitter      float64
	jitterSteps int
	prof        ProfileSpec
	trace       *harvest.TraceProfile // preloaded for kind "trace"
	modelPath   string                // resolved artifact path (store key)
	sample      *int                  // explicit test-sample override
	runner      *intermittent.Runner  // boot-budget overrides (nil = defaults)
}

// FleetSource is a compiled scenario file: a lazy, concurrency-safe
// fleet.Source over the declared (or resized) device fleet.
type FleetSource struct {
	n       int // fleet size (== natural unless resized)
	natural int // devices the file declares
	seed    int64
	specs   []compiledSpec
	cum     []int // cum[k] = first natural index of spec k; len(specs)+1
	cache   *ArtifactCache
	memo    *MemoSpec // the file's "memo" block (nil when absent)
}

// LoadFleetSource parses and compiles the scenario file at path.
// Every model artifact, dataset and trace is loaded and validated
// here, once; the returned source builds scenarios on demand and is
// safe for concurrent At calls. seed drives the jitter draws and the
// dataset generators, so the same (file, seed) pair always describes
// an identical fleet.
func LoadFleetSource(path string, seed int64) (*FleetSource, error) {
	sf, err := ParseScenarioFile(path)
	if err != nil {
		return nil, err
	}
	src, err := CompileFleetSource(sf, filepath.Dir(path), seed, nil)
	if err != nil {
		return nil, fmt.Errorf("scenario file %s: %w", path, err)
	}
	return src, nil
}

// CompileFleetSource compiles an already-parsed scenario document
// into a fleet source. Relative model and trace paths resolve against
// baseDir. cache, when non-nil, is a shared ArtifactCache — the fleet
// service passes one process-wide cache so concurrent jobs naming the
// same artifacts load them once; nil gets a private cache, matching
// LoadFleetSource's one-shot CLI behaviour.
func CompileFleetSource(sf *ScenarioFile, baseDir string, seed int64, cache *ArtifactCache) (*FleetSource, error) {
	if cache == nil {
		cache = newArtifactCache()
	}
	c := &compiler{
		baseDir: baseDir,
		seed:    seed,
		cache:   cache,
		traces:  map[string]*harvest.TraceProfile{},
	}
	src := &FleetSource{seed: seed, cum: []int{0}, cache: cache, memo: sf.Memo}
	for di := range sf.Devices {
		spec, err := c.compile(&sf.Defaults, &sf.Devices[di], di)
		if err != nil {
			return nil, fmt.Errorf("device %d (%s): %w",
				di, specName(&sf.Devices[di], di), err)
		}
		src.specs = append(src.specs, spec)
		src.natural += spec.count
		src.cum = append(src.cum, src.natural)
	}
	src.n = src.natural
	return src, nil
}

// Len implements fleet.Source.
func (s *FleetSource) Len() int { return s.n }

// Memo returns the scenario file's "memo" block, nil when the file
// declares none. cmd/ehfleet resolves it against the -memo flags.
func (s *FleetSource) Memo() *MemoSpec { return s.memo }

// Resize returns a view of the source with exactly n devices: the
// declared fleet is truncated or cycled (device i maps to declared
// device i mod the natural size), with jitter and sample cycling
// keyed by the global index so every clone is a distinct device.
// Resized fleets name devices "spec/i" with the global index. n <= 0
// restores the natural size. The artifact cache is shared with the
// original source.
func (s *FleetSource) Resize(n int) *FleetSource {
	out := *s
	if n <= 0 {
		n = s.natural
	}
	out.n = n
	return &out
}

// At implements fleet.Source: it builds scenario i from the compiled
// specs. The model, dataset and converted inputs come from the
// bounded artifact store (shared across every device that uses them,
// reloaded deterministically if evicted); only the per-device profile
// is constructed here.
func (s *FleetSource) At(i int) (fleet.Scenario, error) {
	if i < 0 || i >= s.n {
		return fleet.Scenario{}, fmt.Errorf("device %d out of range (fleet has %d)", i, s.n)
	}
	base := i % s.natural
	k := sort.Search(len(s.specs), func(k int) bool { return s.cum[k+1] > base })
	spec := &s.specs[k]

	b, err := s.cache.bundle(spec.modelPath, s.seed)
	if err != nil {
		return fleet.Scenario{}, err
	}
	profile, err := s.buildProfile(spec, i)
	if err != nil {
		return fleet.Scenario{}, err
	}
	sampleIdx := i % len(b.inputs)
	if spec.sample != nil {
		sampleIdx = *spec.sample
	}
	name := spec.name
	switch {
	case s.n != s.natural:
		name = fmt.Sprintf("%s/%d", spec.name, i)
	case spec.count > 1:
		name = fmt.Sprintf("%s/%d", spec.name, base-s.cum[k])
	}
	return fleet.Scenario{
		Name:   name,
		Engine: spec.engine,
		Model:  b.model,
		Input:  b.inputs[sampleIdx],
		Setup:  core.HarvestSetup{Config: spec.cfg, Profile: profile, Runner: spec.runner},
	}, nil
}

func (s *FleetSource) buildProfile(spec *compiledSpec, i int) (harvest.Profile, error) {
	scale := QuantizedJitterScale(s.seed, i, spec.jitter, spec.jitterSteps)
	return BuildProfile(spec.prof.Kind,
		orDefault(spec.prof.PowerW, defaultPowerW),
		orDefault(spec.prof.Period, defaultPeriod),
		orDefault(spec.prof.Duty, defaultDuty),
		spec.trace, scale)
}

// JitterScale is the deterministic per-device harvest-power spread:
// a uniform draw in [1-jitter, 1+jitter] keyed by (seed, device
// index) alone, so any device of any fleet size can be built
// independently — no shared rng stream to replay.
func JitterScale(seed int64, i int, jitter float64) float64 {
	return QuantizedJitterScale(seed, i, jitter, 0)
}

// QuantizedJitterScale is JitterScale with the draw snapped to the
// midpoints of steps equal-width bins over [0, 1) (steps <= 0 keeps
// the continuous draw). Quantization trades waveform variety for
// fleet-memo hit rate: a 10k-device spec with jitter_steps 32 has at
// most 32 distinct harvest fingerprints instead of 10k, so all but
// one device per bin replay from the Tier-1 cache while the fleet
// still spans the full ±jitter spread.
func QuantizedJitterScale(seed int64, i int, jitter float64, steps int) float64 {
	if jitter == 0 {
		return 1
	}
	u := unitFloat(seed, i)
	if steps > 0 {
		u = (math.Floor(u*float64(steps)) + 0.5) / float64(steps)
	}
	return 1 + jitter*(2*u-1)
}

// unitFloat maps (seed, i) to a uniform float64 in [0, 1) via a
// splitmix64 finalizer.
func unitFloat(seed int64, i int) float64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// DefaultArtifactCacheCap bounds how many distinct model artifacts
// (with their datasets and converted inputs) a fleet source keeps
// loaded at once. 64 covers every bundled scenario many times over
// while capping memory for fleets that sweep hundreds of artifacts.
const DefaultArtifactCacheCap = 64

// artifactCacheCap is the live bound (a var so tests can shrink it to
// force eviction).
var artifactCacheCap = DefaultArtifactCacheCap

// modelBundle is everything a device spec derives from one model
// artifact: the model, its matching dataset, and the test inputs
// converted to Q15 — loaded together, evicted together.
type modelBundle struct {
	model  *quant.Model
	set    *dataset.Set
	inputs [][]fixed.Q15
}

// artifactKey identifies one loadable bundle: the resolved artifact
// path plus the dataset seed (two fleets with different seeds derive
// different test inputs from the same model file).
type artifactKey struct {
	path string
	seed int64
}

// ArtifactCache serves model bundles through a bounded LRU (the memo
// package's, doing double duty as the ROADMAP's model-store LRU),
// keyed by (resolved path, seed) so it can be shared across fleet
// sources — the fleet service keeps one for the whole process.
// Reloading an evicted bundle is deterministic — artifacts are
// immutable files and datasets are generated from the expansion seed
// — so eviction changes pointer identity, never content: memoization
// keys on the content digest and sees the same model either way.
type ArtifactCache struct {
	mu  sync.Mutex // also serializes loads: misses are rare after warm-up
	lru *memo.LRU[artifactKey, *modelBundle]
}

// NewArtifactCache returns a cache bounded to capacity bundles
// (capacity <= 0 uses DefaultArtifactCacheCap).
func NewArtifactCache(capacity int) *ArtifactCache {
	if capacity <= 0 {
		capacity = DefaultArtifactCacheCap
	}
	return &ArtifactCache{lru: memo.NewLRU[artifactKey, *modelBundle](capacity)}
}

// newArtifactCache builds the per-source private cache at the live
// (test-adjustable) bound.
func newArtifactCache() *ArtifactCache {
	return &ArtifactCache{lru: memo.NewLRU[artifactKey, *modelBundle](artifactCacheCap)}
}

// Len returns the number of loaded bundles (for service metrics).
func (a *ArtifactCache) Len() int { return a.lru.Len() }

// Evictions returns how many bundles were dropped to make room.
func (a *ArtifactCache) Evictions() uint64 { return a.lru.Evictions() }

// bundle returns the bundle for the resolved artifact path under
// seed, loading (or reloading, after eviction) on miss.
func (a *ArtifactCache) bundle(resolved string, seed int64) (*modelBundle, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	key := artifactKey{path: resolved, seed: seed}
	if b, ok := a.lru.Get(key); ok {
		return b, nil
	}
	m, err := LoadModel(resolved)
	if err != nil {
		return nil, err
	}
	set, err := DatasetFor(m, seed)
	if err != nil {
		return nil, err
	}
	inputs := make([][]fixed.Q15, len(set.Test))
	for i := range set.Test {
		inputs[i] = fixed.FromFloats(set.Test[i].Input)
	}
	b := &modelBundle{model: m, set: set, inputs: inputs}
	a.lru.Add(key, b)
	return b, nil
}

// compiler carries the shared state of one compilation. Model bundles
// go through the source's bounded cache; traces stay pinned here and
// on their specs (one trace per spec at most, so they are bounded by
// the file's spec count, not the fleet size).
type compiler struct {
	baseDir string
	seed    int64
	cache   *ArtifactCache
	traces  map[string]*harvest.TraceProfile
}

// compile resolves one device spec (with defaults) into its shared,
// validated form. Everything that can fail is checked here so that
// FleetSource.At cannot surprise a million-device run midway —
// including one load of the model bundle, which also warms the store.
func (c *compiler) compile(def, d *DeviceSpec, di int) (compiledSpec, error) {
	spec := compiledSpec{name: specName(d, di), count: 1}
	if cnt := pick(d.Count, def.Count); cnt != nil {
		spec.count = *cnt
	}
	if spec.count < 1 {
		return spec, fmt.Errorf("count must be >= 1, got %d", spec.count)
	}

	modelPath := d.Model
	if modelPath == "" {
		modelPath = def.Model
	}
	if modelPath == "" {
		return spec, fmt.Errorf("no model path (set it on the device or in defaults)")
	}
	spec.modelPath = resolvePath(c.baseDir, modelPath)
	bundle, err := c.cache.bundle(spec.modelPath, c.seed)
	if err != nil {
		return spec, err
	}

	engineName := d.Engine
	if engineName == "" {
		engineName = def.Engine
	}
	if engineName == "" {
		engineName = string(core.EngineACEFLEX)
	}
	if spec.engine, err = ParseEngine(engineName); err != nil {
		return spec, err
	}

	spec.cfg = harvest.PaperConfig()
	if cp := pick(d.CapF, def.CapF); cp != nil {
		spec.cfg.CapacitanceF = *cp
	}
	if l := pick(d.LeakW, def.LeakW); l != nil {
		spec.cfg.LeakageW = *l
	}

	if j := pick(d.Jitter, def.Jitter); j != nil {
		spec.jitter = *j
	}
	if spec.jitter < 0 || spec.jitter >= 1 {
		return spec, fmt.Errorf("jitter must be in [0, 1), got %g", spec.jitter)
	}
	if js := pick(d.JitterSteps, def.JitterSteps); js != nil {
		spec.jitterSteps = *js
	}
	if spec.jitterSteps < 0 {
		return spec, fmt.Errorf("jitter_steps must be >= 0, got %d", spec.jitterSteps)
	}

	spec.prof = paperProfile
	if p := d.Profile; p != nil {
		spec.prof = *p
	} else if def.Profile != nil {
		spec.prof = *def.Profile
	}
	if spec.prof.Kind == "trace" {
		if spec.prof.Trace == "" {
			return spec, fmt.Errorf(`profile kind "trace" needs a "trace" CSV path`)
		}
		if spec.trace, err = c.trace(spec.prof.Trace, spec.prof.Repeat); err != nil {
			return spec, err
		}
	}
	// Validate the waveform parameters once, at the unjittered scale;
	// jitter scales are in (0, 2), which preserves validity.
	if _, err = BuildProfile(spec.prof.Kind,
		orDefault(spec.prof.PowerW, defaultPowerW),
		orDefault(spec.prof.Period, defaultPeriod),
		orDefault(spec.prof.Duty, defaultDuty),
		spec.trace, 1); err != nil {
		return spec, err
	}

	if s := pick(d.Sample, def.Sample); s != nil {
		if _, err := Sample(bundle.set, *s); err != nil {
			return spec, err
		}
		spec.sample = s
	}

	maxBoots := pick(d.MaxBoots, def.MaxBoots)
	stagLimit := pick(d.StagnationLimit, def.StagnationLimit)
	if maxBoots != nil && *maxBoots == 0 {
		return spec, fmt.Errorf("max_boots must be >= 1, got 0")
	}
	if stagLimit != nil && *stagLimit < 1 {
		return spec, fmt.Errorf("stagnation_limit must be >= 1, got %d", *stagLimit)
	}
	if maxBoots != nil || stagLimit != nil {
		spec.runner = &intermittent.Runner{}
		if maxBoots != nil {
			spec.runner.MaxBoots = *maxBoots
		}
		if stagLimit != nil {
			spec.runner.StagnationLimit = *stagLimit
		}
	}
	return spec, nil
}

// trace loads (once) the CSV trace the spec names.
func (c *compiler) trace(path string, repeat bool) (*harvest.TraceProfile, error) {
	resolved := resolvePath(c.baseDir, path)
	key := traceKey(resolved, repeat)
	tr, ok := c.traces[key]
	if !ok {
		var err error
		if tr, err = harvest.LoadTraceFile(resolved, repeat); err != nil {
			return nil, err
		}
		c.traces[key] = tr
	}
	return tr, nil
}

// LoadScenarios parses the scenario file at path and materializes the
// whole fleet. Each distinct model artifact is loaded and validated
// once and shared by pointer; datasets and traces likewise. This is
// the convenience wrapper over LoadFleetSource for fleets small
// enough to hold — streaming callers should use the source directly.
func LoadScenarios(path string, seed int64) ([]fleet.Scenario, error) {
	src, err := LoadFleetSource(path, seed)
	if err != nil {
		return nil, err
	}
	out := make([]fleet.Scenario, src.Len())
	for i := range out {
		if out[i], err = src.At(i); err != nil {
			return nil, fmt.Errorf("scenario file %s: %w", path, err)
		}
	}
	return out, nil
}
