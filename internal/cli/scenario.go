package cli

// This file declares the fleet scenario-file schema: one JSON
// document declares N heterogeneous device specs — engine ×
// capacitance × harvest profile (or trace) × model — which
// internal/cli compiles into a lazy fleet.Source (see source.go).
// The expansion is fully deterministic for a given (file, seed) pair.
// examples/scenarios/README.md is the complete field reference.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"ehdl/internal/harvest"
)

// ScenarioFile is the on-disk schema:
//
//	{
//	  "defaults": { "model": "mnist.gob", "engine": "ace+flex", "cap_f": 100e-6 },
//	  "devices": [
//	    { "name": "bench",  "count": 2 },
//	    { "name": "window", "engine": "sonic", "cap_f": 47e-6, "jitter": 0.2,
//	      "profile": { "kind": "sine", "power_w": 3e-3, "period_s": 0.2 } },
//	    { "name": "solar",  "profile": { "kind": "trace", "trace": "solar.csv", "repeat": true } }
//	  ]
//	}
//
// Every device field falls back to "defaults", then to the paper's
// experimental setup (ace+flex, 100 µF, 5 mW square wave at 50% duty).
// A device's "profile" object replaces the default profile wholesale.
// Relative "model" and "trace" paths resolve against the scenario
// file's directory, so a scenario bundle is self-contained. Unknown
// fields are rejected — a typo fails loudly instead of silently
// simulating the default.
type ScenarioFile struct {
	Defaults DeviceSpec   `json:"defaults"`
	Devices  []DeviceSpec `json:"devices"`
	// Memo configures fleet-wide inference memoization for this
	// scenario (nil = leave it to the -memo flags).
	Memo *MemoSpec `json:"memo,omitempty"`
}

// MemoSpec is the scenario file's memoization block:
//
//	"memo": { "enabled": true, "capacity": 65536 }
//
// Enabled turns the content-addressed run memo on for the fleet;
// Capacity bounds its LRU (0 = the memo package default). Results are
// bit-identical with the memo on or off — the knob trades memory for
// host time only — so scenario authors enable it wherever devices
// share (engine, model, input, waveform) equivalence classes.
type MemoSpec struct {
	Enabled  bool `json:"enabled"`
	Capacity int  `json:"capacity,omitempty"`
}

// DeviceSpec declares one (possibly repeated) device of the fleet.
type DeviceSpec struct {
	// Name labels the device's report rows; expansion appends /i for
	// count > 1.
	Name string `json:"name,omitempty"`
	// Count expands this spec into that many devices (default 1).
	Count *int `json:"count,omitempty"`
	// Model is the artifact path (relative to the scenario file).
	Model string `json:"model,omitempty"`
	// Engine is the runtime: base, sonic, tails, ace, ace+flex.
	Engine string `json:"engine,omitempty"`
	// CapF is the capacitance in farads.
	CapF *float64 `json:"cap_f,omitempty"`
	// LeakW is the parasitic leakage in watts.
	LeakW *float64 `json:"leak_w,omitempty"`
	// Sample is the test-set input index; unset cycles the test set
	// across the expanded fleet.
	Sample *int `json:"sample,omitempty"`
	// Jitter spreads each expanded device's harvest power uniformly in
	// [1-j, 1+j], deterministically from the expansion seed.
	Jitter *float64 `json:"jitter,omitempty"`
	// JitterSteps quantizes the jitter draw to that many equal-width
	// bins (midpoint of each), so jittered devices collapse into at
	// most JitterSteps harvest equivalence classes per spec — what
	// makes fleet memoization effective on jittered fleets. 0 (the
	// default) keeps the continuous draw.
	JitterSteps *int `json:"jitter_steps,omitempty"`
	// Profile selects the harvest waveform (replaces the default
	// profile wholesale when present).
	Profile *ProfileSpec `json:"profile,omitempty"`
	// MaxBoots overrides the intermittent runner's restart budget
	// (default 10000) — raise it for weak-ambient devices whose
	// inference legitimately needs more boots.
	MaxBoots *uint64 `json:"max_boots,omitempty"`
	// StagnationLimit overrides how many consecutive zero-progress
	// boots the runner tolerates before a DNF verdict (default 8).
	StagnationLimit *int `json:"stagnation_limit,omitempty"`
}

// ProfileSpec declares a harvest profile. The numeric fields are
// pointers so an explicit 0 (a dead source, a degenerate duty cycle)
// is passed to the profile validators instead of being silently
// replaced by the paper defaults.
type ProfileSpec struct {
	Kind   string   `json:"kind"` // square, sine, const, trace
	PowerW *float64 `json:"power_w,omitempty"`
	Period *float64 `json:"period_s,omitempty"`
	Duty   *float64 `json:"duty,omitempty"`
	Trace  string   `json:"trace,omitempty"`  // CSV path (kind "trace")
	Repeat bool     `json:"repeat,omitempty"` // repeat vs hold-last
}

// The paper's experimental defaults, used for any field no spec sets.
const (
	defaultPowerW = 5e-3
	defaultPeriod = 0.1
	defaultDuty   = 0.5
)

var paperProfile = ProfileSpec{Kind: "square"}

// DecodeScenarioFile strictly decodes a scenario document from r:
// unknown fields, trailing data and an empty device list are all
// rejected. This is the schema check alone — ParseScenarioFile for
// files, LoadFleetSource to also load the artifacts it names.
func DecodeScenarioFile(r io.Reader) (*ScenarioFile, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sf ScenarioFile
	if err := dec.Decode(&sf); err != nil {
		return nil, err
	}
	if dec.More() {
		return nil, fmt.Errorf("trailing data after the document")
	}
	if len(sf.Devices) == 0 {
		return nil, fmt.Errorf("no devices declared")
	}
	return &sf, nil
}

// ParseScenarioFile strictly decodes the scenario document at path.
func ParseScenarioFile(path string) (*ScenarioFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("scenario file: %w", err)
	}
	defer f.Close()
	sf, err := DecodeScenarioFile(f)
	if err != nil {
		return nil, fmt.Errorf("scenario file %s: %w", path, err)
	}
	return sf, nil
}

func specName(d *DeviceSpec, idx int) string {
	if d.Name != "" {
		return d.Name
	}
	return fmt.Sprintf("dev%02d", idx)
}

// BuildProfile constructs a validated harvest profile — the one
// waveform switch behind ehsim, ehfleet's flag mode and the scenario
// source. power/period/duty apply where the kind uses them; trace
// must be the preloaded trace for kind "trace"; scale multiplies the
// profile's power (per-device jitter; pass 1 for none).
func BuildProfile(kind string, power, period, duty float64, trace *harvest.TraceProfile, scale float64) (harvest.Profile, error) {
	switch kind {
	case "square":
		return harvest.NewSquareProfile(power*scale, period, duty)
	case "sine":
		return harvest.NewSineProfile(power*scale, period)
	case "const":
		return harvest.NewConstantProfile(power * scale)
	case "trace":
		if trace == nil {
			return nil, fmt.Errorf(`profile kind "trace" needs a harvesting trace`)
		}
		if scale == 1 {
			// TraceProfile is immutable, so jitter-free devices share
			// the loaded trace instead of copying it per device.
			return trace, nil
		}
		scaled, err := trace.Scale(scale)
		if err != nil {
			return nil, err
		}
		return scaled, nil
	case "":
		return nil, fmt.Errorf(`profile needs a "kind" (square, sine, const, trace)`)
	default:
		return nil, fmt.Errorf("unknown profile kind %q (want square, sine, const, trace)", kind)
	}
}

func traceKey(path string, repeat bool) string {
	return fmt.Sprintf("%s|%v", path, repeat)
}

// resolvePath anchors a relative path at the scenario file's directory.
func resolvePath(baseDir, path string) string {
	if filepath.IsAbs(path) {
		return path
	}
	return filepath.Join(baseDir, path)
}

// pick returns the device-level value when set, else the default.
func pick[T any](dev, def *T) *T {
	if dev != nil {
		return dev
	}
	return def
}

func orDefault(v *float64, def float64) float64 {
	if v == nil {
		return def
	}
	return *v
}
