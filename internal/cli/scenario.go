package cli

// This file implements declarative fleet scenarios: one JSON document
// declares N heterogeneous device specs — engine × capacitance ×
// harvest profile (or trace) × model — and expands into the concrete
// fleet.Scenarios cmd/ehfleet simulates. The expansion is fully
// deterministic for a given (file, seed) pair.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"ehdl/internal/core"
	"ehdl/internal/dataset"
	"ehdl/internal/fixed"
	"ehdl/internal/fleet"
	"ehdl/internal/harvest"
	"ehdl/internal/quant"
)

// ScenarioFile is the on-disk schema:
//
//	{
//	  "defaults": { "model": "mnist.gob", "engine": "ace+flex", "cap_f": 100e-6 },
//	  "devices": [
//	    { "name": "bench",  "count": 2 },
//	    { "name": "window", "engine": "sonic", "cap_f": 47e-6, "jitter": 0.2,
//	      "profile": { "kind": "sine", "power_w": 3e-3, "period_s": 0.2 } },
//	    { "name": "solar",  "profile": { "kind": "trace", "trace": "solar.csv", "repeat": true } }
//	  ]
//	}
//
// Every device field falls back to "defaults", then to the paper's
// experimental setup (ace+flex, 100 µF, 5 mW square wave at 50% duty).
// A device's "profile" object replaces the default profile wholesale.
// Relative "model" and "trace" paths resolve against the scenario
// file's directory, so a scenario bundle is self-contained. Unknown
// fields are rejected — a typo fails loudly instead of silently
// simulating the default.
type ScenarioFile struct {
	Defaults DeviceSpec   `json:"defaults"`
	Devices  []DeviceSpec `json:"devices"`
}

// DeviceSpec declares one (possibly repeated) device of the fleet.
type DeviceSpec struct {
	// Name labels the device's report rows; expansion appends /i for
	// count > 1.
	Name string `json:"name,omitempty"`
	// Count expands this spec into that many devices (default 1).
	Count *int `json:"count,omitempty"`
	// Model is the artifact path (relative to the scenario file).
	Model string `json:"model,omitempty"`
	// Engine is the runtime: base, sonic, tails, ace, ace+flex.
	Engine string `json:"engine,omitempty"`
	// CapF is the capacitance in farads.
	CapF *float64 `json:"cap_f,omitempty"`
	// LeakW is the parasitic leakage in watts.
	LeakW *float64 `json:"leak_w,omitempty"`
	// Sample is the test-set input index; unset cycles the test set
	// across the expanded fleet.
	Sample *int `json:"sample,omitempty"`
	// Jitter spreads each expanded device's harvest power uniformly in
	// [1-j, 1+j], deterministically from the expansion seed.
	Jitter *float64 `json:"jitter,omitempty"`
	// Profile selects the harvest waveform (replaces the default
	// profile wholesale when present).
	Profile *ProfileSpec `json:"profile,omitempty"`
}

// ProfileSpec declares a harvest profile. The numeric fields are
// pointers so an explicit 0 (a dead source, a degenerate duty cycle)
// is passed to the profile validators instead of being silently
// replaced by the paper defaults.
type ProfileSpec struct {
	Kind   string   `json:"kind"` // square, sine, const, trace
	PowerW *float64 `json:"power_w,omitempty"`
	Period *float64 `json:"period_s,omitempty"`
	Duty   *float64 `json:"duty,omitempty"`
	Trace  string   `json:"trace,omitempty"`  // CSV path (kind "trace")
	Repeat bool     `json:"repeat,omitempty"` // repeat vs hold-last
}

// The paper's experimental defaults, used for any field no spec sets.
const (
	defaultPowerW = 5e-3
	defaultPeriod = 0.1
	defaultDuty   = 0.5
)

var paperProfile = ProfileSpec{Kind: "square"}

// ParseScenarioFile strictly decodes a scenario document.
func ParseScenarioFile(path string) (*ScenarioFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("scenario file: %w", err)
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var sf ScenarioFile
	if err := dec.Decode(&sf); err != nil {
		return nil, fmt.Errorf("scenario file %s: %w", path, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("scenario file %s: trailing data after the document", path)
	}
	if len(sf.Devices) == 0 {
		return nil, fmt.Errorf("scenario file %s: no devices declared", path)
	}
	return &sf, nil
}

// LoadScenarios parses the scenario file at path and expands it into
// concrete fleet scenarios. Each distinct model artifact is loaded and
// validated once; datasets and traces are likewise shared across
// devices. seed drives jitter and the dataset generators, so the same
// (file, seed) pair always expands to an identical fleet.
func LoadScenarios(path string, seed int64) ([]fleet.Scenario, error) {
	sf, err := ParseScenarioFile(path)
	if err != nil {
		return nil, err
	}
	x := &expander{
		baseDir: filepath.Dir(path),
		seed:    seed,
		rng:     rand.New(rand.NewSource(seed)),
		models:  map[string]*quant.Model{},
		sets:    map[string]*dataset.Set{},
		traces:  map[string]*harvest.TraceProfile{},
	}
	var scenarios []fleet.Scenario
	for di := range sf.Devices {
		expanded, err := x.expand(&sf.Defaults, &sf.Devices[di], di)
		if err != nil {
			return nil, fmt.Errorf("scenario file %s: device %d (%s): %w",
				path, di, specName(&sf.Devices[di], di), err)
		}
		scenarios = append(scenarios, expanded...)
	}
	return scenarios, nil
}

// expander carries the shared state of one scenario expansion.
type expander struct {
	baseDir string
	seed    int64
	rng     *rand.Rand
	next    int // global expanded-device index, for sample cycling
	models  map[string]*quant.Model
	sets    map[string]*dataset.Set
	traces  map[string]*harvest.TraceProfile
}

func specName(d *DeviceSpec, idx int) string {
	if d.Name != "" {
		return d.Name
	}
	return fmt.Sprintf("dev%02d", idx)
}

// expand resolves device spec di (with defaults) into count concrete
// scenarios.
func (x *expander) expand(def, d *DeviceSpec, di int) ([]fleet.Scenario, error) {
	count := 1
	if c := pick(d.Count, def.Count); c != nil {
		count = *c
	}
	if count < 1 {
		return nil, fmt.Errorf("count must be >= 1, got %d", count)
	}

	modelPath := d.Model
	if modelPath == "" {
		modelPath = def.Model
	}
	if modelPath == "" {
		return nil, fmt.Errorf("no model path (set it on the device or in defaults)")
	}
	m, set, err := x.model(modelPath)
	if err != nil {
		return nil, err
	}

	engineName := d.Engine
	if engineName == "" {
		engineName = def.Engine
	}
	if engineName == "" {
		engineName = string(core.EngineACEFLEX)
	}
	engine, err := ParseEngine(engineName)
	if err != nil {
		return nil, err
	}

	cfg := harvest.PaperConfig()
	if c := pick(d.CapF, def.CapF); c != nil {
		cfg.CapacitanceF = *c
	}
	if l := pick(d.LeakW, def.LeakW); l != nil {
		cfg.LeakageW = *l
	}

	jitter := 0.0
	if j := pick(d.Jitter, def.Jitter); j != nil {
		jitter = *j
	}
	if jitter < 0 || jitter >= 1 {
		return nil, fmt.Errorf("jitter must be in [0, 1), got %g", jitter)
	}

	prof := paperProfile
	if p := d.Profile; p != nil {
		prof = *p
	} else if def.Profile != nil {
		prof = *def.Profile
	}

	name := specName(d, di)
	out := make([]fleet.Scenario, 0, count)
	for i := 0; i < count; i++ {
		// One jitter draw per expanded device, always, so the fleet
		// layout does not shift when one spec toggles jitter on.
		scale := 1 + jitter*(2*x.rng.Float64()-1)
		profile, err := x.profile(prof, scale)
		if err != nil {
			return nil, err
		}

		sampleIdx := x.next % len(set.Test)
		if s := pick(d.Sample, def.Sample); s != nil {
			sampleIdx = *s
		}
		sample, err := Sample(set, sampleIdx)
		if err != nil {
			return nil, err
		}
		x.next++

		devName := name
		if count > 1 {
			devName = fmt.Sprintf("%s/%d", name, i)
		}
		out = append(out, fleet.Scenario{
			Name:   devName,
			Engine: engine,
			Model:  m,
			Input:  fixed.FromFloats(sample.Input),
			Setup:  core.HarvestSetup{Config: cfg, Profile: profile},
		})
	}
	return out, nil
}

// model loads (once) the artifact at path and the dataset matching it.
func (x *expander) model(path string) (*quant.Model, *dataset.Set, error) {
	resolved := x.resolve(path)
	m, ok := x.models[resolved]
	if !ok {
		var err error
		if m, err = LoadModel(resolved); err != nil {
			return nil, nil, err
		}
		x.models[resolved] = m
	}
	set, ok := x.sets[m.Name]
	if !ok {
		var err error
		if set, err = DatasetFor(m, x.seed); err != nil {
			return nil, nil, err
		}
		x.sets[m.Name] = set
	}
	return m, set, nil
}

// profile constructs the harvest profile with the device's power
// scale applied, resolving unset fields to the paper defaults and
// loading (once) the trace the spec names.
func (x *expander) profile(p ProfileSpec, scale float64) (harvest.Profile, error) {
	var tr *harvest.TraceProfile
	if p.Kind == "trace" {
		if p.Trace == "" {
			return nil, fmt.Errorf(`profile kind "trace" needs a "trace" CSV path`)
		}
		resolved := x.resolve(p.Trace)
		var ok bool
		if tr, ok = x.traces[traceKey(resolved, p.Repeat)]; !ok {
			var err error
			if tr, err = harvest.LoadTraceFile(resolved, p.Repeat); err != nil {
				return nil, err
			}
			x.traces[traceKey(resolved, p.Repeat)] = tr
		}
	}
	return BuildProfile(p.Kind,
		orDefault(p.PowerW, defaultPowerW),
		orDefault(p.Period, defaultPeriod),
		orDefault(p.Duty, defaultDuty),
		tr, scale)
}

// BuildProfile constructs a validated harvest profile — the one
// waveform switch behind ehsim, ehfleet's flag mode and the scenario
// expander. power/period/duty apply where the kind uses them; trace
// must be the preloaded trace for kind "trace"; scale multiplies the
// profile's power (per-device jitter; pass 1 for none).
func BuildProfile(kind string, power, period, duty float64, trace *harvest.TraceProfile, scale float64) (harvest.Profile, error) {
	switch kind {
	case "square":
		return harvest.NewSquareProfile(power*scale, period, duty)
	case "sine":
		return harvest.NewSineProfile(power*scale, period)
	case "const":
		return harvest.NewConstantProfile(power * scale)
	case "trace":
		if trace == nil {
			return nil, fmt.Errorf(`profile kind "trace" needs a harvesting trace`)
		}
		scaled, err := trace.Scale(scale)
		if err != nil {
			return nil, err
		}
		return scaled, nil
	case "":
		return nil, fmt.Errorf(`profile needs a "kind" (square, sine, const, trace)`)
	default:
		return nil, fmt.Errorf("unknown profile kind %q (want square, sine, const, trace)", kind)
	}
}

func traceKey(path string, repeat bool) string {
	return fmt.Sprintf("%s|%v", path, repeat)
}

// resolve anchors a relative path at the scenario file's directory.
func (x *expander) resolve(path string) string {
	if filepath.IsAbs(path) {
		return path
	}
	return filepath.Join(x.baseDir, path)
}

// pick returns the device-level value when set, else the default.
func pick[T any](dev, def *T) *T {
	if dev != nil {
		return dev
	}
	return def
}

func orDefault(v *float64, def float64) float64 {
	if v == nil {
		return def
	}
	return *v
}
