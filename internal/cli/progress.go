package cli

import (
	"fmt"
	"io"

	"ehdl/internal/fleet"
)

// ProgressPrinter returns a fleet.StreamOptions.Progress callback
// that renders one rate/ETA line per tick to w. Elapsed host time is
// measured on clock — fleet.SystemClock in the CLIs, a fake clock in
// tests — and the rate baseline excludes the `resumed` rows a resumed
// checkpoint restored without simulating, so a resumed run reports
// its true simulation rate rather than an inflated one.
func ProgressPrinter(w io.Writer, clock fleet.Clock, resumed int) func(done, total int) {
	if clock == nil {
		clock = fleet.SystemClock
	}
	start := clock.Now()
	return func(done, total int) {
		elapsed := clock.Now().Sub(start).Seconds()
		rate := float64(done-resumed) / elapsed
		eta := "n/a"
		if done >= total {
			eta = "0s"
		} else if rate > 0 {
			eta = fmt.Sprintf("%.0fs", float64(total-done)/rate)
		}
		fmt.Fprintf(w, "ehfleet: %d/%d devices (%.0f/s, ETA %s, %.0fs elapsed)\n",
			done, total, rate, eta, elapsed)
	}
}
