package cli

import (
	"fmt"
	"io"

	"ehdl/internal/fleet"
)

// ProgressEvent is one progress tick of a streaming fleet run, in the
// shape both front-ends share: the CLI renders it as a status line and
// the fleet service serializes it on a job's event stream. Rate and
// ETA exclude rows a resumed checkpoint restored without simulating,
// so a resumed run reports its true simulation rate.
type ProgressEvent struct {
	Done    int     `json:"done"`
	Total   int     `json:"total"`
	Rate    float64 `json:"rate"`    // devices/s since this run started
	ETA     string  `json:"eta"`     // "12s", "0s" when done, "n/a" before a rate exists
	Elapsed float64 `json:"elapsed"` // host seconds since this run started
}

// ProgressTracker returns a callback that turns RunStream's (done,
// total) ticks into ProgressEvents. Elapsed host time is measured on
// clock — fleet.SystemClock in the CLIs, a fake clock in tests; nil
// defaults to fleet.SystemClock — and the rate baseline excludes the
// `resumed` rows already present at start.
func ProgressTracker(clock fleet.Clock, resumed int) func(done, total int) ProgressEvent {
	if clock == nil {
		clock = fleet.SystemClock
	}
	start := clock.Now()
	return func(done, total int) ProgressEvent {
		elapsed := clock.Now().Sub(start).Seconds()
		rate := 0.0
		if elapsed > 0 {
			// Guarded: a zero-elapsed tick (frozen test clock, sub-tick
			// resolution) must not produce ±Inf, which json.Marshal rejects.
			rate = float64(done-resumed) / elapsed
		}
		eta := "n/a"
		if done >= total {
			eta = "0s"
		} else if rate > 0 {
			eta = fmt.Sprintf("%.0fs", float64(total-done)/rate)
		}
		return ProgressEvent{Done: done, Total: total, Rate: rate, ETA: eta, Elapsed: elapsed}
	}
}

// ProgressPrinter returns a fleet.StreamOptions.Progress callback
// that renders one rate/ETA line per tick to w, via ProgressTracker
// (see it for the clock and resumed-baseline semantics).
func ProgressPrinter(w io.Writer, clock fleet.Clock, resumed int) func(done, total int) {
	track := ProgressTracker(clock, resumed)
	return func(done, total int) {
		ev := track(done, total)
		fmt.Fprintf(w, "ehfleet: %d/%d devices (%.0f/s, ETA %s, %.0fs elapsed)\n",
			ev.Done, ev.Total, ev.Rate, ev.ETA, ev.Elapsed)
	}
}
