// Package dataset provides deterministic synthetic stand-ins for the
// paper's three workloads: MNIST (image classification), HAR (human
// activity recognition, UCI smartphone dataset) and OKG (Google
// Speech Commands keyword recognition). The real datasets are not
// available offline; these generators produce class-conditional
// patterns with the same tensor shapes and enough intra-class
// variation that the paper's architectures must genuinely learn the
// decision boundaries (a linear probe does not reach the reported
// accuracies, the paper's CNNs do).
//
// All inputs are normalized to [-1, 1], the range RAD's normalization
// stage guarantees before fixed-point deployment.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
)

// Sample is one labelled input.
type Sample struct {
	Input []float64 // flattened, channel-major
	Label int
}

// Set is a train/test split of one task.
type Set struct {
	Name       string
	InputShape [3]int // C, H, W
	NumClasses int
	ClassNames []string
	Train      []Sample
	Test       []Sample
}

// InputLen returns the flattened input length.
func (s *Set) InputLen() int {
	return s.InputShape[0] * s.InputShape[1] * s.InputShape[2]
}

// Accuracy evaluates predict over the test split.
func (s *Set) Accuracy(predict func(x []float64) int) float64 {
	if len(s.Test) == 0 {
		return 0
	}
	correct := 0
	for _, smp := range s.Test {
		if predict(smp.Input) == smp.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(s.Test))
}

// MNIST generates the image-classification task: 28×28 single-channel
// renderings of seven-segment style digits with random translation,
// stroke thickness, intensity and additive noise.
func MNIST(nTrain, nTest int, seed int64) *Set {
	rng := rand.New(rand.NewSource(seed))
	s := &Set{
		Name:       "MNIST",
		InputShape: [3]int{1, 28, 28},
		NumClasses: 10,
	}
	for c := 0; c < 10; c++ {
		s.ClassNames = append(s.ClassNames, fmt.Sprintf("digit-%d", c))
	}
	s.Train = genSamples(nTrain, 10, rng, genDigit)
	s.Test = genSamples(nTest, 10, rng, genDigit)
	return s
}

// HAR generates the wearable task: a 121-sample accelerometer window
// with six activity classes matching the UCI HAR label set.
func HAR(nTrain, nTest int, seed int64) *Set {
	rng := rand.New(rand.NewSource(seed))
	s := &Set{
		Name:       "HAR",
		InputShape: [3]int{1, 1, 121},
		NumClasses: 6,
		ClassNames: []string{"walking", "upstairs", "downstairs", "sitting", "standing", "laying"},
	}
	s.Train = genSamples(nTrain, 6, rng, genActivity)
	s.Test = genSamples(nTest, 6, rng, genActivity)
	return s
}

// OKG generates the audio task: a 28×28 spectrogram patch with twelve
// classes (ten keywords plus silence and unknown), formant-style
// trajectories distinguishing the keywords.
func OKG(nTrain, nTest int, seed int64) *Set {
	rng := rand.New(rand.NewSource(seed))
	s := &Set{
		Name:       "OKG",
		InputShape: [3]int{1, 28, 28},
		NumClasses: 12,
		ClassNames: []string{
			"yes", "no", "up", "down", "left", "right",
			"on", "off", "stop", "go", "silence", "unknown",
		},
	}
	s.Train = genSamples(nTrain, 12, rng, genKeyword)
	s.Test = genSamples(nTest, 12, rng, genKeyword)
	return s
}

// genSamples draws n samples with labels cycling through the classes
// (balanced splits).
func genSamples(n, classes int, rng *rand.Rand, gen func(label int, rng *rand.Rand) []float64) []Sample {
	out := make([]Sample, n)
	perm := rng.Perm(n)
	for i := 0; i < n; i++ {
		label := perm[i] % classes
		out[i] = Sample{Input: gen(label, rng), Label: label}
	}
	return out
}

// Seven-segment layout for the digit generator. Segments are indexed
//
//	 -A-
//	F   B
//	 -G-
//	E   C
//	 -D-
var segmentsByDigit = [10][7]bool{
	//           A      B      C      D      E      F      G
	0: {true, true, true, true, true, true, false},
	1: {false, true, true, false, false, false, false},
	2: {true, true, false, true, true, false, true},
	3: {true, true, true, true, false, false, true},
	4: {false, true, true, false, false, true, true},
	5: {true, false, true, true, false, true, true},
	6: {true, false, true, true, true, true, true},
	7: {true, true, true, false, false, false, false},
	8: {true, true, true, true, true, true, true},
	9: {true, true, true, true, false, true, true},
}

func genDigit(label int, rng *rand.Rand) []float64 {
	const H, W = 28, 28
	img := make([]float64, H*W)
	// Glyph box ~16 tall, ~10 wide, randomly placed.
	top := 4 + rng.Intn(5) - 2
	left := 8 + rng.Intn(5) - 2
	height := 16
	width := 10
	mid := top + height/2
	bottom := top + height
	right := left + width
	thick := 1 + rng.Intn(2)
	intensity := 0.7 + rng.Float64()*0.3

	hseg := func(y, x0, x1 int) {
		for t := 0; t < thick; t++ {
			for x := x0; x <= x1; x++ {
				setPix(img, y+t, x, intensity, rng)
			}
		}
	}
	vseg := func(x, y0, y1 int) {
		for t := 0; t < thick; t++ {
			for y := y0; y <= y1; y++ {
				setPix(img, y, x+t, intensity, rng)
			}
		}
	}
	seg := segmentsByDigit[label]
	if seg[0] {
		hseg(top, left, right)
	}
	if seg[1] {
		vseg(right, top, mid)
	}
	if seg[2] {
		vseg(right, mid, bottom)
	}
	if seg[3] {
		hseg(bottom, left, right)
	}
	if seg[4] {
		vseg(left, mid, bottom)
	}
	if seg[5] {
		vseg(left, top, mid)
	}
	if seg[6] {
		hseg(mid, left, right)
	}
	// Background noise and [-1,1] normalization.
	for i := range img {
		img[i] += rng.NormFloat64() * 0.05
		img[i] = clamp(img[i]*2-1, -1, 1)
	}
	return img
}

func setPix(img []float64, y, x int, v float64, rng *rand.Rand) {
	const H, W = 28, 28
	if y < 0 || y >= H || x < 0 || x >= W {
		return
	}
	img[y*W+x] = v * (0.85 + rng.Float64()*0.15)
}

// genActivity synthesizes a 121-sample accelerometer magnitude trace.
// Dynamic activities are periodic with class-specific frequency and
// harmonic content; static postures differ by DC level and noise.
func genActivity(label int, rng *rand.Rand) []float64 {
	const n = 121
	out := make([]float64, n)
	phase := rng.Float64() * 2 * math.Pi
	jitter := 1 + rng.NormFloat64()*0.05
	switch label {
	case 0: // walking: ~2 Hz fundamental, mild harmonic
		for i := range out {
			t := float64(i) / 20 * jitter
			out[i] = 0.45*math.Sin(2*math.Pi*2*t+phase) + 0.15*math.Sin(2*math.Pi*4*t+phase)
		}
	case 1: // upstairs: slower, asymmetric (sawtooth-flavoured)
		for i := range out {
			t := float64(i) / 20 * jitter
			saw := math.Mod(1.4*t+phase/(2*math.Pi), 1)*2 - 1
			out[i] = 0.35*math.Sin(2*math.Pi*1.4*t+phase) + 0.25*saw
		}
	case 2: // downstairs: faster, spikier
		for i := range out {
			t := float64(i) / 20 * jitter
			s := math.Sin(2*math.Pi*2.6*t + phase)
			out[i] = 0.5 * s * math.Abs(s)
		}
	case 3: // sitting: near-zero DC, tiny noise
		for i := range out {
			out[i] = 0.05
		}
	case 4: // standing: distinct positive DC
		for i := range out {
			out[i] = 0.35
		}
	case 5: // laying: distinct negative DC
		for i := range out {
			out[i] = -0.4
		}
	}
	noise := 0.04
	if label >= 3 {
		noise = 0.02
	}
	for i := range out {
		out[i] = clamp(out[i]+rng.NormFloat64()*noise, -1, 1)
	}
	return out
}

// keywordTracks gives each keyword class a distinctive pair of formant
// trajectories over the 28-frame window: (start row, slope, curvature)
// per track, rows in [0, 28).
var keywordTracks = [12][2][3]float64{
	0:  {{6, 0.5, 0}, {18, -0.3, 0}},    // yes: rising low, falling high
	1:  {{10, -0.4, 0}, {20, 0.2, 0}},   // no
	2:  {{4, 0.9, 0}, {14, 0.9, 0}},     // up: both rising steeply
	3:  {{22, -0.9, 0}, {12, -0.9, 0}},  // down: both falling
	4:  {{8, 0, 0.06}, {16, 0, -0.06}},  // left: diverging curves
	5:  {{16, 0, -0.06}, {8, 0, 0.06}},  // right: converging curves
	6:  {{6, 0, 0}, {10, 0, 0}},         // on: low parallel bands
	7:  {{18, 0, 0}, {22, 0, 0}},        // off: high parallel bands
	8:  {{12, 0, 0}, {12, 0, 0}},        // stop: single strong band
	9:  {{5, 0.3, 0.02}, {23, -0.3, 0}}, // go
	10: {{0, 0, 0}, {0, 0, 0}},          // silence: handled specially
	11: {{0, 0, 0}, {0, 0, 0}},          // unknown: handled specially
}

func genKeyword(label int, rng *rand.Rand) []float64 {
	const H, W = 28, 28
	img := make([]float64, H*W)
	switch label {
	case 10: // silence: weak noise floor only
		for i := range img {
			img[i] = rng.NormFloat64() * 0.03
		}
	case 11: // unknown: random-walk track, different every time
		row := 4 + rng.Float64()*20
		for t := 0; t < W; t++ {
			row += rng.NormFloat64() * 1.2
			row = clamp(row, 1, H-2)
			paintFormant(img, row, t, 0.8, rng)
		}
	default:
		offset := rng.NormFloat64() * 1.5
		stretch := 1 + rng.NormFloat64()*0.08
		for _, trk := range keywordTracks[label] {
			for t := 0; t < W; t++ {
				tt := float64(t) * stretch
				row := trk[0] + offset + trk[1]*tt + trk[2]*tt*tt
				row = clamp(row, 1, H-2)
				paintFormant(img, row, t, 0.9, rng)
			}
		}
	}
	for i := range img {
		img[i] = clamp(img[i]+rng.NormFloat64()*0.04, -1, 1)
	}
	return img
}

// paintFormant adds a vertical Gaussian bump of energy centred at row
// in column t.
func paintFormant(img []float64, row float64, t int, amp float64, rng *rand.Rand) {
	const H, W = 28, 28
	a := amp * (0.8 + rng.Float64()*0.2)
	for dy := -2; dy <= 2; dy++ {
		y := int(row) + dy
		if y < 0 || y >= H {
			continue
		}
		d := row - float64(y)
		img[y*W+t] += a * math.Exp(-d*d/1.2)
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
