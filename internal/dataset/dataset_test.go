package dataset

import (
	"math"
	"math/rand"
	"testing"

	"ehdl/internal/mat"
)

func TestShapesAndRanges(t *testing.T) {
	sets := []*Set{
		MNIST(50, 20, 1),
		HAR(60, 24, 2),
		OKG(60, 24, 3),
	}
	for _, s := range sets {
		if len(s.Train) == 0 || len(s.Test) == 0 {
			t.Fatalf("%s: empty split", s.Name)
		}
		want := s.InputLen()
		for _, smp := range append(append([]Sample{}, s.Train...), s.Test...) {
			if len(smp.Input) != want {
				t.Fatalf("%s: input length %d, want %d", s.Name, len(smp.Input), want)
			}
			if smp.Label < 0 || smp.Label >= s.NumClasses {
				t.Fatalf("%s: label %d out of range", s.Name, smp.Label)
			}
			for i, v := range smp.Input {
				if v < -1 || v > 1 || math.IsNaN(v) {
					t.Fatalf("%s: input[%d] = %v outside [-1,1]", s.Name, i, v)
				}
			}
		}
		if len(s.ClassNames) != s.NumClasses {
			t.Errorf("%s: %d class names for %d classes", s.Name, len(s.ClassNames), s.NumClasses)
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := MNIST(20, 5, 42)
	b := MNIST(20, 5, 42)
	for i := range a.Train {
		if a.Train[i].Label != b.Train[i].Label {
			t.Fatal("labels differ across identical seeds")
		}
		for j := range a.Train[i].Input {
			if a.Train[i].Input[j] != b.Train[i].Input[j] {
				t.Fatal("inputs differ across identical seeds")
			}
		}
	}
	c := MNIST(20, 5, 43)
	same := true
	for j, v := range a.Train[0].Input {
		if c.Train[0].Input[j] != v {
			same = false
			break
		}
	}
	if same && a.Train[0].Label == c.Train[0].Label {
		t.Error("different seeds produced identical first sample")
	}
}

func TestBalancedLabels(t *testing.T) {
	s := HAR(600, 60, 4)
	counts := make([]int, s.NumClasses)
	for _, smp := range s.Train {
		counts[smp.Label]++
	}
	for c, n := range counts {
		if n < 90 || n > 110 {
			t.Errorf("class %d has %d samples, want ~100", c, n)
		}
	}
}

// nearestCentroid trains a centroid classifier — a weak learner that
// should still beat chance comfortably on each task, demonstrating the
// classes are separable (and below the CNN ceiling, demonstrating
// they are not trivial).
func nearestCentroid(train, test []Sample, classes, dim int) float64 {
	centroids := make([][]float64, classes)
	counts := make([]int, classes)
	for c := range centroids {
		centroids[c] = make([]float64, dim)
	}
	for _, s := range train {
		mat.AddScaledVec(centroids[s.Label], s.Input, 1)
		counts[s.Label]++
	}
	for c := range centroids {
		if counts[c] > 0 {
			for j := range centroids[c] {
				centroids[c][j] /= float64(counts[c])
			}
		}
	}
	correct := 0
	for _, s := range test {
		best, bestD := -1, math.Inf(1)
		for c := range centroids {
			var d float64
			for j := range s.Input {
				diff := s.Input[j] - centroids[c][j]
				d += diff * diff
			}
			if d < bestD {
				bestD, best = d, c
			}
		}
		if best == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(test))
}

func TestClassesAreSeparable(t *testing.T) {
	cases := []struct {
		set      *Set
		minAcc   float64
		expected string
	}{
		// MNIST's random translation defeats a centroid classifier by
		// design (a CNN learns it to ~100%); 0.35 is still 3.5× chance.
		{MNIST(400, 100, 11), 0.35, "digit patterns"},
		{HAR(300, 100, 12), 0.60, "activity signals"},
		{OKG(480, 120, 13), 0.55, "keyword spectrograms"},
	}
	for _, c := range cases {
		acc := nearestCentroid(c.set.Train, c.set.Test, c.set.NumClasses, c.set.InputLen())
		chance := 1.0 / float64(c.set.NumClasses)
		if acc < c.minAcc {
			t.Errorf("%s: centroid accuracy %.2f below %.2f — %s not separable",
				c.set.Name, acc, c.minAcc, c.expected)
		}
		if acc < 2*chance {
			t.Errorf("%s: accuracy %.2f barely above chance %.2f", c.set.Name, acc, chance)
		}
	}
}

func TestAccuracyHelper(t *testing.T) {
	s := MNIST(10, 10, 5)
	perfect := func(x []float64) int {
		for _, smp := range s.Test {
			match := true
			for i := range x {
				if smp.Input[i] != x[i] {
					match = false
					break
				}
			}
			if match {
				return smp.Label
			}
		}
		return -1
	}
	if got := s.Accuracy(perfect); got != 1.0 {
		t.Errorf("perfect predictor accuracy = %v", got)
	}
	rng := rand.New(rand.NewSource(1))
	random := func([]float64) int { return rng.Intn(10) }
	if got := s.Accuracy(random); got > 0.5 {
		t.Errorf("random predictor accuracy = %v, suspicious", got)
	}
	empty := &Set{}
	if got := empty.Accuracy(random); got != 0 {
		t.Errorf("empty set accuracy = %v", got)
	}
}

func TestDigitSegmentsDistinct(t *testing.T) {
	// Each digit has a unique segment signature (sanity of the table).
	seen := map[[7]bool]int{}
	for d, seg := range segmentsByDigit {
		if prev, dup := seen[seg]; dup {
			t.Errorf("digits %d and %d share a segment pattern", prev, d)
		}
		seen[seg] = d
	}
}

func TestHARStaticVsDynamicVariance(t *testing.T) {
	// Dynamic activities (0-2) must have higher variance than static
	// postures (3-5) — the physical property the classifier learns.
	s := HAR(300, 0, 21)
	varByClass := make([]float64, 6)
	countByClass := make([]int, 6)
	for _, smp := range s.Train {
		var mean float64
		for _, v := range smp.Input {
			mean += v
		}
		mean /= float64(len(smp.Input))
		var v float64
		for _, x := range smp.Input {
			v += (x - mean) * (x - mean)
		}
		varByClass[smp.Label] += v / float64(len(smp.Input))
		countByClass[smp.Label]++
	}
	for c := range varByClass {
		varByClass[c] /= float64(countByClass[c])
	}
	minDynamic := math.Min(varByClass[0], math.Min(varByClass[1], varByClass[2]))
	maxStatic := math.Max(varByClass[3], math.Max(varByClass[4], varByClass[5]))
	if minDynamic <= maxStatic*3 {
		t.Errorf("dynamic variance %v not clearly above static %v", minDynamic, maxStatic)
	}
}
