package rad

import (
	"math/rand"
	"testing"

	"ehdl/internal/dataset"
	"ehdl/internal/device"
	"ehdl/internal/nn"
)

func TestParamBytes(t *testing.T) {
	// MNIST compressed: conv1 6·25+6, conv2 16·75+16 (2x pruned),
	// bcm 2·2·128+256, dense 256·10+10.
	arch := nn.MNISTArch(128, true)
	want := 2 * ((6*25 + 6) + (16*75 + 16) + (2*2*128 + 256) + (256*10 + 10))
	if got := ParamBytes(arch); got != want {
		t.Errorf("ParamBytes(mnist) = %d, want %d", got, want)
	}
	// The dense HAR model must exceed the FRAM budget; the compressed
	// one must fit — the whole reason BCM exists.
	if got := ParamBytes(nn.HARDenseArch()); got <= 256*1024 {
		t.Errorf("dense HAR = %d bytes, expected to overflow 256 KB", got)
	}
	if got := ParamBytes(nn.HARArch(128, 64)); got >= 224*1024 {
		t.Errorf("compressed HAR = %d bytes, expected to fit", got)
	}
}

func TestEstimateCyclesOrdering(t *testing.T) {
	costs := device.DefaultCosts()
	small := EstimateCycles(nn.MNISTArch(128, true), costs)
	large := EstimateCycles(nn.OKGArch(256, 128, 64), costs)
	if small == 0 || large == 0 {
		t.Fatal("zero estimates")
	}
	// Larger BCM blocks are faster per the FFT math: block 128 beats
	// block 32 on the same layer shapes.
	k32 := EstimateCycles(nn.MNISTArch(32, true), costs)
	k128 := EstimateCycles(nn.MNISTArch(128, true), costs)
	if k128 >= k32 {
		t.Errorf("block 128 estimate %d not below block 32 estimate %d", k128, k32)
	}
}

func TestSearchFiltersAndRanks(t *testing.T) {
	candidates := []*nn.Arch{
		nn.HARDenseArch(),   // too big for FRAM
		nn.HARArch(128, 64), // fits, fast
		nn.HARArch(32, 32),  // fits, slower (smaller blocks)
	}
	ranked, reports := Search(candidates, DefaultConstraints(), device.DefaultCosts())
	if len(reports) != 3 {
		t.Fatalf("reports = %d", len(reports))
	}
	if reports[0].FitsFRAM {
		t.Error("dense HAR reported as fitting FRAM")
	}
	if len(ranked) != 2 {
		t.Fatalf("ranked = %d, want 2", len(ranked))
	}
	if ranked[0].Name != "har" {
		t.Errorf("best candidate %q, want the block-128 model", ranked[0].Name)
	}
	found := false
	for _, r := range reports {
		if r.Selected {
			found = true
		}
	}
	if !found {
		t.Error("no candidate marked selected")
	}
}

func TestSearchNoSurvivors(t *testing.T) {
	_, err := SearchAndTrain([]*nn.Arch{nn.HARDenseArch()}, nil, DefaultConstraints(), DefaultPipelineConfig())
	if err == nil {
		t.Fatal("expected error when nothing fits")
	}
}

func TestTrainPipelineEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	set := dataset.MNIST(800, 120, 7)
	// Like the paper's MNIST model: prune the SECOND conv (pruning the
	// input conv of a tiny net destroys it, which is exactly why the
	// paper leaves conv1 dense).
	arch := &nn.Arch{
		Name: "mini", InShape: [3]int{1, 28, 28}, NumClasses: 10,
		Specs: []nn.LayerSpec{
			{Kind: "conv", InC: 1, InH: 28, InW: 28, OutC: 4, KH: 5, KW: 5},
			{Kind: "pool", InC: 4, InH: 24, InW: 24, PoolSize: 2},
			{Kind: "relu", N: 4 * 12 * 12},
			{Kind: "conv", InC: 4, InH: 12, InW: 12, OutC: 8, KH: 3, KW: 3, PruneRatio: 0.5},
			{Kind: "pool", InC: 8, InH: 10, InW: 10, PoolSize: 2},
			{Kind: "relu", N: 8 * 5 * 5},
			{Kind: "flatten", N: 200},
			{Kind: "bcm", In: 200, Out: 64, K: 32},
			{Kind: "relu", N: 64},
			{Kind: "dense", In: 64, Out: 10, WeightNorm: true},
		},
	}
	cfg := DefaultPipelineConfig()
	cfg.Seed = 3
	cfg.ADMM.Rounds = 1
	cfg.ADMM.Train.Epochs = 1
	res, err := Train(arch, set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.QuantAccuracy < 0.8 {
		t.Errorf("quantized accuracy %.2f too low (float %.2f, prune %+v)",
			res.QuantAccuracy, res.FloatAccuracy, res.Prune)
	}
	if len(res.Prune) != 1 {
		t.Errorf("prune results = %d, want 1", len(res.Prune))
	}
	if res.Model.WeightBytes() >= 224*1024 {
		t.Errorf("model too big: %d", res.Model.WeightBytes())
	}
	if res.EstCycles == 0 {
		t.Error("no cycle estimate")
	}
	// The quantized model honors the pruning in its storage.
	if res.Model.Layers[3].Kept == nil {
		t.Error("pruned conv lost its kept-position list through quantization")
	}
}

func TestSearchAndTrainPicksAccurateCandidate(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	set := dataset.HAR(700, 140, 5)
	candidates := []*nn.Arch{nn.HARArch(128, 64)}
	cfg := DefaultPipelineConfig()
	cons := DefaultConstraints()
	cons.MinAccuracy = 0.8
	res, err := SearchAndTrain(candidates, set, cons, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.QuantAccuracy < 0.8 {
		t.Errorf("accuracy %.2f", res.QuantAccuracy)
	}
	if len(res.Search) != 1 {
		t.Errorf("search log %d entries", len(res.Search))
	}
	_ = rand.Int
}
