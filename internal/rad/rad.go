// Package rad implements RAD, the paper's resource-aware DNN training
// framework (§III-A): architecture search under the device's FRAM and
// latency constraints, BCM compression of FC layers, ADMM-regularized
// structured pruning of conv layers, normalization, and fixed-point
// export. RAD runs offline on the host; its artifact is a quantized
// model the on-device runtimes execute.
package rad

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"ehdl/internal/dataset"
	"ehdl/internal/device"
	"ehdl/internal/nn"
	"ehdl/internal/quant"
	"ehdl/internal/train"
)

// Constraints are the device resources a candidate must respect —
// the "modeling challenges" list of §III-A.
type Constraints struct {
	// FRAMBytes bounds the model image (weights + biases at 16 bit).
	// Zero means the MSP430FR5994 default of 224 KB (256 KB minus the
	// runtime's activation buffers and checkpoint areas).
	FRAMBytes int
	// MaxCycles bounds the estimated ACE inference latency
	// (zero = unbounded).
	MaxCycles uint64
	// MinAccuracy is the test accuracy a trained candidate must reach
	// to be accepted.
	MinAccuracy float64
}

// DefaultConstraints returns the paper's device envelope.
func DefaultConstraints() Constraints {
	return Constraints{FRAMBytes: 224 * 1024, MinAccuracy: 0.80}
}

// PipelineConfig drives the full RAD pipeline.
type PipelineConfig struct {
	Train train.Config
	ADMM  train.ADMMConfig
	// CalibSamples is the number of training inputs used for
	// quantization calibration.
	CalibSamples int
	// Seed drives weight initialization.
	Seed int64
}

// DefaultPipelineConfig returns the settings used for Table II.
func DefaultPipelineConfig() PipelineConfig {
	return PipelineConfig{
		Train:        train.DefaultConfig(),
		ADMM:         train.DefaultADMMConfig(),
		CalibSamples: 48,
		Seed:         1,
	}
}

// CandidateReport records the search's view of one architecture.
type CandidateReport struct {
	Name        string
	ParamBytes  int
	EstCycles   uint64
	FitsFRAM    bool
	FitsLatency bool
	Selected    bool
}

// Result is the RAD artifact.
type Result struct {
	Arch          *nn.Arch
	Net           *nn.Network
	Model         *quant.Model
	FloatAccuracy float64
	QuantAccuracy float64
	Prune         []train.PruneResult
	EstCycles     uint64
	Search        []CandidateReport
}

// ParamBytes returns the 16-bit storage footprint of an architecture's
// parameters (post-pruning for conv layers with a prune ratio).
func ParamBytes(a *nn.Arch) int {
	total := 0
	for _, s := range a.Specs {
		switch s.Kind {
		case "conv":
			positions := s.InC * s.KH * s.KW
			kept := positions
			if s.PruneRatio > 0 {
				kept = int(float64(positions) * (1 - s.PruneRatio))
			}
			total += s.OutC*kept + s.OutC
		case "dense":
			total += s.In*s.Out + s.Out
		case "bcm":
			p := (s.Out + s.K - 1) / s.K
			q := (s.In + s.K - 1) / s.K
			total += p*q*s.K + s.Out
		}
	}
	return 2 * total
}

// EstimateCycles approximates the ACE inference latency of an
// architecture under the given cost table. It mirrors ACE's dataflow
// (weight staging, window gathers, LEA vector ops) closely enough to
// rank candidates; the true number comes from running the simulator.
func EstimateCycles(a *nn.Arch, c device.Costs) uint64 {
	var cy uint64
	for _, s := range a.Specs {
		switch s.Kind {
		case "conv":
			oh := uint64(s.InH - s.KH + 1)
			ow := uint64(s.InW - s.KW + 1)
			positions := s.InC * s.KH * s.KW
			kept := positions
			if s.PruneRatio > 0 {
				kept = int(float64(positions) * (1 - s.PruneRatio))
			}
			rows := uint64(s.InC * s.KH) // DMA row segments per window
			perPixel := rows*(c.DMASetupCycles+uint64(s.KW)*c.DMAWordCycles) +
				uint64(s.OutC)*(c.LEASetupCycles+uint64(kept)*c.LEAMACCyclesPerElem) +
				uint64(s.OutC)*c.FRAMWriteWordCycles
			cy += oh * ow * perPixel
		case "pool":
			n := uint64(quant.LayerOutLen(s))
			cy += n * (uint64(s.PoolSize*s.PoolSize)*(c.FRAMReadWordCycles+c.CPUOpCycles) + c.FRAMWriteWordCycles)
		case "relu":
			cy += uint64(s.N) * (c.FRAMReadWordCycles + 2*c.CPUOpCycles + c.FRAMWriteWordCycles)
		case "dense":
			cy += uint64(s.Out) * (c.DMASetupCycles + uint64(s.In)*c.DMAWordCycles +
				c.LEASetupCycles + uint64(s.In)*c.LEAMACCyclesPerElem)
		case "bcm":
			k := uint64(s.K)
			p := uint64((s.Out + s.K - 1) / s.K)
			q := uint64((s.In + s.K - 1) / s.K)
			log2 := uint64(0)
			for v := s.K; v > 1; v >>= 1 {
				log2++
			}
			fft := c.LEASetupCycles + (k/2)*log2*c.LEAFFTButterflyCycles
			perBlock := 2*(c.DMASetupCycles+k*c.DMAWordCycles) + // x, w staging
				3*fft + // FFT, FFT, IFFT
				(c.LEASetupCycles + k*c.LEACMulCyclesPerElem) + // MPY
				(c.LEASetupCycles + k*c.LEAAddCyclesPerElem) + // ACC
				3*k*c.CPUOpCycles // packing/extraction
			cy += p * (q*perBlock + k*c.FRAMWriteWordCycles)
		}
	}
	return cy
}

// Search filters and ranks candidate architectures against the
// constraints (smallest estimated latency first). It returns the
// ranked survivors and a report over all candidates.
func Search(candidates []*nn.Arch, cons Constraints, costs device.Costs) ([]*nn.Arch, []CandidateReport) {
	if cons.FRAMBytes == 0 {
		cons.FRAMBytes = DefaultConstraints().FRAMBytes
	}
	type scored struct {
		arch *nn.Arch
		est  uint64
	}
	var ok []scored
	reports := make([]CandidateReport, 0, len(candidates))
	for _, a := range candidates {
		bytes := ParamBytes(a)
		est := EstimateCycles(a, costs)
		r := CandidateReport{
			Name:        a.Name,
			ParamBytes:  bytes,
			EstCycles:   est,
			FitsFRAM:    bytes <= cons.FRAMBytes,
			FitsLatency: cons.MaxCycles == 0 || est <= cons.MaxCycles,
		}
		reports = append(reports, r)
		if r.FitsFRAM && r.FitsLatency {
			ok = append(ok, scored{a, est})
		}
	}
	sort.SliceStable(ok, func(i, j int) bool { return ok[i].est < ok[j].est })
	ranked := make([]*nn.Arch, len(ok))
	for i, s := range ok {
		ranked[i] = s.arch
	}
	for i := range reports {
		if len(ranked) > 0 && reports[i].Name == ranked[0].Name {
			reports[i].Selected = true
		}
	}
	return ranked, reports
}

// Train runs the full RAD pipeline on one architecture: train, prune
// (when the arch asks for it), calibrate, quantize.
func Train(arch *nn.Arch, set *dataset.Set, cfg PipelineConfig) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	net := arch.Build(rng)
	res := train.Run(net, set, cfg.Train)

	var pruneResults []train.PruneResult
	for _, s := range arch.Specs {
		if s.Kind == "conv" && s.PruneRatio > 0 {
			pruneResults = train.PruneConvADMM(net, arch, set, cfg.ADMM)
			break
		}
	}

	nCalib := cfg.CalibSamples
	if nCalib <= 0 {
		nCalib = 48
	}
	if nCalib > len(set.Train) {
		nCalib = len(set.Train)
	}
	calib := make([][]float64, nCalib)
	for i := 0; i < nCalib; i++ {
		calib[i] = set.Train[i].Input
	}
	m, err := quant.Quantize(net, arch, calib)
	if err != nil {
		return nil, fmt.Errorf("rad: quantize: %w", err)
	}

	out := &Result{
		Arch:          arch,
		Net:           net,
		Model:         m,
		FloatAccuracy: set.Accuracy(net.Predict),
		QuantAccuracy: QuantAccuracy(m, set),
		Prune:         pruneResults,
		EstCycles:     EstimateCycles(arch, device.DefaultCosts()),
	}
	_ = res
	return out, nil
}

// QuantAccuracy measures the quantized model's test accuracy (the
// Table II "quant" column) over a bounded worker pool. Executors are
// not goroutine-safe, so each worker builds its own; the result is the
// same order-independent correct count a serial evaluation produces.
func QuantAccuracy(m *quant.Model, set *dataset.Set) float64 {
	n := len(set.Test)
	if n == 0 {
		return 0
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return set.Accuracy(quant.NewExecutor(m).Predict)
	}
	var next, correct atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			exe := quant.NewExecutor(m)
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				s := &set.Test[i]
				if exe.Predict(s.Input) == s.Label {
					correct.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	return float64(correct.Load()) / float64(n)
}

// SearchAndTrain runs Search then trains ranked candidates until one
// meets the accuracy constraint.
func SearchAndTrain(candidates []*nn.Arch, set *dataset.Set, cons Constraints, cfg PipelineConfig) (*Result, error) {
	ranked, reports := Search(candidates, cons, device.DefaultCosts())
	if len(ranked) == 0 {
		return nil, fmt.Errorf("rad: no candidate fits the constraints (%d examined)", len(candidates))
	}
	var last *Result
	for _, a := range ranked {
		r, err := Train(a, set, cfg)
		if err != nil {
			return nil, err
		}
		r.Search = reports
		last = r
		if r.QuantAccuracy >= cons.MinAccuracy {
			return r, nil
		}
	}
	return last, fmt.Errorf("rad: no candidate reached accuracy %.2f (best %.2f)",
		cons.MinAccuracy, last.QuantAccuracy)
}
