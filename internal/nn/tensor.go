// Package nn is the float64 deep-learning stack RAD trains offline:
// layers (Conv2D, MaxPool2D, ReLU, Dense, BCMDense), sequential
// networks, and the paper's three model architectures from Table II.
// It exists to produce weights; the fixed-point on-device engines live
// in the runtime packages.
package nn

import (
	"fmt"
	"math/rand"
)

// Tensor is a trainable parameter: flat data with a matching gradient
// accumulator.
type Tensor struct {
	Name string
	Data []float64
	Grad []float64
}

// NewTensor returns a zeroed tensor of length n.
func NewTensor(name string, n int) *Tensor {
	return &Tensor{Name: name, Data: make([]float64, n), Grad: make([]float64, n)}
}

// InitUniform fills Data uniformly from [-limit, limit].
func (t *Tensor) InitUniform(limit float64, rng *rand.Rand) {
	for i := range t.Data {
		t.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}

// ZeroGrad clears the gradient accumulator.
func (t *Tensor) ZeroGrad() {
	for i := range t.Grad {
		t.Grad[i] = 0
	}
}

// Layer is one differentiable stage of a sequential network. Forward
// caches whatever Backward needs; Backward consumes the cached state
// and returns the gradient with respect to the layer input. Layers are
// stateful and not safe for concurrent use — mirroring the single
// static allocation of an embedded deployment.
type Layer interface {
	// Name identifies the layer in reports and serialized models.
	Name() string
	// OutLen returns the flattened output length.
	OutLen() int
	// Forward computes the layer output for the flattened input.
	Forward(x []float64) []float64
	// Backward propagates the upstream gradient, accumulating into
	// parameter gradients, and returns dL/dx.
	Backward(dy []float64) []float64
	// Params returns the trainable tensors (empty for stateless
	// layers).
	Params() []*Tensor
}

func checkLen(layer string, got, want int) {
	if got != want {
		panic(fmt.Sprintf("nn: %s: input length %d, want %d", layer, got, want))
	}
}
