package nn

import (
	"fmt"
	"math/rand"
)

// LayerSpec describes one layer as plain data. Architectures-as-data
// let RAD's search enumerate candidates, the quantizer export models,
// and the on-device runtimes rebuild execution plans — all from one
// source of truth.
type LayerSpec struct {
	Kind string // "conv", "pool", "relu", "flatten", "dense", "bcm"

	// conv
	InC, InH, InW int
	OutC, KH, KW  int
	// PruneRatio is the structured-pruning target for conv layers:
	// the fraction of kernel positions to remove (0.5 = the paper's
	// 2x compression). Zero means dense.
	PruneRatio float64

	// pool
	PoolSize int

	// dense / bcm
	In, Out int
	K       int // BCM block size
	// WeightNorm enables RAD's normalization: weight-row normalization
	// on dense layers, full cosine normalization (weight norm plus
	// input-norm scaling) on bcm layers.
	WeightNorm bool

	// relu / flatten
	N int
}

// Arch is an architecture: an ordered list of layer specs.
type Arch struct {
	Name       string
	InShape    [3]int // C, H, W
	NumClasses int
	Specs      []LayerSpec
}

// InLen returns the flattened input length.
func (a *Arch) InLen() int { return a.InShape[0] * a.InShape[1] * a.InShape[2] }

// Build instantiates a trainable network from the spec list.
func (a *Arch) Build(rng *rand.Rand) *Network {
	layers := make([]Layer, 0, len(a.Specs))
	for _, s := range a.Specs {
		switch s.Kind {
		case "conv":
			layers = append(layers, NewConv2D(s.InC, s.InH, s.InW, s.OutC, s.KH, s.KW, rng))
		case "pool":
			layers = append(layers, NewMaxPool2D(s.InC, s.InH, s.InW, s.PoolSize))
		case "relu":
			layers = append(layers, NewReLU(s.N))
		case "flatten":
			layers = append(layers, NewFlatten(s.N))
		case "dense":
			layers = append(layers, NewDense(s.In, s.Out, s.WeightNorm, rng))
		case "bcm":
			layers = append(layers, NewBCMDense(s.In, s.Out, s.K, s.WeightNorm, rng))
		default:
			panic(fmt.Sprintf("nn: unknown layer kind %q", s.Kind))
		}
	}
	return NewNetwork(a.Name, a.InLen(), layers...)
}

// MNISTArch is Table II's image-classification model: LeNet-style.
//
//	Conv 6×1×5×5 → pool → relu → Conv 16×6×5×5 (structured pruning 2x)
//	→ pool → relu → FC 256×256 (BCM, block fcK) → relu → FC 256×10
//
// fcK is the BCM block size of the first FC layer (128 in the paper;
// Fig. 8 sweeps 32/64/128). prune enables the conv2 structured
// pruning. The 256×256 FC layer keeps its activations in fixed-point
// range without cosine normalization, so only the final classifier is
// weight-normalized; HAR and OKG, whose FC inputs are an order of
// magnitude wider, need the full normalization.
func MNISTArch(fcK int, prune bool) *Arch {
	pruneRatio := 0.0
	if prune {
		pruneRatio = 0.5
	}
	return &Arch{
		Name:       "mnist",
		InShape:    [3]int{1, 28, 28},
		NumClasses: 10,
		Specs: []LayerSpec{
			{Kind: "conv", InC: 1, InH: 28, InW: 28, OutC: 6, KH: 5, KW: 5},
			{Kind: "pool", InC: 6, InH: 24, InW: 24, PoolSize: 2},
			{Kind: "relu", N: 6 * 12 * 12},
			{Kind: "conv", InC: 6, InH: 12, InW: 12, OutC: 16, KH: 5, KW: 5, PruneRatio: pruneRatio},
			{Kind: "pool", InC: 16, InH: 8, InW: 8, PoolSize: 2},
			{Kind: "relu", N: 16 * 4 * 4},
			{Kind: "flatten", N: 256},
			{Kind: "bcm", In: 256, Out: 256, K: fcK},
			{Kind: "relu", N: 256},
			{Kind: "dense", In: 256, Out: 10, WeightNorm: true},
		},
	}
}

// MNISTDenseArch is the uncompressed MNIST model (BASE/SONIC/TAILS run
// this: no BCM, no pruning), with the first FC layer dense.
func MNISTDenseArch() *Arch {
	a := MNISTArch(128, false)
	a.Name = "mnist-dense"
	a.Specs[7] = LayerSpec{Kind: "dense", In: 256, Out: 256}
	return a
}

// HARArch is Table II's wearable model:
//
//	Conv 32×1×1×12 → relu → FC 3520×128 (BCM k1) → relu →
//	FC 128×64 (BCM k2) → relu → FC 64×6
//
// Paper values: k1=128, k2=64.
func HARArch(k1, k2 int) *Arch {
	return &Arch{
		Name:       "har",
		InShape:    [3]int{1, 1, 121},
		NumClasses: 6,
		Specs: []LayerSpec{
			{Kind: "conv", InC: 1, InH: 1, InW: 121, OutC: 32, KH: 1, KW: 12},
			{Kind: "relu", N: 32 * 110},
			{Kind: "flatten", N: 3520},
			{Kind: "bcm", In: 3520, Out: 128, K: k1, WeightNorm: true},
			{Kind: "relu", N: 128},
			{Kind: "bcm", In: 128, Out: 64, K: k2},
			{Kind: "relu", N: 64},
			{Kind: "dense", In: 64, Out: 6, WeightNorm: true},
		},
	}
}

// HARDenseArch is the uncompressed HAR model.
func HARDenseArch() *Arch {
	a := HARArch(128, 64)
	a.Name = "har-dense"
	a.Specs[3] = LayerSpec{Kind: "dense", In: 3520, Out: 128}
	a.Specs[5] = LayerSpec{Kind: "dense", In: 128, Out: 64}
	return a
}

// OKGArch is Table II's keyword-recognition model:
//
//	Conv 6×1×5×5 → relu → FC 3456×512 (BCM k1) → relu →
//	FC 512×256 (BCM k2) → relu → FC 256×128 (BCM k3) → relu →
//	FC 128×12
//
// Paper values: k1=256, k2=128, k3=64.
func OKGArch(k1, k2, k3 int) *Arch {
	return &Arch{
		Name:       "okg",
		InShape:    [3]int{1, 28, 28},
		NumClasses: 12,
		Specs: []LayerSpec{
			{Kind: "conv", InC: 1, InH: 28, InW: 28, OutC: 6, KH: 5, KW: 5},
			{Kind: "relu", N: 6 * 24 * 24},
			{Kind: "flatten", N: 3456},
			{Kind: "bcm", In: 3456, Out: 512, K: k1, WeightNorm: true},
			{Kind: "relu", N: 512},
			{Kind: "bcm", In: 512, Out: 256, K: k2},
			{Kind: "relu", N: 256},
			{Kind: "bcm", In: 256, Out: 128, K: k3},
			{Kind: "relu", N: 128},
			{Kind: "dense", In: 128, Out: 12, WeightNorm: true},
		},
	}
}

// OKGDenseArch is the uncompressed OKG model.
func OKGDenseArch() *Arch {
	a := OKGArch(256, 128, 64)
	a.Name = "okg-dense"
	a.Specs[3] = LayerSpec{Kind: "dense", In: 3456, Out: 512}
	a.Specs[5] = LayerSpec{Kind: "dense", In: 512, Out: 256}
	a.Specs[7] = LayerSpec{Kind: "dense", In: 256, Out: 128}
	return a
}
