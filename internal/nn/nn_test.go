package nn

import (
	"math"
	"math/rand"
	"testing"
)

// numericGrad computes dLoss/dparam by central differences for a
// network whose loss is <logits, dy>.
func numericGrad(n *Network, x, dy []float64, p *Tensor, i int) float64 {
	const h = 1e-6
	loss := func() float64 {
		out := n.Forward(x)
		var s float64
		for j := range out {
			s += out[j] * dy[j]
		}
		return s
	}
	orig := p.Data[i]
	p.Data[i] = orig + h
	lp := loss()
	p.Data[i] = orig - h
	lm := loss()
	p.Data[i] = orig
	return (lp - lm) / (2 * h)
}

// checkGrads verifies every parameter gradient of the network against
// central differences, sampling at most maxPer per tensor.
func checkGrads(t *testing.T, n *Network, x []float64, rng *rand.Rand, tol float64, maxPer int) {
	t.Helper()
	dy := make([]float64, n.OutLen())
	for i := range dy {
		dy[i] = rng.Float64()*2 - 1
	}
	n.ZeroGrad()
	n.Forward(x)
	n.Backward(dy)
	for _, p := range n.Params() {
		idxs := rng.Perm(len(p.Data))
		if len(idxs) > maxPer {
			idxs = idxs[:maxPer]
		}
		for _, i := range idxs {
			num := numericGrad(n, x, dy, p, i)
			if math.Abs(num-p.Grad[i]) > tol*(1+math.Abs(num)) {
				t.Fatalf("%s[%d]: analytic %v, numeric %v", p.Name, i, p.Grad[i], num)
			}
		}
	}
}

func randInput(n int, rng *rand.Rand) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()*2 - 1
	}
	return x
}

func TestConv2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	conv := NewConv2D(2, 6, 6, 3, 3, 3, rng)
	n := NewNetwork("t", 2*6*6, conv)
	checkGrads(t, n, randInput(2*6*6, rng), rng, 1e-4, 20)
}

func TestConv2DMaskedGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	conv := NewConv2D(1, 5, 5, 2, 3, 3, rng)
	mask := make([]float64, len(conv.W.Data))
	for i := range mask {
		if i%2 == 0 {
			mask[i] = 1
		}
	}
	conv.ApplyMask(mask)
	n := NewNetwork("t", 25, conv)
	x := randInput(25, rng)
	checkGrads(t, n, x, rng, 1e-4, 18)
	// Masked weights stay zero and receive zero gradient.
	n.ZeroGrad()
	out := n.Forward(x)
	dy := make([]float64, len(out))
	for i := range dy {
		dy[i] = 1
	}
	n.Backward(dy)
	for i, m := range mask {
		if m == 0 {
			if conv.W.Data[i] != 0 {
				t.Errorf("masked weight %d nonzero", i)
			}
			if conv.W.Grad[i] != 0 {
				t.Errorf("masked weight %d got gradient %v", i, conv.W.Grad[i])
			}
		}
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	p := NewMaxPool2D(1, 4, 4, 2)
	x := []float64{
		1, 2, 0, 0,
		3, 4, 0, 5,
		0, 0, 7, 0,
		6, 0, 0, 0,
	}
	out := p.Forward(x)
	want := []float64{4, 5, 6, 7}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("pool[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	dx := p.Backward([]float64{1, 1, 1, 1})
	// Gradient routes only to the argmax positions.
	if dx[5] != 1 || dx[7] != 1 || dx[12] != 1 || dx[10] != 1 {
		t.Errorf("pool backward = %v", dx)
	}
	var sum float64
	for _, v := range dx {
		sum += v
	}
	if sum != 4 {
		t.Errorf("pool backward total = %v, want 4", sum)
	}
}

func TestReLU(t *testing.T) {
	r := NewReLU(4)
	out := r.Forward([]float64{-1, 2, 0, 3})
	if out[0] != 0 || out[1] != 2 || out[2] != 0 || out[3] != 3 {
		t.Errorf("relu forward = %v", out)
	}
	dx := r.Backward([]float64{5, 5, 5, 5})
	if dx[0] != 0 || dx[1] != 5 || dx[2] != 0 || dx[3] != 5 {
		t.Errorf("relu backward = %v", dx)
	}
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := NewNetwork("t", 6, NewDense(6, 4, false, rng))
	checkGrads(t, n, randInput(6, rng), rng, 1e-4, 24)
}

func TestDenseWeightNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := NewNetwork("t", 5, NewDense(5, 3, true, rng))
	checkGrads(t, n, randInput(5, rng), rng, 1e-3, 15)
}

func TestDenseWeightNormBoundsOutputs(t *testing.T) {
	// With unit-norm rows and |x| ≤ 1 per element, |w·x|/‖w‖ ≤ ‖x‖ —
	// and for moderate inputs the outputs stay well within Q15 range.
	rng := rand.New(rand.NewSource(5))
	d := NewDense(8, 4, true, rng)
	// Blow up the raw weights: normalization must keep outputs sane.
	for i := range d.W.Data {
		d.W.Data[i] *= 1e4
	}
	x := make([]float64, 8)
	for i := range x {
		x[i] = 1.0 / 3 // ‖x‖ < 1
	}
	out := d.Forward(x)
	for i, v := range out {
		if math.Abs(v) > 1 {
			t.Errorf("normalized output %d = %v escapes [-1,1]", i, v)
		}
	}
}

func TestBCMDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := NewNetwork("t", 8, NewBCMDense(8, 8, 4, false, rng))
	checkGrads(t, n, randInput(8, rng), rng, 1e-4, 32)
}

func TestBCMDensePaddedGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := NewNetwork("t", 6, NewBCMDense(6, 10, 4, false, rng))
	checkGrads(t, n, randInput(6, rng), rng, 1e-4, 32)
}

func TestBCMDenseSharesStorageWithView(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := NewBCMDense(8, 8, 4, false, rng)
	d.W.Data[0] = 0.123
	if d.BCM().Blocks[0][0][0] != 0.123 {
		t.Error("BCM view does not share tensor storage")
	}
}

func TestNetworkStacking(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := NewNetwork("stack", 16,
		NewDense(16, 8, false, rng),
		NewReLU(8),
		NewDense(8, 3, false, rng),
	)
	out := n.Forward(randInput(16, rng))
	if len(out) != 3 {
		t.Fatalf("output length %d", len(out))
	}
	checkGrads(t, n, randInput(16, rng), rng, 1e-4, 10)
}

func TestNetworkShapeMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	defer func() {
		if recover() == nil {
			t.Error("expected panic for mismatched shapes")
		}
	}()
	NewNetwork("bad", 16,
		NewDense(16, 8, false, rng),
		NewDense(9, 3, false, rng), // 8 != 9
	)
}

func TestEndToEndSmallConvNetGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := NewNetwork("tiny-lenet", 64,
		NewConv2D(1, 8, 8, 2, 3, 3, rng),
		NewMaxPool2D(2, 6, 6, 2),
		NewReLU(2*3*3),
		NewFlatten(18),
		NewBCMDense(18, 8, 4, false, rng),
		NewReLU(8),
		NewDense(8, 3, false, rng),
	)
	checkGrads(t, n, randInput(64, rng), rng, 1e-3, 8)
}

func TestArchBuildAllPaperModels(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	cases := []struct {
		arch      *Arch
		outLen    int
		wantInLen int
	}{
		{MNISTArch(128, true), 10, 784},
		{MNISTDenseArch(), 10, 784},
		{HARArch(128, 64), 6, 121},
		{HARDenseArch(), 6, 121},
		{OKGArch(256, 128, 64), 12, 784},
		{OKGDenseArch(), 12, 784},
	}
	for _, c := range cases {
		net := c.arch.Build(rng)
		if net.OutLen() != c.outLen {
			t.Errorf("%s: OutLen = %d, want %d", c.arch.Name, net.OutLen(), c.outLen)
		}
		if c.arch.InLen() != c.wantInLen {
			t.Errorf("%s: InLen = %d, want %d", c.arch.Name, c.arch.InLen(), c.wantInLen)
		}
		out := net.Forward(make([]float64, c.arch.InLen()))
		if len(out) != c.outLen {
			t.Errorf("%s: forward length %d", c.arch.Name, len(out))
		}
	}
}

func TestBCMCompressionFactorsMatchTable2(t *testing.T) {
	// Table II: MNIST FC1 128x, HAR FC1 128x / FC2 64x,
	// OKG FC1 256x / FC2 128x / FC3 64x (modulo padding).
	rng := rand.New(rand.NewSource(13))
	type fcCheck struct {
		arch  *Arch
		spec  int
		wantK int
	}
	for _, c := range []fcCheck{
		{MNISTArch(128, true), 7, 128},
		{HARArch(128, 64), 3, 128},
		{HARArch(128, 64), 5, 64},
		{OKGArch(256, 128, 64), 3, 256},
		{OKGArch(256, 128, 64), 5, 128},
		{OKGArch(256, 128, 64), 7, 64},
	} {
		s := c.arch.Specs[c.spec]
		if s.Kind != "bcm" || s.K != c.wantK {
			t.Errorf("%s spec %d: kind=%s K=%d, want bcm K=%d",
				c.arch.Name, c.spec, s.Kind, s.K, c.wantK)
		}
	}
	// Compression factor = dense params / bcm params ≈ K for exact
	// grids.
	net := MNISTArch(128, true).Build(rng)
	var bcm *BCMDense
	for _, l := range net.Layers {
		if b, ok := l.(*BCMDense); ok {
			bcm = b
		}
	}
	dense := 256 * 256
	got := float64(dense) / float64(len(bcm.W.Data))
	if math.Abs(got-128) > 1e-9 {
		t.Errorf("MNIST FC1 compression = %v, want 128", got)
	}
}

func TestParamCount(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	n := NewNetwork("t", 4, NewDense(4, 3, false, rng))
	if got := n.ParamCount(); got != 4*3+3 {
		t.Errorf("ParamCount = %d, want 15", got)
	}
}

func TestUnknownLayerKindPanics(t *testing.T) {
	a := &Arch{Name: "bad", InShape: [3]int{1, 1, 4}, Specs: []LayerSpec{{Kind: "mystery"}}}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	a.Build(rand.New(rand.NewSource(1)))
}
