package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Conv2D is a valid-padding, stride-1 convolution over channel-major
// (C, H, W) inputs. An optional structured-pruning mask (same shape as
// the weights) is applied multiplicatively in both passes, so ADMM's
// hard-pruned positions stay exactly zero through retraining.
type Conv2D struct {
	InC, InH, InW int
	OutC, KH, KW  int

	W *Tensor // OutC·InC·KH·KW, laid out [oc][ic][ky][kx]
	B *Tensor // OutC

	// Mask is nil for a dense layer; otherwise 0/1 per weight.
	Mask []float64

	x []float64 // cached input for Backward
}

// NewConv2D builds a convolution layer with Xavier-uniform init.
func NewConv2D(inC, inH, inW, outC, kh, kw int, rng *rand.Rand) *Conv2D {
	if inH < kh || inW < kw {
		panic(fmt.Sprintf("nn: conv kernel %dx%d larger than input %dx%d", kh, kw, inH, inW))
	}
	c := &Conv2D{
		InC: inC, InH: inH, InW: inW,
		OutC: outC, KH: kh, KW: kw,
		W: NewTensor("conv.w", outC*inC*kh*kw),
		B: NewTensor("conv.b", outC),
	}
	fanIn := float64(inC * kh * kw)
	fanOut := float64(outC * kh * kw)
	c.W.InitUniform(math.Sqrt(6/(fanIn+fanOut)), rng)
	return c
}

// OutH returns the output height (valid padding, stride 1).
func (c *Conv2D) OutH() int { return c.InH - c.KH + 1 }

// OutW returns the output width.
func (c *Conv2D) OutW() int { return c.InW - c.KW + 1 }

// Name implements Layer.
func (c *Conv2D) Name() string { return "conv2d" }

// OutLen implements Layer.
func (c *Conv2D) OutLen() int { return c.OutC * c.OutH() * c.OutW() }

// Params implements Layer.
func (c *Conv2D) Params() []*Tensor { return []*Tensor{c.W, c.B} }

// weight returns the effective (masked) weight at flat index i.
func (c *Conv2D) weight(i int) float64 {
	if c.Mask != nil {
		return c.W.Data[i] * c.Mask[i]
	}
	return c.W.Data[i]
}

// Forward implements Layer.
func (c *Conv2D) Forward(x []float64) []float64 {
	checkLen("conv2d", len(x), c.InC*c.InH*c.InW)
	c.x = x
	oh, ow := c.OutH(), c.OutW()
	out := make([]float64, c.OutC*oh*ow)
	for oc := 0; oc < c.OutC; oc++ {
		bias := c.B.Data[oc]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				sum := bias
				for ic := 0; ic < c.InC; ic++ {
					wBase := ((oc*c.InC + ic) * c.KH) * c.KW
					xBase := ic*c.InH*c.InW + oy*c.InW + ox
					for ky := 0; ky < c.KH; ky++ {
						wRow := wBase + ky*c.KW
						xRow := xBase + ky*c.InW
						for kx := 0; kx < c.KW; kx++ {
							sum += c.weight(wRow+kx) * x[xRow+kx]
						}
					}
				}
				out[(oc*oh+oy)*ow+ox] = sum
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(dy []float64) []float64 {
	oh, ow := c.OutH(), c.OutW()
	checkLen("conv2d backward", len(dy), c.OutC*oh*ow)
	dx := make([]float64, c.InC*c.InH*c.InW)
	for oc := 0; oc < c.OutC; oc++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				g := dy[(oc*oh+oy)*ow+ox]
				if g == 0 {
					continue
				}
				c.B.Grad[oc] += g
				for ic := 0; ic < c.InC; ic++ {
					wBase := ((oc*c.InC + ic) * c.KH) * c.KW
					xBase := ic*c.InH*c.InW + oy*c.InW + ox
					for ky := 0; ky < c.KH; ky++ {
						wRow := wBase + ky*c.KW
						xRow := xBase + ky*c.InW
						for kx := 0; kx < c.KW; kx++ {
							c.W.Grad[wRow+kx] += g * c.x[xRow+kx]
							dx[xRow+kx] += g * c.weight(wRow+kx)
						}
					}
				}
			}
		}
	}
	// Masked positions accumulate no gradient.
	if c.Mask != nil {
		for i, m := range c.Mask {
			c.W.Grad[i] *= m
		}
	}
	return dx
}

// ApplyMask installs a structured-pruning mask and zeroes the masked
// weights so the dense storage matches the pruned model.
func (c *Conv2D) ApplyMask(mask []float64) {
	if len(mask) != len(c.W.Data) {
		panic("nn: mask length mismatch")
	}
	c.Mask = mask
	for i, m := range mask {
		if m == 0 {
			c.W.Data[i] = 0
		}
	}
}

// MaxPool2D is a non-overlapping max pooling layer over (C, H, W)
// inputs with a square window; H and W must divide evenly by Size.
type MaxPool2D struct {
	C, H, W int
	Size    int

	argmax []int // cached winner index per output element
}

// NewMaxPool2D builds a pooling layer.
func NewMaxPool2D(c, h, w, size int) *MaxPool2D {
	if h%size != 0 || w%size != 0 {
		panic(fmt.Sprintf("nn: pool size %d does not divide %dx%d", size, h, w))
	}
	return &MaxPool2D{C: c, H: h, W: w, Size: size}
}

// OutH returns the pooled height.
func (p *MaxPool2D) OutH() int { return p.H / p.Size }

// OutW returns the pooled width.
func (p *MaxPool2D) OutW() int { return p.W / p.Size }

// Name implements Layer.
func (p *MaxPool2D) Name() string { return "maxpool2d" }

// OutLen implements Layer.
func (p *MaxPool2D) OutLen() int { return p.C * p.OutH() * p.OutW() }

// Params implements Layer.
func (p *MaxPool2D) Params() []*Tensor { return nil }

// Forward implements Layer.
func (p *MaxPool2D) Forward(x []float64) []float64 {
	checkLen("maxpool2d", len(x), p.C*p.H*p.W)
	oh, ow := p.OutH(), p.OutW()
	out := make([]float64, p.C*oh*ow)
	p.argmax = make([]int, len(out))
	for c := 0; c < p.C; c++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := math.Inf(-1)
				bestIdx := -1
				for dy := 0; dy < p.Size; dy++ {
					for dx := 0; dx < p.Size; dx++ {
						idx := c*p.H*p.W + (oy*p.Size+dy)*p.W + ox*p.Size + dx
						if x[idx] > best {
							best = x[idx]
							bestIdx = idx
						}
					}
				}
				o := (c*oh+oy)*ow + ox
				out[o] = best
				p.argmax[o] = bestIdx
			}
		}
	}
	return out
}

// Backward implements Layer.
func (p *MaxPool2D) Backward(dy []float64) []float64 {
	checkLen("maxpool2d backward", len(dy), p.OutLen())
	dx := make([]float64, p.C*p.H*p.W)
	for o, g := range dy {
		dx[p.argmax[o]] += g
	}
	return dx
}

// ReLU is the rectifier, elementwise over any shape.
type ReLU struct {
	N    int
	mask []bool
}

// NewReLU builds a rectifier for inputs of length n.
func NewReLU(n int) *ReLU { return &ReLU{N: n} }

// Name implements Layer.
func (r *ReLU) Name() string { return "relu" }

// OutLen implements Layer.
func (r *ReLU) OutLen() int { return r.N }

// Params implements Layer.
func (r *ReLU) Params() []*Tensor { return nil }

// Forward implements Layer.
func (r *ReLU) Forward(x []float64) []float64 {
	checkLen("relu", len(x), r.N)
	out := make([]float64, r.N)
	r.mask = make([]bool, r.N)
	for i, v := range x {
		if v > 0 {
			out[i] = v
			r.mask[i] = true
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(dy []float64) []float64 {
	checkLen("relu backward", len(dy), r.N)
	dx := make([]float64, r.N)
	for i, g := range dy {
		if r.mask[i] {
			dx[i] = g
		}
	}
	return dx
}
