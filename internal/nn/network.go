package nn

import (
	"fmt"

	"ehdl/internal/mat"
)

// Network is a sequential stack of layers.
type Network struct {
	Name   string
	InLen  int
	Layers []Layer
}

// NewNetwork validates that consecutive layer shapes line up by
// running a zero probe through the stack.
func NewNetwork(name string, inLen int, layers ...Layer) *Network {
	n := &Network{Name: name, InLen: inLen, Layers: layers}
	probe := make([]float64, inLen)
	defer func() {
		if r := recover(); r != nil {
			panic(fmt.Sprintf("nn: network %q has inconsistent shapes: %v", name, r))
		}
	}()
	n.Forward(probe)
	return n
}

// Forward runs the full stack and returns the logits.
func (n *Network) Forward(x []float64) []float64 {
	for _, l := range n.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward propagates dLoss/dlogits through the stack, accumulating
// parameter gradients.
func (n *Network) Backward(dy []float64) {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		dy = n.Layers[i].Backward(dy)
	}
}

// Params returns every trainable tensor in the network.
func (n *Network) Params() []*Tensor {
	var ps []*Tensor
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrad clears all parameter gradients.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.ZeroGrad()
	}
}

// Predict returns the argmax class for input x.
func (n *Network) Predict(x []float64) int {
	return mat.Argmax(n.Forward(x))
}

// OutLen returns the logits length.
func (n *Network) OutLen() int { return n.Layers[len(n.Layers)-1].OutLen() }

// ParamCount returns the total number of trainable scalars.
func (n *Network) ParamCount() int {
	total := 0
	for _, p := range n.Params() {
		total += len(p.Data)
	}
	return total
}
