package nn

import (
	"math"
	"math/rand"

	"ehdl/internal/circulant"
)

// Dense is a fully connected layer y = Wx + b with an optional
// weight-row normalization: with WeightNorm set, each output uses
// ŵ_r = w_r / max(‖w_r‖, ε), RAD's mechanism (via cosine
// normalization, §III-A) for keeping pre-activations inside [-1, 1]
// regardless of how training scales the raw weights.
type Dense struct {
	In, Out    int
	WeightNorm bool

	W *Tensor // Out·In, row-major
	B *Tensor // Out

	x     []float64 // cached input
	norms []float64 // cached ‖w_r‖ when WeightNorm
}

const weightNormEps = 1e-3

// NewDense builds a fully connected layer with Xavier-uniform init.
func NewDense(in, out int, weightNorm bool, rng *rand.Rand) *Dense {
	d := &Dense{
		In: in, Out: out, WeightNorm: weightNorm,
		W: NewTensor("dense.w", out*in),
		B: NewTensor("dense.b", out),
	}
	d.W.InitUniform(math.Sqrt(6/float64(in+out)), rng)
	return d
}

// Name implements Layer.
func (d *Dense) Name() string { return "dense" }

// OutLen implements Layer.
func (d *Dense) OutLen() int { return d.Out }

// Params implements Layer.
func (d *Dense) Params() []*Tensor { return []*Tensor{d.W, d.B} }

// Forward implements Layer.
func (d *Dense) Forward(x []float64) []float64 {
	checkLen("dense", len(x), d.In)
	d.x = x
	out := make([]float64, d.Out)
	if d.WeightNorm {
		d.norms = make([]float64, d.Out)
	}
	for r := 0; r < d.Out; r++ {
		row := d.W.Data[r*d.In : (r+1)*d.In]
		var sum float64
		for c, xv := range x {
			sum += row[c] * xv
		}
		if d.WeightNorm {
			n := rowNorm(row)
			d.norms[r] = n
			sum /= n
		}
		out[r] = sum + d.B.Data[r]
	}
	return out
}

func rowNorm(row []float64) float64 {
	var s float64
	for _, v := range row {
		s += v * v
	}
	return math.Max(math.Sqrt(s), weightNormEps)
}

// Backward implements Layer.
func (d *Dense) Backward(dy []float64) []float64 {
	checkLen("dense backward", len(dy), d.Out)
	dx := make([]float64, d.In)
	for r := 0; r < d.Out; r++ {
		g := dy[r]
		d.B.Grad[r] += g
		row := d.W.Data[r*d.In : (r+1)*d.In]
		grow := d.W.Grad[r*d.In : (r+1)*d.In]
		if !d.WeightNorm {
			for c := 0; c < d.In; c++ {
				grow[c] += g * d.x[c]
				dx[c] += g * row[c]
			}
			continue
		}
		// y_r = (w_r·x)/n_r + b_r with n_r = ‖w_r‖ (when above ε):
		// dy/dw = x/n − (w_r·x)·w_r/n³ ; dy/dx = w_r/n.
		n := d.norms[r]
		var dot float64
		for c := 0; c < d.In; c++ {
			dot += row[c] * d.x[c]
		}
		inv := 1 / n
		inv3dot := dot / (n * n * n)
		clamped := n == weightNormEps
		for c := 0; c < d.In; c++ {
			if clamped {
				grow[c] += g * d.x[c] * inv
			} else {
				grow[c] += g * (d.x[c]*inv - row[c]*inv3dot)
			}
			dx[c] += g * row[c] * inv
		}
	}
	return dx
}

// NormalizedWeights returns the effective weight matrix rows (after
// weight normalization if enabled) — what the quantizer exports.
func (d *Dense) NormalizedWeights() []float64 {
	out := make([]float64, len(d.W.Data))
	copy(out, d.W.Data)
	if d.WeightNorm {
		for r := 0; r < d.Out; r++ {
			row := out[r*d.In : (r+1)*d.In]
			n := rowNorm(row)
			for c := range row {
				row[c] /= n
			}
		}
	}
	return out
}

// BCMDense is a fully connected layer whose weight matrix is
// block-circulant: the compressed format RAD applies to FC layers.
// Parameters live in a single flat tensor (P·Q·K defining values);
// the BCM view shares that storage.
//
// With CosNorm set the layer applies RAD's cosine normalization
// (§III-A): y = (W/n)·(x/m) + b with n the largest block-row weight
// norm and m = max(‖x‖, 1). Both scale factors keep every intermediate
// inside the fixed-point range — without them a 16-bit deployment of a
// freely-trained network loses most of its precision to range scaling.
// The factors are treated as constants in the backward pass
// (straight-through), which in practice steers training to bounded
// weights without the full quotient-rule gradient.
type BCMDense struct {
	In, Out, K int
	CosNorm    bool

	W *Tensor // P·Q·K block-defining values
	B *Tensor // Out

	bcm *circulant.BCM // views into W.Data
	x   []float64
	// cached forward scales for Backward (straight-through).
	invNM float64

	// Reusable buffers: per-block FFT scratch plus the forward output,
	// input gradient, per-block weight gradients and scaled upstream
	// gradient, so steady-state training steps allocate nothing in this
	// layer. Forward and Backward return views into these buffers,
	// valid until the layer's next Forward/Backward call.
	scr    circulant.Scratch
	out    []float64
	dx     []float64
	grads  [][][]float64
	scaled []float64
}

// NewBCMDense builds a BCM-compressed FC layer with block size k.
func NewBCMDense(in, out, k int, cosNorm bool, rng *rand.Rand) *BCMDense {
	probe := circulant.New(out, in, k)
	w := NewTensor("bcm.w", probe.ParamCount())
	// Each output sums In contributions: scale init like a dense layer.
	w.InitUniform(math.Sqrt(6/float64(in+out)), rng)
	return &BCMDense{
		In: in, Out: out, K: k, CosNorm: cosNorm,
		W:   w,
		B:   NewTensor("bcm.b", out),
		bcm: circulant.FromFlat(out, in, k, w.Data),
	}
}

// WeightNorm returns n: the largest over block rows of the row weight
// norm sqrt(Σ_j ‖w_ij‖²), floored at weightNormEps. Circulant rows
// within a block row are permutations of each other, so they share one
// norm. This uniform scalar is what export folds into the weights.
func (d *BCMDense) WeightNorm() float64 {
	var maxN float64
	for i := 0; i < d.bcm.P; i++ {
		var s float64
		for j := 0; j < d.bcm.Q; j++ {
			for _, v := range d.bcm.Blocks[i][j] {
				s += v * v
			}
		}
		maxN = math.Max(maxN, math.Sqrt(s))
	}
	return math.Max(maxN, weightNormEps)
}

// cosNormGain is the fixed gain applied after cosine normalization
// (Luo et al. recommend a scale factor; without one the bounded
// outputs starve downstream layers of signal). Power of two, so it
// folds into the quantizer's shift bookkeeping for free.
const cosNormGain = 4.0

// inputScale returns 1/max(‖x‖, 1).
func inputScale(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	n := math.Sqrt(s)
	if n <= 1 {
		return 1
	}
	return 1 / n
}

// Name implements Layer.
func (d *BCMDense) Name() string { return "bcmdense" }

// OutLen implements Layer.
func (d *BCMDense) OutLen() int { return d.Out }

// Params implements Layer.
func (d *BCMDense) Params() []*Tensor { return []*Tensor{d.W, d.B} }

// BCM returns the live block-circulant view of the weights.
func (d *BCMDense) BCM() *circulant.BCM { return d.bcm }

// Forward implements Layer. The returned slice is owned by the layer
// and overwritten by its next Forward call.
func (d *BCMDense) Forward(x []float64) []float64 {
	checkLen("bcmdense", len(x), d.In)
	d.x = x
	d.invNM = 1
	if d.CosNorm {
		d.invNM = cosNormGain * inputScale(x) / d.WeightNorm()
	}
	out := d.bcm.MulVecInto(d.out, x, &d.scr)
	d.out = out
	for r := range out {
		out[r] = out[r]*d.invNM + d.B.Data[r]
	}
	return out
}

// Backward implements Layer (scales treated as constants). The
// returned slice is owned by the layer and overwritten by its next
// Backward call.
func (d *BCMDense) Backward(dy []float64) []float64 {
	checkLen("bcmdense backward", len(dy), d.Out)
	scaled := dy
	if d.invNM != 1 {
		if d.scaled == nil {
			d.scaled = make([]float64, d.Out)
		}
		scaled = d.scaled
		for r, g := range dy {
			scaled[r] = g * d.invNM
		}
	}
	for r, g := range dy {
		d.B.Grad[r] += g
	}
	dx, grads := d.bcm.BackwardInto(d.dx, d.grads, d.x, scaled, &d.scr)
	d.dx, d.grads = dx, grads
	p := d.bcm.P
	q := d.bcm.Q
	for i := 0; i < p; i++ {
		for j := 0; j < q; j++ {
			off := (i*q + j) * d.K
			for t := 0; t < d.K; t++ {
				d.W.Grad[off+t] += grads[i][j][t]
			}
		}
	}
	return dx
}

// CosNormFactor returns the full forward scale gain·(1/m)/n the layer
// applies for input x (1 when CosNorm is off) — the quantizer's bound
// computations are linear in it.
func (d *BCMDense) CosNormFactor(x []float64) float64 {
	if !d.CosNorm {
		return 1
	}
	return cosNormGain * inputScale(x) / d.WeightNorm()
}

// NormalizedBlocks returns the flat block weights with the uniform
// cosine-normalization factor folded in (w/n); the identity when
// CosNorm is off. This is what the quantizer stores.
func (d *BCMDense) NormalizedBlocks() []float64 {
	out := make([]float64, len(d.W.Data))
	copy(out, d.W.Data)
	if d.CosNorm {
		scale := cosNormGain / d.WeightNorm()
		for i := range out {
			out[i] *= scale
		}
	}
	return out
}

// Flatten is a shape adapter; data is already flat, so it is the
// identity on values and exists for architectural clarity.
type Flatten struct {
	N int
}

// NewFlatten builds a flatten layer for inputs of length n.
func NewFlatten(n int) *Flatten { return &Flatten{N: n} }

// Name implements Layer.
func (f *Flatten) Name() string { return "flatten" }

// OutLen implements Layer.
func (f *Flatten) OutLen() int { return f.N }

// Params implements Layer.
func (f *Flatten) Params() []*Tensor { return nil }

// Forward implements Layer.
func (f *Flatten) Forward(x []float64) []float64 {
	checkLen("flatten", len(x), f.N)
	return x
}

// Backward implements Layer.
func (f *Flatten) Backward(dy []float64) []float64 {
	checkLen("flatten backward", len(dy), f.N)
	return dy
}
