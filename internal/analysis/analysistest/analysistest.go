// Package analysistest runs an analyzer over checked-in testdata
// packages and checks its diagnostics against // want comments, in
// the style of golang.org/x/tools/go/analysis/analysistest (which the
// offline build cannot import).
//
// Layout: <analyzer pkg>/testdata/src/<pkg>/*.go. A line expecting a
// diagnostic carries a trailing comment of the form
//
//	// want `regexp`
//
// (backquoted) or // want "regexp". Every reported diagnostic must
// match a want on its line, and every want must be matched, or the
// test fails.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"ehdl/internal/analysis"
	"ehdl/internal/analysis/load"
)

// wantRe extracts the expectation pattern from a comment.
var wantRe = regexp.MustCompile("// want (`([^`]*)`|\"([^\"]*)\")")

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads testdata/src/<pkg> for each named package, applies the
// analyzer, and enforces the want expectations.
func Run(t *testing.T, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		dir := filepath.Join("testdata", "src", pkg)
		p, err := load.Dir(dir)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		wants := collectWants(t, p)
		var diags []analysis.Diagnostic
		pass := analysis.NewPass(a, p.Fset, p.Files, p.Pkg, p.Info, func(d analysis.Diagnostic) {
			diags = append(diags, d)
		})
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s: analyzer %s: %v", pkg, a.Name, err)
		}
		sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
		for _, d := range diags {
			pos := p.Fset.Position(d.Pos)
			if !match(wants, pos, d.Message) {
				t.Errorf("%s: unexpected diagnostic: %s", posString(pos), d.Message)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
			}
		}
	}
}

// collectWants scans every file's comments for want expectations.
func collectWants(t *testing.T, p *load.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.Contains(c.Text, "// want") {
						t.Fatalf("%s: malformed want comment: %s",
							posString(p.Fset.Position(c.Pos())), c.Text)
					}
					continue
				}
				pat := m[2]
				if pat == "" {
					pat = m[3]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want pattern %q: %v",
						posString(p.Fset.Position(c.Pos())), pat, err)
				}
				pos := p.Fset.Position(c.Pos())
				wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants
}

func match(wants []*want, pos token.Position, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

func posString(pos token.Position) string {
	return fmt.Sprintf("%s:%d:%d", pos.Filename, pos.Line, pos.Column)
}
