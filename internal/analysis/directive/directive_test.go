package directive

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const src = `package p

// doc comment
//
//ehdl:hotpath inner loop of the forward pass
func hot() {
	x := 1 //ehdl:unordered trailing justification
	_ = x
	//ehdl:alloc standalone governs next line
	y := 2
	_ = y
	if x == y { //ehdl:alloc covers the block
		z := 3
		_ = z
	}
	//ehdl:wallclock
	w := 4
	_ = w
}
`

func parseSrc(t *testing.T) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func TestTrailingAndStandalone(t *testing.T) {
	fset, f := parseSrc(t)
	idx := Index(fset, f)

	// Trailing directive governs its own line (x := 1 is line 7).
	d, ok := idx.At(7, "unordered")
	if !ok {
		t.Fatalf("no unordered directive on line 7")
	}
	if d.Arg != "trailing justification" {
		t.Fatalf("Arg = %q", d.Arg)
	}

	// Standalone directive on line 9 governs line 10 (y := 2).
	if _, ok := idx.At(9, "alloc"); ok {
		t.Fatalf("standalone directive should not govern its own line")
	}
	if _, ok := idx.At(10, "alloc"); !ok {
		t.Fatalf("standalone directive does not govern the next line")
	}

	// Empty justification parses with Arg == "" (the analyzers reject it).
	d, ok = idx.At(17, "wallclock")
	if !ok {
		t.Fatalf("no wallclock directive on line 17")
	}
	if d.Arg != "" {
		t.Fatalf("Arg = %q, want empty", d.Arg)
	}

	// A misspelled name never matches: fails closed.
	if _, ok := idx.At(7, "unorderd"); ok {
		t.Fatalf("typo matched a directive")
	}
}

func TestCoveringClimbsStatements(t *testing.T) {
	fset, f := parseSrc(t)
	idx := Index(fset, f)

	// Find z := 3 inside the if block and the stack above it.
	var target ast.Node
	var stack []ast.Node
	var walk func(n ast.Node, cur []ast.Node)
	walk = func(n ast.Node, cur []ast.Node) {
		if as, ok := n.(*ast.AssignStmt); ok {
			if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "z" {
				target = n
				stack = append([]ast.Node(nil), cur...)
			}
		}
		cur = append(cur, n)
		for _, c := range childrenOf(n) {
			walk(c, cur)
		}
	}
	walk(f, nil)
	if target == nil {
		t.Fatalf("did not find z := 3")
	}
	d, ok := idx.Covering(fset, target, stack, "alloc")
	if !ok {
		t.Fatalf("directive on if header does not cover the block")
	}
	if d.Arg != "covers the block" {
		t.Fatalf("Arg = %q", d.Arg)
	}
	// But it must not cover nodes outside the if statement.
	var outside ast.Node
	var outStack []ast.Node
	var findW func(n ast.Node, cur []ast.Node)
	findW = func(n ast.Node, cur []ast.Node) {
		if as, ok := n.(*ast.AssignStmt); ok {
			if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "x" {
				outside = n
				outStack = append([]ast.Node(nil), cur...)
			}
		}
		cur = append(cur, n)
		for _, c := range childrenOf(n) {
			findW(c, cur)
		}
	}
	findW(f, nil)
	if _, ok := idx.Covering(fset, outside, outStack, "alloc"); ok {
		t.Fatalf("alloc directive leaked outside its statement")
	}
}

func TestFromDoc(t *testing.T) {
	_, f := parseSrc(t)
	fn := f.Decls[0].(*ast.FuncDecl)
	d, ok := FromDoc(fn.Doc, "hotpath")
	if !ok {
		t.Fatalf("hotpath directive not found in doc comment")
	}
	if d.Arg != "inner loop of the forward pass" {
		t.Fatalf("Arg = %q", d.Arg)
	}
	if _, ok := FromDoc(fn.Doc, "alloc"); ok {
		t.Fatalf("unrelated directive matched in doc")
	}
}

// childrenOf returns the direct AST children of n, in source order.
func childrenOf(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}
