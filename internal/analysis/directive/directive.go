// Package directive parses the //ehdl: comment annotations that the
// ehdlvet analyzers share, so all passes agree on one syntax:
//
//	//ehdl:<name> <justification...>
//
// Recognized names are the business of each analyzer (unordered,
// wallclock, alloc, opaque, hotpath); this package only tokenizes and
// answers "which directive governs this source line". A trailing
// directive (code on the same line) governs its own line; a directive
// on a line of its own governs the next line — which, for the
// statement-level checks, means the statement starting there.
//
// Misspelled names are not an error here: an unknown directive simply
// fails to match any analyzer's lookup, so the diagnostic it was
// meant to silence still fires — the gate fails closed.
package directive

import (
	"go/ast"
	"go/token"
	"strings"
)

// Prefix introduces every ehdl directive comment.
const Prefix = "//ehdl:"

// Directive is one parsed //ehdl: annotation.
type Directive struct {
	Name string    // e.g. "unordered"
	Arg  string    // trailing justification, may be ""
	Pos  token.Pos // position of the comment
}

// parse splits a raw comment text into a Directive, or ok=false if it
// is not an ehdl directive.
func parse(text string, pos token.Pos) (Directive, bool) {
	rest, ok := strings.CutPrefix(text, Prefix)
	if !ok {
		return Directive{}, false
	}
	name, arg, _ := strings.Cut(rest, " ")
	name = strings.TrimSpace(name)
	if name == "" {
		return Directive{}, false
	}
	// An embedded "//" ends the justification, so an ordinary comment
	// can follow a directive on the same line.
	if i := strings.Index(arg, "//"); i >= 0 {
		arg = arg[:i]
	}
	return Directive{Name: name, Arg: strings.TrimSpace(arg), Pos: pos}, true
}

// File indexes a parsed file's directives by the line they govern.
type File struct {
	byLine map[int][]Directive
}

// Index collects every //ehdl: directive in f. To decide whether a
// comment is trailing (governs its own line) or standalone (governs
// the next line), it marks every line on which an AST node begins as
// a code line; a directive on a code line is trailing.
func Index(fset *token.FileSet, f *ast.File) *File {
	codeLines := map[int]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return true
		}
		if n.Pos().IsValid() {
			codeLines[fset.Position(n.Pos()).Line] = true
		}
		return true
	})
	idx := &File{byLine: map[int][]Directive{}}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			d, ok := parse(c.Text, c.Pos())
			if !ok {
				continue
			}
			line := fset.Position(c.Pos()).Line
			if !codeLines[line] {
				line++ // standalone comment: governs the next line
			}
			idx.byLine[line] = append(idx.byLine[line], d)
		}
	}
	return idx
}

// At returns the directive named name governing the given line.
func (f *File) At(line int, name string) (Directive, bool) {
	for _, d := range f.byLine[line] {
		if d.Name == name {
			return d, true
		}
	}
	return Directive{}, false
}

// Covering looks for a directive named name governing the line on
// which node begins, or the line of any enclosing statement in stack
// (innermost last, as produced by analysis.WalkStack). This lets one
// annotation on an `if` header cover the allocation-fallback block
// under it, without ever reaching past the enclosing function body.
func (f *File) Covering(fset *token.FileSet, node ast.Node, stack []ast.Node, name string) (Directive, bool) {
	if d, ok := f.At(fset.Position(node.Pos()).Line, name); ok {
		return d, true
	}
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit, *ast.File:
			return Directive{}, false
		case ast.Stmt:
			if d, ok := f.At(fset.Position(stack[i].Pos()).Line, name); ok {
				return d, true
			}
		}
	}
	return Directive{}, false
}

// FromDoc scans a declaration's doc comment group for a directive.
func FromDoc(doc *ast.CommentGroup, name string) (Directive, bool) {
	if doc == nil {
		return Directive{}, false
	}
	for _, c := range doc.List {
		if d, ok := parse(c.Text, c.Pos()); ok && d.Name == name {
			return d, true
		}
	}
	return Directive{}, false
}
