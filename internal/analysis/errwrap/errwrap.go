// Package errwrap enforces the PR 3 typed-error discipline: in the
// packages whose errors cross the CLI boundary, fmt.Errorf that
// stringifies an error argument without %w severs the chain that
// errors.Is/As (and every `grep -q` in the smoke tests) depends on.
//
// The rule: a fmt.Errorf call whose arguments include an error must
// contain %w somewhere in its constant format string. The deliberate
// `"%w: %v"` pattern — wrap the sentinel, stringify the cause —
// passes, because the chain stays typed through the sentinel. A call
// that must intentionally flatten an error (e.g. to keep a raw gob
// message out of user output) is annotated `//ehdl:opaque <why>`.
package errwrap

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"ehdl/internal/analysis"
	"ehdl/internal/analysis/directive"
)

// Analyzer is the errwrap pass.
var Analyzer = &analysis.Analyzer{
	Name: "errwrap",
	Doc:  "requires fmt.Errorf with error arguments to wrap via %w in CLI-facing packages",
	Packages: []string{
		"ehdl/internal/artifact/...",
		"ehdl/internal/cli",
		"ehdl/internal/fleet/...",
		"ehdl/internal/fleetd",
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	errorType := types.Universe.Lookup("error").Type()
	for _, file := range pass.Files {
		idx := directive.Index(pass.Fset, file)
		analysis.WalkStack(file, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
				return true
			}
			if len(call.Args) < 2 {
				return true
			}
			format, ok := constFormat(pass, call.Args[0])
			if !ok {
				return true // dynamic format: out of scope
			}
			if strings.Contains(strings.ReplaceAll(format, "%%", ""), "%w") {
				return true
			}
			hasErrArg := false
			for _, arg := range call.Args[1:] {
				if t := pass.TypesInfo.TypeOf(arg); t != nil && types.AssignableTo(t, errorType) {
					hasErrArg = true
					break
				}
			}
			if !hasErrArg {
				return true
			}
			if d, ok := idx.Covering(pass.Fset, call, stack, "opaque"); ok {
				if d.Arg == "" {
					pass.Reportf(d.Pos, "//ehdl:opaque needs a justification: say why this error chain is deliberately severed")
				}
				return true
			}
			pass.Reportf(call.Pos(), "fmt.Errorf stringifies an error without %%w: the chain becomes invisible to errors.Is/As; wrap with %%w or a sentinel, or annotate //ehdl:opaque <why>")
			return true
		})
	}
	return nil
}

// constFormat extracts a constant string format argument.
func constFormat(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
