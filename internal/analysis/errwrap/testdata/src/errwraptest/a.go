// Package errwraptest exercises the errwrap analyzer.
package errwraptest

import (
	"errors"
	"fmt"
)

var errSentinel = errors.New("sentinel")

// severed stringifies the cause: errors.Is can no longer see it.
func severed(err error) error {
	return fmt.Errorf("loading model: %v", err) // want `without %w`
}

// wrapped keeps the chain typed.
func wrapped(err error) error {
	return fmt.Errorf("loading model: %w", err)
}

// sentinelWrap is the blessed `"%w: %v"` pattern: the sentinel stays
// inspectable, the cause is deliberately flattened into the message.
func sentinelWrap(err error) error {
	return fmt.Errorf("%w: payload does not decode: %v", errSentinel, err)
}

// noErrArgs formats plain values: nothing to wrap.
func noErrArgs(n int) error {
	return fmt.Errorf("bad count %d", n)
}

// opaque flattens on purpose, with a reason.
func opaque(err error) error {
	return fmt.Errorf("internal state invalid: %v", err) //ehdl:opaque raw decoder text must not reach CLI output
}

// opaqueUnjustified flattens with an empty justification.
func opaqueUnjustified(err error) error {
	return fmt.Errorf("state invalid: %v", err) //ehdl:opaque // want `needs a justification`
}

// escapedPercent must not count %%w as wrapping.
func escapedPercent(err error) error {
	return fmt.Errorf("literal %%w here: %v", err) // want `without %w`
}
