package errwrap

import (
	"testing"

	"ehdl/internal/analysis/analysistest"
)

func TestErrwrap(t *testing.T) {
	analysistest.Run(t, Analyzer, "errwraptest")
}

func TestAppliesTo(t *testing.T) {
	for path, want := range map[string]bool{
		"ehdl/internal/artifact":       true,
		"ehdl/internal/artifact/cache": true,
		"ehdl/internal/fleet/memo":     true,
		"ehdl/internal/cli":            true,
		"ehdl/internal/quant":          false,
	} {
		if got := Analyzer.AppliesTo(path); got != want {
			t.Errorf("AppliesTo(%q) = %v, want %v", path, got, want)
		}
	}
}
