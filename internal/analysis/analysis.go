// Package analysis is the in-repo static-analysis framework behind
// cmd/ehdlvet: a deliberately small, API-compatible subset of
// golang.org/x/tools/go/analysis (which this offline build cannot
// depend on), built entirely on the standard library's go/ast and
// go/types plus a `go list`-driven package loader (see the load
// subpackage).
//
// An Analyzer is one invariant checker — a named pass that receives a
// fully type-checked package and reports Diagnostics. The repo ships
// four (detmap, noclock, hotalloc, errwrap), each defending one of
// the bit-identity contracts the fleet pipeline is built on; see
// docs/ANALYZERS.md for what they enforce and how to suppress a
// finding with an //ehdl: directive.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one static-analysis pass.
type Analyzer struct {
	// Name identifies the pass in diagnostics and enables the
	// -<name>=false multichecker flag.
	Name string
	// Doc is the one-line description shown by ehdlvet's usage text.
	Doc string
	// Packages restricts where the multichecker applies the pass: a
	// list of import paths, exact ("ehdl/internal/fleet") or subtree
	// ("ehdl/internal/..."). Empty means every package. The restriction
	// is advisory routing, not part of the pass itself — analysistest
	// runs the pass on any package it is handed.
	Packages []string
	// Exclude removes import paths (same syntax) from Packages' match.
	Exclude []string
	// Run executes the pass over one package.
	Run func(*Pass) error
}

// AppliesTo reports whether the multichecker should run the analyzer
// on the package with the given import path.
func (a *Analyzer) AppliesTo(importPath string) bool {
	for _, pat := range a.Exclude {
		if matchPattern(pat, importPath) {
			return false
		}
	}
	if len(a.Packages) == 0 {
		return true
	}
	for _, pat := range a.Packages {
		if matchPattern(pat, importPath) {
			return true
		}
	}
	return false
}

// matchPattern matches an import path against an exact path or a
// "prefix/..." subtree pattern ("prefix/..." also matches "prefix").
func matchPattern(pat, path string) bool {
	const subtree = "/..."
	if p, ok := cutSuffix(pat, subtree); ok {
		return path == p || (len(path) > len(p) && path[:len(p)] == p && path[len(p)] == '/')
	}
	return pat == path
}

func cutSuffix(s, suffix string) (string, bool) {
	if len(s) >= len(suffix) && s[len(s)-len(suffix):] == suffix {
		return s[:len(s)-len(suffix)], true
	}
	return s, false
}

// Pass carries one type-checked package through an Analyzer.Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// report receives every diagnostic (set by the runner).
	report func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Report emits a diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf formats and emits a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// NewPass assembles a Pass whose diagnostics are appended via sink —
// the entry point shared by the ehdlvet runner and analysistest.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, sink func(Diagnostic)) *Pass {
	return &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info, report: sink}
}

// WalkStack traverses the AST depth-first like ast.Inspect, but hands
// the visitor the stack of enclosing nodes (outermost first, not
// including n itself). Returning false skips n's subtree. Several
// passes need the enclosing statements of a finding — for directive
// coverage and for enclosing-function lookups — which ast.Inspect
// cannot provide.
func WalkStack(root ast.Node, visit func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		ok := visit(n, stack)
		if ok {
			stack = append(stack, n)
		}
		return ok
	})
}
