// Package detmap flags `for … range` over a map in determinism-
// critical packages: Go randomizes map iteration order, so any
// order-sensitive loop body silently breaks the repo's byte-identity
// contracts (NDJSON row streams, report rendering, shard merges).
//
// A map range is accepted without annotation in exactly two shapes:
//
//  1. Order-insensitive body: every statement either writes
//     element k of another map (a per-key fold), accumulates into an
//     integer with a commutative operator (+= -= *= |= &= ^= &^=,
//     ++/--), declares call-free locals, deletes map keys, or wraps
//     such statements in call-free ifs. Float accumulation is NOT
//     order-insensitive (rounding) and is flagged.
//
//  2. Collect-then-sort: the body only appends keys/values to a
//     slice, and that slice is passed to a sort.* or slices.Sort*
//     call later in the same function.
//
// Anything else needs `//ehdl:unordered <justification>` on the range
// line (or the line above) — with a non-empty justification.
package detmap

import (
	"go/ast"
	"go/token"
	"go/types"

	"ehdl/internal/analysis"
	"ehdl/internal/analysis/directive"
)

// Analyzer is the detmap pass.
var Analyzer = &analysis.Analyzer{
	Name: "detmap",
	Doc:  "flags map iteration whose order can leak into results in determinism-critical packages",
	Packages: []string{
		"ehdl/internal/fleet",
		"ehdl/internal/fleet/memo",
		"ehdl/internal/fleetd",
		"ehdl/internal/cli",
		"ehdl/internal/experiments",
		"ehdl/internal/quant",
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		idx := directive.Index(pass.Fset, file)
		analysis.WalkStack(file, func(n ast.Node, stack []ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if d, ok := idx.Covering(pass.Fset, rs, stack, "unordered"); ok {
				if d.Arg == "" {
					pass.Reportf(d.Pos, "//ehdl:unordered needs a justification: say why iteration order cannot affect results")
				}
				return true
			}
			c := &checker{pass: pass, keyObj: keyObject(pass, rs)}
			if c.bodyOK(rs.Body) {
				if len(c.collected) == 0 {
					return true // order-insensitive fold
				}
				body := enclosingFuncBody(stack)
				for _, obj := range c.collected {
					if !sortedAfter(pass, body, rs.End(), obj) {
						pass.Reportf(rs.For, "map keys collected into %q are never sorted in this function; sort before ordered use, or annotate //ehdl:unordered <why>", obj.Name())
					}
				}
				return true
			}
			pass.Reportf(rs.For, "nondeterministic map iteration: the loop body is order-sensitive; iterate sorted keys, or annotate //ehdl:unordered <why>")
			return true
		})
	}
	return nil
}

// keyObject resolves the loop's key variable, if it declares one.
func keyObject(pass *analysis.Pass, rs *ast.RangeStmt) types.Object {
	id, ok := rs.Key.(*ast.Ident)
	if !ok {
		return nil
	}
	if rs.Tok == token.DEFINE {
		return pass.TypesInfo.Defs[id]
	}
	return pass.TypesInfo.Uses[id]
}

// checker validates that a range body is order-insensitive, recording
// any collector slices (`s = append(s, …)`) it encounters for the
// sorted-after check.
type checker struct {
	pass      *analysis.Pass
	keyObj    types.Object
	collected []types.Object
}

func (c *checker) bodyOK(b *ast.BlockStmt) bool {
	for _, s := range b.List {
		if !c.stmtOK(s) {
			return false
		}
	}
	return true
}

func (c *checker) stmtOK(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		return c.assignOK(s)
	case *ast.IncDecStmt:
		return isInteger(c.pass.TypesInfo.TypeOf(s.X))
	case *ast.ExprStmt:
		// Only builtin delete: removing keys is order-insensitive.
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		return c.isBuiltin(call.Fun, "delete") && c.callFreeAll(call.Args)
	case *ast.IfStmt:
		if s.Init != nil && !c.stmtOK(s.Init) {
			return false
		}
		if !c.callFree(s.Cond) {
			return false
		}
		if !c.bodyOK(s.Body) {
			return false
		}
		if s.Else != nil {
			if blk, ok := s.Else.(*ast.BlockStmt); ok {
				return c.bodyOK(blk)
			}
			return c.stmtOK(s.Else)
		}
		return true
	case *ast.BlockStmt:
		return c.bodyOK(s)
	case *ast.BranchStmt:
		return (s.Tok == token.CONTINUE || s.Tok == token.BREAK) && s.Label == nil
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return false
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				return false
			}
			if !c.callFreeAll(vs.Values) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

func (c *checker) assignOK(s *ast.AssignStmt) bool {
	switch s.Tok {
	case token.DEFINE:
		// Call-free local copies (`g := g`) cannot observe order.
		return c.callFreeAll(s.Rhs)
	case token.ASSIGN:
		// Collector append: s = append(s, …).
		if obj := c.collectorAppend(s); obj != nil {
			c.collected = append(c.collected, obj)
			return true
		}
		// Per-key fold: every target is m[k] for the loop key k (or _),
		// written from call-free expressions. Each iteration touches a
		// distinct element, so order cannot matter.
		if !c.callFreeAll(s.Rhs) {
			return false
		}
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
				continue
			}
			ix, ok := lhs.(*ast.IndexExpr)
			if !ok {
				return false
			}
			id, ok := ix.Index.(*ast.Ident)
			if !ok || c.keyObj == nil || c.pass.TypesInfo.Uses[id] != c.keyObj {
				return false
			}
		}
		return true
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN, token.AND_NOT_ASSIGN:
		// Commutative-fold accumulation is order-insensitive for
		// integers (wrapping arithmetic); float rounding is not.
		if len(s.Lhs) != 1 {
			return false
		}
		return isInteger(c.pass.TypesInfo.TypeOf(s.Lhs[0])) && c.callFreeAll(s.Rhs)
	default:
		return false
	}
}

// collectorAppend matches `x = append(x, …)` and returns x's object.
func (c *checker) collectorAppend(s *ast.AssignStmt) types.Object {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return nil
	}
	lhs, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok || !c.isBuiltin(call.Fun, "append") || len(call.Args) == 0 {
		return nil
	}
	first, ok := call.Args[0].(*ast.Ident)
	if !ok || first.Name != lhs.Name {
		return nil
	}
	obj := c.pass.TypesInfo.Uses[lhs]
	if obj == nil {
		obj = c.pass.TypesInfo.Defs[lhs]
	}
	if obj == nil || c.pass.TypesInfo.Uses[first] != obj {
		return nil
	}
	// The appended values must themselves be call-free.
	if !c.callFreeAll(call.Args[1:]) {
		return nil
	}
	return obj
}

// callFree reports whether e contains no function calls other than
// pure builtins (len, cap, min, max) and type conversions.
func (c *checker) callFree(e ast.Expr) bool {
	if e == nil {
		return true
	}
	ok := true
	ast.Inspect(e, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		if tv, found := c.pass.TypesInfo.Types[call.Fun]; found && tv.IsType() {
			return true // conversion
		}
		switch {
		case c.isBuiltin(call.Fun, "len"), c.isBuiltin(call.Fun, "cap"),
			c.isBuiltin(call.Fun, "min"), c.isBuiltin(call.Fun, "max"):
			return true
		}
		ok = false
		return false
	})
	return ok
}

func (c *checker) callFreeAll(es []ast.Expr) bool {
	for _, e := range es {
		if !c.callFree(e) {
			return false
		}
	}
	return true
}

func (c *checker) isBuiltin(fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

func isInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// enclosingFuncBody returns the body of the innermost enclosing
// function in stack, or the outermost node as a fallback.
func enclosingFuncBody(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	if len(stack) > 0 {
		return stack[0]
	}
	return nil
}

// sortedAfter reports whether obj is passed to a sort.* / slices.* call
// positioned after `after` within body.
func sortedAfter(pass *analysis.Pass, body ast.Node, after token.Pos, obj types.Object) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= after {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		path := pn.Imported().Path()
		if path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					found = true
					return false
				}
				return !found
			})
		}
		return !found
	})
	return found
}
