// Package detmaptest exercises the detmap analyzer: order-sensitive
// map ranges must be flagged; blessed idioms and justified
// annotations must not.
package detmaptest

import (
	"fmt"
	"sort"
)

// floatAccum is order-sensitive: float addition is not associative.
func floatAccum(m map[string]float64) float64 {
	s := 0.0
	for _, v := range m { // want `order-sensitive`
		s += v
	}
	return s
}

// appendNoSort collects keys but never sorts them.
func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `never sorted`
		keys = append(keys, k)
	}
	return keys
}

// callInBody escapes analysis: arbitrary calls may observe order.
func callInBody(m map[string]int) {
	for k, v := range m { // want `order-sensitive`
		fmt.Println(k, v)
	}
}

// collectThenSort is the blessed rendering idiom.
func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// perKeyFold writes only element k of another map each iteration.
func perKeyFold(dst, src map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
}

// intAccum folds with wrapping integer addition: order-insensitive.
func intAccum(m map[string]int) int {
	n := 0
	for _, v := range m {
		if v > 0 {
			n += v
		}
		n++
	}
	return n
}

// localCopy takes a call-free local copy, then folds per key.
func localCopy(dst map[string]*int, src map[string]int) {
	for k, v := range src {
		v := v
		dst[k] = &v
	}
}

// justified carries an annotation with a reason.
func justified(m map[string]chan int) {
	for _, ch := range m { //ehdl:unordered close order does not matter, all channels are independent
		close(ch)
	}
}

// unjustified carries the annotation but no reason: still an error.
func unjustified(m map[string]chan int) {
	for _, ch := range m { //ehdl:unordered  // want `needs a justification`
		close(ch)
	}
}

// sliceRange is not a map range at all.
func sliceRange(xs []int) int {
	n := 0
	for _, v := range xs {
		n += v
	}
	return n
}
