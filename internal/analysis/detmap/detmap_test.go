package detmap

import (
	"testing"

	"ehdl/internal/analysis/analysistest"
)

func TestDetmap(t *testing.T) {
	analysistest.Run(t, Analyzer, "detmaptest")
}

func TestAppliesTo(t *testing.T) {
	for path, want := range map[string]bool{
		"ehdl/internal/fleet":      true,
		"ehdl/internal/fleet/memo": true,
		"ehdl/internal/quant":      true,
		"ehdl/internal/harvest":    false,
		"ehdl/cmd/ehfleet":         false,
	} {
		if got := Analyzer.AppliesTo(path); got != want {
			t.Errorf("AppliesTo(%q) = %v, want %v", path, got, want)
		}
	}
}
