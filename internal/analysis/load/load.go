// Package load type-checks Go packages for the ehdlvet analyzers
// without golang.org/x/tools: one `go list -deps -json` subprocess
// discovers the file sets and import graph, and go/types checks the
// results. Dependency packages (the standard library, from the
// analyzers' point of view) are checked declarations-only
// (IgnoreFuncBodies) with their type errors swallowed; target
// packages are checked fully and any type error is fatal, so a pass
// never walks an ill-typed tree.
//
// All loads share one process-wide token.FileSet and a cache of
// checked dependency packages, so a test binary running several
// analyzers over several testdata packages pays the standard-library
// parse cost once.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one fully type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// listPkg mirrors the fields of `go list -json` output we consume.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

var (
	mu   sync.Mutex
	fset = token.NewFileSet()
	// meta holds `go list` metadata for every package seen so far.
	meta = map[string]*listPkg{}
	// deps caches declarations-only checked dependency packages.
	deps = map[string]*types.Package{}
	// checking guards against import cycles during recursion.
	checking = map[string]bool{}
)

// Targets lists and fully type-checks the packages matching patterns
// (e.g. "./...") relative to dir, returning them in deterministic
// import-path order. Dependencies are loaded as declarations only.
func Targets(dir string, patterns ...string) ([]*Package, error) {
	mu.Lock()
	defer mu.Unlock()
	listed, err := runList(dir, patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, lp := range listed {
		if lp.DepOnly {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("load: package %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg, err := checkTarget(lp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// Dir type-checks the single package rooted at dir (all non-test .go
// files), resolving its imports against the standard library. It is
// the analysistest entry point: testdata packages live outside any
// `go list`-visible build graph, so the files are parsed ad hoc.
func Dir(dir string) (*Package, error) {
	mu.Lock()
	defer mu.Unlock()
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, fmt.Errorf("load: glob %s: %w", dir, err)
	}
	var files []string
	for _, m := range matches {
		if strings.HasSuffix(filepath.Base(m), "_test.go") {
			continue
		}
		files = append(files, m)
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("load: no .go files in %s", dir)
	}
	lp := &listPkg{ImportPath: dir, Dir: dir, GoFiles: nil}
	for _, f := range files {
		lp.GoFiles = append(lp.GoFiles, filepath.Base(f))
	}
	return checkTarget(lp)
}

// runList executes one `go list -e -deps -json` covering patterns and
// records every package's metadata, returning the target (non-DepOnly)
// entries in listing order.
func runList(dir string, patterns []string) ([]*listPkg, error) {
	args := []string{
		"list", "-e", "-deps",
		"-json=ImportPath,Dir,Name,GoFiles,Imports,ImportMap,Standard,DepOnly,Incomplete,Error",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("load: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var listed []*listPkg
	for {
		lp := new(listPkg)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		meta[lp.ImportPath] = lp
		listed = append(listed, lp)
	}
	return listed, nil
}

// ensureMeta guarantees `go list` metadata exists for path, listing it
// (plus its deps) on demand — used when an ad-hoc testdata package
// imports something no previous load pulled in.
func ensureMeta(path, fromDir string) (*listPkg, error) {
	if lp, ok := meta[path]; ok {
		return lp, nil
	}
	if _, err := runList(fromDir, []string{path}); err != nil {
		return nil, err
	}
	lp, ok := meta[path]
	if !ok {
		return nil, fmt.Errorf("load: go list did not report %s", path)
	}
	return lp, nil
}

// checkTarget parses and fully type-checks one target package.
func checkTarget(lp *listPkg) (*Package, error) {
	files, err := parseFiles(lp, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Instances:  map[*ast.Ident]types.Instance{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: &mapImporter{from: lp},
		Error:    func(error) {}, // collect all; first error returned by Check
	}
	name := lp.ImportPath
	if lp.Name != "" {
		name = lp.Name
	}
	pkg, err := conf.Check(name, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %w", lp.ImportPath, err)
	}
	return &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
	}, nil
}

// checkDep returns the declarations-only types.Package for a
// dependency import path, checking (and caching) it on first use.
// Type errors in dependencies are ignored: a decl-only check of an
// arbitrary stdlib package can trip over build-tag subtleties that
// never matter to the analyzers, which only need its exported shape.
func checkDep(path, fromDir string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := deps[path]; ok {
		return pkg, nil
	}
	if checking[path] {
		return nil, fmt.Errorf("load: import cycle through %s", path)
	}
	checking[path] = true
	defer delete(checking, path)

	lp, err := ensureMeta(path, fromDir)
	if err != nil {
		return nil, err
	}
	files, err := parseFiles(lp, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	conf := types.Config{
		Importer:         &mapImporter{from: lp},
		IgnoreFuncBodies: true,
		FakeImportC:      true,
		Error:            func(error) {},
	}
	pkg, _ := conf.Check(path, fset, files, nil)
	if pkg == nil {
		return nil, fmt.Errorf("load: dependency %s failed to check", path)
	}
	// Mark complete even on soft errors so importers accept it.
	pkg.MarkComplete()
	deps[path] = pkg
	return pkg, nil
}

func parseFiles(lp *listPkg, mode parser.Mode) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := filepath.Join(lp.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, mode)
		if err != nil {
			return nil, fmt.Errorf("load: parsing %s: %w", path, err)
		}
		files = append(files, f)
	}
	return files, nil
}

// mapImporter resolves import strings written in the source of `from`
// through its ImportMap (vendor indirection) and hands back cached
// declarations-only dependency packages.
type mapImporter struct {
	from *listPkg
}

func (m *mapImporter) Import(path string) (*types.Package, error) {
	resolved := path
	if m.from.ImportMap != nil {
		if r, ok := m.from.ImportMap[path]; ok {
			resolved = r
		}
	}
	return checkDep(resolved, m.from.Dir)
}

var _ types.Importer = (*mapImporter)(nil)
