package load

import (
	"go/ast"
	"testing"
)

// TestTargetsFleet loads a real, import-heavy repo package through the
// `go list` pipeline and requires a complete, well-typed result: every
// identifier that go/types should resolve must resolve.
func TestTargetsFleet(t *testing.T) {
	pkgs, err := Targets("../../..", "./internal/fleet")
	if err != nil {
		t.Fatalf("Targets: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.ImportPath != "ehdl/internal/fleet" {
		t.Fatalf("ImportPath = %q", p.ImportPath)
	}
	if p.Pkg == nil || !p.Pkg.Complete() {
		t.Fatalf("package not completely checked")
	}
	if len(p.Files) == 0 {
		t.Fatalf("no files parsed")
	}
	// _test.go files must not leak into the pass: they are exempt from
	// the determinism analyzers by design.
	for _, f := range p.Files {
		name := p.Fset.Position(f.Package).Filename
		if len(name) >= 8 && name[len(name)-8:] == "_test.go" {
			t.Fatalf("test file %s loaded into non-test pass", name)
		}
	}
	// Spot-check type resolution inside function bodies.
	typed := 0
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				if _, ok := p.Info.Types[e]; ok {
					typed++
				}
			}
			return true
		})
	}
	if typed < 1000 {
		t.Fatalf("only %d typed expressions; type info looks incomplete", typed)
	}
}

// TestTargetsPatterns loads the whole module and requires the fleet
// and quant packages to be present exactly once, in sorted order.
func TestTargetsPatterns(t *testing.T) {
	pkgs, err := Targets("../../..", "./...")
	if err != nil {
		t.Fatalf("Targets ./...: %v", err)
	}
	seen := map[string]int{}
	last := ""
	for _, p := range pkgs {
		seen[p.ImportPath]++
		if p.ImportPath < last {
			t.Fatalf("packages out of order: %s after %s", p.ImportPath, last)
		}
		last = p.ImportPath
	}
	for _, want := range []string{"ehdl/internal/fleet", "ehdl/internal/quant", "ehdl/cmd/ehfleet"} {
		if seen[want] != 1 {
			t.Fatalf("package %s seen %d times, want 1", want, seen[want])
		}
	}
}
