// Package hotalloctest exercises the hotalloc analyzer.
package hotalloctest

import "fmt"

func sinkAny(v any) { _ = v }
func sinkInt(v int) { _ = v }
func sinkVariadic(v ...any) {
	_ = v
}

// hot is annotated; every allocating construct inside must be named.
//
//ehdl:hotpath
func hot(dst, x []float64, n int) float64 {
	buf := make([]float64, n) // want `make allocates`
	buf = append(buf, 1.0)    // want `append allocates`
	s := fmt.Sprintf("%d", n) // want `fmt.Sprintf allocates`
	_ = s
	lit := []int{1, 2, 3} // want `composite literal allocates a slice`
	_ = lit
	m := map[int]int{} // want `composite literal allocates a map`
	_ = m
	p := &point{1, 2} // want `escapes to the heap`
	_ = p
	f := func() {} // want `closure allocates`
	f()
	b := []byte("abc") // want `string-to-slice conversion allocates`
	_ = b
	sinkAny(n)      // want `passing int as any boxes`
	sinkInt(n)      // concrete-to-concrete: fine
	sinkVariadic(n) // want `boxes the value`
	acc := 0.0
	for i := range x {
		dst[i] = x[i] * 2 // element writes are free
		acc += x[i]
	}
	return acc + buf[0]
}

// hotSuppressed shows the two blessed escapes.
//
//ehdl:hotpath cold fallbacks annotated below
func hotSuppressed(dst []float64, n int) []float64 {
	if dst == nil { //ehdl:alloc nil-dst fallback: callers on the hot path always preallocate
		dst = make([]float64, n)
	}
	if n < 0 {
		panic(fmt.Sprintf("bad n %d", n)) // cold failure path: exempt
	}
	return dst
}

// hotUnjustified suppresses without saying why: still an error.
//
//ehdl:hotpath
func hotUnjustified(n int) []int {
	return make([]int, n) //ehdl:alloc // want `needs a justification`
}

// cold is not annotated: allocate freely.
func cold(n int) []int {
	out := make([]int, n)
	return append(out, len(out))
}

type point struct{ x, y int }
