// Package hotalloc flags allocation-inducing constructs inside
// functions whose doc comment carries `//ehdl:hotpath` — the
// source-level twin of the PR 1 zero-alloc benchmark gate, naming the
// offending line instead of just failing a -benchmem assertion.
//
// Inside a hotpath function it reports: make/new/append, slice, map
// and &T{} composite literals, fmt formatting calls (Sprintf, Sprint,
// Sprintln, Errorf, Appendf), string<->[]byte/[]rune conversions,
// non-constant string concatenation, function literals (closure
// allocation), and interface boxing at call sites (a concrete value
// passed as an interface parameter).
//
// Arguments of panic(...) are exempt: a panic is the cold failure
// path, and formatting its message allocates only when the program is
// already dying. Deliberate cold-path allocations (grow-on-demand
// scratch, nil-fallback buffers) are suppressed with
// `//ehdl:alloc <justification>` on the line or its enclosing
// statement header.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"ehdl/internal/analysis"
	"ehdl/internal/analysis/directive"
)

// Analyzer is the hotalloc pass. It applies everywhere: only
// functions annotated //ehdl:hotpath are inspected.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "flags allocation-inducing constructs inside //ehdl:hotpath functions",
	Run:  run,
}

// fmtAllocs are the fmt package's allocating formatters.
var fmtAllocs = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true,
	"Errorf": true, "Appendf": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		idx := directive.Index(pass.Fset, file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if _, ok := directive.FromDoc(fn.Doc, "hotpath"); !ok {
				continue
			}
			checkBody(pass, idx, fn.Body)
		}
	}
	return nil
}

func checkBody(pass *analysis.Pass, idx *directive.File, body *ast.BlockStmt) {
	report := func(n ast.Node, stack []ast.Node, format string, args ...any) {
		if d, ok := idx.Covering(pass.Fset, n, stack, "alloc"); ok {
			if d.Arg == "" {
				pass.Reportf(d.Pos, "//ehdl:alloc needs a justification: say why this allocation is acceptable on the hot path")
			}
			return
		}
		pass.Reportf(n.Pos(), format, args...)
	}
	analysis.WalkStack(body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltin(pass, n.Fun, "panic") {
				return false // cold failure path: skip the whole argument
			}
			if name, ok := builtinName(pass, n.Fun); ok {
				switch name {
				case "make", "new", "append":
					report(n, stack, "%s allocates on the hot path; preallocate in the constructor or reuse scratch", name)
				}
				return true
			}
			if fn := calledFunc(pass, n); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "fmt" && fmtAllocs[fn.Name()] {
				report(n, stack, "fmt.%s allocates on the hot path; format off the hot path or reuse a buffer", fn.Name())
				return true
			}
			if conv, bad := allocConversion(pass, n); bad {
				report(n, stack, "%s conversion allocates a copy on the hot path", conv)
				return true
			}
			reportBoxedArgs(pass, idx, n, stack, report)
		case *ast.CompositeLit:
			t := pass.TypesInfo.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice, *types.Map:
				report(n, stack, "composite literal allocates a %s on the hot path", kindName(t))
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					report(n, stack, "&composite literal escapes to the heap on the hot path")
					return false // don't double-report the inner literal
				}
			}
		case *ast.FuncLit:
			report(n, stack, "closure allocates on the hot path; hoist it to a named function or method")
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(pass, n) && !isConstant(pass, n) {
				report(n, stack, "string concatenation allocates on the hot path")
			}
		}
		return true
	})
}

// reportBoxedArgs flags concrete values passed as interface parameters.
func reportBoxedArgs(pass *analysis.Pass, idx *directive.File, call *ast.CallExpr, stack []ast.Node,
	report func(ast.Node, []ast.Node, string, ...any)) {
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok || sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type() // []T passed whole: no boxing
			} else if s, ok := params.At(params.Len() - 1).Type().Underlying().(*types.Slice); ok {
				pt = s.Elem()
			}
		} else if i < params.Len() {
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := pass.TypesInfo.TypeOf(arg)
		if at == nil {
			continue
		}
		if _, argIface := at.Underlying().(*types.Interface); argIface {
			continue // interface-to-interface: no new box
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		report(arg, stack, "passing %s as %s boxes the value on the hot path", at, pt)
	}
}

// allocConversion detects string<->[]byte / []rune conversions.
func allocConversion(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return "", false
	}
	dst := tv.Type.Underlying()
	src := pass.TypesInfo.TypeOf(call.Args[0])
	if src == nil {
		return "", false
	}
	srcU := src.Underlying()
	if isString(dst) && isByteOrRuneSlice(srcU) {
		return "[]byte/[]rune-to-string", true
	}
	if isByteOrRuneSlice(dst) && isString(srcU) {
		return "string-to-slice", true
	}
	return "", false
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isStringExpr(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	return t != nil && isString(t.Underlying())
}

func isConstant(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

func builtinName(pass *analysis.Pass, fun ast.Expr) (string, bool) {
	id, ok := fun.(*ast.Ident)
	if !ok {
		return "", false
	}
	if _, isB := pass.TypesInfo.Uses[id].(*types.Builtin); !isB {
		return "", false
	}
	return id.Name, true
}

func isBuiltin(pass *analysis.Pass, fun ast.Expr, name string) bool {
	n, ok := builtinName(pass, fun)
	return ok && n == name
}

func calledFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func kindName(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "value"
}
