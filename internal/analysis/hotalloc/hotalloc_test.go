package hotalloc

import (
	"testing"

	"ehdl/internal/analysis/analysistest"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, Analyzer, "hotalloctest")
}
