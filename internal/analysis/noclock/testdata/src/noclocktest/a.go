// Package noclocktest exercises the noclock analyzer.
package noclocktest

import (
	"math/rand"
	"time"
)

// wallNow reads the wall clock directly.
func wallNow() time.Time {
	return time.Now() // want `reads the wall clock`
}

// wallSince measures elapsed wall time.
func wallSince(start time.Time) time.Duration {
	return time.Since(start) // want `reads the wall clock`
}

// globalRand draws from the process-wide generator.
func globalRand() int {
	return rand.Intn(10) // want `unseeded process-wide state`
}

// seededRand is the blessed pattern: a local, seeded generator.
func seededRand(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// ticker paces progress output; timers are not wall-clock reads.
func ticker() *time.Ticker {
	return time.NewTicker(time.Second)
}

// justified is the annotated escape hatch for progress rendering.
func justified() time.Time {
	return time.Now() //ehdl:wallclock progress ETA rendering only, never feeds a row
}

// unjustified carries the annotation but no reason.
func unjustified() time.Time {
	return time.Now() //ehdl:wallclock // want `needs a justification`
}

// derivedValues on time.Time/Duration are fine; only the reads are banned.
func derivedValues(t time.Time) int64 {
	return t.UnixNano() + int64(3*time.Second)
}
