package noclock

import (
	"testing"

	"ehdl/internal/analysis/analysistest"
)

func TestNoclock(t *testing.T) {
	analysistest.Run(t, Analyzer, "noclocktest")
}

func TestAppliesTo(t *testing.T) {
	for path, want := range map[string]bool{
		"ehdl/internal/fleet":            true,
		"ehdl/internal/harvest":          true,
		"ehdl/internal/intermittent":     true,
		"ehdl/internal/analysis/noclock": false,
		"ehdl/cmd/ehfleet":               false,
	} {
		if got := Analyzer.AppliesTo(path); got != want {
			t.Errorf("AppliesTo(%q) = %v, want %v", path, got, want)
		}
	}
}
