// Package noclock forbids wall-clock and global-randomness reads in
// simulation and aggregation code: every result in this repo must be
// a pure function of (scenario, seed), so time.Now/Since/Until and
// the package-level math/rand functions (whose state is global and
// unseeded) are banned. Seeded generators (rand.New(rand.NewSource))
// are fine — they are how scenarios derandomize — so the rand
// constructors stay legal, as do timers (time.NewTicker) used to pace
// progress output.
//
// The one legitimate wall-clock use — host-time reporting and
// progress/ETA pacing — is annotated `//ehdl:wallclock <why>` and is
// concentrated in fleet.SystemClock.
package noclock

import (
	"go/ast"
	"go/types"

	"ehdl/internal/analysis"
	"ehdl/internal/analysis/directive"
)

// Analyzer is the noclock pass.
var Analyzer = &analysis.Analyzer{
	Name:     "noclock",
	Doc:      "forbids time.Now/Since/Until and global math/rand in simulation and aggregation code",
	Packages: []string{"ehdl/internal/..."},
	Exclude:  []string{"ehdl/internal/analysis/..."},
	Run:      run,
}

// forbiddenTime are the wall-clock reads in package time.
var forbiddenTime = map[string]bool{"Now": true, "Since": true, "Until": true}

// allowedRand are the package-level math/rand (and rand/v2)
// constructors that build seeded, local generators.
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		idx := directive.Index(pass.Fset, file)
		analysis.WalkStack(file, func(n ast.Node, stack []ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			// Only package-level functions: methods on *rand.Rand or
			// time.Time values are deterministic given their receiver.
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			var msg string
			switch fn.Pkg().Path() {
			case "time":
				if forbiddenTime[fn.Name()] {
					msg = "time." + fn.Name() + " reads the wall clock; results must be pure in (scenario, seed) — inject a fleet.Clock, or annotate //ehdl:wallclock <why> for progress-only use"
				}
			case "math/rand", "math/rand/v2":
				if !allowedRand[fn.Name()] {
					msg = "global rand." + fn.Name() + " uses unseeded process-wide state; use a seeded rand.New(rand.NewSource(seed)) instead"
				}
			}
			if msg == "" {
				return true
			}
			if d, ok := idx.Covering(pass.Fset, id, stack, "wallclock"); ok {
				if d.Arg == "" {
					pass.Reportf(d.Pos, "//ehdl:wallclock needs a justification: say why this read cannot reach simulated results")
				}
				return true
			}
			pass.Reportf(id.Pos(), "%s", msg)
			return true
		})
	}
	return nil
}
