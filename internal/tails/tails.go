// Package tails reimplements TAILS [Gobieski et al., ASPLOS'19], the
// paper's hardware-accelerated intermittent baseline: SONIC's loop
// continuation at vector-op granularity, with the actual arithmetic
// done by the LEA over DMA-staged SRAM buffers. A power failure rolls
// execution back to the start of the in-flight vector operation — at
// most one kernel window or one FC row chunk — because the LEA's SRAM
// operands are volatile. TAILS runs the uncompressed model: the FFT
// tricks that make BCM profitable need FLEX-style stage checkpointing
// it does not have (Fig. 6).
package tails

import (
	"fmt"

	"ehdl/internal/device"
	"ehdl/internal/exec"
	"ehdl/internal/fixed"
	"ehdl/internal/quant"
)

// maxVec is the largest vector the LEA workspace holds at once; longer
// rows are processed in chunks (the real LEA owns 4 KB of SRAM).
const maxVec = 1024

// controlOpsPerElement is the per-element task-transition overhead.
const controlOpsPerElement = 12

// Engine is the TAILS runtime for one inference.
type Engine struct {
	d     *device.Device
	store *exec.ModelStore

	in   *device.NVQ15
	acts []*device.NVQ15

	// progress counts completed output elements (committed after each
	// vector op completes).
	progress device.NVWord
	// bcmState double-buffers the mid-row FIR state of a BCM block
	// row: [acc as 2k Q15 words | next j | element tag lo | tag hi].
	// Committed after every block so an outage rolls back at most one
	// FIR command.
	bcmState *device.NVDoubleQ15
	bcmMaxK  int

	// SRAM staging for the LEA: one window/row operand buffer, one
	// weight buffer, and the FIR row accumulators for BCM layers.
	xBuf   []fixed.Q15
	wBuf   []fixed.Q15
	accBuf []fixed.Q31

	windowOffs map[int][]int
	elemBase   []uint64
}

// New builds a TAILS engine over a flashed model store and input.
func New(d *device.Device, store *exec.ModelStore, input []fixed.Q15) (*Engine, error) {
	m := store.Model
	if got, want := len(input), m.InShape[0]*m.InShape[1]*m.InShape[2]; got != want {
		return nil, fmt.Errorf("tails: input length %d, want %d", got, want)
	}
	e := &Engine{d: d, store: store, windowOffs: map[int][]int{}}
	in, err := device.NewNVQ15(d, len(input))
	if err != nil {
		return nil, err
	}
	copy(in.Raw(), input)
	e.in = in

	vecLen := 0
	base := uint64(0)
	for li := range m.Layers {
		l := &m.Layers[li]
		buf, err := device.NewNVQ15(d, quant.LayerOutLen(l.Spec))
		if err != nil {
			return nil, err
		}
		e.acts = append(e.acts, buf)
		switch l.Spec.Kind {
		case "conv":
			e.windowOffs[li] = exec.WindowOffsets(l)
			if n := exec.KernelLen(l); n > vecLen {
				vecLen = n
			}
		case "dense":
			n := l.Spec.In
			if n > maxVec {
				n = maxVec
			}
			if n > vecLen {
				vecLen = n
			}
		case "bcm":
			if l.Spec.K > vecLen {
				vecLen = l.Spec.K
			}
		}
		e.elemBase = append(e.elemBase, base)
		base += uint64(elementCount(l))
	}
	e.elemBase = append(e.elemBase, base)

	e.xBuf, err = device.AllocQ15(d, vecLen)
	if err != nil {
		return nil, err
	}
	e.wBuf, err = device.AllocQ15(d, vecLen)
	if err != nil {
		return nil, err
	}
	maxK := 0
	for li := range m.Layers {
		if s := m.Layers[li].Spec; s.Kind == "bcm" && s.K > maxK {
			maxK = s.K
		}
	}
	if maxK > 0 {
		if e.accBuf, err = device.AllocQ31(d, maxK); err != nil {
			return nil, err
		}
		if e.bcmState, err = device.NewNVDoubleQ15(d, 2*maxK+3); err != nil {
			return nil, err
		}
		e.bcmMaxK = maxK
	}
	if err := d.ReserveFRAM(8); err != nil {
		return nil, err
	}
	return e, nil
}

func elementCount(l *quant.QLayer) int {
	switch l.Spec.Kind {
	case "flatten":
		return 1
	case "bcm":
		// One task per block row: the FIR command produces k outputs.
		return (l.Spec.Out + l.Spec.K - 1) / l.Spec.K
	default:
		return quant.LayerOutLen(l.Spec)
	}
}

// EngineName implements exec.Engine.
func (e *Engine) EngineName() string { return "tails" }

// Output implements exec.Engine.
func (e *Engine) Output() []fixed.Q15 {
	last := e.acts[len(e.acts)-1]
	return append([]fixed.Q15(nil), last.Raw()...)
}

// Progress implements intermittent.ProgressReporter.
func (e *Engine) Progress() uint64 { return e.progress.Peek() }

// Boot implements intermittent.Program.
func (e *Engine) Boot(d *device.Device) error {
	m := e.store.Model
	done := e.progress.Read(d, device.CatRestore)
	total := e.elemBase[len(e.elemBase)-1]
	for done < total {
		li := e.layerOf(done)
		l := &m.Layers[li]
		in := e.in
		if li > 0 {
			in = e.acts[li-1]
		}
		out := e.acts[li]
		elem := int(done - e.elemBase[li])
		switch l.Spec.Kind {
		case "conv":
			e.convElem(d, li, l, in, out, elem)
		case "pool":
			e.poolElem(d, l, in, out, elem)
		case "relu":
			e.reluElem(d, l, in, out, elem)
		case "flatten":
			e.copyThrough(d, in, out)
		case "dense":
			e.denseElem(d, li, l, in, out, elem)
		case "bcm":
			e.bcmElem(d, li, l, in, out, elem)
		default:
			return fmt.Errorf("tails: unsupported layer kind %q", l.Spec.Kind)
		}
		done++
		e.progress.Write(d, device.CatCheckpoint, done)
	}
	return nil
}

func (e *Engine) layerOf(elem uint64) int {
	for li := 0; li < len(e.elemBase)-1; li++ {
		if elem < e.elemBase[li+1] {
			return li
		}
	}
	panic("tails: element cursor out of range")
}

// gatherWindow DMAs the kernel window for output position (oy, ox)
// into xBuf: one DMA per contiguous input row segment, the access
// pattern the real DMA engine supports.
func (e *Engine) gatherWindow(d *device.Device, l *quant.QLayer, in *device.NVQ15, oy, ox int, offs []int) {
	s := l.Spec
	xRaw := in.Raw()
	origin := oy*s.InW + ox
	// Count contiguous runs: offsets are sorted row-major, so runs are
	// maximal stretches of consecutive offsets.
	i := 0
	for i < len(offs) {
		j := i + 1
		for j < len(offs) && offs[j] == offs[j-1]+1 {
			j++
		}
		d.DMAFromFRAM(j-i, device.CatDMA)
		for k := i; k < j; k++ {
			e.xBuf[k] = xRaw[origin+offs[k]]
		}
		i = j
	}
}

func (e *Engine) convElem(d *device.Device, li int, l *quant.QLayer, in, out *device.NVQ15, elem int) {
	s := l.Spec
	oh := s.InH - s.KH + 1
	ow := s.InW - s.KW + 1
	oc := elem / (oh * ow)
	rem := elem % (oh * ow)
	oy := rem / ow
	ox := rem % ow
	offs := e.windowOffs[li]
	win := len(offs)

	d.CPUOps(controlOpsPerElement)
	// TAILS re-stages weights and window per element: its tasks are
	// self-contained so that any of them can be replayed.
	e.gatherWindow(d, l, in, oy, ox, offs)
	d.DMAFromFRAM(win, device.CatDMA)
	copy(e.wBuf[:win], e.store.W[li].Raw()[oc*win:(oc+1)*win])

	d.LEAMAC(win)
	acc := fixed.Dot(e.wBuf[:win], e.xBuf[:win])
	d.FRAMRead(1, device.CatFRAMRead)
	v := fixed.SatAdd(fixed.NarrowQ31(acc, l.AccShift()), e.store.B[li].Raw()[oc])
	out.StoreOne(d, device.CatFRAMWrite, elem, v)
}

func (e *Engine) denseElem(d *device.Device, li int, l *quant.QLayer, in, out *device.NVQ15, elem int) {
	s := l.Spec
	wRaw := e.store.W[li].Raw()
	xRaw := in.Raw()

	d.CPUOps(controlOpsPerElement)
	var acc fixed.Q31
	for start := 0; start < s.In; start += maxVec {
		end := start + maxVec
		if end > s.In {
			end = s.In
		}
		n := end - start
		d.DMAFromFRAM(n, device.CatDMA)
		copy(e.xBuf[:n], xRaw[start:end])
		d.DMAFromFRAM(n, device.CatDMA)
		copy(e.wBuf[:n], wRaw[elem*s.In+start:elem*s.In+end])
		d.LEAMAC(n)
		for k := 0; k < n; k++ {
			acc = fixed.MAC(acc, e.wBuf[k], e.xBuf[k])
		}
	}
	d.FRAMRead(1, device.CatFRAMRead)
	v := fixed.SatAdd(fixed.NarrowQ31(acc, l.AccShift()), e.store.B[li].Raw()[elem])
	out.StoreOne(d, device.CatFRAMWrite, elem, v)
}

// bcmElem computes one block row (k outputs) of a BCM layer with the
// LEA's FIR command and circular input addressing: each staged block
// pair (w_ij, x_j) is one k-tap filter over k circularly-addressed
// positions — k² MAC cycles, no FFT. This is how a TAILS-style runtime
// best exploits the compressed storage without Algorithm 1; it does
// O(k/log k) more arithmetic than ACE (Fig. 8 quantifies the gap).
// The FLEX-style stage intermediates do not exist here: a power
// failure mid-row rolls back to the row's start (Fig. 6, left).
func (e *Engine) bcmElem(d *device.Device, li int, l *quant.QLayer, in, out *device.NVQ15, elem int) {
	s := l.Spec
	k := s.K
	q := (s.In + k - 1) / k
	i := elem // element = block row index
	wRaw := e.store.W[li].Raw()
	xRaw := in.Raw()

	d.CPUOps(controlOpsPerElement)
	scale := fixed.One
	if l.CosNorm {
		d.LEAMAC(s.In)
		d.CPUOps(60)
		scale = quant.InputScale(xRaw[:s.In], l.SIn)
	}
	// Row accumulators live in LEA SRAM for the duration of the row;
	// the committed copy in FRAM survives outages.
	acc := e.accBuf[:k]
	j0 := e.restoreBCMRow(d, uint64(elem), acc)
	if j0 == 0 {
		for t := range acc {
			acc[t] = 0
		}
		d.SRAMAccess(k)
	}
	for j := j0; j < q; j++ {
		w := wRaw[(i*q+j)*k : (i*q+j+1)*k]
		lim := s.In - j*k
		if lim > k {
			lim = k
		}
		d.DMAFromFRAM(k, device.CatDMA)
		copy(e.wBuf[:k], w)
		d.DMAFromFRAM(lim, device.CatDMA)
		copy(e.xBuf[:lim], xRaw[j*k:j*k+lim])
		if l.CosNorm {
			d.LEAMAC(lim)
			fixed.ScaleVec(e.xBuf[:lim], e.xBuf[:lim], scale)
		}
		// One FIR command: k outputs × lim taps of MAC throughput.
		d.LEAMAC(k * lim)
		for r := 0; r < k; r++ {
			a := acc[r]
			for c := 0; c < lim; c++ {
				a = fixed.MAC(a, e.wBuf[(r-c+k)%k], e.xBuf[c])
			}
			acc[r] = a
		}
		e.commitBCMRow(d, uint64(elem), j+1, acc)
	}
	rowLen := k
	if rem := s.Out - i*k; rem < rowLen {
		rowLen = rem
	}
	d.FRAMRead(rowLen, device.CatFRAMRead) // biases
	d.CPUOps(2 * rowLen)
	bRaw := e.store.B[li].Raw()
	for r := 0; r < rowLen; r++ {
		v := fixed.SatAdd(fixed.NarrowQ31(acc[r], l.AccShift()), bRaw[i*k+r])
		e.wBuf[r] = v
	}
	out.StoreDMA(d, device.CatFRAMWrite, i*k, e.wBuf[:rowLen])
}

// commitBCMRow persists the FIR accumulators plus the next block
// index, tagged with the element they belong to, in one atomic
// double-buffered commit.
func (e *Engine) commitBCMRow(d *device.Device, tag uint64, nextJ int, acc []fixed.Q31) {
	k := e.bcmMaxK
	buf := make([]fixed.Q15, 2*k+3)
	for t, v := range acc {
		buf[2*t] = fixed.Q15(uint16(uint32(v)))
		buf[2*t+1] = fixed.Q15(int16(int32(v) >> 16))
	}
	buf[2*k] = fixed.Q15(int16(nextJ))
	buf[2*k+1] = fixed.Q15(uint16(uint32(tag)))
	buf[2*k+2] = fixed.Q15(uint16(uint32(tag) >> 16))
	e.bcmState.Commit(d, device.CatCheckpoint, buf)
}

// restoreBCMRow reloads mid-row FIR state for element tag, returning
// the block index to resume at (0 when no matching state exists).
func (e *Engine) restoreBCMRow(d *device.Device, tag uint64, acc []fixed.Q31) int {
	if e.bcmState.PeekSeq() == 0 {
		return 0 // nothing ever committed
	}
	k := e.bcmMaxK
	buf := make([]fixed.Q15, 2*k+3)
	e.bcmState.Load(d, device.CatRestore, buf)
	saved := uint64(uint16(buf[2*k+1])) | uint64(uint16(buf[2*k+2]))<<16
	if saved != tag&0xFFFFFFFF {
		return 0
	}
	for t := range acc {
		lo := uint32(uint16(buf[2*t]))
		hi := uint32(uint16(buf[2*t+1])) << 16
		acc[t] = fixed.Q31(int32(hi | lo))
	}
	return int(int16(buf[2*k]))
}

func (e *Engine) poolElem(d *device.Device, l *quant.QLayer, in, out *device.NVQ15, elem int) {
	s := l.Spec
	oh := s.InH / s.PoolSize
	ow := s.InW / s.PoolSize
	c := elem / (oh * ow)
	rem := elem % (oh * ow)
	oy := rem / ow
	ox := rem % ow
	n := s.PoolSize * s.PoolSize
	d.FRAMRead(n, device.CatFRAMRead)
	d.CPUOps(n + controlOpsPerElement)
	xRaw := in.Raw()
	best := fixed.MinusOne
	for dy := 0; dy < s.PoolSize; dy++ {
		for dx := 0; dx < s.PoolSize; dx++ {
			v := xRaw[c*s.InH*s.InW+(oy*s.PoolSize+dy)*s.InW+ox*s.PoolSize+dx]
			if v > best {
				best = v
			}
		}
	}
	out.StoreOne(d, device.CatFRAMWrite, elem, best)
}

func (e *Engine) reluElem(d *device.Device, l *quant.QLayer, in, out *device.NVQ15, elem int) {
	d.FRAMRead(1, device.CatFRAMRead)
	d.CPUOps(2 + 2)
	v := in.Raw()[elem]
	if v < 0 {
		v = 0
	}
	out.StoreOne(d, device.CatFRAMWrite, elem, v)
}

// copyThrough is a flatten layer: a bulk FRAM-to-FRAM DMA copy.
func (e *Engine) copyThrough(d *device.Device, in, out *device.NVQ15) {
	n := in.Len()
	for start := 0; start < n; start += maxVec {
		end := start + maxVec
		if end > n {
			end = n
		}
		d.DMAFromFRAM(end-start, device.CatDMA)
		d.DMAToFRAM(end-start, device.CatDMA)
		copy(out.Raw()[start:end], in.Raw()[start:end])
	}
}
