// Package fftfixed implements the Fourier transforms the LEA exposes:
// an iterative radix-2 decimation-in-time FFT/IFFT over Q15 complex
// vectors with per-stage scaling, plus a float64 reference transform
// used by training and by tests.
//
// The fixed-point forward FFT divides by 2 at every butterfly stage
// (total 1/N), which is exactly how the MSP430 LEA's scaling FFT avoids
// overflow; the paper's Algorithm 1 compensates for this with its
// SCALE-UP step. The IFFT applies no scaling, so the round trip
// IFFT(FFT(x)) returns x/N.
package fftfixed

import (
	"math"
	"math/bits"
	"sync"

	"ehdl/internal/fixed"
)

// Complex is a Q15 complex number, matching the LEA's interleaved
// re/im vector layout.
type Complex struct {
	Re, Im fixed.Q15
}

// FromFloat converts a complex128 to a Q15 Complex with saturation.
func FromFloat(c complex128) Complex {
	return Complex{fixed.FromFloat(real(c)), fixed.FromFloat(imag(c))}
}

// Float converts back to complex128.
func (c Complex) Float() complex128 {
	return complex(c.Re.Float(), c.Im.Float())
}

// IsPow2 reports whether n is a positive power of two, the only FFT
// lengths the LEA supports.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// twiddles caches e^{-2πik/n} tables per size. The cache is
// goroutine-safe: the parallel experiment harness runs transforms of
// many sizes concurrently, so the first transform of a size publishes
// the table under the write lock and the steady state is one RLock per
// transform. Published tables are immutable.
var (
	twMu     sync.RWMutex
	twiddles = map[int][]complex128{}
)

func twiddleTable(n int) []complex128 {
	twMu.RLock()
	t, ok := twiddles[n]
	twMu.RUnlock()
	if ok {
		return t
	}
	twMu.Lock()
	defer twMu.Unlock()
	if t, ok := twiddles[n]; ok {
		return t
	}
	t = make([]complex128, n/2)
	for k := range t {
		ang := -2 * math.Pi * float64(k) / float64(n)
		t[k] = complex(math.Cos(ang), math.Sin(ang))
	}
	twiddles[n] = t
	return t
}

// qTwiddle is one fixed-point twiddle factor, quantized once and
// widened to the int64 the Q30 butterfly multiplies in.
type qTwiddle struct{ re, im int64 }

// qTwiddleSet holds the forward and inverse Q15 twiddle tables of one
// size. The inverse entries are quantized from the conjugated float
// value rather than negated after quantization: FromFloat saturates
// +1 and −1 asymmetrically (32767 vs −32768), and the transform has
// always quantized the conjugate directly — precomputing the tables
// must not move a single output bit.
type qTwiddleSet struct{ fwd, inv []qTwiddle }

var (
	qtwMu sync.RWMutex
	qtw   = map[int]*qTwiddleSet{}
)

func qTwiddleTable(n int) *qTwiddleSet {
	qtwMu.RLock()
	s, ok := qtw[n]
	qtwMu.RUnlock()
	if ok {
		return s
	}
	t := twiddleTable(n)
	qtwMu.Lock()
	defer qtwMu.Unlock()
	if s, ok := qtw[n]; ok {
		return s
	}
	s = &qTwiddleSet{fwd: make([]qTwiddle, len(t)), inv: make([]qTwiddle, len(t))}
	for k, w := range t {
		s.fwd[k] = qTwiddle{int64(fixed.FromFloat(real(w))), int64(fixed.FromFloat(imag(w)))}
		s.inv[k] = qTwiddle{int64(fixed.FromFloat(real(w))), int64(fixed.FromFloat(-imag(w)))}
	}
	qtw[n] = s
	return s
}

// bitReverse permutes v in place into bit-reversed index order.
func bitReverse[T any](v []T) {
	n := len(v)
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := range v {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			v[i], v[j] = v[j], v[i]
		}
	}
}

// Float64FFT computes the unnormalized DFT of x in place.
// len(x) must be a power of two.
func Float64FFT(x []complex128) {
	transformFloat(x, false)
}

// Float64IFFT computes the inverse DFT of x in place, including the
// conventional 1/N normalization so Float64IFFT(Float64FFT(x)) == x.
func Float64IFFT(x []complex128) {
	transformFloat(x, true)
	n := float64(len(x))
	for i := range x {
		x[i] /= complex(n, 0)
	}
}

func transformFloat(x []complex128, inverse bool) {
	n := len(x)
	if !IsPow2(n) {
		panic("fftfixed: length must be a power of two")
	}
	if n == 1 {
		return
	}
	bitReverse(x)
	tw := twiddleTable(n)
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := tw[k*step]
				if inverse {
					w = complex(real(w), -imag(w))
				}
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
}

// FFT computes the forward transform of x in place with per-stage
// scaling: the result is DFT(x)/N. Panics if len(x) is not a power of
// two (the LEA rejects such lengths in hardware).
//
//ehdl:hotpath
func FFT(x []Complex) {
	transformFixed(x, false)
}

// IFFT computes the unnormalized inverse transform in place (a factor
// of N larger than the true inverse DFT). Because the forward FFT here
// scales by 1/N, the round trip IFFT(FFT(x)) reconstructs x up to
// rounding. A product of two forward transforms, as in the BCM kernel
// IFFT(FFT(w)∘FFT(x)), carries a leftover 1/N that Algorithm 1's
// SCALE-UP step multiplies back out.
//
//ehdl:hotpath
func IFFT(x []Complex) {
	transformFixed(x, true)
}

//
//ehdl:hotpath
func transformFixed(x []Complex, inverse bool) {
	n := len(x)
	if !IsPow2(n) {
		panic("fftfixed: length must be a power of two")
	}
	if n == 1 {
		return
	}
	bitReverse(x)
	tset := qTwiddleTable(n)
	tw := tset.fwd
	if inverse {
		tw = tset.inv
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				wr := tw[k*step].re
				wi := tw[k*step].im
				a := x[start+k]
				b := x[start+k+half]
				// The whole butterfly runs in the Q30 domain with a
				// single rounding per output: narrowing the twiddle
				// product to Q15 first would saturate, because complex
				// components of b·w reach √2 even when magnitudes stay
				// within range.
				br := int64(b.Re)*wr - int64(b.Im)*wi // Q30
				bi := int64(b.Re)*wi + int64(b.Im)*wr // Q30
				ar := int64(a.Re) << fixed.FracBits   // Q30
				ai := int64(a.Im) << fixed.FracBits   // Q30
				if !inverse {
					// Forward: scale each stage by 1/2 to prevent
					// overflow (the LEA's "scale by two" FFT mode).
					x[start+k] = Complex{q30ToQ15(ar+br, 1), q30ToQ15(ai+bi, 1)}
					x[start+k+half] = Complex{q30ToQ15(ar-br, 1), q30ToQ15(ai-bi, 1)}
				} else {
					x[start+k] = Complex{q30ToQ15(ar+br, 0), q30ToQ15(ai+bi, 0)}
					x[start+k+half] = Complex{q30ToQ15(ar-br, 0), q30ToQ15(ai-bi, 0)}
				}
			}
		}
	}
}

// q30ToQ15 narrows a Q30-scaled value to Q15 after an extra right
// shift of extra bits, rounding to nearest and saturating.
//
//ehdl:hotpath
func q30ToQ15(v int64, extra uint) fixed.Q15 {
	shift := uint(fixed.FracBits) + extra
	v += 1 << (shift - 1)
	v >>= shift
	switch {
	case v > math.MaxInt16:
		return fixed.One
	case v < math.MinInt16:
		return fixed.MinusOne
	}
	return fixed.Q15(v)
}

// MulComplexVec stores the element-wise complex product a[i]*b[i] into
// dst — the "element-wise multiplication" at the heart of the BCM
// computation IFFT(FFT(p) ∘ FFT(x)).
//
//ehdl:hotpath
func MulComplexVec(dst, a, b []Complex) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("fftfixed: MulComplexVec length mismatch")
	}
	for i := range a {
		re := fixed.SatAddQ31(fixed.MulQ31(a[i].Re, b[i].Re), -fixed.MulQ31(a[i].Im, b[i].Im))
		im := fixed.SatAddQ31(fixed.MulQ31(a[i].Re, b[i].Im), fixed.MulQ31(a[i].Im, b[i].Re))
		dst[i] = Complex{re.ToQ15(), im.ToQ15()}
	}
}

// ShlVec scales every component of v up by 2^n with saturation — the
// block-domain precision recovery applied between the MPY and IFFT
// stages of Algorithm 1.
//
//ehdl:hotpath
func ShlVec(v []Complex, n uint) {
	if n == 0 {
		return
	}
	for i := range v {
		v[i] = Complex{fixed.Shl(v[i].Re, n), fixed.Shl(v[i].Im, n)}
	}
}

// ToComplex widens a real Q15 vector into a Complex vector with zero
// imaginary parts (Algorithm 1's COMPLEX step).
//
//ehdl:hotpath
func ToComplex(dst []Complex, src []fixed.Q15) {
	if len(dst) != len(src) {
		panic("fftfixed: ToComplex length mismatch")
	}
	for i, q := range src {
		dst[i] = Complex{Re: q}
	}
}

// Real extracts the real parts of src into dst (Algorithm 1's REAL
// step).
//
//ehdl:hotpath
func Real(dst []fixed.Q15, src []Complex) {
	if len(dst) != len(src) {
		panic("fftfixed: Real length mismatch")
	}
	for i, c := range src {
		dst[i] = c.Re
	}
}
