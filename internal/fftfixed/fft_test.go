package fftfixed

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ehdl/internal/fixed"
)

// naiveDFT computes the textbook O(n^2) DFT for cross-checking.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += x[t] * complex(math.Cos(ang), math.Sin(ang))
		}
		out[k] = sum
	}
	return out
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 1024} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -1, 3, 6, 12, 1000} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

func TestFloatFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 64} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
		}
		want := naiveDFT(x)
		got := append([]complex128(nil), x...)
		Float64FFT(got)
		for i := range got {
			if d := got[i] - want[i]; math.Hypot(real(d), imag(d)) > 1e-9*float64(n) {
				t.Fatalf("n=%d bin %d: got %v, want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestFloatFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 8, 32, 128} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.Float64()*2-1, 0)
		}
		y := append([]complex128(nil), x...)
		Float64FFT(y)
		Float64IFFT(y)
		for i := range y {
			if d := y[i] - x[i]; math.Hypot(real(d), imag(d)) > 1e-9 {
				t.Fatalf("n=%d: round trip diverged at %d: %v vs %v", n, i, y[i], x[i])
			}
		}
	}
}

func TestFloatFFTImpulse(t *testing.T) {
	// DFT of a unit impulse is all ones.
	x := make([]complex128, 8)
	x[0] = 1
	Float64FFT(x)
	for i, v := range x {
		if math.Abs(real(v)-1) > 1e-12 || math.Abs(imag(v)) > 1e-12 {
			t.Errorf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestFloatFFTLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 16
	a := make([]complex128, n)
	b := make([]complex128, n)
	for i := range a {
		a[i] = complex(rng.Float64(), rng.Float64())
		b[i] = complex(rng.Float64(), rng.Float64())
	}
	sum := make([]complex128, n)
	for i := range sum {
		sum[i] = a[i] + b[i]
	}
	Float64FFT(a)
	Float64FFT(b)
	Float64FFT(sum)
	for i := range sum {
		want := a[i] + b[i]
		if d := sum[i] - want; math.Hypot(real(d), imag(d)) > 1e-9 {
			t.Fatalf("linearity failed at %d", i)
		}
	}
}

func TestFixedFFTScalesByN(t *testing.T) {
	// Forward fixed FFT of a constant vector c: DFT is N*c at bin 0,
	// scaled by 1/N => bin 0 should be c again.
	n := 16
	c := 0.5
	x := make([]Complex, n)
	for i := range x {
		x[i] = Complex{fixed.FromFloat(c), 0}
	}
	FFT(x)
	if got := x[0].Re.Float(); math.Abs(got-c) > 0.01 {
		t.Errorf("bin0 = %v, want %v", got, c)
	}
	for i := 1; i < n; i++ {
		if got := math.Hypot(x[i].Re.Float(), x[i].Im.Float()); got > 0.01 {
			t.Errorf("bin %d magnitude = %v, want ~0", i, got)
		}
	}
}

func TestFixedRoundTripReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{4, 16, 64} {
		x := make([]Complex, n)
		orig := make([]float64, n)
		for i := range x {
			orig[i] = rng.Float64() - 0.5
			x[i] = Complex{fixed.FromFloat(orig[i]), 0}
		}
		FFT(x)
		IFFT(x)
		// Forward scales by 1/N, unnormalized inverse multiplies N back:
		// round trip is identity up to accumulated rounding.
		tol := 0.02
		for i := range x {
			if got := x[i].Re.Float(); math.Abs(got-orig[i]) > tol {
				t.Fatalf("n=%d idx=%d: got %v, want %v", n, i, got, orig[i])
			}
		}
	}
}

func TestFixedFFTMatchesFloatFFTScaled(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 32
	xf := make([]complex128, n)
	xq := make([]Complex, n)
	for i := range xf {
		v := rng.Float64() - 0.5
		xf[i] = complex(v, 0)
		xq[i] = Complex{fixed.FromFloat(v), 0}
	}
	Float64FFT(xf)
	FFT(xq)
	for i := range xf {
		want := xf[i] / complex(float64(n), 0)
		got := xq[i].Float()
		if d := got - want; math.Hypot(real(d), imag(d)) > 0.01 {
			t.Fatalf("bin %d: fixed %v, float-scaled %v", i, got, want)
		}
	}
}

func TestFixedFFTNeverOverflows(t *testing.T) {
	// Even a full-scale input must not saturate thanks to per-stage
	// scaling: output magnitude of the scaled FFT is bounded by
	// max|x| <= 1.
	n := 64
	x := make([]Complex, n)
	for i := range x {
		if i%2 == 0 {
			x[i] = Complex{fixed.One, 0}
		} else {
			x[i] = Complex{fixed.MinusOne, 0}
		}
	}
	FFT(x)
	for i, c := range x {
		if c.Re == fixed.One || c.Re == fixed.MinusOne ||
			c.Im == fixed.One || c.Im == fixed.MinusOne {
			// Hitting the rails exactly suggests saturation — the only
			// legal full-scale bin for this input is n/2 (Nyquist).
			if i != n/2 {
				t.Errorf("bin %d saturated: %+v", i, c)
			}
		}
	}
}

func TestMulComplexVec(t *testing.T) {
	a := []Complex{FromFloat(complex(0.5, 0.25))}
	b := []Complex{FromFloat(complex(0.25, -0.5))}
	dst := make([]Complex, 1)
	MulComplexVec(dst, a, b)
	want := complex(0.5, 0.25) * complex(0.25, -0.5)
	got := dst[0].Float()
	if math.Hypot(real(got-want), imag(got-want)) > 1e-3 {
		t.Errorf("MulComplexVec = %v, want %v", got, want)
	}
}

func TestMulComplexVecProperty(t *testing.T) {
	err := quick.Check(func(ar, ai, br, bi int16) bool {
		// Keep inputs at half scale to stay in range.
		a := Complex{fixed.Q15(ar / 2), fixed.Q15(ai / 2)}
		b := Complex{fixed.Q15(br / 2), fixed.Q15(bi / 2)}
		dst := make([]Complex, 1)
		MulComplexVec(dst, []Complex{a}, []Complex{b})
		want := a.Float() * b.Float()
		got := dst[0].Float()
		return math.Hypot(real(got-want), imag(got-want)) <= 3e-4
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestToComplexReal(t *testing.T) {
	src := fixed.FromFloats([]float64{0.5, -0.25})
	c := make([]Complex, 2)
	ToComplex(c, src)
	for i := range c {
		if c[i].Re != src[i] || c[i].Im != 0 {
			t.Errorf("ToComplex[%d] = %+v", i, c[i])
		}
	}
	back := make([]fixed.Q15, 2)
	Real(back, c)
	for i := range back {
		if back[i] != src[i] {
			t.Errorf("Real[%d] = %v, want %v", i, back[i], src[i])
		}
	}
}

func TestNonPow2Panics(t *testing.T) {
	for name, f := range map[string]func(){
		"FFT":        func() { FFT(make([]Complex, 3)) },
		"IFFT":       func() { IFFT(make([]Complex, 6)) },
		"Float64FFT": func() { Float64FFT(make([]complex128, 5)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on non-power-of-two length", name)
				}
			}()
			f()
		}()
	}
}

func TestSizeOnePassthrough(t *testing.T) {
	x := []Complex{{fixed.FromFloat(0.5), 0}}
	FFT(x)
	if got := x[0].Re.Float(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("size-1 FFT changed value: %v", got)
	}
	xf := []complex128{complex(0.25, 0)}
	Float64FFT(xf)
	if xf[0] != complex(0.25, 0) {
		t.Errorf("size-1 float FFT changed value: %v", xf[0])
	}
}

func TestCircularConvolutionViaFFT(t *testing.T) {
	// The whole point of BCM: IFFT(FFT(w) * FFT(x)) is circular
	// convolution. Check against the direct sum in float.
	w := []float64{0.5, -0.25, 0.125, 0.0625}
	x := []float64{0.25, 0.5, -0.125, 0.3}
	n := len(w)
	want := make([]float64, n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			want[r] += w[(r-c+n)%n] * x[c]
		}
	}
	wf := make([]complex128, n)
	xf := make([]complex128, n)
	for i := 0; i < n; i++ {
		wf[i] = complex(w[i], 0)
		xf[i] = complex(x[i], 0)
	}
	Float64FFT(wf)
	Float64FFT(xf)
	prod := make([]complex128, n)
	for i := range prod {
		prod[i] = wf[i] * xf[i]
	}
	Float64IFFT(prod)
	for i := range want {
		if math.Abs(real(prod[i])-want[i]) > 1e-9 {
			t.Errorf("conv[%d] = %v, want %v", i, real(prod[i]), want[i])
		}
	}
}
