package fftfixed

import (
	"sync"
	"testing"

	"ehdl/internal/fixed"
)

// detQ fills a Q15 vector deterministically (no rng, so the golden
// vectors below are reproducible byte-for-byte across Go versions).
func detQ(n int, seed uint32) []fixed.Q15 {
	v := make([]fixed.Q15, n)
	for i := range v {
		h := uint32(i)*2654435761 + seed
		v[i] = fixed.Q15(int32(h%20011) - 10005)
	}
	return v
}

// The golden vectors pin the seed implementation's exact output bits:
// the twiddle-table precomputation must never move a bit of any
// transform. Captured from the per-butterfly FromFloat implementation.
var (
	goldenFFTRe  = []fixed.Q15{-1963, -471, 445, -471, 1177, -472, -3092, -472, -1324, -472, -3093, -472, 1177, -471, 444, -471}
	goldenFFTIm  = []fixed.Q15{0, 371, -1238, 111, -779, 49, 320, 15, 0, -15, -320, -49, 779, -110, 1238, -371}
	goldenIFFTRe = []fixed.Q15{-10001, 6631, -3115, -6493, 3774, -5971, -9347, 915, -2457, 7807, -1935, -5309, 4952, -4791, -8167, 2099}
	goldenIFFTIm = []fixed.Q15{1, 1, -1, 1, 0, 0, 1, -1, -1, 1, 1, 1, 0, -2, -1, -1}
)

func TestFixedFFTGolden(t *testing.T) {
	c := make([]Complex, 16)
	ToComplex(c, detQ(16, 1))
	FFT(c)
	for i := range c {
		if c[i].Re != goldenFFTRe[i] || c[i].Im != goldenFFTIm[i] {
			t.Fatalf("FFT[%d] = (%d, %d), golden (%d, %d)",
				i, c[i].Re, c[i].Im, goldenFFTRe[i], goldenFFTIm[i])
		}
	}
	// Continue through the inverse transform on the same data, pinning
	// the round trip (the IFFT exercises the conjugate twiddle table).
	IFFT(c)
	for i := range c {
		if c[i].Re != goldenIFFTRe[i] || c[i].Im != goldenIFFTIm[i] {
			t.Fatalf("IFFT[%d] = (%d, %d), golden (%d, %d)",
				i, c[i].Re, c[i].Im, goldenIFFTRe[i], goldenIFFTIm[i])
		}
	}
}

// TestTwiddleCachesConcurrent hammers both twiddle caches from many
// goroutines across many fresh sizes — the data race the bare map
// cache had blows up here under -race.
func TestTwiddleCachesConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, n := range []int{8, 16, 32, 64, 128, 256} {
				q := make([]Complex, n)
				ToComplex(q, detQ(n, uint32(g)))
				FFT(q)
				IFFT(q)
				f := make([]complex128, n)
				for i := range f {
					f[i] = complex(float64(i%7)/8, 0)
				}
				Float64FFT(f)
				Float64IFFT(f)
			}
		}(g)
	}
	wg.Wait()
}
