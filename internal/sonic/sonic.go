// Package sonic reimplements SONIC [Gobieski et al., ASPLOS'19], the
// paper's software-only intermittent baseline: the uncompressed model
// computed element-wise on the CPU, with loop continuation — the loop
// control state and the running accumulator are committed to FRAM at a
// fine, fixed stride so that a power failure loses at most a few MAC
// iterations. The commits are exactly SONIC's cost: they tax every
// inner loop all the time, failure or not, which is why SONIC trails
// BASE under continuous power (Fig. 7(a)) yet finishes inferences that
// BASE never can (Fig. 7(b)).
package sonic

import (
	"fmt"

	"ehdl/internal/device"
	"ehdl/internal/exec"
	"ehdl/internal/fixed"
	"ehdl/internal/quant"
)

// commitStride is the number of MAC iterations between accumulator
// commits — SONIC's loop-continuation granularity.
const commitStride = 4

// controlOpsPerElement mirrors the baseline's loop overhead, plus
// SONIC's task-transition bookkeeping.
const controlOpsPerElement = 16

// Engine is the SONIC runtime for one inference.
type Engine struct {
	d     *device.Device
	store *exec.ModelStore

	in   *device.NVQ15
	acts []*device.NVQ15

	// progress counts fully completed output elements across the whole
	// inference (monotonic; the runner watches it).
	progress device.NVWord
	// accWord holds the packed mid-element state: acc (32 bits) and
	// inner index (16 bits). accTag holds the global element index the
	// accWord belongs to. Written acc-first, tag-second, so a torn pair
	// is detected by tag mismatch and merely costs a fresh element.
	accWord device.NVWord
	accTag  device.NVWord
	// scaleWord caches the cosine-normalization input factor of the
	// BCM layer being executed, tagged by layer+1 (computing ‖x‖ per
	// output element would double SONIC's work; per layer it is
	// negligible). A stale or torn value merely causes a recompute.
	scaleWord device.NVWord

	windowOffs map[int][]int
	// elemBase[li] is the global element index of layer li's first
	// output element; elemBase[len] is the total.
	elemBase []uint64
}

// New builds a SONIC engine over a flashed model store and input.
func New(d *device.Device, store *exec.ModelStore, input []fixed.Q15) (*Engine, error) {
	m := store.Model
	if got, want := len(input), m.InShape[0]*m.InShape[1]*m.InShape[2]; got != want {
		return nil, fmt.Errorf("sonic: input length %d, want %d", got, want)
	}
	e := &Engine{d: d, store: store, windowOffs: map[int][]int{}}
	in, err := device.NewNVQ15(d, len(input))
	if err != nil {
		return nil, err
	}
	copy(in.Raw(), input)
	e.in = in

	base := uint64(0)
	for li := range m.Layers {
		l := &m.Layers[li]
		buf, err := device.NewNVQ15(d, quant.LayerOutLen(l.Spec))
		if err != nil {
			return nil, err
		}
		e.acts = append(e.acts, buf)
		if l.Spec.Kind == "conv" {
			e.windowOffs[li] = exec.WindowOffsets(l)
		}
		e.elemBase = append(e.elemBase, base)
		base += uint64(elementCount(l))
	}
	e.elemBase = append(e.elemBase, base)
	// Control state lives in FRAM.
	if err := d.ReserveFRAM(3 * 8); err != nil {
		return nil, err
	}
	return e, nil
}

// elementCount returns the number of checkpointable output elements of
// a layer (one per output value; flatten is a bulk copy counted as a
// single element).
func elementCount(l *quant.QLayer) int {
	if l.Spec.Kind == "flatten" {
		return 1
	}
	return quant.LayerOutLen(l.Spec)
}

// EngineName implements exec.Engine.
func (e *Engine) EngineName() string { return "sonic" }

// Output implements exec.Engine.
func (e *Engine) Output() []fixed.Q15 {
	last := e.acts[len(e.acts)-1]
	return append([]fixed.Q15(nil), last.Raw()...)
}

// Progress implements intermittent.ProgressReporter.
func (e *Engine) Progress() uint64 { return e.progress.Peek() }

// Boot implements intermittent.Program: resume from the committed
// element cursor.
func (e *Engine) Boot(d *device.Device) error {
	m := e.store.Model
	done := e.progress.Read(d, device.CatRestore)
	total := e.elemBase[len(e.elemBase)-1]
	for done < total {
		li := e.layerOf(done)
		l := &m.Layers[li]
		in := e.in
		if li > 0 {
			in = e.acts[li-1]
		}
		out := e.acts[li]
		elem := int(done - e.elemBase[li])
		switch l.Spec.Kind {
		case "conv":
			e.convElem(d, li, l, in, out, elem, done)
		case "pool":
			e.poolElem(d, l, in, out, elem)
		case "relu":
			e.reluElem(d, l, in, out, elem)
		case "flatten":
			e.copyThrough(d, in, out)
		case "dense":
			e.denseElem(d, li, l, in, out, elem, done)
		case "bcm":
			e.bcmElem(d, li, l, in, out, elem, done)
		default:
			return fmt.Errorf("sonic: unsupported layer kind %q", l.Spec.Kind)
		}
		done++
		e.progress.Write(d, device.CatCheckpoint, done)
	}
	return nil
}

func (e *Engine) layerOf(elem uint64) int {
	for li := 0; li < len(e.elemBase)-1; li++ {
		if elem < e.elemBase[li+1] {
			return li
		}
	}
	panic("sonic: element cursor out of range")
}

// resumeAcc recovers the committed accumulator for element tag, if
// any.
func (e *Engine) resumeAcc(d *device.Device, tag uint64) (fixed.Q31, int) {
	savedTag := e.accTag.Read(d, device.CatRestore)
	if savedTag != tag {
		return 0, 0
	}
	w := e.accWord.Read(d, device.CatRestore)
	return fixed.Q31(int32(uint32(w >> 16))), int(uint16(w))
}

// commitAcc persists the mid-element accumulator: acc word first, tag
// second (torn pairs fail safe to a fresh element).
func (e *Engine) commitAcc(d *device.Device, tag uint64, acc fixed.Q31, inner int) {
	e.accWord.Write(d, device.CatCheckpoint, uint64(uint32(int32(acc)))<<16|uint64(uint16(inner)))
	e.accTag.Write(d, device.CatCheckpoint, tag)
}

// macRun performs the SONIC inner loop from index start: chunks of
// commitStride MACs, each charged and then committed.
func (e *Engine) macRun(d *device.Device, tag uint64, acc fixed.Q31, start int,
	w, x []fixed.Q15, xoff func(int) int) fixed.Q31 {
	return e.macRunFn(d, tag, acc, start, len(w), 0, func(k int) (fixed.Q15, fixed.Q15) {
		return w[k], x[xoff(k)]
	})
}

// macRunFn is macRun with fully general operand access: term(t)
// returns the t-th weight/activation pair. extraOps charges additional
// per-MAC index arithmetic (modular indexing for BCM rows).
func (e *Engine) macRunFn(d *device.Device, tag uint64, acc fixed.Q31, start, n, extraOps int,
	term func(int) (fixed.Q15, fixed.Q15)) fixed.Q31 {
	for i := start; i < n; i += commitStride {
		end := i + commitStride
		if end > n {
			end = n
		}
		d.FRAMRead(2*(end-i), device.CatFRAMRead)
		d.CPUMACs(end - i)
		if extraOps > 0 {
			d.CPUOps(extraOps * (end - i))
		}
		for k := i; k < end; k++ {
			wv, xv := term(k)
			acc = fixed.MAC(acc, wv, xv)
		}
		e.commitAcc(d, tag, acc, end)
	}
	return acc
}

func (e *Engine) convElem(d *device.Device, li int, l *quant.QLayer, in, out *device.NVQ15, elem int, tag uint64) {
	s := l.Spec
	oh := s.InH - s.KH + 1
	ow := s.InW - s.KW + 1
	oc := elem / (oh * ow)
	rem := elem % (oh * ow)
	oy := rem / ow
	ox := rem % ow
	offs := e.windowOffs[li]
	win := len(offs)
	wRaw := e.store.W[li].Raw()
	xRaw := in.Raw()
	origin := oy*s.InW + ox

	d.CPUOps(controlOpsPerElement)
	acc, start := e.resumeAcc(d, tag)
	acc = e.macRun(d, tag, acc, start,
		wRaw[oc*win:(oc+1)*win], xRaw,
		func(k int) int { return origin + offs[k] })
	d.FRAMRead(1, device.CatFRAMRead) // bias
	v := fixed.SatAdd(fixed.NarrowQ31(acc, l.AccShift()), e.store.B[li].Raw()[oc])
	out.StoreOne(d, device.CatFRAMWrite, elem, v)
}

func (e *Engine) denseElem(d *device.Device, li int, l *quant.QLayer, in, out *device.NVQ15, elem int, tag uint64) {
	s := l.Spec
	wRaw := e.store.W[li].Raw()
	xRaw := in.Raw()

	d.CPUOps(controlOpsPerElement)
	acc, start := e.resumeAcc(d, tag)
	acc = e.macRun(d, tag, acc, start,
		wRaw[elem*s.In:(elem+1)*s.In], xRaw[:s.In],
		func(k int) int { return k })
	d.FRAMRead(1, device.CatFRAMRead)
	v := fixed.SatAdd(fixed.NarrowQ31(acc, l.AccShift()), e.store.B[li].Raw()[elem])
	out.StoreOne(d, device.CatFRAMWrite, elem, v)
}

// bcmElem computes one output row of a BCM layer in the time domain
// (SONIC has no FFT kernel; it streams MACs over the circulant
// generators with modular indexing, committing like any other loop).
func (e *Engine) bcmElem(d *device.Device, li int, l *quant.QLayer, in, out *device.NVQ15, elem int, tag uint64) {
	s := l.Spec
	k := s.K
	q := (s.In + k - 1) / k
	rk := elem % k
	i := elem / k
	wRaw := e.store.W[li].Raw()
	xRaw := in.Raw()

	d.CPUOps(controlOpsPerElement)
	term := func(t int) (fixed.Q15, fixed.Q15) {
		j := t / k
		c := t % k
		return wRaw[(i*q+j)*k+(rk-c+k)%k], xRaw[t]
	}
	extraOps := 1
	if l.CosNorm {
		scale := e.layerScale(d, li, l, xRaw[:s.In])
		extraOps = 2
		term = func(t int) (fixed.Q15, fixed.Q15) {
			j := t / k
			c := t % k
			return wRaw[(i*q+j)*k+(rk-c+k)%k], fixed.Mul(xRaw[t], scale)
		}
	}
	acc, start := e.resumeAcc(d, tag)
	acc = e.macRunFn(d, tag, acc, start, s.In, extraOps, term)
	d.FRAMRead(1, device.CatFRAMRead)
	v := fixed.SatAdd(fixed.NarrowQ31(acc, l.AccShift()), e.store.B[li].Raw()[elem])
	out.StoreOne(d, device.CatFRAMWrite, elem, v)
}

// layerScale returns the cosine-normalization factor for layer li,
// computing and caching it in FRAM on first use.
func (e *Engine) layerScale(d *device.Device, li int, l *quant.QLayer, x []fixed.Q15) fixed.Q15 {
	w := e.scaleWord.Read(d, device.CatRestore)
	if w>>16 == uint64(li+1) {
		return fixed.Q15(int16(uint16(w)))
	}
	d.CPUMACs(len(x))
	d.CPUOps(60)
	scale := quant.InputScale(x, l.SIn)
	e.scaleWord.Write(d, device.CatCheckpoint, uint64(li+1)<<16|uint64(uint16(scale)))
	return scale
}

func (e *Engine) poolElem(d *device.Device, l *quant.QLayer, in, out *device.NVQ15, elem int) {
	s := l.Spec
	oh := s.InH / s.PoolSize
	ow := s.InW / s.PoolSize
	c := elem / (oh * ow)
	rem := elem % (oh * ow)
	oy := rem / ow
	ox := rem % ow
	n := s.PoolSize * s.PoolSize
	d.FRAMRead(n, device.CatFRAMRead)
	d.CPUOps(n + controlOpsPerElement)
	xRaw := in.Raw()
	best := fixed.MinusOne
	for dy := 0; dy < s.PoolSize; dy++ {
		for dx := 0; dx < s.PoolSize; dx++ {
			v := xRaw[c*s.InH*s.InW+(oy*s.PoolSize+dy)*s.InW+ox*s.PoolSize+dx]
			if v > best {
				best = v
			}
		}
	}
	out.StoreOne(d, device.CatFRAMWrite, elem, best)
}

func (e *Engine) reluElem(d *device.Device, l *quant.QLayer, in, out *device.NVQ15, elem int) {
	d.FRAMRead(1, device.CatFRAMRead)
	d.CPUOps(2 + 4) // compare plus SONIC task glue
	v := in.Raw()[elem]
	if v < 0 {
		v = 0
	}
	out.StoreOne(d, device.CatFRAMWrite, elem, v)
}

func (e *Engine) copyThrough(d *device.Device, in, out *device.NVQ15) {
	n := in.Len()
	d.FRAMRead(n, device.CatFRAMRead)
	d.FRAMWrite(n, device.CatFRAMWrite)
	copy(out.Raw(), in.Raw())
}
