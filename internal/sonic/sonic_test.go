package sonic_test

import (
	"errors"
	"math/rand"
	"testing"

	"ehdl/internal/device"
	"ehdl/internal/exec"
	"ehdl/internal/fixed"
	"ehdl/internal/harvest"
	"ehdl/internal/intermittent"
	"ehdl/internal/nn"
	"ehdl/internal/quant"
	"ehdl/internal/sonic"
)

// testModel quantizes a randomly initialized mixed-layer model
// (conv/pool/relu/flatten/bcm/dense — every element kind SONIC
// executes); accuracy is irrelevant to runtime correctness.
func testModel(t *testing.T, seed int64) *quant.Model {
	t.Helper()
	arch := &nn.Arch{
		Name: "sonic-test", InShape: [3]int{1, 8, 8}, NumClasses: 4,
		Specs: []nn.LayerSpec{
			{Kind: "conv", InC: 1, InH: 8, InW: 8, OutC: 4, KH: 3, KW: 3},
			{Kind: "pool", InC: 4, InH: 6, InW: 6, PoolSize: 2},
			{Kind: "relu", N: 4 * 3 * 3},
			{Kind: "flatten", N: 36},
			{Kind: "bcm", In: 36, Out: 16, K: 8, WeightNorm: true},
			{Kind: "relu", N: 16},
			{Kind: "dense", In: 16, Out: 4},
		},
	}
	rng := rand.New(rand.NewSource(seed))
	net := arch.Build(rng)
	calib := make([][]float64, 6)
	for i := range calib {
		x := make([]float64, arch.InLen())
		for j := range x {
			x[j] = rng.Float64()*2 - 1
		}
		calib[i] = x
	}
	m, err := quant.Quantize(net, arch, calib)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func randInput(n int, seed int64) []fixed.Q15 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]fixed.Q15, n)
	for i := range x {
		x[i] = fixed.FromFloat(rng.Float64()*2 - 1)
	}
	return x
}

func newEngine(t *testing.T, d *device.Device, m *quant.Model, in []fixed.Q15) *sonic.Engine {
	t.Helper()
	store, err := exec.NewModelStore(d, m)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sonic.New(d, store, in)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestIntermittentCompletionUnderSquareProfile: SONIC's whole reason
// to exist — finishing an inference that does not fit one charge —
// under the paper's square-wave source, with logits bit-identical to
// the time-domain reference executor.
func TestIntermittentCompletionUnderSquareProfile(t *testing.T) {
	m := testModel(t, 11)
	in := randInput(64, 7)
	want := quant.NewTimeExecutor(m).Forward(in)

	cfg := harvest.PaperConfig()
	cfg.CapacitanceF = 1.5e-6
	prof, err := harvest.NewSquareProfile(8e-4, 0.02, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	supply, err := harvest.NewCapacitor(cfg, prof)
	if err != nil {
		t.Fatal(err)
	}
	d := device.New(device.DefaultCosts(), supply)
	e := newEngine(t, d, m, in)
	rep := exec.RunIntermittent(d, e, &intermittent.Runner{})
	if !rep.Intermittent.Completed {
		t.Fatalf("did not complete: %+v", rep.Intermittent)
	}
	if rep.Intermittent.Boots == 0 {
		t.Fatal("completed in one charge — capacitor not undersized enough to exercise intermittence")
	}
	for i := range want {
		if rep.Logits[i] != want[i] {
			t.Fatalf("logit %d = %d, reference %d (boots=%d)",
				i, rep.Logits[i], want[i], rep.Intermittent.Boots)
		}
	}
}

// TestProgressMonotonicAcrossBoots drives the boot loop by hand and
// asserts the FRAM progress counter never moves backwards across
// power failures and strictly advances overall.
func TestProgressMonotonicAcrossBoots(t *testing.T) {
	m := testModel(t, 12)
	in := randInput(64, 8)

	cfg := harvest.PaperConfig()
	cfg.CapacitanceF = 1.0e-6
	supply, err := harvest.NewCapacitor(cfg, harvest.ConstantProfile{Watts: 4e-4})
	if err != nil {
		t.Fatal(err)
	}
	d := device.New(device.DefaultCosts(), supply)
	e := newEngine(t, d, m, in)

	bootOnce := func() (completed bool) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(device.PowerFailure); ok {
					return // completed stays false
				}
				panic(r)
			}
		}()
		if err := e.Boot(d); err != nil {
			t.Fatal(err)
		}
		return true
	}

	last := e.Progress()
	if last != 0 {
		t.Fatalf("progress %d before first boot", last)
	}
	boots := 0
	for !bootOnce() {
		cur := e.Progress()
		if cur < last {
			t.Fatalf("progress moved backwards across boot %d: %d -> %d", boots, last, cur)
		}
		last = cur
		boots++
		if boots > 10000 {
			t.Fatal("runaway boot loop")
		}
		if !d.Reboot() {
			t.Fatal("supply exhausted under a live profile")
		}
	}
	if boots == 0 {
		t.Fatal("no power failures — test exercised nothing")
	}
	if e.Progress() <= 0 {
		t.Fatal("no recorded progress after completion")
	}
}

// TestDNFOnUndersizedCapacitor: a capacitor too small to finish even
// one element between outages must be reported as a stagnation DNF,
// not loop forever (SONIC's element-level progress counter freezes
// even though the mid-element accumulator crawls forward).
func TestDNFOnUndersizedCapacitor(t *testing.T) {
	m := testModel(t, 13)
	in := randInput(64, 9)

	cfg := harvest.PaperConfig()
	cfg.CapacitanceF = 0.05e-6
	supply, err := harvest.NewCapacitor(cfg, harvest.ConstantProfile{Watts: 4e-4})
	if err != nil {
		t.Fatal(err)
	}
	d := device.New(device.DefaultCosts(), supply)
	e := newEngine(t, d, m, in)
	rep := exec.RunIntermittent(d, e, &intermittent.Runner{})
	if rep.Intermittent.Completed {
		t.Fatal("completed on an undersized capacitor")
	}
	if !errors.Is(rep.Intermittent.Err, intermittent.ErrStagnant) {
		t.Fatalf("err = %v, want ErrStagnant", rep.Intermittent.Err)
	}
}
