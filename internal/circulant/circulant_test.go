package circulant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ehdl/internal/fixed"
	"ehdl/internal/mat"
)

func randVec(n int, rng *rand.Rand) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()*2 - 1
	}
	return v
}

func TestCircConvMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range []int{1, 2, 4, 7, 8, 16, 32, 64} {
		w := randVec(k, rng)
		x := randVec(k, rng)
		got := CircConv(w, x)
		want := Dense(w).MulVec(x)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("k=%d idx %d: conv %v, dense %v", k, i, got[i], want[i])
			}
		}
	}
}

func TestCircConvCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	k := 16
	w := randVec(k, rng)
	x := randVec(k, rng)
	a := CircConv(w, x)
	b := CircConv(x, w)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("circular convolution not commutative at %d", i)
		}
	}
}

func TestCircCorrIsAdjointOfCircConv(t *testing.T) {
	// <CircConv(w,x), y> == <x, CircCorr(y,w)> for all w,x,y — the
	// property backprop depends on.
	rng := rand.New(rand.NewSource(3))
	for _, k := range []int{4, 8, 32, 64} {
		w := randVec(k, rng)
		x := randVec(k, rng)
		y := randVec(k, rng)
		lhs := mat.Dot(CircConv(w, x), y)
		rhs := mat.Dot(x, CircCorr(y, w))
		if math.Abs(lhs-rhs) > 1e-9 {
			t.Fatalf("k=%d: adjoint identity broken: %v vs %v", k, lhs, rhs)
		}
	}
}

func TestCircCorrFFTMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	k := 64 // above fftThreshold and a power of two: FFT path
	a := randVec(k, rng)
	b := randVec(k, rng)
	got := CircCorr(a, b)
	want := make([]float64, k)
	for d := 0; d < k; d++ {
		for r := 0; r < k; r++ {
			want[d] += a[r] * b[(r-d+k)%k]
		}
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("idx %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestBCMMulVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := []struct{ out, in, k int }{
		{8, 8, 4},
		{16, 8, 8},
		{10, 6, 4}, // padding in both dims
		{256, 256, 128},
		{110, 64, 64}, // HAR-like padding
	}
	for _, c := range cases {
		b := NewRandom(c.out, c.in, c.k, 0.5, rng)
		x := randVec(c.in, rng)
		got := b.MulVec(x)
		want := b.Dense().MulVec(x)
		if len(got) != c.out {
			t.Fatalf("%+v: output length %d", c, len(got))
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("%+v idx %d: %v vs %v", c, i, got[i], want[i])
			}
		}
	}
}

func TestBCMBackwardMatchesNumericalGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	b := NewRandom(6, 8, 4, 0.5, rng)
	x := randVec(8, rng)
	dy := randVec(6, rng)

	// loss = <B x, dy>; gradient w.r.t. each block entry checked by
	// central differences.
	loss := func(bb *BCM) float64 { return mat.Dot(bb.MulVec(x), dy) }

	dx, grads := b.Backward(x, dy)

	const h = 1e-6
	for i := range b.Blocks {
		for j := range b.Blocks[i] {
			for d := range b.Blocks[i][j] {
				pb := b.Clone()
				pb.Blocks[i][j][d] += h
				mb := b.Clone()
				mb.Blocks[i][j][d] -= h
				num := (loss(pb) - loss(mb)) / (2 * h)
				if math.Abs(num-grads[i][j][d]) > 1e-5 {
					t.Fatalf("block (%d,%d)[%d]: analytic %v, numeric %v",
						i, j, d, grads[i][j][d], num)
				}
			}
		}
	}
	// dx check: loss as a function of x.
	for c := range x {
		xp := append([]float64(nil), x...)
		xp[c] += h
		xm := append([]float64(nil), x...)
		xm[c] -= h
		num := (mat.Dot(b.MulVec(xp), dy) - mat.Dot(b.MulVec(xm), dy)) / (2 * h)
		if math.Abs(num-dx[c]) > 1e-5 {
			t.Fatalf("dx[%d]: analytic %v, numeric %v", c, dx[c], num)
		}
	}
}

func TestBCMPaddedBackwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := NewRandom(10, 6, 4, 0.5, rng) // both dims padded
	x := randVec(6, rng)
	dy := randVec(10, rng)
	dx, grads := b.Backward(x, dy)
	if len(dx) != 6 {
		t.Errorf("dx length %d, want 6", len(dx))
	}
	if len(grads) != b.P || len(grads[0]) != b.Q {
		t.Errorf("grads shape %dx%d, want %dx%d", len(grads), len(grads[0]), b.P, b.Q)
	}
}

func TestNewValidation(t *testing.T) {
	for _, bad := range []struct{ out, in, k int }{
		{0, 4, 4}, {4, 0, 4}, {4, 4, 3}, {4, 4, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", bad)
				}
			}()
			New(bad.out, bad.in, bad.k)
		}()
	}
}

func TestParamCount(t *testing.T) {
	b := New(256, 256, 128)
	if got := b.ParamCount(); got != 2*2*128 {
		t.Errorf("ParamCount = %d, want 512", got)
	}
	// 3520x128 with k=128 pads 3520 -> 28 blocks.
	b = New(3520, 128, 128)
	if b.P != 28 || b.Q != 1 {
		t.Errorf("grid %dx%d, want 28x1", b.P, b.Q)
	}
}

// TestTable1Compression reproduces Table I of the paper exactly: BCM
// storage reduction for a 512×512 FC layer at 16-bit precision.
func TestTable1Compression(t *testing.T) {
	cases := []struct {
		k          int
		wantBytes  int
		wantReduce float64
	}{
		{16, 65536, 93.75},
		{32, 32768, 96.87},
		{64, 16384, 98.43},
		{128, 8192, 99.21},
		{256, 4096, 99.60},
	}
	for _, c := range cases {
		s := CompressionStats(512, 512, c.k)
		if s.OriginalBytes != 1048576 {
			t.Fatalf("original bytes = %d, want 1048576", s.OriginalBytes)
		}
		if s.CompressedByte != c.wantBytes {
			t.Errorf("k=%d: compressed %d bytes, want %d", c.k, s.CompressedByte, c.wantBytes)
		}
		if math.Abs(s.ReductionPct-c.wantReduce) > 0.01 {
			t.Errorf("k=%d: reduction %.2f%%, want %.2f%%", c.k, s.ReductionPct, c.wantReduce)
		}
	}
}

func TestMulBlockAlg1MatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, k := range []int{8, 32, 128} {
		// Weights small (post-normalization), inputs in [-1,1].
		w := make([]float64, k)
		for i := range w {
			w[i] = (rng.Float64()*2 - 1) * (2.0 / float64(k))
		}
		x := randVec(k, rng)
		want := CircConv(w, x)

		shift := WeightShift(w)
		wq := make([]fixed.Q15, k)
		for i := range w {
			wq[i] = fixed.FromFloat(w[i] * float64(int(1)<<shift))
		}
		xq := fixed.FromFloats(x)
		dst := make([]fixed.Q15, k)
		MulBlockAlg1(dst, wq, xq, shift, NewAlg1Scratch(k))

		for i := range want {
			if math.Abs(dst[i].Float()-want[i]) > 0.02 {
				t.Fatalf("k=%d idx %d: fixed %v, float %v (shift=%d)",
					k, i, dst[i].Float(), want[i], shift)
			}
		}
	}
}

func TestMulBlockAlg1EquivalentDenseQ15(t *testing.T) {
	// Property: the Algorithm 1 kernel agrees with the expanded dense
	// circulant multiply for random Q15 data.
	rng := rand.New(rand.NewSource(9))
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 16
		w := make([]float64, k)
		for i := range w {
			w[i] = (r.Float64()*2 - 1) * 0.05
		}
		x := randVec(k, r)
		shift := WeightShift(w)
		wq := make([]fixed.Q15, k)
		for i := range w {
			wq[i] = fixed.FromFloat(w[i] * float64(int(1)<<shift))
		}
		dst := make([]fixed.Q15, k)
		MulBlockAlg1(dst, wq, fixed.FromFloats(x), shift, NewAlg1Scratch(k))
		want := Dense(w).MulVec(x)
		for i := range want {
			if math.Abs(dst[i].Float()-want[i]) > 0.02 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25, Rand: rng})
	if err != nil {
		t.Error(err)
	}
}

func TestWeightShift(t *testing.T) {
	if got := WeightShift([]float64{0, 0}); got != 0 {
		t.Errorf("WeightShift(zeros) = %d", got)
	}
	// max|w| = 0.01: can shift left 5 times (0.01*32 = 0.32 < 0.5,
	// 0.01*64 = 0.64 >= 0.5).
	if got := WeightShift([]float64{0.01, -0.005}); got != 5 {
		t.Errorf("WeightShift = %d, want 5", got)
	}
	// Already large weights need no shift.
	if got := WeightShift([]float64{0.9}); got != 0 {
		t.Errorf("WeightShift(0.9) = %d, want 0", got)
	}
	// Tiny weights are capped at 14.
	if got := WeightShift([]float64{1e-9}); got != 14 {
		t.Errorf("WeightShift(1e-9) = %d, want cap 14", got)
	}
}

func TestMulBlockAlg1Validation(t *testing.T) {
	s := NewAlg1Scratch(4)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-power-of-two")
		}
	}()
	MulBlockAlg1(make([]fixed.Q15, 6), make([]fixed.Q15, 6), make([]fixed.Q15, 6), 0, s)
}

func TestCloneIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	b := NewRandom(8, 8, 4, 0.5, rng)
	c := b.Clone()
	c.Blocks[0][0][0] = 99
	if b.Blocks[0][0][0] == 99 {
		t.Error("Clone shares block storage")
	}
}
