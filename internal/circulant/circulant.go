// Package circulant implements block-circulant matrices (BCM), the
// compression format RAD applies to fully connected layers (§II,
// §III-A of the paper). A dense m×n weight matrix is partitioned into
// k×k blocks, each constrained to be circulant and therefore defined
// by a single length-k vector; matrix-vector multiplication becomes
// per-block circular convolution, computable as
// IFFT(FFT(w) ∘ FFT(x)) in O(k log k).
//
// The convolution orientation used throughout is
//
//	(C(w)·x)[r] = Σ_c w[(r-c) mod k] · x[c]  =  (w ⊛ x)[r]
//
// i.e. C(w)[r][c] = w[(r-c) mod k], matching the FFT identity the
// paper's Algorithm 1 relies on.
package circulant

import (
	"fmt"
	"math/rand"

	"ehdl/internal/fftfixed"
	"ehdl/internal/mat"
)

// Scratch holds the reusable buffers of the float-domain helpers
// (CircConvInto, CircCorrInto, MulVecInto, BackwardInto), so that
// steady-state ADMM training iterations allocate nothing per block.
// The zero value is ready to use: buffers grow on demand and are
// retained. A Scratch belongs to one goroutine at a time.
type Scratch struct {
	ca, cb           []complex128
	xp, yp, dyp, dxp []float64
	conv             []float64
}

// complexPair returns two length-k complex buffers for the FFT paths.
func (s *Scratch) complexPair(k int) (a, b []complex128) {
	if cap(s.ca) < k {
		s.ca = make([]complex128, k)
		s.cb = make([]complex128, k)
	}
	return s.ca[:k], s.cb[:k]
}

// growFloats resizes *buf to length n, reusing its backing array when
// large enough. Contents are unspecified.
func growFloats(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// padInto copies x into a length-n view of *buf and zero-fills the
// tail — the block-grid padding of a logical vector.
func padInto(buf *[]float64, x []float64, n int) []float64 {
	p := growFloats(buf, n)
	copy(p, x)
	for i := len(x); i < n; i++ {
		p[i] = 0
	}
	return p
}

// CircConv returns the circular convolution w ⊛ x of two equal-length
// vectors. For power-of-two lengths ≥ fftThreshold it uses the FFT
// identity; otherwise the direct O(k²) sum.
func CircConv(w, x []float64) []float64 {
	out := make([]float64, len(w))
	CircConvInto(out, w, x, nil)
	return out
}

// CircConvInto computes the circular convolution w ⊛ x into dst
// (length k), reusing s for the FFT path's complex buffers. A nil s
// falls back to per-call allocation. dst must not alias w or x.
//
//ehdl:hotpath
func CircConvInto(dst, w, x []float64, s *Scratch) {
	if len(w) != len(x) {
		panic("circulant: CircConv length mismatch")
	}
	if len(dst) != len(w) {
		panic("circulant: CircConvInto dst length mismatch")
	}
	k := len(w)
	if k >= fftThreshold && fftfixed.IsPow2(k) {
		circConvFFT(dst, w, x, s)
		return
	}
	for r := 0; r < k; r++ {
		var sum float64
		for c := 0; c < k; c++ {
			sum += w[(r-c+k)%k] * x[c]
		}
		dst[r] = sum
	}
}

// CircCorr returns the circular cross-correlation
// out[d] = Σ_r a[r] · b[(r-d) mod k], the adjoint of CircConv used by
// backprop: dL/dw = CircCorr(dy, x) and dL/dx = CircCorr(dy, w).
func CircCorr(a, b []float64) []float64 {
	out := make([]float64, len(a))
	CircCorrInto(out, a, b, nil)
	return out
}

// CircCorrInto computes the circular cross-correlation into dst
// (length k), reusing s for the FFT path's complex buffers. A nil s
// falls back to per-call allocation. dst must not alias a or b.
//
//ehdl:hotpath
func CircCorrInto(dst, a, b []float64, s *Scratch) {
	if len(a) != len(b) {
		panic("circulant: CircCorr length mismatch")
	}
	if len(dst) != len(a) {
		panic("circulant: CircCorrInto dst length mismatch")
	}
	k := len(a)
	if k >= fftThreshold && fftfixed.IsPow2(k) {
		circCorrFFT(dst, a, b, s)
		return
	}
	for d := 0; d < k; d++ {
		var sum float64
		for r := 0; r < k; r++ {
			sum += a[r] * b[(r-d+k)%k]
		}
		dst[d] = sum
	}
}

// fftThreshold is the length at which the FFT path beats the direct
// sum for the float helpers.
const fftThreshold = 32

func circConvFFT(dst, w, x []float64, s *Scratch) {
	k := len(w)
	var wf, xf []complex128
	if s != nil {
		wf, xf = s.complexPair(k)
	} else {
		wf = make([]complex128, k)
		xf = make([]complex128, k)
	}
	for i := 0; i < k; i++ {
		wf[i] = complex(w[i], 0)
		xf[i] = complex(x[i], 0)
	}
	fftfixed.Float64FFT(wf)
	fftfixed.Float64FFT(xf)
	for i := range wf {
		wf[i] *= xf[i]
	}
	fftfixed.Float64IFFT(wf)
	for i := range dst {
		dst[i] = real(wf[i])
	}
}

func circCorrFFT(dst, a, b []float64, s *Scratch) {
	k := len(a)
	var af, bf []complex128
	if s != nil {
		af, bf = s.complexPair(k)
	} else {
		af = make([]complex128, k)
		bf = make([]complex128, k)
	}
	for i := 0; i < k; i++ {
		af[i] = complex(a[i], 0)
		bf[i] = complex(b[i], 0)
	}
	fftfixed.Float64FFT(af)
	fftfixed.Float64FFT(bf)
	for i := range af {
		// conj(bf) implements correlation.
		af[i] *= complex(real(bf[i]), -imag(bf[i]))
	}
	fftfixed.Float64IFFT(af)
	for i := range dst {
		dst[i] = real(af[i])
	}
}

// Dense expands the circulant matrix defined by w into its full k×k
// form, C[r][c] = w[(r-c) mod k]. Test and documentation helper.
func Dense(w []float64) *mat.Matrix {
	k := len(w)
	m := mat.New(k, k)
	for r := 0; r < k; r++ {
		for c := 0; c < k; c++ {
			m.Set(r, c, w[(r-c+k)%k])
		}
	}
	return m
}

// BCM is a block-circulant weight matrix for a fully connected layer
// with logical shape OutDim×InDim. Dimensions that do not divide the
// block size are zero-padded up to the block grid (P×Q blocks of size
// K), exactly as CirCNN does; the padding never leaves the package.
type BCM struct {
	OutDim, InDim int // logical dense shape
	K             int // circulant block size (power of two)
	P, Q          int // block grid: P = ceil(OutDim/K), Q = ceil(InDim/K)
	// Blocks[i][j] is the defining vector (length K) of block (i, j).
	Blocks [][][]float64
}

// New returns a zero-initialized BCM for a logical out×in layer with
// block size k. k must be a positive power of two.
func New(out, in, k int) *BCM {
	if out <= 0 || in <= 0 {
		panic(fmt.Sprintf("circulant: invalid layer shape %dx%d", out, in))
	}
	if !fftfixed.IsPow2(k) {
		panic(fmt.Sprintf("circulant: block size %d is not a power of two", k))
	}
	p := (out + k - 1) / k
	q := (in + k - 1) / k
	blocks := make([][][]float64, p)
	for i := range blocks {
		blocks[i] = make([][]float64, q)
		for j := range blocks[i] {
			blocks[i][j] = make([]float64, k)
		}
	}
	return &BCM{OutDim: out, InDim: in, K: k, P: p, Q: q, Blocks: blocks}
}

// FromFlat builds a BCM whose defining vectors are views into flat,
// laid out block-row-major: block (i,j) occupies
// flat[(i·Q+j)·K : (i·Q+j+1)·K]. len(flat) must be P·Q·K. Mutating
// flat mutates the BCM and vice versa — this is how the training
// optimizer owns BCM parameters as one contiguous tensor.
func FromFlat(out, in, k int, flat []float64) *BCM {
	b := New(out, in, k)
	if len(flat) != b.P*b.Q*b.K {
		panic(fmt.Sprintf("circulant: FromFlat got %d params, want %d", len(flat), b.P*b.Q*b.K))
	}
	for i := 0; i < b.P; i++ {
		for j := 0; j < b.Q; j++ {
			off := (i*b.Q + j) * b.K
			b.Blocks[i][j] = flat[off : off+b.K]
		}
	}
	return b
}

// NewRandom returns a BCM with defining vectors drawn uniformly from
// [-limit, limit].
func NewRandom(out, in, k int, limit float64, rng *rand.Rand) *BCM {
	b := New(out, in, k)
	for i := range b.Blocks {
		for j := range b.Blocks[i] {
			for d := range b.Blocks[i][j] {
				b.Blocks[i][j][d] = (rng.Float64()*2 - 1) * limit
			}
		}
	}
	return b
}

// MulVec computes y = B·x for a logical input of length InDim,
// returning a logical output of length OutDim.
func (b *BCM) MulVec(x []float64) []float64 {
	return b.MulVecInto(nil, x, nil)
}

// MulVecInto computes y = B·x into dst (length OutDim; allocated when
// nil), reusing s for the padded vectors and per-block convolutions so
// steady-state calls allocate nothing. Returns dst.
//
//ehdl:hotpath
func (b *BCM) MulVecInto(dst, x []float64, s *Scratch) []float64 {
	if len(x) != b.InDim {
		panic(fmt.Sprintf("circulant: MulVec got %d elements, want %d", len(x), b.InDim))
	}
	if dst == nil { //ehdl:alloc nil-dst convenience fallback (MulVec); hot-path callers preallocate
		dst = make([]float64, b.OutDim)
	}
	if len(dst) != b.OutDim {
		panic(fmt.Sprintf("circulant: MulVecInto dst length %d, want %d", len(dst), b.OutDim))
	}
	if s == nil { //ehdl:alloc nil-scratch convenience fallback; hot-path callers pass a reused Scratch
		s = &Scratch{}
	}
	xp := padInto(&s.xp, x, b.Q*b.K)
	yp := growFloats(&s.yp, b.P*b.K)
	for i := range yp {
		yp[i] = 0
	}
	conv := growFloats(&s.conv, b.K)
	for i := 0; i < b.P; i++ {
		yi := yp[i*b.K : (i+1)*b.K]
		for j := 0; j < b.Q; j++ {
			xj := xp[j*b.K : (j+1)*b.K]
			CircConvInto(conv, b.Blocks[i][j], xj, s)
			for d := range yi {
				yi[d] += conv[d]
			}
		}
	}
	copy(dst, yp[:b.OutDim])
	return dst
}

// NewGrads allocates a per-block gradient tensor with the same
// [P][Q][K] shape as Blocks, for reuse across BackwardInto calls.
func (b *BCM) NewGrads() [][][]float64 {
	grads := make([][][]float64, b.P)
	for i := range grads {
		grads[i] = make([][]float64, b.Q)
		for j := range grads[i] {
			grads[i][j] = make([]float64, b.K)
		}
	}
	return grads
}

// Backward computes the input gradient dx and the per-block weight
// gradients for upstream gradient dy (length OutDim) and input x
// (length InDim). The returned grads slice has the same [P][Q][K]
// shape as Blocks.
func (b *BCM) Backward(x, dy []float64) (dx []float64, grads [][][]float64) {
	return b.BackwardInto(nil, nil, x, dy, nil)
}

// BackwardInto is Backward with caller-owned storage: dx (length
// InDim) and grads (shape of NewGrads) are filled and returned,
// allocated first when nil. s buffers the padded vectors so
// steady-state training calls allocate nothing.
//
//ehdl:hotpath
func (b *BCM) BackwardInto(dx []float64, grads [][][]float64, x, dy []float64, s *Scratch) ([]float64, [][][]float64) {
	if len(x) != b.InDim || len(dy) != b.OutDim {
		panic("circulant: Backward shape mismatch")
	}
	if dx == nil { //ehdl:alloc nil-dx convenience fallback (Backward); training loops preallocate
		dx = make([]float64, b.InDim)
	}
	if len(dx) != b.InDim {
		panic("circulant: BackwardInto dx length mismatch")
	}
	if grads == nil {
		grads = b.NewGrads()
	}
	if s == nil { //ehdl:alloc nil-scratch convenience fallback; training loops pass a reused Scratch
		s = &Scratch{}
	}
	xp := padInto(&s.xp, x, b.Q*b.K)
	dyp := padInto(&s.dyp, dy, b.P*b.K)
	dxp := growFloats(&s.dxp, b.Q*b.K)
	for i := range dxp {
		dxp[i] = 0
	}
	conv := growFloats(&s.conv, b.K)
	for i := 0; i < b.P; i++ {
		dyi := dyp[i*b.K : (i+1)*b.K]
		for j := 0; j < b.Q; j++ {
			xj := xp[j*b.K : (j+1)*b.K]
			CircCorrInto(grads[i][j], dyi, xj, s)
			CircCorrInto(conv, dyi, b.Blocks[i][j], s)
			for d := 0; d < b.K; d++ {
				dxp[j*b.K+d] += conv[d]
			}
		}
	}
	copy(dx, dxp[:b.InDim])
	return dx, grads
}

// Dense expands the BCM into the equivalent logical OutDim×InDim dense
// matrix (padding rows/columns dropped). Test helper; O(OutDim·InDim).
func (b *BCM) Dense() *mat.Matrix {
	m := mat.New(b.OutDim, b.InDim)
	for i := 0; i < b.P; i++ {
		for j := 0; j < b.Q; j++ {
			w := b.Blocks[i][j]
			for r := 0; r < b.K; r++ {
				gr := i*b.K + r
				if gr >= b.OutDim {
					break
				}
				for c := 0; c < b.K; c++ {
					gc := j*b.K + c
					if gc >= b.InDim {
						continue
					}
					m.Set(gr, gc, w[(r-c+b.K)%b.K])
				}
			}
		}
	}
	return m
}

// ParamCount returns the number of stored parameters (P·Q·K), the
// quantity BCM compresses from OutDim·InDim.
func (b *BCM) ParamCount() int { return b.P * b.Q * b.K }

// Clone returns a deep copy of b.
func (b *BCM) Clone() *BCM {
	c := New(b.OutDim, b.InDim, b.K)
	for i := range b.Blocks {
		for j := range b.Blocks[i] {
			copy(c.Blocks[i][j], b.Blocks[i][j])
		}
	}
	return c
}

// Stats describes the storage effect of BCM compression on one layer,
// the quantity tabulated in Table I of the paper.
type Stats struct {
	Rows, Cols     int
	BlockSize      int
	OriginalBytes  int     // rows·cols·4 (float32 weights, as Table I counts)
	CompressedByte int     // ceil(rows/k)·ceil(cols/k)·k·4
	ReductionPct   float64 // 100·(1 - compressed/original)
	Ratio          float64 // original/compressed
}

// CompressionStats computes Table I's storage accounting for a
// rows×cols FC layer compressed with block size k. Table I counts
// 4 bytes per weight (the pre-quantization float32 model): a 512×512
// kernel is listed as 1048576 bytes.
func CompressionStats(rows, cols, k int) Stats {
	const bytesPerWeight = 4
	orig := rows * cols * bytesPerWeight
	p := (rows + k - 1) / k
	q := (cols + k - 1) / k
	comp := p * q * k * bytesPerWeight
	return Stats{
		Rows: rows, Cols: cols, BlockSize: k,
		OriginalBytes:  orig,
		CompressedByte: comp,
		ReductionPct:   100 * (1 - float64(comp)/float64(orig)),
		Ratio:          float64(orig) / float64(comp),
	}
}
