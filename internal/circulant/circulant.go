// Package circulant implements block-circulant matrices (BCM), the
// compression format RAD applies to fully connected layers (§II,
// §III-A of the paper). A dense m×n weight matrix is partitioned into
// k×k blocks, each constrained to be circulant and therefore defined
// by a single length-k vector; matrix-vector multiplication becomes
// per-block circular convolution, computable as
// IFFT(FFT(w) ∘ FFT(x)) in O(k log k).
//
// The convolution orientation used throughout is
//
//	(C(w)·x)[r] = Σ_c w[(r-c) mod k] · x[c]  =  (w ⊛ x)[r]
//
// i.e. C(w)[r][c] = w[(r-c) mod k], matching the FFT identity the
// paper's Algorithm 1 relies on.
package circulant

import (
	"fmt"
	"math/rand"

	"ehdl/internal/fftfixed"
	"ehdl/internal/mat"
)

// CircConv returns the circular convolution w ⊛ x of two equal-length
// vectors. For power-of-two lengths ≥ fftThreshold it uses the FFT
// identity; otherwise the direct O(k²) sum.
func CircConv(w, x []float64) []float64 {
	if len(w) != len(x) {
		panic("circulant: CircConv length mismatch")
	}
	k := len(w)
	if k >= fftThreshold && fftfixed.IsPow2(k) {
		return circConvFFT(w, x)
	}
	out := make([]float64, k)
	for r := 0; r < k; r++ {
		var s float64
		for c := 0; c < k; c++ {
			s += w[(r-c+k)%k] * x[c]
		}
		out[r] = s
	}
	return out
}

// CircCorr returns the circular cross-correlation
// out[d] = Σ_r a[r] · b[(r-d) mod k], the adjoint of CircConv used by
// backprop: dL/dw = CircCorr(dy, x) and dL/dx = CircCorr(dy, w).
func CircCorr(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("circulant: CircCorr length mismatch")
	}
	k := len(a)
	if k >= fftThreshold && fftfixed.IsPow2(k) {
		return circCorrFFT(a, b)
	}
	out := make([]float64, k)
	for d := 0; d < k; d++ {
		var s float64
		for r := 0; r < k; r++ {
			s += a[r] * b[(r-d+k)%k]
		}
		out[d] = s
	}
	return out
}

// fftThreshold is the length at which the FFT path beats the direct
// sum for the float helpers.
const fftThreshold = 32

func circConvFFT(w, x []float64) []float64 {
	k := len(w)
	wf := make([]complex128, k)
	xf := make([]complex128, k)
	for i := 0; i < k; i++ {
		wf[i] = complex(w[i], 0)
		xf[i] = complex(x[i], 0)
	}
	fftfixed.Float64FFT(wf)
	fftfixed.Float64FFT(xf)
	for i := range wf {
		wf[i] *= xf[i]
	}
	fftfixed.Float64IFFT(wf)
	out := make([]float64, k)
	for i := range out {
		out[i] = real(wf[i])
	}
	return out
}

func circCorrFFT(a, b []float64) []float64 {
	k := len(a)
	af := make([]complex128, k)
	bf := make([]complex128, k)
	for i := 0; i < k; i++ {
		af[i] = complex(a[i], 0)
		bf[i] = complex(b[i], 0)
	}
	fftfixed.Float64FFT(af)
	fftfixed.Float64FFT(bf)
	for i := range af {
		// conj(bf) implements correlation.
		af[i] *= complex(real(bf[i]), -imag(bf[i]))
	}
	fftfixed.Float64IFFT(af)
	out := make([]float64, k)
	for i := range out {
		out[i] = real(af[i])
	}
	return out
}

// Dense expands the circulant matrix defined by w into its full k×k
// form, C[r][c] = w[(r-c) mod k]. Test and documentation helper.
func Dense(w []float64) *mat.Matrix {
	k := len(w)
	m := mat.New(k, k)
	for r := 0; r < k; r++ {
		for c := 0; c < k; c++ {
			m.Set(r, c, w[(r-c+k)%k])
		}
	}
	return m
}

// BCM is a block-circulant weight matrix for a fully connected layer
// with logical shape OutDim×InDim. Dimensions that do not divide the
// block size are zero-padded up to the block grid (P×Q blocks of size
// K), exactly as CirCNN does; the padding never leaves the package.
type BCM struct {
	OutDim, InDim int // logical dense shape
	K             int // circulant block size (power of two)
	P, Q          int // block grid: P = ceil(OutDim/K), Q = ceil(InDim/K)
	// Blocks[i][j] is the defining vector (length K) of block (i, j).
	Blocks [][][]float64
}

// New returns a zero-initialized BCM for a logical out×in layer with
// block size k. k must be a positive power of two.
func New(out, in, k int) *BCM {
	if out <= 0 || in <= 0 {
		panic(fmt.Sprintf("circulant: invalid layer shape %dx%d", out, in))
	}
	if !fftfixed.IsPow2(k) {
		panic(fmt.Sprintf("circulant: block size %d is not a power of two", k))
	}
	p := (out + k - 1) / k
	q := (in + k - 1) / k
	blocks := make([][][]float64, p)
	for i := range blocks {
		blocks[i] = make([][]float64, q)
		for j := range blocks[i] {
			blocks[i][j] = make([]float64, k)
		}
	}
	return &BCM{OutDim: out, InDim: in, K: k, P: p, Q: q, Blocks: blocks}
}

// FromFlat builds a BCM whose defining vectors are views into flat,
// laid out block-row-major: block (i,j) occupies
// flat[(i·Q+j)·K : (i·Q+j+1)·K]. len(flat) must be P·Q·K. Mutating
// flat mutates the BCM and vice versa — this is how the training
// optimizer owns BCM parameters as one contiguous tensor.
func FromFlat(out, in, k int, flat []float64) *BCM {
	b := New(out, in, k)
	if len(flat) != b.P*b.Q*b.K {
		panic(fmt.Sprintf("circulant: FromFlat got %d params, want %d", len(flat), b.P*b.Q*b.K))
	}
	for i := 0; i < b.P; i++ {
		for j := 0; j < b.Q; j++ {
			off := (i*b.Q + j) * b.K
			b.Blocks[i][j] = flat[off : off+b.K]
		}
	}
	return b
}

// NewRandom returns a BCM with defining vectors drawn uniformly from
// [-limit, limit].
func NewRandom(out, in, k int, limit float64, rng *rand.Rand) *BCM {
	b := New(out, in, k)
	for i := range b.Blocks {
		for j := range b.Blocks[i] {
			for d := range b.Blocks[i][j] {
				b.Blocks[i][j][d] = (rng.Float64()*2 - 1) * limit
			}
		}
	}
	return b
}

// MulVec computes y = B·x for a logical input of length InDim,
// returning a logical output of length OutDim.
func (b *BCM) MulVec(x []float64) []float64 {
	if len(x) != b.InDim {
		panic(fmt.Sprintf("circulant: MulVec got %d elements, want %d", len(x), b.InDim))
	}
	xp := make([]float64, b.Q*b.K)
	copy(xp, x)
	yp := make([]float64, b.P*b.K)
	for i := 0; i < b.P; i++ {
		yi := yp[i*b.K : (i+1)*b.K]
		for j := 0; j < b.Q; j++ {
			xj := xp[j*b.K : (j+1)*b.K]
			conv := CircConv(b.Blocks[i][j], xj)
			for d := range yi {
				yi[d] += conv[d]
			}
		}
	}
	return yp[:b.OutDim]
}

// Backward computes the input gradient dx and the per-block weight
// gradients for upstream gradient dy (length OutDim) and input x
// (length InDim). The returned grads slice has the same [P][Q][K]
// shape as Blocks.
func (b *BCM) Backward(x, dy []float64) (dx []float64, grads [][][]float64) {
	if len(x) != b.InDim || len(dy) != b.OutDim {
		panic("circulant: Backward shape mismatch")
	}
	xp := make([]float64, b.Q*b.K)
	copy(xp, x)
	dyp := make([]float64, b.P*b.K)
	copy(dyp, dy)

	grads = make([][][]float64, b.P)
	dxp := make([]float64, b.Q*b.K)
	for i := 0; i < b.P; i++ {
		grads[i] = make([][]float64, b.Q)
		dyi := dyp[i*b.K : (i+1)*b.K]
		for j := 0; j < b.Q; j++ {
			xj := xp[j*b.K : (j+1)*b.K]
			grads[i][j] = CircCorr(dyi, xj)
			dxj := CircCorr(dyi, b.Blocks[i][j])
			for d := 0; d < b.K; d++ {
				dxp[j*b.K+d] += dxj[d]
			}
		}
	}
	return dxp[:b.InDim], grads
}

// Dense expands the BCM into the equivalent logical OutDim×InDim dense
// matrix (padding rows/columns dropped). Test helper; O(OutDim·InDim).
func (b *BCM) Dense() *mat.Matrix {
	m := mat.New(b.OutDim, b.InDim)
	for i := 0; i < b.P; i++ {
		for j := 0; j < b.Q; j++ {
			w := b.Blocks[i][j]
			for r := 0; r < b.K; r++ {
				gr := i*b.K + r
				if gr >= b.OutDim {
					break
				}
				for c := 0; c < b.K; c++ {
					gc := j*b.K + c
					if gc >= b.InDim {
						continue
					}
					m.Set(gr, gc, w[(r-c+b.K)%b.K])
				}
			}
		}
	}
	return m
}

// ParamCount returns the number of stored parameters (P·Q·K), the
// quantity BCM compresses from OutDim·InDim.
func (b *BCM) ParamCount() int { return b.P * b.Q * b.K }

// Clone returns a deep copy of b.
func (b *BCM) Clone() *BCM {
	c := New(b.OutDim, b.InDim, b.K)
	for i := range b.Blocks {
		for j := range b.Blocks[i] {
			copy(c.Blocks[i][j], b.Blocks[i][j])
		}
	}
	return c
}

// Stats describes the storage effect of BCM compression on one layer,
// the quantity tabulated in Table I of the paper.
type Stats struct {
	Rows, Cols     int
	BlockSize      int
	OriginalBytes  int     // rows·cols·4 (float32 weights, as Table I counts)
	CompressedByte int     // ceil(rows/k)·ceil(cols/k)·k·4
	ReductionPct   float64 // 100·(1 - compressed/original)
	Ratio          float64 // original/compressed
}

// CompressionStats computes Table I's storage accounting for a
// rows×cols FC layer compressed with block size k. Table I counts
// 4 bytes per weight (the pre-quantization float32 model): a 512×512
// kernel is listed as 1048576 bytes.
func CompressionStats(rows, cols, k int) Stats {
	const bytesPerWeight = 4
	orig := rows * cols * bytesPerWeight
	p := (rows + k - 1) / k
	q := (cols + k - 1) / k
	comp := p * q * k * bytesPerWeight
	return Stats{
		Rows: rows, Cols: cols, BlockSize: k,
		OriginalBytes:  orig,
		CompressedByte: comp,
		ReductionPct:   100 * (1 - float64(comp)/float64(orig)),
		Ratio:          float64(orig) / float64(comp),
	}
}
