package circulant

import (
	"ehdl/internal/fftfixed"
	"ehdl/internal/fixed"
)

// This file is the device-independent reference implementation of the
// paper's Algorithm 1 ("On-device BCM implementation"). The ACE
// runtime executes the same stages through the LEA cost model; tests
// cross-check ACE's output against this kernel, and this kernel
// against the float CircConv.

// Alg1Scratch holds the SRAM-sized scratch vectors Algorithm 1 needs,
// so repeated block multiplies do not allocate. All three slices have
// the block length K.
type Alg1Scratch struct {
	CW, CX, CY []fftfixed.Complex
}

// NewAlg1Scratch returns scratch buffers for block size k.
func NewAlg1Scratch(k int) *Alg1Scratch {
	return &Alg1Scratch{
		CW: make([]fftfixed.Complex, k),
		CX: make([]fftfixed.Complex, k),
		CY: make([]fftfixed.Complex, k),
	}
}

// MulBlockAlg1 computes the circular convolution w ⊛ x of two Q15
// vectors following Algorithm 1:
//
//	COMPLEX → FFT(w), FFT(x) → element-wise MPY → IFFT → REAL → SCALE-UP
//
// The per-stage-scaled forward FFT already divides by K (the paper's
// SCALE-DOWN), so the product carries a leftover factor 1/K which the
// SCALE-UP shift restores. wShift is the power-of-two pre-scaling
// applied to the stored weights by the quantizer (weights are stored
// as w·2^wShift for precision); the final shift compensates for both:
// out = conv · 2^(log2 K − wShift).
//
// Results land in dst, which must have length len(w) == len(x) == a
// power of two.
//
//ehdl:hotpath
func MulBlockAlg1(dst []fixed.Q15, w, x []fixed.Q15, wShift uint, s *Alg1Scratch) {
	k := len(w)
	if len(x) != k || len(dst) != k {
		panic("circulant: MulBlockAlg1 length mismatch")
	}
	if !fftfixed.IsPow2(k) {
		panic("circulant: MulBlockAlg1 block size must be a power of two")
	}
	if len(s.CW) != k {
		panic("circulant: scratch size mismatch")
	}
	MulBlockRaw(dst, w, x, 0, s)
	scaleUp := fixed.Log2Ceil(k)
	switch {
	case scaleUp > wShift:
		fixed.ShlVec(dst, dst, scaleUp-wShift)
	case wShift > scaleUp:
		fixed.ShrVec(dst, dst, wShift-scaleUp)
	}
}

// MulBlockRaw performs Algorithm 1 WITHOUT the final SCALE-UP: the
// result is (w ⊛ x)·2^bShift/K exactly as the scaled FFT pipeline
// leaves it. bShift lifts the product spectrum before the inverse
// transform (calibrated by the quantizer so it cannot saturate), which
// keeps the IFFT working in the high bits. Layer kernels accumulate
// several raw blocks and apply one combined scale at the end.
//
//ehdl:hotpath
func MulBlockRaw(dst []fixed.Q15, w, x []fixed.Q15, bShift uint, s *Alg1Scratch) {
	k := len(w)
	if len(x) != k || len(dst) != k {
		panic("circulant: MulBlockRaw length mismatch")
	}
	if !fftfixed.IsPow2(k) {
		panic("circulant: MulBlockRaw block size must be a power of two")
	}
	if len(s.CW) != k {
		panic("circulant: scratch size mismatch")
	}
	fftfixed.ToComplex(s.CW, w)
	fftfixed.ToComplex(s.CX, x)
	fftfixed.FFT(s.CW)
	fftfixed.FFT(s.CX)
	fftfixed.MulComplexVec(s.CY, s.CW, s.CX)
	fftfixed.ShlVec(s.CY, bShift)
	fftfixed.IFFT(s.CY)
	fftfixed.Real(dst, s.CY)
}

// BlockSpectrum computes the forward Algorithm 1 spectrum of a stored
// weight block into dst: FFT(COMPLEX(w)), exactly the stages the block
// kernel runs on the weights. Weights are frozen at inference, so
// executors precompute this once per block and pass the result to
// MulBlockRawSpec, halving the FFT work of every block multiply
// without moving an output bit.
//
//ehdl:hotpath
func BlockSpectrum(dst []fftfixed.Complex, w []fixed.Q15) {
	if len(dst) != len(w) {
		panic("circulant: BlockSpectrum length mismatch")
	}
	if !fftfixed.IsPow2(len(w)) {
		panic("circulant: BlockSpectrum block size must be a power of two")
	}
	fftfixed.ToComplex(dst, w)
	fftfixed.FFT(dst)
}

// MulBlockRawSpec is MulBlockRaw with the weight spectrum supplied by
// the caller (from BlockSpectrum): bit-identical output, one forward
// FFT instead of two.
//
//ehdl:hotpath
func MulBlockRawSpec(dst []fixed.Q15, wSpec []fftfixed.Complex, x []fixed.Q15, bShift uint, s *Alg1Scratch) {
	k := len(wSpec)
	if len(x) != k || len(dst) != k {
		panic("circulant: MulBlockRawSpec length mismatch")
	}
	if !fftfixed.IsPow2(k) {
		panic("circulant: MulBlockRawSpec block size must be a power of two")
	}
	if len(s.CX) != k {
		panic("circulant: scratch size mismatch")
	}
	fftfixed.ToComplex(s.CX, x)
	fftfixed.FFT(s.CX)
	fftfixed.MulComplexVec(s.CY, wSpec, s.CX)
	fftfixed.ShlVec(s.CY, bShift)
	fftfixed.IFFT(s.CY)
	fftfixed.Real(dst, s.CY)
}

// WeightShift picks the largest power-of-two pre-scaling 2^s such that
// max|w|·2^s stays below the Q15 ceiling with one bit of headroom.
// Storing weights pre-scaled preserves precision through the 1/K FFT
// attenuation (the overflow-aware computation of §III-B).
func WeightShift(w []float64) uint {
	var maxAbs float64
	for _, v := range w {
		if v < 0 {
			v = -v
		}
		if v > maxAbs {
			maxAbs = v
		}
	}
	if maxAbs == 0 {
		return 0
	}
	var s uint
	for s < 14 && maxAbs*float64(int(1)<<(s+1)) < 0.5 {
		s++
	}
	return s
}
