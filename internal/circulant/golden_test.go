package circulant

import (
	"math/rand"
	"testing"

	"ehdl/internal/fftfixed"
	"ehdl/internal/fixed"
)

func detQ(n int, seed uint32) []fixed.Q15 {
	v := make([]fixed.Q15, n)
	for i := range v {
		h := uint32(i)*2654435761 + seed
		v[i] = fixed.Q15(int32(h%20011) - 10005)
	}
	return v
}

// goldenBlockRaw pins MulBlockRaw's exact output bits on a fixed
// 32-element block (bShift 2), captured from the seed implementation.
var goldenBlockRaw = []fixed.Q15{1540, 104, -1919, 1019, -235, 563, 1591, -1590, 1520, 205, -1715, 1068, -218, 568, 600, -1634, 1460, 116, -101, 943, -365, -129, 201, -2082, 1000, 1351, -1593, 1142, -190, 6, 1304, -1970}

func TestMulBlockRawGolden(t *testing.T) {
	dst := make([]fixed.Q15, 32)
	MulBlockRaw(dst, detQ(32, 7), detQ(32, 9), 2, NewAlg1Scratch(32))
	for i, v := range dst {
		if v != goldenBlockRaw[i] {
			t.Fatalf("MulBlockRaw[%d] = %d, golden %d", i, v, goldenBlockRaw[i])
		}
	}
}

// TestMulBlockRawSpecMatchesRaw: the precomputed-spectrum path must be
// bit-identical to transforming the weights live.
func TestMulBlockRawSpecMatchesRaw(t *testing.T) {
	for _, k := range []int{8, 16, 32, 64} {
		w := detQ(k, uint32(3*k+1))
		x := detQ(k, uint32(5*k+2))
		s := NewAlg1Scratch(k)
		want := make([]fixed.Q15, k)
		MulBlockRaw(want, w, x, 1, s)

		spec := make([]fftfixed.Complex, k)
		BlockSpectrum(spec, w)
		got := make([]fixed.Q15, k)
		MulBlockRawSpec(got, spec, x, 1, s)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("k=%d: spec path [%d] = %d, raw path %d", k, i, got[i], want[i])
			}
		}
	}
}

// TestIntoVariantsMatchAllocating: the scratch-reusing float helpers
// must produce bit-identical results to the allocating originals, for
// both the direct and the FFT-backed lengths, across repeated reuse of
// one Scratch.
func TestIntoVariantsMatchAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var s Scratch
	for _, k := range []int{4, 8, 16, 32, 64} {
		for trial := 0; trial < 3; trial++ {
			w := randVec(k, rng)
			x := randVec(k, rng)
			conv := make([]float64, k)
			CircConvInto(conv, w, x, &s)
			if want := CircConv(w, x); !equal(conv, want) {
				t.Fatalf("k=%d CircConvInto diverges", k)
			}
			corr := make([]float64, k)
			CircCorrInto(corr, w, x, &s)
			if want := CircCorr(w, x); !equal(corr, want) {
				t.Fatalf("k=%d CircCorrInto diverges", k)
			}
		}
	}
}

// TestBCMIntoVariantsMatch: MulVecInto/BackwardInto against the
// allocating MulVec/Backward, reusing one scratch and caller storage
// across calls and across differently-shaped BCMs.
func TestBCMIntoVariantsMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var s Scratch
	for _, shape := range []struct{ out, in, k int }{{8, 8, 4}, {10, 6, 4}, {40, 36, 8}, {33, 70, 16}} {
		b := NewRandom(shape.out, shape.in, shape.k, 0.5, rng)
		dst := make([]float64, b.OutDim)
		dx := make([]float64, b.InDim)
		grads := b.NewGrads()
		for trial := 0; trial < 2; trial++ {
			x := randVec(b.InDim, rng)
			dy := randVec(b.OutDim, rng)
			b.MulVecInto(dst, x, &s)
			if want := b.MulVec(x); !equal(dst, want) {
				t.Fatalf("%dx%d/%d MulVecInto diverges", shape.out, shape.in, shape.k)
			}
			b.BackwardInto(dx, grads, x, dy, &s)
			wantDx, wantGrads := b.Backward(x, dy)
			if !equal(dx, wantDx) {
				t.Fatalf("%dx%d/%d BackwardInto dx diverges", shape.out, shape.in, shape.k)
			}
			for i := range grads {
				for j := range grads[i] {
					if !equal(grads[i][j], wantGrads[i][j]) {
						t.Fatalf("%dx%d/%d BackwardInto grads[%d][%d] diverges",
							shape.out, shape.in, shape.k, i, j)
					}
				}
			}
		}
	}
}

// TestMulVecIntoSteadyStateAllocs: after warm-up, the scratch-reusing
// BCM forward/backward must not allocate.
func TestMulVecIntoSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := NewRandom(40, 36, 8, 0.5, rng)
	x := randVec(36, rng)
	dy := randVec(40, rng)
	var s Scratch
	dst := make([]float64, b.OutDim)
	dx := make([]float64, b.InDim)
	grads := b.NewGrads()
	b.MulVecInto(dst, x, &s)
	b.BackwardInto(dx, grads, x, dy, &s)
	if a := testing.AllocsPerRun(50, func() {
		b.MulVecInto(dst, x, &s)
		b.BackwardInto(dx, grads, x, dy, &s)
	}); a != 0 {
		t.Fatalf("steady-state MulVecInto+BackwardInto allocate %v times per run, want 0", a)
	}
}

func equal(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
