package quant

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ehdl/internal/artifact"
	"ehdl/internal/nn"
)

// smallModel quantizes a randomly initialized mixed-layer net — no
// training; serialization does not care about accuracy.
func smallModel(t *testing.T, seed int64) *Model {
	t.Helper()
	arch := &nn.Arch{
		Name: "mnist", InShape: [3]int{1, 8, 8}, NumClasses: 4,
		Specs: []nn.LayerSpec{
			{Kind: "conv", InC: 1, InH: 8, InW: 8, OutC: 4, KH: 3, KW: 3},
			{Kind: "pool", InC: 4, InH: 6, InW: 6, PoolSize: 2},
			{Kind: "relu", N: 4 * 3 * 3},
			{Kind: "flatten", N: 36},
			{Kind: "bcm", In: 36, Out: 16, K: 8, WeightNorm: true},
			{Kind: "relu", N: 16},
			{Kind: "dense", In: 16, Out: 4},
		},
	}
	rng := rand.New(rand.NewSource(seed))
	net := arch.Build(rng)
	calib := make([][]float64, 4)
	for i := range calib {
		x := make([]float64, arch.InLen())
		for j := range x {
			x[j] = rng.Float64()*2 - 1
		}
		calib[i] = x
	}
	m, err := Quantize(net, arch, calib)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSaveFileLoadFileRoundTrip(t *testing.T) {
	m := smallModel(t, 3)
	path := filepath.Join(t.TempDir(), "m.gob")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatal("loaded model differs from saved model")
	}

	// Save → load → save is bit-identical on disk.
	path2 := filepath.Join(t.TempDir(), "m2.gob")
	if err := got.SaveFile(path2); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("artifact bytes changed across a save/load/save cycle")
	}
}

// TestLoadFileTypedErrors: the failure modes a deployment hits in the
// field — stale raw-gob artifacts, bit rot, interrupted copies — must
// come back as the artifact package's typed sentinels, not raw gob
// noise.
func TestLoadFileTypedErrors(t *testing.T) {
	m := smallModel(t, 4)
	dir := t.TempDir()
	good := filepath.Join(dir, "good.gob")
	if err := m.SaveFile(good); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}

	var legacy bytes.Buffer
	if err := m.Save(&legacy); err != nil { // pre-container format
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), raw...)
	corrupt[len(corrupt)-100] ^= 0x10

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"legacy raw gob", legacy.Bytes(), artifact.ErrBadMagic},
		{"truncated", raw[:len(raw)/2], artifact.ErrTruncated},
		{"corrupted", corrupt, artifact.ErrChecksum},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.name)
			if err := os.WriteFile(path, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := LoadFile(path)
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestValidateCatchesDrift(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(m *Model)
	}{
		{"zeroed name", func(m *Model) { m.Name = "" }},
		{"zeroed shape", func(m *Model) { m.InShape = [3]int{} }},
		{"zeroed classes", func(m *Model) { m.NumClasses = 0 }},
		{"no layers", func(m *Model) { m.Layers = nil }},
		{"dropped weights", func(m *Model) { m.Layers[0].W = nil }},
		{"short bias", func(m *Model) { m.Layers[6].B = m.Layers[6].B[:1] }},
		{"unknown kind", func(m *Model) { m.Layers[2].Spec.Kind = "gelu" }},
		{"broken chain", func(m *Model) { m.Layers[6].Spec.In = 99 }},
		{"bad block size", func(m *Model) { m.Layers[4].Spec.K = 7 }},
		{"class mismatch", func(m *Model) { m.NumClasses = 5 }},
		{"kept out of range", func(m *Model) { m.Layers[0].Kept = []int{999} }},
	}
	for _, tc := range mutations {
		t.Run(tc.name, func(t *testing.T) {
			m := smallModel(t, 5)
			if err := m.Validate(); err != nil {
				t.Fatalf("pristine model invalid: %v", err)
			}
			tc.mut(m)
			if err := m.Validate(); err == nil {
				t.Fatal("Validate accepted a damaged model")
			}
		})
	}
}
