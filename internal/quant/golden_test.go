package quant

import (
	"testing"

	"ehdl/internal/circulant"
	"ehdl/internal/fixed"
	"ehdl/internal/nn"
)

// detQ fills a Q15 vector deterministically; together with the pinned
// golden vectors below it freezes the seed kernels' exact output bits,
// so the scratch-reusing rewrite (and any future optimization) cannot
// move a single bit of the quantized inference path.
func detQ(n int, seed uint32) []fixed.Q15 {
	v := make([]fixed.Q15, n)
	for i := range v {
		h := uint32(i)*2654435761 + seed
		v[i] = fixed.Q15(int32(h%20011) - 10005)
	}
	return v
}

var (
	goldenConvOut  = []fixed.Q15{-9306, -10657, -10001, -9265, -8905, -10508, -9388, -10624, -10305, -9773, -9111, -10624, -10780, -8852, -10250, -10122, 6221, 7250, 7011, 6180, 6649, 7427, 6279, 6862, 6996, 6371, 6359, 6890, 7517, 6093, 6852, 6309, -3737, -2930, -3990, -2063, -1478, -3717, -2962, -2120, -3586, -4097, -2318, -3210, -4033, -2955, -3355, -3784}
	goldenDenseOut = []fixed.Q15{-6687, 5716, -3463, -7307, 2587, -2923, -10122, 471}
	goldenBCMOut   = []fixed.Q15{-8992, 6634, -3025, -5781, 3438, -5179, -8877, -218, -1439, 7861, -2282, -4598, 4793, -4280, -7872, 1247, -1450, 9401, -1740, -4253}
	goldenBCMTime  = []fixed.Q15{-8995, 6631, -3033, -5775, 3442, -5172, -8873, -220, -1435, 7864, -2278, -4603, 4794, -4279, -7870, 1238, -1448, 9398, -1741, -4254}

	goldenModelFFT  = []fixed.Q15{-7368, 8488, -1904, -6414}
	goldenModelTime = []fixed.Q15{-7369, 8487, -1904, -6414}
)

func goldenConvLayer() *QLayer {
	return &QLayer{
		Spec:   nn.LayerSpec{Kind: "conv", InC: 2, InH: 6, InW: 6, OutC: 3, KH: 3, KW: 3},
		W:      detQ(3*2*3*3, 11),
		B:      detQ(3, 13),
		WShift: 2, SIn: 0, SOut: 1,
	}
}

func goldenDenseLayer() *QLayer {
	return &QLayer{
		Spec:   nn.LayerSpec{Kind: "dense", In: 12, Out: 8},
		W:      detQ(8*12, 19),
		B:      detQ(8, 23),
		WShift: 1, SIn: 1, SOut: 2,
	}
}

func goldenBCMLayer() *QLayer {
	return &QLayer{
		Spec:    nn.LayerSpec{Kind: "bcm", In: 24, Out: 20, K: 16},
		W:       detQ(2*2*16, 31),
		B:       detQ(20, 37),
		WShift:  2,
		SIn:     1,
		SOut:    2,
		BShift:  1,
		CosNorm: true,
	}
}

// goldenModel is a full conv→pool→relu→flatten→bcm→dense stack with
// deterministic weights; its Forward outputs are pinned for both
// disciplines.
func goldenModel() *Model {
	return &Model{
		Name: "golden", InShape: [3]int{1, 6, 6}, NumClasses: 4,
		Layers: []QLayer{
			{Spec: nn.LayerSpec{Kind: "conv", InC: 1, InH: 6, InW: 6, OutC: 2, KH: 3, KW: 3},
				W: detQ(2*1*3*3, 43), B: detQ(2, 47), WShift: 2, SIn: 0, SOut: 1},
			{Spec: nn.LayerSpec{Kind: "pool", InC: 2, InH: 4, InW: 4, PoolSize: 2}, SIn: 1, SOut: 1},
			{Spec: nn.LayerSpec{Kind: "relu", N: 8}, SIn: 1, SOut: 1},
			{Spec: nn.LayerSpec{Kind: "flatten", N: 8}, SIn: 1, SOut: 1},
			{Spec: nn.LayerSpec{Kind: "bcm", In: 8, Out: 8, K: 8},
				W: detQ(8, 53), B: detQ(8, 59), WShift: 1, SIn: 1, SOut: 1, BShift: 1, CosNorm: true},
			{Spec: nn.LayerSpec{Kind: "dense", In: 8, Out: 4},
				W: detQ(4*8, 61), B: detQ(4, 67), WShift: 1, SIn: 1, SOut: 2},
		},
	}
}

func checkQ(t *testing.T, what string, got, want []fixed.Q15) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", what, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s[%d] = %d, golden %d", what, i, got[i], want[i])
		}
	}
}

func TestKernelGoldens(t *testing.T) {
	checkQ(t, "conv", ConvLayer(goldenConvLayer(), detQ(2*6*6, 17)), goldenConvOut)
	checkQ(t, "dense", DenseLayer(goldenDenseLayer(), detQ(12, 29)), goldenDenseOut)
	in := detQ(24, 41)
	checkQ(t, "bcm", BCMLayer(goldenBCMLayer(), in, circulant.NewAlg1Scratch(16)), goldenBCMOut)
	checkQ(t, "bcm-time", BCMLayerTime(goldenBCMLayer(), in), goldenBCMTime)
}

func TestExecutorGoldens(t *testing.T) {
	m := goldenModel()
	in := detQ(36, 71)
	fft := NewExecutor(m)
	tim := NewTimeExecutor(m)
	checkQ(t, "model-fft", fft.Forward(in), goldenModelFFT)
	checkQ(t, "model-time", tim.Forward(in), goldenModelTime)
	// Repeat on the same executors: buffer reuse must be idempotent.
	checkQ(t, "model-fft-2", fft.Forward(in), goldenModelFFT)
	checkQ(t, "model-time-2", tim.Forward(in), goldenModelTime)
	if p := fft.Predict(fixed.Floats(in)); p != 1 {
		t.Fatalf("Predict = %d, golden 1", p)
	}
}

// TestForwardZeroAlloc is the acceptance gate of the allocation-free
// hot path: after the first call, Forward and Predict must not
// allocate, on either BCM discipline.
func TestForwardZeroAlloc(t *testing.T) {
	m := goldenModel()
	in := detQ(36, 71)
	fin := fixed.Floats(in)
	for _, d := range []struct {
		name string
		exe  *Executor
	}{
		{"fft", NewExecutor(m)},
		{"time", NewTimeExecutor(m)},
	} {
		d.exe.Forward(in) // warm-up: fills the lazy twiddle caches
		if a := testing.AllocsPerRun(100, func() { d.exe.Forward(in) }); a != 0 {
			t.Errorf("%s: steady-state Forward allocates %v times per run, want 0", d.name, a)
		}
		if a := testing.AllocsPerRun(100, func() { d.exe.Predict(fin) }); a != 0 {
			t.Errorf("%s: steady-state Predict allocates %v times per run, want 0", d.name, a)
		}
	}
}

// TestPredictArgmaxTies: ties keep the earliest index, the seed
// argmax's behaviour.
func TestPredictArgmaxTies(t *testing.T) {
	m := &Model{
		Name: "argmax", InShape: [3]int{1, 1, 3}, NumClasses: 3,
		Layers: []QLayer{
			{Spec: nn.LayerSpec{Kind: "relu", N: 3}},
		},
	}
	e := NewExecutor(m)
	if p := e.Predict([]float64{0.5, 0.5, 0.25}); p != 0 {
		t.Fatalf("tie broke to %d, want earliest index 0", p)
	}
	if p := e.Predict([]float64{0.1, 0.2, 0.5}); p != 2 {
		t.Fatalf("argmax = %d, want 2", p)
	}
}
