package quant

import (
	"path/filepath"
	"sync"
	"testing"

	"ehdl/internal/fixed"
)

// TestContentDigestStableAcrossRoundTrip: the digest must address
// content, not identity — a save/load round trip yields the same
// digest, so memo entries survive model reloads (e.g. an artifact-LRU
// eviction mid-fleet).
func TestContentDigestStableAcrossRoundTrip(t *testing.T) {
	m := smallModel(t, 3)
	d := m.ContentDigest()
	if d == ([32]byte{}) {
		t.Fatal("zero digest")
	}
	if m.ContentDigest() != d {
		t.Fatal("digest not stable on repeat calls")
	}
	path := filepath.Join(t.TempDir(), "m.gob")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.ContentDigest() != d {
		t.Fatal("round-tripped model digests differently")
	}
}

// TestContentDigestSensitive: different weights, different digest.
func TestContentDigestSensitive(t *testing.T) {
	a := smallModel(t, 3)
	b := smallModel(t, 4)
	if a.ContentDigest() == b.ContentDigest() {
		t.Fatal("models with different weights share a digest")
	}
	c := smallModel(t, 3)
	if a.ContentDigest() != c.ContentDigest() {
		t.Fatal("identically built models digest differently")
	}
}

// TestContentDigestConcurrent: first call races from many goroutines
// (the fleet's workers all probe the memo at once); all must agree.
func TestContentDigestConcurrent(t *testing.T) {
	m := smallModel(t, 5)
	want := smallModel(t, 5).ContentDigest()
	var wg sync.WaitGroup
	got := make([][32]byte, 16)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = m.ContentDigest()
		}(i)
	}
	wg.Wait()
	for i, d := range got {
		if d != want {
			t.Fatalf("goroutine %d: digest mismatch", i)
		}
	}
}

func TestHashQ15(t *testing.T) {
	a := HashQ15([]fixed.Q15{1, 2, 3})
	if a != HashQ15([]fixed.Q15{1, 2, 3}) {
		t.Fatal("equal inputs hash differently")
	}
	for _, other := range [][]fixed.Q15{
		{1, 2, 4},
		{1, 2},
		{1, 2, 3, 0},
		{3, 2, 1},
		{-1, 2, 3},
		nil,
	} {
		if HashQ15(other) == a {
			t.Fatalf("distinct input %v collides", other)
		}
	}
	// Byte order matters: Q15 values must not alias across element
	// boundaries ([256] vs [1,0] little-endian confusion).
	if HashQ15([]fixed.Q15{256, 0}) == HashQ15([]fixed.Q15{0, 256}) {
		t.Fatal("element boundary aliasing")
	}
}
