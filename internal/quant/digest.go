package quant

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"fmt"

	"ehdl/internal/fixed"
)

// ContentDigest returns the SHA-256 of the model's gob encoding — the
// content address fleet memoization keys device runs on. It is
// computed once and cached on the model; the cache is safe under
// concurrent readers (racing first calls hash the same immutable
// fields and store equal digests). Callers must not mutate a model
// after its digest has been taken.
func (m *Model) ContentDigest() [32]byte {
	if d := m.digest.Load(); d != nil {
		return *d
	}
	h := sha256.New()
	if err := gob.NewEncoder(h).Encode(m); err != nil {
		// Model is gob-serializable by construction (SaveFile uses the
		// same encoding); an in-memory encode cannot fail.
		panic(fmt.Sprintf("quant: hashing model %q: %v", m.Name, err))
	}
	var d [32]byte
	h.Sum(d[:0])
	m.digest.Store(&d)
	return d
}

// HashQ15 returns the SHA-256 of a Q15 slice (little-endian int16
// stream) — the input half of a fleet memo key.
func HashQ15(xs []fixed.Q15) [32]byte {
	buf := make([]byte, 2*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint16(buf[2*i:], uint16(x))
	}
	return sha256.Sum256(buf)
}
