// Package quant converts trained float models into the 16-bit
// fixed-point artifacts the on-device runtimes execute — RAD's
// "fixed point calculation" stage plus ACE's overflow-aware scaling
// (§III-A/B of the paper).
//
// All scaling is by powers of two so the device only ever shifts:
//
//   - Activations: layer l's stored activation is â = a/2^S_l, where
//     S_l ≥ 0 is calibrated so â ∈ [-1, 1] over the calibration set
//     (the paper's normalization keeps the network's true ranges close
//     to [-1, 1] already; S_l mops up what training left over).
//   - Weights: stored as ŵ = w·2^W_l, W_l chosen for maximum precision
//     subject to the layer's accumulator never overflowing — the
//     overflow-aware computation of §III-B.
//   - Each layer ends with one combined shift that converts the raw
//     accumulator back to the next layer's activation scale.
//
// The package also provides a host-side reference executor that
// defines the bit-exact semantics every runtime must reproduce.
package quant

import (
	"fmt"
	"math"
	"sync/atomic"

	"ehdl/internal/circulant"
	"ehdl/internal/fixed"
	"ehdl/internal/nn"
)

// QLayer is one quantized layer. Which fields are meaningful depends
// on Spec.Kind.
type QLayer struct {
	Spec nn.LayerSpec

	// W holds quantized weights scaled by 2^WShift:
	//   conv:  [oc][ic][ky][kx] dense layout (masked positions zero)
	//   dense: [out][in] row-major
	//   bcm:   P·Q·K block-defining vectors
	W []fixed.Q15
	// B holds biases quantized at the OUTPUT activation scale
	// (b/2^SOut).
	B []fixed.Q15

	// WShift is the power-of-two pre-scaling of the stored weights
	// (may be negative for weights larger than Q15 range).
	WShift int
	// SIn/SOut are log2 of the input/output activation scales.
	SIn, SOut int

	// Kept lists the surviving kernel positions (indices into the
	// ic·kh·kw grid) for shape-pruned conv layers; nil means dense.
	Kept []int

	// CosNorm marks a BCM layer trained with cosine normalization:
	// the stored weights already carry the folded weight norm, and the
	// runtime must scale the layer input by 1/max(‖x‖, 1) (computed
	// with InputScale) before the block kernels.
	CosNorm bool

	// BShift is the FFT path's block-domain scale-up: the product
	// spectrum is shifted left this many bits between MPY and IFFT,
	// recovering the precision the forward transforms' 1/K scaling
	// pushed into the low bits. Calibrated so the shifted spectrum
	// cannot saturate.
	BShift int
}

// AccShift returns the right-shift that converts this layer's raw Q31
// MAC accumulator into the output activation scale:
// â_out = acc / 2^(WShift + SOut − SIn).
func (l *QLayer) AccShift() int { return l.WShift + l.SOut - l.SIn }

// BCMShift returns the signed right-shift applied to the accumulated
// raw BCM blocks: raw blocks carry y·2^(WShift+BShift)/K in
// input-scale units, so â_out needs a right shift by
// (WShift + BShift + SOut − SIn − log2 K).
func (l *QLayer) BCMShift() int {
	return l.WShift + l.BShift + l.SOut - l.SIn - int(fixed.Log2Ceil(l.Spec.K))
}

// Model is a quantized network ready for deployment.
type Model struct {
	Name       string
	InShape    [3]int
	NumClasses int
	Layers     []QLayer

	// digest caches ContentDigest (nil until first computed). Gob
	// skips unexported fields, so serialization is unaffected; models
	// are treated as immutable once deployed, so the cache never goes
	// stale. Always handle Model by pointer — the atomic makes value
	// copies a vet error.
	digest atomic.Pointer[[32]byte]
}

// WeightBytes returns the FRAM footprint of weights and biases
// (2 bytes per parameter; pruned conv layers store only kept
// positions).
func (m *Model) WeightBytes() int {
	total := 0
	for _, l := range m.Layers {
		switch l.Spec.Kind {
		case "conv":
			if l.Kept != nil {
				total += 2 * l.Spec.OutC * len(l.Kept)
			} else {
				total += 2 * len(l.W)
			}
			total += 2 * len(l.B)
		case "dense", "bcm":
			total += 2 * (len(l.W) + len(l.B))
		}
	}
	return total
}

// MaxActivationLen returns the largest layer input/output length —
// what ACE's circular buffers must hold.
func (m *Model) MaxActivationLen() int {
	maxLen := m.InShape[0] * m.InShape[1] * m.InShape[2]
	for _, l := range m.Layers {
		if n := LayerOutLen(l.Spec); n > maxLen {
			maxLen = n
		}
	}
	return maxLen
}

// LayerOutLen returns the flattened output length of a layer spec.
func LayerOutLen(s nn.LayerSpec) int {
	switch s.Kind {
	case "conv":
		return s.OutC * (s.InH - s.KH + 1) * (s.InW - s.KW + 1)
	case "pool":
		return s.InC * (s.InH / s.PoolSize) * (s.InW / s.PoolSize)
	case "relu", "flatten":
		return s.N
	case "dense", "bcm":
		return s.Out
	}
	panic(fmt.Sprintf("quant: unknown layer kind %q", s.Kind))
}

// accHeadroom is the fraction of the Q31 accumulator range calibration
// is allowed to fill; the rest is margin for inputs beyond the
// calibration set.
const accHeadroom = 0.45

// q15Headroom is the same margin for Q15-domain BCM accumulation.
const q15Headroom = 0.45

// Quantize calibrates and quantizes a trained network. calibration
// supplies representative inputs (a slice of the training set); the
// float net and its arch must correspond layer-for-layer.
func Quantize(net *nn.Network, arch *nn.Arch, calibration [][]float64) (*Model, error) {
	if len(calibration) == 0 {
		return nil, fmt.Errorf("quant: empty calibration set")
	}
	if len(net.Layers) != len(arch.Specs) {
		return nil, fmt.Errorf("quant: net has %d layers, arch %d", len(net.Layers), len(arch.Specs))
	}

	// Pass 1: record float activations per layer boundary.
	// acts[l] = activations entering layer l; acts[len] = logits.
	nLayers := len(net.Layers)
	maxAbsIn := make([]float64, nLayers+1)
	// Accumulator bounds per layer. partial is the Σ|terms| bound used
	// by conv/dense Q31 MACs and (divided by K) the BCM FFT path's Q15
	// block accumulation; timePartial is the max |running sum| of the
	// BCM time-domain MAC stream in exact engine order, the bound the
	// baselines' Q31 accumulation needs.
	partial := make([]float64, nLayers)
	timePartial := make([]float64, nLayers)
	// spectrumBound[li] bounds the FFT product spectrum magnitude of a
	// BCM layer: max over blocks of (Σ|w_ij|/K)·(Σ|x̂_j|/K), in
	// true-input units (sIn and WShift folded in later).
	spectrumBound := make([]float64, nLayers)

	for _, x := range calibration {
		cur := x
		for li, layer := range net.Layers {
			updateMax(&maxAbsIn[li], cur)
			partial[li] = math.Max(partial[li], partialBound(layer, arch.Specs[li], cur))
			if arch.Specs[li].Kind == "bcm" {
				b := layer.(*nn.BCMDense)
				timePartial[li] = math.Max(timePartial[li], bcmRunningBound(b, cur))
				spectrumBound[li] = math.Max(spectrumBound[li], bcmSpectrumBound(b, cur))
			}
			cur = layer.Forward(cur)
		}
		updateMax(&maxAbsIn[nLayers], cur)
	}

	// Activation scales: S_l = max(0, ceil(log2 maxAbs)).
	scaleAt := func(boundary int) int {
		m := maxAbsIn[boundary]
		if m <= 1 {
			return 0
		}
		return int(math.Ceil(math.Log2(m)))
	}

	qm := &Model{
		Name:       arch.Name,
		InShape:    arch.InShape,
		NumClasses: arch.NumClasses,
	}
	for li, spec := range arch.Specs {
		sIn := scaleAt(li)
		sOut := scaleAt(li + 1)
		ql := QLayer{Spec: spec, SIn: sIn, SOut: sOut}
		switch spec.Kind {
		case "conv":
			conv := net.Layers[li].(*nn.Conv2D)
			w := effectiveConvWeights(conv)
			// Partial bound is in true-input units; stored activations
			// are a/2^sIn, so the accumulator sees partial/2^sIn·2^W.
			ql.WShift = chooseShift(w, partial[li]/pow2(sIn), 1.99*accHeadroom)
			ql.W = quantizeScaled(w, ql.WShift)
			ql.B = quantizeScaled(conv.B.Data, -sOut)
			if conv.Mask != nil {
				ql.Kept = keptPositions(conv.Mask, spec.InC*spec.KH*spec.KW)
			}
		case "dense":
			dense := net.Layers[li].(*nn.Dense)
			w := dense.NormalizedWeights()
			ql.WShift = chooseShift(w, partial[li]/pow2(sIn), 1.99*accHeadroom)
			ql.W = quantizeScaled(w, ql.WShift)
			ql.B = quantizeScaled(dense.B.Data, -sOut)
		case "bcm":
			bcm := net.Layers[li].(*nn.BCMDense)
			// Cosine normalization folds the uniform weight norm into
			// the stored weights; the input-norm factor is applied by
			// the runtime (QLayer.CosNorm).
			w := bcm.NormalizedBlocks()
			ql.CosNorm = spec.WeightNorm
			k := float64(spec.K)
			// Two accumulation disciplines share this weight array:
			// ACE's FFT path sums raw blocks in Q15 (bound scaled by
			// 1/K), and the baselines' time-domain path sums Q31 MACs
			// whose calibrated running extreme (with a 2× margin) must
			// stay inside the Q31 range.
			sFFT := chooseShift(w, partial[li]/pow2(sIn)/k, q15Headroom)
			sTime := chooseShift(w, 2*timePartial[li]/pow2(sIn), 1.8)
			ql.WShift = sFFT
			if sTime < ql.WShift {
				ql.WShift = sTime
			}
			ql.W = quantizeScaled(w, ql.WShift)
			ql.B = quantizeScaled(bcm.B.Data, -sOut)
			// Block-domain precision recovery: lift the product
			// spectrum as far as its calibrated bound allows (the
			// post-IFFT accumulation rises by the same factor, so the
			// Q15 bound applies to both).
			bound := spectrumBound[li] * pow2(ql.WShift) / pow2(sIn)
			accBound := partial[li] / pow2(sIn) / k * pow2(ql.WShift)
			if accBound > bound {
				bound = accBound
			}
			for ql.BShift < int(fixed.Log2Ceil(spec.K)) &&
				bound*pow2(ql.BShift+1) <= q15Headroom {
				ql.BShift++
			}
		case "pool", "relu", "flatten":
			// Stateless; scales pass through.
		default:
			return nil, fmt.Errorf("quant: unknown layer kind %q", spec.Kind)
		}
		qm.Layers = append(qm.Layers, ql)
	}
	return qm, nil
}

func updateMax(dst *float64, xs []float64) {
	for _, v := range xs {
		if a := math.Abs(v); a > *dst {
			*dst = a
		}
	}
}

// partialBound returns Σ|w·x| for the layer — an upper bound on any
// partial accumulator value regardless of summation order, in true
// input units.
func partialBound(layer nn.Layer, spec nn.LayerSpec, x []float64) float64 {
	switch spec.Kind {
	case "conv":
		conv := layer.(*nn.Conv2D)
		w := effectiveConvWeights(conv)
		return convPartialBound(conv, spec, w, x)
	case "dense":
		d := layer.(*nn.Dense)
		w := d.NormalizedWeights()
		var worst float64
		for r := 0; r < spec.Out; r++ {
			var s float64
			for c := 0; c < spec.In; c++ {
				s += math.Abs(w[r*spec.In+c] * x[c])
			}
			worst = math.Max(worst, s)
		}
		return worst
	case "bcm":
		b := layer.(*nn.BCMDense)
		bound := bcmPartialBound(b, x)
		if b.CosNorm {
			// The runtime computes with folded weights (gain included)
			// and scaled inputs; the bound is linear in both.
			bound *= b.CosNormFactor(x)
		}
		return bound
	}
	return 0
}

// inputScaleFloat mirrors the runtime's 1/max(‖x‖, 1) factor for
// bound computation.
func inputScaleFloat(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	if n := math.Sqrt(s); n > 1 {
		return 1 / n
	}
	return 1
}

func convPartialBound(conv *nn.Conv2D, spec nn.LayerSpec, w, x []float64) float64 {
	oh := spec.InH - spec.KH + 1
	ow := spec.InW - spec.KW + 1
	var worst float64
	for oc := 0; oc < spec.OutC; oc++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var s float64
				for ic := 0; ic < spec.InC; ic++ {
					for ky := 0; ky < spec.KH; ky++ {
						for kx := 0; kx < spec.KW; kx++ {
							wi := ((oc*spec.InC+ic)*spec.KH + ky) * spec.KW
							s += math.Abs(w[wi+kx] * x[ic*spec.InH*spec.InW+(oy+ky)*spec.InW+ox+kx])
						}
					}
				}
				worst = math.Max(worst, s)
			}
		}
	}
	return worst
}

// bcmPartialBound bounds the FFT path's Q15 block accumulation: the
// running sum over blocks j of conv_ij[d] is bounded element-wise by
// Σ_j |conv_ij[d]|.
func bcmPartialBound(b *nn.BCMDense, x []float64) float64 {
	bcm := b.BCM()
	xp := make([]float64, bcm.Q*bcm.K)
	copy(xp, x)
	var worst float64
	sum := make([]float64, bcm.K)
	for i := 0; i < bcm.P; i++ {
		for d := range sum {
			sum[d] = 0
		}
		for j := 0; j < bcm.Q; j++ {
			conv := circulant.CircConv(bcm.Blocks[i][j], xp[j*bcm.K:(j+1)*bcm.K])
			for d, v := range conv {
				sum[d] += math.Abs(v)
			}
		}
		for _, v := range sum {
			worst = math.Max(worst, v)
		}
	}
	return worst
}

// bcmSpectrumBound bounds the FFT product spectrum of every block:
// |FFT(w)/K ∘ FFT(x)/K|∞ ≤ (Σ|w|/K)·(Σ|x|/K), with the cosine
// normalization factors applied when the layer uses them. The bound is
// in "true input, unscaled weight" units; Quantize folds WShift and
// sIn in afterwards.
func bcmSpectrumBound(b *nn.BCMDense, x []float64) float64 {
	bcm := b.BCM()
	k := float64(bcm.K)
	norm := 1.0
	if b.CosNorm {
		norm = b.CosNormFactor(x)
	}
	// Per block column: Σ|x_j|.
	xs := make([]float64, bcm.Q)
	for j := 0; j < bcm.Q; j++ {
		lo := j * bcm.K
		hi := lo + bcm.K
		if hi > len(x) {
			hi = len(x)
		}
		for c := lo; c < hi; c++ {
			xs[j] += math.Abs(x[c])
		}
	}
	var worst float64
	for i := 0; i < bcm.P; i++ {
		for j := 0; j < bcm.Q; j++ {
			var ws float64
			for _, v := range bcm.Blocks[i][j] {
				ws += math.Abs(v)
			}
			worst = math.Max(worst, (ws/k)*(xs[j]/k)*norm)
		}
	}
	return worst
}

// bcmRunningBound computes the maximum |running partial sum| of the
// time-domain MAC stream in exactly the order the baseline engines
// accumulate (blocks j ascending, columns c ascending) — the tight
// bound for their Q31 accumulators.
func bcmRunningBound(b *nn.BCMDense, x []float64) float64 {
	bcm := b.BCM()
	k := bcm.K
	norm := 1.0
	if b.CosNorm {
		norm = b.CosNormFactor(x)
	}
	var worst float64
	for r := 0; r < b.Out; r++ {
		i := r / k
		rk := r % k
		var acc float64
		for j := 0; j < bcm.Q; j++ {
			w := bcm.Blocks[i][j]
			lim := b.In - j*k
			if lim > k {
				lim = k
			}
			for c := 0; c < lim; c++ {
				acc += w[(rk-c+k)%k] * x[j*k+c]
				worst = math.Max(worst, math.Abs(acc)*norm)
			}
		}
	}
	return worst
}

// chooseShift picks the signed power-of-two weight pre-scaling
// maximizing precision subject to (a) quantized weights fitting Q15
// with a little headroom and (b) the accumulation bound staying under
// limit: bound·2^shift ≤ limit.
func chooseShift(w []float64, bound, limit float64) int {
	var maxW float64
	for _, v := range w {
		if a := math.Abs(v); a > maxW {
			maxW = a
		}
	}
	shift := 0
	// Push up while both constraints allow.
	for shift < 14 &&
		maxW*pow2(shift+1) < 0.97 &&
		(bound <= 0 || bound*pow2(shift+1) <= limit) {
		shift++
	}
	// Push down if either constraint is already violated at 0.
	for shift > -14 &&
		(maxW*pow2(shift) >= 1.0 || (bound > 0 && bound*pow2(shift) > limit)) {
		shift--
	}
	return shift
}

func pow2(n int) float64 { return math.Ldexp(1, n) }

func quantizeScaled(w []float64, shift int) []fixed.Q15 {
	out := make([]fixed.Q15, len(w))
	s := pow2(shift)
	for i, v := range w {
		out[i] = fixed.FromFloat(v * s)
	}
	return out
}

func effectiveConvWeights(conv *nn.Conv2D) []float64 {
	w := make([]float64, len(conv.W.Data))
	copy(w, conv.W.Data)
	if conv.Mask != nil {
		for i, m := range conv.Mask {
			w[i] *= m
		}
	}
	return w
}

func keptPositions(mask []float64, positions int) []int {
	var kept []int
	for p := 0; p < positions; p++ {
		if mask[p] != 0 {
			kept = append(kept, p)
		}
	}
	return kept
}
