package quant

import (
	"math"
	"math/rand"
	"testing"

	"ehdl/internal/circulant"
	"ehdl/internal/dataset"
	"ehdl/internal/fixed"
	"ehdl/internal/nn"
	"ehdl/internal/train"
)

// trainSmall trains a small model on a small synthetic task and
// returns everything the quantizer needs.
func trainSmall(t *testing.T) (*nn.Network, *nn.Arch, *dataset.Set) {
	t.Helper()
	set := dataset.MNIST(800, 120, 7)
	arch := &nn.Arch{
		Name: "mini-mnist", InShape: [3]int{1, 28, 28}, NumClasses: 10,
		Specs: []nn.LayerSpec{
			{Kind: "conv", InC: 1, InH: 28, InW: 28, OutC: 4, KH: 5, KW: 5},
			{Kind: "pool", InC: 4, InH: 24, InW: 24, PoolSize: 2},
			{Kind: "relu", N: 4 * 12 * 12},
			{Kind: "flatten", N: 576},
			{Kind: "bcm", In: 576, Out: 64, K: 32},
			{Kind: "relu", N: 64},
			{Kind: "dense", In: 64, Out: 10, WeightNorm: true},
		},
	}
	net := arch.Build(rand.New(rand.NewSource(3)))
	cfg := train.DefaultConfig()
	res := train.Run(net, set, cfg)
	if res.TestAccuracy < 0.9 {
		t.Fatalf("float training too weak for quantization test: %v", res.TestAccuracy)
	}
	return net, arch, set
}

func calibInputs(set *dataset.Set, n int) [][]float64 {
	var xs [][]float64
	for i := 0; i < n && i < len(set.Train); i++ {
		xs = append(xs, set.Train[i].Input)
	}
	return xs
}

func TestQuantizedAccuracyNearFloat(t *testing.T) {
	if testing.Short() {
		t.Skip("training in short mode")
	}
	net, arch, set := trainSmall(t)
	floatAcc := set.Accuracy(net.Predict)
	qm, err := Quantize(net, arch, calibInputs(set, 60))
	if err != nil {
		t.Fatal(err)
	}
	exec := NewExecutor(qm)
	qAcc := set.Accuracy(exec.Predict)
	t.Logf("float acc=%.3f quantized acc=%.3f", floatAcc, qAcc)
	if qAcc < floatAcc-0.05 {
		t.Errorf("quantization lost too much: float %.3f, fixed %.3f", floatAcc, qAcc)
	}
}

func TestQuantizeValidation(t *testing.T) {
	net, arch, set := func() (*nn.Network, *nn.Arch, *dataset.Set) {
		arch := &nn.Arch{Name: "d", InShape: [3]int{1, 1, 4}, NumClasses: 2,
			Specs: []nn.LayerSpec{{Kind: "dense", In: 4, Out: 2}}}
		return arch.Build(rand.New(rand.NewSource(1))), arch, nil
	}()
	_ = set
	if _, err := Quantize(net, arch, nil); err == nil {
		t.Error("expected error for empty calibration")
	}
	badArch := &nn.Arch{Name: "d", InShape: [3]int{1, 1, 4},
		Specs: []nn.LayerSpec{{Kind: "dense", In: 4, Out: 2}, {Kind: "relu", N: 2}}}
	if _, err := Quantize(net, badArch, [][]float64{{0, 0, 0, 0}}); err == nil {
		t.Error("expected error for mismatched layer counts")
	}
}

func TestDenseLayerSemantics(t *testing.T) {
	// Hand-built 2x2 dense layer: W = [[0.5, -0.25], [0.125, 0.5]],
	// b = [0.1, -0.1], no scaling (SIn=SOut=0, WShift=1).
	l := &QLayer{
		Spec:   nn.LayerSpec{Kind: "dense", In: 2, Out: 2},
		W:      fixed.FromFloats([]float64{1.0, -0.5, 0.25, 1.0}), // w·2^1
		B:      fixed.FromFloats([]float64{0.1, -0.1}),
		WShift: 1,
	}
	x := fixed.FromFloats([]float64{0.5, 0.5})
	out := DenseLayer(l, x)
	want := []float64{0.5*0.5 - 0.25*0.5 + 0.1, 0.125*0.5 + 0.5*0.5 - 0.1}
	for i := range want {
		if math.Abs(out[i].Float()-want[i]) > 1e-3 {
			t.Errorf("out[%d] = %v, want %v", i, out[i].Float(), want[i])
		}
	}
}

func TestDenseLayerOutputScaling(t *testing.T) {
	// SOut=1 halves the stored activation: y_true = 1.2 stores as 0.6.
	l := &QLayer{
		Spec:   nn.LayerSpec{Kind: "dense", In: 1, Out: 1},
		W:      fixed.FromFloats([]float64{0.75}),
		B:      []fixed.Q15{0},
		WShift: 0,
		SOut:   1,
	}
	x := fixed.FromFloats([]float64{0.8}) // y = 0.6, stored 0.3
	out := DenseLayer(l, x)
	if math.Abs(out[0].Float()-0.3) > 1e-3 {
		t.Errorf("scaled output = %v, want 0.3", out[0].Float())
	}
}

func TestConvLayerMatchesFloatConv(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	conv := nn.NewConv2D(2, 5, 5, 3, 3, 3, rng)
	x := make([]float64, 2*5*5)
	for i := range x {
		x[i] = rng.Float64()*2 - 1
	}
	want := conv.Forward(x)

	spec := nn.LayerSpec{Kind: "conv", InC: 2, InH: 5, InW: 5, OutC: 3, KH: 3, KW: 3}
	arch := &nn.Arch{Name: "c", InShape: [3]int{2, 5, 5}, Specs: []nn.LayerSpec{spec}}
	net := nn.NewNetwork("c", 50, conv)
	qm, err := Quantize(net, arch, [][]float64{x})
	if err != nil {
		t.Fatal(err)
	}
	out := ConvLayer(&qm.Layers[0], fixed.FromFloats(x))
	scale := math.Ldexp(1, qm.Layers[0].SOut)
	for i := range want {
		got := out[i].Float() * scale
		if math.Abs(got-want[i]) > 0.02*scale {
			t.Fatalf("conv[%d] = %v, want %v", i, got, want[i])
		}
	}
}

func TestPrunedConvSkipsMaskedPositions(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	conv := nn.NewConv2D(1, 4, 4, 2, 3, 3, rng)
	mask := make([]float64, len(conv.W.Data))
	// Keep positions 0, 4, 8 (diagonal of the 3x3 kernel).
	for oc := 0; oc < 2; oc++ {
		for _, p := range []int{0, 4, 8} {
			mask[oc*9+p] = 1
		}
	}
	conv.ApplyMask(mask)
	x := make([]float64, 16)
	for i := range x {
		x[i] = rng.Float64()*2 - 1
	}
	want := conv.Forward(x)

	spec := nn.LayerSpec{Kind: "conv", InC: 1, InH: 4, InW: 4, OutC: 2, KH: 3, KW: 3, PruneRatio: 0.67}
	arch := &nn.Arch{Name: "p", InShape: [3]int{1, 4, 4}, Specs: []nn.LayerSpec{spec}}
	net := nn.NewNetwork("p", 16, conv)
	qm, err := Quantize(net, arch, [][]float64{x})
	if err != nil {
		t.Fatal(err)
	}
	ql := &qm.Layers[0]
	if len(ql.Kept) != 3 {
		t.Fatalf("kept = %v, want 3 positions", ql.Kept)
	}
	out := ConvLayer(ql, fixed.FromFloats(x))
	scale := math.Ldexp(1, ql.SOut)
	for i := range want {
		if math.Abs(out[i].Float()*scale-want[i]) > 0.02*scale {
			t.Fatalf("pruned conv[%d] = %v, want %v", i, out[i].Float()*scale, want[i])
		}
	}
}

func TestBCMLayerMatchesFloatBCM(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bcm := nn.NewBCMDense(16, 12, 8, false, rng) // padded out-dim
	x := make([]float64, 16)
	for i := range x {
		x[i] = rng.Float64()*2 - 1
	}
	want := bcm.Forward(x)

	spec := nn.LayerSpec{Kind: "bcm", In: 16, Out: 12, K: 8}
	arch := &nn.Arch{Name: "b", InShape: [3]int{1, 1, 16}, Specs: []nn.LayerSpec{spec}}
	net := nn.NewNetwork("b", 16, bcm)
	qm, err := Quantize(net, arch, [][]float64{x})
	if err != nil {
		t.Fatal(err)
	}
	out := BCMLayer(&qm.Layers[0], fixed.FromFloats(x), circulant.NewAlg1Scratch(8))
	scale := math.Ldexp(1, qm.Layers[0].SOut)
	for i := range want {
		if math.Abs(out[i].Float()*scale-want[i]) > 0.03*scale {
			t.Fatalf("bcm[%d] = %v, want %v", i, out[i].Float()*scale, want[i])
		}
	}
}

func TestPoolAndReLULayers(t *testing.T) {
	pl := &QLayer{Spec: nn.LayerSpec{Kind: "pool", InC: 1, InH: 2, InW: 2, PoolSize: 2}}
	out := PoolLayer(pl, fixed.FromFloats([]float64{0.1, 0.9, -0.5, 0.3}))
	if math.Abs(out[0].Float()-0.9) > 1e-3 {
		t.Errorf("pool = %v", out[0].Float())
	}
	rl := &QLayer{Spec: nn.LayerSpec{Kind: "relu", N: 3}}
	ro := ReLULayer(rl, fixed.FromFloats([]float64{-0.5, 0.25, 0}))
	if ro[0] != 0 || math.Abs(ro[1].Float()-0.25) > 1e-3 || ro[2] != 0 {
		t.Errorf("relu = %v", ro)
	}
}

func TestExecutorFullForward(t *testing.T) {
	if testing.Short() {
		t.Skip("training in short mode")
	}
	net, arch, set := trainSmall(t)
	qm, err := Quantize(net, arch, calibInputs(set, 40))
	if err != nil {
		t.Fatal(err)
	}
	exec := NewExecutor(qm)
	// Forward returns a view into the executor's buffer; copy before
	// the second call so the determinism comparison is real.
	logits := append([]fixed.Q15(nil), exec.Forward(fixed.FromFloats(set.Test[0].Input))...)
	if len(logits) != 10 {
		t.Fatalf("logits length %d", len(logits))
	}
	// Same input twice gives identical output (deterministic).
	logits2 := exec.Forward(fixed.FromFloats(set.Test[0].Input))
	for i := range logits {
		if logits[i] != logits2[i] {
			t.Fatal("executor not deterministic")
		}
	}
}

func TestModelAccounting(t *testing.T) {
	m := &Model{
		InShape: [3]int{1, 4, 4},
		Layers: []QLayer{
			{Spec: nn.LayerSpec{Kind: "conv", InC: 1, InH: 4, InW: 4, OutC: 2, KH: 3, KW: 3},
				W: make([]fixed.Q15, 18), B: make([]fixed.Q15, 2)},
			{Spec: nn.LayerSpec{Kind: "relu", N: 8}},
			{Spec: nn.LayerSpec{Kind: "dense", In: 8, Out: 4},
				W: make([]fixed.Q15, 32), B: make([]fixed.Q15, 4)},
		},
	}
	// conv 18+2 params, dense 32+4: 56 params = 112 bytes.
	if got := m.WeightBytes(); got != 112 {
		t.Errorf("WeightBytes = %d, want 112", got)
	}
	// activations: input 16, conv out 2*2*2=8, relu 8, dense 4 -> 16.
	if got := m.MaxActivationLen(); got != 16 {
		t.Errorf("MaxActivationLen = %d, want 16", got)
	}
	// Pruned conv stores only kept positions.
	m.Layers[0].Kept = []int{0, 1, 2}
	if got := m.WeightBytes(); got != 2*(2*3+2)+2*(32+4) {
		t.Errorf("pruned WeightBytes = %d", got)
	}
}

func TestChooseShift(t *testing.T) {
	// Small weights, small bound: shift up for precision.
	if s := chooseShift([]float64{0.01, -0.02}, 0.1, 0.9); s < 3 {
		t.Errorf("shift = %d, want >= 3", s)
	}
	// Large weights need negative shift.
	if s := chooseShift([]float64{3.0}, 0, 0.9); s > -2 {
		t.Errorf("shift = %d, want <= -2", s)
	}
	// Accumulator bound caps the shift even for small weights.
	sBound := chooseShift([]float64{0.01}, 0.8, 0.9)
	sFree := chooseShift([]float64{0.01}, 0.0, 0.9)
	if sBound >= sFree {
		t.Errorf("bound did not cap shift: bound %d, free %d", sBound, sFree)
	}
}

func TestAccShiftAndBCMShift(t *testing.T) {
	l := &QLayer{Spec: nn.LayerSpec{Kind: "bcm", K: 128}, WShift: 3, SIn: 1, SOut: 2}
	if got := l.AccShift(); got != 3+2-1 {
		t.Errorf("AccShift = %d", got)
	}
	if got := l.BCMShift(); got != 3+2-1-7 {
		t.Errorf("BCMShift = %d", got)
	}
}
