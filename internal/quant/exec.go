package quant

import (
	"fmt"
	"math"

	"ehdl/internal/circulant"
	"ehdl/internal/fixed"
)

// InputScale returns the Q15 cosine-normalization factor
// 1/max(‖x‖, 1), where ‖x‖ is the TRUE activation norm: the stored
// vector is x/2^sIn, so its integer norm is shifted back up by sIn
// before the comparison. The sum of squares is accumulated exactly
// (the LEA's MAC provides a wide accumulator for this); the final
// square root and reciprocal run on the CPU. All engines and the
// reference executor share this function, so the factor is
// bit-identical everywhere.
func InputScale(x []fixed.Q15, sIn int) fixed.Q15 {
	var s uint64
	for _, v := range x {
		s += uint64(int64(v) * int64(v)) // Q30 units
	}
	norm := math.Sqrt(float64(s)/(1<<30)) * math.Ldexp(1, sIn)
	if norm <= 1 {
		return fixed.One
	}
	return fixed.FromFloat(1 / norm)
}

// Reference executor: the bit-exact semantics of the quantized model,
// with no device charging. Every on-device runtime must produce output
// identical to this executor for its model — the tests enforce it.

// Executor runs a Model on the host. Two BCM disciplines exist:
// the FFT path (Algorithm 1, what ACE executes) and the time-domain
// path (naive circulant MACs, what BASE/SONIC/TAILS execute); they
// approximate the same real values but round differently, so each
// engine is tested against its own discipline.
type Executor struct {
	m          *Model
	scratch    map[int]*circulant.Alg1Scratch
	timeDomain bool
}

// NewExecutor builds a reference executor using the FFT discipline for
// BCM layers (ACE's semantics).
func NewExecutor(m *Model) *Executor {
	return &Executor{m: m, scratch: map[int]*circulant.Alg1Scratch{}}
}

// NewTimeExecutor builds a reference executor using the time-domain
// discipline for BCM layers (the baselines' semantics).
func NewTimeExecutor(m *Model) *Executor {
	return &Executor{m: m, scratch: map[int]*circulant.Alg1Scratch{}, timeDomain: true}
}

// Forward runs the model on a quantized input and returns the
// quantized logits (at activation scale 2^S of the final layer).
func (e *Executor) Forward(x []fixed.Q15) []fixed.Q15 {
	cur := x
	for li := range e.m.Layers {
		cur = e.Layer(li, cur)
	}
	return cur
}

// Layer executes a single layer (exported so runtimes can cross-check
// stage by stage).
func (e *Executor) Layer(li int, x []fixed.Q15) []fixed.Q15 {
	l := &e.m.Layers[li]
	switch l.Spec.Kind {
	case "conv":
		return ConvLayer(l, x)
	case "pool":
		return PoolLayer(l, x)
	case "relu":
		return ReLULayer(l, x)
	case "flatten":
		return append([]fixed.Q15(nil), x...)
	case "dense":
		return DenseLayer(l, x)
	case "bcm":
		if e.timeDomain {
			return BCMLayerTime(l, x)
		}
		k := l.Spec.K
		s := e.scratch[k]
		if s == nil {
			s = circulant.NewAlg1Scratch(k)
			e.scratch[k] = s
		}
		return BCMLayer(l, x, s)
	}
	panic(fmt.Sprintf("quant: unknown layer kind %q", l.Spec.Kind))
}

// Predict quantizes a float input, runs the model, and returns the
// argmax class.
func (e *Executor) Predict(x []float64) int {
	logits := e.Forward(fixed.FromFloats(x))
	best, bestV := 0, fixed.Q15(-32768)
	first := true
	for i, v := range logits {
		if first || v > bestV {
			best, bestV = i, v
			first = false
		}
	}
	return best
}

// ConvLayer is the quantized convolution: Q31 MAC over kept kernel
// positions, one combined shift, bias add.
func ConvLayer(l *QLayer, x []fixed.Q15) []fixed.Q15 {
	s := l.Spec
	oh := s.InH - s.KH + 1
	ow := s.InW - s.KW + 1
	out := make([]fixed.Q15, s.OutC*oh*ow)
	shift := l.AccShift()
	positions := s.InC * s.KH * s.KW
	for oc := 0; oc < s.OutC; oc++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var acc fixed.Q31
				if l.Kept != nil {
					for _, p := range l.Kept {
						ic := p / (s.KH * s.KW)
						rem := p % (s.KH * s.KW)
						ky := rem / s.KW
						kx := rem % s.KW
						acc = fixed.MAC(acc,
							l.W[oc*positions+p],
							x[ic*s.InH*s.InW+(oy+ky)*s.InW+ox+kx])
					}
				} else {
					for ic := 0; ic < s.InC; ic++ {
						for ky := 0; ky < s.KH; ky++ {
							wBase := (oc*positions + ic*s.KH*s.KW + ky*s.KW)
							xBase := ic*s.InH*s.InW + (oy+ky)*s.InW + ox
							for kx := 0; kx < s.KW; kx++ {
								acc = fixed.MAC(acc, l.W[wBase+kx], x[xBase+kx])
							}
						}
					}
				}
				v := fixed.NarrowQ31(acc, shift)
				out[(oc*oh+oy)*ow+ox] = fixed.SatAdd(v, l.B[oc])
			}
		}
	}
	return out
}

// PoolLayer is quantized max pooling (scale preserving).
func PoolLayer(l *QLayer, x []fixed.Q15) []fixed.Q15 {
	s := l.Spec
	oh := s.InH / s.PoolSize
	ow := s.InW / s.PoolSize
	out := make([]fixed.Q15, s.InC*oh*ow)
	for c := 0; c < s.InC; c++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := fixed.MinusOne
				for dy := 0; dy < s.PoolSize; dy++ {
					for dx := 0; dx < s.PoolSize; dx++ {
						v := x[c*s.InH*s.InW+(oy*s.PoolSize+dy)*s.InW+ox*s.PoolSize+dx]
						if v > best {
							best = v
						}
					}
				}
				out[(c*oh+oy)*ow+ox] = best
			}
		}
	}
	return out
}

// ReLULayer is the quantized rectifier.
func ReLULayer(l *QLayer, x []fixed.Q15) []fixed.Q15 {
	out := make([]fixed.Q15, len(x))
	for i, v := range x {
		if v > 0 {
			out[i] = v
		}
	}
	return out
}

// DenseLayer is the quantized fully connected layer: Q31 row MACs,
// combined shift, bias add.
func DenseLayer(l *QLayer, x []fixed.Q15) []fixed.Q15 {
	s := l.Spec
	out := make([]fixed.Q15, s.Out)
	shift := l.AccShift()
	for r := 0; r < s.Out; r++ {
		row := l.W[r*s.In : (r+1)*s.In]
		acc := fixed.Dot(row, x)
		v := fixed.NarrowQ31(acc, shift)
		out[r] = fixed.SatAdd(v, l.B[r])
	}
	return out
}

// BCMLayerTime is the time-domain BCM discipline: each output row is
// a Q31 MAC stream over the circulant generators (no FFT, no block
// accumulation), exactly what a runtime without Algorithm 1 support
// can do with the compressed storage. MAC order: blocks j ascending,
// columns c ascending within a block.
func BCMLayerTime(l *QLayer, x []fixed.Q15) []fixed.Q15 {
	s := l.Spec
	k := s.K
	q := (s.In + k - 1) / k
	out := make([]fixed.Q15, s.Out)
	shift := l.AccShift()
	xs := x
	if l.CosNorm {
		scale := InputScale(x, l.SIn)
		xs = make([]fixed.Q15, len(x))
		fixed.ScaleVec(xs, x, scale)
	}
	for r := 0; r < s.Out; r++ {
		i := r / k
		rk := r % k
		var acc fixed.Q31
		for j := 0; j < q; j++ {
			w := l.W[(i*q+j)*k : (i*q+j+1)*k]
			lim := s.In - j*k
			if lim > k {
				lim = k
			}
			for c := 0; c < lim; c++ {
				acc = fixed.MAC(acc, w[(rk-c+k)%k], xs[j*k+c])
			}
		}
		v := fixed.NarrowQ31(acc, shift)
		out[r] = fixed.SatAdd(v, l.B[r])
	}
	return out
}

// BCMLayer is the quantized block-circulant FC layer: Algorithm 1 raw
// blocks accumulated in Q15, one combined shift, bias add. Padded
// positions beyond Spec.In/Spec.Out are zero-filled/dropped here,
// matching the on-device layout.
func BCMLayer(l *QLayer, x []fixed.Q15, scratch *circulant.Alg1Scratch) []fixed.Q15 {
	s := l.Spec
	k := s.K
	p := (s.Out + k - 1) / k
	q := (s.In + k - 1) / k

	xp := make([]fixed.Q15, q*k)
	copy(xp, x)
	if l.CosNorm {
		scale := InputScale(x, l.SIn)
		fixed.ScaleVec(xp[:len(x)], xp[:len(x)], scale)
	}
	conv := make([]fixed.Q15, k)
	acc := make([]fixed.Q15, k)
	out := make([]fixed.Q15, s.Out)
	shift := l.BCMShift()

	for i := 0; i < p; i++ {
		for d := range acc {
			acc[d] = 0
		}
		for j := 0; j < q; j++ {
			w := l.W[(i*q+j)*k : (i*q+j+1)*k]
			circulant.MulBlockRaw(conv, w, xp[j*k:(j+1)*k], uint(l.BShift), scratch)
			fixed.AddVec(acc, acc, conv)
		}
		for d := 0; d < k; d++ {
			r := i*k + d
			if r >= s.Out {
				break
			}
			v := fixed.ShiftQ15(acc[d], shift)
			out[r] = fixed.SatAdd(v, l.B[r])
		}
	}
	return out
}
