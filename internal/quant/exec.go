package quant

import (
	"fmt"
	"math"

	"ehdl/internal/circulant"
	"ehdl/internal/fftfixed"
	"ehdl/internal/fixed"
)

// InputScale returns the Q15 cosine-normalization factor
// 1/max(‖x‖, 1), where ‖x‖ is the TRUE activation norm: the stored
// vector is x/2^sIn, so its integer norm is shifted back up by sIn
// before the comparison. The sum of squares is accumulated exactly
// (the LEA's MAC provides a wide accumulator for this); the final
// square root and reciprocal run on the CPU. All engines and the
// reference executor share this function, so the factor is
// bit-identical everywhere.
//
//ehdl:hotpath
func InputScale(x []fixed.Q15, sIn int) fixed.Q15 {
	var s uint64
	for _, v := range x {
		s += uint64(int64(v) * int64(v)) // Q30 units
	}
	norm := math.Sqrt(float64(s)/(1<<30)) * math.Ldexp(1, sIn)
	if norm <= 1 {
		return fixed.One
	}
	return fixed.FromFloat(1 / norm)
}

// Reference executor: the bit-exact semantics of the quantized model,
// with no device charging. Every on-device runtime must produce output
// identical to this executor for its model — the tests enforce it.

// BCMScratch bundles the reusable buffers of one BCM block size: the
// Algorithm 1 complex scratch plus the padded-input, block-accumulator
// and per-block convolution vectors. XP must hold at least q·k
// elements of the largest layer served; Acc and Conv hold k.
type BCMScratch struct {
	Alg  *circulant.Alg1Scratch
	XP   []fixed.Q15
	Acc  []fixed.Q15
	Conv []fixed.Q15
}

// NewBCMScratch returns scratch for block size k serving layers with a
// padded input of up to maxIn (= q·k) elements.
func NewBCMScratch(k, maxIn int) *BCMScratch {
	if maxIn < k {
		maxIn = k
	}
	return &BCMScratch{
		Alg:  circulant.NewAlg1Scratch(k),
		XP:   make([]fixed.Q15, maxIn),
		Acc:  make([]fixed.Q15, k),
		Conv: make([]fixed.Q15, k),
	}
}

// Executor runs a Model on the host. Two BCM disciplines exist:
// the FFT path (Algorithm 1, what ACE executes) and the time-domain
// path (naive circulant MACs, what BASE/SONIC/TAILS execute); they
// approximate the same real values but round differently, so each
// engine is tested against its own discipline.
//
// All scratch the steady state needs — ping-pong activation buffers,
// BCM block scratch, and (for the FFT discipline) the precomputed
// FFT-domain weight spectra of every BCM block — is sized at
// construction, so Forward and Predict allocate nothing after the
// first call. The price of that reuse is two contracts: an Executor
// serves one goroutine at a time (build one per worker for parallel
// sweeps), and the slice Forward returns is owned by the executor,
// valid until its next Forward/Layer/Predict call.
type Executor struct {
	m          *Model
	timeDomain bool

	// bcm maps block size K to the shared scratch of all BCM layers of
	// that size.
	bcm map[int]*BCMScratch
	// wspec[li] caches FFT(w) of every block of BCM layer li, laid out
	// block-row-major like QLayer.W (FFT discipline only; weights are
	// frozen at inference, so each spectrum is computed once instead of
	// once per Forward).
	wspec [][]fftfixed.Complex
	// bufA/bufB are the ping-pong activation buffers layers write into
	// alternately; both hold MaxActivationLen elements.
	bufA, bufB []fixed.Q15
	// qin is Predict's reusable quantized-input buffer.
	qin []fixed.Q15
}

// NewExecutor builds a reference executor using the FFT discipline for
// BCM layers (ACE's semantics).
func NewExecutor(m *Model) *Executor {
	return newExecutor(m, false)
}

// NewTimeExecutor builds a reference executor using the time-domain
// discipline for BCM layers (the baselines' semantics).
func NewTimeExecutor(m *Model) *Executor {
	return newExecutor(m, true)
}

func newExecutor(m *Model, timeDomain bool) *Executor {
	e := &Executor{
		m:          m,
		timeDomain: timeDomain,
		bcm:        map[int]*BCMScratch{},
		wspec:      make([][]fftfixed.Complex, len(m.Layers)),
	}
	maxAct := m.MaxActivationLen()
	e.bufA = make([]fixed.Q15, maxAct)
	e.bufB = make([]fixed.Q15, maxAct)
	e.qin = make([]fixed.Q15, m.InShape[0]*m.InShape[1]*m.InShape[2])
	for li := range m.Layers {
		l := &m.Layers[li]
		if l.Spec.Kind != "bcm" {
			continue
		}
		k := l.Spec.K
		p := (l.Spec.Out + k - 1) / k
		q := (l.Spec.In + k - 1) / k
		if s := e.bcm[k]; s == nil {
			e.bcm[k] = NewBCMScratch(k, q*k)
		} else if len(s.XP) < q*k {
			s.XP = make([]fixed.Q15, q*k)
		}
		if !timeDomain {
			spec := make([]fftfixed.Complex, p*q*k)
			for blk := 0; blk < p*q; blk++ {
				circulant.BlockSpectrum(spec[blk*k:(blk+1)*k], l.W[blk*k:(blk+1)*k])
			}
			e.wspec[li] = spec
		}
	}
	return e
}

// Forward runs the model on a quantized input and returns the
// quantized logits (at activation scale 2^S of the final layer).
// Steady-state calls perform no allocation; the result aliases an
// internal buffer that the next Forward/Layer/Predict call overwrites.
//
//ehdl:hotpath
func (e *Executor) Forward(x []fixed.Q15) []fixed.Q15 {
	cur := x
	dst, other := e.bufA, e.bufB
	for li := range e.m.Layers {
		n := LayerOutLen(e.m.Layers[li].Spec)
		cur = e.layerInto(li, cur, dst[:n])
		dst, other = other, dst
	}
	return cur
}

// Layer executes a single layer into a freshly allocated output
// (exported so runtimes can cross-check stage by stage).
func (e *Executor) Layer(li int, x []fixed.Q15) []fixed.Q15 {
	out := make([]fixed.Q15, LayerOutLen(e.m.Layers[li].Spec))
	return e.layerInto(li, x, out)
}

// layerInto executes layer li into dst (length = the layer's output
// length) and returns dst.
//
//ehdl:hotpath
func (e *Executor) layerInto(li int, x, dst []fixed.Q15) []fixed.Q15 {
	l := &e.m.Layers[li]
	switch l.Spec.Kind {
	case "conv":
		return ConvLayerInto(dst, l, x)
	case "pool":
		return PoolLayerInto(dst, l, x)
	case "relu":
		return ReLULayerInto(dst, l, x)
	case "flatten":
		copy(dst, x)
		return dst
	case "dense":
		return DenseLayerInto(dst, l, x)
	case "bcm":
		s := e.bcm[l.Spec.K]
		if e.timeDomain {
			return BCMLayerTimeInto(dst, l, x, s.XP)
		}
		return BCMLayerInto(dst, l, x, e.wspec[li], s)
	}
	panic(fmt.Sprintf("quant: unknown layer kind %q", l.Spec.Kind))
}

// Predict quantizes a float input, runs the model, and returns the
// argmax class. Steady-state calls perform no allocation.
//
//ehdl:hotpath
func (e *Executor) Predict(x []float64) int {
	q := e.qin
	if len(q) != len(x) { //ehdl:alloc input-length-mismatch fallback; steady-state inputs match the constructor-sized e.qin
		q = make([]fixed.Q15, len(x))
	}
	fixed.FromFloatsInto(q, x)
	logits := e.Forward(q)
	best := 0
	for i := 1; i < len(logits); i++ {
		if logits[i] > logits[best] {
			best = i
		}
	}
	return best
}

// ConvLayer is the quantized convolution: Q31 MAC over kept kernel
// positions, one combined shift, bias add.
func ConvLayer(l *QLayer, x []fixed.Q15) []fixed.Q15 {
	return ConvLayerInto(make([]fixed.Q15, LayerOutLen(l.Spec)), l, x)
}

// ConvLayerInto is ConvLayer writing into dst (the layer's output
// length); every element of dst is overwritten. Returns dst.
//
//ehdl:hotpath
func ConvLayerInto(dst []fixed.Q15, l *QLayer, x []fixed.Q15) []fixed.Q15 {
	s := l.Spec
	oh := s.InH - s.KH + 1
	ow := s.InW - s.KW + 1
	out := dst[:s.OutC*oh*ow]
	shift := l.AccShift()
	positions := s.InC * s.KH * s.KW
	for oc := 0; oc < s.OutC; oc++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var acc fixed.Q31
				if l.Kept != nil {
					for _, p := range l.Kept {
						ic := p / (s.KH * s.KW)
						rem := p % (s.KH * s.KW)
						ky := rem / s.KW
						kx := rem % s.KW
						acc = fixed.MAC(acc,
							l.W[oc*positions+p],
							x[ic*s.InH*s.InW+(oy+ky)*s.InW+ox+kx])
					}
				} else {
					for ic := 0; ic < s.InC; ic++ {
						for ky := 0; ky < s.KH; ky++ {
							wBase := (oc*positions + ic*s.KH*s.KW + ky*s.KW)
							xBase := ic*s.InH*s.InW + (oy+ky)*s.InW + ox
							for kx := 0; kx < s.KW; kx++ {
								acc = fixed.MAC(acc, l.W[wBase+kx], x[xBase+kx])
							}
						}
					}
				}
				v := fixed.NarrowQ31(acc, shift)
				out[(oc*oh+oy)*ow+ox] = fixed.SatAdd(v, l.B[oc])
			}
		}
	}
	return out
}

// PoolLayer is quantized max pooling (scale preserving).
func PoolLayer(l *QLayer, x []fixed.Q15) []fixed.Q15 {
	return PoolLayerInto(make([]fixed.Q15, LayerOutLen(l.Spec)), l, x)
}

// PoolLayerInto is PoolLayer writing into dst; every element of dst is
// overwritten. Returns dst.
//
//ehdl:hotpath
func PoolLayerInto(dst []fixed.Q15, l *QLayer, x []fixed.Q15) []fixed.Q15 {
	s := l.Spec
	oh := s.InH / s.PoolSize
	ow := s.InW / s.PoolSize
	out := dst[:s.InC*oh*ow]
	for c := 0; c < s.InC; c++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := fixed.MinusOne
				for dy := 0; dy < s.PoolSize; dy++ {
					for dx := 0; dx < s.PoolSize; dx++ {
						v := x[c*s.InH*s.InW+(oy*s.PoolSize+dy)*s.InW+ox*s.PoolSize+dx]
						if v > best {
							best = v
						}
					}
				}
				out[(c*oh+oy)*ow+ox] = best
			}
		}
	}
	return out
}

// ReLULayer is the quantized rectifier.
func ReLULayer(l *QLayer, x []fixed.Q15) []fixed.Q15 {
	return ReLULayerInto(make([]fixed.Q15, len(x)), l, x)
}

// ReLULayerInto is ReLULayer writing into dst; every element of dst is
// overwritten (negatives clamp to zero). Returns dst.
//
//ehdl:hotpath
func ReLULayerInto(dst []fixed.Q15, l *QLayer, x []fixed.Q15) []fixed.Q15 {
	out := dst[:len(x)]
	for i, v := range x {
		if v > 0 {
			out[i] = v
		} else {
			out[i] = 0
		}
	}
	return out
}

// DenseLayer is the quantized fully connected layer: Q31 row MACs,
// combined shift, bias add.
func DenseLayer(l *QLayer, x []fixed.Q15) []fixed.Q15 {
	return DenseLayerInto(make([]fixed.Q15, LayerOutLen(l.Spec)), l, x)
}

// DenseLayerInto is DenseLayer writing into dst; every element of dst
// is overwritten. Returns dst.
//
//ehdl:hotpath
func DenseLayerInto(dst []fixed.Q15, l *QLayer, x []fixed.Q15) []fixed.Q15 {
	s := l.Spec
	out := dst[:s.Out]
	shift := l.AccShift()
	for r := 0; r < s.Out; r++ {
		row := l.W[r*s.In : (r+1)*s.In]
		acc := fixed.Dot(row, x)
		v := fixed.NarrowQ31(acc, shift)
		out[r] = fixed.SatAdd(v, l.B[r])
	}
	return out
}

// BCMLayerTime is the time-domain BCM discipline: each output row is
// a Q31 MAC stream over the circulant generators (no FFT, no block
// accumulation), exactly what a runtime without Algorithm 1 support
// can do with the compressed storage. MAC order: blocks j ascending,
// columns c ascending within a block.
func BCMLayerTime(l *QLayer, x []fixed.Q15) []fixed.Q15 {
	return BCMLayerTimeInto(make([]fixed.Q15, LayerOutLen(l.Spec)), l, x, nil)
}

// BCMLayerTimeInto is BCMLayerTime writing into dst, staging the
// cosine-normalized input in xs (length ≥ len(x); allocated when nil).
// Every element of dst is overwritten. Returns dst.
//
//ehdl:hotpath
func BCMLayerTimeInto(dst []fixed.Q15, l *QLayer, x, xs []fixed.Q15) []fixed.Q15 {
	s := l.Spec
	k := s.K
	q := (s.In + k - 1) / k
	out := dst[:s.Out]
	shift := l.AccShift()
	xv := x
	if l.CosNorm {
		scale := InputScale(x, l.SIn)
		if xs == nil { //ehdl:alloc nil-scratch fallback for the standalone BCMLayerTime entry; Executor passes its constructor-sized scratch
			xs = make([]fixed.Q15, len(x))
		}
		xv = xs[:len(x)]
		fixed.ScaleVec(xv, x, scale)
	}
	for r := 0; r < s.Out; r++ {
		i := r / k
		rk := r % k
		var acc fixed.Q31
		for j := 0; j < q; j++ {
			w := l.W[(i*q+j)*k : (i*q+j+1)*k]
			lim := s.In - j*k
			if lim > k {
				lim = k
			}
			for c := 0; c < lim; c++ {
				acc = fixed.MAC(acc, w[(rk-c+k)%k], xv[j*k+c])
			}
		}
		v := fixed.NarrowQ31(acc, shift)
		out[r] = fixed.SatAdd(v, l.B[r])
	}
	return out
}

// BCMLayer is the quantized block-circulant FC layer: Algorithm 1 raw
// blocks accumulated in Q15, one combined shift, bias add. Padded
// positions beyond Spec.In/Spec.Out are zero-filled/dropped here,
// matching the on-device layout.
func BCMLayer(l *QLayer, x []fixed.Q15, scratch *circulant.Alg1Scratch) []fixed.Q15 {
	k := l.Spec.K
	q := (l.Spec.In + k - 1) / k
	s := &BCMScratch{
		Alg:  scratch,
		XP:   make([]fixed.Q15, q*k),
		Acc:  make([]fixed.Q15, k),
		Conv: make([]fixed.Q15, k),
	}
	return BCMLayerInto(make([]fixed.Q15, LayerOutLen(l.Spec)), l, x, nil, s)
}

// BCMLayerInto is BCMLayer writing into dst with caller-owned scratch.
// spec optionally supplies the precomputed FFT-domain weight spectra
// of the layer's blocks (block-row-major, from circulant.BlockSpectrum);
// nil transforms the weights live. Both paths produce identical bits —
// the spectrum of a frozen weight block never changes, so precomputing
// it merely halves the FFT work. Every element of dst is overwritten.
// Returns dst.
//
//ehdl:hotpath
func BCMLayerInto(dst []fixed.Q15, l *QLayer, x []fixed.Q15, spec []fftfixed.Complex, s *BCMScratch) []fixed.Q15 {
	sp := l.Spec
	k := sp.K
	p := (sp.Out + k - 1) / k
	q := (sp.In + k - 1) / k

	xp := s.XP[:q*k]
	copy(xp, x)
	for i := len(x); i < len(xp); i++ {
		xp[i] = 0
	}
	if l.CosNorm {
		scale := InputScale(x, l.SIn)
		fixed.ScaleVec(xp[:len(x)], xp[:len(x)], scale)
	}
	conv := s.Conv[:k]
	acc := s.Acc[:k]
	out := dst[:sp.Out]
	shift := l.BCMShift()

	for i := 0; i < p; i++ {
		for d := range acc {
			acc[d] = 0
		}
		for j := 0; j < q; j++ {
			if spec != nil {
				circulant.MulBlockRawSpec(conv, spec[(i*q+j)*k:(i*q+j+1)*k], xp[j*k:(j+1)*k], uint(l.BShift), s.Alg)
			} else {
				w := l.W[(i*q+j)*k : (i*q+j+1)*k]
				circulant.MulBlockRaw(conv, w, xp[j*k:(j+1)*k], uint(l.BShift), s.Alg)
			}
			fixed.AddVec(acc, acc, conv)
		}
		for d := 0; d < k; d++ {
			r := i*k + d
			if r >= sp.Out {
				break
			}
			v := fixed.ShiftQ15(acc[d], shift)
			out[r] = fixed.SatAdd(v, l.B[r])
		}
	}
	return out
}
