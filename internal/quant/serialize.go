package quant

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// Model artifacts serialize with encoding/gob so the CLI tools can
// train once (radtrain) and deploy many times (aceinfer, ehsim).

// Save writes the model to w.
func (m *Model) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(m); err != nil {
		return fmt.Errorf("quant: encode model: %w", err)
	}
	return nil
}

// Load reads a model from r.
func Load(r io.Reader) (*Model, error) {
	var m Model
	if err := gob.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("quant: decode model: %w", err)
	}
	return &m, nil
}

// SaveFile writes the model to path.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a model from path.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
