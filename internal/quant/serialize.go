package quant

import (
	"encoding/gob"
	"fmt"
	"io"

	"ehdl/internal/artifact"
)

// Model artifacts serialize through internal/artifact's checksummed,
// versioned container so the CLI tools can train once (radtrain) and
// deploy many times (aceinfer, ehsim, ehfleet). Save/Load remain the
// raw gob stream codec (the container's payload format); SaveFile and
// LoadFile are retained as deprecated wrappers over the container.

// Save writes the model's raw gob payload to w (no container framing:
// no magic, version or checksum — prefer artifact.WriteFile via
// SaveFile/cli.SaveModel for anything that touches a file system).
func (m *Model) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(m); err != nil {
		return fmt.Errorf("quant: encode model: %w", err)
	}
	return nil
}

// Load reads a raw gob model payload from r (see Save).
func Load(r io.Reader) (*Model, error) {
	var m Model
	if err := gob.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("quant: decode model: %w", err)
	}
	return &m, nil
}

// SaveFile writes the model to path inside the checksummed artifact
// container, atomically (temp file + rename — the seed's double
// f.Close and torn-write window are gone).
//
// Deprecated: new code should use internal/cli.SaveModel (CLIs) or
// artifact.WriteFile(path, artifact.KindModel, m) directly.
func (m *Model) SaveFile(path string) error {
	return artifact.WriteFile(path, artifact.KindModel, m)
}

// LoadFile reads a model artifact from path, verifying the container
// (magic, version, checksum) and the decoded model's structural
// consistency before returning it.
//
// Deprecated: new code should use internal/cli.LoadModel (CLIs) or
// artifact.ReadFile(path, artifact.KindModel, &m) plus Validate.
func LoadFile(path string) (*Model, error) {
	var m Model
	if err := artifact.ReadFile(path, artifact.KindModel, &m); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("model %s: %w", path, err)
	}
	return &m, nil
}

// Validate checks the structural consistency a deployable model must
// have: non-degenerate metadata, known layer kinds, weight/bias
// lengths matching every layer spec, and a coherent activation chain
// from InShape to NumClasses. It is the defense against an artifact
// that decodes "successfully" into zeroed or half-filled fields after
// a schema drift.
func (m *Model) Validate() error {
	if m == nil {
		return fmt.Errorf("quant: nil model")
	}
	if m.Name == "" {
		return fmt.Errorf("quant: model has no name (zeroed artifact?)")
	}
	if m.InShape[0] <= 0 || m.InShape[1] <= 0 || m.InShape[2] <= 0 {
		return fmt.Errorf("quant: model %q has invalid input shape %v", m.Name, m.InShape)
	}
	if m.NumClasses <= 0 {
		return fmt.Errorf("quant: model %q has %d classes", m.Name, m.NumClasses)
	}
	if len(m.Layers) == 0 {
		return fmt.Errorf("quant: model %q has no layers", m.Name)
	}
	prev := m.InShape[0] * m.InShape[1] * m.InShape[2]
	for li := range m.Layers {
		l := &m.Layers[li]
		if err := validateLayer(l, prev); err != nil {
			return fmt.Errorf("quant: model %q layer %d (%s): %w", m.Name, li, l.Spec.Kind, err)
		}
		prev = LayerOutLen(l.Spec)
	}
	if prev != m.NumClasses {
		return fmt.Errorf("quant: model %q ends with %d outputs for %d classes", m.Name, prev, m.NumClasses)
	}
	return nil
}

// validateLayer checks one quantized layer against its spec and the
// activation length feeding it.
func validateLayer(l *QLayer, inLen int) error {
	s := l.Spec
	switch s.Kind {
	case "conv":
		if s.InC <= 0 || s.InH <= 0 || s.InW <= 0 || s.OutC <= 0 ||
			s.KH <= 0 || s.KW <= 0 || s.KH > s.InH || s.KW > s.InW {
			return fmt.Errorf("bad geometry %+v", s)
		}
		if got := s.InC * s.InH * s.InW; got != inLen {
			return fmt.Errorf("expects %d inputs, previous layer provides %d", got, inLen)
		}
		positions := s.InC * s.KH * s.KW
		if want := s.OutC * positions; len(l.W) != want {
			return fmt.Errorf("%d weights, want %d", len(l.W), want)
		}
		if len(l.B) != s.OutC {
			return fmt.Errorf("%d biases, want %d", len(l.B), s.OutC)
		}
		for _, p := range l.Kept {
			if p < 0 || p >= positions {
				return fmt.Errorf("kept position %d outside kernel grid of %d", p, positions)
			}
		}
	case "dense":
		if s.In <= 0 || s.Out <= 0 {
			return fmt.Errorf("bad shape %dx%d", s.In, s.Out)
		}
		if s.In != inLen {
			return fmt.Errorf("expects %d inputs, previous layer provides %d", s.In, inLen)
		}
		if len(l.W) != s.In*s.Out {
			return fmt.Errorf("%d weights, want %d", len(l.W), s.In*s.Out)
		}
		if len(l.B) != s.Out {
			return fmt.Errorf("%d biases, want %d", len(l.B), s.Out)
		}
	case "bcm":
		if s.In <= 0 || s.Out <= 0 {
			return fmt.Errorf("bad shape %dx%d", s.In, s.Out)
		}
		if s.K <= 0 || s.K&(s.K-1) != 0 {
			return fmt.Errorf("block size %d is not a positive power of two", s.K)
		}
		if s.In != inLen {
			return fmt.Errorf("expects %d inputs, previous layer provides %d", s.In, inLen)
		}
		p := (s.Out + s.K - 1) / s.K
		q := (s.In + s.K - 1) / s.K
		if want := p * q * s.K; len(l.W) != want {
			return fmt.Errorf("%d block weights, want %d (P=%d Q=%d K=%d)", len(l.W), want, p, q, s.K)
		}
		if len(l.B) != s.Out {
			return fmt.Errorf("%d biases, want %d", len(l.B), s.Out)
		}
	case "pool":
		if s.PoolSize <= 0 || s.InC <= 0 || s.InH <= 0 || s.InW <= 0 ||
			s.InH%s.PoolSize != 0 || s.InW%s.PoolSize != 0 {
			return fmt.Errorf("bad pool geometry %+v", s)
		}
		if got := s.InC * s.InH * s.InW; got != inLen {
			return fmt.Errorf("expects %d inputs, previous layer provides %d", got, inLen)
		}
		if len(l.W) != 0 || len(l.B) != 0 {
			return fmt.Errorf("stateless layer carries %d weights / %d biases", len(l.W), len(l.B))
		}
	case "relu", "flatten":
		if s.N <= 0 {
			return fmt.Errorf("bad length %d", s.N)
		}
		if s.N != inLen {
			return fmt.Errorf("expects %d inputs, previous layer provides %d", s.N, inLen)
		}
		if len(l.W) != 0 || len(l.B) != 0 {
			return fmt.Errorf("stateless layer carries %d weights / %d biases", len(l.W), len(l.B))
		}
	default:
		return fmt.Errorf("unknown kind %q", s.Kind)
	}
	return nil
}
