package core

import (
	"math/rand"
	"testing"

	"ehdl/internal/device"
	"ehdl/internal/exec"
	"ehdl/internal/fixed"
	"ehdl/internal/nn"
	"ehdl/internal/quant"
)

func tinyModel(t *testing.T) *quant.Model {
	t.Helper()
	arch := &nn.Arch{
		Name: "tiny", InShape: [3]int{1, 1, 16}, NumClasses: 4,
		Specs: []nn.LayerSpec{
			{Kind: "bcm", In: 16, Out: 8, K: 8},
			{Kind: "relu", N: 8},
			{Kind: "dense", In: 8, Out: 4},
		},
	}
	rng := rand.New(rand.NewSource(1))
	net := arch.Build(rng)
	calib := make([][]float64, 3)
	for i := range calib {
		x := make([]float64, 16)
		for j := range x {
			x[j] = rng.Float64()*2 - 1
		}
		calib[i] = x
	}
	m, err := quant.Quantize(net, arch, calib)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewEngineAllKinds(t *testing.T) {
	m := tinyModel(t)
	in := make([]fixed.Q15, 16)
	for _, kind := range AllEngines() {
		d := device.New(device.DefaultCosts(), device.Continuous{})
		store, err := exec.NewModelStore(d, m)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewEngine(kind, d, store, in, nil)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if eng.EngineName() != string(kind) {
			t.Errorf("engine %q reports name %q", kind, eng.EngineName())
		}
	}
}

func TestNewEngineUnknownKind(t *testing.T) {
	m := tinyModel(t)
	d := device.New(device.DefaultCosts(), device.Continuous{})
	store, err := exec.NewModelStore(d, m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine("mystery", d, store, make([]fixed.Q15, 16), nil); err == nil {
		t.Error("unknown engine accepted")
	}
}

func TestInferContinuousSmoke(t *testing.T) {
	m := tinyModel(t)
	in := make([]fixed.Q15, 16)
	for i := range in {
		in[i] = fixed.FromFloat(0.1 * float64(i%5))
	}
	for _, kind := range AllEngines() {
		rep, err := InferContinuous(kind, m, in)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if rep.Predicted < 0 || rep.Predicted >= 4 {
			t.Errorf("%s: predicted %d", kind, rep.Predicted)
		}
		if rep.Stats.TotalEnergynJ <= 0 {
			t.Errorf("%s: no energy accounted", kind)
		}
	}
}

func TestInferIntermittentSmoke(t *testing.T) {
	m := tinyModel(t)
	in := make([]fixed.Q15, 16)
	rep, err := InferIntermittent(EngineACEFLEX, m, in, PaperHarvestSetup())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Intermittent == nil {
		t.Fatal("no intermittent result")
	}
	if !rep.Intermittent.Completed {
		t.Errorf("tiny model should complete: %+v", rep.Intermittent)
	}
}

func TestPaperHarvestSetup(t *testing.T) {
	s := PaperHarvestSetup()
	if s.Config.CapacitanceF != 100e-6 {
		t.Errorf("capacitance %v", s.Config.CapacitanceF)
	}
	if s.Config.VOn != 3.3 || s.Config.VOff != 1.8 {
		t.Errorf("thresholds %+v", s.Config)
	}
}

func TestAllEnginesOrder(t *testing.T) {
	kinds := AllEngines()
	if len(kinds) != 5 || kinds[0] != EngineBase || kinds[4] != EngineACEFLEX {
		t.Errorf("AllEngines = %v", kinds)
	}
}
