// Package core ties the paper's three contributions together: RAD
// produces a compressed fixed-point model, ACE (or a baseline runtime)
// executes it on the simulated device, and FLEX keeps it correct
// across power failures. The root ehdl package re-exports this API.
package core

import (
	"fmt"

	"ehdl/internal/ace"
	"ehdl/internal/baseline"
	"ehdl/internal/device"
	"ehdl/internal/exec"
	"ehdl/internal/fixed"
	"ehdl/internal/flex"
	"ehdl/internal/harvest"
	"ehdl/internal/intermittent"
	"ehdl/internal/quant"
	"ehdl/internal/sonic"
	"ehdl/internal/tails"
)

// EngineKind selects a runtime implementation.
type EngineKind string

// The four runtimes of the paper's evaluation.
const (
	EngineBase    EngineKind = "base"
	EngineSONIC   EngineKind = "sonic"
	EngineTAILS   EngineKind = "tails"
	EngineACE     EngineKind = "ace"
	EngineACEFLEX EngineKind = "ace+flex"
)

// AllEngines lists every runtime in presentation order.
func AllEngines() []EngineKind {
	return []EngineKind{EngineBase, EngineSONIC, EngineTAILS, EngineACE, EngineACEFLEX}
}

// VoltageOblivious reports whether the engine's operation stream is
// independent of the supply rail: base, SONIC, TAILS and plain ACE
// never sample the capacitor voltage, so up to the moment of a
// brown-out they execute the same ops in the same order under any
// harvest waveform. ACE+FLEX is excluded — FLEX's checkpoint policy
// reads the rail, so even the compute stream depends on the profile.
// Fleet memoization uses this as the precondition for serving
// compute-only (Tier-2) cache hits.
func VoltageOblivious(kind EngineKind) bool {
	switch kind {
	case EngineBase, EngineSONIC, EngineTAILS, EngineACE:
		return true
	}
	return false
}

// NewEngine constructs the chosen runtime over a flashed model store.
// fxCfg applies only to EngineACEFLEX (nil = flex.DefaultConfig).
func NewEngine(kind EngineKind, d *device.Device, store *exec.ModelStore, input []fixed.Q15, fxCfg *flex.Config) (exec.Engine, error) {
	switch kind {
	case EngineBase:
		return baseline.New(d, store, input)
	case EngineSONIC:
		return sonic.New(d, store, input)
	case EngineTAILS:
		return tails.New(d, store, input)
	case EngineACE:
		return ace.New(d, store, input, nil)
	case EngineACEFLEX:
		cfg := flex.DefaultConfig()
		if fxCfg != nil {
			cfg = *fxCfg
		}
		maxK := 0
		for _, l := range store.Model.Layers {
			if l.Spec.Kind == "bcm" && l.Spec.K > maxK {
				maxK = l.Spec.K
			}
		}
		fx, err := flex.NewController(d, maxK, cfg)
		if err != nil {
			return nil, err
		}
		return ace.New(d, store, input, fx)
	}
	return nil, fmt.Errorf("core: unknown engine %q", kind)
}

// InferContinuous measures one inference on bench power.
func InferContinuous(kind EngineKind, m *quant.Model, input []fixed.Q15) (exec.Report, error) {
	d := device.New(device.DefaultCosts(), device.Continuous{})
	store, err := exec.NewModelStore(d, m)
	if err != nil {
		return exec.Report{}, err
	}
	eng, err := NewEngine(kind, d, store, input, nil)
	if err != nil {
		return exec.Report{}, err
	}
	return exec.RunContinuous(d, eng)
}

// HarvestSetup describes an energy-harvesting experiment.
type HarvestSetup struct {
	Config  harvest.Config
	Profile harvest.Profile
	// FlexConfig overrides FLEX's policy (nil = default).
	FlexConfig *flex.Config
	// Runner overrides runner limits (nil = defaults).
	Runner *intermittent.Runner
}

// PaperHarvestSetup returns the paper's experimental configuration: a
// 100 µF capacitor charged by a square-wave source (the SIGLENT
// function generator at 5 mW peak, 50% duty, 100 ms period).
func PaperHarvestSetup() HarvestSetup {
	return HarvestSetup{
		Config:  harvest.PaperConfig(),
		Profile: harvest.SquareProfile{PeakWatts: 5e-3, Period: 0.1, Duty: 0.5},
	}
}

// InferIntermittent measures one inference under harvested power.
// Off-time between power failures is solved by harvest's analytic
// engine (closed form per profile segment, no integration horizon);
// malformed profiles — zero duty cycle, non-positive period, negative
// power — are rejected here by the capacitor's profile validation
// instead of spinning the simulation. The returned report's
// Intermittent result carries the runner's boot ledger and typed
// Diagnosis: every Fig. 7(b) "X" names the verdict that produced it
// (frozen progress, no persistent writes, boot limit, ...), and a
// broken engine whose progress regresses yields a DNF row instead of
// a panic.
func InferIntermittent(kind EngineKind, m *quant.Model, input []fixed.Q15, setup HarvestSetup) (exec.Report, error) {
	supply, err := harvest.NewCapacitor(setup.Config, setup.Profile)
	if err != nil {
		return exec.Report{}, err
	}
	d := device.New(device.DefaultCosts(), supply)
	store, err := exec.NewModelStore(d, m)
	if err != nil {
		return exec.Report{}, err
	}
	eng, err := NewEngine(kind, d, store, input, setup.FlexConfig)
	if err != nil {
		return exec.Report{}, err
	}
	runner := setup.Runner
	if runner == nil {
		runner = &intermittent.Runner{}
	}
	return exec.RunIntermittent(d, eng, runner), nil
}
