// Package mat provides the small dense float64 vector and matrix
// helpers the offline RAD training pipeline needs. It is deliberately
// minimal — training happens on the host, so clarity beats raw speed.
package mat

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// New returns a zeroed Rows×Cols matrix.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewRandom returns a Rows×Cols matrix with entries drawn uniformly
// from [-limit, limit] using rng (Xavier-style init when limit is
// sqrt(6/(in+out))).
func NewRandom(rows, cols int, limit float64, rng *rand.Rand) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * limit
	}
	return m
}

// At returns the element at (r, c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set stores v at (r, c).
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Row returns a view (not a copy) of row r.
func (m *Matrix) Row(r int) []float64 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec computes y = M·x. len(x) must equal Cols; the result has
// length Rows.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("mat: MulVec got %d elements, want %d", len(x), m.Cols))
	}
	y := make([]float64, m.Rows)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		var sum float64
		for c, xv := range x {
			sum += row[c] * xv
		}
		y[r] = sum
	}
	return y
}

// TMulVec computes y = Mᵀ·x. len(x) must equal Rows; the result has
// length Cols. Used by backprop to push gradients through a layer.
func (m *Matrix) TMulVec(x []float64) []float64 {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("mat: TMulVec got %d elements, want %d", len(x), m.Rows))
	}
	y := make([]float64, m.Cols)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		xv := x[r]
		for c := range row {
			y[c] += row[c] * xv
		}
	}
	return y
}

// AddScaled performs m += a*other element-wise.
func (m *Matrix) AddScaled(other *Matrix, a float64) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic("mat: AddScaled shape mismatch")
	}
	for i := range m.Data {
		m.Data[i] += a * other.Data[i]
	}
}

// Scale multiplies every element by a.
func (m *Matrix) Scale(a float64) {
	for i := range m.Data {
		m.Data[i] *= a
	}
}

// Zero resets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// FrobeniusNorm returns sqrt(sum of squared entries).
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of equal-length slices a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: Dot length mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// AddScaledVec performs dst += a*src element-wise.
func AddScaledVec(dst, src []float64, a float64) {
	if len(dst) != len(src) {
		panic("mat: AddScaledVec length mismatch")
	}
	for i := range src {
		dst[i] += a * src[i]
	}
}

// Argmax returns the index of the largest element of v (first one on
// ties); -1 for an empty slice.
func Argmax(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// Softmax returns the softmax of v, computed with the max-subtraction
// trick for numerical stability.
func Softmax(v []float64) []float64 {
	out := make([]float64, len(v))
	if len(v) == 0 {
		return out
	}
	m := v[Argmax(v)]
	var sum float64
	for i, x := range v {
		e := math.Exp(x - m)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}
