package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnBadShape(t *testing.T) {
	for _, shape := range [][2]int{{0, 1}, {1, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", shape)
				}
			}()
			New(shape[0], shape[1])
		}()
	}
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7)
	if got := m.At(1, 2); got != 7 {
		t.Errorf("At(1,2) = %v", got)
	}
	row := m.Row(1)
	if row[2] != 7 {
		t.Errorf("Row(1)[2] = %v", row[2])
	}
	row[0] = 3 // view semantics
	if m.At(1, 0) != 3 {
		t.Error("Row must be a view, not a copy")
	}
}

func TestMulVec(t *testing.T) {
	m := New(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	y := m.MulVec([]float64{1, 0, -1})
	if y[0] != -2 || y[1] != -2 {
		t.Errorf("MulVec = %v", y)
	}
}

func TestTMulVecIsTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewRandom(4, 3, 1, rng)
	x := []float64{0.5, -1, 2, 0.25}
	got := m.TMulVec(x)
	// Build transpose explicitly and compare.
	mt := New(3, 4)
	for r := 0; r < 4; r++ {
		for c := 0; c < 3; c++ {
			mt.Set(c, r, m.At(r, c))
		}
	}
	want := mt.MulVec(x)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("TMulVec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMulVecPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(2, 3).MulVec([]float64{1, 2})
}

func TestCloneIsDeep(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Error("Clone shares storage")
	}
}

func TestAddScaledAndScaleAndZero(t *testing.T) {
	m := New(1, 3)
	copy(m.Data, []float64{1, 2, 3})
	o := New(1, 3)
	copy(o.Data, []float64{1, 1, 1})
	m.AddScaled(o, 2)
	if m.Data[0] != 3 || m.Data[1] != 4 || m.Data[2] != 5 {
		t.Errorf("AddScaled = %v", m.Data)
	}
	m.Scale(0.5)
	if m.Data[0] != 1.5 {
		t.Errorf("Scale = %v", m.Data)
	}
	m.Zero()
	for _, v := range m.Data {
		if v != 0 {
			t.Errorf("Zero left %v", m.Data)
		}
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := New(1, 2)
	copy(m.Data, []float64{3, 4})
	if got := m.FrobeniusNorm(); math.Abs(got-5) > 1e-12 {
		t.Errorf("FrobeniusNorm = %v, want 5", got)
	}
}

func TestDotNorm(t *testing.T) {
	if got := Dot([]float64{1, 2}, []float64{3, 4}); got != 11 {
		t.Errorf("Dot = %v", got)
	}
	if got := Norm2([]float64{3, 4}); math.Abs(got-5) > 1e-12 {
		t.Errorf("Norm2 = %v", got)
	}
}

func TestAddScaledVec(t *testing.T) {
	dst := []float64{1, 1}
	AddScaledVec(dst, []float64{2, 3}, 2)
	if dst[0] != 5 || dst[1] != 7 {
		t.Errorf("AddScaledVec = %v", dst)
	}
}

func TestArgmax(t *testing.T) {
	if got := Argmax([]float64{1, 5, 3}); got != 1 {
		t.Errorf("Argmax = %d", got)
	}
	if got := Argmax([]float64{2, 2}); got != 0 {
		t.Errorf("Argmax tie = %d, want first", got)
	}
	if got := Argmax(nil); got != -1 {
		t.Errorf("Argmax(nil) = %d", got)
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	err := quick.Check(func(a, b, c float64) bool {
		// Constrain magnitudes so Exp stays finite.
		clip := func(x float64) float64 { return math.Mod(x, 50) }
		s := Softmax([]float64{clip(a), clip(b), clip(c)})
		var sum float64
		for _, v := range s {
			if v < 0 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestSoftmaxOrderPreserving(t *testing.T) {
	s := Softmax([]float64{1, 3, 2})
	if !(s[1] > s[2] && s[2] > s[0]) {
		t.Errorf("Softmax not order preserving: %v", s)
	}
}

func TestSoftmaxLargeValuesStable(t *testing.T) {
	s := Softmax([]float64{1000, 1001})
	if math.IsNaN(s[0]) || math.IsNaN(s[1]) {
		t.Fatalf("Softmax overflowed: %v", s)
	}
	if math.Abs(s[0]+s[1]-1) > 1e-9 {
		t.Errorf("Softmax sum = %v", s[0]+s[1])
	}
}

func TestNewRandomWithinLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewRandom(10, 10, 0.5, rng)
	for _, v := range m.Data {
		if v < -0.5 || v > 0.5 {
			t.Fatalf("value %v outside limit", v)
		}
	}
}
