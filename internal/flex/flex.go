// Package flex implements FLEX, the paper's on-demand robust
// checkpointing scheme (§III-C). Two mechanisms cooperate:
//
//   - A voltage monitor predicts power failures: between operations the
//     runtime samples the rail, and when it sinks below VWarn — i.e.
//     the capacitor is inside its last few tens of microjoules — FLEX
//     commits the latest intermediate state to FRAM. Under continuous
//     power the monitor never trips and FLEX costs almost nothing,
//     which is how ACE+FLEX stays within 1–2% of plain ACE (Fig. 7).
//
//   - For FFT-based BCM layers, the committed state is a control word
//     holding {layer, block row i, block column j, state bits b0–b2}
//     plus the double-buffered accumulator and, when mid-pipeline, the
//     stage intermediate (Fig. 6). On reboot the kernel resumes from
//     the interrupted stage instead of rolling back to the block's
//     first DMA — the progress TAILS-style loop-index checkpointing
//     would lose.
//
// For all other layers FLEX falls back to loop-index checkpointing:
// the control word records the completed element index; outputs are
// already in FRAM, so re-execution from that index is idempotent.
package flex

import (
	"fmt"

	"ehdl/internal/device"
	"ehdl/internal/fftfixed"
	"ehdl/internal/fixed"
)

// States stored in the control word's b0-b2 bits.
const (
	// StateElement marks an element boundary in a non-BCM layer
	// (loop-index checkpointing).
	StateElement uint8 = 0
	// StateBlockStart marks BCM block (i, j) not yet started; the
	// committed accumulator holds blocks [0, j).
	StateBlockStart uint8 = 1
	// StatePostMPY marks the element-wise multiply of block (i, j)
	// done; the committed intermediate is the product spectrum y′.
	StatePostMPY uint8 = 2
	// StatePostIFFT marks the inverse transform of block (i, j) done;
	// the committed intermediate is the real convolution vector y.
	StatePostIFFT uint8 = 3
)

// Config tunes the on-demand policy.
type Config struct {
	// VWarn is the rail voltage below which FLEX checkpoints. The
	// default 2.0 V leaves ~38 µJ of usable energy above the 1.8 V
	// brown-out on the paper's 100 µF capacitor — comfortably more
	// than the largest charged operation plus one checkpoint.
	VWarn float64
	// SampleStride is how many boundary crossings pass between
	// voltage samples (amortizes the ADC cost).
	SampleStride int
}

// DefaultConfig returns the policy used in the paper reproduction.
// With a 100 µF capacitor, VWarn 2.1 V leaves ½C(2.1²−1.8²) ≈ 58 µJ
// above brown-out; the worst unprotected window — four boundary
// crossings (heaviest: a 256-point FFT or a 1 K-word DMA, ~7 µJ each)
// plus one checkpoint (~12 µJ) — stays safely inside it.
func DefaultConfig() Config {
	return Config{VWarn: 2.1, SampleStride: 4}
}

// Snapshot is one resumable position with its live state.
type Snapshot struct {
	Layer int
	State uint8
	// Elem is the completed-element cursor for StateElement layers.
	Elem int
	// I, J locate the BCM block for the BCM states.
	I, J int
	// Pos is the engine's linear progress value (monotonic).
	Pos uint64

	// Acc is the BCM block-row accumulator (nil when not applicable).
	Acc []fixed.Q15
	// Inter is the stage intermediate for StatePostMPY (product
	// spectrum) or StatePostIFFT (real vector in the low half).
	Inter []fftfixed.Complex
}

// hdrWords is the checkpoint header size: four words of packed
// control state plus one flag word saying which payload regions are
// present.
const hdrWords = 5

// Payload-presence flags in the header's fifth word.
const (
	flagAcc   = 1 << 0
	flagInter = 1 << 1
)

// Controller owns FLEX's nonvolatile checkpoint state.
//
// All checkpoint state — control word, accumulator, stage intermediate
// — lives in ONE double-buffered commit, because a checkpoint torn
// across separate nonvolatile objects is a correctness trap: an outage
// between "new accumulator written" and "new control word written"
// would resume the OLD position with the NEW accumulator and silently
// double-count a block. The single selector flip makes the whole
// snapshot visible at once or not at all.
type Controller struct {
	cfg  Config
	maxK int

	// Nonvolatile: [ctrl (4 words) | flags (1) | acc (maxK) |
	// inter (2·maxK re/im)]. Commits write a prefix; the flags word
	// says how much is meaningful.
	state *device.NVDoubleQ15

	// Volatile caches, re-derived in Restore (or implicitly zero on a
	// fresh run). countdown is just a sampling phase; lastPos
	// suppresses duplicate commits of the same position.
	countdown  int
	lastPos    uint64
	havCommits bool
}

// NewController reserves FLEX's FRAM state for BCM blocks up to maxK.
// maxK of zero is allowed for models without BCM layers.
func NewController(d *device.Device, maxK int, cfg Config) (*Controller, error) {
	if cfg.VWarn <= 0 || cfg.SampleStride <= 0 {
		return nil, fmt.Errorf("flex: invalid config %+v", cfg)
	}
	c := &Controller{cfg: cfg, maxK: maxK}
	var err error
	c.state, err = device.NewNVDoubleQ15(d, hdrWords+3*maxK)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Control word layout:
// bit 63: valid; bits 48..55: layer; bits 32..47: J;
// bits 4..31: Elem or I; bits 0..3: state.
func packCtrl(s Snapshot) uint64 {
	idx := uint64(s.Elem)
	if s.State != StateElement {
		idx = uint64(s.I)
	}
	return 1<<63 | uint64(s.Layer)<<48 | uint64(uint16(s.J))<<32 |
		(idx&0xFFF_FFFF)<<4 | uint64(s.State&0xF)
}

func unpackCtrl(w uint64) (s Snapshot, valid bool) {
	if w>>63 == 0 {
		return Snapshot{}, false
	}
	s.Layer = int(w >> 48 & 0xFF)
	s.J = int(uint16(w >> 32))
	s.State = uint8(w & 0xF)
	idx := int(w >> 4 & 0xFFF_FFFF)
	if s.State == StateElement {
		s.Elem = idx
	} else {
		s.I = idx
	}
	return s, true
}

// Position returns the last committed linear progress (uncharged;
// used by the intermittent runner's stagnation detector).
func (c *Controller) Position() uint64 {
	if c.state.PeekSeq() == 0 {
		return 0
	}
	return c.lastPos
}

// Boundary is called by the engine at every resumable position with a
// closure producing the snapshot (built lazily: most boundaries do not
// checkpoint). It samples the voltage on the configured stride and
// commits when the rail is low and the position is new. The charge for
// the countdown bookkeeping is one CPU op.
func (c *Controller) Boundary(d *device.Device, pos uint64, snap func() Snapshot) {
	d.CPUOps(1)
	c.countdown--
	if c.countdown > 0 {
		return
	}
	c.countdown = c.cfg.SampleStride
	if d.MonitorSample() >= c.cfg.VWarn {
		return
	}
	if c.havCommits && pos == c.lastPos {
		return // this position is already safe
	}
	c.Commit(d, snap())
}

// Commit persists a snapshot unconditionally as one atomic
// double-buffered prefix write: an outage anywhere inside leaves the
// previous checkpoint fully intact.
func (c *Controller) Commit(d *device.Device, s Snapshot) {
	n := hdrWords
	if s.Acc != nil {
		n += c.maxK
	}
	if s.Inter != nil {
		n = hdrWords + 3*c.maxK
	}
	buf := make([]fixed.Q15, n)
	w := packCtrl(s)
	buf[0] = fixed.Q15(uint16(w))
	buf[1] = fixed.Q15(uint16(w >> 16))
	buf[2] = fixed.Q15(uint16(w >> 32))
	buf[3] = fixed.Q15(uint16(w >> 48))
	flags := 0
	if s.Acc != nil {
		flags |= flagAcc
		copy(buf[hdrWords:hdrWords+c.maxK], s.Acc)
	}
	if s.Inter != nil {
		flags |= flagInter
		packComplex(buf[hdrWords+c.maxK:hdrWords+3*c.maxK], s.Inter)
	}
	buf[4] = fixed.Q15(uint16(flags))
	c.state.Commit(d, device.CatCheckpoint, buf)
	c.lastPos = s.Pos
	c.havCommits = true
}

// Restore reads the committed checkpoint header after a reboot. It
// returns ok=false on a fresh device (start from the beginning). The
// engine passes the snapshot's Pos back via pos so duplicate-commit
// suppression keeps working across reboots.
func (c *Controller) Restore(d *device.Device, pos func(Snapshot) uint64) (Snapshot, bool) {
	c.countdown = c.cfg.SampleStride
	if c.state.PeekSeq() == 0 {
		return Snapshot{}, false
	}
	hdr := make([]fixed.Q15, hdrWords)
	c.state.Load(d, device.CatRestore, hdr)
	w := uint64(uint16(hdr[0])) | uint64(uint16(hdr[1]))<<16 |
		uint64(uint16(hdr[2]))<<32 | uint64(uint16(hdr[3]))<<48
	s, ok := unpackCtrl(w)
	if !ok {
		return Snapshot{}, false
	}
	c.lastPos = pos(s)
	c.havCommits = true
	s.Pos = c.lastPos
	return s, true
}

// LoadAcc reloads the committed accumulator into dst (length ≤ maxK).
func (c *Controller) LoadAcc(d *device.Device, dst []fixed.Q15) {
	c.state.LoadAt(d, device.CatRestore, hdrWords, dst)
}

// LoadInter reloads the committed stage intermediate into dst
// (length ≤ maxK complex values).
func (c *Controller) LoadInter(d *device.Device, dst []fftfixed.Complex) {
	buf := make([]fixed.Q15, 2*len(dst))
	c.state.LoadAt(d, device.CatRestore, hdrWords+c.maxK, buf)
	unpackComplex(dst, buf)
}

func packComplex(dst []fixed.Q15, src []fftfixed.Complex) {
	for i, cv := range src {
		dst[2*i] = cv.Re
		dst[2*i+1] = cv.Im
	}
}

func unpackComplex(dst []fftfixed.Complex, src []fixed.Q15) {
	for i := range dst {
		dst[i] = fftfixed.Complex{Re: src[2*i], Im: src[2*i+1]}
	}
}
