package flex

import (
	"testing"
	"testing/quick"

	"ehdl/internal/device"
	"ehdl/internal/fftfixed"
	"ehdl/internal/fixed"
)

func newDev() *device.Device {
	return device.New(device.DefaultCosts(), device.Continuous{})
}

func TestPackUnpackCtrlRoundTrip(t *testing.T) {
	err := quick.Check(func(layer uint8, i uint16, j uint16, state uint8) bool {
		s := Snapshot{
			Layer: int(layer),
			State: state % 4,
			I:     int(i),
			J:     int(j),
		}
		if s.State == StateElement {
			s.Elem = int(i)
			s.I = 0
			s.J = 0 // element snapshots carry no block coords
		}
		got, ok := unpackCtrl(packCtrl(s))
		if !ok {
			return false
		}
		if s.State == StateElement {
			return got.Layer == s.Layer && got.State == s.State && got.Elem == s.Elem
		}
		return got.Layer == s.Layer && got.State == s.State && got.I == s.I && got.J == s.J
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestUnpackInvalidCtrl(t *testing.T) {
	if _, ok := unpackCtrl(0); ok {
		t.Error("zero control word must be invalid")
	}
}

func TestConfigValidation(t *testing.T) {
	d := newDev()
	if _, err := NewController(d, 8, Config{VWarn: 0, SampleStride: 4}); err == nil {
		t.Error("VWarn 0 accepted")
	}
	if _, err := NewController(d, 8, Config{VWarn: 2, SampleStride: 0}); err == nil {
		t.Error("SampleStride 0 accepted")
	}
}

func TestCommitRestoreElementSnapshot(t *testing.T) {
	d := newDev()
	c, err := NewController(d, 8, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.Commit(d, Snapshot{Layer: 3, State: StateElement, Elem: 412, Pos: 99})
	s, ok := c.Restore(d, func(s Snapshot) uint64 { return 99 })
	if !ok {
		t.Fatal("restore failed after commit")
	}
	if s.Layer != 3 || s.State != StateElement || s.Elem != 412 || s.Pos != 99 {
		t.Errorf("restored %+v", s)
	}
}

func TestCommitRestoreBCMSnapshotWithPayload(t *testing.T) {
	d := newDev()
	c, err := NewController(d, 8, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	acc := []fixed.Q15{1, -2, 3, -4, 5, -6, 7, -8}
	inter := make([]fftfixed.Complex, 8)
	for i := range inter {
		inter[i] = fftfixed.Complex{Re: fixed.Q15(10 * i), Im: fixed.Q15(-3 * i)}
	}
	c.Commit(d, Snapshot{Layer: 4, State: StatePostMPY, I: 1, J: 2, Pos: 50,
		Acc: acc, Inter: inter})

	s, ok := c.Restore(d, func(Snapshot) uint64 { return 50 })
	if !ok {
		t.Fatal("restore failed")
	}
	if s.State != StatePostMPY || s.I != 1 || s.J != 2 {
		t.Errorf("restored %+v", s)
	}
	gotAcc := make([]fixed.Q15, 8)
	c.LoadAcc(d, gotAcc)
	for i := range acc {
		if gotAcc[i] != acc[i] {
			t.Fatalf("acc[%d] = %d, want %d", i, gotAcc[i], acc[i])
		}
	}
	gotInter := make([]fftfixed.Complex, 8)
	c.LoadInter(d, gotInter)
	for i := range inter {
		if gotInter[i] != inter[i] {
			t.Fatalf("inter[%d] = %+v, want %+v", i, gotInter[i], inter[i])
		}
	}
}

func TestRestoreFreshControllerIsInvalid(t *testing.T) {
	d := newDev()
	c, err := NewController(d, 8, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Restore(d, func(Snapshot) uint64 { return 0 }); ok {
		t.Error("fresh controller restored a snapshot")
	}
	if c.Position() != 0 {
		t.Errorf("fresh Position = %d", c.Position())
	}
}

// lowSupply reports a voltage below any warn threshold.
type lowSupply struct{}

func (lowSupply) Draw(nJ, dt float64) bool  { return true }
func (lowSupply) Voltage() float64          { return 1.9 }
func (lowSupply) Recharge() (float64, bool) { return 0, true }

func TestBoundarySamplesOnStrideAndCommitsWhenLow(t *testing.T) {
	d := device.New(device.DefaultCosts(), lowSupply{})
	c, err := NewController(d, 8, Config{VWarn: 2.1, SampleStride: 4})
	if err != nil {
		t.Fatal(err)
	}
	commits := 0
	for pos := uint64(1); pos <= 12; pos++ {
		p := pos
		c.Boundary(d, p, func() Snapshot {
			commits++
			return Snapshot{Layer: 0, State: StateElement, Elem: int(p), Pos: p}
		})
	}
	// 12 boundaries, stride 4 → 3 samples, all low, distinct positions
	// → 3 commits.
	if commits != 3 {
		t.Errorf("commits = %d, want 3", commits)
	}
}

func TestBoundarySuppressesDuplicatePosition(t *testing.T) {
	d := device.New(device.DefaultCosts(), lowSupply{})
	c, err := NewController(d, 8, Config{VWarn: 2.1, SampleStride: 1})
	if err != nil {
		t.Fatal(err)
	}
	commits := 0
	snap := func() Snapshot {
		commits++
		return Snapshot{Layer: 0, State: StateElement, Elem: 5, Pos: 7}
	}
	c.Boundary(d, 7, snap)
	c.Boundary(d, 7, snap) // same position: must not re-commit
	if commits != 1 {
		t.Errorf("commits = %d, want 1", commits)
	}
	c.Boundary(d, 8, snap)
	if commits != 2 {
		t.Errorf("commits after new position = %d, want 2", commits)
	}
}

func TestBoundaryQuietWhenVoltageHigh(t *testing.T) {
	d := newDev() // Continuous: 3.3 V
	c, err := NewController(d, 8, Config{VWarn: 2.1, SampleStride: 1})
	if err != nil {
		t.Fatal(err)
	}
	for pos := uint64(1); pos <= 50; pos++ {
		c.Boundary(d, pos, func() Snapshot {
			t.Fatal("committed under healthy rail")
			return Snapshot{}
		})
	}
	if got := d.Stats().Energy[device.CatCheckpoint]; got != 0 {
		t.Errorf("checkpoint energy = %v under continuous power", got)
	}
}

func TestCheckpointCostWithinPaperBound(t *testing.T) {
	// §IV-A.5: every checkpoint/restore costs at most 0.033 mJ, the
	// worst case being the FFT-based BCM state of the largest block.
	d := newDev()
	c, err := NewController(d, 256, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	acc := make([]fixed.Q15, 256)
	inter := make([]fftfixed.Complex, 256)
	before := d.Stats().Energy[device.CatCheckpoint]
	c.Commit(d, Snapshot{Layer: 1, State: StatePostMPY, I: 0, J: 0, Pos: 1,
		Acc: acc, Inter: inter})
	cost := d.Stats().Energy[device.CatCheckpoint] - before
	if costmJ := cost * 1e-6; costmJ > 0.033 {
		t.Errorf("checkpoint cost %.4f mJ exceeds the paper's 0.033 mJ bound", costmJ)
	}
}

func TestZeroMaxKController(t *testing.T) {
	d := newDev()
	c, err := NewController(d, 0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.Commit(d, Snapshot{Layer: 1, State: StateElement, Elem: 9, Pos: 2})
	s, ok := c.Restore(d, func(Snapshot) uint64 { return 2 })
	if !ok || s.Elem != 9 {
		t.Errorf("element-only controller broken: %+v ok=%v", s, ok)
	}
}
