// Package intermittent drives a program across power failures: it
// boots the program, catches the device.PowerFailure panic when the
// capacitor browns out, recharges (wiping SRAM, keeping FRAM), and
// boots again — the life of a batteryless sensor node.
//
// Programs must be written intermittent-style: Boot is the reset
// vector, called afresh after every outage, and any progress that
// should survive must already be in FRAM. A program without persistent
// progress (BASE, plain ACE) simply restarts from scratch each boot;
// if one inference needs more energy than a full capacitor holds, it
// can never complete — the runner detects the stagnation and reports
// a DNF, reproducing the "X" entries of Fig. 7(b).
//
// Stagnation is detected two ways. Programs implementing
// ProgressReporter are declared stuck after StagnationLimit
// consecutive boots whose progress counter did not advance. Programs
// that do not report progress are watched at the supply level: every
// failed boot is by construction a full-capacitor discharge (VOn down
// to brown-out), and when StagnationLimit consecutive discharges
// charge an identical number of active cycles, the program is treated
// as repeating identical work and declared stuck. The cycle
// fingerprint cannot tell re-executed work from new work of identical
// shape: a checkpointing program with a regular per-boot cost (the
// common case — a fixed energy budget buys the same op count every
// cycle) is misdetected once it needs more than StagnationLimit
// boots. Reporterless programs expecting long multi-boot runs MUST
// either implement ProgressReporter (all in-repo engines do) or set
// Runner.AssumeProgress; the heuristic exists so that BASE-style
// restart-from-scratch programs DNF in StagnationLimit boots instead
// of burning the 10000-boot safety net.
package intermittent

import (
	"errors"
	"fmt"

	"ehdl/internal/device"
)

// Program is an intermittent workload.
type Program interface {
	// Boot runs the program from power-on to completion or panic.
	// It is invoked again after every power failure.
	Boot(d *device.Device) error
}

// ProgressReporter lets the runner observe forward progress (any
// monotonically non-decreasing counter, e.g. FLEX's commit sequence).
// Programs that implement it get exact stagnation detection instead of
// the full-discharge fingerprint heuristic.
type ProgressReporter interface {
	Progress() uint64
}

// ErrStagnant is wrapped in Result.Err when the program made no
// persistent progress for StagnationLimit consecutive boots — either
// its reported progress counter froze, or (without a reporter) it kept
// burning identical full-capacitor discharges.
var ErrStagnant = errors.New("intermittent: no forward progress across boots")

// ErrExhausted is wrapped in Result.Err when the supply could not
// recharge (harvesting source dead).
var ErrExhausted = errors.New("intermittent: supply cannot recharge")

// ErrBootLimit is wrapped in Result.Err when MaxBoots was reached.
var ErrBootLimit = errors.New("intermittent: boot limit reached")

// Result describes one intermittent execution.
type Result struct {
	// Completed is true when Boot returned without a power failure.
	Completed bool
	// Boots is the number of power-failure restarts (0 = finished on
	// first charge).
	Boots uint64
	// Err is nil on completion, otherwise one of the sentinel errors
	// above (or the program's own error).
	Err error
}

// Runner executes Programs across power cycles.
type Runner struct {
	// MaxBoots bounds the total number of restarts (safety net).
	// Zero means the default of 10000.
	MaxBoots uint64
	// StagnationLimit is the number of consecutive boots without
	// progress after which a program is declared stuck. Zero means the
	// default of 8.
	StagnationLimit int
	// AssumeProgress disables the full-discharge fingerprint heuristic
	// for programs that do not implement ProgressReporter, leaving
	// MaxBoots as their only DNF detector. REQUIRED for reporterless
	// checkpointing programs that need more than StagnationLimit
	// boots: their regular per-boot discharges are indistinguishable
	// from a restart-from-scratch loop (see the package doc).
	AssumeProgress bool
}

// Run drives p on d until completion, stagnation, exhaustion, or the
// boot limit. Non-PowerFailure panics propagate: they are bugs.
func (r *Runner) Run(d *device.Device, p Program) Result {
	maxBoots := r.MaxBoots
	if maxBoots == 0 {
		maxBoots = 10000
	}
	stagLimit := r.StagnationLimit
	if stagLimit == 0 {
		stagLimit = 8
	}

	var res Result
	var lastProgress uint64
	stagnant := 0
	reporter, hasProgress := p.(ProgressReporter)

	// Fingerprint of the previous failed boot's discharge, for the
	// reporterless heuristic: active cycles are charged deterministic
	// amounts per operation, so equal deltas mean the boot re-executed
	// the same op sequence before browning out at the same point.
	var lastCycles uint64
	haveFingerprint := false

	for {
		cyclesBefore := d.Stats().ActiveCycles
		err, failed := bootOnce(d, p)
		if !failed {
			res.Completed = err == nil
			res.Err = err
			return res
		}
		// Power failure: check progress before recharging.
		if hasProgress {
			cur := reporter.Progress()
			if cur < lastProgress {
				panic(fmt.Sprintf("intermittent: progress moved backwards: %d -> %d", lastProgress, cur))
			}
			if cur == lastProgress {
				stagnant++
				if stagnant >= stagLimit {
					res.Err = fmt.Errorf("%w (stuck at %d for %d boots)", ErrStagnant, cur, stagnant)
					res.Boots = d.Stats().Boots
					return res
				}
			} else {
				stagnant = 0
				lastProgress = cur
			}
		} else if !r.AssumeProgress {
			// Every failed boot consumed the entire usable budget; when
			// the discharges are identical the program is restarting
			// the same work from scratch.
			cycles := d.Stats().ActiveCycles - cyclesBefore
			if haveFingerprint && cycles == lastCycles {
				stagnant++
			} else {
				stagnant = 1
				lastCycles = cycles
				haveFingerprint = true
			}
			if stagnant >= stagLimit {
				res.Err = fmt.Errorf("%w (%d identical %d-cycle discharges, no progress reporter)",
					ErrStagnant, stagnant, lastCycles)
				res.Boots = d.Stats().Boots
				return res
			}
		}
		if d.Stats().Boots >= maxBoots {
			res.Err = fmt.Errorf("%w (%d)", ErrBootLimit, maxBoots)
			res.Boots = d.Stats().Boots
			return res
		}
		if !d.Reboot() {
			res.Err = ErrExhausted
			res.Boots = d.Stats().Boots
			return res
		}
		res.Boots = d.Stats().Boots
	}
}

// bootOnce runs one power cycle. failed=true means a PowerFailure
// interrupted Boot; any other panic is re-raised.
func bootOnce(d *device.Device, p Program) (err error, failed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(device.PowerFailure); ok {
				failed = true
				return
			}
			panic(r)
		}
	}()
	return p.Boot(d), false
}
