// Package intermittent drives a program across power failures: it
// boots the program, catches the device.PowerFailure panic when the
// capacitor browns out, recharges (wiping SRAM, keeping FRAM), and
// boots again — the life of a batteryless sensor node.
//
// Programs must be written intermittent-style: Boot is the reset
// vector, called afresh after every outage, and any progress that
// should survive must already be in FRAM. A program without persistent
// progress (BASE, plain ACE) simply restarts from scratch each boot;
// if one inference needs more energy than a full capacitor holds, it
// can never complete — the runner detects the stagnation and reports
// a DNF, reproducing the "X" entries of Fig. 7(b).
package intermittent

import (
	"errors"
	"fmt"

	"ehdl/internal/device"
)

// Program is an intermittent workload.
type Program interface {
	// Boot runs the program from power-on to completion or panic.
	// It is invoked again after every power failure.
	Boot(d *device.Device) error
}

// ProgressReporter lets the runner observe forward progress (any
// monotonically non-decreasing counter, e.g. FLEX's commit sequence).
// Programs that implement it get fast stagnation detection.
type ProgressReporter interface {
	Progress() uint64
}

// ErrStagnant is wrapped in Result.Err when the program made no
// persistent progress for StagnationLimit consecutive boots.
var ErrStagnant = errors.New("intermittent: no forward progress across boots")

// ErrExhausted is wrapped in Result.Err when the supply could not
// recharge (harvesting source dead).
var ErrExhausted = errors.New("intermittent: supply cannot recharge")

// ErrBootLimit is wrapped in Result.Err when MaxBoots was reached.
var ErrBootLimit = errors.New("intermittent: boot limit reached")

// Result describes one intermittent execution.
type Result struct {
	// Completed is true when Boot returned without a power failure.
	Completed bool
	// Boots is the number of power-failure restarts (0 = finished on
	// first charge).
	Boots uint64
	// Err is nil on completion, otherwise one of the sentinel errors
	// above (or the program's own error).
	Err error
}

// Runner executes Programs across power cycles.
type Runner struct {
	// MaxBoots bounds the total number of restarts (safety net).
	// Zero means the default of 10000.
	MaxBoots uint64
	// StagnationLimit is the number of consecutive boots without
	// progress after which a ProgressReporter program is declared
	// stuck. Zero means the default of 8.
	StagnationLimit int
}

// Run drives p on d until completion, stagnation, exhaustion, or the
// boot limit. Non-PowerFailure panics propagate: they are bugs.
func (r *Runner) Run(d *device.Device, p Program) Result {
	maxBoots := r.MaxBoots
	if maxBoots == 0 {
		maxBoots = 10000
	}
	stagLimit := r.StagnationLimit
	if stagLimit == 0 {
		stagLimit = 8
	}

	var res Result
	var lastProgress uint64
	stagnant := 0
	reporter, hasProgress := p.(ProgressReporter)

	for {
		err, failed := bootOnce(d, p)
		if !failed {
			res.Completed = err == nil
			res.Err = err
			return res
		}
		// Power failure: check progress before recharging.
		if hasProgress {
			cur := reporter.Progress()
			if cur < lastProgress {
				panic(fmt.Sprintf("intermittent: progress moved backwards: %d -> %d", lastProgress, cur))
			}
			if cur == lastProgress {
				stagnant++
				if stagnant >= stagLimit {
					res.Err = fmt.Errorf("%w (stuck at %d for %d boots)", ErrStagnant, cur, stagnant)
					res.Boots = d.Stats().Boots
					return res
				}
			} else {
				stagnant = 0
				lastProgress = cur
			}
		}
		if d.Stats().Boots >= maxBoots {
			res.Err = fmt.Errorf("%w (%d)", ErrBootLimit, maxBoots)
			res.Boots = d.Stats().Boots
			return res
		}
		if !d.Reboot() {
			res.Err = ErrExhausted
			res.Boots = d.Stats().Boots
			return res
		}
		res.Boots = d.Stats().Boots
	}
}

// bootOnce runs one power cycle. failed=true means a PowerFailure
// interrupted Boot; any other panic is re-raised.
func bootOnce(d *device.Device, p Program) (err error, failed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(device.PowerFailure); ok {
				failed = true
				return
			}
			panic(r)
		}
	}()
	return p.Boot(d), false
}
