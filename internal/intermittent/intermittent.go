// Package intermittent drives a program across power failures: it
// boots the program, catches the device.PowerFailure panic when the
// capacitor browns out, recharges (wiping SRAM, keeping FRAM), and
// boots again — the life of a batteryless sensor node.
//
// Programs must be written intermittent-style: Boot is the reset
// vector, called afresh after every outage, and any progress that
// should survive must already be in FRAM. A program without persistent
// progress (BASE, plain ACE) simply restarts from scratch each boot;
// if one inference needs more energy than a full capacitor holds, it
// can never complete — the runner detects the stagnation and reports
// a DNF, reproducing the "X" entries of Fig. 7(b).
//
// # The boot ledger
//
// The runner keeps a bounded ring of BootRecord entries — one per
// boot, carrying the boot's active cycles, per-category energy draw,
// reported progress delta, and the persistent-write ledger (count and
// order-sensitive signature of every committed FRAM write — buffer
// positions and values both, so positional progress counts —
// maintained by the device). DNF verdicts are decided on that ledger,
// not on guesswork:
//
//   - A failed boot that committed zero persistent writes provably
//     made no progress: everything volatile died with the outage.
//   - A failed boot whose persistent-write log is identical to the
//     previous failed boot's re-committed exactly the same state: the
//     program is re-executing the same work.
//   - A ProgressReporter whose counter froze is stagnant only when the
//     write ledger agrees (zero writes, or a write log that merely
//     re-commits the previous boot's positions and values) — a program
//     persisting fresh state through the device NV types is never
//     declared stuck, whatever its counter says. State written through
//     raw buffers with bare FRAM charges is visible to the ledger only
//     as a word count (the NV types are the documented home for
//     persistent progress — see the exec package's engine discipline),
//     so a frozen-counter program persisting exclusively that way is
//     judged by its counter, like the seed runner judged everything.
//
// StagnationLimit consecutive boots of such evidence yield ErrStagnant
// with a typed Diagnosis naming which verdict fired and on how much
// evidence. A reporterless checkpointing program with a regular
// per-boot cost — the case the old active-cycle fingerprint heuristic
// misdetected — advances its write log every boot and therefore runs
// to completion, however many boots it needs; AssumeProgress survives
// only as an escape hatch and is no longer required for any program
// that persists its progress.
//
// # Analytic fast-forward
//
// On a phase-anchored harvest supply (harvest.Capacitor under any
// periodic or constant Analytic profile), a steady run reaches an
// exact fixed point: the supply token (stored-energy and profile-phase
// bits) repeats at boot start and the ledger records become
// bit-identical. Once the runner observes two consecutive identical
// boot cycles at a repeated token, it can jump: device stats, supply
// meters and the program's persistent progress advance by k boots in
// one step (per-boot deltas replayed fold by fold, so the totals are
// bit-identical to simulating every boot), then simulation resumes for
// the final boots. Programs opt in to completion jumps by implementing
// Skippable; reporterless AssumeProgress runs jump straight to the
// boot limit with no cooperation, since their state provably never
// changes. Thousand-boot slow-harvest runs cost a handful of simulated
// boots (see BenchmarkIntermittentFastForward).
package intermittent

import (
	"errors"
	"fmt"

	"ehdl/internal/device"
	"ehdl/internal/harvest"
)

// Program is an intermittent workload.
type Program interface {
	// Boot runs the program from power-on to completion or panic.
	// It is invoked again after every power failure.
	Boot(d *device.Device) error
}

// ProgressReporter lets the runner observe forward progress (any
// monotonically non-decreasing counter, e.g. FLEX's commit sequence).
// Programs that implement it get progress-aware stagnation verdicts
// and become eligible for the analytic fast-forward via Skippable.
type ProgressReporter interface {
	Progress() uint64
}

// Skippable marks a checkpointing program whose steady-state boots are
// homogeneous: between warm-up and the final boots, every boot
// performs the same charged work and advances the progress counter by
// the same delta, and the persistent state after k such boots depends
// only on the progress value. The runner never trusts the contract
// blindly — it first proves the homogeneity on the ledger (two
// consecutive bit-identical boot cycles at a repeated supply token)
// and re-checks the reported progress after every jump.
type Skippable interface {
	ProgressReporter
	// ProgressTarget returns the progress value at which Boot returns
	// instead of browning out.
	ProgressTarget() uint64
	// SkipBoots applies k boots of delta progress each directly to the
	// persistent state, uncharged, leaving the program exactly where
	// boot-by-boot execution would have (the runner replays the
	// charges on the device's ledger).
	SkipBoots(k, delta uint64)
}

// ErrStagnant is wrapped in Result.Err when the boot ledger proved
// StagnationLimit consecutive boots of zero persistent progress; the
// Diagnosis says which verdict fired.
var ErrStagnant = errors.New("intermittent: no forward progress across boots")

// ErrExhausted is wrapped in Result.Err when the supply could not
// recharge (harvesting source dead).
var ErrExhausted = errors.New("intermittent: supply cannot recharge")

// ErrBootLimit is wrapped in Result.Err when MaxBoots was reached.
var ErrBootLimit = errors.New("intermittent: boot limit reached")

// ErrProgressRegressed is wrapped in Result.Err when a
// ProgressReporter's counter moved backwards — a broken engine. The
// run is reported as a DNF row instead of panicking, so one buggy
// engine cannot crash a fleet sweep.
var ErrProgressRegressed = errors.New("intermittent: progress moved backwards")

// BootRecord is one boot ledger entry: what a single boot charged,
// wrote and reported, plus the recharge that followed it. Per-boot
// numbers come from device.BootStats, accumulated from zero each boot,
// so records of identical boots are bit-identical.
type BootRecord struct {
	// Boot is the 0-based boot index (0 = first charge).
	Boot uint64
	// Failed reports whether the boot ended in a power failure.
	Failed bool

	Cycles   uint64
	EnergynJ [device.NumCategories]float64
	// NVWrites / NVHash are the boot's persistent-write ledger: the
	// count of committed NV-typed word writes and the order-sensitive
	// FNV-1a signature over their values.
	NVWrites uint64
	NVHash   uint64
	// FRAMWriteWords counts every word charged to an FRAM write this
	// boot (superset of NVWrites; covers raw-buffer writers too).
	FRAMWriteWords uint64

	// Progress / Delta are the reported progress at boot end and its
	// advance over the previous boot (ProgressReporter programs only).
	Progress uint64
	Delta    uint64

	// OffSec is the recharge time after this boot; CycleHarvestJ the
	// gross energy harvested over the whole cycle (zero on the final
	// boot of a run — there is no recharge after it).
	OffSec        float64
	CycleHarvestJ float64

	// Token is the supply's cycle token at the start of this boot;
	// HasToken is false on supplies without a phase anchor.
	Token    harvest.CycleToken
	HasToken bool
}

// TotalnJ returns the boot's total energy draw.
func (r BootRecord) TotalnJ() float64 {
	var sum float64
	for _, e := range r.EnergynJ {
		sum += e
	}
	return sum
}

// DiagnosisKind names the decision behind a Result.
type DiagnosisKind string

// The diagnosis catalogue.
const (
	// DiagCompleted: Boot returned without error.
	DiagCompleted DiagnosisKind = "completed"
	// DiagProgramError: Boot returned the program's own error.
	DiagProgramError DiagnosisKind = "program-error"
	// DiagFrozenProgress: the reported progress counter froze while
	// the persistent-write ledger showed zero or identical writes.
	DiagFrozenProgress DiagnosisKind = "frozen-progress"
	// DiagNoPersistentWrites: consecutive failed boots committed no
	// persistent writes at all (reporterless restart-from-scratch).
	DiagNoPersistentWrites DiagnosisKind = "no-persistent-writes"
	// DiagIdenticalWrites: consecutive failed boots committed
	// bit-identical persistent-write logs (reporterless re-execution).
	DiagIdenticalWrites DiagnosisKind = "identical-writes"
	// DiagExhausted: the supply can never recharge.
	DiagExhausted DiagnosisKind = "exhausted"
	// DiagBootLimit: MaxBoots reached.
	DiagBootLimit DiagnosisKind = "boot-limit"
	// DiagProgressRegressed: the progress counter moved backwards.
	DiagProgressRegressed DiagnosisKind = "progress-regressed"
)

// Diagnosis explains a Result: which verdict ended the run and on what
// evidence.
type Diagnosis struct {
	Kind DiagnosisKind
	// Window is the number of consecutive evidence boots behind a
	// stagnation verdict.
	Window int
	// Progress is the final reported progress (reporters only).
	Progress uint64
	// FastForwarded counts boots skipped by the analytic fast-forward
	// (included in Result.Boots, absent from Result.Ledger).
	FastForwarded uint64
	// Detail is a human-readable elaboration.
	Detail string
}

// String renders the diagnosis for CLI output.
func (d Diagnosis) String() string {
	s := string(d.Kind)
	if d.Window > 0 {
		s += fmt.Sprintf(" [%d-boot window]", d.Window)
	}
	if d.FastForwarded > 0 {
		s += fmt.Sprintf(" [%d boots fast-forwarded]", d.FastForwarded)
	}
	if d.Detail != "" {
		s += ": " + d.Detail
	}
	return s
}

// Result describes one intermittent execution.
type Result struct {
	// Completed is true when Boot returned without a power failure.
	Completed bool
	// Boots is the number of power-failure restarts (0 = finished on
	// first charge), including analytically fast-forwarded boots.
	Boots uint64
	// Err is nil on completion, otherwise one of the sentinel errors
	// above (or the program's own error).
	Err error
	// Diagnosis explains the verdict.
	Diagnosis Diagnosis
	// Ledger holds the last LedgerDepth executed boots in
	// chronological order. Boots skipped by the analytic fast-forward
	// do not appear (they are exact copies of the steady record that
	// preceded them); Diagnosis.FastForwarded counts them.
	Ledger []BootRecord
}

// steadySupply is the supply surface the analytic fast-forward needs;
// harvest.Capacitor implements it.
type steadySupply interface {
	CycleToken() (harvest.CycleToken, bool)
	CycleHarvestJ() float64
	SkipSteadyCycles(k uint64, wallSec, cycleJ float64)
}

// Runner executes Programs across power cycles.
type Runner struct {
	// MaxBoots bounds the total number of restarts (safety net).
	// Zero means the default of 10000.
	MaxBoots uint64
	// StagnationLimit is the number of consecutive evidence boots
	// (zero or identical persistent writes, frozen progress) after
	// which a program is declared stuck. Zero means the default of 8.
	StagnationLimit int
	// AssumeProgress disables the reporterless stagnation verdicts,
	// leaving MaxBoots as the only DNF detector. It is NO LONGER
	// required for reporterless checkpointing programs — their
	// advancing write logs exempt them exactly — and survives as an
	// escape hatch for programs that re-commit identical state while
	// genuinely progressing outside the simulated FRAM.
	AssumeProgress bool
	// NoFastForward disables the analytic fast-forward, simulating
	// every boot. Results are bit-identical either way (pinned by
	// TestFastForwardBitIdentical); this exists for that comparison
	// and for ledger-complete traces.
	NoFastForward bool
	// LedgerDepth bounds the BootRecord ring kept for Result.Ledger.
	// Zero means the default of 16 (at least 2 is always kept).
	LedgerDepth int
}

// Defaults.
const (
	defaultMaxBoots    = 10000
	defaultStagLimit   = 8
	defaultLedgerDepth = 16
	// skipMargin is how many provably-failing steady boots the
	// fast-forward leaves to real simulation before a completion, so
	// warm-down effects (the completing boot's different shape) are
	// executed, never extrapolated.
	skipMargin = 2
)

// Run drives p on d until completion, stagnation, exhaustion, or the
// boot limit. Non-PowerFailure panics propagate: they are bugs.
func (r *Runner) Run(d *device.Device, p Program) Result {
	maxBoots := r.MaxBoots
	if maxBoots == 0 {
		maxBoots = defaultMaxBoots
	}
	stagLimit := r.StagnationLimit
	if stagLimit == 0 {
		stagLimit = defaultStagLimit
	}
	depth := r.LedgerDepth
	if depth <= 0 {
		depth = defaultLedgerDepth
	}
	if depth < 2 {
		depth = 2
	}

	var (
		res                   Result
		ring                  = make([]BootRecord, depth) // circular, pushed rn times
		rn                    int
		reporter, hasReporter = p.(ProgressReporter)
		skipper, hasSkipper   = p.(Skippable)
		supply, _             = d.Supply().(steadySupply)

		lastProgress uint64
		stagnant     int
		stagKind     DiagnosisKind
		ffBoots      uint64

		// The last two completed boot cycles (failed boot + recharge),
		// for the steady-state fixed-point check.
		cycle1, cycle2 BootRecord
		haveCycles     int
	)

	push := func(rec BootRecord) {
		ring[rn%depth] = rec
		rn++
	}
	finish := func(err error, diag Diagnosis) Result {
		res.Err = err
		res.Boots = d.Stats().Boots
		diag.FastForwarded = ffBoots
		if hasReporter {
			diag.Progress = lastProgress
		}
		res.Diagnosis = diag
		// Materialize the ring chronologically, once.
		n := rn
		if n > depth {
			n = depth
		}
		res.Ledger = make([]BootRecord, n)
		for i := 0; i < n; i++ {
			res.Ledger[i] = ring[(rn-n+i)%depth]
		}
		return res
	}

	for {
		var tok harvest.CycleToken
		hasTok := false
		if supply != nil {
			tok, hasTok = supply.CycleToken()
		}
		err, failed := bootOnce(d, p)
		bs := d.BootStats()
		rec := BootRecord{
			Boot:           d.Stats().Boots,
			Failed:         failed,
			Cycles:         bs.Cycles,
			EnergynJ:       bs.Energy,
			NVWrites:       bs.NVWrites,
			NVHash:         bs.NVHash,
			FRAMWriteWords: bs.FRAMWriteWords,
			Token:          tok,
			HasToken:       hasTok,
		}
		if hasReporter {
			cur := reporter.Progress()
			rec.Progress = cur
			if cur >= lastProgress {
				rec.Delta = cur - lastProgress
			}
		}

		if !failed {
			push(rec)
			if hasReporter {
				lastProgress = rec.Progress
			}
			res.Completed = err == nil
			if err == nil {
				return finish(nil, Diagnosis{Kind: DiagCompleted})
			}
			return finish(err, Diagnosis{Kind: DiagProgramError, Detail: err.Error()})
		}

		// Power failure: judge the boot before recharging.
		if hasReporter && rec.Progress < lastProgress {
			push(rec)
			return finish(
				fmt.Errorf("%w (%d -> %d)", ErrProgressRegressed, lastProgress, rec.Progress),
				Diagnosis{Kind: DiagProgressRegressed,
					Detail: fmt.Sprintf("progress %d -> %d", lastProgress, rec.Progress)})
		}

		// Stagnation evidence: zero-persistent-progress verdicts from
		// the write ledger (see the package doc). For reporters, frozen
		// progress counts unless the write log proves fresh persistent
		// values were committed; reporterless programs need the hard
		// evidence (no writes at all, or bit-identical discharges).
		evidence := false
		var kind DiagnosisKind
		switch {
		case hasReporter && rec.Delta == 0 && !freshWrites(haveCycles > 0, cycle1, rec, bs):
			evidence, kind = true, DiagFrozenProgress
		case !hasReporter && !r.AssumeProgress && rec.FRAMWriteWords == 0:
			evidence, kind = true, DiagNoPersistentWrites
		case !hasReporter && !r.AssumeProgress && haveCycles > 0 && sameWriteLog(cycle1, rec):
			evidence, kind = true, DiagIdenticalWrites
		}
		if evidence {
			if kind != stagKind {
				// A change of evidence kind starts a fresh window, so
				// the verdict's window never mixes kinds.
				stagnant = 0
			}
			stagKind = kind
			stagnant++
		} else {
			stagnant = 0
		}
		if hasReporter {
			lastProgress = rec.Progress
		}
		if evidence && stagnant >= stagLimit {
			push(rec)
			return finish(
				fmt.Errorf("%w (%s)", ErrStagnant, stagnationDetail(stagKind, stagnant, rec)),
				Diagnosis{Kind: stagKind, Window: stagnant,
					Detail: stagnationDetail(stagKind, stagnant, rec)})
		}

		if d.Stats().Boots >= maxBoots {
			push(rec)
			return finish(
				fmt.Errorf("%w (%d)", ErrBootLimit, maxBoots),
				Diagnosis{Kind: DiagBootLimit})
		}
		if !d.Reboot() {
			push(rec)
			return finish(ErrExhausted, Diagnosis{Kind: DiagExhausted})
		}
		rec.OffSec = d.LastOffSeconds()
		if supply != nil {
			rec.CycleHarvestJ = supply.CycleHarvestJ()
		}
		push(rec)
		cycle2, cycle1 = cycle1, rec
		haveCycles++

		// Analytic fast-forward: jump proven-periodic runs.
		if r.NoFastForward || supply == nil || haveCycles < 2 || !steadyCycle(cycle2, cycle1) {
			continue
		}
		if curTok, ok := supply.CycleToken(); !ok || curTok != cycle1.Token {
			continue
		}
		bootsNow := d.Stats().Boots
		var k uint64
		completionJump := false
		switch {
		case hasSkipper && cycle1.Delta > 0:
			target := skipper.ProgressTarget()
			if target > lastProgress {
				if full := (target - lastProgress) / cycle1.Delta; full > skipMargin {
					k = full - skipMargin
				}
				completionJump = true
			}
		case !hasReporter && r.AssumeProgress && cycle1.NVHash == cycle2.NVHash:
			// Persistent state is provably fixed: every remaining boot
			// repeats this cycle until the boot limit.
			k = maxBoots - bootsNow
		}
		if lim := maxBoots - bootsNow; k > lim {
			k = lim
		}
		if k == 0 {
			continue
		}
		d.ReplayBoots(k, device.BootStats{
			Cycles:         cycle1.Cycles,
			Energy:         cycle1.EnergynJ,
			NVWrites:       cycle1.NVWrites,
			FRAMWriteWords: cycle1.FRAMWriteWords,
		}, cycle1.OffSec)
		wall := float64(cycle1.Cycles)/d.Costs.ClockHz + cycle1.OffSec
		supply.SkipSteadyCycles(k, wall, cycle1.CycleHarvestJ)
		ffBoots += k // replayed already — count them on every exit path
		if completionJump {
			skipper.SkipBoots(k, cycle1.Delta)
			lastProgress += k * cycle1.Delta
			if got := reporter.Progress(); got != lastProgress {
				return finish(
					fmt.Errorf("intermittent: Skippable contract violated: progress %d after skipping %d boots, expected %d",
						got, k, lastProgress),
					Diagnosis{Kind: DiagProgramError,
						Detail: "SkipBoots did not advance progress as promised"})
			}
		}
	}
}

// freshWrites reports whether boot rec provably committed persistent
// values its predecessor prev did not: an equal-length write log with
// a different hash, or a longer log whose hash at the predecessor's
// length already diverged. Re-execution of the same value sequence —
// however the two boots' budgets truncated it — is not fresh, and a
// shorter log cannot prove freshness. A frozen ProgressReporter whose
// boots commit fresh values this way is persisting state its counter
// does not cover, so the runner refuses to declare it stuck.
func freshWrites(havePrev bool, prev, rec BootRecord, bs device.BootStats) bool {
	if !havePrev || rec.FRAMWriteWords == 0 {
		return false
	}
	switch {
	case rec.NVWrites == prev.NVWrites:
		return rec.NVHash != prev.NVHash
	case rec.NVWrites > prev.NVWrites:
		return bs.NVHashAtPrevLen != prev.NVHash
	default:
		return false
	}
}

// sameWriteLog reports whether two boots committed bit-identical
// persistent-write logs and charged identical work — the exact
// re-execution test behind the stagnation verdicts.
func sameWriteLog(a, b BootRecord) bool {
	return a.Failed && b.Failed &&
		a.NVWrites == b.NVWrites && a.NVHash == b.NVHash &&
		a.FRAMWriteWords == b.FRAMWriteWords &&
		a.Cycles == b.Cycles && sameEnergy(a.EnergynJ, b.EnergynJ)
}

// steadyCycle reports whether two completed boot cycles are
// bit-identical in everything that determines the next cycle except
// the write values (which advance on checkpointing programs): charged
// work, energy vector, write counts, progress delta, recharge time,
// harvested energy, and the supply token they started from.
func steadyCycle(a, b BootRecord) bool {
	return a.Failed && b.Failed &&
		a.Cycles == b.Cycles && sameEnergy(a.EnergynJ, b.EnergynJ) &&
		a.NVWrites == b.NVWrites && a.FRAMWriteWords == b.FRAMWriteWords &&
		a.Delta == b.Delta &&
		a.OffSec == b.OffSec && a.CycleHarvestJ == b.CycleHarvestJ &&
		a.HasToken && b.HasToken && a.Token == b.Token
}

func sameEnergy(a, b [device.NumCategories]float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// stagnationDetail renders the evidence behind a stagnation verdict.
func stagnationDetail(kind DiagnosisKind, window int, rec BootRecord) string {
	switch kind {
	case DiagFrozenProgress:
		return fmt.Sprintf("progress stuck at %d for %d boots with no fresh persistent writes", rec.Progress, window)
	case DiagNoPersistentWrites:
		return fmt.Sprintf("%d consecutive discharges with zero persistent writes", window)
	default:
		return fmt.Sprintf("%d consecutive discharges with identical %d-word persistent-write logs", window, rec.NVWrites)
	}
}

// bootOnce runs one power cycle. failed=true means a PowerFailure
// interrupted Boot; any other panic is re-raised.
func bootOnce(d *device.Device, p Program) (err error, failed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(device.PowerFailure); ok {
				failed = true
				return
			}
			panic(r)
		}
	}()
	return p.Boot(d), false
}
