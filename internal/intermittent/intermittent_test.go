package intermittent

import (
	"errors"
	"testing"

	"ehdl/internal/device"
	"ehdl/internal/harvest"
)

// chunkProgram simulates a checkpointing workload: it must execute
// totalChunks chunks, each costing chunkOps CPU ops, and persists its
// position in an NVWord after each chunk.
type chunkProgram struct {
	pos         device.NVWord
	totalChunks uint64
	chunkOps    int
}

func (p *chunkProgram) Boot(d *device.Device) error {
	for {
		i := p.pos.Read(d, device.CatRestore)
		if i >= p.totalChunks {
			return nil
		}
		d.CPUOps(p.chunkOps)
		p.pos.Write(d, device.CatCheckpoint, i+1)
	}
}

func (p *chunkProgram) Progress() uint64 { return p.pos.Peek() }

// volatileProgram is BASE-like: all progress is in a local variable,
// lost on every boot.
type volatileProgram struct {
	totalOps int
}

func (p *volatileProgram) Boot(d *device.Device) error {
	for i := 0; i < p.totalOps; i += 100 {
		d.CPUOps(100)
	}
	return nil
}

func (p *volatileProgram) Progress() uint64 { return 0 }

func paperCap(t *testing.T, watts float64) *harvest.Capacitor {
	t.Helper()
	c, err := harvest.NewCapacitor(harvest.PaperConfig(), harvest.ConstantProfile{Watts: watts})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCompletesWithoutFailureOnContinuous(t *testing.T) {
	d := device.New(device.DefaultCosts(), device.Continuous{})
	p := &chunkProgram{totalChunks: 100, chunkOps: 1000}
	res := (&Runner{}).Run(d, p)
	if !res.Completed || res.Err != nil {
		t.Fatalf("result = %+v", res)
	}
	if res.Boots != 0 {
		t.Errorf("boots = %d, want 0", res.Boots)
	}
}

func TestCheckpointedProgramSurvivesOutages(t *testing.T) {
	// Budget per charge ≈ 0.38 mJ; each chunk costs 100k ops ≈ 36 µJ,
	// so ~10 chunks per charge; 100 chunks needs ~9 reboots.
	cap := paperCap(t, 5e-3)
	d := device.New(device.DefaultCosts(), cap)
	p := &chunkProgram{totalChunks: 100, chunkOps: 100000}
	res := (&Runner{}).Run(d, p)
	if !res.Completed {
		t.Fatalf("did not complete: %+v", res)
	}
	if res.Boots == 0 {
		t.Error("expected at least one power failure")
	}
	if p.pos.Peek() != 100 {
		t.Errorf("final position = %d, want 100", p.pos.Peek())
	}
}

func TestVolatileProgramStagnates(t *testing.T) {
	// One inference needs ~3.6 mJ; the capacitor holds ~0.38 mJ: DNF.
	cap := paperCap(t, 5e-3)
	d := device.New(device.DefaultCosts(), cap)
	p := &volatileProgram{totalOps: 10_000_000}
	res := (&Runner{}).Run(d, p)
	if res.Completed {
		t.Fatal("volatile program cannot complete on this budget")
	}
	if !errors.Is(res.Err, ErrStagnant) {
		t.Fatalf("err = %v, want ErrStagnant", res.Err)
	}
	// Stagnation should be detected quickly (default limit 8).
	if res.Boots > 10 {
		t.Errorf("took %d boots to detect stagnation", res.Boots)
	}
}

func TestVolatileProgramFitsInOneCharge(t *testing.T) {
	// A small enough workload completes within the first charge.
	cap := paperCap(t, 5e-3)
	d := device.New(device.DefaultCosts(), cap)
	p := &volatileProgram{totalOps: 10_000} // ~3.6 µJ
	res := (&Runner{}).Run(d, p)
	if !res.Completed {
		t.Fatalf("small volatile program should finish: %+v", res)
	}
}

func TestExhaustedSupply(t *testing.T) {
	cap := paperCap(t, 0) // dead source
	d := device.New(device.DefaultCosts(), cap)
	p := &chunkProgram{totalChunks: 1000, chunkOps: 100000}
	res := (&Runner{}).Run(d, p)
	if res.Completed {
		t.Fatal("cannot complete with dead source")
	}
	if !errors.Is(res.Err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", res.Err)
	}
}

func TestBootLimit(t *testing.T) {
	cap := paperCap(t, 5e-3)
	d := device.New(device.DefaultCosts(), cap)
	// No ProgressReporter stagnation (chunk program does progress),
	// but boot limit of 3 cuts a long run short.
	p := &chunkProgram{totalChunks: 100000, chunkOps: 100000}
	res := (&Runner{MaxBoots: 3}).Run(d, p)
	if res.Completed {
		t.Fatal("should have hit boot limit")
	}
	if !errors.Is(res.Err, ErrBootLimit) {
		t.Fatalf("err = %v, want ErrBootLimit", res.Err)
	}
}

// regressingProgram violates the monotonic progress invariant.
type regressingProgram struct {
	val  uint64
	down bool
}

func (p *regressingProgram) Boot(d *device.Device) error {
	if p.down {
		p.val = 0
	} else {
		p.val = 5
		p.down = true
	}
	for {
		d.CPUOps(1000) // burn until failure
	}
}

func (p *regressingProgram) Progress() uint64 { return p.val }

func TestProgressRegressionPanics(t *testing.T) {
	cap := paperCap(t, 5e-3)
	d := device.New(device.DefaultCosts(), cap)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on progress regression")
		}
	}()
	(&Runner{}).Run(d, &regressingProgram{})
}

// buggyProgram panics with a non-PowerFailure value.
type buggyProgram struct{}

func (buggyProgram) Boot(*device.Device) error { panic("index out of range") }

func TestNonPowerFailurePanicsPropagate(t *testing.T) {
	d := device.New(device.DefaultCosts(), device.Continuous{})
	defer func() {
		if r := recover(); r != "index out of range" {
			t.Errorf("recovered %v, want original panic", r)
		}
	}()
	(&Runner{}).Run(d, buggyProgram{})
}

// errorProgram returns a regular error from Boot.
type errorProgram struct{}

func (errorProgram) Boot(*device.Device) error { return errors.New("bad input") }

func TestProgramErrorReturned(t *testing.T) {
	d := device.New(device.DefaultCosts(), device.Continuous{})
	res := (&Runner{}).Run(d, errorProgram{})
	if res.Completed {
		t.Error("errored program marked completed")
	}
	if res.Err == nil || res.Err.Error() != "bad input" {
		t.Errorf("err = %v", res.Err)
	}
}

// silentVolatileProgram is BASE-like but does NOT implement
// ProgressReporter: the runner can only watch its discharges.
type silentVolatileProgram struct {
	totalOps int
}

func (p *silentVolatileProgram) Boot(d *device.Device) error {
	for i := 0; i < p.totalOps; i += 100 {
		d.CPUOps(100)
	}
	return nil
}

// silentChunkProgram checkpoints through FRAM but reports nothing.
type silentChunkProgram struct {
	pos         device.NVWord
	totalChunks uint64
	chunkOps    int
}

func (p *silentChunkProgram) Boot(d *device.Device) error {
	for {
		i := p.pos.Read(d, device.CatRestore)
		if i >= p.totalChunks {
			return nil
		}
		d.CPUOps(p.chunkOps)
		p.pos.Write(d, device.CatCheckpoint, i+1)
	}
}

func TestNonReporterStagnationDetected(t *testing.T) {
	// The package doc promises DNF detection for BASE-style programs;
	// without a ProgressReporter the runner must still catch the
	// repeated identical full-capacitor discharges well before the
	// 10000-boot safety net.
	cap := paperCap(t, 5e-3)
	d := device.New(device.DefaultCosts(), cap)
	p := &silentVolatileProgram{totalOps: 10_000_000}
	res := (&Runner{}).Run(d, p)
	if res.Completed {
		t.Fatal("silent volatile program cannot complete on this budget")
	}
	if !errors.Is(res.Err, ErrStagnant) {
		t.Fatalf("err = %v, want ErrStagnant", res.Err)
	}
	if res.Boots > 10 {
		t.Errorf("took %d boots to detect reporterless stagnation", res.Boots)
	}
}

func TestNonReporterCheckpointerCompletes(t *testing.T) {
	// A silent checkpointing program that needs fewer boots than
	// StagnationLimit must not be misdetected.
	cap := paperCap(t, 5e-3)
	d := device.New(device.DefaultCosts(), cap)
	p := &silentChunkProgram{totalChunks: 12, chunkOps: 100000}
	res := (&Runner{}).Run(d, p)
	if !res.Completed {
		t.Fatalf("silent checkpointer did not complete: %+v", res)
	}
	if p.pos.Peek() != 12 {
		t.Errorf("final position = %d, want 12", p.pos.Peek())
	}
}

func TestAssumeProgressDisablesFingerprint(t *testing.T) {
	cap := paperCap(t, 5e-3)
	d := device.New(device.DefaultCosts(), cap)
	p := &silentVolatileProgram{totalOps: 10_000_000}
	res := (&Runner{MaxBoots: 20, AssumeProgress: true}).Run(d, p)
	if res.Completed {
		t.Fatal("cannot complete")
	}
	if !errors.Is(res.Err, ErrBootLimit) {
		t.Fatalf("err = %v, want ErrBootLimit (heuristic should be off)", res.Err)
	}
}

func TestWastedWorkBounded(t *testing.T) {
	// With per-chunk commits, re-executed work per outage is at most
	// one chunk: total charged ops <= chunks*chunkOps + boots*(chunkOps+overhead).
	cap := paperCap(t, 5e-3)
	d := device.New(device.DefaultCosts(), cap)
	p := &chunkProgram{totalChunks: 50, chunkOps: 200000}
	res := (&Runner{}).Run(d, p)
	if !res.Completed {
		t.Fatalf("did not complete: %+v", res)
	}
	s := d.Stats()
	usefulOps := float64(50 * 200000)
	chargedCPU := s.Energy[device.CatCPU] / device.DefaultCosts().CPUCyclenJ
	maxWaste := float64(res.Boots+1) * 200000
	if chargedCPU > usefulOps+maxWaste {
		t.Errorf("charged %v op-cycles, useful %v, allowed waste %v",
			chargedCPU, usefulOps, maxWaste)
	}
}
