package intermittent

import (
	"errors"
	"testing"

	"ehdl/internal/device"
	"ehdl/internal/harvest"
)

// chunkProgram simulates a checkpointing workload: it must execute
// totalChunks chunks, each costing chunkOps CPU ops, and persists its
// position in an NVWord after each chunk.
type chunkProgram struct {
	pos         device.NVWord
	totalChunks uint64
	chunkOps    int
}

func (p *chunkProgram) Boot(d *device.Device) error {
	for {
		i := p.pos.Read(d, device.CatRestore)
		if i >= p.totalChunks {
			return nil
		}
		d.CPUOps(p.chunkOps)
		p.pos.Write(d, device.CatCheckpoint, i+1)
	}
}

func (p *chunkProgram) Progress() uint64 { return p.pos.Peek() }

// volatileProgram is BASE-like: all progress is in a local variable,
// lost on every boot.
type volatileProgram struct {
	totalOps int
}

func (p *volatileProgram) Boot(d *device.Device) error {
	for i := 0; i < p.totalOps; i += 100 {
		d.CPUOps(100)
	}
	return nil
}

func (p *volatileProgram) Progress() uint64 { return 0 }

func paperCap(t *testing.T, watts float64) *harvest.Capacitor {
	t.Helper()
	c, err := harvest.NewCapacitor(harvest.PaperConfig(), harvest.ConstantProfile{Watts: watts})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCompletesWithoutFailureOnContinuous(t *testing.T) {
	d := device.New(device.DefaultCosts(), device.Continuous{})
	p := &chunkProgram{totalChunks: 100, chunkOps: 1000}
	res := (&Runner{}).Run(d, p)
	if !res.Completed || res.Err != nil {
		t.Fatalf("result = %+v", res)
	}
	if res.Boots != 0 {
		t.Errorf("boots = %d, want 0", res.Boots)
	}
}

func TestCheckpointedProgramSurvivesOutages(t *testing.T) {
	// Budget per charge ≈ 0.38 mJ; each chunk costs 100k ops ≈ 36 µJ,
	// so ~10 chunks per charge; 100 chunks needs ~9 reboots.
	cap := paperCap(t, 5e-3)
	d := device.New(device.DefaultCosts(), cap)
	p := &chunkProgram{totalChunks: 100, chunkOps: 100000}
	res := (&Runner{}).Run(d, p)
	if !res.Completed {
		t.Fatalf("did not complete: %+v", res)
	}
	if res.Boots == 0 {
		t.Error("expected at least one power failure")
	}
	if p.pos.Peek() != 100 {
		t.Errorf("final position = %d, want 100", p.pos.Peek())
	}
}

func TestVolatileProgramStagnates(t *testing.T) {
	// One inference needs ~3.6 mJ; the capacitor holds ~0.38 mJ: DNF.
	cap := paperCap(t, 5e-3)
	d := device.New(device.DefaultCosts(), cap)
	p := &volatileProgram{totalOps: 10_000_000}
	res := (&Runner{}).Run(d, p)
	if res.Completed {
		t.Fatal("volatile program cannot complete on this budget")
	}
	if !errors.Is(res.Err, ErrStagnant) {
		t.Fatalf("err = %v, want ErrStagnant", res.Err)
	}
	// Stagnation should be detected quickly (default limit 8).
	if res.Boots > 10 {
		t.Errorf("took %d boots to detect stagnation", res.Boots)
	}
}

func TestVolatileProgramFitsInOneCharge(t *testing.T) {
	// A small enough workload completes within the first charge.
	cap := paperCap(t, 5e-3)
	d := device.New(device.DefaultCosts(), cap)
	p := &volatileProgram{totalOps: 10_000} // ~3.6 µJ
	res := (&Runner{}).Run(d, p)
	if !res.Completed {
		t.Fatalf("small volatile program should finish: %+v", res)
	}
}

func TestExhaustedSupply(t *testing.T) {
	cap := paperCap(t, 0) // dead source
	d := device.New(device.DefaultCosts(), cap)
	p := &chunkProgram{totalChunks: 1000, chunkOps: 100000}
	res := (&Runner{}).Run(d, p)
	if res.Completed {
		t.Fatal("cannot complete with dead source")
	}
	if !errors.Is(res.Err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", res.Err)
	}
}

func TestBootLimit(t *testing.T) {
	cap := paperCap(t, 5e-3)
	d := device.New(device.DefaultCosts(), cap)
	// No ProgressReporter stagnation (chunk program does progress),
	// but boot limit of 3 cuts a long run short.
	p := &chunkProgram{totalChunks: 100000, chunkOps: 100000}
	res := (&Runner{MaxBoots: 3}).Run(d, p)
	if res.Completed {
		t.Fatal("should have hit boot limit")
	}
	if !errors.Is(res.Err, ErrBootLimit) {
		t.Fatalf("err = %v, want ErrBootLimit", res.Err)
	}
}

// regressingProgram violates the monotonic progress invariant.
type regressingProgram struct {
	val  uint64
	down bool
}

func (p *regressingProgram) Boot(d *device.Device) error {
	if p.down {
		p.val = 0
	} else {
		p.val = 5
		p.down = true
	}
	for {
		d.CPUOps(1000) // burn until failure
	}
}

func (p *regressingProgram) Progress() uint64 { return p.val }

func TestProgressRegressionIsTypedDNF(t *testing.T) {
	// A broken engine whose progress counter moves backwards must
	// yield a DNF result, not crash the (potentially million-device)
	// sweep that contains it.
	cap := paperCap(t, 5e-3)
	d := device.New(device.DefaultCosts(), cap)
	res := (&Runner{}).Run(d, &regressingProgram{})
	if res.Completed {
		t.Fatal("regressing program marked completed")
	}
	if !errors.Is(res.Err, ErrProgressRegressed) {
		t.Fatalf("err = %v, want ErrProgressRegressed", res.Err)
	}
	if res.Diagnosis.Kind != DiagProgressRegressed {
		t.Errorf("diagnosis = %+v, want kind %s", res.Diagnosis, DiagProgressRegressed)
	}
}

// buggyProgram panics with a non-PowerFailure value.
type buggyProgram struct{}

func (buggyProgram) Boot(*device.Device) error { panic("index out of range") }

func TestNonPowerFailurePanicsPropagate(t *testing.T) {
	d := device.New(device.DefaultCosts(), device.Continuous{})
	defer func() {
		if r := recover(); r != "index out of range" {
			t.Errorf("recovered %v, want original panic", r)
		}
	}()
	(&Runner{}).Run(d, buggyProgram{})
}

// errorProgram returns a regular error from Boot.
type errorProgram struct{}

func (errorProgram) Boot(*device.Device) error { return errors.New("bad input") }

func TestProgramErrorReturned(t *testing.T) {
	d := device.New(device.DefaultCosts(), device.Continuous{})
	res := (&Runner{}).Run(d, errorProgram{})
	if res.Completed {
		t.Error("errored program marked completed")
	}
	if res.Err == nil || res.Err.Error() != "bad input" {
		t.Errorf("err = %v", res.Err)
	}
}

// silentVolatileProgram is BASE-like but does NOT implement
// ProgressReporter: the runner can only watch its discharges.
type silentVolatileProgram struct {
	totalOps int
}

func (p *silentVolatileProgram) Boot(d *device.Device) error {
	for i := 0; i < p.totalOps; i += 100 {
		d.CPUOps(100)
	}
	return nil
}

// silentChunkProgram checkpoints through FRAM but reports nothing.
type silentChunkProgram struct {
	pos         device.NVWord
	totalChunks uint64
	chunkOps    int
}

func (p *silentChunkProgram) Boot(d *device.Device) error {
	for {
		i := p.pos.Read(d, device.CatRestore)
		if i >= p.totalChunks {
			return nil
		}
		d.CPUOps(p.chunkOps)
		p.pos.Write(d, device.CatCheckpoint, i+1)
	}
}

func TestNonReporterStagnationDetected(t *testing.T) {
	// The package doc promises DNF detection for BASE-style programs;
	// without a ProgressReporter the runner must still catch the
	// repeated identical full-capacitor discharges well before the
	// 10000-boot safety net.
	cap := paperCap(t, 5e-3)
	d := device.New(device.DefaultCosts(), cap)
	p := &silentVolatileProgram{totalOps: 10_000_000}
	res := (&Runner{}).Run(d, p)
	if res.Completed {
		t.Fatal("silent volatile program cannot complete on this budget")
	}
	if !errors.Is(res.Err, ErrStagnant) {
		t.Fatalf("err = %v, want ErrStagnant", res.Err)
	}
	if res.Boots > 10 {
		t.Errorf("took %d boots to detect reporterless stagnation", res.Boots)
	}
}

func TestNonReporterCheckpointerCompletes(t *testing.T) {
	// A silent checkpointing program that needs fewer boots than
	// StagnationLimit must not be misdetected.
	cap := paperCap(t, 5e-3)
	d := device.New(device.DefaultCosts(), cap)
	p := &silentChunkProgram{totalChunks: 12, chunkOps: 100000}
	res := (&Runner{}).Run(d, p)
	if !res.Completed {
		t.Fatalf("silent checkpointer did not complete: %+v", res)
	}
	if p.pos.Peek() != 12 {
		t.Errorf("final position = %d, want 12", p.pos.Peek())
	}
}

func TestAssumeProgressDisablesFingerprint(t *testing.T) {
	cap := paperCap(t, 5e-3)
	d := device.New(device.DefaultCosts(), cap)
	p := &silentVolatileProgram{totalOps: 10_000_000}
	res := (&Runner{MaxBoots: 20, AssumeProgress: true}).Run(d, p)
	if res.Completed {
		t.Fatal("cannot complete")
	}
	if !errors.Is(res.Err, ErrBootLimit) {
		t.Fatalf("err = %v, want ErrBootLimit (heuristic should be off)", res.Err)
	}
}

func TestWastedWorkBounded(t *testing.T) {
	// With per-chunk commits, re-executed work per outage is at most
	// one chunk: total charged ops <= chunks*chunkOps + boots*(chunkOps+overhead).
	cap := paperCap(t, 5e-3)
	d := device.New(device.DefaultCosts(), cap)
	p := &chunkProgram{totalChunks: 50, chunkOps: 200000}
	res := (&Runner{}).Run(d, p)
	if !res.Completed {
		t.Fatalf("did not complete: %+v", res)
	}
	s := d.Stats()
	usefulOps := float64(50 * 200000)
	chargedCPU := s.Energy[device.CatCPU] / device.DefaultCosts().CPUCyclenJ
	maxWaste := float64(res.Boots+1) * 200000
	if chargedCPU > usefulOps+maxWaste {
		t.Errorf("charged %v op-cycles, useful %v, allowed waste %v",
			chargedCPU, usefulOps, maxWaste)
	}
}

// ------------------------------------------------------------------
// Ledger, diagnosis and fast-forward coverage (PR 5).

// TestReporterlessCheckpointerManyBootsCompletes is the regression
// test for the documented misdetection of the old cycle-fingerprint
// heuristic: a reporterless checkpointing program with a fixed
// per-boot cost needing far more than StagnationLimit boots must
// complete without AssumeProgress — its advancing persistent-write
// log is the exact evidence of progress the fingerprint could not see.
func TestReporterlessCheckpointerManyBootsCompletes(t *testing.T) {
	cap := paperCap(t, 5e-3)
	d := device.New(device.DefaultCosts(), cap)
	// ~10 chunks per 0.38 mJ charge → ~25 boots, >> StagnationLimit 8.
	p := &silentChunkProgram{totalChunks: 250, chunkOps: 100000}
	res := (&Runner{}).Run(d, p)
	if !res.Completed {
		t.Fatalf("reporterless checkpointer misdetected: %+v (diagnosis %s)", res, res.Diagnosis)
	}
	if res.Boots <= 8 {
		t.Fatalf("boots = %d, want > StagnationLimit to exercise the fix", res.Boots)
	}
	if p.pos.Peek() != 250 {
		t.Errorf("final position = %d, want 250", p.pos.Peek())
	}
}

func TestDiagnosisKinds(t *testing.T) {
	mk := func(watts float64) *device.Device {
		return device.New(device.DefaultCosts(), paperCap(t, watts))
	}
	t.Run("completed", func(t *testing.T) {
		res := (&Runner{}).Run(mk(5e-3), &chunkProgram{totalChunks: 100, chunkOps: 100000})
		if res.Diagnosis.Kind != DiagCompleted {
			t.Fatalf("diagnosis = %s", res.Diagnosis)
		}
	})
	t.Run("frozen-progress", func(t *testing.T) {
		res := (&Runner{}).Run(mk(5e-3), &volatileProgram{totalOps: 10_000_000})
		if res.Diagnosis.Kind != DiagFrozenProgress {
			t.Fatalf("diagnosis = %s", res.Diagnosis)
		}
		if res.Diagnosis.Window < 8 {
			t.Errorf("window = %d, want >= StagnationLimit", res.Diagnosis.Window)
		}
	})
	t.Run("no-persistent-writes", func(t *testing.T) {
		res := (&Runner{}).Run(mk(5e-3), &silentVolatileProgram{totalOps: 10_000_000})
		if res.Diagnosis.Kind != DiagNoPersistentWrites {
			t.Fatalf("diagnosis = %s", res.Diagnosis)
		}
	})
	t.Run("exhausted", func(t *testing.T) {
		res := (&Runner{}).Run(mk(0), &chunkProgram{totalChunks: 1000, chunkOps: 100000})
		if res.Diagnosis.Kind != DiagExhausted {
			t.Fatalf("diagnosis = %s", res.Diagnosis)
		}
	})
	t.Run("boot-limit", func(t *testing.T) {
		res := (&Runner{MaxBoots: 3}).Run(mk(5e-3), &chunkProgram{totalChunks: 100000, chunkOps: 100000})
		if res.Diagnosis.Kind != DiagBootLimit {
			t.Fatalf("diagnosis = %s", res.Diagnosis)
		}
	})
}

// identicalRecommitProgram re-writes the same persistent value every
// boot without progressing — the exact "identical writes" stagnation
// case (e.g. a checkpointer whose single chunk never fits the budget).
type identicalRecommitProgram struct {
	pos device.NVWord
}

func (p *identicalRecommitProgram) Boot(d *device.Device) error {
	for {
		p.pos.Write(d, device.CatCheckpoint, 7)
		d.CPUOps(10000)
	}
}

func TestIdenticalWritesStagnationDetected(t *testing.T) {
	cap := paperCap(t, 5e-3)
	d := device.New(device.DefaultCosts(), cap)
	res := (&Runner{}).Run(d, &identicalRecommitProgram{})
	if res.Completed {
		t.Fatal("cannot complete")
	}
	if !errors.Is(res.Err, ErrStagnant) {
		t.Fatalf("err = %v, want ErrStagnant", res.Err)
	}
	if res.Diagnosis.Kind != DiagIdenticalWrites {
		t.Fatalf("diagnosis = %s, want %s", res.Diagnosis, DiagIdenticalWrites)
	}
	if res.Boots > 12 {
		t.Errorf("took %d boots", res.Boots)
	}
}

func TestLedgerBoundedAndChronological(t *testing.T) {
	cap := paperCap(t, 5e-3)
	d := device.New(device.DefaultCosts(), cap)
	res := (&Runner{LedgerDepth: 6, NoFastForward: true}).Run(d,
		&chunkProgram{totalChunks: 200, chunkOps: 100000})
	if !res.Completed {
		t.Fatalf("did not complete: %+v", res)
	}
	if len(res.Ledger) != 6 {
		t.Fatalf("ledger holds %d records, want depth 6", len(res.Ledger))
	}
	for i, rec := range res.Ledger {
		if i > 0 && rec.Boot != res.Ledger[i-1].Boot+1 {
			t.Errorf("ledger not chronological: boot %d after %d", rec.Boot, res.Ledger[i-1].Boot)
		}
		if rec.Cycles == 0 {
			t.Errorf("record %d charged no cycles", i)
		}
	}
	last := res.Ledger[len(res.Ledger)-1]
	if last.Failed {
		t.Error("final record of a completed run marked failed")
	}
	if last.Boot != res.Boots {
		t.Errorf("final record boot %d, want %d", last.Boot, res.Boots)
	}
	// Failed records carry the recharge; the final one does not.
	for _, rec := range res.Ledger[:len(res.Ledger)-1] {
		if !rec.Failed || rec.OffSec <= 0 {
			t.Errorf("mid-run record %+v lacks recharge accounting", rec)
		}
	}
}

// skipChunkProgram is chunkProgram plus the Skippable contract: its
// steady-state boots all execute the same number of fixed-cost chunks.
type skipChunkProgram struct {
	chunkProgram
}

func (p *skipChunkProgram) ProgressTarget() uint64 { return p.totalChunks }

func (p *skipChunkProgram) SkipBoots(k, delta uint64) {
	p.pos.Poke(p.pos.Peek() + k*delta)
}

// runPair runs the same workload with and without fast-forward on
// identical devices and returns both results plus both stat snapshots.
func runPair(t *testing.T, mkProfile func() harvest.Profile, mkProg func() Program,
	runner Runner) (ff, slow Result, ffStats, slowStats device.Stats) {
	t.Helper()
	run := func(noFF bool) (Result, device.Stats) {
		c, err := harvest.NewCapacitor(harvest.PaperConfig(), mkProfile())
		if err != nil {
			t.Fatal(err)
		}
		d := device.New(device.DefaultCosts(), c)
		r := runner
		r.NoFastForward = noFF
		res := r.Run(d, mkProg())
		return res, d.Stats()
	}
	ff, ffStats = run(false)
	slow, slowStats = run(true)
	return
}

// TestFastForwardBitIdentical is the equivalence property test: for
// every profile and workload size, the fast-forwarded run must produce
// bit-identical Result (Completed/Boots/Err) and device energy stats
// to the boot-by-boot simulation.
func TestFastForwardBitIdentical(t *testing.T) {
	profiles := []struct {
		name string
		mk   func() harvest.Profile
	}{
		{"const", func() harvest.Profile { return harvest.ConstantProfile{Watts: 5e-3} }},
		{"square", func() harvest.Profile { return harvest.SquareProfile{PeakWatts: 8e-3, Period: 0.05, Duty: 0.5} }},
		{"sine", func() harvest.Profile { return harvest.SineProfile{PeakWatts: 8e-3, Period: 0.05} }},
	}
	workloads := []struct {
		name   string
		chunks uint64
		ops    int
	}{
		{"fine-many-boots", 30000, 1000},
		{"coarse", 2000, 20000},
		{"one-charge", 50, 1000},
	}
	for _, pr := range profiles {
		for _, w := range workloads {
			t.Run(pr.name+"/"+w.name, func(t *testing.T) {
				var progs []Program
				mkProg := func() Program {
					p := &skipChunkProgram{chunkProgram{totalChunks: w.chunks, chunkOps: w.ops}}
					progs = append(progs, p)
					return p
				}
				ff, slow, ffStats, slowStats := runPair(t, pr.mk, mkProg, Runner{MaxBoots: 100000})
				if ff.Completed != slow.Completed || ff.Boots != slow.Boots {
					t.Fatalf("result diverged: ff %v/%d vs slow %v/%d",
						ff.Completed, ff.Boots, slow.Completed, slow.Boots)
				}
				if (ff.Err == nil) != (slow.Err == nil) ||
					(ff.Err != nil && ff.Err.Error() != slow.Err.Error()) {
					t.Fatalf("err diverged: %v vs %v", ff.Err, slow.Err)
				}
				if ffStats != slowStats {
					t.Fatalf("device stats diverged:\nff   %+v\nslow %+v", ffStats, slowStats)
				}
				if p0, p1 := progs[0].(*skipChunkProgram), progs[1].(*skipChunkProgram); p0.pos.Peek() != p1.pos.Peek() {
					t.Fatalf("persistent state diverged: %d vs %d", p0.pos.Peek(), p1.pos.Peek())
				}
			})
		}
	}
}

// TestFastForwardActuallySkips pins that the jump engages: on a
// constant profile the supply fixed point is immediate, so a many-boot
// Skippable run must simulate only a handful of boots.
func TestFastForwardActuallySkips(t *testing.T) {
	mk := func() harvest.Profile { return harvest.ConstantProfile{Watts: 5e-3} }
	prog := func() Program {
		return &skipChunkProgram{chunkProgram{totalChunks: 30000, chunkOps: 1000}}
	}
	ff, _, _, _ := runPair(t, mk, prog, Runner{MaxBoots: 100000})
	if !ff.Completed {
		t.Fatalf("did not complete: %+v", ff)
	}
	if ff.Boots < 100 {
		t.Fatalf("boots = %d: workload too small to prove anything", ff.Boots)
	}
	// Warm-up (two steady cycles to prove the fixed point) plus the
	// skip margin is all the real simulation a steady run may need.
	if executed := ff.Boots - ff.Diagnosis.FastForwarded; executed > 8 {
		t.Fatalf("simulated %d boots (%d fast-forwarded of %d)",
			executed, ff.Diagnosis.FastForwarded, ff.Boots)
	}
}

// TestFastForwardToBootLimit: a reporterless AssumeProgress run whose
// persistent state is provably fixed jumps straight to MaxBoots,
// bit-identical to simulating every boot.
func TestFastForwardToBootLimit(t *testing.T) {
	mk := func() harvest.Profile { return harvest.ConstantProfile{Watts: 5e-3} }
	prog := func() Program { return &silentVolatileProgram{totalOps: 10_000_000} }
	runner := Runner{MaxBoots: 5000, AssumeProgress: true}
	ff, slow, ffStats, slowStats := runPair(t, mk, prog, runner)
	if !errors.Is(ff.Err, ErrBootLimit) || !errors.Is(slow.Err, ErrBootLimit) {
		t.Fatalf("errs = %v / %v, want ErrBootLimit", ff.Err, slow.Err)
	}
	if ff.Boots != slow.Boots || ffStats != slowStats {
		t.Fatalf("diverged: ff %d boots %+v\nslow %d boots %+v", ff.Boots, ffStats, slow.Boots, slowStats)
	}
	if ff.Diagnosis.FastForwarded < 4900 {
		t.Fatalf("fast-forwarded only %d of %d boots", ff.Diagnosis.FastForwarded, ff.Boots)
	}
}
