package fleet

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"ehdl/internal/core"
	"ehdl/internal/fixed"
	"ehdl/internal/harvest"
	"ehdl/internal/intermittent"
	"ehdl/internal/nn"
	"ehdl/internal/quant"
)

// tinyModel quantizes a small untrained stack: bit-level behaviour
// does not depend on training, so the fleet exercises the full
// device/engine/profile path without a training budget.
func tinyModel(t *testing.T) *quant.Model {
	t.Helper()
	arch := &nn.Arch{
		Name: "tiny", InShape: [3]int{1, 1, 16}, NumClasses: 4,
		Specs: []nn.LayerSpec{
			{Kind: "bcm", In: 16, Out: 8, K: 8},
			{Kind: "relu", N: 8},
			{Kind: "dense", In: 8, Out: 4},
		},
	}
	rng := rand.New(rand.NewSource(1))
	net := arch.Build(rng)
	calib := make([][]float64, 3)
	for i := range calib {
		x := make([]float64, 16)
		for j := range x {
			x[j] = rng.Float64()*2 - 1
		}
		calib[i] = x
	}
	m, err := quant.Quantize(net, arch, calib)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// testFleet builds a mixed fleet: varying engines, profiles and
// per-device power levels, including one deliberately dead source.
func testFleet(t *testing.T, m *quant.Model) []Scenario {
	t.Helper()
	input := make([]fixed.Q15, 16)
	for i := range input {
		input[i] = fixed.FromFloat(0.1 * float64(i%5))
	}
	engines := []core.EngineKind{core.EngineACEFLEX, core.EngineSONIC, core.EngineTAILS}
	var scenarios []Scenario
	for i := 0; i < 18; i++ {
		setup := core.PaperHarvestSetup()
		switch i % 3 {
		case 0:
			setup.Profile = harvest.SquareProfile{PeakWatts: 3e-3 + 1e-4*float64(i), Period: 0.1, Duty: 0.5}
		case 1:
			setup.Profile = harvest.SineProfile{PeakWatts: 4e-3 + 1e-4*float64(i), Period: 0.2}
		case 2:
			setup.Profile = harvest.ConstantProfile{Watts: 2e-3 + 1e-4*float64(i)}
		}
		scenarios = append(scenarios, Scenario{
			Name:   fmt.Sprintf("dev%02d", i),
			Engine: engines[i%len(engines)],
			Model:  m,
			Input:  input,
			Setup:  setup,
		})
	}
	// A dead device: zero harvest after the first charge, with a
	// capacitor too small to finish on that charge.
	dead := core.PaperHarvestSetup()
	dead.Profile = harvest.ConstantProfile{}
	dead.Config.CapacitanceF = 5e-7 // ~1.9 µJ usable < one ~2.7 µJ inference
	scenarios = append(scenarios, Scenario{
		Name: "dev-dead", Engine: core.EngineACEFLEX, Model: m, Input: input, Setup: dead,
	})
	return scenarios
}

func TestFleetRunDeterministicAndOrdered(t *testing.T) {
	m := tinyModel(t)
	scenarios := testFleet(t, m)

	a := Run(scenarios, 4)
	b := Run(scenarios, 1) // serial reference
	c := Run(scenarios, 16)

	if len(a.Results) != len(scenarios) {
		t.Fatalf("results = %d, want %d", len(a.Results), len(scenarios))
	}
	for i, r := range a.Results {
		if r.Name != scenarios[i].Name {
			t.Fatalf("row %d is %q, want %q (order broken)", i, r.Name, scenarios[i].Name)
		}
	}
	// Host time differs run to run; everything else must be identical.
	a.HostSeconds, b.HostSeconds, c.HostSeconds = 0, 0, 0
	if !fleetEqual(a, b) || !fleetEqual(a, c) {
		t.Fatalf("fleet results depend on worker count:\n%+v\n%+v", a.Results, b.Results)
	}
}

// fleetEqual compares reports field by field; errors are compared by
// message (errors.Is identity does not survive reflect.DeepEqual on
// wrapped errors from different runs).
func fleetEqual(a, b Report) bool {
	if a.Devices != b.Devices || a.Completed != b.Completed ||
		a.TotalBoots != b.TotalBoots || a.CompletionRate != b.CompletionRate ||
		a.WallP50Sec != b.WallP50Sec || a.WallP90Sec != b.WallP90Sec || a.WallP99Sec != b.WallP99Sec {
		return false
	}
	for i := range a.Results {
		x, y := a.Results[i], b.Results[i]
		xe, ye := fmt.Sprint(x.Err), fmt.Sprint(y.Err)
		x.Err, y.Err = nil, nil
		if !reflect.DeepEqual(x, y) || xe != ye {
			return false
		}
	}
	return true
}

func TestFleetAggregates(t *testing.T) {
	m := tinyModel(t)
	scenarios := testFleet(t, m)
	rep := Run(scenarios, 0)

	if rep.Devices != len(scenarios) {
		t.Errorf("devices = %d", rep.Devices)
	}
	// The tiny model fits the paper budget: every live device
	// completes; the dead one must not.
	if rep.Completed != len(scenarios)-1 {
		t.Errorf("completed = %d, want %d", rep.Completed, len(scenarios)-1)
	}
	deadRow := rep.Results[len(rep.Results)-1]
	if deadRow.Completed {
		t.Error("dead device completed")
	}
	if !errors.Is(deadRow.Err, intermittent.ErrExhausted) {
		t.Errorf("dead device err = %v, want ErrExhausted", deadRow.Err)
	}
	if !(rep.WallP50Sec <= rep.WallP90Sec && rep.WallP90Sec <= rep.WallP99Sec) {
		t.Errorf("percentiles not ordered: %v %v %v", rep.WallP50Sec, rep.WallP90Sec, rep.WallP99Sec)
	}
	if rep.WallP99Sec <= 0 {
		t.Error("p99 wall time not positive")
	}
	want := float64(rep.Completed) / float64(rep.Devices)
	if rep.CompletionRate != want {
		t.Errorf("completion rate %v, want %v", rep.CompletionRate, want)
	}
	out := RenderReport(rep)
	if !strings.Contains(out, "dev-dead") || !strings.Contains(out, "p50") {
		t.Errorf("render missing content:\n%s", out)
	}
}

func TestFleetScenarioErrorsDoNotAbort(t *testing.T) {
	m := tinyModel(t)
	input := make([]fixed.Q15, 16)
	bad := core.PaperHarvestSetup()
	bad.Profile = harvest.SquareProfile{PeakWatts: 5e-3, Period: 0.1} // Duty 0: invalid
	scenarios := []Scenario{
		{Name: "bad-profile", Engine: core.EngineACEFLEX, Model: m, Input: input, Setup: bad},
		{Name: "no-model", Engine: core.EngineACEFLEX, Setup: core.PaperHarvestSetup()},
		{Name: "good", Engine: core.EngineACEFLEX, Model: m, Input: input, Setup: core.PaperHarvestSetup()},
	}
	rep := Run(scenarios, 2)
	if rep.Results[0].Err == nil {
		t.Error("invalid profile produced no error")
	}
	if rep.Results[1].Err == nil {
		t.Error("missing model produced no error")
	}
	if !rep.Results[2].Completed || rep.Results[2].Err != nil {
		t.Errorf("good scenario: %+v", rep.Results[2])
	}
	if rep.Completed != 1 {
		t.Errorf("completed = %d, want 1", rep.Completed)
	}
}

func TestForEach(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		got := make([]int, 100)
		ForEach(len(got), workers, func(i int) { got[i] = i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d = %d", workers, i, v)
			}
		}
	}
	ForEach(0, 4, func(int) { t.Fatal("fn called for n=0") })
}

func TestPercentile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct{ p, want float64 }{{50, 5}, {90, 9}, {99, 10}, {1, 1}}
	for _, c := range cases {
		if got := percentile(vals, c.p); got != c.want {
			t.Errorf("p%v = %v, want %v", c.p, got, c.want)
		}
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
}
