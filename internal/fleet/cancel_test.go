package fleet

// Cancellation and shared-pool regression suite for RunStream
// (StreamOptions.Context / StreamOptions.Pool): a cancelled run must
// return promptly with every shared worker-pool slot released, write
// a checkpoint whose frontier covers only whole committed chunks, and
// resume from that checkpoint to output byte-identical to an
// uninterrupted run's.

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

// cancelSource cycles the mixed test fleet out to n devices.
func cancelSource(t *testing.T, n int) Source {
	t.Helper()
	scenarios := testFleet(t, tinyModel(t))
	return FuncSource(n, func(i int) (Scenario, error) {
		s := scenarios[i%len(scenarios)]
		s.Name = s.Name + "x"
		return s, nil
	})
}

// TestRunStreamCancelResumesBitIdentical is the cancellation
// contract: cancel mid-run, then resume from the interrupt checkpoint
// and require rows and report bit-identical to the uninterrupted run.
// Along the way it pins the two invariants the fleet service depends
// on: the shared pool ends fully released, and the checkpoint
// frontier sits on a chunk boundary (no partial chunk leaks past it).
func TestRunStreamCancelResumesBitIdentical(t *testing.T) {
	const (
		n        = 400
		chunk    = 16
		cancelAt = 100
	)
	src := cancelSource(t, n)
	dir := t.TempDir()

	// Uninterrupted reference.
	refPath := filepath.Join(dir, "ref.ndjson")
	refSink, err := NewNDJSONFile(refPath, 0)
	if err != nil {
		t.Fatal(err)
	}
	refRep, err := RunStream(src, StreamOptions{Workers: 4, ChunkSize: chunk, Sink: refSink})
	if err != nil {
		t.Fatal(err)
	}
	if err := refSink.Close(); err != nil {
		t.Fatal(err)
	}
	refRows, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}

	// Cancelled run: a sink wrapper pulls the trigger once row
	// cancelAt has been delivered, while workers are still simulating.
	pool := NewWorkerPool(4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rowsPath := filepath.Join(dir, "rows.ndjson")
	ckPath := filepath.Join(dir, "ck.ehdl")
	rowsSink, err := NewNDJSONFile(rowsPath, 0)
	if err != nil {
		t.Fatal(err)
	}
	spec := &CheckpointSpec{Path: ckPath, Every: 2 * chunk, Fingerprint: "cancel-test"}
	_, err = RunStream(src, StreamOptions{
		Workers:   4,
		ChunkSize: chunk,
		Pool:      pool,
		Context:   ctx,
		Sink: MultiSink(rowsSink, SinkFunc(func(i int, r Result) error {
			if i >= cancelAt {
				cancel()
			}
			return nil
		})),
		Checkpoint: spec,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want a context.Canceled wrap", err)
	}
	if err := rowsSink.Close(); err != nil {
		t.Fatal(err)
	}
	if held := pool.InUse(); held != 0 {
		t.Fatalf("cancelled run left %d pool slots held", held)
	}

	st, err := LoadCheckpoint(ckPath)
	if err != nil {
		t.Fatalf("cancelled run left no loadable checkpoint: %v", err)
	}
	if st.Rows <= 0 || st.Rows >= n {
		t.Fatalf("interrupt checkpoint frontier %d, want inside (0, %d)", st.Rows, n)
	}
	if st.Rows%chunk != 0 {
		t.Fatalf("frontier %d is not a chunk boundary (chunk %d): a partial chunk leaked past it", st.Rows, chunk)
	}

	// Resume and require bit-identity with the uninterrupted run.
	resumeSink, err := ResumeNDJSONFile(rowsPath, st.Rows-st.Start, st.Rows)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunStream(src, StreamOptions{
		Workers:    4,
		ChunkSize:  chunk,
		Pool:       pool,
		Sink:       resumeSink,
		Checkpoint: spec,
		Resume:     st,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := resumeSink.Close(); err != nil {
		t.Fatal(err)
	}
	gotRows, err := os.ReadFile(rowsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotRows, refRows) {
		t.Fatalf("cancel+resume rows differ from uninterrupted run (%d vs %d bytes)", len(gotRows), len(refRows))
	}
	if !reflect.DeepEqual(aggFields(rep), aggFields(refRep)) {
		t.Fatalf("cancel+resume report differs:\n%+v\nvs\n%+v", aggFields(rep), aggFields(refRep))
	}
}

// TestRunStreamPreCancelled: a context cancelled before the call
// fails fast without simulating anything or touching the pool.
func TestRunStreamPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pool := NewWorkerPool(2)
	var simulated atomic.Int64
	src := FuncSource(64, func(i int) (Scenario, error) {
		simulated.Add(1)
		return Scenario{}, nil
	})
	_, err := RunStream(src, StreamOptions{Workers: 2, Pool: pool, Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if pool.InUse() != 0 {
		t.Fatalf("pre-cancelled run left %d slots held", pool.InUse())
	}
	if simulated.Load() != 0 {
		t.Fatalf("pre-cancelled run simulated %d devices", simulated.Load())
	}
}

// TestWorkerPoolSharedAcrossRuns: concurrent RunStream calls over one
// tiny pool must all complete (no slot deadlock even when reorder
// windows block) and produce the same bytes as solo runs.
func TestWorkerPoolSharedAcrossRuns(t *testing.T) {
	const runs = 3
	pool := NewWorkerPool(2)
	srcs := make([]Source, runs)
	for k := range srcs {
		srcs[k] = cancelSource(t, 60+10*k)
	}

	solo := make([][]byte, runs)
	for k, src := range srcs {
		var buf bytes.Buffer
		if _, err := RunStream(src, StreamOptions{Workers: 2, ChunkSize: 4, Sink: NewNDJSONSink(&buf)}); err != nil {
			t.Fatal(err)
		}
		solo[k] = append([]byte(nil), buf.Bytes()...)
	}

	type out struct {
		rows []byte
		err  error
	}
	results := make([]out, runs)
	done := make(chan int, runs)
	for k := range srcs {
		k := k
		go func() {
			var buf bytes.Buffer
			_, err := RunStream(srcs[k], StreamOptions{
				Workers:   4, // more goroutines than slots, deliberately
				ChunkSize: 4,
				Pool:      pool,
				Sink:      NewNDJSONSink(&buf),
			})
			results[k] = out{rows: buf.Bytes(), err: err}
			done <- k
		}()
	}
	deadline := time.After(2 * time.Minute)
	for i := 0; i < runs; i++ {
		select {
		case <-done:
		case <-deadline:
			t.Fatalf("shared-pool runs deadlocked (%d of %d finished)", i, runs)
		}
	}
	for k := range results {
		if results[k].err != nil {
			t.Fatalf("run %d: %v", k, results[k].err)
		}
		if !bytes.Equal(results[k].rows, solo[k]) {
			t.Fatalf("run %d rows differ between shared-pool and solo execution", k)
		}
	}
	if pool.InUse() != 0 {
		t.Fatalf("completed runs left %d slots held", pool.InUse())
	}
}
