package fleet

// WorkerPool is a slot semaphore shared by concurrent RunStream
// calls: the fleet service runs many sweeps at once, and the pool is
// what keeps their combined simulation concurrency bounded by one
// process-wide budget instead of workers × jobs.
//
// Slots gate simulation only. A RunStream worker acquires a slot,
// simulates one chunk of devices, and releases the slot before
// delivering the chunk's rows to the ordered sink — delivery can
// block on the reorder window behind rows another run (or another
// worker waiting for a slot) still owes, and holding a slot across
// that wait could deadlock a full pool. Because blocked deliverers
// hold no slots, every slot is always doing simulation work and the
// pool drains no matter how many runs share it.

import (
	"context"
	"runtime"
)

// WorkerPool bounds simulation concurrency across any number of
// concurrent RunStream calls (StreamOptions.Pool).
type WorkerPool struct {
	sem chan struct{}
}

// NewWorkerPool returns a pool of n slots (n <= 0: GOMAXPROCS).
func NewWorkerPool(n int) *WorkerPool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &WorkerPool{sem: make(chan struct{}, n)}
}

// Size is the pool's slot count.
func (p *WorkerPool) Size() int { return cap(p.sem) }

// InUse is the number of currently held slots. It is inherently
// racy against concurrent acquire/release; use it for metrics and
// for asserting quiescence (no runs in flight).
func (p *WorkerPool) InUse() int { return len(p.sem) }

// acquire takes a slot, giving up when ctx is cancelled or the run
// aborts. It reports whether the slot was acquired.
func (p *WorkerPool) acquire(ctx context.Context, abort <-chan struct{}) bool {
	select {
	case p.sem <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	case <-abort:
		return false
	}
}

// Release returns a slot taken by acquire.
func (p *WorkerPool) Release() { <-p.sem }
