package fleet

// Checkpointing and range partitioning for streaming fleet runs.
//
// A checkpoint is the consistent triple RunStream maintains as its
// commit frontier advances: the number of rows committed (contiguous
// from the partition start), the aggregator snapshot over exactly
// those rows, and the run's identity (fleet size, partition, exact
// threshold, and a caller-supplied scenario/config fingerprint).
// Checkpoints are written through internal/artifact — checksummed,
// versioned, temp-file + atomic rename — so a crash mid-write leaves
// the previous checkpoint intact, never a torn one.
//
// The same container doubles as the shard artifact of a partitioned
// run: a shard directory holds the final checkpoint (Rows == End)
// under ShardMetaFile next to its NDJSON row file, and MergeShards
// folds a set of them back into the single-process report and row
// stream (see merge.go).

import (
	"errors"
	"fmt"

	"ehdl/internal/artifact"
)

// Partition restricts a run to one contiguous device range of the
// fleet: shard Index of Of equal splits. The zero value means "the
// whole fleet" (one shard of one). Global device indices are
// preserved — shard i of a scenario file simulates exactly the rows a
// single-process run would produce for its range, so k shards
// concatenate back bit-identically.
type Partition struct {
	Index, Of int
}

// norm maps the zero value to the whole-fleet partition.
func (p Partition) norm() Partition {
	if p.Of == 0 && p.Index == 0 {
		return Partition{Index: 0, Of: 1}
	}
	return p
}

// validate rejects malformed partitions.
func (p Partition) validate() error {
	p = p.norm()
	if p.Of < 1 || p.Index < 0 || p.Index >= p.Of {
		return fmt.Errorf("fleet: invalid partition %d/%d (want 0 <= index < of)", p.Index, p.Of)
	}
	return nil
}

// Range returns the partition's half-open global device range for a
// fleet of n devices: equal splits with the remainder spread over the
// leading shards, covering [0, n) exactly across all Of shards.
func (p Partition) Range(n int) (start, end int) {
	p = p.norm()
	return p.Index * n / p.Of, (p.Index + 1) * n / p.Of
}

// DefaultCheckpointEvery is the default row interval between
// checkpoint writes. At typical simulation rates (hundreds to
// thousands of devices per second per core) this bounds lost work to
// well under a minute while keeping the write itself invisible next
// to simulation time.
const DefaultCheckpointEvery = 100_000

// CheckpointSpec configures periodic checkpointing of a streaming
// run (StreamOptions.Checkpoint).
type CheckpointSpec struct {
	// Path is the checkpoint file, rewritten atomically as the commit
	// frontier advances and once more on completion.
	Path string
	// Every is the minimum number of committed rows between writes
	// (<= 0: DefaultCheckpointEvery).
	Every int
	// Fingerprint identifies the run's scenario/config; it is embedded
	// in the checkpoint and a resume whose fingerprint differs is
	// rejected with ErrCheckpointMismatch. cli.FleetFingerprint builds
	// it for the CLIs.
	Fingerprint string
}

// every resolves the interval.
func (c *CheckpointSpec) every() int {
	if c.Every <= 0 {
		return DefaultCheckpointEvery
	}
	return c.Every
}

// checkpointKind is the artifact-container kind of checkpoint and
// shard-meta files.
const checkpointKind = "fleet.Checkpoint"

// checkpointVersion is the payload schema version inside the
// container.
const checkpointVersion = 1

// Typed checkpoint failures.
var (
	// ErrCheckpointMismatch: the checkpoint belongs to a different run
	// (fingerprint, fleet size, partition or percentile threshold
	// differ) — resuming it would silently corrupt the output.
	ErrCheckpointMismatch = errors.New("checkpoint does not match this run")
	// ErrCheckpointVersion: the checkpoint was written by an
	// incompatible version of this package.
	ErrCheckpointVersion = errors.New("incompatible checkpoint version")
)

// CheckpointState is a loaded checkpoint: the resumable state of a
// (possibly partitioned) streaming run. Rows [Start, Rows) are
// committed — aggregated into AggSnap and delivered to the sink — and
// a resumed run continues at Rows. A completed run or shard has
// Rows == End.
type CheckpointState struct {
	Version     int
	Fingerprint string
	// Devices is the full fleet size (src.Len()), across all shards.
	Devices int
	// Part is the partition this state belongs to; Start/End its
	// global device range.
	Part       Partition
	Start, End int
	// Rows is the commit frontier: global row indices [Start, Rows)
	// are aggregated and delivered.
	Rows int
	// Threshold is the resolved exact-percentile threshold the
	// aggregator ran with.
	Threshold int
	// AggSnap is the Agg.Snapshot over exactly rows [Start, Rows).
	AggSnap []byte
}

// write atomically persists the state (checksummed container, temp
// file + rename).
func (st *CheckpointState) write(path string) error {
	return artifact.WriteFile(path, checkpointKind, st)
}

// LoadCheckpoint reads and verifies the checkpoint (or shard meta)
// at path. Container-level corruption surfaces as the artifact
// package's typed errors; version drift as ErrCheckpointVersion.
func LoadCheckpoint(path string) (*CheckpointState, error) {
	var st CheckpointState
	if err := artifact.ReadFile(path, checkpointKind, &st); err != nil {
		return nil, err
	}
	if st.Version != checkpointVersion {
		return nil, fmt.Errorf("%s: %w: file has v%d, this build reads v%d",
			path, ErrCheckpointVersion, st.Version, checkpointVersion)
	}
	if st.Rows < st.Start || st.Rows > st.End || st.Start < 0 || st.End > st.Devices {
		return nil, fmt.Errorf("%s: %w: frontier %d outside range [%d, %d] of %d devices",
			path, ErrCheckpointVersion, st.Rows, st.Start, st.End, st.Devices)
	}
	return &st, nil
}

// compatible verifies the state matches the run being resumed.
func (st *CheckpointState) compatible(fingerprint string, n int, part Partition, threshold int) error {
	part = part.norm()
	start, end := part.Range(n)
	switch {
	case st.Fingerprint != fingerprint:
		return fmt.Errorf("%w: checkpoint fingerprint %.12s.. vs run %.12s..",
			ErrCheckpointMismatch, st.Fingerprint, fingerprint)
	case st.Devices != n:
		return fmt.Errorf("%w: checkpoint is for %d devices, run has %d",
			ErrCheckpointMismatch, st.Devices, n)
	case st.Part.norm() != part:
		return fmt.Errorf("%w: checkpoint is for shard %d/%d, run is %d/%d",
			ErrCheckpointMismatch, st.Part.norm().Index, st.Part.norm().Of, part.Index, part.Of)
	case st.Start != start || st.End != end:
		return fmt.Errorf("%w: checkpoint range [%d, %d) vs run [%d, %d)",
			ErrCheckpointMismatch, st.Start, st.End, start, end)
	case st.Threshold != threshold:
		return fmt.Errorf("%w: checkpoint exact-percentile threshold %d, run uses %d",
			ErrCheckpointMismatch, st.Threshold, threshold)
	}
	return nil
}
