package fleet

// NDJSON row sink: one JSON object per device, one line per object,
// in scenario order — the interchange format for fleet-scale runs
// (stream it to disk, split it across hosts, feed it to jq). The
// schema is pinned by TestNDJSONSchema and documented in the README's
// "Fleet at scale" section.
//
// Two sinks live here. NDJSONSink streams to any io.Writer.
// NDJSONFile owns a file: it buffers, implements Flusher (buffer
// flush + fsync, which checkpointing calls before every write), and
// can reopen an interrupted run's file truncated back to the last
// checkpointed row boundary (ResumeNDJSONFile) so a resumed run
// appends exactly where the checkpoint says the frontier is. Both
// enforce the Sink ordering contract: a row that is not exactly the
// next expected index is an error, so an out-of-order regression
// aborts the run instead of silently corrupting the output.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// NDJSONRow is the wire form of one Result row.
type NDJSONRow struct {
	Index     int     `json:"i"`
	Device    string  `json:"device"`
	Engine    string  `json:"engine"`
	Profile   string  `json:"profile,omitempty"`
	Completed bool    `json:"completed"`
	Predicted int     `json:"predicted"`
	Boots     uint64  `json:"boots"`
	ActiveSec float64 `json:"active_s"`
	WallSec   float64 `json:"wall_s"`
	EnergyMJ  float64 `json:"energy_mj"`
	// Diag is the intermittent runner's verdict kind; FFBoots counts
	// boots skipped by the analytic fast-forward (present only when
	// non-zero; included in Boots).
	Diag    string `json:"diag,omitempty"`
	FFBoots uint64 `json:"ff_boots,omitempty"`
	Err     string `json:"err,omitempty"`
	// Memo tags how a memoized run obtained the row ("miss",
	// "hit-full", "hit-compute"); emitted only when the sink's
	// TagMemo is set, because the tag is scheduling-dependent and
	// would break the byte-identical memo-on/memo-off guarantee of
	// the default output.
	Memo string `json:"memo,omitempty"`
}

// makeRow builds the wire form of one result.
func makeRow(i int, r Result, tagMemo bool) NDJSONRow {
	row := NDJSONRow{
		Index:     i,
		Device:    r.Name,
		Engine:    string(r.Engine),
		Profile:   r.Profile,
		Completed: r.Completed,
		Predicted: r.Predicted,
		Boots:     r.Boots,
		ActiveSec: r.ActiveSec,
		WallSec:   r.WallSec,
		EnergyMJ:  r.EnergymJ,
		Diag:      r.Diagnosis,
		FFBoots:   r.FastForwarded,
	}
	if r.Err != nil {
		row.Err = r.Err.Error()
	}
	if tagMemo {
		row.Memo = r.Memo
	}
	return row
}

// NDJSONSink writes one row per line to w. It does not buffer: wrap w
// in a bufio.Writer (and flush it after RunStream returns) when
// writing to a file — or use NDJSONFile, which buffers, fsyncs on
// Flush, and supports checkpoint resume.
type NDJSONSink struct {
	enc  *json.Encoder
	next int

	// TagMemo opts rows into the "memo" hit/miss field. Off by
	// default so memoized and unmemoized runs emit byte-identical
	// output (the tag's hit/miss split varies with scheduling).
	TagMemo bool
}

// NewNDJSONSink returns a sink streaming rows to w, expecting rows
// from index 0.
func NewNDJSONSink(w io.Writer) *NDJSONSink {
	return &NDJSONSink{enc: json.NewEncoder(w)}
}

// NewNDJSONSinkAt returns a sink streaming rows to w, expecting the
// first row at global index start (a partitioned or resumed run).
func NewNDJSONSinkAt(w io.Writer, start int) *NDJSONSink {
	return &NDJSONSink{enc: json.NewEncoder(w), next: start}
}

// Consume implements Sink.
func (s *NDJSONSink) Consume(i int, r Result) error {
	if i != s.next {
		return fmt.Errorf("fleet: NDJSON sink got row %d, want %d", i, s.next)
	}
	s.next++
	return s.enc.Encode(makeRow(i, r, s.TagMemo))
}

// ErrResumeRows: the NDJSON file on disk holds fewer rows than the
// checkpoint's frontier — the file and checkpoint are not from the
// same run (or the file was truncated behind the checkpoint's back).
var ErrResumeRows = errors.New("NDJSON file is behind the checkpoint")

// NDJSONFile is a file-owning NDJSON sink for checkpointable runs:
// buffered writes, Flush = buffer flush + fsync (called by RunStream
// before every checkpoint write), ordering-checked like NDJSONSink,
// and safe for a concurrent Flush during delivery (it locks
// internally). Close flushes and closes the file.
type NDJSONFile struct {
	mu   sync.Mutex
	f    *os.File
	bw   *bufio.Writer
	enc  *json.Encoder
	next int

	// TagMemo is NDJSONSink.TagMemo; leave it off for output that
	// must be byte-identical across memo on/off, shards and resumes.
	TagMemo bool
}

const ndjsonBufSize = 1 << 20

// NewNDJSONFile creates (truncating) the NDJSON file at path,
// expecting the first row at global index start.
func NewNDJSONFile(path string, start int) (*NDJSONFile, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	return newNDJSONFile(f, start), nil
}

// ResumeNDJSONFile reopens the NDJSON file of an interrupted run and
// truncates it back to exactly keep rows — the checkpoint's frontier.
// (The file may hold more: rows flushed after the last checkpoint
// write are simply discarded and re-simulated.) The returned sink
// expects the first row at global index next. A file holding fewer
// than keep complete rows fails with ErrResumeRows.
func ResumeNDJSONFile(path string, keep, next int) (*NDJSONFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	br := bufio.NewReaderSize(f, ndjsonBufSize)
	var off int64
	for row := 0; row < keep; row++ {
		line, err := br.ReadBytes('\n')
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("%s: %w: %d complete rows on disk, checkpoint frontier needs %d",
				path, ErrResumeRows, row, keep)
		}
		off += int64(len(line))
	}
	if err := f.Truncate(off); err != nil {
		f.Close()
		return nil, fmt.Errorf("fleet: truncate %s to row boundary: %w", path, err)
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("fleet: %w", err)
	}
	return newNDJSONFile(f, next), nil
}

func newNDJSONFile(f *os.File, start int) *NDJSONFile {
	bw := bufio.NewWriterSize(f, ndjsonBufSize)
	return &NDJSONFile{f: f, bw: bw, enc: json.NewEncoder(bw), next: start}
}

// Consume implements Sink.
func (s *NDJSONFile) Consume(i int, r Result) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i != s.next {
		return fmt.Errorf("fleet: NDJSON sink got row %d, want %d", i, s.next)
	}
	s.next++
	return s.enc.Encode(makeRow(i, r, s.TagMemo))
}

// Flush implements Flusher: drains the write buffer and fsyncs, so
// every row delivered up to the call survives a SIGKILL. The fsync
// runs outside the sink lock — concurrent Consume calls keep
// streaming while the disk syncs; their rows are past the checkpoint
// frontier anyway, and whether the sync happens to cover them is
// irrelevant (resume truncates back to the frontier).
func (s *NDJSONFile) Flush() error {
	s.mu.Lock()
	err := s.bw.Flush()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return s.f.Sync()
}

// Close flushes and closes the file.
func (s *NDJSONFile) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.bw.Flush(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}
