package fleet

// NDJSON row sink: one JSON object per device, one line per object,
// in scenario order — the interchange format for fleet-scale runs
// (stream it to disk, split it across hosts, feed it to jq). The
// schema is pinned by TestNDJSONSchema and documented in the README's
// "Fleet at scale" section.

import (
	"encoding/json"
	"io"
)

// NDJSONRow is the wire form of one Result row.
type NDJSONRow struct {
	Index     int     `json:"i"`
	Device    string  `json:"device"`
	Engine    string  `json:"engine"`
	Profile   string  `json:"profile,omitempty"`
	Completed bool    `json:"completed"`
	Predicted int     `json:"predicted"`
	Boots     uint64  `json:"boots"`
	ActiveSec float64 `json:"active_s"`
	WallSec   float64 `json:"wall_s"`
	EnergyMJ  float64 `json:"energy_mj"`
	// Diag is the intermittent runner's verdict kind; FFBoots counts
	// boots skipped by the analytic fast-forward (present only when
	// non-zero; included in Boots).
	Diag    string `json:"diag,omitempty"`
	FFBoots uint64 `json:"ff_boots,omitempty"`
	Err     string `json:"err,omitempty"`
	// Memo tags how a memoized run obtained the row ("miss",
	// "hit-full", "hit-compute"); emitted only when the sink's
	// TagMemo is set, because the tag is scheduling-dependent and
	// would break the byte-identical memo-on/memo-off guarantee of
	// the default output.
	Memo string `json:"memo,omitempty"`
}

// NDJSONSink writes one row per line to w. It does not buffer: wrap w
// in a bufio.Writer (and flush it after RunStream returns) when
// writing to a file.
type NDJSONSink struct {
	enc *json.Encoder

	// TagMemo opts rows into the "memo" hit/miss field. Off by
	// default so memoized and unmemoized runs emit byte-identical
	// output (the tag's hit/miss split varies with scheduling).
	TagMemo bool
}

// NewNDJSONSink returns a sink streaming rows to w.
func NewNDJSONSink(w io.Writer) *NDJSONSink {
	return &NDJSONSink{enc: json.NewEncoder(w)}
}

// Consume implements Sink.
func (s *NDJSONSink) Consume(i int, r Result) error {
	row := NDJSONRow{
		Index:     i,
		Device:    r.Name,
		Engine:    string(r.Engine),
		Profile:   r.Profile,
		Completed: r.Completed,
		Predicted: r.Predicted,
		Boots:     r.Boots,
		ActiveSec: r.ActiveSec,
		WallSec:   r.WallSec,
		EnergyMJ:  r.EnergymJ,
		Diag:      r.Diagnosis,
		FFBoots:   r.FastForwarded,
	}
	if r.Err != nil {
		row.Err = r.Err.Error()
	}
	if s.TagMemo {
		row.Memo = r.Memo
	}
	return s.enc.Encode(row)
}
