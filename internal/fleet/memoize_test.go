package fleet

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"ehdl/internal/fleet/memo"
)

// memoFields additionally strips the memo-dependent diagnostics
// (stats snapshot, per-row hit tags) that are scheduling-dependent by
// design — everything else must be bit-identical memo-on vs memo-off.
func memoFields(r Report) Report {
	r = aggFields(r)
	r.Memo = nil
	return r
}

func stripRowTags(rows []Result) []Result {
	out := make([]Result, len(rows))
	for i, r := range rows {
		r.Memo = ""
		out[i] = r
	}
	return out
}

// TestMemoBitIdentical is the tentpole's core contract: with the memo
// on, the report and every NDJSON row are byte-identical to the
// unmemoized pipeline, for any worker count. testFleet mixes all five
// engines, three waveforms and a dead device, so both tiers and the
// miss path are exercised.
func TestMemoBitIdentical(t *testing.T) {
	m := tinyModel(t)
	scenarios := testFleet(t, m)

	var baseBuf bytes.Buffer
	base, err := RunStream(SliceSource(scenarios), StreamOptions{Workers: 4, Sink: NewNDJSONSink(&baseBuf)})
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4, 16} {
		var buf bytes.Buffer
		sink := NewNDJSONSink(&buf)
		rep, err := RunStream(SliceSource(scenarios), StreamOptions{
			Workers: workers,
			Sink:    sink,
			Memo:    memo.New(0),
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Memo == nil {
			t.Fatalf("workers=%d: memoized run reported no memo stats", workers)
		}
		if got := rep.Memo.Hits() + rep.Memo.Misses; got != uint64(len(scenarios)) {
			t.Errorf("workers=%d: %d lookups for %d devices", workers, got, len(scenarios))
		}
		if !reflect.DeepEqual(memoFields(base), memoFields(rep)) {
			t.Fatalf("workers=%d: memoized report diverges:\n%+v\nvs\n%+v",
				workers, memoFields(base), memoFields(rep))
		}
		if !bytes.Equal(baseBuf.Bytes(), buf.Bytes()) {
			t.Fatalf("workers=%d: memoized NDJSON differs from unmemoized", workers)
		}
	}
}

// TestMemoHitCounters: with one worker the schedule is sequential, so
// the counter split is exact — a fleet of identical devices is one
// miss and N-1 full hits.
func TestMemoHitCounters(t *testing.T) {
	m := tinyModel(t)
	proto := testFleet(t, m)[1] // sonic on a square wave
	const n = 12
	scenarios := make([]Scenario, n)
	for i := range scenarios {
		scenarios[i] = proto
		scenarios[i].Name = fmt.Sprintf("clone/%02d", i)
	}
	mm := memo.New(0)
	rep, err := RunStream(SliceSource(scenarios), StreamOptions{Workers: 1, Memo: mm})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Memo
	if s.Misses != 1 || s.FullHits != n-1 || s.Fills == 0 {
		t.Fatalf("stats %+v, want 1 miss and %d full hits", s, n-1)
	}
	if rep.CompletionRate != 1 {
		t.Fatalf("replayed clones did not all complete: %+v", rep)
	}
}

// TestMemoComputeTier: the same (engine, model, input) across
// different waveforms must cross-hit on Tier 2 when the run fits a
// single charge — and the synthesized rows must equal simulated ones.
func TestMemoComputeTier(t *testing.T) {
	m := tinyModel(t)
	all := testFleet(t, m)
	// testFleet devices 1, 7, 13: sonic with ample square, sine and
	// const power — same model and input, three waveforms.
	scenarios := []Scenario{all[1], all[7], all[13]}

	want := Run(scenarios, 1).Results

	mm := memo.New(0)
	sink := &orderSink{t: t}
	rep, err := RunStream(SliceSource(scenarios), StreamOptions{Workers: 1, Memo: mm, Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Memo.ComputeHits != 2 || rep.Memo.Misses != 1 {
		t.Fatalf("stats %+v, want 1 miss then 2 compute hits", rep.Memo)
	}
	for i := range want {
		a, b := want[i], sink.rows[i]
		b.Memo = ""
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("row %d: synthesized %+v, simulated %+v", i, sink.rows[i], want[i])
		}
	}
}

// TestMemoEvictionBitIdentity: a memo far smaller than the fleet
// thrashes its LRU, yet refills reproduce the same bits — capacity
// only trades host time.
func TestMemoEvictionBitIdentity(t *testing.T) {
	m := tinyModel(t)
	scenarios := testFleet(t, m)
	// Visit the fleet twice so evicted keys get re-filled.
	doubled := append(append([]Scenario(nil), scenarios...), scenarios...)

	base, err := RunStream(SliceSource(doubled), StreamOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	mm := memo.New(2)
	rep, err := RunStream(SliceSource(doubled), StreamOptions{Workers: 1, Memo: mm})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Memo.Evictions == 0 {
		t.Fatal("capacity-2 memo over a mixed fleet never evicted")
	}
	if !reflect.DeepEqual(memoFields(base), memoFields(rep)) {
		t.Fatalf("thrashing memo changed the report:\n%+v\nvs\n%+v",
			memoFields(base), memoFields(rep))
	}
}

// TestMemoSharedAcrossRuns: the same memo instance carries warm state
// between RunStream calls — a repeat sweep is all hits and the same
// report.
func TestMemoSharedAcrossRuns(t *testing.T) {
	m := tinyModel(t)
	scenarios := testFleet(t, m)
	mm := memo.New(0)
	first, err := RunStream(SliceSource(scenarios), StreamOptions{Workers: 1, Memo: mm})
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunStream(SliceSource(scenarios), StreamOptions{Workers: 1, Memo: mm})
	if err != nil {
		t.Fatal(err)
	}
	delta := second.Memo.Misses - first.Memo.Misses
	if delta != 0 {
		t.Fatalf("warm sweep missed %d times", delta)
	}
	if !reflect.DeepEqual(memoFields(first), memoFields(second)) {
		t.Fatalf("warm sweep changed the report:\n%+v\nvs\n%+v",
			memoFields(first), memoFields(second))
	}
}

// TestMemoTagRows: opting into TagMemo annotates each NDJSON row with
// its hit kind; the default sink must never emit the key (that is
// what keeps default output byte-identical memo-on/off).
func TestMemoTagRows(t *testing.T) {
	m := tinyModel(t)
	proto := testFleet(t, m)[1]
	scenarios := []Scenario{proto, proto, proto}

	var buf bytes.Buffer
	sink := NewNDJSONSink(&buf)
	sink.TagMemo = true
	if _, err := RunStream(SliceSource(scenarios), StreamOptions{Workers: 1, Memo: memo.New(0), Sink: sink}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if !strings.Contains(lines[0], `"memo":"miss"`) {
		t.Errorf("first row not tagged miss: %s", lines[0])
	}
	for _, line := range lines[1:] {
		if !strings.Contains(line, `"memo":"hit-full"`) {
			t.Errorf("replayed row not tagged hit-full: %s", line)
		}
	}

	// Untagged sink on a memoized run: no memo key anywhere.
	buf.Reset()
	if _, err := RunStream(SliceSource(scenarios), StreamOptions{Workers: 1, Memo: memo.New(0), Sink: NewNDJSONSink(&buf)}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"memo"`) {
		t.Error("default sink leaked memo tags into NDJSON")
	}
}

// TestMemoRender: the report renderer surfaces the memo counters.
func TestMemoRender(t *testing.T) {
	m := tinyModel(t)
	rep, err := RunStream(SliceSource(testFleet(t, m)), StreamOptions{Workers: 2, Memo: memo.New(0)})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderReport(rep)
	if !strings.Contains(out, "memo:") {
		t.Fatalf("render lost the memo line:\n%s", out)
	}
	if out2 := RenderReport(Run(testFleet(t, m), 2)); strings.Contains(out2, "memo:") {
		t.Fatal("unmemoized render shows a memo line")
	}
}
