package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"ehdl/internal/core"
)

// aggFields strips the per-run fields (host time, materialized rows)
// so reports can be compared bit-for-bit.
func aggFields(r Report) Report {
	r.HostSeconds = 0
	r.Results = nil
	return r
}

// TestRunStreamMatchesRun: the streamed report must be bit-identical
// to the materializing wrapper on the same scenarios — percentiles,
// counters and breakdowns alike (the regression the refactor pins).
func TestRunStreamMatchesRun(t *testing.T) {
	m := tinyModel(t)
	scenarios := testFleet(t, m)

	ran := Run(scenarios, 4)
	streamed, err := RunStream(SliceSource(scenarios), StreamOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Results != nil {
		t.Error("sink-less stream materialized rows")
	}
	if !streamed.PercentilesExact {
		t.Error("small fleet did not use exact percentiles")
	}
	if !reflect.DeepEqual(aggFields(ran), aggFields(streamed)) {
		t.Fatalf("streamed aggregates diverge from Run:\n%+v\nvs\n%+v",
			aggFields(ran), aggFields(streamed))
	}
}

// TestRunStreamDeterministicAcrossWorkers: shard merging must not
// depend on scheduling.
func TestRunStreamDeterministicAcrossWorkers(t *testing.T) {
	m := tinyModel(t)
	scenarios := testFleet(t, m)
	var reports []Report
	for _, workers := range []int{1, 3, 16} {
		rep, err := RunStream(SliceSource(scenarios), StreamOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, rep)
	}
	for i := 1; i < len(reports); i++ {
		if !reflect.DeepEqual(aggFields(reports[0]), aggFields(reports[i])) {
			t.Fatalf("report depends on worker count:\n%+v\nvs\n%+v",
				aggFields(reports[0]), aggFields(reports[i]))
		}
	}
}

// orderSink records the delivery order and fails fast on regressions.
type orderSink struct {
	t    *testing.T
	next int
	rows []Result
}

func (s *orderSink) Consume(i int, r Result) error {
	if i != s.next {
		s.t.Errorf("sink got row %d, want %d (order broken)", i, s.next)
	}
	s.next++
	s.rows = append(s.rows, r)
	return nil
}

// TestRunStreamSinkOrdered: rows reach the sink in scenario order for
// any worker count, and match the materialized rows field for field.
func TestRunStreamSinkOrdered(t *testing.T) {
	m := tinyModel(t)
	scenarios := testFleet(t, m)
	want := Run(scenarios, 1).Results
	for _, workers := range []int{1, 4, 16} {
		sink := &orderSink{t: t}
		if _, err := RunStream(SliceSource(scenarios), StreamOptions{Workers: workers, Sink: sink}); err != nil {
			t.Fatal(err)
		}
		if len(sink.rows) != len(scenarios) {
			t.Fatalf("workers=%d: sink saw %d rows, want %d", workers, len(sink.rows), len(scenarios))
		}
		for i := range want {
			a, b := want[i], sink.rows[i]
			ae, be := fmt.Sprint(a.Err), fmt.Sprint(b.Err)
			a.Err, b.Err = nil, nil
			if !reflect.DeepEqual(a, b) || ae != be {
				t.Fatalf("workers=%d: row %d differs: %+v vs %+v", workers, i, want[i], sink.rows[i])
			}
		}
	}
}

// TestReorderWindowBounded: workers that race ahead of a slow oldest
// index must block once they are a window beyond it — pending never
// grows with fleet size, which is what keeps one slow device from
// buffering the whole fleet behind it.
func TestReorderWindowBounded(t *testing.T) {
	sink := &orderSink{t: t}
	w := newReorder(sink, 2, 0) // window = 8
	const total = 40

	var wg sync.WaitGroup
	for i := 1; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if !w.deliver(i, Result{Name: fmt.Sprintf("dev%d", i)}) {
				t.Errorf("deliver(%d) aborted", i)
			}
		}(i)
	}
	// Let the early indices land and the far ones block on the window.
	deadline := time.Now().Add(2 * time.Second)
	for {
		w.mu.Lock()
		n := len(w.pending)
		w.mu.Unlock()
		if n == w.window-1 { // 1..7 inserted; 8+ blocked; 0 outstanding
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pending stuck at %d rows, want %d", n, w.window-1)
		}
		time.Sleep(time.Millisecond)
	}
	if len(sink.rows) != 0 {
		t.Fatalf("sink received %d rows before the oldest index", len(sink.rows))
	}
	// Releasing the oldest index must drain everything, in order.
	if !w.deliver(0, Result{Name: "dev0"}) {
		t.Fatal("deliver(0) aborted")
	}
	wg.Wait()
	w.mu.Lock()
	left := len(w.pending)
	w.mu.Unlock()
	if left != 0 {
		t.Fatalf("%d rows stranded in the window", left)
	}
	if len(sink.rows) != total {
		t.Fatalf("sink received %d rows, want %d", len(sink.rows), total)
	}
}

// TestRunLargeFleetStaysExact: Run materializes every row, so its
// percentiles must stay exact past the streaming default threshold.
func TestRunLargeFleetStaysExact(t *testing.T) {
	// Results, not simulations: pipe synthetic rows through the same
	// aggregator configuration Run uses.
	n := DefaultExactPercentiles + 10
	agg := NewAgg(n)
	for _, r := range syntheticResults(1000, 3) {
		agg.Observe(r)
	}
	for i := 1000; i < n; i++ {
		agg.Observe(Result{WallSec: float64(i%97) * 1e-3, Completed: true})
	}
	if rep := agg.Report(); !rep.PercentilesExact {
		t.Fatal("aggregator sized to the fleet spilled to estimates")
	}
}

// TestRunStreamSourceErrorLandsInRow: a Source failure for one index
// becomes that row's Err — it must not abort the fleet.
func TestRunStreamSourceErrorLandsInRow(t *testing.T) {
	m := tinyModel(t)
	scenarios := testFleet(t, m)
	src := FuncSource(len(scenarios), func(i int) (Scenario, error) {
		if i == 2 {
			return Scenario{}, fmt.Errorf("generator broke")
		}
		return scenarios[i], nil
	})
	collect := &Collector{}
	rep, err := RunStream(src, StreamOptions{Workers: 4, Sink: collect})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Devices != len(scenarios) {
		t.Fatalf("devices = %d, want %d", rep.Devices, len(scenarios))
	}
	if collect.Rows[2].Err == nil || !strings.Contains(collect.Rows[2].Err.Error(), "generator broke") {
		t.Fatalf("row 2 err = %v", collect.Rows[2].Err)
	}
	if collect.Rows[3].Err != nil || !collect.Rows[3].Completed {
		t.Fatalf("row 3 should be unaffected: %+v", collect.Rows[3])
	}
}

// TestRunStreamSinkErrorAborts: a failing sink stops the run and the
// error reaches the caller.
func TestRunStreamSinkErrorAborts(t *testing.T) {
	m := tinyModel(t)
	scenarios := testFleet(t, m)
	sink := SinkFunc(func(i int, r Result) error {
		if i == 3 {
			return fmt.Errorf("disk full")
		}
		return nil
	})
	_, err := RunStream(SliceSource(scenarios), StreamOptions{Workers: 4, Sink: sink})
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("err = %v, want the sink error", err)
	}
}

// TestRunStreamProgress: the final progress callback reports the full
// fleet.
func TestRunStreamProgress(t *testing.T) {
	m := tinyModel(t)
	scenarios := testFleet(t, m)
	var mu sync.Mutex
	var last [2]int
	_, err := RunStream(SliceSource(scenarios), StreamOptions{
		Workers: 4,
		Progress: func(done, total int) {
			mu.Lock()
			last = [2]int{done, total}
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if last != [2]int{len(scenarios), len(scenarios)} {
		t.Fatalf("final progress = %v, want both %d", last, len(scenarios))
	}
}

// syntheticResults builds a deterministic result multiset without
// simulating anything — wall times spread over several decades, mixed
// engines/profiles, a few failures.
func syntheticResults(n int, seed int64) []Result {
	rng := rand.New(rand.NewSource(seed))
	engines := []string{"ace+flex", "sonic", "tails"}
	profiles := []string{"square", "sine", "const"}
	out := make([]Result, n)
	for i := range out {
		out[i] = Result{
			Name:      fmt.Sprintf("dev%d", i),
			Engine:    core.EngineKind(engines[i%len(engines)]),
			Profile:   profiles[i%len(profiles)],
			Completed: i%7 != 0,
			Boots:     uint64(rng.Intn(30)),
			WallSec:   math.Pow(10, rng.Float64()*6-3), // 1 ms .. 1000 s
		}
		if !out[i].Completed {
			out[i].Err = fmt.Errorf("dnf")
			out[i].WallSec = 0
		}
	}
	return out
}

// TestAggMergeMatchesSequential: shards over arbitrary splits of the
// multiset must merge to the same report as one sequential aggregator
// — below and above the exact threshold.
func TestAggMergeMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		name      string
		n         int
		threshold int
	}{
		{"exact", 60, 1000},
		{"spilled", 300, 64},
		{"boundary", 64, 64},
	} {
		t.Run(tc.name, func(t *testing.T) {
			results := syntheticResults(tc.n, 5)
			seq := NewAgg(tc.threshold)
			for _, r := range results {
				seq.Observe(r)
			}

			shards := []*Agg{NewAgg(tc.threshold), NewAgg(tc.threshold), NewAgg(tc.threshold)}
			// Deal rows round-robin backwards: neither shard membership
			// nor order matches the sequential pass.
			for i := tc.n - 1; i >= 0; i-- {
				shards[i%3].Observe(results[i])
			}
			merged := NewAgg(tc.threshold)
			for _, s := range shards {
				merged.Merge(s)
			}

			a, b := seq.Report(), merged.Report()
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("merged shards diverge from sequential:\n%+v\nvs\n%+v", a, b)
			}
			if wantExact := tc.n <= tc.threshold; a.PercentilesExact != wantExact {
				t.Fatalf("PercentilesExact = %v, want %v", a.PercentilesExact, wantExact)
			}
		})
	}
}

// TestHistogramEstimateWithinBound: above the threshold the
// percentiles become estimates, ordered and within the documented
// ~1% relative error of the exact values.
func TestHistogramEstimateWithinBound(t *testing.T) {
	results := syntheticResults(5000, 11)
	exact := NewAgg(100_000)
	est := NewAgg(100)
	for _, r := range results {
		exact.Observe(r)
		est.Observe(r)
	}
	re, rs := exact.Report(), est.Report()
	if !re.PercentilesExact || rs.PercentilesExact {
		t.Fatalf("exactness flags wrong: %v %v", re.PercentilesExact, rs.PercentilesExact)
	}
	if !(rs.WallP50Sec <= rs.WallP90Sec && rs.WallP90Sec <= rs.WallP99Sec) {
		t.Fatalf("estimated percentiles not ordered: %v %v %v",
			rs.WallP50Sec, rs.WallP90Sec, rs.WallP99Sec)
	}
	for _, pair := range [][2]float64{
		{re.WallP50Sec, rs.WallP50Sec},
		{re.WallP90Sec, rs.WallP90Sec},
		{re.WallP99Sec, rs.WallP99Sec},
	} {
		if rel := (pair[1] - pair[0]) / pair[0]; rel < -0.011 || rel > 0.011 {
			t.Fatalf("estimate %v vs exact %v: relative error %v", pair[1], pair[0], rel)
		}
	}
	// Everything but the percentiles must stay exact.
	re.WallP50Sec, re.WallP90Sec, re.WallP99Sec = 0, 0, 0
	rs.WallP50Sec, rs.WallP90Sec, rs.WallP99Sec = 0, 0, 0
	re.PercentilesExact, rs.PercentilesExact = false, false
	if !reflect.DeepEqual(re, rs) {
		t.Fatalf("non-percentile aggregates differ:\n%+v\nvs\n%+v", re, rs)
	}
}

// TestHistogramEdgeValues: zero (errored rows), sub-µs and absurdly
// large wall times all land in bins instead of corrupting the
// estimate.
func TestHistogramEdgeValues(t *testing.T) {
	a := NewAgg(2)
	for _, v := range []float64{0, 1e-9, 0.5, 1e9, 3} {
		a.Observe(Result{WallSec: v})
	}
	rep := a.Report()
	if rep.PercentilesExact {
		t.Fatal("expected spilled aggregator")
	}
	if rep.WallP50Sec <= 0 || rep.WallP50Sec > 1 {
		t.Fatalf("p50 = %v, want ~0.5", rep.WallP50Sec)
	}
	if rep.WallP99Sec != 1e7 {
		t.Fatalf("p99 = %v, want the overflow edge 1e7", rep.WallP99Sec)
	}
}

// TestPercentileEdgeCases: empty and single-element inputs — the
// edge cases the streaming refactor surfaced.
func TestPercentileEdgeCases(t *testing.T) {
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
	for _, p := range []float64{0, 1, 50, 99, 100} {
		if got := percentile([]float64{7.5}, p); got != 7.5 {
			t.Errorf("single-element p%v = %v, want 7.5", p, got)
		}
	}
	// nearestRank never leaves [0, n-1], even for out-of-range p.
	for _, tc := range []struct {
		n    int
		p    float64
		want int
	}{
		{1, 0, 0}, {1, 100, 0}, {10, 0, 0}, {10, 100, 9}, {10, 200, 9}, {3, 50, 1},
	} {
		if got := nearestRank(tc.n, tc.p); got != tc.want {
			t.Errorf("nearestRank(%d, %v) = %d, want %d", tc.n, tc.p, got, tc.want)
		}
	}
}

// TestEmptyAndSingleFleet: Report must stay well-formed (no NaN, no
// panic) for the degenerate fleets.
func TestEmptyAndSingleFleet(t *testing.T) {
	empty := Run(nil, 4)
	if empty.Devices != 0 || empty.CompletionRate != 0 || empty.WallP99Sec != 0 {
		t.Fatalf("empty fleet report: %+v", empty)
	}
	if empty.CompletionRate != empty.CompletionRate {
		t.Fatal("NaN completion rate")
	}
	if s := RenderReport(empty); !strings.Contains(s, "0 devices") {
		t.Fatalf("render: %s", s)
	}

	m := tinyModel(t)
	one := testFleet(t, m)[:1]
	rep := Run(one, 4)
	if rep.Devices != 1 || len(rep.Results) != 1 {
		t.Fatalf("single fleet report: %+v", rep)
	}
	w := rep.Results[0].WallSec
	if rep.WallP50Sec != w || rep.WallP90Sec != w || rep.WallP99Sec != w {
		t.Fatalf("single-device percentiles %v %v %v, want all %v",
			rep.WallP50Sec, rep.WallP90Sec, rep.WallP99Sec, w)
	}
}

// TestNDJSONSchema pins the row wire format and scenario ordering.
func TestNDJSONSchema(t *testing.T) {
	m := tinyModel(t)
	scenarios := testFleet(t, m)
	var buf bytes.Buffer
	if _, err := RunStream(SliceSource(scenarios), StreamOptions{Workers: 8, Sink: NewNDJSONSink(&buf)}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(scenarios) {
		t.Fatalf("%d NDJSON lines, want %d", len(lines), len(scenarios))
	}
	for i, line := range lines {
		var row NDJSONRow
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if row.Index != i || row.Device != scenarios[i].Name {
			t.Fatalf("line %d: index %d device %q (want %q)", i, row.Index, row.Device, scenarios[i].Name)
		}
	}
	// The dead device's sentinel must survive the trip; healthy rows
	// must omit the err key entirely.
	if !strings.Contains(lines[len(lines)-1], `"err":`) {
		t.Error("dead device row lost its error")
	}
	if strings.Contains(lines[1], `"err":`) {
		t.Error("healthy row carries an err key")
	}
	// The memo tag is strictly opt-in (NDJSONSink.TagMemo); an
	// unmemoized stream must never emit the key.
	if strings.Contains(buf.String(), `"memo"`) {
		t.Error("memo key present without TagMemo")
	}
}

// TestProfileLabel covers the breakdown keys.
func TestProfileLabel(t *testing.T) {
	m := tinyModel(t)
	rep := Run(testFleet(t, m), 0)
	for _, want := range []string{"square", "sine", "const"} {
		if _, ok := rep.Profiles[want]; !ok {
			t.Errorf("profile breakdown missing %q (have %v)", want, rep.Profiles)
		}
	}
	if rep.Engines["ace+flex"].Devices == 0 {
		t.Errorf("engine breakdown missing ace+flex: %v", rep.Engines)
	}
}
