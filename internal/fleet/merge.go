package fleet

// Merging shard artifacts back into the single-process result. A
// shard directory is the self-describing output of one partitioned
// run: the final checkpoint (ShardMetaFile, Rows == End) next to the
// shard's ordered NDJSON rows (ShardRowsFile). MergeShards folds k of
// them into the report a single-process run over the whole fleet
// would have produced — bit-identically, because the aggregator is a
// function of the observed multiset alone — and concatenates the row
// files in device order into the byte-identical whole-fleet NDJSON
// stream. Shards from different runs (fingerprint, fleet size or
// threshold drift), incomplete shards, and sets that do not tile the
// fleet exactly are rejected with typed errors before any output is
// written.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Shard directory layout: the meta/checkpoint artifact and the
// NDJSON row file a partitioned run writes.
const (
	ShardMetaFile = "shard.ehdl"
	ShardRowsFile = "rows.ndjson"
)

// Typed shard-merge failures.
var (
	// ErrShardMismatch: the shards do not come from the same run —
	// different scenario/config fingerprints, fleet sizes or
	// aggregator thresholds.
	ErrShardMismatch = errors.New("shard artifacts do not belong to the same run")
	// ErrShardIncomplete: a shard's commit frontier stops short of its
	// range — the run that wrote it was interrupted (resume it first).
	ErrShardIncomplete = errors.New("shard artifact is incomplete")
	// ErrShardLayout: the shard set does not tile the fleet exactly
	// (missing, duplicated or overlapping device ranges).
	ErrShardLayout = errors.New("shard set does not cover the fleet exactly")
	// ErrShardRows: a shard's row file disagrees with its meta (wrong
	// row count or a torn final line).
	ErrShardRows = errors.New("shard row file does not match its meta")
)

// LoadShard reads and verifies one shard directory's meta artifact.
func LoadShard(dir string) (*CheckpointState, error) {
	st, err := LoadCheckpoint(filepath.Join(dir, ShardMetaFile))
	if err != nil {
		return nil, err
	}
	if st.Rows != st.End {
		return nil, fmt.Errorf("%s: %w: committed %d of %d rows (resume it with the same -shard/-checkpoint setup)",
			dir, ErrShardIncomplete, st.Rows-st.Start, st.End-st.Start)
	}
	return st, nil
}

// MergeShards folds the shard directories into the whole-fleet
// report and writes the concatenated NDJSON rows (in global device
// order) to rows. The shard set must tile [0, fleet size) exactly;
// any grouping that does — the usual i/N split, or shards from
// different N as long as the ranges fit — is accepted, everything
// else rejected with a typed error before a byte of output is
// written. The merged report is bit-identical to a single-process
// run's (host time aside).
func MergeShards(rows io.Writer, dirs []string) (Report, error) {
	return MergeShardsWith(rows, dirs, MergeOptions{})
}

// MergeOptions tunes MergeShardsWith.
type MergeOptions struct {
	// Clock supplies the host time for Report.HostSeconds; nothing
	// merged depends on it (nil: SystemClock).
	Clock Clock
}

// MergeShardsWith is MergeShards with an injectable host clock.
func MergeShardsWith(rows io.Writer, dirs []string, opts MergeOptions) (Report, error) {
	clock := orClock(opts.Clock)
	start := clock.Now()
	if len(dirs) == 0 {
		return Report{}, fmt.Errorf("fleet: no shard directories to merge")
	}
	type shard struct {
		dir string
		st  *CheckpointState
	}
	shards := make([]shard, 0, len(dirs))
	for _, dir := range dirs {
		st, err := LoadShard(dir)
		if err != nil {
			return Report{}, err
		}
		shards = append(shards, shard{dir: dir, st: st})
	}
	first := shards[0]
	for _, s := range shards[1:] {
		switch {
		case s.st.Fingerprint != first.st.Fingerprint:
			return Report{}, fmt.Errorf("%w: %s and %s were produced by different scenario/config setups",
				ErrShardMismatch, first.dir, s.dir)
		case s.st.Devices != first.st.Devices:
			return Report{}, fmt.Errorf("%w: %s is from a %d-device fleet, %s from %d",
				ErrShardMismatch, first.dir, first.st.Devices, s.dir, s.st.Devices)
		case s.st.Threshold != first.st.Threshold:
			return Report{}, fmt.Errorf("%w: %s uses exact-percentile threshold %d, %s uses %d",
				ErrShardMismatch, first.dir, first.st.Threshold, s.dir, s.st.Threshold)
		}
	}
	sort.Slice(shards, func(i, j int) bool { return shards[i].st.Start < shards[j].st.Start })
	next := 0
	for _, s := range shards {
		if s.st.Start != next {
			return Report{}, fmt.Errorf("%w: device range [%d, %d) is %s, want a shard starting at %d",
				ErrShardLayout, s.st.Start, s.st.End, coverage(s.st.Start, next), next)
		}
		next = s.st.End
	}
	if next != first.st.Devices {
		return Report{}, fmt.Errorf("%w: shards cover [0, %d) of %d devices",
			ErrShardLayout, next, first.st.Devices)
	}

	agg := NewAgg(first.st.Threshold)
	for _, s := range shards {
		a, err := RestoreAgg(s.st.AggSnap)
		if err != nil {
			return Report{}, fmt.Errorf("%s: %w", s.dir, err)
		}
		agg.Merge(a)
	}
	for _, s := range shards {
		if err := copyShardRows(rows, s.dir, s.st.End-s.st.Start); err != nil {
			return Report{}, err
		}
	}
	rep := agg.Report()
	rep.HostSeconds = clock.Now().Sub(start).Seconds()
	return rep, nil
}

// coverage labels a tiling failure: a gap (next < start) or an
// overlap/duplicate (next > start).
func coverage(start, next int) string {
	if next < start {
		return "missing"
	}
	return "covered twice"
}

// copyShardRows streams one shard's row file into w, verifying it
// holds exactly want newline-terminated rows.
func copyShardRows(w io.Writer, dir string, want int) error {
	path := filepath.Join(dir, ShardRowsFile)
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	defer f.Close()
	var lines int
	lastNewline := true
	buf := make([]byte, 1<<20)
	for {
		n, err := f.Read(buf)
		if n > 0 {
			lines += bytes.Count(buf[:n], []byte{'\n'})
			lastNewline = buf[n-1] == '\n'
			if _, werr := w.Write(buf[:n]); werr != nil {
				return fmt.Errorf("fleet: merging %s: %w", path, werr)
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("fleet: %s: %w", path, err)
		}
	}
	if lines != want || !lastNewline {
		return fmt.Errorf("%s: %w: %d complete rows, meta declares %d", path, ErrShardRows, lines, want)
	}
	return nil
}
