package fleet

import "time"

// Clock abstracts the host wall clock. Simulated results are pure
// functions of (scenario, seed); the only things a fleet run may
// measure in real time are the host-seconds line of a report and
// progress/ETA pacing, and both read through this interface so tests
// can drive them deterministically. RunStream and MergeShardsWith
// default to SystemClock when no Clock is injected.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
}

// SystemClock is the real host clock — the single place the fleet
// packages read wall time from.
var SystemClock Clock = systemClock{}

type systemClock struct{}

func (systemClock) Now() time.Time {
	return time.Now() //ehdl:wallclock host-seconds reporting and progress pacing only; a Clock never feeds simulated results
}

// orClock resolves an optional injected clock to a usable one.
func orClock(c Clock) Clock {
	if c == nil {
		return SystemClock
	}
	return c
}
