package fleet

// This file holds the fleet's online aggregator: constant-memory
// per-row accumulation of everything Report publishes, so a streaming
// run never needs a []Result of fleet size. Wall-time percentiles are
// exact (nearest-rank over retained values) while the fleet is small,
// and switch to a fixed-bin logarithmic histogram estimate once the
// value count passes the exact threshold. Aggregator state is
// mergeable: a sharded run combines per-shard aggregators with Merge
// and gets the same report as a single-aggregator run, because every
// published quantity is a function of the observed multiset alone —
// integer counters, sorted exact values, and histogram bin counts are
// all independent of both observation and merge order.

import (
	"math"
	"sort"
)

// DefaultExactPercentiles is the fleet size up to which wall-time
// percentiles are computed exactly. Above it the aggregator spills
// into the fixed-bin histogram (see histBinsPerDecade for the
// resolution bound). 100k float64s is ~800 KB — the constant ceiling
// of per-aggregator memory, regardless of fleet size.
const DefaultExactPercentiles = 100_000

// Histogram geometry: logarithmic bins over [1 µs, 1e7 s] of
// simulated wall time, histBinsPerDecade bins per decade, plus an
// underflow bin (zero and sub-µs values, e.g. errored rows) and an
// overflow bin. At 128 bins/decade the relative quantization error of
// an estimated percentile is bounded by 10^(1/256)−1 ≈ 0.9%.
const (
	histBinsPerDecade = 128
	histMinExp        = -6 // left edge 1e-6 s
	histMaxExp        = 7  // right edge 1e7 s
	histLogBins       = (histMaxExp - histMinExp) * histBinsPerDecade
	histBins          = histLogBins + 2 // + underflow, + overflow
	histLoEdge        = 1e-6            // 10^histMinExp
	histHiEdge        = 1e7             // 10^histMaxExp
)

// GroupStats is one line of the per-engine / per-profile breakdown.
type GroupStats struct {
	Devices   int
	Completed int
	// Errors counts rows whose Err is set — setup failures and DNF
	// sentinels alike.
	Errors int
	Boots  uint64
}

func (g *GroupStats) observe(r Result) {
	g.Devices++
	if r.Completed {
		g.Completed++
	}
	if r.Err != nil {
		g.Errors++
	}
	g.Boots += r.Boots
}

// Agg accumulates a fleet report row by row in constant memory. The
// zero value is not ready; use NewAgg. An Agg is not goroutine-safe —
// streaming runs give each worker its own shard and Merge them.
type Agg struct {
	threshold int

	devices   int
	completed int
	errors    int
	boots     uint64
	ffBoots   uint64

	// exact holds every observed wall time while the aggregate is
	// below threshold; nil after spilling into hist.
	exact []float64
	hist  []int64
	// histCount is the number of values represented by hist.
	histCount int

	engines   map[string]*GroupStats
	profiles  map[string]*GroupStats
	diagnoses map[string]int
}

// NewAgg returns an aggregator that keeps exact percentiles up to
// exactThreshold observed rows (<= 0 selects DefaultExactPercentiles).
func NewAgg(exactThreshold int) *Agg {
	if exactThreshold <= 0 {
		exactThreshold = DefaultExactPercentiles
	}
	return &Agg{
		threshold: exactThreshold,
		engines:   map[string]*GroupStats{},
		profiles:  map[string]*GroupStats{},
		diagnoses: map[string]int{},
	}
}

// Observe folds one scenario result into the aggregate.
func (a *Agg) Observe(r Result) {
	a.devices++
	if r.Completed {
		a.completed++
	}
	if r.Err != nil {
		a.errors++
	}
	a.boots += r.Boots
	a.ffBoots += r.FastForwarded
	group(a.engines, string(r.Engine)).observe(r)
	group(a.profiles, r.Profile).observe(r)
	if r.Diagnosis != "" {
		a.diagnoses[r.Diagnosis]++
	}
	a.observeWall(r.WallSec)
}

func group(m map[string]*GroupStats, key string) *GroupStats {
	g, ok := m[key]
	if !ok {
		g = &GroupStats{}
		m[key] = g
	}
	return g
}

func (a *Agg) observeWall(v float64) {
	if a.hist == nil {
		if len(a.exact) < a.threshold {
			a.exact = append(a.exact, v)
			return
		}
		a.spill()
	}
	a.hist[histBin(v)]++
	a.histCount++
}

// spill moves the retained exact values into the histogram; from here
// on percentiles are estimates.
func (a *Agg) spill() {
	a.hist = make([]int64, histBins)
	for _, v := range a.exact {
		a.hist[histBin(v)]++
	}
	a.histCount += len(a.exact)
	a.exact = nil
}

// histBin maps a wall time to its bin index.
func histBin(v float64) int {
	if !(v > histLoEdge) { // zero, negative, NaN → underflow
		return 0
	}
	idx := int(math.Floor((math.Log10(v) - histMinExp) * histBinsPerDecade))
	if idx < 0 {
		return 0
	}
	if idx >= histLogBins {
		return histBins - 1
	}
	return idx + 1
}

// histValue returns the representative wall time of a bin: the
// geometric midpoint of its edges, 0 for underflow, the right edge
// for overflow.
func histValue(bin int) float64 {
	if bin == 0 {
		return 0
	}
	if bin == histBins-1 {
		return histHiEdge
	}
	lo := float64(bin-1)/histBinsPerDecade + histMinExp
	hi := float64(bin)/histBinsPerDecade + histMinExp
	return math.Pow(10, (lo+hi)/2)
}

// add folds another group's counters into g.
func (g *GroupStats) add(o *GroupStats) {
	g.Devices += o.Devices
	g.Completed += o.Completed
	g.Errors += o.Errors
	g.Boots += o.Boots
}

func mergeGroups(dst, src map[string]*GroupStats) {
	for k, g := range src { //ehdl:unordered per-key fold: each iteration only adds into dst[k], and GroupStats.add is commutative integer addition
		group(dst, k).add(g)
	}
}

// Merge folds shard b into a. b must not be observed afterwards.
// Merging is deterministic in the combined multiset: shards may be
// merged in any grouping/order and yield the same report.
func (a *Agg) Merge(b *Agg) {
	a.devices += b.devices
	a.completed += b.completed
	a.errors += b.errors
	a.boots += b.boots
	a.ffBoots += b.ffBoots
	mergeGroups(a.engines, b.engines)
	mergeGroups(a.profiles, b.profiles)
	for k, n := range b.diagnoses {
		a.diagnoses[k] += n
	}
	if a.hist == nil && b.hist == nil && len(a.exact)+len(b.exact) <= a.threshold {
		a.exact = append(a.exact, b.exact...)
		return
	}
	if a.hist == nil {
		a.spill()
	}
	if b.hist == nil {
		b.spill()
	}
	for i, c := range b.hist {
		a.hist[i] += c
	}
	a.histCount += b.histCount
}

// Report materializes the aggregate. Results and HostSeconds are left
// for the caller. The exact path sorts the retained values in place,
// so Report is not idempotent with further Observe calls.
func (a *Agg) Report() Report {
	rep := Report{
		Devices:            a.devices,
		Completed:          a.completed,
		Errors:             a.errors,
		TotalBoots:         a.boots,
		FastForwardedBoots: a.ffBoots,
		PercentilesExact:   a.hist == nil,
		Engines:            map[string]GroupStats{},
		Profiles:           map[string]GroupStats{},
		Diagnoses:          map[string]int{},
	}
	for k, g := range a.engines {
		rep.Engines[k] = *g
	}
	for k, g := range a.profiles {
		rep.Profiles[k] = *g
	}
	for k, n := range a.diagnoses {
		rep.Diagnoses[k] = n
	}
	if a.devices > 0 {
		rep.CompletionRate = float64(a.completed) / float64(a.devices)
	}
	if a.hist == nil {
		sort.Float64s(a.exact)
		rep.WallP50Sec = percentile(a.exact, 50)
		rep.WallP90Sec = percentile(a.exact, 90)
		rep.WallP99Sec = percentile(a.exact, 99)
	} else {
		rep.WallP50Sec = a.histPercentile(50)
		rep.WallP90Sec = a.histPercentile(90)
		rep.WallP99Sec = a.histPercentile(99)
	}
	return rep
}

// histPercentile is the nearest-rank percentile over the histogram,
// mapped to each bin's representative value.
func (a *Agg) histPercentile(p float64) float64 {
	if a.histCount == 0 {
		return 0
	}
	rank := nearestRank(a.histCount, p)
	var seen int64
	for bin, c := range a.hist {
		seen += c
		if int64(rank) < seen {
			return histValue(bin)
		}
	}
	return histValue(histBins - 1)
}
