package fleet

// Aggregator serialization: a versioned, gob-based snapshot of Agg
// state, the unit that checkpoints and shard artifacts are built
// from. A snapshot captures the observed multiset exactly — integer
// counters, retained exact wall times, histogram bins, group maps —
// and canonicalizes the one piece of state whose in-memory layout
// depends on observation order (the retained exact values are stored
// sorted), so two aggregators that observed the same multiset in any
// order snapshot to equivalent state and restore to aggregators that
// continue identically. Restore(Snapshot(a)).Report() is bit-for-bit
// a.Report() (pinned by TestAggSnapshotRoundTrip).

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"
)

// aggSnapshotVersion is the snapshot schema version. Bump it when the
// encoded layout changes incompatibly; old snapshots then fail with
// ErrSnapshotVersion instead of decoding into silently wrong state.
const aggSnapshotVersion = 1

// ErrSnapshotVersion: the snapshot was written by an incompatible
// aggregator version (or is not an aggregator snapshot at all).
var ErrSnapshotVersion = errors.New("incompatible aggregator snapshot version")

// aggSnapV1 is the wire form of an Agg. Group maps are stored by
// value; the exact slice is stored sorted (canonical, and what Report
// would produce anyway).
type aggSnapV1 struct {
	Version   int
	Threshold int

	Devices   int
	Completed int
	Errors    int
	Boots     uint64
	FFBoots   uint64

	Exact     []float64
	Spilled   bool
	Hist      []int64
	HistCount int

	Engines   map[string]GroupStats
	Profiles  map[string]GroupStats
	Diagnoses map[string]int
}

// Snapshot serializes the aggregator's full state. The aggregator is
// still usable afterwards (the snapshot copies what it shares).
func (a *Agg) Snapshot() ([]byte, error) {
	s := aggSnapV1{
		Version:   aggSnapshotVersion,
		Threshold: a.threshold,
		Devices:   a.devices,
		Completed: a.completed,
		Errors:    a.errors,
		Boots:     a.boots,
		FFBoots:   a.ffBoots,
		Spilled:   a.hist != nil,
		HistCount: a.histCount,
		Engines:   make(map[string]GroupStats, len(a.engines)),
		Profiles:  make(map[string]GroupStats, len(a.profiles)),
		Diagnoses: make(map[string]int, len(a.diagnoses)),
	}
	if len(a.exact) > 0 {
		s.Exact = append([]float64(nil), a.exact...)
		sort.Float64s(s.Exact)
	}
	if a.hist != nil {
		s.Hist = append([]int64(nil), a.hist...)
	}
	for k, g := range a.engines {
		s.Engines[k] = *g
	}
	for k, g := range a.profiles {
		s.Profiles[k] = *g
	}
	for k, n := range a.diagnoses {
		s.Diagnoses[k] = n
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, fmt.Errorf("fleet: encode aggregator snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreAgg rebuilds an aggregator from a Snapshot. The restored
// aggregator reports bit-identically to the snapshotted one and may
// keep observing/merging — state is equivalent regardless of the
// order the original observed its rows in.
func RestoreAgg(snap []byte) (*Agg, error) {
	var s aggSnapV1
	if err := gob.NewDecoder(bytes.NewReader(snap)).Decode(&s); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotVersion, err)
	}
	if s.Version != aggSnapshotVersion {
		return nil, fmt.Errorf("%w: snapshot has v%d, this build reads v%d",
			ErrSnapshotVersion, s.Version, aggSnapshotVersion)
	}
	if s.Threshold <= 0 {
		return nil, fmt.Errorf("%w: non-positive threshold %d", ErrSnapshotVersion, s.Threshold)
	}
	if s.Spilled && len(s.Hist) != histBins {
		return nil, fmt.Errorf("%w: spilled snapshot has %d bins, want %d",
			ErrSnapshotVersion, len(s.Hist), histBins)
	}
	a := NewAgg(s.Threshold)
	a.devices = s.Devices
	a.completed = s.Completed
	a.errors = s.Errors
	a.boots = s.Boots
	a.ffBoots = s.FFBoots
	a.exact = s.Exact
	if s.Spilled {
		a.hist = s.Hist
		a.histCount = s.HistCount
		a.exact = nil
	}
	for k, g := range s.Engines {
		g := g
		a.engines[k] = &g
	}
	for k, g := range s.Profiles {
		g := g
		a.profiles[k] = &g
	}
	for k, n := range s.Diagnoses {
		a.diagnoses[k] = n
	}
	return a, nil
}
