// Package fleet simulates a deployment of energy-harvesting devices:
// N independent (device, engine, harvesting profile) scenarios run
// concurrently over a bounded worker pool and are folded into one
// deterministic aggregate report — completion rate, boot counts,
// per-engine/per-profile breakdowns, and simulated-wall-time
// percentiles across the fleet. Every scenario owns its simulated
// device, so results are bit-identical to a serial sweep regardless
// of scheduling.
//
// The core is streaming (see RunStream): scenarios come from a lazy
// Source, rows flow through an ordered Sink, and aggregation is
// online and constant-memory, so fleet size is bounded by simulation
// time, not host memory. Run is the materializing wrapper — it keeps
// one Result row per scenario, in scenario order — for small fleets
// and existing callers.
package fleet

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"ehdl/internal/core"
	"ehdl/internal/fixed"
	"ehdl/internal/fleet/memo"
	"ehdl/internal/harvest"
	"ehdl/internal/quant"
)

// Scenario is one device of the fleet: a model inference under one
// harvesting setup on one runtime.
type Scenario struct {
	Name   string
	Engine core.EngineKind
	Model  *quant.Model
	Input  []fixed.Q15
	Setup  core.HarvestSetup
}

// Result is the outcome of one scenario.
type Result struct {
	Name   string
	Engine core.EngineKind
	// Profile labels the harvest waveform (square, sine, const,
	// trace, ...) for the per-profile breakdown.
	Profile   string
	Completed bool
	// Predicted is the argmax class on completion, -1 otherwise.
	Predicted int
	Boots     uint64
	ActiveSec float64 // simulated compute time
	WallSec   float64 // simulated compute + recharge time
	EnergymJ  float64
	// Diagnosis is the intermittent runner's verdict kind ("completed",
	// "frozen-progress", "boot-limit", ...) or "setup-error" when the
	// scenario never ran; see intermittent.DiagnosisKind.
	Diagnosis string
	// FastForwarded counts boots the runner skipped analytically
	// (included in Boots).
	FastForwarded uint64
	// Err is the intermittent sentinel on a DNF, or a setup error.
	Err error
	// Memo tags how the row was obtained when the run was memoized:
	// "miss" (simulated and cached), "hit-full" (whole outcome
	// replayed), or "hit-compute" (compute side replayed, boot-0
	// completion synthesized). Empty when the memo is off or the
	// scenario could not be content-addressed. The tag is diagnostic
	// only — racing workers may split hits and misses differently run
	// to run — so the aggregator and the default NDJSON rows ignore it.
	Memo string
}

// Report aggregates a fleet run.
type Report struct {
	// Results holds one row per scenario, in scenario order. Streaming
	// runs leave it nil — attach a Sink to observe rows.
	Results []Result

	Devices        int
	Completed      int
	CompletionRate float64 // Completed / Devices
	// Errors counts rows whose Err is set (setup failures and DNFs).
	Errors     int
	TotalBoots uint64

	// Simulated wall-time percentiles across all devices (completed
	// and DNF runs alike): exact nearest-rank while the fleet is
	// within the exact-percentile threshold, histogram estimates
	// above it (see PercentilesExact).
	WallP50Sec float64
	WallP90Sec float64
	WallP99Sec float64
	// PercentilesExact reports whether the percentiles above are
	// exact or fixed-bin histogram estimates (±~1%).
	PercentilesExact bool

	// Engines and Profiles break the fleet down by runtime and by
	// harvest waveform; Diagnoses counts rows per runner verdict
	// ("completed", "frozen-progress", "boot-limit", ...), the fleet
	// operator's view of WHY devices did or did not finish.
	Engines   map[string]GroupStats
	Profiles  map[string]GroupStats
	Diagnoses map[string]int

	// FastForwardedBoots totals the boots the intermittent runner
	// skipped analytically across the fleet (included in TotalBoots).
	FastForwardedBoots uint64

	// Memo holds the inference memo's counters when the run was
	// memoized (nil otherwise). The hit/miss split is scheduling-
	// dependent — see memo.Stats — but hits+misses always equals the
	// devices that consulted the memo.
	Memo *memo.Stats

	// HostSeconds is the real time the sweep took.
	HostSeconds float64
}

// ForEach runs fn(0..n-1) over a bounded worker pool and returns when
// every call finished. workers <= 0 selects GOMAXPROCS. fn must be
// safe to call concurrently for distinct indices; writing only to
// per-index slots keeps the overall computation deterministic.
// experiments.Fig7 sweeps on this pool; RunStream runs its own
// variant whose workers additionally own aggregator shards.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// Run executes every scenario over a pool of at most workers
// goroutines (<= 0: GOMAXPROCS) and aggregates the fleet report,
// materializing one Result row per scenario. Scenario failures (bad
// profile, model/input mismatch, DNF) land in the per-scenario Err
// field; they do not abort the rest of the fleet. Run is a thin
// wrapper over RunStream with a collecting sink — use RunStream
// directly for fleets too large to hold.
func Run(scenarios []Scenario, workers int) Report {
	collect := &Collector{Rows: make([]Result, 0, len(scenarios))}
	rep, err := RunStream(SliceSource(scenarios), StreamOptions{
		Workers: workers,
		// Run materializes every row anyway, so percentiles stay exact
		// at any fleet size (the historical behaviour).
		ExactPercentiles: len(scenarios),
		Sink:             collect,
	})
	if err != nil {
		// Collector never fails and SliceSource never errors; keep the
		// historical no-error signature.
		panic(err)
	}
	rep.Results = collect.Rows
	return rep
}

// runOne executes a single scenario on its own simulated device.
func runOne(s Scenario) Result {
	res := Result{
		Name:      s.Name,
		Engine:    s.Engine,
		Profile:   ProfileLabel(s.Setup.Profile),
		Predicted: -1,
	}
	if s.Model == nil {
		res.Err = fmt.Errorf("fleet: scenario %q has no model", s.Name)
		res.Diagnosis = SetupErrorDiagnosis
		return res
	}
	rep, err := core.InferIntermittent(s.Engine, s.Model, s.Input, s.Setup)
	if err != nil {
		res.Err = err
		res.Diagnosis = SetupErrorDiagnosis
		return res
	}
	res.Completed = rep.Intermittent.Completed
	res.Predicted = rep.Predicted
	res.Boots = rep.Intermittent.Boots
	res.ActiveSec = rep.Stats.ActiveSeconds
	res.WallSec = rep.Stats.WallSeconds
	res.EnergymJ = rep.Stats.EnergymJ()
	res.Diagnosis = string(rep.Intermittent.Diagnosis.Kind)
	res.FastForwarded = rep.Intermittent.Diagnosis.FastForwarded
	res.Err = rep.Intermittent.Err
	return res
}

// SetupErrorDiagnosis labels rows whose scenario never produced an
// intermittent run (bad profile, missing model, source error).
const SetupErrorDiagnosis = "setup-error"

// ProfileLabel names a harvest profile's waveform for breakdowns.
func ProfileLabel(p harvest.Profile) string {
	switch p.(type) {
	case harvest.SquareProfile:
		return "square"
	case harvest.SineProfile:
		return "sine"
	case harvest.ConstantProfile:
		return "const"
	case *harvest.TraceProfile:
		return "trace"
	case nil:
		return "none"
	default:
		return "custom"
	}
}

// nearestRank is the 0-based nearest-rank index for percentile p over
// n sorted values, clamped to [0, n-1]. n must be > 0.
func nearestRank(n int, p float64) int {
	rank := int(float64(n)*p/100+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= n {
		rank = n - 1
	}
	return rank
}

// percentile is the nearest-rank percentile of sorted values; 0 for
// an empty slice (an empty fleet has no wall times).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[nearestRank(len(sorted), p)]
}

// RenderReport formats the fleet aggregate, the per-engine and
// per-profile breakdowns, and — when the report materialized them —
// one row per device.
func RenderReport(r Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: %d devices, %d completed (%.1f%%), %d boots total\n",
		r.Devices, r.Completed, 100*r.CompletionRate, r.TotalBoots)
	est := ""
	if !r.PercentilesExact {
		est = " (est)"
	}
	fmt.Fprintf(&b, "wall(sim)%s: p50 %.1f ms  p90 %.1f ms  p99 %.1f ms   host: %.2f s\n",
		est, r.WallP50Sec*1e3, r.WallP90Sec*1e3, r.WallP99Sec*1e3, r.HostSeconds)
	if r.FastForwardedBoots > 0 {
		fmt.Fprintf(&b, "fast-forward: %d of %d boots solved analytically\n",
			r.FastForwardedBoots, r.TotalBoots)
	}
	if m := r.Memo; m != nil {
		fmt.Fprintf(&b, "memo: %d hits (%d full, %d compute), %d misses, %d fills, %d/%d entries, %d evicted\n",
			m.Hits(), m.FullHits, m.ComputeHits, m.Misses, m.Fills, m.Entries, m.Capacity, m.Evictions)
	}
	renderGroups(&b, "engine", r.Engines)
	renderGroups(&b, "profile", r.Profiles)
	renderDiagnoses(&b, r.Diagnoses)
	if len(r.Results) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-12s %-10s %-8s %7s %12s %12s %10s  %s\n",
		"device", "engine", "status", "boots", "active(ms)", "wall(ms)", "energy(mJ)", "diagnosis")
	for _, res := range r.Results {
		status := "ok"
		if !res.Completed {
			status = "X"
		}
		fmt.Fprintf(&b, "%-12s %-10s %-8s %7d %12.1f %12.1f %10.3f  %s\n",
			res.Name, res.Engine, status, res.Boots, res.ActiveSec*1e3, res.WallSec*1e3, res.EnergymJ,
			res.Diagnosis)
	}
	return b.String()
}

// renderDiagnoses prints the per-verdict breakdown when the fleet saw
// more than one kind of outcome.
func renderDiagnoses(b *strings.Builder, diagnoses map[string]int) {
	if len(diagnoses) < 2 {
		return
	}
	keys := make([]string, 0, len(diagnoses))
	for k := range diagnoses {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(b, "by diagnosis:\n")
	for _, k := range keys {
		fmt.Fprintf(b, "  %-24s %9d devices\n", k, diagnoses[k])
	}
}

// renderGroups prints one breakdown table in sorted key order.
func renderGroups(b *strings.Builder, label string, groups map[string]GroupStats) {
	if len(groups) < 2 {
		return // a homogeneous fleet repeats the summary line
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(b, "by %s:\n", label)
	for _, k := range keys {
		g := groups[k]
		fmt.Fprintf(b, "  %-10s %9d devices %9d ok (%5.1f%%) %12d boots %9d errors\n",
			k, g.Devices, g.Completed, 100*float64(g.Completed)/float64(g.Devices), g.Boots, g.Errors)
	}
}
