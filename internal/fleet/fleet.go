// Package fleet simulates a deployment of energy-harvesting devices:
// N independent (device, engine, harvesting profile) scenarios run
// concurrently over a bounded worker pool and are folded into one
// deterministic aggregate report — completion rate, boot counts, and
// simulated-wall-time percentiles across the fleet. Every scenario
// owns its simulated device, so results are bit-identical to a serial
// sweep regardless of scheduling, and the per-scenario rows come back
// in scenario order.
package fleet

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"ehdl/internal/core"
	"ehdl/internal/fixed"
	"ehdl/internal/quant"
)

// Scenario is one device of the fleet: a model inference under one
// harvesting setup on one runtime.
type Scenario struct {
	Name   string
	Engine core.EngineKind
	Model  *quant.Model
	Input  []fixed.Q15
	Setup  core.HarvestSetup
}

// Result is the outcome of one scenario.
type Result struct {
	Name      string
	Engine    core.EngineKind
	Completed bool
	// Predicted is the argmax class on completion, -1 otherwise.
	Predicted int
	Boots     uint64
	ActiveSec float64 // simulated compute time
	WallSec   float64 // simulated compute + recharge time
	EnergymJ  float64
	// Err is the intermittent sentinel on a DNF, or a setup error.
	Err error
}

// Report aggregates a fleet run.
type Report struct {
	// Results holds one row per scenario, in scenario order.
	Results []Result

	Devices        int
	Completed      int
	CompletionRate float64 // Completed / Devices
	TotalBoots     uint64

	// Simulated wall-time percentiles across all devices
	// (nearest-rank over completed and DNF runs alike).
	WallP50Sec float64
	WallP90Sec float64
	WallP99Sec float64

	// HostSeconds is the real time the sweep took.
	HostSeconds float64
}

// ForEach runs fn(0..n-1) over a bounded worker pool and returns when
// every call finished. workers <= 0 selects GOMAXPROCS. fn must be
// safe to call concurrently for distinct indices; writing only to
// per-index slots keeps the overall computation deterministic.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// Run executes every scenario over a pool of at most workers
// goroutines (<= 0: GOMAXPROCS) and aggregates the fleet report.
// Scenario failures (bad profile, model/input mismatch, DNF) land in
// the per-scenario Err field; they do not abort the rest of the fleet.
func Run(scenarios []Scenario, workers int) Report {
	start := time.Now()
	rep := Report{
		Results: make([]Result, len(scenarios)),
		Devices: len(scenarios),
	}
	ForEach(len(scenarios), workers, func(i int) {
		rep.Results[i] = runOne(scenarios[i])
	})
	rep.HostSeconds = time.Since(start).Seconds()

	walls := make([]float64, 0, len(rep.Results))
	for i := range rep.Results {
		r := &rep.Results[i]
		rep.TotalBoots += r.Boots
		if r.Completed {
			rep.Completed++
		}
		walls = append(walls, r.WallSec)
	}
	if rep.Devices > 0 {
		rep.CompletionRate = float64(rep.Completed) / float64(rep.Devices)
		sort.Float64s(walls)
		rep.WallP50Sec = percentile(walls, 50)
		rep.WallP90Sec = percentile(walls, 90)
		rep.WallP99Sec = percentile(walls, 99)
	}
	return rep
}

// runOne executes a single scenario on its own simulated device.
func runOne(s Scenario) Result {
	res := Result{Name: s.Name, Engine: s.Engine, Predicted: -1}
	if s.Model == nil {
		res.Err = fmt.Errorf("fleet: scenario %q has no model", s.Name)
		return res
	}
	rep, err := core.InferIntermittent(s.Engine, s.Model, s.Input, s.Setup)
	if err != nil {
		res.Err = err
		return res
	}
	res.Completed = rep.Intermittent.Completed
	res.Predicted = rep.Predicted
	res.Boots = rep.Intermittent.Boots
	res.ActiveSec = rep.Stats.ActiveSeconds
	res.WallSec = rep.Stats.WallSeconds
	res.EnergymJ = rep.Stats.EnergymJ()
	res.Err = rep.Intermittent.Err
	return res
}

// percentile is the nearest-rank percentile of sorted values.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(float64(len(sorted))*p/100+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// RenderReport formats the fleet aggregate plus one row per device.
func RenderReport(r Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: %d devices, %d completed (%.1f%%), %d boots total\n",
		r.Devices, r.Completed, 100*r.CompletionRate, r.TotalBoots)
	fmt.Fprintf(&b, "wall(sim): p50 %.1f ms  p90 %.1f ms  p99 %.1f ms   host: %.2f s\n",
		r.WallP50Sec*1e3, r.WallP90Sec*1e3, r.WallP99Sec*1e3, r.HostSeconds)
	fmt.Fprintf(&b, "%-12s %-10s %-8s %7s %12s %12s %10s\n",
		"device", "engine", "status", "boots", "active(ms)", "wall(ms)", "energy(mJ)")
	for _, res := range r.Results {
		status := "ok"
		if !res.Completed {
			status = "X"
		}
		fmt.Fprintf(&b, "%-12s %-10s %-8s %7d %12.1f %12.1f %10.3f\n",
			res.Name, res.Engine, status, res.Boots, res.ActiveSec*1e3, res.WallSec*1e3, res.EnergymJ)
	}
	return b.String()
}
