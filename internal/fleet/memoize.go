package fleet

// Memoized device runs: when StreamOptions.Memo is set, workers
// consult the content-addressed memo (internal/fleet/memo) before
// simulating a device and replay the cached outcome on a hit. Rows
// stay bit-identical to the unmemoized pipeline — only the host time
// and the Result.Memo tag change.

import (
	"ehdl/internal/core"
	"ehdl/internal/fleet/memo"
)

// runMemoized executes one scenario through the memo: replay on a
// hit, simulate-and-fill on a miss. Scenarios the memo cannot
// content-address (no model, unknown profile type) simulate directly
// with an empty Memo tag, exactly as if the memo were off.
func runMemoized(s Scenario, m *memo.Memo) Result {
	probe, ok := memo.NewProbe(memo.Device{
		Engine:           string(s.Engine),
		VoltageOblivious: core.VoltageOblivious(s.Engine),
		Model:            s.Model,
		Input:            s.Input,
		Config:           s.Setup.Config,
		Profile:          s.Setup.Profile,
		Flex:             s.Setup.FlexConfig,
		Runner:           s.Setup.Runner,
	})
	if !ok {
		return runOne(s)
	}
	out, kind := m.Lookup(probe)
	if kind != memo.Miss {
		r := resultFromOutcome(s, out)
		r.Memo = kind.String()
		return r
	}
	r := runOne(s)
	m.Fill(probe, outcomeFromResult(r))
	r.Memo = kind.String()
	return r
}

// resultFromOutcome rebuilds a Result row from a cached outcome. The
// per-device identity (name) and the profile label come from the
// scenario: equal Tier-1 keys imply the same waveform type, and
// Tier-2 outcomes carry no profile at all.
func resultFromOutcome(s Scenario, o memo.Outcome) Result {
	return Result{
		Name:          s.Name,
		Engine:        s.Engine,
		Profile:       ProfileLabel(s.Setup.Profile),
		Completed:     o.Completed,
		Predicted:     o.Predicted,
		Boots:         o.Boots,
		ActiveSec:     o.ActiveSec,
		WallSec:       o.WallSec,
		EnergymJ:      o.EnergymJ,
		Diagnosis:     o.Diagnosis,
		FastForwarded: o.FastForwarded,
		Err:           o.Err,
	}
}

// outcomeFromResult captures the simulated row for the cache.
func outcomeFromResult(r Result) memo.Outcome {
	return memo.Outcome{
		Profile:       r.Profile,
		Completed:     r.Completed,
		Predicted:     r.Predicted,
		Boots:         r.Boots,
		ActiveSec:     r.ActiveSec,
		WallSec:       r.WallSec,
		EnergymJ:      r.EnergymJ,
		Diagnosis:     r.Diagnosis,
		FastForwarded: r.FastForwarded,
		Err:           r.Err,
	}
}
