package memo

import (
	"fmt"
	"sync"
	"testing"

	"ehdl/internal/fixed"
	"ehdl/internal/flex"
	"ehdl/internal/harvest"
	"ehdl/internal/intermittent"
	"ehdl/internal/quant"
)

func TestLRUBasics(t *testing.T) {
	l := NewLRU[string, int](2)
	if !l.Add("a", 1) || !l.Add("b", 2) {
		t.Fatal("fresh inserts rejected")
	}
	if l.Add("a", 99) {
		t.Fatal("duplicate insert accepted (first-writer-wins broken)")
	}
	if v, ok := l.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %v %v, want 1 (first value kept)", v, ok)
	}
	// "a" was just used, so adding "c" must evict "b".
	l.Add("c", 3)
	if _, ok := l.Get("b"); ok {
		t.Fatal("recency ignored: b survived, a should have")
	}
	if _, ok := l.Get("a"); !ok {
		t.Fatal("recently used entry evicted")
	}
	if l.Len() != 2 || l.Evictions() != 1 {
		t.Fatalf("len %d evictions %d, want 2 and 1", l.Len(), l.Evictions())
	}
	if NewLRU[int, int](0).Capacity() != 1 {
		t.Fatal("capacity not clamped to 1")
	}
}

func TestLRUConcurrent(t *testing.T) {
	l := NewLRU[int, int](64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.Add(i%100, g)
				l.Get(i % 100)
			}
		}(g)
	}
	wg.Wait()
	if l.Len() > 64 {
		t.Fatalf("len %d exceeds capacity", l.Len())
	}
}

// memoModel builds a distinct, digestible model (no need for a valid
// inference graph — the memo only hashes content).
func memoModel(name string) *quant.Model {
	return &quant.Model{Name: name, InShape: [3]int{1, 1, 4}, NumClasses: 2}
}

// dev is a baseline Tier-1-addressable device for key tests.
func dev() Device {
	return Device{
		Engine:           "sonic",
		VoltageOblivious: true,
		Model:            memoModel("m"),
		Input:            []fixed.Q15{1, 2, 3},
		Config:           harvest.PaperConfig(),
		Profile:          harvest.SquareProfile{PeakWatts: 5e-3, Period: 0.1, Duty: 0.5},
	}
}

func probe(t *testing.T, d Device) *Probe {
	t.Helper()
	p, ok := NewProbe(d)
	if !ok {
		t.Fatal("probe rejected an addressable device")
	}
	return p
}

func TestProbeRejectsUnaddressable(t *testing.T) {
	d := dev()
	d.Model = nil
	if _, ok := NewProbe(d); ok {
		t.Error("probe accepted a nil model")
	}
	d = dev()
	d.Profile = nil
	if _, ok := NewProbe(d); ok {
		t.Error("probe accepted a nil profile")
	}
	d = dev()
	d.Profile = customProfile{}
	if _, ok := NewProbe(d); ok {
		t.Error("probe accepted an unknown profile type (false-hit risk)")
	}
}

type customProfile struct{}

func (customProfile) PowerAt(float64) float64 { return 1e-3 }

// TestFingerprintSensitivity: every field outside the compute stream
// must move the Tier-1 key; equal devices must share it.
func TestFingerprintSensitivity(t *testing.T) {
	base := probe(t, dev()).full
	if probe(t, dev()).full != base {
		t.Fatal("equal devices got different Tier-1 keys")
	}
	mutations := []struct {
		name string
		mut  func(*Device)
	}{
		{"engine", func(d *Device) { d.Engine = "tails" }},
		{"model", func(d *Device) { d.Model = memoModel("other") }},
		{"input", func(d *Device) { d.Input = []fixed.Q15{9} }},
		{"capacitance", func(d *Device) { d.Config.CapacitanceF = 220e-6 }},
		{"v-on", func(d *Device) { d.Config.VOn = 3.2 }},
		{"leakage", func(d *Device) { d.Config.LeakageW = 1e-6 }},
		{"profile power", func(d *Device) {
			d.Profile = harvest.SquareProfile{PeakWatts: 6e-3, Period: 0.1, Duty: 0.5}
		}},
		{"profile kind", func(d *Device) {
			d.Profile = harvest.SineProfile{PeakWatts: 5e-3, Period: 0.1}
		}},
		{"flex", func(d *Device) { d.Flex = &flex.Config{VWarn: 2.2, SampleStride: 4} }},
		{"runner", func(d *Device) { d.Runner = &intermittent.Runner{MaxBoots: 7} }},
	}
	for _, tc := range mutations {
		d := dev()
		tc.mut(&d)
		if probe(t, d).full == base {
			t.Errorf("%s change did not move the Tier-1 key", tc.name)
		}
	}
}

// TestTraceFingerprint: content-addressed, not pointer-addressed —
// equal traces share keys, scaled traces do not.
func TestTraceFingerprint(t *testing.T) {
	mk := func() *harvest.TraceProfile {
		tr, err := harvest.NewTraceProfile([]float64{0, 1, 2}, []float64{1e-3, 2e-3, 1e-3}, true)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a, b := mk(), mk()
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("equal traces fingerprint differently")
	}
	if a.Fingerprint() != a.Fingerprint() {
		t.Error("fingerprint not stable")
	}
	scaled, err := a.Scale(1.5)
	if err != nil {
		t.Fatal(err)
	}
	if scaled.Fingerprint() == a.Fingerprint() {
		t.Error("scaled trace shares the original's fingerprint")
	}
	da, db := dev(), dev()
	da.Profile, db.Profile = a, b
	if probe(t, da).full != probe(t, db).full {
		t.Error("devices on equal traces got different Tier-1 keys")
	}
}

func fullOutcome() Outcome {
	return Outcome{
		Profile:   "square",
		Completed: true,
		Predicted: 2,
		Boots:     3,
		ActiveSec: 0.01,
		WallSec:   0.25,
		EnergymJ:  0.012,
		Diagnosis: "completed",
	}
}

func TestTier1RoundTrip(t *testing.T) {
	m := New(16)
	p := probe(t, dev())
	if _, kind := m.Lookup(p); kind != Miss {
		t.Fatal("empty memo returned a hit")
	}
	want := fullOutcome()
	m.Fill(p, want)
	got, kind := m.Lookup(probe(t, dev()))
	if kind != HitFull {
		t.Fatalf("lookup = %v, want HitFull", kind)
	}
	if got != want {
		t.Fatalf("replayed outcome differs:\n%+v\nvs\n%+v", got, want)
	}
	s := m.Stats()
	if s.FullHits != 1 || s.Misses != 1 {
		t.Fatalf("stats %+v, want 1 full hit, 1 miss", s)
	}
}

// TestTier2ComputeHit: a boot-0 completion of a voltage-oblivious
// engine must serve devices on other waveforms — when, and only when,
// the run provably fits their single charge.
func TestTier2ComputeHit(t *testing.T) {
	m := New(16)
	p := probe(t, dev())
	// tinyRun fits easily: ~12 µJ + leakage 0 vs ~0.38 mJ usable.
	tiny := Outcome{Completed: true, Predicted: 1, ActiveSec: 0.003, EnergymJ: 0.012, Diagnosis: "completed"}
	m.Fill(p, tiny)

	other := dev()
	other.Profile = harvest.SineProfile{PeakWatts: 4e-3, Period: 0.2} // different waveform: Tier 1 misses
	got, kind := m.Lookup(probe(t, other))
	if kind != HitCompute {
		t.Fatalf("lookup = %v, want HitCompute", kind)
	}
	want := Outcome{
		Completed: true, Predicted: 1,
		ActiveSec: tiny.ActiveSec, WallSec: tiny.ActiveSec, EnergymJ: tiny.EnergymJ,
		Diagnosis: string(intermittent.DiagCompleted),
	}
	if got != want {
		t.Fatalf("synthesized outcome:\n%+v\nwant\n%+v", got, want)
	}

	// A device whose capacitor cannot hold the whole run must simulate.
	starved := other
	starved.Config.CapacitanceF = 2e-6 // usable ~7.6 µJ < 12 µJ needed
	if _, kind := m.Lookup(probe(t, starved)); kind != Miss {
		t.Fatal("compute hit served beyond the single-charge budget")
	}

	// Leakage burned over the active time counts against the budget.
	leaky := other
	leaky.Config.LeakageW = 1 // 3 ms at 1 W dwarfs the usable charge
	if _, kind := m.Lookup(probe(t, leaky)); kind != Miss {
		t.Fatal("compute hit ignored leakage")
	}
}

// TestTier2Exclusions: multi-boot runs, errored runs and
// voltage-aware engines must never populate or serve Tier 2.
func TestTier2Exclusions(t *testing.T) {
	lookupOther := func(m *Memo, base Device) HitKind {
		other := base
		other.Profile = harvest.SineProfile{PeakWatts: 4e-3, Period: 0.2}
		_, kind := m.Lookup(probe(t, other))
		return kind
	}

	m := New(16)
	multi := fullOutcome() // Boots: 3 — harvest-dependent
	m.Fill(probe(t, dev()), multi)
	if kind := lookupOther(m, dev()); kind != Miss {
		t.Fatalf("multi-boot outcome leaked into Tier 2 (%v)", kind)
	}

	m = New(16)
	bad := Outcome{Completed: true, ActiveSec: 0.003, EnergymJ: 0.012, Err: fmt.Errorf("dnf")}
	m.Fill(probe(t, dev()), bad)
	if kind := lookupOther(m, dev()); kind != Miss {
		t.Fatalf("errored outcome leaked into Tier 2 (%v)", kind)
	}

	m = New(16)
	fx := dev()
	fx.Engine = "ace+flex"
	fx.VoltageOblivious = false
	m.Fill(probe(t, fx), Outcome{Completed: true, ActiveSec: 0.003, EnergymJ: 0.012})
	if kind := lookupOther(m, fx); kind != Miss {
		t.Fatalf("voltage-aware engine served a compute hit (%v)", kind)
	}
}

// TestFirstWriterWins: a racing second fill must not replace the
// outcome readers may already have replayed.
func TestFirstWriterWins(t *testing.T) {
	m := New(16)
	p := probe(t, dev())
	first := fullOutcome()
	second := fullOutcome()
	second.Predicted = 9
	m.Fill(p, first)
	m.Fill(p, second)
	got, kind := m.Lookup(p)
	if kind != HitFull || got != first {
		t.Fatalf("second fill replaced the first: %+v", got)
	}
}

// TestEvictionRefill: an evicted key misses, refills, and replays the
// same outcome — the LRU only trades host time, never results.
func TestEvictionRefill(t *testing.T) {
	m := New(1)
	a := probe(t, dev())
	b := dev()
	b.Input = []fixed.Q15{7, 7}
	m.Fill(a, fullOutcome())
	m.Fill(probe(t, b), Outcome{Completed: true, Predicted: 0})
	if _, kind := m.Lookup(a); kind != Miss {
		t.Fatal("evicted key still hit")
	}
	m.Fill(a, fullOutcome())
	got, kind := m.Lookup(a)
	if kind != HitFull || got != fullOutcome() {
		t.Fatalf("refilled outcome differs: %+v", got)
	}
	if s := m.Stats(); s.Evictions == 0 {
		t.Fatal("evictions not counted")
	}
}

func TestMemoConcurrent(t *testing.T) {
	m := New(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				d := dev()
				d.Input = []fixed.Q15{fixed.Q15(i % 32)}
				p := probe(t, d)
				if _, kind := m.Lookup(p); kind == Miss {
					m.Fill(p, fullOutcome())
				}
			}
		}(g)
	}
	wg.Wait()
	s := m.Stats()
	if s.Hits()+s.Misses != 8*200 {
		t.Fatalf("hits %d + misses %d != lookups %d", s.Hits(), s.Misses, 8*200)
	}
}

func TestHitKindString(t *testing.T) {
	for kind, want := range map[HitKind]string{Miss: "miss", HitFull: "hit-full", HitCompute: "hit-compute"} {
		if kind.String() != want {
			t.Errorf("%d.String() = %q, want %q", kind, kind.String(), want)
		}
	}
}
