package memo

import (
	"encoding/binary"
	"hash/fnv"
	"math"

	"ehdl/internal/flex"
	"ehdl/internal/harvest"
	"ehdl/internal/intermittent"
)

// harvestFingerprint condenses everything outside the compute stream
// that shapes an intermittent run — capacitor config, harvest
// waveform (with any per-device jitter already folded into its power
// parameters), FLEX policy, and runner limits — into one 64-bit
// FNV-1a value for the Tier-1 key. Two devices with equal
// fingerprints (and equal engine/model/input) run bit-identical
// simulations.
//
// ok is false for Profile implementations the switch does not know:
// a custom profile could carry state this hash would miss, and a
// false Tier-1 hit is the one failure mode the memo must never have,
// so unknown profiles bypass memoization entirely.
func harvestFingerprint(cfg harvest.Config, p harvest.Profile, fx *flex.Config, r *intermittent.Runner) (uint64, bool) {
	h := fnv.New64a()
	var buf [8]byte
	u := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	f := func(v float64) { u(math.Float64bits(v)) }
	b := func(v bool) {
		if v {
			u(1)
		} else {
			u(0)
		}
	}

	f(cfg.CapacitanceF)
	f(cfg.VOn)
	f(cfg.VOff)
	f(cfg.VMax)
	f(cfg.LeakageW)

	switch pp := p.(type) {
	case harvest.ConstantProfile:
		u(1)
		f(pp.Watts)
	case *harvest.ConstantProfile:
		u(1)
		f(pp.Watts)
	case harvest.SquareProfile:
		u(2)
		f(pp.PeakWatts)
		f(pp.Period)
		f(pp.Duty)
	case *harvest.SquareProfile:
		u(2)
		f(pp.PeakWatts)
		f(pp.Period)
		f(pp.Duty)
	case harvest.SineProfile:
		u(3)
		f(pp.PeakWatts)
		f(pp.Period)
	case *harvest.SineProfile:
		u(3)
		f(pp.PeakWatts)
		f(pp.Period)
	case *harvest.TraceProfile:
		u(4)
		u(pp.Fingerprint())
	default:
		return 0, false
	}

	if fx == nil {
		u(0)
	} else {
		u(1)
		f(fx.VWarn)
		u(uint64(fx.SampleStride))
	}
	if r == nil {
		u(0)
	} else {
		u(1)
		u(r.MaxBoots)
		u(uint64(r.StagnationLimit))
		b(r.AssumeProgress)
		b(r.NoFastForward)
		u(uint64(r.LedgerDepth))
	}
	return h.Sum64(), true
}
