package memo

// A small generic LRU used twice by the fleet layer: internally by
// Memo to bound the result cache, and by internal/cli to bound the
// loaded model-artifact store for fleets that mix hundreds of
// artifacts (the ROADMAP's model-store LRU). It is deliberately
// simple: one mutex, a doubly-linked recency list, first-writer-wins
// inserts.

import (
	"container/list"
	"sync"
)

// LRU is a bounded, concurrency-safe least-recently-used map.
type LRU[K comparable, V any] struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used
	idx       map[K]*list.Element
	evictions uint64
}

type lruEntry[K comparable, V any] struct {
	key K
	val V
}

// NewLRU returns an LRU holding at most capacity entries (capacity
// < 1 is clamped to 1: a cache that can hold nothing would turn every
// Add into a silent drop).
func NewLRU[K comparable, V any](capacity int) *LRU[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU[K, V]{
		capacity: capacity,
		ll:       list.New(),
		idx:      make(map[K]*list.Element),
	}
}

// Get returns the value under k, bumping its recency.
func (l *LRU[K, V]) Get(k K) (V, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	el, ok := l.idx[k]
	if !ok {
		var zero V
		return zero, false
	}
	l.ll.MoveToFront(el)
	return el.Value.(*lruEntry[K, V]).val, true
}

// Add inserts v under k unless the key is already present
// (first-writer-wins: racing fills keep the first value, so a cached
// entry never changes once readers may have replayed it). It reports
// whether the insert happened, evicting the least-recently-used entry
// when the cache is full.
func (l *LRU[K, V]) Add(k K, v V) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.idx[k]; ok {
		l.ll.MoveToFront(el)
		return false
	}
	l.idx[k] = l.ll.PushFront(&lruEntry[K, V]{key: k, val: v})
	for l.ll.Len() > l.capacity {
		oldest := l.ll.Back()
		l.ll.Remove(oldest)
		delete(l.idx, oldest.Value.(*lruEntry[K, V]).key)
		l.evictions++
	}
	return true
}

// Len returns the number of cached entries.
func (l *LRU[K, V]) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ll.Len()
}

// Capacity returns the configured bound.
func (l *LRU[K, V]) Capacity() int { return l.capacity }

// Evictions returns how many entries were dropped to make room.
func (l *LRU[K, V]) Evictions() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.evictions
}
