// Package memo is the fleet's content-addressed inference memo: a
// bounded, concurrency-safe cache the fleet workers consult before
// simulating a device, so a million-device sweep that cycles a
// handful of quantized inputs over a few models and engines turns
// into a handful of real simulations plus a map lookup per device.
//
// Two tiers share one LRU:
//
//   - Tier 1 keys the ENTIRE intermittent outcome on (engine, model
//     content digest, input digest, harvest fingerprint), where the
//     harvest fingerprint covers the capacitor config, the profile
//     waveform with the per-device jitter scale folded in, and any
//     FLEX/runner overrides. Two devices with equal Tier-1 keys run
//     bit-identical simulations, so the cached row replays directly.
//   - Tier 2 keys the compute side alone on (engine, model digest,
//     input digest) and stores the single-charge run: prediction,
//     active time, and energy of an inference that completed on its
//     first boot. It is served only when that outcome is provably
//     harvest-independent — the engine never samples the rail voltage
//     (base, sonic, tails, ace; FLEX's checkpoint policy reads the
//     rail, so ace+flex is excluded) and the whole inference fits the
//     querying device's usable charge even if it harvested nothing —
//     in which case the device completes on boot 0 with exactly the
//     cached compute stream, whatever its waveform or jitter.
//
// Everything served is bit-identical to the unmemoized pipeline:
// hits replay values produced by a real simulation of an equivalent
// device, racing fills keep the first value, and an LRU miss simply
// re-simulates (and re-fills) deterministically. Only the hit/miss
// counters depend on scheduling.
package memo

import (
	"math"
	gosync "sync"

	"ehdl/internal/fixed"
	"ehdl/internal/flex"
	"ehdl/internal/harvest"
	"ehdl/internal/intermittent"
	"ehdl/internal/quant"
)

// DefaultCapacity bounds the memo when the caller does not choose a
// size: 64k entries of ~150 B is a ~10 MB ceiling, far above the
// equivalence-class count of any scenario-grid fleet.
const DefaultCapacity = 1 << 16

// Key is the content address of one device run. Tier-2 keys zero the
// harvest fingerprint: the compute side does not depend on it.
type Key struct {
	Tier    uint8
	Engine  string
	Model   [32]byte
	Input   [32]byte
	Harvest uint64
}

// Outcome is a cached Tier-1 row: everything the fleet's aggregator
// and NDJSON sink consume, minus the per-device name.
type Outcome struct {
	Profile       string
	Completed     bool
	Predicted     int
	Boots         uint64
	ActiveSec     float64
	WallSec       float64
	EnergymJ      float64
	Diagnosis     string
	FastForwarded uint64
	// Err is the run's sentinel error value, shared by every replayed
	// row (errors are immutable; sinks only render Err.Error()).
	Err error
}

// compute is a cached Tier-2 entry: the harvest-independent
// single-charge inference of (engine, model, input).
type compute struct {
	Predicted int
	ActiveSec float64
	EnergymJ  float64
}

// Device describes one lookup: the scenario fields that address the
// cache plus the ones eligibility decisions read.
type Device struct {
	Engine string
	// VoltageOblivious marks engines that never sample the supply
	// rail (see core.VoltageOblivious) — the precondition for Tier 2.
	VoltageOblivious bool
	Model            *quant.Model
	Input            []fixed.Q15
	Config           harvest.Config
	Profile          harvest.Profile
	Flex             *flex.Config
	Runner           *intermittent.Runner
}

// Probe is a prepared lookup: the device plus its two content keys.
type Probe struct {
	dev     Device
	full    Key
	computK Key
}

// NewProbe builds the content keys for d. ok is false when the device
// cannot be addressed — no model, no profile, or a profile type the
// fingerprint does not know (a custom Profile implementation could
// carry state the fingerprint would miss, so it bypasses the memo
// entirely rather than risk a false hit).
func NewProbe(d Device) (*Probe, bool) {
	if d.Model == nil || d.Profile == nil {
		return nil, false
	}
	hfp, ok := harvestFingerprint(d.Config, d.Profile, d.Flex, d.Runner)
	if !ok {
		return nil, false
	}
	md := d.Model.ContentDigest()
	id := quant.HashQ15(d.Input)
	return &Probe{
		dev:     d,
		full:    Key{Tier: 1, Engine: d.Engine, Model: md, Input: id, Harvest: hfp},
		computK: Key{Tier: 2, Engine: d.Engine, Model: md, Input: id},
	}, true
}

// HitKind labels how a lookup resolved.
type HitKind int

// Lookup results: a full-outcome replay, a compute-side replay, or a
// miss (simulate, then Fill).
const (
	Miss HitKind = iota
	HitFull
	HitCompute
)

// String returns the NDJSON row tag for the hit kind.
func (k HitKind) String() string {
	switch k {
	case HitFull:
		return "hit-full"
	case HitCompute:
		return "hit-compute"
	}
	return "miss"
}

// Stats is a snapshot of the memo's counters. The hit/miss split (and
// the tags rows carry) is scheduling-dependent — racing workers may
// both miss the same key before either fills it — but FullHits +
// ComputeHits + Misses always equals the devices that consulted the
// memo, and the rows themselves are bit-identical regardless.
type Stats struct {
	FullHits    uint64
	ComputeHits uint64
	Misses      uint64
	Fills       uint64
	Evictions   uint64
	Entries     int
	Capacity    int
}

// Hits returns the total replayed devices.
func (s Stats) Hits() uint64 { return s.FullHits + s.ComputeHits }

// Memo is the fleet-wide inference cache. Safe for concurrent use.
type Memo struct {
	lru *LRU[Key, any]

	mu struct {
		gosync.Mutex
		fullHits, computeHits, misses, fills uint64
	}
}

// New returns a memo bounded to capacity entries across both tiers
// (<= 0 selects DefaultCapacity).
func New(capacity int) *Memo {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Memo{lru: NewLRU[Key, any](capacity)}
}

// eligibilityMargin guards the Tier-2 budget comparison: the cached
// energy total and the simulator's sequential per-op subtraction can
// differ in the last ulps, so a run is only declared single-charge
// when it clears the usable budget with one part in a thousand to
// spare. The cost is a few borderline devices simulating for real;
// the gain is that a served hit is bit-exact beyond any float-order
// doubt.
const eligibilityMargin = 0.999

// Lookup consults the cache for p's device. HitFull replays the whole
// cached row; HitCompute synthesizes a boot-0 completion from the
// compute entry (the caller labels the profile); Miss means simulate
// and Fill.
func (m *Memo) Lookup(p *Probe) (Outcome, HitKind) {
	if v, ok := m.lru.Get(p.full); ok {
		m.count(&m.mu.fullHits)
		return v.(Outcome), HitFull
	}
	if p.dev.VoltageOblivious {
		if v, ok := m.lru.Get(p.computK); ok {
			c := v.(compute)
			if singleCharge(c, p.dev.Config) {
				m.count(&m.mu.computeHits)
				return Outcome{
					Completed: true,
					Predicted: c.Predicted,
					ActiveSec: c.ActiveSec,
					WallSec:   c.ActiveSec,
					EnergymJ:  c.EnergymJ,
					Diagnosis: string(intermittent.DiagCompleted),
				}, HitCompute
			}
		}
	}
	m.count(&m.mu.misses)
	return Outcome{}, Miss
}

// singleCharge reports whether the cached compute run provably fits
// one charge of cfg's capacitor even with zero harvest income: total
// compute energy plus the leakage burned over the active time stays
// under the usable ½C(VOn²−VOff²) budget (with the float guard
// margin). Harvested power is never negative, so the real run can
// only end richer — it completes on boot 0 with exactly the cached
// compute stream.
func singleCharge(c compute, cfg harvest.Config) bool {
	usable := 0.5 * cfg.CapacitanceF * (cfg.VOn*cfg.VOn - cfg.VOff*cfg.VOff)
	need := c.EnergymJ*1e-3 + cfg.LeakageW*c.ActiveSec
	return need <= eligibilityMargin*usable && !math.IsNaN(usable)
}

// Fill stores the simulated outcome of a missed probe: always under
// the Tier-1 key, and additionally under the Tier-2 key when the run
// is a voltage-oblivious boot-0 completion (the harvest-independent
// compute profile of this engine/model/input). Racing fills keep the
// first value.
func (m *Memo) Fill(p *Probe, out Outcome) {
	fills := uint64(0)
	if m.lru.Add(p.full, out) {
		fills++
	}
	if p.dev.VoltageOblivious && out.Completed && out.Boots == 0 && out.Err == nil {
		if m.lru.Add(p.computK, compute{
			Predicted: out.Predicted,
			ActiveSec: out.ActiveSec,
			EnergymJ:  out.EnergymJ,
		}) {
			fills++
		}
	}
	if fills > 0 {
		m.mu.Lock()
		m.mu.fills += fills
		m.mu.Unlock()
	}
}

func (m *Memo) count(c *uint64) {
	m.mu.Lock()
	*c++
	m.mu.Unlock()
}

// Stats snapshots the counters.
func (m *Memo) Stats() Stats {
	m.mu.Lock()
	s := Stats{
		FullHits:    m.mu.fullHits,
		ComputeHits: m.mu.computeHits,
		Misses:      m.mu.misses,
		Fills:       m.mu.fills,
	}
	m.mu.Unlock()
	s.Evictions = m.lru.Evictions()
	s.Entries = m.lru.Len()
	s.Capacity = m.lru.Capacity()
	return s
}
