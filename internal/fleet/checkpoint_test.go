package fleet

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestAggSnapshotRoundTrip: restore(snapshot(a)).Report() must equal
// a.Report() bit-for-bit across sizes and thresholds (exact, spilled,
// boundary, empty), and the restored aggregator must keep observing
// identically to the original.
func TestAggSnapshotRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name      string
		n         int
		threshold int
	}{
		{"empty", 0, 64},
		{"single", 1, 64},
		{"exact", 60, 1000},
		{"spilled", 300, 64},
		{"boundary", 64, 64},
		{"tiny-threshold", 200, 1},
	} {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", tc.name, seed), func(t *testing.T) {
				results := syntheticResults(tc.n, seed)
				a := NewAgg(tc.threshold)
				for _, r := range results {
					a.Observe(r)
				}
				snap, err := a.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				b, err := RestoreAgg(snap)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(a.Report(), b.Report()) {
					t.Fatalf("restored report differs:\n%+v\nvs\n%+v", a.Report(), b.Report())
				}
				// The restored aggregator must keep accumulating exactly
				// like the original — including crossing the spill
				// threshold after restore.
				extra := syntheticResults(tc.threshold, seed+100)
				for _, r := range extra {
					a.Observe(r)
					b.Observe(r)
				}
				if !reflect.DeepEqual(a.Report(), b.Report()) {
					t.Fatalf("post-restore observations diverged")
				}
			})
		}
	}
}

// TestAggSnapshotOrderIndependent: snapshots of aggregators that saw
// the same multiset in different orders restore to equivalent state —
// they merge and report identically.
func TestAggSnapshotOrderIndependent(t *testing.T) {
	results := syntheticResults(120, 9)
	fwd, rev := NewAgg(50), NewAgg(50)
	for i := range results {
		fwd.Observe(results[i])
		rev.Observe(results[len(results)-1-i])
	}
	sf, err := fwd.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sr, err := rev.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	af, err := RestoreAgg(sf)
	if err != nil {
		t.Fatal(err)
	}
	ar, err := RestoreAgg(sr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(af.Report(), ar.Report()) {
		t.Fatal("observation order leaked into the restored state")
	}
}

// TestAggSnapshotMixedStateMerge: a spilled shard, an exact shard and
// an empty shard, all round-tripped through snapshots, must merge to
// the sequential report in any merge order.
func TestAggSnapshotMixedStateMerge(t *testing.T) {
	const threshold = 64
	results := syntheticResults(150, 7)
	seq := NewAgg(threshold)
	for _, r := range results {
		seq.Observe(r)
	}
	want := seq.Report()

	spilled, exact, empty := NewAgg(threshold), NewAgg(threshold), NewAgg(threshold)
	for _, r := range results[:100] { // > threshold: spills to histogram
		spilled.Observe(r)
	}
	for _, r := range results[100:] { // 50 rows: stays exact
		exact.Observe(r)
	}
	// Spilling changes the percentile representation, so the
	// sequential reference must be spilled too for bit-identity.
	if spilled.hist == nil || exact.hist != nil {
		t.Fatal("test shards are not in the intended mixed states")
	}

	roundTrip := func(a *Agg) *Agg {
		t.Helper()
		snap, err := a.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		b, err := RestoreAgg(snap)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	for _, order := range [][]*Agg{
		{spilled, exact, empty},
		{empty, exact, spilled},
		{exact, empty, spilled},
	} {
		total := NewAgg(threshold)
		for _, shard := range order {
			total.Merge(roundTrip(shard))
		}
		if !reflect.DeepEqual(total.Report(), want) {
			t.Fatalf("mixed-state merge differs from sequential report")
		}
	}
}

// TestRestoreAggRejectsBadSnapshots: version drift and garbage fail
// with ErrSnapshotVersion instead of decoding into wrong state.
func TestRestoreAggRejectsBadSnapshots(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(aggSnapV1{Version: 99, Threshold: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreAgg(buf.Bytes()); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("future version: err = %v, want ErrSnapshotVersion", err)
	}
	if _, err := RestoreAgg([]byte("not a snapshot")); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("garbage: err = %v, want ErrSnapshotVersion", err)
	}
	if _, err := RestoreAgg(nil); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("empty: err = %v, want ErrSnapshotVersion", err)
	}
}

// TestPartitionRange: shards tile [0, n) exactly, in order, for fleet
// sizes that do and do not divide evenly.
func TestPartitionRange(t *testing.T) {
	for _, n := range []int{0, 1, 3, 19, 100} {
		for _, of := range []int{1, 2, 4, 7, 25} {
			next := 0
			for i := 0; i < of; i++ {
				start, end := (Partition{Index: i, Of: of}).Range(n)
				if start != next || end < start {
					t.Fatalf("n=%d of=%d: shard %d range [%d, %d), want start %d", n, of, i, start, end, next)
				}
				next = end
			}
			if next != n {
				t.Fatalf("n=%d of=%d: shards cover [0, %d)", n, of, next)
			}
		}
	}
	start, end := (Partition{}).Range(42)
	if start != 0 || end != 42 {
		t.Fatalf("zero partition = [%d, %d), want the whole fleet", start, end)
	}
}

// TestCheckpointResumeBitIdentical: a run that dies mid-stream (sink
// failure after the last checkpoint) and is resumed from the
// checkpoint must produce NDJSON and report bit-identical to an
// uninterrupted run — and resuming the completed run again is a no-op
// with identical output.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	m := tinyModel(t)
	scenarios := testFleet(t, m)
	n := len(scenarios)
	dir := t.TempDir()

	// Uninterrupted reference.
	basePath := filepath.Join(dir, "base.ndjson")
	baseSink, err := NewNDJSONFile(basePath, 0)
	if err != nil {
		t.Fatal(err)
	}
	baseRep, err := RunStream(SliceSource(scenarios), StreamOptions{Workers: 4, Sink: baseSink})
	if err != nil {
		t.Fatal(err)
	}
	if err := baseSink.Close(); err != nil {
		t.Fatal(err)
	}
	baseBytes, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: single worker and tiny chunks so the failure
	// point and checkpoint frontier are deterministic — the sink dies
	// at row 12, the last checkpoint covers rows [0, 12).
	rowsPath := filepath.Join(dir, "rows.ndjson")
	ckPath := filepath.Join(dir, "ck.ehdl")
	spec := &CheckpointSpec{Path: ckPath, Every: 4, Fingerprint: "test-run"}
	file, err := NewNDJSONFile(rowsPath, 0)
	if err != nil {
		t.Fatal(err)
	}
	failer := SinkFunc(func(i int, r Result) error {
		if i == 12 {
			return fmt.Errorf("simulated crash")
		}
		return nil
	})
	_, err = RunStream(SliceSource(scenarios), StreamOptions{
		Workers:    1,
		ChunkSize:  2,
		Sink:       MultiSink(file, failer),
		Checkpoint: spec,
	})
	if err == nil || !strings.Contains(err.Error(), "simulated crash") {
		t.Fatalf("interrupted run should fail with the sink error, got %v", err)
	}
	// A SIGKILL would lose the unflushed tail; closing instead leaves
	// rows past the frontier on disk, which resume must truncate away.
	if err := file.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := LoadCheckpoint(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows != 12 || st.Start != 0 || st.End != n || st.Devices != n {
		t.Fatalf("checkpoint frontier = %+v, want rows 12 of [0, %d)", st, n)
	}

	// Resume with a different worker count: identical output anyway.
	resumed, err := ResumeNDJSONFile(rowsPath, st.Rows-st.Start, st.Rows)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunStream(SliceSource(scenarios), StreamOptions{
		Workers:    4,
		Sink:       resumed,
		Checkpoint: spec,
		Resume:     st,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Close(); err != nil {
		t.Fatal(err)
	}
	gotBytes, err := os.ReadFile(rowsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, baseBytes) {
		t.Fatalf("resumed NDJSON differs from uninterrupted run (%d vs %d bytes)", len(gotBytes), len(baseBytes))
	}
	if !reflect.DeepEqual(aggFields(rep), aggFields(baseRep)) {
		t.Fatalf("resumed report differs:\n%+v\nvs\n%+v", aggFields(rep), aggFields(baseRep))
	}

	// The final checkpoint has Rows == End; resuming it again must be
	// a no-op that reproduces the same output.
	st2, err := LoadCheckpoint(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Rows != n {
		t.Fatalf("final checkpoint frontier = %d, want %d", st2.Rows, n)
	}
	again, err := ResumeNDJSONFile(rowsPath, st2.Rows-st2.Start, st2.Rows)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := RunStream(SliceSource(scenarios), StreamOptions{
		Workers:    2,
		Sink:       again,
		Checkpoint: spec,
		Resume:     st2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := again.Close(); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(rowsPath); !bytes.Equal(b, baseBytes) {
		t.Fatal("no-op resume modified the NDJSON output")
	}
	if !reflect.DeepEqual(aggFields(rep2), aggFields(baseRep)) {
		t.Fatal("no-op resume report differs")
	}
}

// TestResumeRejectsMismatchedCheckpoint: every identity field the
// checkpoint carries — fingerprint, fleet size, partition, threshold
// — must gate resume with ErrCheckpointMismatch.
func TestResumeRejectsMismatchedCheckpoint(t *testing.T) {
	m := tinyModel(t)
	scenarios := testFleet(t, m)
	n := len(scenarios)
	ckPath := filepath.Join(t.TempDir(), "ck.ehdl")
	spec := &CheckpointSpec{Path: ckPath, Every: 4, Fingerprint: "fp-a"}
	if _, err := RunStream(SliceSource(scenarios), StreamOptions{Workers: 2, Checkpoint: spec}); err != nil {
		t.Fatal(err)
	}
	st, err := LoadCheckpoint(ckPath)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		opts StreamOptions
		src  Source
	}{
		{"fingerprint", StreamOptions{
			Checkpoint: &CheckpointSpec{Path: ckPath, Fingerprint: "fp-b"}, Resume: st,
		}, SliceSource(scenarios)},
		{"fleet-size", StreamOptions{
			Checkpoint: spec, Resume: st,
		}, SliceSource(scenarios[:n-1])},
		{"partition", StreamOptions{
			Checkpoint: spec, Resume: st, Partition: Partition{Index: 0, Of: 2},
		}, SliceSource(scenarios)},
		{"threshold", StreamOptions{
			Checkpoint: spec, Resume: st, ExactPercentiles: 7,
		}, SliceSource(scenarios)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := RunStream(tc.src, tc.opts); !errors.Is(err, ErrCheckpointMismatch) {
				t.Fatalf("err = %v, want ErrCheckpointMismatch", err)
			}
		})
	}
}

// runShard simulates one partition of the fleet into dir as a shard
// artifact (rows.ndjson + shard.ehdl).
func runShard(t *testing.T, scenarios []Scenario, part Partition, dir, fingerprint string) Report {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	start, _ := part.Range(len(scenarios))
	sink, err := NewNDJSONFile(filepath.Join(dir, ShardRowsFile), start)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunStream(SliceSource(scenarios), StreamOptions{
		Workers:   2,
		Sink:      sink,
		Partition: part,
		Checkpoint: &CheckpointSpec{
			Path:        filepath.Join(dir, ShardMetaFile),
			Fingerprint: fingerprint,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestPartitionShardsMergeBitIdentical: k sharded runs merged by
// MergeShards must reproduce the single-process NDJSON and report
// bit-identically — including splits with empty shards — and broken
// shard sets must be rejected with typed errors.
func TestPartitionShardsMergeBitIdentical(t *testing.T) {
	m := tinyModel(t)
	scenarios := testFleet(t, m)
	dir := t.TempDir()

	basePath := filepath.Join(dir, "base.ndjson")
	baseSink, err := NewNDJSONFile(basePath, 0)
	if err != nil {
		t.Fatal(err)
	}
	baseRep, err := RunStream(SliceSource(scenarios), StreamOptions{Workers: 4, Sink: baseSink})
	if err != nil {
		t.Fatal(err)
	}
	if err := baseSink.Close(); err != nil {
		t.Fatal(err)
	}
	baseBytes, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}

	const of = 4
	dirs := make([]string, of)
	for i := 0; i < of; i++ {
		dirs[i] = filepath.Join(dir, fmt.Sprintf("shard%d", i))
		runShard(t, scenarios, Partition{Index: i, Of: of}, dirs[i], "fp")
	}

	var merged bytes.Buffer
	rep, err := MergeShards(&merged, []string{dirs[2], dirs[0], dirs[3], dirs[1]}) // any order
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged.Bytes(), baseBytes) {
		t.Fatalf("merged NDJSON differs from single-process run (%d vs %d bytes)", merged.Len(), len(baseBytes))
	}
	if !reflect.DeepEqual(aggFields(rep), aggFields(baseRep)) {
		t.Fatalf("merged report differs:\n%+v\nvs\n%+v", aggFields(rep), aggFields(baseRep))
	}

	// A split wider than a tiny fleet produces empty shards; they must
	// merge cleanly too.
	tiny := scenarios[:3]
	tinyBase := filepath.Join(dir, "tiny.ndjson")
	tinySink, err := NewNDJSONFile(tinyBase, 0)
	if err != nil {
		t.Fatal(err)
	}
	tinyRep, err := RunStream(SliceSource(tiny), StreamOptions{Workers: 2, Sink: tinySink})
	if err != nil {
		t.Fatal(err)
	}
	if err := tinySink.Close(); err != nil {
		t.Fatal(err)
	}
	tinyDirs := make([]string, 5)
	for i := range tinyDirs {
		tinyDirs[i] = filepath.Join(dir, fmt.Sprintf("tiny%d", i))
		runShard(t, tiny, Partition{Index: i, Of: 5}, tinyDirs[i], "fp-tiny")
	}
	var tinyMerged bytes.Buffer
	tinyGot, err := MergeShards(&tinyMerged, tinyDirs)
	if err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(tinyBase); !bytes.Equal(tinyMerged.Bytes(), b) {
		t.Fatal("empty-shard merge NDJSON differs")
	}
	if !reflect.DeepEqual(aggFields(tinyGot), aggFields(tinyRep)) {
		t.Fatal("empty-shard merge report differs")
	}

	t.Run("missing-shard", func(t *testing.T) {
		var buf bytes.Buffer
		if _, err := MergeShards(&buf, []string{dirs[0], dirs[1], dirs[3]}); !errors.Is(err, ErrShardLayout) {
			t.Fatalf("err = %v, want ErrShardLayout", err)
		}
	})
	t.Run("duplicate-shard", func(t *testing.T) {
		var buf bytes.Buffer
		if _, err := MergeShards(&buf, append([]string{dirs[1]}, dirs...)); !errors.Is(err, ErrShardLayout) {
			t.Fatalf("err = %v, want ErrShardLayout", err)
		}
	})
	t.Run("mismatched-shard", func(t *testing.T) {
		alien := filepath.Join(dir, "alien")
		runShard(t, scenarios, Partition{Index: 1, Of: of}, alien, "other-fp")
		var buf bytes.Buffer
		if _, err := MergeShards(&buf, []string{dirs[0], alien, dirs[2], dirs[3]}); !errors.Is(err, ErrShardMismatch) {
			t.Fatalf("err = %v, want ErrShardMismatch", err)
		}
	})
	t.Run("incomplete-shard", func(t *testing.T) {
		st, err := LoadShard(dirs[1])
		if err != nil {
			t.Fatal(err)
		}
		st.Rows = st.Start // rewind the frontier: shard now incomplete
		stale := filepath.Join(dir, "stale")
		if err := os.MkdirAll(stale, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := st.write(filepath.Join(stale, ShardMetaFile)); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := MergeShards(&buf, []string{dirs[0], stale, dirs[2], dirs[3]}); !errors.Is(err, ErrShardIncomplete) {
			t.Fatalf("err = %v, want ErrShardIncomplete", err)
		}
	})
	t.Run("short-row-file", func(t *testing.T) {
		// Meta says complete but the row file lost a row: ErrShardRows.
		clone := filepath.Join(dir, "shortrows")
		runShard(t, scenarios, Partition{Index: 1, Of: of}, clone, "fp")
		rows, err := os.ReadFile(filepath.Join(clone, ShardRowsFile))
		if err != nil {
			t.Fatal(err)
		}
		trimmed := bytes.TrimSuffix(rows, []byte("\n"))
		cut := bytes.LastIndexByte(trimmed, '\n')
		if err := os.WriteFile(filepath.Join(clone, ShardRowsFile), rows[:cut+1], 0o644); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := MergeShards(&buf, []string{dirs[0], clone, dirs[2], dirs[3]}); !errors.Is(err, ErrShardRows) {
			t.Fatalf("err = %v, want ErrShardRows", err)
		}
	})
}

// TestSinkOrderingContract: every bundled sink rejects an index gap
// instead of silently accepting out-of-order rows.
func TestSinkOrderingContract(t *testing.T) {
	t.Run("collector", func(t *testing.T) {
		c := &Collector{}
		if err := c.Consume(0, Result{}); err != nil {
			t.Fatal(err)
		}
		if err := c.Consume(2, Result{}); err == nil {
			t.Fatal("gap accepted")
		}
		offset := &Collector{Start: 10}
		if err := offset.Consume(10, Result{}); err != nil {
			t.Fatal(err)
		}
		if err := offset.Consume(10, Result{}); err == nil {
			t.Fatal("duplicate accepted")
		}
	})
	t.Run("ndjson", func(t *testing.T) {
		var buf bytes.Buffer
		s := NewNDJSONSinkAt(&buf, 5)
		if err := s.Consume(5, Result{}); err != nil {
			t.Fatal(err)
		}
		if err := s.Consume(7, Result{}); err == nil {
			t.Fatal("gap accepted")
		}
	})
	t.Run("ndjson-file", func(t *testing.T) {
		f, err := NewNDJSONFile(filepath.Join(t.TempDir(), "rows.ndjson"), 0)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := f.Consume(0, Result{}); err != nil {
			t.Fatal(err)
		}
		if err := f.Consume(2, Result{}); err == nil {
			t.Fatal("gap accepted")
		}
	})
}

// TestResumeNDJSONFile: truncation back to the checkpointed row
// boundary, appending after it, and the typed error when the file is
// behind the checkpoint.
func TestResumeNDJSONFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rows.ndjson")
	f, err := NewNDJSONFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := f.Consume(i, Result{Name: fmt.Sprintf("dev%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Keep 3 of the 5 rows, then re-append rows 3 and 4: byte-identical.
	r, err := ResumeNDJSONFile(path, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Consume(3, Result{Name: "dev3"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Consume(4, Result{Name: "dev4"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); !bytes.Equal(got, full) {
		t.Fatalf("truncate+reappend changed the file:\n%q\nvs\n%q", got, full)
	}

	if _, err := ResumeNDJSONFile(path, 10, 10); !errors.Is(err, ErrResumeRows) {
		t.Fatalf("short file: err = %v, want ErrResumeRows", err)
	}
}

// TestRunStreamPartitionReport: a partitioned run aggregates its
// range only, and its report equals a direct run over that slice.
func TestRunStreamPartitionReport(t *testing.T) {
	m := tinyModel(t)
	scenarios := testFleet(t, m)
	part := Partition{Index: 1, Of: 3}
	start, end := part.Range(len(scenarios))

	collect := &Collector{Start: start}
	rep, err := RunStream(SliceSource(scenarios), StreamOptions{Workers: 3, Partition: part, Sink: collect})
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunStream(SliceSource(scenarios[start:end]), StreamOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(aggFields(rep), aggFields(want)) {
		t.Fatalf("partition report differs from direct run over its range")
	}
	if len(collect.Rows) != end-start {
		t.Fatalf("sink saw %d rows, want %d", len(collect.Rows), end-start)
	}
}
